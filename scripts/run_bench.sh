#!/usr/bin/env bash
# Fixpoint-engine benchmark driver.
#
#   scripts/run_bench.sh [BUILD_DIR]
#
# Runs bench_fixpoint_scaling (sparse-RPO vs dense-FIFO worklists across the
# program families) and bench_pipeline (end-to-end pass pipeline) and writes
# the unified parcm-bench-v1 artifacts at the repository root (or at
# PARCM_BENCH_OUT_DIR — CI quick runs write to a scratch directory and gate
# them against the committed baselines with check_bench_regression.py
# instead of overwriting them):
#
#   BENCH_fixpoint.json
#   BENCH_pipeline.json
#   BENCH_batch.json     (parcm_batch --scaling: thread-pool speedup curve)
#   BENCH_exec.json      (bench_exec: VM wall clock on the figures, the
#                         pooled exec corpus, and the VM-vs-exact oracle
#                         throughput ratio floor-gated at 5x)
#
# test_schema validates both files whenever they exist, so a stale or
# hand-edited artifact fails the suite. Tune the measurement length with
# PARCM_BENCH_MIN_TIME (google-benchmark --benchmark_min_time, default 0.05).
#
# Every run is additionally snapshotted into bench/history/<utc>-<commit>/
# (override with PARCM_BENCH_HISTORY_DIR, disable with
# PARCM_BENCH_HISTORY=0) so check_bench_regression.py --history can fit
# performance trends across runs instead of a single baseline pair.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
min_time="${PARCM_BENCH_MIN_TIME:-0.05}"
out_dir="${PARCM_BENCH_OUT_DIR:-$repo_root}"
mkdir -p "$out_dir"

for bench in bench_fixpoint_scaling bench_pipeline bench_exec; do
  if [[ ! -x "$build_dir/bench/$bench" ]]; then
    echo "error: $build_dir/bench/$bench not found — configure and build first:" >&2
    echo "  cmake -B $build_dir -S $repo_root && cmake --build $build_dir -j" >&2
    exit 2
  fi
done

echo "== bench_fixpoint_scaling -> $out_dir/BENCH_fixpoint.json =="
"$build_dir/bench/bench_fixpoint_scaling" \
  --benchmark_min_time="$min_time" \
  --obs_json="$out_dir/BENCH_fixpoint.json"

echo "== bench_pipeline -> $out_dir/BENCH_pipeline.json =="
"$build_dir/bench/bench_pipeline" \
  --benchmark_min_time="$min_time" \
  --obs_json="$out_dir/BENCH_pipeline.json"

echo "== bench_exec -> $out_dir/BENCH_exec.json =="
"$build_dir/bench/bench_exec" \
  --benchmark_min_time="$min_time" \
  --obs_json="$out_dir/BENCH_exec.json"

echo "== parcm_batch --scaling -> $out_dir/BENCH_batch.json =="
if [[ ! -x "$build_dir/examples/parcm_batch" ]]; then
  echo "error: $build_dir/examples/parcm_batch not found — build first" >&2
  exit 2
fi
# The generated corpus repeats a pool of shapes so the cross-worker shared
# analysis cache has the workload it exists for (hit-rate floor gated by
# check_bench_regression.py).
"$build_dir/examples/parcm_batch" \
  --gen "${PARCM_BENCH_BATCH_PROGRAMS:-1000}" \
  --gen-shapes "${PARCM_BENCH_BATCH_SHAPES:-200}" \
  --scaling "${PARCM_BENCH_BATCH_JOBS:-1,2,4,8,16}" \
  --bench-json "$out_dir/BENCH_batch.json"

echo "wrote $out_dir/BENCH_fixpoint.json, $out_dir/BENCH_pipeline.json, $out_dir/BENCH_exec.json and $out_dir/BENCH_batch.json"

# Per-run history snapshot: commit + timestamp name the run, meta.json makes
# the snapshot self-describing, and the timestamp prefix keeps directory
# order chronological for the trend fitter.
if [[ "${PARCM_BENCH_HISTORY:-1}" != "0" ]]; then
  commit="$(git -C "$repo_root" rev-parse --short HEAD 2>/dev/null || echo nogit)"
  dirty=""
  if ! git -C "$repo_root" diff --quiet HEAD 2>/dev/null; then dirty="-dirty"; fi
  stamp="$(date -u +%Y%m%dT%H%M%SZ)"
  history_dir="${PARCM_BENCH_HISTORY_DIR:-$repo_root/bench/history}/$stamp-$commit$dirty"
  mkdir -p "$history_dir"
  cp "$out_dir/BENCH_fixpoint.json" "$out_dir/BENCH_pipeline.json" \
     "$out_dir/BENCH_exec.json" "$out_dir/BENCH_batch.json" "$history_dir/"
  cat > "$history_dir/meta.json" <<EOF
{
  "schema": "parcm-bench-history-v1",
  "commit": "$commit$dirty",
  "timestamp_utc": "$stamp",
  "min_time": "$min_time"
}
EOF
  echo "snapshot: $history_dir"
fi
