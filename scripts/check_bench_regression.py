#!/usr/bin/env python3
"""Scaling-model regression gate over parcm-bench-v1 artifacts.

Compares a freshly produced bench run against the committed BENCH_*.json
baseline(s) and fails when a benchmark got slower than the threshold allows
or when a deterministic counter (relaxations by default) grew at all.

Instead of diffing raw per-size timings — noisy on shared CI runners — the
gate fits a power-law scaling model t(n) = a * n^b (log-log least squares,
Extra-P style) to every benchmark family, e.g. BM_SequentialChain/{64, 512,
4096, 8192}, in both baseline and fresh data, and compares the *model
predictions* at the largest common size. A single noisy point barely moves
the fit, so the timing verdict is stable; families with a single size fall
back to the direct ratio.

Deterministic counters are schedule-independent by construction (the repo's
determinism suite holds that), so any growth is a real algorithmic
regression and is always a hard failure, even with --advisory-timing.

With --history the gate fits *trends* instead of a single baseline pair:
scripts/run_bench.sh snapshots every run into bench/history/<utc>-<commit>/
and the timestamp prefix keeps directory order chronological. The trend
report prints each family's model prediction per snapshot plus the overall
drift; when --fresh files are also given, the fresh run is gated against
the *median* of the history predictions (robust to one noisy snapshot)
rather than against a single committed file.

Usage:
  check_bench_regression.py --baseline BENCH_x.json --fresh new/BENCH_x.json
      [--threshold 1.5] [--counter relaxations] [--advisory-timing]
  check_bench_regression.py --history bench/history [--fresh new/BENCH_x.json]
  check_bench_regression.py --self-test

Multiple --baseline/--fresh files pair up by their "bench" field. Exit
codes: 0 clean (or advisory-only findings), 1 regression, 2 usage error.
"""

import argparse
import json
import math
import os
import sys

# Counters that are deterministic outputs of the algorithms (not timings);
# growth in any of these is a hard failure.
DEFAULT_HARD_COUNTERS = ["relaxations"]

# Absolute bounds on fresh counters, gated independently of any baseline:
# the shared analysis cache must actually hit on the pooled bench corpus,
# and arena-backed IR allocation must keep residual global-allocator
# traffic bounded. Violations are hard failures even with
# --advisory-timing. A result that does not report the counter is exempt
# (e.g. benches without a batch corpus).
ABSOLUTE_BOUNDS = [
    # (counter, kind, limit): kind "floor" fails when value < limit,
    # "ceiling" fails when value > limit.
    ("cache_hit_rate", "floor", 0.5),
    ("allocs_per_program", "ceiling", 7000.0),
    # The VM differential oracle must stay meaningfully cheaper than the
    # exact enumerative checker on the pooled corpus (bench_exec), and the
    # VM's executional results must stay exact: no sampled schedule may run
    # slower after PCM, and the phase-algebra cost must agree with the
    # analytic model on every pair.
    ("vm_oracle_speedup", "floor", 5.0),
    ("vm_regressed_paths", "ceiling", 0.0),
    ("vm_cost_mismatches", "ceiling", 0.0),
]


def load_results(path):
    """Returns (bench_name, {result_name: (real_ns, counters)})."""
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "parcm-bench-v1":
        raise ValueError(f"{path}: not a parcm-bench-v1 artifact")
    results = {}
    for row in doc.get("results", []):
        results[row["name"]] = (
            float(row.get("real_ns_per_iter", 0.0)),
            dict(row.get("counters", {})),
        )
    return doc.get("bench", "?"), results


def split_family(name):
    """BM_Chain/4096 -> ("BM_Chain", 4096); batch/jobs:4 -> ("batch/jobs", 4).

    Returns (name, None) when no trailing integer exists.
    """
    for sep in ("/", ":"):
        head, _, tail = name.rpartition(sep)
        if head and tail.isdigit():
            return head, int(tail)
    return name, None


def fit_power_law(points):
    """Least-squares fit of t = a * n^b in log-log space.

    points: [(n, t)] with n, t > 0. Returns (a, b); a single point yields
    the exact (t/n^0, 0) constant model.
    """
    pts = [(n, t) for n, t in points if n > 0 and t > 0]
    if not pts:
        return 0.0, 0.0
    if len(pts) == 1:
        return pts[0][1], 0.0
    xs = [math.log(n) for n, _ in pts]
    ys = [math.log(t) for _, t in pts]
    mx = sum(xs) / len(xs)
    my = sum(ys) / len(ys)
    sxx = sum((x - mx) ** 2 for x in xs)
    if sxx == 0:  # repeated sizes: average them
        return math.exp(my), 0.0
    b = sum((x - mx) * (y - my) for x, y in zip(xs, ys)) / sxx
    a = math.exp(my - b * mx)
    return a, b


def group_families(results):
    """{family: [(size, real_ns)]}; sizeless entries get size None."""
    fams = {}
    for name, (real_ns, _) in results.items():
        family, size = split_family(name)
        fams.setdefault(family, []).append((size, real_ns))
    return fams


def compare_timing(base, fresh, threshold, out):
    """Yields (family, ratio, detail) for families slower than threshold."""
    base_fams = group_families(base)
    fresh_fams = group_families(fresh)
    regressions = []
    for family in sorted(base_fams.keys() & fresh_fams.keys()):
        bpts = [(n, t) for n, t in base_fams[family] if n is not None]
        fpts = [(n, t) for n, t in fresh_fams[family] if n is not None]
        if bpts and fpts:
            common = {n for n, _ in bpts} & {n for n, _ in fpts}
            if not common:
                continue
            at = max(common)
            ba, bb = fit_power_law(bpts)
            fa, fb = fit_power_law(fpts)
            base_pred = ba * at**bb
            fresh_pred = fa * at**fb
            detail = (
                f"model n^{bb:.2f} -> n^{fb:.2f}, predicted at n={at}: "
                f"{base_pred:,.0f} ns -> {fresh_pred:,.0f} ns"
            )
        else:
            # No size axis: direct ratio of the single measurements.
            base_pred = base_fams[family][0][1]
            fresh_pred = fresh_fams[family][0][1]
            at = None
            detail = f"{base_pred:,.0f} ns -> {fresh_pred:,.0f} ns"
        if base_pred <= 0:
            continue
        ratio = fresh_pred / base_pred
        status = "ok" if ratio <= threshold else "REGRESSED"
        out(f"  [{status:9s}] {family}: {ratio:.2f}x ({detail})")
        if ratio > threshold:
            regressions.append((family, ratio, detail))
    return regressions


def compare_counters(base, fresh, hard_counters, out):
    """Yields (name, counter, base, fresh) where a hard counter grew."""
    regressions = []
    for name in sorted(base.keys() & fresh.keys()):
        _, bc = base[name]
        _, fc = fresh[name]
        for counter in hard_counters:
            if counter not in bc or counter not in fc:
                continue
            bval, fval = float(bc[counter]), float(fc[counter])
            if fval > bval:
                out(
                    f"  [REGRESSED] {name} {counter}: "
                    f"{bval:,.0f} -> {fval:,.0f}"
                )
                regressions.append((name, counter, bval, fval))
    return regressions


def check_absolute_bounds(fresh_runs, out):
    """Yields (bench, name, counter, value, bound) for every fresh result
    whose counter violates an ABSOLUTE_BOUNDS floor/ceiling."""
    violations = []
    for bench, results in sorted(fresh_runs.items()):
        for name in sorted(results):
            _, counters = results[name]
            for counter, kind, limit in ABSOLUTE_BOUNDS:
                if counter not in counters:
                    continue
                value = float(counters[counter])
                bad = value < limit if kind == "floor" else value > limit
                if bad:
                    rel = "<" if kind == "floor" else ">"
                    out(
                        f"  [BOUND    ] {bench}/{name} {counter}: "
                        f"{value:,.3f} {rel} {kind} {limit:,.3f}"
                    )
                    violations.append((bench, name, counter, value, limit))
    return violations


def run_gate(baseline_paths, fresh_paths, threshold, hard_counters,
             advisory_timing, out=print):
    baselines = {}
    for path in baseline_paths:
        bench, results = load_results(path)
        baselines.setdefault(bench, {}).update(results)
    fresh_runs = {}
    for path in fresh_paths:
        bench, results = load_results(path)
        fresh_runs.setdefault(bench, {}).update(results)

    timing_regs, counter_regs = [], []
    matched = sorted(baselines.keys() & fresh_runs.keys())
    if not matched:
        out("no bench name overlaps between baseline and fresh artifacts")
        return 2
    for bench in matched:
        out(f"bench {bench}:")
        timing_regs += compare_timing(
            baselines[bench], fresh_runs[bench], threshold, out
        )
        counter_regs += compare_counters(
            baselines[bench], fresh_runs[bench], hard_counters, out
        )
    for bench in sorted(fresh_runs.keys() - baselines.keys()):
        out(f"bench {bench}: no committed baseline, skipping")
    bound_regs = check_absolute_bounds(fresh_runs, out)

    if bound_regs:
        out(f"FAIL: {len(bound_regs)} absolute counter bound violation(s)")
        return 1
    if counter_regs:
        out(f"FAIL: {len(counter_regs)} deterministic counter regression(s)")
        return 1
    if timing_regs:
        if advisory_timing:
            out(
                f"ADVISORY: {len(timing_regs)} timing regression(s) beyond "
                f"{threshold:.2f}x (not failing: --advisory-timing)"
            )
            return 0
        out(
            f"FAIL: {len(timing_regs)} timing regression(s) beyond "
            f"{threshold:.2f}x"
        )
        return 1
    out("bench regression gate: clean")
    return 0


def scan_history(history_dir):
    """[(snapshot_name, {bench: results})], chronological.

    Snapshot directories are named <utc-timestamp>-<commit> by
    run_bench.sh, so lexicographic order is chronological order. Non-bench
    files (meta.json) and unreadable artifacts are skipped.
    """
    snapshots = []
    for name in sorted(os.listdir(history_dir)):
        snap_dir = os.path.join(history_dir, name)
        if not os.path.isdir(snap_dir):
            continue
        benches = {}
        for fname in sorted(os.listdir(snap_dir)):
            if not (fname.startswith("BENCH_") and fname.endswith(".json")):
                continue
            try:
                bench, results = load_results(os.path.join(snap_dir, fname))
            except (OSError, ValueError, KeyError):
                continue
            benches.setdefault(bench, {}).update(results)
        if benches:
            snapshots.append((name, benches))
    return snapshots


def family_prediction(points):
    """Model prediction at the family's largest size (or the single value)."""
    pts = [(n, t) for n, t in points if n is not None]
    if pts:
        at = max(n for n, _ in pts)
        a, b = fit_power_law(pts)
        return a * at**b
    return points[0][1] if points else 0.0


def median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def run_trend(history_dir, fresh_paths, threshold, hard_counters,
              advisory_timing, out=print):
    """Trend report over bench/history snapshots; gates --fresh against the
    per-family median of the history predictions when fresh files are given.
    Deterministic counters are gated against the newest snapshot (they are
    exact, so no median smoothing is needed)."""
    snapshots = scan_history(history_dir)
    if not snapshots:
        out(f"no snapshots under {history_dir} — run scripts/run_bench.sh")
        return 2

    # (bench, family) -> [(snapshot_name, predicted_ns)]
    series = {}
    for snap_name, benches in snapshots:
        for bench, results in benches.items():
            for family, points in group_families(results).items():
                pred = family_prediction(points)
                if pred > 0:
                    series.setdefault((bench, family), []).append(
                        (snap_name, pred)
                    )

    out(f"history: {len(snapshots)} snapshot(s) under {history_dir}")
    for (bench, family), preds in sorted(series.items()):
        drift = preds[-1][1] / preds[0][1] if preds[0][1] > 0 else 1.0
        trail = ", ".join(f"{p:,.0f}" for _, p in preds[-5:])
        out(
            f"  {bench}/{family}: drift {drift:.2f}x over "
            f"{len(preds)} run(s) [{trail} ns]"
        )

    if not fresh_paths:
        out("trend report only (no --fresh run to gate)")
        return 0

    fresh_runs = {}
    for path in fresh_paths:
        bench, results = load_results(path)
        fresh_runs.setdefault(bench, {}).update(results)

    timing_regs, counter_regs = [], []
    newest_bench = snapshots[-1][1]
    for bench, results in sorted(fresh_runs.items()):
        out(f"bench {bench} vs history median:")
        for family, points in sorted(group_families(results).items()):
            hist = series.get((bench, family))
            if not hist:
                continue
            base_pred = median([p for _, p in hist])
            fresh_pred = family_prediction(points)
            if base_pred <= 0 or fresh_pred <= 0:
                continue
            ratio = fresh_pred / base_pred
            status = "ok" if ratio <= threshold else "REGRESSED"
            out(
                f"  [{status:9s}] {family}: {ratio:.2f}x "
                f"(median of {len(hist)} run(s): {base_pred:,.0f} ns -> "
                f"{fresh_pred:,.0f} ns)"
            )
            if ratio > threshold:
                timing_regs.append((family, ratio))
        if bench in newest_bench:
            counter_regs += compare_counters(
                newest_bench[bench], results, hard_counters, out
            )
    bound_regs = check_absolute_bounds(fresh_runs, out)

    if bound_regs:
        out(f"FAIL: {len(bound_regs)} absolute counter bound violation(s)")
        return 1
    if counter_regs:
        out(f"FAIL: {len(counter_regs)} deterministic counter regression(s)")
        return 1
    if timing_regs:
        if advisory_timing:
            out(
                f"ADVISORY: {len(timing_regs)} timing regression(s) beyond "
                f"{threshold:.2f}x vs history median (not failing)"
            )
            return 0
        out(
            f"FAIL: {len(timing_regs)} timing regression(s) beyond "
            f"{threshold:.2f}x vs history median"
        )
        return 1
    out("bench trend gate: clean")
    return 0


def make_fixture(scale_time=1.0, relaxations=25):
    """A parcm-bench-v1 document with one 3-size family and one singleton."""
    results = []
    for n in (64, 512, 4096):
        results.append(
            {
                "name": f"BM_Fixture/{n}",
                "iterations": 10,
                "real_ns_per_iter": scale_time * 100.0 * n,
                "cpu_ns_per_iter": scale_time * 100.0 * n,
                "counters": {"relaxations": relaxations, "nodes": n},
            }
        )
    results.append(
        {
            "name": "BM_FixtureSingle",
            "iterations": 10,
            "real_ns_per_iter": scale_time * 5000.0,
            "cpu_ns_per_iter": scale_time * 5000.0,
            "counters": {},
        }
    )
    return {"schema": "parcm-bench-v1", "bench": "fixture", "results": results}


def make_batch_fixture(hit_rate=0.8, allocs=1100.0):
    """A parcm-bench-v1 batch-scaling document exercising ABSOLUTE_BOUNDS."""
    results = []
    for jobs in (1, 4):
        results.append(
            {
                "name": f"batch/jobs:{jobs}",
                "iterations": 1,
                "real_ns_per_iter": 1e9 / jobs,
                "cpu_ns_per_iter": 1e9,
                "counters": {
                    "programs": 100,
                    "cache_hit_rate": hit_rate,
                    "allocs_per_program": allocs,
                },
            }
        )
    return {"schema": "parcm-bench-v1", "bench": "batch_fixture",
            "results": results}


def make_exec_fixture(speedup=12.0, regressed=0.0, mismatches=0.0):
    """A parcm-bench-v1 bench_exec document exercising the VM bounds."""
    results = [
        {
            "name": "BM_VmOracleSpeedup",
            "iterations": 3,
            "real_ns_per_iter": 1e8,
            "cpu_ns_per_iter": 1e8,
            "counters": {"vm_oracle_speedup": speedup},
        },
        {
            "name": "BM_VmCorpus",
            "iterations": 3,
            "real_ns_per_iter": 5e7,
            "cpu_ns_per_iter": 5e7,
            "counters": {
                "pairs": 144,
                "vm_regressed_paths": regressed,
                "vm_cost_mismatches": mismatches,
            },
        },
    ]
    return {"schema": "parcm-bench-v1", "bench": "exec_fixture",
            "results": results}


def self_test(threshold):
    """Hermetic check that the gate accepts clean runs and rejects a 2x
    slowdown and a counter growth. Exercised by ctest so the gate itself
    cannot silently rot."""
    import tempfile, os

    def write(doc):
        fd, path = tempfile.mkstemp(suffix=".json")
        with os.fdopen(fd, "w") as f:
            json.dump(doc, f)
        return path

    quiet = lambda *_: None
    base = write(make_fixture())
    same = write(make_fixture(scale_time=1.04))  # within noise
    slow = write(make_fixture(scale_time=2.0))  # 2x slower: must fail
    more = write(make_fixture(relaxations=26))  # counter grew: must fail

    failures = []
    if run_gate([base], [same], threshold, DEFAULT_HARD_COUNTERS, False,
                quiet) != 0:
        failures.append("clean run rejected")
    if run_gate([base], [slow], threshold, DEFAULT_HARD_COUNTERS, False,
                quiet) != 1:
        failures.append("2x slowdown accepted")
    if run_gate([base], [slow], threshold, DEFAULT_HARD_COUNTERS, True,
                quiet) != 0:
        failures.append("advisory timing mode still failed")
    if run_gate([base], [more], threshold, DEFAULT_HARD_COUNTERS, True,
                quiet) != 1:
        failures.append("counter growth accepted")
    a, b = fit_power_law([(64, 6400.0), (512, 51200.0), (4096, 409600.0)])
    if not (abs(a - 100.0) < 1e-6 and abs(b - 1.0) < 1e-9):
        failures.append(f"power-law fit off: a={a} b={b}")

    # Absolute bounds: a healthy batch run passes, a cold cache and an
    # allocation blow-up fail hard — even in advisory timing mode.
    batch_ok = write(make_batch_fixture())
    batch_cold = write(make_batch_fixture(hit_rate=0.2))
    batch_fat = write(make_batch_fixture(allocs=40000.0))
    if run_gate([batch_ok], [batch_ok], threshold, DEFAULT_HARD_COUNTERS,
                False, quiet) != 0:
        failures.append("healthy batch run rejected by absolute bounds")
    if run_gate([batch_ok], [batch_cold], threshold, DEFAULT_HARD_COUNTERS,
                False, quiet) != 1:
        failures.append("cache_hit_rate below floor accepted")
    if run_gate([batch_ok], [batch_fat], threshold, DEFAULT_HARD_COUNTERS,
                True, quiet) != 1:
        failures.append("allocs_per_program above ceiling accepted")

    # VM executional bounds: a healthy bench_exec run passes; a VM oracle
    # slower than 5x the exact checker, a schedule that regressed after
    # PCM, or a VM-vs-analytic cost drift each fail hard.
    exec_ok = write(make_exec_fixture())
    exec_slow = write(make_exec_fixture(speedup=2.0))
    exec_regressed = write(make_exec_fixture(regressed=3.0))
    exec_drift = write(make_exec_fixture(mismatches=1.0))
    if run_gate([exec_ok], [exec_ok], threshold, DEFAULT_HARD_COUNTERS,
                False, quiet) != 0:
        failures.append("healthy exec run rejected by absolute bounds")
    if run_gate([exec_ok], [exec_slow], threshold, DEFAULT_HARD_COUNTERS,
                False, quiet) != 1:
        failures.append("vm_oracle_speedup below floor accepted")
    if run_gate([exec_ok], [exec_regressed], threshold, DEFAULT_HARD_COUNTERS,
                True, quiet) != 1:
        failures.append("vm_regressed_paths above ceiling accepted")
    if run_gate([exec_ok], [exec_drift], threshold, DEFAULT_HARD_COUNTERS,
                True, quiet) != 1:
        failures.append("vm_cost_mismatches above ceiling accepted")

    # History trend mode: three snapshots with ordinary noise, then a clean
    # fresh run must pass the median gate, a 2x run must fail it, and a
    # counter growth against the newest snapshot must fail hard.
    with tempfile.TemporaryDirectory() as history:
        for i, scale in enumerate((1.0, 1.05, 0.97)):
            snap = os.path.join(history, f"20260101T00000{i}Z-abc{i}")
            os.makedirs(snap)
            with open(os.path.join(snap, "BENCH_fixture.json"), "w") as f:
                json.dump(make_fixture(scale_time=scale), f)
        if run_trend(history, [], threshold, DEFAULT_HARD_COUNTERS, False,
                     quiet) != 0:
            failures.append("history trend report failed on clean history")
        if run_trend(history, [same], threshold, DEFAULT_HARD_COUNTERS,
                     False, quiet) != 0:
            failures.append("history gate rejected a clean fresh run")
        if run_trend(history, [slow], threshold, DEFAULT_HARD_COUNTERS,
                     False, quiet) != 1:
            failures.append("history gate accepted a 2x slowdown")
        if run_trend(history, [more], threshold, DEFAULT_HARD_COUNTERS,
                     True, quiet) != 1:
            failures.append("history gate accepted counter growth")
    empty = tempfile.mkdtemp()
    if run_trend(empty, [], threshold, DEFAULT_HARD_COUNTERS, False,
                 quiet) != 2:
        failures.append("empty history dir not reported as usage error")
    os.rmdir(empty)

    for path in (base, same, slow, more, batch_ok, batch_cold, batch_fat,
                 exec_ok, exec_slow, exec_regressed, exec_drift):
        os.unlink(path)
    if failures:
        print("self-test FAILED:", "; ".join(failures))
        return 1
    print("self-test passed")
    return 0


def main(argv):
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("--baseline", action="append", default=[],
                   help="committed parcm-bench-v1 artifact (repeatable)")
    p.add_argument("--fresh", action="append", default=[],
                   help="freshly produced artifact (repeatable)")
    p.add_argument("--threshold", type=float, default=1.5,
                   help="timing ratio above which a family regressed "
                        "(default 1.5)")
    p.add_argument("--counter", action="append", default=[],
                   dest="counters",
                   help="deterministic counter treated as a hard gate "
                        "(default: relaxations)")
    p.add_argument("--advisory-timing", action="store_true",
                   help="report timing regressions without failing; "
                        "deterministic counters still fail hard")
    p.add_argument("--history",
                   help="bench/history directory of run_bench.sh snapshots: "
                        "print per-family trends, and gate --fresh against "
                        "the history median instead of --baseline")
    p.add_argument("--self-test", action="store_true",
                   help="run the hermetic fixture checks and exit")
    args = p.parse_args(argv)

    if args.self_test:
        return self_test(args.threshold)
    hard = args.counters or DEFAULT_HARD_COUNTERS
    if args.history:
        try:
            return run_trend(args.history, args.fresh, args.threshold, hard,
                             args.advisory_timing)
        except (OSError, ValueError, KeyError) as e:
            print(f"error: {e}", file=sys.stderr)
            return 2
    if not args.baseline or not args.fresh:
        p.error("--baseline and --fresh are required "
                "(or use --history / --self-test)")
    try:
        return run_gate(args.baseline, args.fresh, args.threshold, hard,
                        args.advisory_timing)
    except (OSError, ValueError, KeyError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
