#!/usr/bin/env bash
# Golden remark-dump helper.
#
#   scripts/check_golden.sh [BUILD_DIR]            diff mode (default)
#   scripts/check_golden.sh --regen [BUILD_DIR]    rewrite tests/golden/*
#
# Diff mode runs the golden remark tests against the committed dumps and
# fails on any drift. Regen mode rewrites tests/golden/remarks_fig{2,7,10}.txt
# in the source tree (commit the result) and then re-runs the tests to prove
# the regenerated files round-trip.
set -euo pipefail

regen=0
if [[ "${1:-}" == "--regen" ]]; then
  regen=1
  shift
fi

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
test_bin="$build_dir/tests/test_remarks"

# Every golden dump the suite diffs against must exist up front: a missing
# file must fail loudly by name, never skip as a silently-passing test.
# (Checked before the binary so the failure is caught even on unbuilt trees;
# regen mode is exempt since its whole point is recreating the files.)
golden_files=(remarks_fig2.txt remarks_fig7.txt remarks_fig10.txt
              repro_p2.parcm repro_p3.parcm)
if [[ "$regen" == 0 ]]; then
  for f in "${golden_files[@]}"; do
    if [[ ! -f "$repo_root/tests/golden/$f" ]]; then
      echo "error: missing golden file tests/golden/$f" >&2
      echo "regenerate with: scripts/check_golden.sh --regen $build_dir" >&2
      exit 3
    fi
  done
fi

if [[ ! -x "$test_bin" ]]; then
  echo "error: $test_bin not found — configure and build first:" >&2
  echo "  cmake -B $build_dir -S $repo_root && cmake --build $build_dir -j" >&2
  exit 2
fi

if [[ "$regen" == 1 ]]; then
  echo "== regenerating tests/golden/ =="
  PARCM_REGEN_GOLDEN=1 "$test_bin" --gtest_filter='RemarkGolden.*'
  git -C "$repo_root" --no-pager diff --stat -- tests/golden || true
fi

echo "== checking golden remark dumps =="
out="$("$test_bin" --gtest_filter='RemarkGolden.*')"
echo "$out"
if grep -q "Running 0 tests" <<<"$out"; then
  echo "error: gtest filter 'RemarkGolden.*' matched no tests" >&2
  exit 4
fi
echo "golden remark dumps are up to date"
