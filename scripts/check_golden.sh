#!/usr/bin/env bash
# Golden remark-dump helper.
#
#   scripts/check_golden.sh [BUILD_DIR]            diff mode (default)
#   scripts/check_golden.sh --regen [BUILD_DIR]    rewrite tests/golden/*
#
# Diff mode runs the golden remark tests against the committed dumps and
# fails on any drift. Regen mode rewrites tests/golden/remarks_fig{2,7,10}.txt
# in the source tree (commit the result) and then re-runs the tests to prove
# the regenerated files round-trip.
set -euo pipefail

regen=0
if [[ "${1:-}" == "--regen" ]]; then
  regen=1
  shift
fi

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
test_bin="$build_dir/tests/test_remarks"

if [[ ! -x "$test_bin" ]]; then
  echo "error: $test_bin not found — configure and build first:" >&2
  echo "  cmake -B $build_dir -S $repo_root && cmake --build $build_dir -j" >&2
  exit 2
fi

if [[ "$regen" == 1 ]]; then
  echo "== regenerating tests/golden/ =="
  PARCM_REGEN_GOLDEN=1 "$test_bin" --gtest_filter='RemarkGolden.*'
  git -C "$repo_root" --no-pager diff --stat -- tests/golden || true
fi

echo "== checking golden remark dumps =="
"$test_bin" --gtest_filter='RemarkGolden.*'
echo "golden remark dumps are up to date"
