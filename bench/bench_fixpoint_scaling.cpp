// Experiment C1 — "unidirectional bitvector analyses can be performed for
// parallel programs as easily and as efficiently as for sequential ones"
// ([17], restated in the paper's abstract). Compares PMFP_BV solve time on
// sequential chains vs. parallel programs of comparable node count, and
// scaling over component count and nesting depth.
#include <benchmark/benchmark.h>

#include "bench_support.hpp"

#include "analyses/upsafety.hpp"
#include "dfa/packed.hpp"
#include "dfa/seq_solver.hpp"
#include "workload/families.hpp"

namespace parcm {
namespace {

void solve_upsafety(benchmark::State& state, const Graph& g,
                    WorklistPolicy wl = WorklistPolicy::kSparseRpo) {
  TermTable terms(g);
  LocalPredicates preds(g, terms);
  InterleavingInfo itlv(g);
  PackedProblem p = make_upsafety_problem(g, preds, SafetyVariant::kRefined);
  p.worklist = wl;
  std::size_t relaxations = 0;
  for (auto _ : state) {
    PackedResult r = solve_packed(g, p);
    relaxations = r.relaxations;
    benchmark::DoNotOptimize(r.entry.data());
  }
  state.counters["nodes"] = static_cast<double>(g.num_nodes());
  state.counters["terms"] = static_cast<double>(terms.size());
  state.counters["relaxations"] = static_cast<double>(relaxations);
}

void BM_SequentialChain(benchmark::State& state) {
  Graph g = families::seq_chain(static_cast<std::size_t>(state.range(0)));
  solve_upsafety(state, g);
}
BENCHMARK(BM_SequentialChain)->Range(64, 8192);

// Legacy dense-FIFO worklist on the same program: the sparse/FIFO pair of a
// family quantifies what the sparse seeding saves (relaxations and time).
void BM_SequentialChainFifo(benchmark::State& state) {
  Graph g = families::seq_chain(static_cast<std::size_t>(state.range(0)));
  solve_upsafety(state, g, WorklistPolicy::kDenseFifo);
}
BENCHMARK(BM_SequentialChainFifo)->Range(64, 8192);

void BM_ParallelWide2(benchmark::State& state) {
  // Same total assignment count as the sequential chain, split over two
  // components.
  std::size_t n = static_cast<std::size_t>(state.range(0));
  Graph g = families::par_wide(2, n / 2);
  solve_upsafety(state, g);
}
BENCHMARK(BM_ParallelWide2)->Range(64, 8192);

void BM_ParallelWide2Fifo(benchmark::State& state) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  Graph g = families::par_wide(2, n / 2);
  solve_upsafety(state, g, WorklistPolicy::kDenseFifo);
}
BENCHMARK(BM_ParallelWide2Fifo)->Range(64, 8192);

void BM_ParallelComponents(benchmark::State& state) {
  // Fixed total size, varying component count.
  std::size_t comps = static_cast<std::size_t>(state.range(0));
  Graph g = families::par_wide(comps, 1024 / comps);
  solve_upsafety(state, g);
}
BENCHMARK(BM_ParallelComponents)->RangeMultiplier(2)->Range(2, 32);

void BM_ParallelComponentsFifo(benchmark::State& state) {
  std::size_t comps = static_cast<std::size_t>(state.range(0));
  Graph g = families::par_wide(comps, 1024 / comps);
  solve_upsafety(state, g, WorklistPolicy::kDenseFifo);
}
BENCHMARK(BM_ParallelComponentsFifo)->RangeMultiplier(2)->Range(2, 32);

void BM_ParallelNesting(benchmark::State& state) {
  std::size_t depth = static_cast<std::size_t>(state.range(0));
  Graph g = families::par_nested(depth, 64);
  solve_upsafety(state, g);
}
BENCHMARK(BM_ParallelNesting)->DenseRange(1, 8);

void BM_ParallelNestingFifo(benchmark::State& state) {
  std::size_t depth = static_cast<std::size_t>(state.range(0));
  Graph g = families::par_nested(depth, 64);
  solve_upsafety(state, g, WorklistPolicy::kDenseFifo);
}
BENCHMARK(BM_ParallelNestingFifo)->DenseRange(1, 8);

void BM_SeqSolverBaseline(benchmark::State& state) {
  // The plain sequential engine on the same chain: the "for free" claim is
  // that the hierarchical engine stays within a small constant of this.
  Graph g = families::seq_chain(static_cast<std::size_t>(state.range(0)));
  TermTable terms(g);
  LocalPredicates preds(g, terms);
  PackedProblem pp = make_upsafety_problem(g, preds, SafetyVariant::kNaive);
  SeqProblem sp{pp.dir, pp.num_terms, pp.gen, pp.kill, pp.boundary};
  for (auto _ : state) {
    SeqResult r = solve_seq(g, sp);
    benchmark::DoNotOptimize(r.entry.data());
  }
  state.counters["nodes"] = static_cast<double>(g.num_nodes());
}
BENCHMARK(BM_SeqSolverBaseline)->Range(64, 8192);

}  // namespace
}  // namespace parcm

PARCM_BENCH_MAIN("bench_fixpoint_scaling")
