// Figure 2 / Experiment C4 — computational vs. executional optimality.
// Sweeps the bottleneck-component length and reports, for the original
// program, the naive as-early-as-possible placement (Fig. 2b) and PCM
// (Fig. 2c): execution time under the paper's cost model (max across
// components, sum along sequences) and the interleaving computation count.
#include <benchmark/benchmark.h>

#include "bench_support.hpp"

#include "motion/pcm.hpp"
#include "semantics/cost.hpp"
#include "workload/families.hpp"

namespace parcm {
namespace {

enum class Which { kOriginal, kNaive, kPcm };

void run(benchmark::State& state, Which which) {
  std::size_t bottleneck = static_cast<std::size_t>(state.range(0));
  Graph g = families::fig2_family(bottleneck);
  Graph subject = [&] {
    switch (which) {
      case Which::kOriginal:
        return g;
      case Which::kNaive:
        return naive_parallel_code_motion(g).graph;
      case Which::kPcm:
        return parallel_code_motion(g).graph;
    }
    return g;
  }();

  std::uint64_t time = 0, comps = 0;
  for (auto _ : state) {
    FixedOracle oracle(0);
    CostResult r = execution_time(subject, oracle);
    time = r.time;
    comps = r.computations;
    benchmark::DoNotOptimize(r.time);
  }
  state.counters["exec_time"] = static_cast<double>(time);
  state.counters["computations"] = static_cast<double>(comps);
}

void BM_Fig2_Original(benchmark::State& state) { run(state, Which::kOriginal); }
void BM_Fig2_NaivePlacement(benchmark::State& state) { run(state, Which::kNaive); }
void BM_Fig2_PCM(benchmark::State& state) { run(state, Which::kPcm); }

BENCHMARK(BM_Fig2_Original)->DenseRange(1, 10)->ArgName("bottleneck");
BENCHMARK(BM_Fig2_NaivePlacement)->DenseRange(1, 10)->ArgName("bottleneck");
BENCHMARK(BM_Fig2_PCM)->DenseRange(1, 10)->ArgName("bottleneck");

}  // namespace
}  // namespace parcm

PARCM_BENCH_MAIN("bench_fig2_exectime")
