// Experiment C5 — the bitvector implementation claim: solving all terms at
// once word-parallel vs. one scalar fixpoint per term.
#include <benchmark/benchmark.h>

#include "bench_support.hpp"

#include "analyses/downsafety.hpp"
#include "analyses/upsafety.hpp"
#include "dfa/hier_solver.hpp"
#include "dfa/packed.hpp"
#include "workload/families.hpp"

namespace parcm {
namespace {

Graph make_graph(std::int64_t term_pool) {
  return families::par_wide(4, 128, static_cast<std::size_t>(term_pool));
}

void BM_PackedAllTerms(benchmark::State& state) {
  Graph g = make_graph(state.range(0));
  TermTable terms(g);
  LocalPredicates preds(g, terms);
  InterleavingInfo itlv(g);
  PackedProblem p = make_upsafety_problem(g, preds, SafetyVariant::kRefined);
  for (auto _ : state) {
    PackedResult r = solve_packed(g, p);
    benchmark::DoNotOptimize(r.entry.data());
  }
  state.counters["terms"] = static_cast<double>(terms.size());
}
BENCHMARK(BM_PackedAllTerms)->RangeMultiplier(2)->Range(4, 256);

void BM_ScalarPerTerm(benchmark::State& state) {
  Graph g = make_graph(state.range(0));
  TermTable terms(g);
  LocalPredicates preds(g, terms);
  InterleavingInfo itlv(g);
  PackedProblem p = make_upsafety_problem(g, preds, SafetyVariant::kRefined);
  for (auto _ : state) {
    for (std::size_t t = 0; t < p.num_terms; ++t) {
      BitResult r = solve_bit(g, extract_term_problem(p, t));
      benchmark::DoNotOptimize(r.entry.data());
    }
  }
  state.counters["terms"] = static_cast<double>(terms.size());
}
BENCHMARK(BM_ScalarPerTerm)->RangeMultiplier(2)->Range(4, 256);

void BM_PackedBothAnalyses(benchmark::State& state) {
  // The full PCM analysis cost: two unidirectional bitvector passes.
  Graph g = make_graph(state.range(0));
  TermTable terms(g);
  LocalPredicates preds(g, terms);
  InterleavingInfo itlv(g);
  for (auto _ : state) {
    PackedResult up =
        compute_upsafety(g, preds, SafetyVariant::kRefined);
    PackedResult down =
        compute_downsafety(g, preds, SafetyVariant::kRefined);
    benchmark::DoNotOptimize(up.entry.data());
    benchmark::DoNotOptimize(down.entry.data());
  }
}
BENCHMARK(BM_PackedBothAnalyses)->RangeMultiplier(4)->Range(4, 256);

}  // namespace
}  // namespace parcm

PARCM_BENCH_MAIN("bench_packed_vs_scalar")
