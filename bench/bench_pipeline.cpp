// Experiment C3 — end-to-end transformation cost: PCM is "composed of only
// two unidirectional bitvector data-flow analyses" and "similarly efficient"
// to sequential BCM. Measures the full pipeline (join splitting, term
// collection, both analyses, placement) on random and family programs.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <limits>

#include "bench_support.hpp"

#include "motion/bcm.hpp"
#include "motion/pcm.hpp"
#include "obs/remarks.hpp"
#include "workload/families.hpp"
#include "workload/randomprog.hpp"

namespace parcm {
namespace {

void BM_BcmPipelineSequential(benchmark::State& state) {
  Graph g = families::seq_chain(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    MotionResult r = busy_code_motion(g);
    benchmark::DoNotOptimize(r.graph.num_nodes());
  }
  state.counters["nodes"] = static_cast<double>(g.num_nodes());
}
BENCHMARK(BM_BcmPipelineSequential)->Range(64, 4096);

void BM_PcmPipelineParallel(benchmark::State& state) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  Graph g = families::par_wide(4, n / 4);
  for (auto _ : state) {
    MotionResult r = parallel_code_motion(g);
    benchmark::DoNotOptimize(r.graph.num_nodes());
  }
  state.counters["nodes"] = static_cast<double>(g.num_nodes());
}
BENCHMARK(BM_PcmPipelineParallel)->Range(64, 4096);

void BM_PcmPipelineRandom(benchmark::State& state) {
  Rng rng(static_cast<std::uint64_t>(state.range(0)));
  RandomProgramOptions opt;
  opt.target_stmts = 200;
  opt.max_par_depth = 3;
  Graph g = random_program(rng, opt);
  for (auto _ : state) {
    MotionResult r = parallel_code_motion(g);
    benchmark::DoNotOptimize(r.graph.num_nodes());
  }
  state.counters["nodes"] = static_cast<double>(g.num_nodes());
}
BENCHMARK(BM_PcmPipelineRandom)->DenseRange(1, 4);

void BM_NaiveVsRefinedAnalysisCost(benchmark::State& state) {
  // The refinements are free: same two passes, only the synchronization
  // step differs.
  std::size_t n = static_cast<std::size_t>(state.range(0));
  Graph g = families::par_wide(4, n / 4);
  bool refined = state.range(1) != 0;
  for (auto _ : state) {
    MotionResult r = refined ? parallel_code_motion(g)
                             : naive_parallel_code_motion(g);
    benchmark::DoNotOptimize(r.graph.num_nodes());
  }
}
BENCHMARK(BM_NaiveVsRefinedAnalysisCost)
    ->Args({512, 0})
    ->Args({512, 1})
    ->Args({2048, 0})
    ->Args({2048, 1});

// Remark-provenance overhead guard: the remark layer promises < 5% cost on
// the end-to-end pipeline when recording is on (and ~zero when the sink is
// disabled — the macros cost a single predictable branch). Off/on runs are
// interleaved so machine drift hits both sides of the ratio equally, and
// the minimum over the pairs estimates the noise-free cost. Only the best
// iteration is judged: a genuinely fast run under the budget proves the
// instrumentation is cheap, while a busy machine merely inflates the other
// iterations. An absolute floor avoids flagging sub-noise deltas on tiny
// inputs. Violations surface as a failed benchmark (SkipWithError), so
// `ctest -C bench -L bench` turns red.
void BM_RemarkOverheadGuard(benchmark::State& state) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  Graph g = families::par_wide(4, n / 4);

  obs::RemarkSink sink;
  obs::RemarkSink* prev = obs::set_remark_sink(&sink);
  auto run_once = [&](bool with_remarks) {
    sink.clear();
    sink.set_enabled(with_remarks);
    auto start = std::chrono::steady_clock::now();
    MotionResult r = parallel_code_motion(g);
    benchmark::DoNotOptimize(r.graph.num_nodes());
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
  };

  constexpr int kPairs = 12;
  constexpr double kMaxOverheadPct = 5.0;
  constexpr double kNoiseFloorMs = 0.05;
  double best_pct = std::numeric_limits<double>::infinity();
  double best_delta_ms = std::numeric_limits<double>::infinity();
  run_once(false);
  run_once(true);  // warm caches before the paired measurement
  for (auto _ : state) {
    double off_ms = std::numeric_limits<double>::infinity();
    double on_ms = std::numeric_limits<double>::infinity();
    for (int i = 0; i < kPairs; ++i) {
      off_ms = std::min(off_ms, run_once(false));
      on_ms = std::min(on_ms, run_once(true));
    }
    double pct = off_ms > 0.0 ? (on_ms - off_ms) / off_ms * 100.0 : 0.0;
    if (pct < best_pct) {
      best_pct = pct;
      best_delta_ms = on_ms - off_ms;
    }
    state.counters["remarks"] = static_cast<double>(sink.size());
    state.counters["overhead_pct"] = pct;
  }
  obs::set_remark_sink(prev);
  state.counters["best_overhead_pct"] = best_pct;
  if (best_delta_ms > kNoiseFloorMs && best_pct > kMaxOverheadPct) {
    state.SkipWithError("remark overhead exceeds 5% of pipeline time");
  }
}
BENCHMARK(BM_RemarkOverheadGuard)->Arg(512)->Arg(2048)
    ->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace
}  // namespace parcm

PARCM_BENCH_MAIN("bench_pipeline")
