// Experiment C3 — end-to-end transformation cost: PCM is "composed of only
// two unidirectional bitvector data-flow analyses" and "similarly efficient"
// to sequential BCM. Measures the full pipeline (join splitting, term
// collection, both analyses, placement) on random and family programs.
#include <benchmark/benchmark.h>

#include "bench_support.hpp"

#include "motion/bcm.hpp"
#include "motion/pcm.hpp"
#include "workload/families.hpp"
#include "workload/randomprog.hpp"

namespace parcm {
namespace {

void BM_BcmPipelineSequential(benchmark::State& state) {
  Graph g = families::seq_chain(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    MotionResult r = busy_code_motion(g);
    benchmark::DoNotOptimize(r.graph.num_nodes());
  }
  state.counters["nodes"] = static_cast<double>(g.num_nodes());
}
BENCHMARK(BM_BcmPipelineSequential)->Range(64, 4096);

void BM_PcmPipelineParallel(benchmark::State& state) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  Graph g = families::par_wide(4, n / 4);
  for (auto _ : state) {
    MotionResult r = parallel_code_motion(g);
    benchmark::DoNotOptimize(r.graph.num_nodes());
  }
  state.counters["nodes"] = static_cast<double>(g.num_nodes());
}
BENCHMARK(BM_PcmPipelineParallel)->Range(64, 4096);

void BM_PcmPipelineRandom(benchmark::State& state) {
  Rng rng(static_cast<std::uint64_t>(state.range(0)));
  RandomProgramOptions opt;
  opt.target_stmts = 200;
  opt.max_par_depth = 3;
  Graph g = random_program(rng, opt);
  for (auto _ : state) {
    MotionResult r = parallel_code_motion(g);
    benchmark::DoNotOptimize(r.graph.num_nodes());
  }
  state.counters["nodes"] = static_cast<double>(g.num_nodes());
}
BENCHMARK(BM_PcmPipelineRandom)->DenseRange(1, 4);

void BM_NaiveVsRefinedAnalysisCost(benchmark::State& state) {
  // The refinements are free: same two passes, only the synchronization
  // step differs.
  std::size_t n = static_cast<std::size_t>(state.range(0));
  Graph g = families::par_wide(4, n / 4);
  bool refined = state.range(1) != 0;
  for (auto _ : state) {
    MotionResult r = refined ? parallel_code_motion(g)
                             : naive_parallel_code_motion(g);
    benchmark::DoNotOptimize(r.graph.num_nodes());
  }
}
BENCHMARK(BM_NaiveVsRefinedAnalysisCost)
    ->Args({512, 0})
    ->Args({512, 1})
    ->Args({2048, 0})
    ->Args({2048, 1});

}  // namespace
}  // namespace parcm

PARCM_BENCH_MAIN("bench_pipeline")
