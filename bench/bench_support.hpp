// Shared harness for the parcm benchmark binaries.
//
// PARCM_BENCH_MAIN("bench_foo") replaces BENCHMARK_MAIN(). On top of the
// normal console output the harness can emit one machine-readable file with
// the unified parcm bench schema:
//
//   {"schema": "parcm-bench-v1",
//    "bench": "bench_foo",
//    "results": [{"name", "iterations", "real_ns_per_iter",
//                 "cpu_ns_per_iter", "counters": {...}}, ...],
//    "obs": { the obs::Registry snapshot (parcm-metrics-v1) },
//    "alloc": { operator-new accounting for the bench's main thread }}
//
// The output path comes from --obs_json=FILE (stripped before the flags
// reach google-benchmark) or, when the flag is absent, from the
// PARCM_BENCH_JSON_DIR environment variable as
// $PARCM_BENCH_JSON_DIR/BENCH_<name>.json. Without either, no file is
// written and the harness behaves exactly like BENCHMARK_MAIN().
#pragma once

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "obs/alloc.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace parcm::benchsupport {

struct ResultRow {
  std::string name;
  std::int64_t iterations = 0;
  double real_ns_per_iter = 0.0;
  double cpu_ns_per_iter = 0.0;
  std::map<std::string, double> counters;
};

// Console reporter that additionally keeps every per-iteration run so the
// harness can serialize them after RunSpecifiedBenchmarks returns.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      ResultRow row;
      row.name = run.benchmark_name();
      row.iterations = run.iterations;
      if (run.iterations > 0) {
        double iters = static_cast<double>(run.iterations);
        row.real_ns_per_iter = run.real_accumulated_time * 1e9 / iters;
        row.cpu_ns_per_iter = run.cpu_accumulated_time * 1e9 / iters;
      }
      for (const auto& [name, counter] : run.counters) {
        row.counters.emplace(name, counter.value);
      }
      rows.push_back(std::move(row));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  std::vector<ResultRow> rows;
};

inline std::string bench_json(const std::string& bench_name,
                              const std::vector<ResultRow>& rows) {
  obs::JsonWriter w(/*pretty=*/true);
  w.begin_object();
  w.key("schema").value("parcm-bench-v1");
  w.key("bench").value(bench_name);
  w.key("results").begin_array();
  for (const ResultRow& row : rows) {
    w.begin_object();
    w.key("name").value(row.name);
    w.key("iterations").value(row.iterations);
    w.key("real_ns_per_iter").value(row.real_ns_per_iter);
    w.key("cpu_ns_per_iter").value(row.cpu_ns_per_iter);
    w.key("counters").begin_object();
    for (const auto& [name, value] : row.counters) w.key(name).value(value);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.key("obs");
  obs::registry().write_json(w);
  // Allocation pressure of the whole run (google-benchmark overhead
  // included) — coarse, but enough to catch an allocation-rate regression.
  w.key("alloc").begin_object();
  w.key("hook_active").value(obs::alloc_hook_active());
  w.key("main_thread_allocs").value(obs::thread_alloc_count());
  w.key("main_thread_bytes").value(obs::thread_alloc_bytes());
  w.end_object();
  w.end_object();
  return w.take();
}

inline int bench_main(const char* bench_name, int argc, char** argv) {
  const std::string flag = "--obs_json=";
  std::string out_path;
  std::vector<char*> filtered;
  for (int i = 0; i < argc; ++i) {
    std::string_view a = argv[i];
    if (i > 0 && a.substr(0, flag.size()) == flag) {
      out_path = std::string(a.substr(flag.size()));
    } else {
      filtered.push_back(argv[i]);
    }
  }
  if (out_path.empty()) {
    if (const char* dir = std::getenv("PARCM_BENCH_JSON_DIR")) {
      out_path = std::string(dir) + "/BENCH_" + bench_name + ".json";
    }
  }

  int fargc = static_cast<int>(filtered.size());
  filtered.push_back(nullptr);
  benchmark::Initialize(&fargc, filtered.data());
  if (benchmark::ReportUnrecognizedArguments(fargc, filtered.data())) return 1;

  CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "cannot write " << out_path << "\n";
      return 1;
    }
    out << bench_json(bench_name, reporter.rows) << "\n";
    std::cerr << "wrote " << out_path << "\n";
  }
  return 0;
}

}  // namespace parcm::benchsupport

#define PARCM_BENCH_MAIN(name)                        \
  int main(int argc, char** argv) {                   \
    return ::parcm::benchsupport::bench_main(name, argc, argv); \
  }
