// Ablation benches for the design choices called out in DESIGN.md:
//  - BCM vs LCM on sequential programs (temporary lifetimes — the register
//    pressure argument for laziness),
//  - PCM with and without anchor sinking / privatization (cost of the
//    soundness and profitability machinery),
//  - analysis-only vs full-transformation split.
#include <benchmark/benchmark.h>

#include "bench_support.hpp"

#include "analyses/liveness.hpp"
#include "motion/bcm.hpp"
#include "motion/lcm.hpp"
#include "motion/pcm.hpp"
#include "workload/families.hpp"
#include "workload/randomprog.hpp"

namespace parcm {
namespace {

void BM_BcmTempLifetime(benchmark::State& state) {
  Graph g = families::seq_chain(static_cast<std::size_t>(state.range(0)));
  std::size_t lifetime = 0;
  for (auto _ : state) {
    MotionResult r = busy_code_motion(g);
    lifetime = total_temp_lifetime(r.graph);
    benchmark::DoNotOptimize(lifetime);
  }
  state.counters["lifetime"] = static_cast<double>(lifetime);
}
BENCHMARK(BM_BcmTempLifetime)->Range(64, 1024);

void BM_LcmTempLifetime(benchmark::State& state) {
  Graph g = families::seq_chain(static_cast<std::size_t>(state.range(0)));
  std::size_t lifetime = 0;
  for (auto _ : state) {
    MotionResult r = lazy_code_motion(g);
    lifetime = total_temp_lifetime(r.graph);
    benchmark::DoNotOptimize(lifetime);
  }
  state.counters["lifetime"] = static_cast<double>(lifetime);
}
BENCHMARK(BM_LcmTempLifetime)->Range(64, 1024);

void run_pcm_config(benchmark::State& state, bool sink, bool privatize) {
  Graph g = families::par_wide(4, 64);
  CodeMotionConfig cfg;
  cfg.sink_anchors = sink;
  cfg.privatize_temps = privatize;
  std::size_t inserts = 0;
  for (auto _ : state) {
    MotionResult r = run_code_motion(g, cfg);
    inserts = r.num_insertions();
    benchmark::DoNotOptimize(r.graph.num_nodes());
  }
  state.counters["insertions"] = static_cast<double>(inserts);
}

void BM_PcmFull(benchmark::State& state) { run_pcm_config(state, true, true); }
void BM_PcmNoSinking(benchmark::State& state) {
  run_pcm_config(state, false, true);
}
void BM_PcmNoPrivatization(benchmark::State& state) {
  run_pcm_config(state, true, false);
}
BENCHMARK(BM_PcmFull);
BENCHMARK(BM_PcmNoSinking);
BENCHMARK(BM_PcmNoPrivatization);

}  // namespace
}  // namespace parcm

PARCM_BENCH_MAIN("bench_ablation")
