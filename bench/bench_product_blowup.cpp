// Experiment C2 — the product program is "in the worst case exponentially
// larger" (paper Sec. 2 / Fig. 6): measures product size and PMOP-via-
// product time against the hierarchical PMFP on the compact graph.
#include <benchmark/benchmark.h>

#include "bench_support.hpp"

#include "analyses/upsafety.hpp"
#include "dfa/packed.hpp"
#include "semantics/product.hpp"
#include "workload/families.hpp"

namespace parcm {
namespace {

void BM_ProductConstruction(benchmark::State& state) {
  std::size_t comps = static_cast<std::size_t>(state.range(0));
  std::size_t len = static_cast<std::size_t>(state.range(1));
  Graph g = families::par_wide(comps, len);
  std::size_t configs = 0;
  for (auto _ : state) {
    ProductProgram p = build_product(g, 4u << 20);
    configs = p.num_configs;
    benchmark::DoNotOptimize(p.graph.num_nodes());
  }
  state.counters["compact_nodes"] = static_cast<double>(g.num_nodes());
  state.counters["product_nodes"] = static_cast<double>(configs);
  state.counters["blowup"] =
      static_cast<double>(configs) / static_cast<double>(g.num_nodes());
}
BENCHMARK(BM_ProductConstruction)
    ->Args({2, 2})
    ->Args({2, 4})
    ->Args({2, 8})
    ->Args({2, 16})
    ->Args({3, 2})
    ->Args({3, 4})
    ->Args({3, 8})
    ->Args({4, 2})
    ->Args({4, 4})
    ->Args({5, 3});

void BM_PmopViaProduct(benchmark::State& state) {
  std::size_t comps = static_cast<std::size_t>(state.range(0));
  std::size_t len = static_cast<std::size_t>(state.range(1));
  Graph g = families::par_wide(comps, len);
  ProductProgram prod = build_product(g, 4u << 20);
  TermTable terms(g);
  LocalPredicates preds(g, terms);
  PackedProblem p = make_upsafety_problem(g, preds, SafetyVariant::kNaive);
  for (auto _ : state) {
    PmopResult r = solve_pmop_via_product(g, prod, p);
    benchmark::DoNotOptimize(r.entry.data());
  }
  state.counters["product_nodes"] = static_cast<double>(prod.num_configs);
}
BENCHMARK(BM_PmopViaProduct)->Args({2, 4})->Args({2, 8})->Args({3, 4});

void BM_PmfpOnCompactGraph(benchmark::State& state) {
  // The same solution via the hierarchical solver: the paper's point is
  // that this side does NOT grow with the number of interleavings.
  std::size_t comps = static_cast<std::size_t>(state.range(0));
  std::size_t len = static_cast<std::size_t>(state.range(1));
  Graph g = families::par_wide(comps, len);
  TermTable terms(g);
  LocalPredicates preds(g, terms);
  InterleavingInfo itlv(g);
  PackedProblem p = make_upsafety_problem(g, preds, SafetyVariant::kNaive);
  for (auto _ : state) {
    PackedResult r = solve_packed(g, p);
    benchmark::DoNotOptimize(r.entry.data());
  }
  state.counters["compact_nodes"] = static_cast<double>(g.num_nodes());
}
BENCHMARK(BM_PmfpOnCompactGraph)->Args({2, 4})->Args({2, 8})->Args({3, 4})
    ->Args({4, 16})->Args({8, 64});

}  // namespace
}  // namespace parcm

PARCM_BENCH_MAIN("bench_product_blowup")
