// Executional-improvement VM — wall-clock before/after PCM execution cost.
//
// Three result groups feed BENCH_exec.json (parcm-bench-v1):
//   BM_VmFig{2,7,10}_{Original,Pcm}   wall-clock of a seeded VM run on the
//                                     paper figures before/after PCM, with
//                                     the deterministic model cost
//                                     (exec_time / computations / instrs)
//                                     as counters — the machine-readable
//                                     form of the EXPERIMENTS.md table.
//   BM_VmCorpus                       the pooled random corpus through
//                                     vm::run_exec_corpus: improved /
//                                     equal / regressed schedule tallies
//                                     and the analytic cross-check
//                                     (vm_cost_mismatches, gated to 0).
//   BM_VmOracleSpeedup                vm_differential_check vs the exact
//                                     enumerative differential_check over
//                                     one pooled corpus slice; the
//                                     vm_oracle_speedup counter carries
//                                     the measured throughput ratio and
//                                     check_bench_regression.py holds it
//                                     to the >= 5x floor.
#include <benchmark/benchmark.h>

#include <chrono>
#include <utility>
#include <vector>

#include "bench_support.hpp"

#include "figures/figures.hpp"
#include "lang/lower.hpp"
#include "semantics/cost.hpp"
#include "verify/fuzz.hpp"
#include "verify/verify.hpp"
#include "verify/vm_oracle.hpp"
#include "vm/bytecode.hpp"
#include "vm/executor.hpp"
#include "vm/harness.hpp"

namespace parcm {
namespace {

enum class Which { kOriginal, kPcm };

void run_figure(benchmark::State& state, const Graph& g, Which which) {
  Graph subject =
      which == Which::kPcm ? verify::apply_named_pipeline("pcm", g) : g;
  vm::VmProgram p = vm::lower_to_bytecode(subject);
  vm::ExecLimits limits;
  std::uint64_t instrs = 0;
  for (auto _ : state) {
    // Fixed seed: the run is deterministic while the wall clock measures
    // the executor itself.
    vm::ExecResult r = vm::run_seeded(p, /*seed=*/0, limits);
    instrs = r.instrs;
    benchmark::DoNotOptimize(r.store);
  }
  // Model cost under a pinned branch oracle — deterministic counters.
  // (SeededOracle, not FixedOracle: always-0 choices spin forever in
  // fig10's loop.)
  SeededOracle oracle(0);
  vm::ExecResult cost = vm::run_with_oracle(p, oracle, limits);
  state.counters["exec_time"] = static_cast<double>(cost.time);
  state.counters["computations"] = static_cast<double>(cost.computations);
  state.counters["instrs"] = static_cast<double>(instrs);
}

void BM_VmFig2_Original(benchmark::State& state) {
  run_figure(state, figures::fig2(), Which::kOriginal);
}
void BM_VmFig2_Pcm(benchmark::State& state) {
  run_figure(state, figures::fig2(), Which::kPcm);
}
void BM_VmFig7_Original(benchmark::State& state) {
  run_figure(state, figures::fig7(), Which::kOriginal);
}
void BM_VmFig7_Pcm(benchmark::State& state) {
  run_figure(state, figures::fig7(), Which::kPcm);
}
void BM_VmFig10_Original(benchmark::State& state) {
  run_figure(state, figures::fig10(), Which::kOriginal);
}
void BM_VmFig10_Pcm(benchmark::State& state) {
  run_figure(state, figures::fig10(), Which::kPcm);
}

BENCHMARK(BM_VmFig2_Original);
BENCHMARK(BM_VmFig2_Pcm);
BENCHMARK(BM_VmFig7_Original);
BENCHMARK(BM_VmFig7_Pcm);
BENCHMARK(BM_VmFig10_Original);
BENCHMARK(BM_VmFig10_Pcm);

// The pooled random corpus: per-schedule improved/equal/regressed tallies
// plus the analytic cost cross-check. vm_regressed_paths and
// vm_cost_mismatches are deterministic and bounded to zero by the gate —
// PCM must never execute worse on any sampled schedule, and the VM's phase
// algebra must never drift from src/semantics' CostWalker.
void BM_VmCorpus(benchmark::State& state) {
  vm::CorpusOptions opt;
  opt.seed = 29;
  opt.programs = 24;
  opt.shapes = 8;
  opt.schedules = 6;
  vm::CorpusReport report;
  for (auto _ : state) {
    report = vm::run_exec_corpus(opt);
    benchmark::DoNotOptimize(report.pairs);
  }
  state.counters["pairs"] = static_cast<double>(report.pairs);
  state.counters["improved"] = static_cast<double>(report.improved);
  state.counters["equal"] = static_cast<double>(report.equal);
  state.counters["vm_regressed_paths"] = static_cast<double>(report.regressed);
  state.counters["vm_cost_mismatches"] =
      static_cast<double>(report.cost_mismatches);
  state.counters["time_original"] = static_cast<double>(report.time_original);
  state.counters["time_optimized"] =
      static_cast<double>(report.time_optimized);
}
BENCHMARK(BM_VmCorpus);

// Oracle throughput: the reason the VM oracle exists. One pooled corpus
// slice is checked by both oracles; the exact checker's wall is measured
// once up front (it enumerates the full product automaton, so re-running
// it per iteration would dominate the bench), the VM oracle inside the
// timed loop. vm_oracle_speedup = exact wall / VM wall per program pair,
// floor-gated at 5x by check_bench_regression.py.
void BM_VmOracleSpeedup(benchmark::State& state) {
  using clock = std::chrono::steady_clock;
  RandomProgramOptions gen = verify::default_fuzz_gen();
  // A notch above the fuzz default: exact enumeration scales exponentially
  // in program size while the VM scales linearly, so the measured ratio
  // stays comfortably clear of the 5x floor instead of straddling it.
  gen.target_stmts = 12;
  std::vector<std::pair<Graph, Graph>> pairs;
  for (std::size_t i = 0; i < 16; ++i) {
    Graph before =
        lang::lower(verify::fuzz_program_pooled(/*seed=*/101, i, 8, gen));
    Graph after = verify::apply_named_pipeline("pcm", before);
    pairs.emplace_back(std::move(before), std::move(after));
  }

  // Both oracles run inside the timed loop over the same pairs, so cache
  // and allocator state match and the ratio is stable across runs.
  verify::Budget exact_budget;
  verify::VmBudget vm_budget;
  double exact_ns_total = 0.0, vm_ns_total = 0.0;
  std::int64_t rounds = 0;
  for (auto _ : state) {
    clock::time_point t0 = clock::now();
    for (const auto& [before, after] : pairs) {
      verify::Verdict v =
          verify::differential_check(before, after, exact_budget);
      benchmark::DoNotOptimize(v.status);
    }
    clock::time_point t1 = clock::now();
    for (const auto& [before, after] : pairs) {
      verify::Verdict v = verify::vm_differential_check(before, after,
                                                        vm_budget);
      benchmark::DoNotOptimize(v.status);
    }
    clock::time_point t2 = clock::now();
    exact_ns_total += static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
    vm_ns_total += static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t2 - t1).count());
    ++rounds;
  }
  double scale = rounds > 0 ? 1.0 / static_cast<double>(rounds) : 0.0;
  state.counters["exact_oracle_ns"] = exact_ns_total * scale;
  state.counters["vm_oracle_ns"] = vm_ns_total * scale;
  state.counters["vm_oracle_speedup"] =
      vm_ns_total > 0.0 ? exact_ns_total / vm_ns_total : 0.0;
}
BENCHMARK(BM_VmOracleSpeedup);

}  // namespace
}  // namespace parcm

PARCM_BENCH_MAIN("bench_exec")
