// Figure 10 / Experiment C4 — the power of the complete transformation:
// loop-invariant motion inside parallel components. Sweeps the loop trip
// count (LoopOracle) and the number of loop nests per component, reporting
// cost-model execution times for original vs. PCM.
#include <benchmark/benchmark.h>

#include "bench_support.hpp"

#include "figures/figures.hpp"
#include "motion/pcm.hpp"
#include "semantics/cost.hpp"
#include "workload/families.hpp"

namespace parcm {
namespace {

void report_times(benchmark::State& state, const Graph& original,
                  const Graph& transformed, std::size_t trips) {
  std::uint64_t torig = 0, tpcm = 0;
  for (auto _ : state) {
    LoopOracle o1(trips);
    CostResult a = execution_time(original, o1);
    LoopOracle o2(trips);
    CostResult b = execution_time(transformed, o2);
    torig = a.time;
    tpcm = b.time;
    benchmark::DoNotOptimize(a.time + b.time);
  }
  state.counters["orig_time"] = static_cast<double>(torig);
  state.counters["pcm_time"] = static_cast<double>(tpcm);
  state.counters["speedup"] =
      static_cast<double>(torig) / static_cast<double>(tpcm ? tpcm : 1);
}

void BM_Fig10_TripSweep(benchmark::State& state) {
  Graph g = figures::fig10();
  Graph t = parallel_code_motion(g).graph;
  report_times(state, g, t, static_cast<std::size_t>(state.range(0)));
}
BENCHMARK(BM_Fig10_TripSweep)
    ->ArgName("trips")
    ->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(64)->Arg(256);

void BM_Fig10Family_LoopNests(benchmark::State& state) {
  Graph g = families::fig10_family(static_cast<std::size_t>(state.range(0)));
  Graph t = parallel_code_motion(g).graph;
  report_times(state, g, t, 8);
}
BENCHMARK(BM_Fig10Family_LoopNests)->ArgName("nests")->DenseRange(1, 6);

void BM_Fig10_TransformCost(benchmark::State& state) {
  // The transformation itself: two bitvector analyses + graph surgery.
  Graph g = figures::fig10();
  for (auto _ : state) {
    MotionResult r = parallel_code_motion(g);
    benchmark::DoNotOptimize(r.graph.num_nodes());
  }
}
BENCHMARK(BM_Fig10_TransformCost);

}  // namespace
}  // namespace parcm

PARCM_BENCH_MAIN("bench_fig10_loops")
