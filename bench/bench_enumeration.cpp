// Experiment C6 — cost of the ground-truth machinery: exhaustive
// interleaving enumeration (sequential-consistency checking) under both
// assignment semantics, vs. component count and length.
#include <benchmark/benchmark.h>

#include "bench_support.hpp"

#include "figures/figures.hpp"
#include "ir/builder.hpp"
#include "lang/lower.hpp"
#include "semantics/enumerator.hpp"
#include "semantics/equivalence.hpp"
#include "workload/families.hpp"

namespace parcm {
namespace {

void BM_EnumerateParWide(benchmark::State& state) {
  std::size_t comps = static_cast<std::size_t>(state.range(0));
  std::size_t len = static_cast<std::size_t>(state.range(1));
  Graph g = families::par_wide(comps, len, 2);
  std::size_t states = 0;
  for (auto _ : state) {
    auto r = enumerate_executions(g, {"w"});
    states = r.states_explored;
    benchmark::DoNotOptimize(r.finals.size());
  }
  state.counters["states"] = static_cast<double>(states);
}
BENCHMARK(BM_EnumerateParWide)
    ->Args({2, 2})
    ->Args({2, 4})
    ->Args({2, 6})
    ->Args({3, 2})
    ->Args({3, 3})
    ->Args({4, 2});

void BM_EnumerateSplitSemantics(benchmark::State& state) {
  std::size_t len = static_cast<std::size_t>(state.range(0));
  Graph g = families::par_wide(2, len, 2);
  EnumerationOptions opts;
  opts.atomic_assignments = false;
  std::size_t states = 0;
  for (auto _ : state) {
    auto r = enumerate_executions(g, {"w"}, opts);
    states = r.states_explored;
    benchmark::DoNotOptimize(r.finals.size());
  }
  state.counters["states"] = static_cast<double>(states);
}
BENCHMARK(BM_EnumerateSplitSemantics)->DenseRange(1, 5);

void BM_EnumerateWithPartialOrderReduction(benchmark::State& state) {
  std::size_t comps = static_cast<std::size_t>(state.range(0));
  std::size_t len = static_cast<std::size_t>(state.range(1));
  Graph g = families::par_wide(comps, len, 2);
  EnumerationOptions opts;
  opts.partial_order_reduction = true;
  std::size_t states = 0;
  for (auto _ : state) {
    auto r = enumerate_executions(g, {"w"}, opts);
    states = r.states_explored;
    benchmark::DoNotOptimize(r.finals.size());
  }
  state.counters["states"] = static_cast<double>(states);
}
BENCHMARK(BM_EnumerateWithPartialOrderReduction)
    ->Args({2, 2})
    ->Args({2, 4})
    ->Args({2, 6})
    ->Args({3, 2})
    ->Args({3, 3})
    ->Args({4, 2});

void BM_EnumerateBarrierPrograms(benchmark::State& state) {
  // Barriers cut the interleaving space: the same two components with and
  // without a mid-point barrier.
  std::size_t len = static_cast<std::size_t>(state.range(0));
  bool with_barrier = state.range(1) != 0;
  GraphBuilder b;
  auto component = [&](const char* prefix) {
    return [&b, prefix, len, with_barrier] {
      for (std::size_t i = 0; i < len; ++i) {
        b.assign(std::string(prefix) + std::to_string(i), GraphBuilder::c(1));
      }
      if (with_barrier) b.barrier();
      for (std::size_t i = 0; i < len; ++i) {
        b.assign(std::string(prefix) + "q" + std::to_string(i),
                 GraphBuilder::c(2));
      }
    };
  };
  b.par({component("a"), component("b")});
  Graph g = b.finish();
  std::size_t states = 0;
  for (auto _ : state) {
    auto r = enumerate_executions(g, {"a0"});
    states = r.states_explored;
    benchmark::DoNotOptimize(r.finals.size());
  }
  state.counters["states"] = static_cast<double>(states);
}
BENCHMARK(BM_EnumerateBarrierPrograms)
    ->Args({2, 0})
    ->Args({2, 1})
    ->Args({3, 0})
    ->Args({3, 1})
    ->Args({4, 0})
    ->Args({4, 1});

void BM_EnumerateFigures(benchmark::State& state) {
  const char* ids[] = {"2", "3c", "4", "6"};
  const char* id = ids[state.range(0)];
  Graph g = lang::compile_or_throw(figures::figure_source(id));
  std::vector<std::string> observed = all_var_names(g);
  for (auto _ : state) {
    auto r = enumerate_executions(g, observed);
    benchmark::DoNotOptimize(r.finals.size());
  }
  state.SetLabel(std::string("fig") + id);
}
BENCHMARK(BM_EnumerateFigures)->DenseRange(0, 3);

}  // namespace
}  // namespace parcm

PARCM_BENCH_MAIN("bench_enumeration")
