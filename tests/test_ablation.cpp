// Ablation regression tests: each of the three implementation additions on
// top of the paper's literal formulas is load-bearing. Turning one off
// reproduces a concrete, checkable failure.
#include <gtest/gtest.h>

#include "figures/figures.hpp"
#include "ir/validate.hpp"
#include "lang/lower.hpp"
#include "motion/code_motion.hpp"
#include "semantics/cost.hpp"
#include "semantics/equivalence.hpp"
#include "workload/randomprog.hpp"

namespace parcm {
namespace {

EnumerationOptions split_semantics() {
  EnumerationOptions o;
  o.atomic_assignments = false;
  return o;
}

// A program where the down-safe region for a+b restarts behind the join
// (interference from the first component makes the bystander's nodes
// unsafe): the busy frontier anchors both after the kill inside the
// component and again after the ParEnd, so the else-path pays twice.
const char* kDoublePaySource = R"(
  b := 2;
  par {
    a := 1;
    if (*) { u := a + b; } else { skip; }
  } and {
    c := 3;
  }
  w := a + b;
)";

TEST(Ablation, SinkingPreventsDoubleInitialization) {
  Graph g = lang::compile_or_throw(kDoublePaySource);

  CodeMotionConfig off;
  off.sink_anchors = false;
  MotionResult unsunk = run_code_motion(g, off);
  validate_or_throw(unsunk.graph);
  MotionResult sunk = run_code_motion(g, CodeMotionConfig{});
  validate_or_throw(sunk.graph);

  bool unsunk_regressed = false;
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    auto with = paired_execution_times(g, sunk.graph, seed);
    ASSERT_TRUE(with.has_value());
    EXPECT_LE(with->second.time, with->first.time) << seed;
    auto without = paired_execution_times(g, unsunk.graph, seed);
    ASSERT_TRUE(without.has_value());
    unsunk_regressed |= without->second.time > without->first.time;
  }
  // Without sinking, some path is strictly worse than the original.
  EXPECT_TRUE(unsunk_regressed);
}

TEST(Ablation, SinkingKeepsSemantics) {
  // The unsunk output is still *correct* — the defect is purely
  // executional.
  Graph g = lang::compile_or_throw(kDoublePaySource);
  CodeMotionConfig off;
  off.sink_anchors = false;
  MotionResult unsunk = run_code_motion(g, off);
  auto v = check_sequential_consistency(g, unsunk.graph, {}, split_semantics());
  ASSERT_TRUE(v.exhausted);
  EXPECT_TRUE(v.sequentially_consistent);
}

TEST(Ablation, PrivatizationPreventsTemporaryRaces) {
  // Fig. 4 with one shared temporary: the y-covering initialization in the
  // second component can overwrite the x-covering one with a stale value.
  Graph g = figures::fig4();

  CodeMotionConfig off;
  off.privatize_temps = false;
  MotionResult shared = run_code_motion(g, off);
  validate_or_throw(shared.graph);
  auto broken = check_sequential_consistency(g, shared.graph, {},
                                             split_semantics());
  ASSERT_TRUE(broken.exhausted);
  EXPECT_FALSE(broken.sequentially_consistent);

  MotionResult priv = run_code_motion(g, CodeMotionConfig{});
  auto ok = check_sequential_consistency(g, priv.graph, {}, split_semantics());
  ASSERT_TRUE(ok.exhausted);
  EXPECT_TRUE(ok.sequentially_consistent);
}

TEST(Ablation, ParEndExportRulePreventsStaleSuppression) {
  // Fig. 6/7: without the export rule the down-safety chain across the join
  // suppresses the post-join initialization of w := a + b, which then reads
  // the pre-statement value.
  Graph g = figures::fig7();

  CodeMotionConfig off;
  off.parend_export_rule = false;
  MotionResult suppressed = run_code_motion(g, off);
  validate_or_throw(suppressed.graph);
  auto broken = check_sequential_consistency(g, suppressed.graph, {},
                                             split_semantics());
  ASSERT_TRUE(broken.exhausted);
  EXPECT_FALSE(broken.sequentially_consistent);

  MotionResult fixed = run_code_motion(g, CodeMotionConfig{});
  auto ok = check_sequential_consistency(g, fixed.graph, {}, split_semantics());
  ASSERT_TRUE(ok.exhausted);
  EXPECT_TRUE(ok.sequentially_consistent);
}

TEST(Ablation, KnobsDoNotAffectSequentialPrograms) {
  Rng rng(17);
  RandomProgramOptions opt;
  opt.max_par_depth = 0;
  opt.target_stmts = 12;
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = random_program(rng, opt);
    for (bool sink : {false, true}) {
      for (bool priv : {false, true}) {
        CodeMotionConfig cfg;
        cfg.sink_anchors = sink;
        cfg.privatize_temps = priv;
        MotionResult r = run_code_motion(g, cfg);
        auto v = check_sequential_consistency(g, r.graph);
        if (!v.exhausted) continue;
        EXPECT_TRUE(v.sequentially_consistent) << trial;
        // Privatization never triggers without parallel statements; sinking
        // may move anchors but stays semantics- and cost-preserving.
        for (std::uint64_t seed = 0; seed < 8; ++seed) {
          auto pair = paired_execution_times(g, r.graph, seed);
          if (!pair.has_value()) continue;
          EXPECT_LE(pair->second.time, pair->first.time);
        }
      }
    }
  }
}

TEST(Ablation, FullConfigMatchesParallelCodeMotionDefaults) {
  Graph g = figures::fig10();
  MotionResult a = run_code_motion(g, CodeMotionConfig{});
  CodeMotionConfig explicit_cfg;
  explicit_cfg.variant = SafetyVariant::kRefined;
  explicit_cfg.sink_anchors = true;
  explicit_cfg.privatize_temps = true;
  explicit_cfg.parend_export_rule = true;
  MotionResult b = run_code_motion(g, explicit_cfg);
  EXPECT_EQ(a.num_insertions(), b.num_insertions());
  EXPECT_EQ(a.num_replacements(), b.num_replacements());
}

}  // namespace
}  // namespace parcm
