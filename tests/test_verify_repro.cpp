// Golden reproducers: minimized parcm_fuzz finds committed under
// tests/golden/repro_*.parcm. Each file was produced by the delta-debugging
// reducer from a real campaign (provenance in the file's header comments)
// against a deliberately broken CodeMotionConfig. The tests pin both
// directions: the named broken config still diverges on the reproducer, and
// refined PCM is clean on it — so the repro keeps witnessing the pitfall
// and the fix simultaneously.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "lang/lower.hpp"
#include "verify/fuzz.hpp"
#include "verify/verify.hpp"

namespace parcm {
namespace {

std::string read_repro(const std::string& name) {
  std::string path = std::string(PARCM_REPRO_DIR) + "/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing golden reproducer " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

struct Repro {
  const char* file;
  const char* inject_mode;  // the config the find was made against
};

const Repro kRepros[] = {
    // Fig. 4-style shared-temporary race (P2 / privatization).
    {"repro_p2.parcm", "no-privatize"},
    // Fig. 7-style post-join suppression (P3 / ParEnd export rule).
    {"repro_p3.parcm", "no-parend-export"},
};

TEST(VerifyRepro, BrokenConfigStillDiverges) {
  for (const Repro& r : kRepros) {
    std::string source = read_repro(r.file);
    Graph g = lang::compile_or_throw(source);  // lexer skips // headers
    verify::InjectOptions inject;
    inject.enabled = true;
    inject.mode = r.inject_mode;
    Graph t = verify::apply_named_pipeline("pcm", g, inject);
    verify::Verdict v = verify::differential_check(g, t);
    ASSERT_TRUE(v.exact) << r.file;
    EXPECT_EQ(verify::Status::kDiverged, v.status)
        << r.file << ": " << v.summary();
    EXPECT_TRUE(v.witness.has_value()) << r.file;
  }
}

TEST(VerifyRepro, RefinedPcmIsCleanOnEveryRepro) {
  for (const Repro& r : kRepros) {
    std::string source = read_repro(r.file);
    Graph g = lang::compile_or_throw(source);
    Graph t = verify::apply_named_pipeline("pcm", g);
    verify::Verdict v = verify::differential_check(g, t);
    ASSERT_TRUE(v.exact) << r.file;
    EXPECT_TRUE(v.ok()) << r.file << ": " << v.summary();
  }
}

TEST(VerifyRepro, ReprosStayMinimal) {
  // The committed finds are small enough to eyeball: the reducer contract
  // (≤ 10 statements) would flag an accidentally re-bloated regeneration.
  for (const Repro& r : kRepros) {
    std::string source = read_repro(r.file);
    Graph g = lang::compile_or_throw(source);
    EXPECT_LE(g.num_nodes(), 16u) << r.file;
  }
}

}  // namespace
}  // namespace parcm
