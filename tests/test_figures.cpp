// Claim-by-claim reproduction of the paper's figures (see DESIGN.md's
// experiment index). Placement-level details live in test_pcm.cpp; this
// suite checks the figures' structural properties and the claims the paper
// states in prose.
#include "figures/figures.hpp"

#include <gtest/gtest.h>

#include "analyses/earliest.hpp"
#include "ir/printer.hpp"
#include "ir/transform_utils.hpp"
#include "ir/validate.hpp"
#include "lang/lower.hpp"
#include "motion/bcm.hpp"
#include "motion/pcm.hpp"
#include "semantics/cost.hpp"
#include "semantics/enumerator.hpp"
#include "semantics/equivalence.hpp"

namespace parcm {
namespace {

TEST(Figures, AllWellFormed) {
  for (const char* id : {"1", "1h", "2", "3a", "3c", "4", "5", "6", "7", "8",
                         "8n", "9", "9n", "10"}) {
    Graph g = lang::compile_or_throw(figures::figure_source(id));
    validate_or_throw(g);
  }
}

TEST(Figures, LabelsMatchPaperNumbering) {
  Graph g = figures::fig2();
  EXPECT_EQ(statement_to_string(g, node_of_label(g, "n3")), "x := c + b");
  EXPECT_EQ(statement_to_string(g, node_of_label(g, "n10")), "d := c + b");
  Graph f10 = figures::fig10();
  EXPECT_EQ(statement_to_string(f10, node_of_label(f10, "n13")),
            "s := c + d");
}

// Fig. 1: the argument program is already computationally optimal — BCM may
// not reduce any path, and the partially redundant a+b at node 8 stays.
TEST(Figures, Fig1ComputationallyOptimalAlready) {
  Graph g = figures::fig1();
  MotionResult r = busy_code_motion(g);
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    auto pair = paired_execution_times(g, r.graph, seed);
    ASSERT_TRUE(pair.has_value());
    EXPECT_EQ(pair->first.computations, pair->second.computations);
  }
  // Node 8's computation is still fed by an insertion on its own branch
  // (not eliminated).
  bool n8_replaced = false;
  for (const TermMotion& tm : r.terms) {
    for (NodeId n : tm.replaced) n8_replaced |= r.graph.node(n).label == "n8";
  }
  EXPECT_TRUE(n8_replaced);
}

// Fig. 1 companion: the both-branches program is improved.
TEST(Figures, Fig1HoistableImproved) {
  Graph g = figures::fig1_hoistable();
  MotionResult r = busy_code_motion(g);
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    auto pair = paired_execution_times(g, r.graph, seed);
    ASSERT_TRUE(pair.has_value());
    EXPECT_LT(pair->second.computations, pair->first.computations);
  }
}

// Fig. 2: "computationally better" does not separate (b) from (c) — both
// are computationally optimal — but "executionally better" does.
TEST(Figures, Fig2ComputationalKernelExecutionalGap) {
  Graph g = figures::fig2();
  MotionResult naive = naive_parallel_code_motion(g);  // = Fig. 2(b)
  MotionResult pcm = parallel_code_motion(g);          // = Fig. 2(c)
  FixedOracle o1(0), o2(0), o3(0);
  CostResult b = execution_time(naive.graph, o1);
  CostResult c = execution_time(pcm.graph, o2);
  CostResult orig = execution_time(g, o3);
  // Same computation count (kernel of "computationally better")...
  EXPECT_EQ(b.computations, c.computations);
  // ...but (b) is executionally worse than (c).
  EXPECT_GT(b.time, c.time);
  // And (c) improves on the argument program while (b) does not.
  EXPECT_LT(c.time, orig.time);
  EXPECT_EQ(b.time, orig.time);
}

// Fig. 3: the paper's exact witness. For program B the naive hoist yields
// y = 5 (a use of c+b evaluated before any recursive update), impossible
// in the argument program under either assignment semantics.
TEST(Figures, Fig3WitnessStates) {
  Graph g = figures::fig3c();
  // Original: y and z always see c in {5, 8} -> values in {8, 11}.
  for (bool atomic : {true, false}) {
    EnumerationOptions opts;
    opts.atomic_assignments = atomic;
    auto r = enumerate_executions(g, {"y", "z"}, opts);
    ASSERT_TRUE(r.exhausted);
    for (const auto& fin : r.finals) {
      EXPECT_NE(fin[0], 5) << "y = 5 must be impossible (atomic=" << atomic
                           << ")";
      EXPECT_NE(fin[1], 5);
    }
  }
  // Fig. 3(d), the hoisted program: y = z = 5 always.
  Graph hoisted = figures::fig3d();
  auto rn = enumerate_executions(hoisted, {"y", "z"});
  ASSERT_TRUE(rn.exhausted);
  EXPECT_EQ(rn.finals,
            (std::set<std::vector<std::int64_t>>{{5, 5}}));

  // The formula-driven naive baseline races components on the shared
  // temporary instead — also a sequential-consistency violation, but under
  // atomic semantics.
  MotionResult naive = naive_parallel_code_motion(g);
  auto verdict = check_sequential_consistency(g, naive.graph);
  ASSERT_TRUE(verdict.exhausted);
  EXPECT_FALSE(verdict.sequentially_consistent);
}

// Fig. 4: combining the per-occurrence hoists forces the stale value into
// x although x's own thread already executed a := a + b.
TEST(Figures, Fig4WitnessStates) {
  Graph g = figures::fig4();
  auto orig = enumerate_executions(g, {"x"});
  ASSERT_TRUE(orig.exhausted);
  // x always reads a after the update: x = (2+3)+3 = 8.
  EXPECT_EQ(orig.finals, (std::set<std::vector<std::int64_t>>{{8}}));

  // Fig. 4(d), the combined hoist: x = 5 appears.
  auto trans = enumerate_executions(figures::fig4d(), {"x"});
  ASSERT_TRUE(trans.exhausted);
  EXPECT_TRUE(trans.finals.contains(std::vector<std::int64_t>{5}));
}

// Fig. 5: sequential safety facts — up-safety at w's entry is witnessed by
// computations on every incoming path.
TEST(Figures, Fig5SequentialSafetyFacts) {
  Graph g = figures::fig5();
  split_join_edges(g);
  TermTable terms(g);
  LocalPredicates preds(g, terms);
  InterleavingInfo itlv(g);
  SafetyInfo safety =
      compute_safety(g, preds, SafetyVariant::kRefined);
  TermId ab = terms.find(g, "a + b");
  NodeId w = node_of_statement(g, "w := a + b");
  EXPECT_TRUE(safety.upsafe[w.index()].test(ab.index()));
  // Down-safety at n2 (first computation) but not at the else-branch kill.
  NodeId n2 = node_of_label(g, "n2");
  EXPECT_TRUE(safety.dnsafe[n2.index()].test(ab.index()));
  NodeId kill = node_of_label(g, "n5");
  EXPECT_FALSE(safety.dnsafe[kill.index()].test(ab.index()));
}

// Fig. 6: refined analyses declare the statement's boundary unsafe (the
// per-interleaving safety cannot be pin-pointed to one occurrence); the
// product-based checks live in test_product.cpp.
TEST(Figures, Fig6RefinedBoundariesUnsafe) {
  Graph g = figures::fig6();
  TermTable terms(g);
  LocalPredicates preds(g, terms);
  InterleavingInfo itlv(g);
  SafetyInfo refined =
      compute_safety(g, preds, SafetyVariant::kRefined);
  SafetyInfo naive = compute_safety(g, preds, SafetyVariant::kNaive);
  TermId ab = terms.find(g, "a + b");
  const ParStmt& s = g.par_stmt(ParStmtId(0));
  NodeId w = node_of_statement(g, "w := a + b");

  // Naive (PMOP-coincident) analysis: exit available, entry anticipable.
  EXPECT_TRUE(naive.upsafe[w.index()].test(ab.index()));
  EXPECT_TRUE(naive.dnsafe[s.begin.index()].test(ab.index()));
  // Refined: both refused.
  EXPECT_FALSE(refined.upsafe[w.index()].test(ab.index()));
  EXPECT_FALSE(refined.dnsafe[s.begin.index()].test(ab.index()));
  // Internal second computations are unsafe under both.
  NodeId u = node_of_statement(g, "u := a + b");
  EXPECT_FALSE(naive.upsafe[u.index()].test(ab.index()));
  EXPECT_FALSE(refined.upsafe[u.index()].test(ab.index()));
}

// Fig. 8 / Fig. 9: the refinement rules, positive and negative.
TEST(Figures, Fig8ExitUpSafePar) {
  Graph g = figures::fig8();
  TermTable terms(g);
  LocalPredicates preds(g, terms);
  InterleavingInfo itlv(g);
  TermId ab = terms.find(g, "a + b");
  SafetyInfo refined =
      compute_safety(g, preds, SafetyVariant::kRefined);
  NodeId w = node_of_statement(g, "w := a + b");
  EXPECT_TRUE(refined.upsafe[w.index()].test(ab.index()));

  Graph neg = figures::fig8_negative();
  TermTable tneg(neg);
  LocalPredicates pneg(neg, tneg);
  InterleavingInfo ineg(neg);
  SafetyInfo rneg = compute_safety(neg, pneg, SafetyVariant::kRefined);
  NodeId wn = node_of_statement(neg, "w := a + b");
  EXPECT_FALSE(rneg.upsafe[wn.index()].test(tneg.find(neg, "a + b").index()));
}

TEST(Figures, Fig9EntryDownSafePar) {
  Graph g = figures::fig9();
  TermTable terms(g);
  LocalPredicates preds(g, terms);
  InterleavingInfo itlv(g);
  SafetyInfo refined =
      compute_safety(g, preds, SafetyVariant::kRefined);
  TermId ab = terms.find(g, "a + b");
  const ParStmt& s = g.par_stmt(ParStmtId(0));
  EXPECT_TRUE(refined.dnsafe[s.begin.index()].test(ab.index()));

  Graph neg = figures::fig9_negative();
  TermTable tneg(neg);
  LocalPredicates pneg(neg, tneg);
  InterleavingInfo ineg(neg);
  SafetyInfo rneg = compute_safety(neg, pneg, SafetyVariant::kRefined);
  const ParStmt& sn = neg.par_stmt(ParStmtId(0));
  EXPECT_FALSE(
      rneg.dnsafe[sn.begin.index()].test(tneg.find(neg, "a + b").index()));
}

// Fig. 10: end-to-end executional improvement of the complete
// transformation, and semantic preservation.
TEST(Figures, Fig10EndToEnd) {
  Graph g = figures::fig10();
  MotionResult pcm = parallel_code_motion(g);
  validate_or_throw(pcm.graph);
  LoopOracle l1(3), l2(3);
  CostResult orig = execution_time(g, l1);
  CostResult moved = execution_time(pcm.graph, l2);
  EXPECT_LT(moved.time, orig.time);
  EXPECT_LT(moved.computations, orig.computations);
}

TEST(Figures, SourcesRoundTripThroughCompiler) {
  for (const char* id : {"1", "2", "3c", "10"}) {
    std::string src = figures::figure_source(id);
    Graph g = lang::compile_or_throw(src);
    EXPECT_GT(g.num_nodes(), 4u);
  }
  EXPECT_THROW(figures::figure_source("nope"), InternalError);
}

}  // namespace
}  // namespace parcm
