// Translation-validation subsystem: the unparser round-trip, the
// differential oracle (exact + sampled), the delta-debugging reducer, the
// fuzz driver with miscompile injection, and the pipeline/obs wiring.
#include <gtest/gtest.h>

#include <set>

#include "figures/figures.hpp"
#include "lang/lower.hpp"
#include "lang/parser.hpp"
#include "lang/unparse.hpp"
#include "motion/pipeline.hpp"
#include "obs/metrics.hpp"
#include "obs/remarks.hpp"
#include "semantics/equivalence.hpp"
#include "verify/fuzz.hpp"
#include "verify/reduce.hpp"
#include "verify/verify.hpp"

namespace parcm {
namespace {

lang::Program parse_or_die(std::string_view source) {
  DiagnosticSink sink;
  std::optional<lang::Program> p = lang::parse(source, sink);
  EXPECT_TRUE(p.has_value()) << sink.to_string();
  return p.has_value() ? std::move(*p) : lang::Program{};
}

// ---------------------------------------------------------------- unparse

TEST(Unparse, RoundTripsEveryFigure) {
  for (const char* id : {"1", "1h", "2", "3a", "3c", "4", "5", "6", "7", "8",
                         "8n", "9", "9n", "10"}) {
    std::string source(figures::figure_source(id));
    lang::Program p = parse_or_die(source);
    std::string rendered = lang::to_source(p);
    lang::Program again = parse_or_die(rendered);
    // Structural identity via the lowered graphs and a fixpoint render.
    Graph g1 = lang::lower(p);
    Graph g2 = lang::lower(again);
    ASSERT_EQ(g1.num_nodes(), g2.num_nodes()) << "figure " << id;
    for (NodeId n : g1.all_nodes()) {
      EXPECT_EQ(g1.node(n).kind, g2.node(n).kind) << "figure " << id;
    }
    EXPECT_EQ(rendered, lang::to_source(again)) << "figure " << id;
  }
}

TEST(Unparse, RoundTripsRandomAstPrograms) {
  RandomProgramOptions opt = verify::default_fuzz_gen();
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    Rng rng(seed);
    lang::Program p = random_program_ast(rng, opt);
    std::string rendered = lang::to_source(p);
    lang::Program again = parse_or_die(rendered);
    EXPECT_EQ(rendered, lang::to_source(again)) << "seed " << seed;
  }
}

TEST(Unparse, PreservesLabelsCommentsAndNondet) {
  const char* source =
      "x := a + b @occ;\n"
      "if (*) {\n"
      "  skip;\n"
      "}\n"
      "par {\n"
      "  barrier;\n"
      "} and {\n"
      "  while (x < 3) {\n"
      "    x := x + 1;\n"
      "  }\n"
      "}\n";
  lang::Program p = parse_or_die(source);
  EXPECT_EQ(source, lang::to_source(p));
}

// ----------------------------------------------------------------- oracle

TEST(Oracle, IdentityIsEquivalent) {
  Graph g = figures::fig7();
  verify::Verdict v = verify::differential_check(g, g);
  EXPECT_TRUE(v.exact);
  EXPECT_EQ(verify::Status::kEquivalent, v.status);
  EXPECT_TRUE(v.ok());
  EXPECT_EQ(v.original_behaviours, v.transformed_behaviours);
}

TEST(Oracle, PcmOnFiguresValidates) {
  for (const char* id : {"2", "3a", "3c", "4", "7", "8", "10"}) {
    Graph g = lang::compile_or_throw(figures::figure_source(id));
    Graph t = verify::apply_named_pipeline("pcm", g);
    verify::Verdict v = verify::differential_check(g, t);
    EXPECT_TRUE(v.exact) << "figure " << id;
    EXPECT_TRUE(v.ok()) << "figure " << id << ": " << v.summary();
  }
}

TEST(Oracle, NaiveOnFig7DivergesWithWitness) {
  Graph g = figures::fig7();
  verify::InjectOptions inject;
  inject.enabled = true;
  inject.mode = "naive";
  Graph t = verify::apply_named_pipeline("pcm", g, inject);
  verify::Verdict v = verify::differential_check(g, t);
  ASSERT_TRUE(v.exact);
  EXPECT_EQ(verify::Status::kDiverged, v.status);
  EXPECT_FALSE(v.ok());
  ASSERT_TRUE(v.witness.has_value());
  EXPECT_EQ(v.witness->size(), v.observed.size());
  EXPECT_NE(std::string::npos, v.summary().find("diverged"));
}

TEST(Oracle, DivergenceClassifiedAgainstRemarkProvenance) {
#if !PARCM_OBS_ENABLED
  GTEST_SKIP() << "library built with PARCM_OBS=OFF: no remark stream";
#endif
  Graph g = figures::fig7();
  verify::InjectOptions inject;
  inject.enabled = true;
  inject.mode = "naive";

  obs::RemarkSink sink;
  sink.set_enabled(true);
  obs::RemarkSink* prev = obs::set_remark_sink(&sink);
  Graph t = verify::apply_named_pipeline("pcm", g, inject);
  obs::set_remark_sink(prev);
  std::vector<obs::Remark> captured = sink.snapshot();

  verify::Verdict v = verify::differential_check(g, t, {}, &captured);
  ASSERT_EQ(verify::Status::kDiverged, v.status);
  // Fig. 7 is the up-/down-safety pitfall; the naive pass's remark stream
  // must offer P3 among the suspects.
  EXPECT_NE(v.pitfalls.end(),
            std::find(v.pitfalls.begin(), v.pitfalls.end(), "P3"))
      << v.summary();
}

TEST(Oracle, SplitSemanticsIsTheDefault) {
  // Remark 2.1: PCM splits x := t into h := t; x := h. Under atomic
  // semantics that split alone "adds" behaviours and a correct
  // transformation would be flagged; the default budget must therefore use
  // the split model.
  Graph g = lang::compile_or_throw(R"(
    par {
      v3 := 0 + v2;
    } and {
      v2 := 0 + 4;
      v3 := v2;
    }
  )");
  Graph t = verify::apply_named_pipeline("pcm", g);
  verify::Verdict split = verify::differential_check(g, t);
  EXPECT_TRUE(split.ok()) << split.summary();

  verify::Budget atomic;
  atomic.split_assignments = false;
  verify::Verdict v = verify::differential_check(g, t, atomic);
  EXPECT_EQ(verify::Status::kDiverged, v.status);
}

TEST(Oracle, SampledModeIsDeterministic) {
  Graph g = figures::fig7();
  Graph t = verify::apply_named_pipeline("pcm", g);
  verify::Budget b;
  b.max_exact_nodes = 1;  // force the sampled path
  b.samples = 64;
  verify::Verdict v1 = verify::differential_check(g, t, b);
  verify::Verdict v2 = verify::differential_check(g, t, b);
  EXPECT_FALSE(v1.exact);
  EXPECT_EQ(v1.status, v2.status);
  EXPECT_EQ(v1.original_behaviours, v2.original_behaviours);
  EXPECT_EQ(v1.transformed_behaviours, v2.transformed_behaviours);
  EXPECT_TRUE(v1.ok()) << v1.summary();
}

TEST(Oracle, SampledModeSeesInjectedDivergence) {
  // The fig7 naive divergence must also be visible to pure sampling: the
  // witness state is reachable by a plain left-to-right-ish schedule.
  Graph g = figures::fig7();
  verify::InjectOptions inject;
  inject.enabled = true;
  inject.mode = "naive";
  Graph t = verify::apply_named_pipeline("pcm", g, inject);
  verify::Budget b;
  b.max_exact_nodes = 1;
  b.samples = 256;
  verify::Verdict v = verify::differential_check(g, t, b);
  EXPECT_FALSE(v.exact);
  EXPECT_EQ(verify::Status::kDiverged, v.status) << v.summary();
}

TEST(Oracle, CountersMove) {
#if !PARCM_OBS_ENABLED
  GTEST_SKIP() << "library built with PARCM_OBS=OFF: no counters";
#endif
  std::uint64_t checks = obs::registry().counter("verify.checks");
  Graph g = figures::fig2();
  verify::differential_check(g, g);
  EXPECT_GT(obs::registry().counter("verify.checks"), checks);
  EXPECT_GT(obs::registry().counter("verify.exact"), 0u);
}

TEST(Oracle, PitfallTagsFromRemarkStream) {
  std::vector<obs::Remark> remarks;
  obs::Remark r;
  r.reasons = {obs::RemarkReason::kRecursiveSplit};
  remarks.push_back(r);
  std::vector<std::string> tags = verify::pitfalls_from_remarks(remarks);
  ASSERT_EQ(1u, tags.size());
  EXPECT_EQ("P2", tags[0]);
}

// ---------------------------------------------------------------- reducer

TEST(Reduce, ShrinksToEmptyUnderTruePredicate) {
  lang::Program p = parse_or_die(figures::figure_source("7"));
  verify::ReduceResult r = verify::reduce_program(
      p, [](const lang::Program&) { return true; });
  EXPECT_EQ(0u, verify::count_statements(r.program));
  EXPECT_LT(r.stmts_after, r.stmts_before);
  EXPECT_GT(r.checks, 0u);
}

TEST(Reduce, KeepsWhatThePredicateNeeds) {
  lang::Program p = parse_or_die(
      "a := 1;\n"
      "b := 2;\n"
      "par {\n"
      "  x := a + b;\n"
      "} and {\n"
      "  y := a - b;\n"
      "}\n"
      "z := x + y;\n");
  // Predicate: the program still contains a par statement.
  verify::ReduceResult r =
      verify::reduce_program(p, [](const lang::Program& q) {
        for (const lang::Stmt& s : q.body) {
          if (s.kind == lang::StmtKind::kPar) return true;
        }
        return false;
      });
  bool has_par = false;
  for (const lang::Stmt& s : r.program.body) {
    has_par |= s.kind == lang::StmtKind::kPar;
  }
  EXPECT_TRUE(has_par);
  // Everything else is deletable: only the par skeleton survives.
  EXPECT_LE(verify::count_statements(r.program), 2u);
}

TEST(Reduce, MinimizesRealDivergenceBelowTenNodes) {
  // End-to-end: a real injected miscompile on fig7 reduced to a handful of
  // nodes while staying a confirmed exact divergence.
  lang::Program p = parse_or_die(figures::figure_source("7"));
  verify::InjectOptions inject;
  inject.enabled = true;
  inject.mode = "naive";
  auto diverges = [&inject](const lang::Program& q) {
    Graph g = lang::lower(q);
    Graph t = verify::apply_named_pipeline("pcm", g, inject);
    verify::Verdict v = verify::differential_check(g, t);
    return v.exact && v.status == verify::Status::kDiverged;
  };
  ASSERT_TRUE(diverges(p));
  verify::ReduceResult r = verify::reduce_program(p, diverges);
  EXPECT_TRUE(diverges(r.program));
  EXPECT_LE(lang::lower(r.program).num_nodes(), 10u)
      << lang::to_source(r.program);
}

TEST(Reduce, ResultIsParseableSource) {
  lang::Program p = parse_or_die(figures::figure_source("4"));
  verify::ReduceResult r = verify::reduce_program(
      p, [](const lang::Program& q) { return !q.body.empty(); });
  std::string source = lang::to_source(r.program);
  DiagnosticSink sink;
  EXPECT_TRUE(lang::parse(source, sink).has_value()) << source;
}

// ------------------------------------------------------------ fuzz driver

TEST(Fuzz, ProgramStreamIsDeterministic) {
  RandomProgramOptions gen = verify::default_fuzz_gen();
  for (std::size_t i = 0; i < 5; ++i) {
    lang::Program a = verify::fuzz_program(99, i, gen);
    lang::Program b = verify::fuzz_program(99, i, gen);
    EXPECT_EQ(lang::to_source(a), lang::to_source(b)) << "index " << i;
  }
  EXPECT_NE(lang::to_source(verify::fuzz_program(99, 0, gen)),
            lang::to_source(verify::fuzz_program(99, 1, gen)));
  EXPECT_NE(verify::fuzz_program_seed(99, 0), verify::fuzz_program_seed(99, 1));
  EXPECT_NE(verify::fuzz_program_seed(99, 0), verify::fuzz_program_seed(98, 0));
}

TEST(Fuzz, CleanCampaignHasNoDivergences) {
  verify::FuzzOptions opt;
  opt.seed = 5;
  opt.count = 15;
  opt.pipeline = "pcm";
  verify::FuzzOutcome out = verify::run_fuzz(opt);
  EXPECT_EQ(15u, out.programs);
  EXPECT_TRUE(out.ok()) << out.summary();
  EXPECT_EQ(0u, out.divergences);
}

TEST(Fuzz, BcmAndLcmPipelinesRunClean) {
  for (const char* pipeline : {"bcm", "lcm"}) {
    verify::FuzzOptions opt;
    opt.seed = 5;
    opt.count = 10;
    opt.pipeline = pipeline;
    verify::FuzzOutcome out = verify::run_fuzz(opt);
    EXPECT_TRUE(out.ok()) << pipeline << ": " << out.summary();
  }
}

TEST(Fuzz, InjectedMiscompileIsCaughtAndReduced) {
  verify::FuzzOptions opt;
  opt.seed = 7;
  opt.count = 30;
  opt.pipeline = "pcm";
  opt.inject.enabled = true;
  opt.inject.mode = "naive";
  // Cheap base budget keeps this test fast; a sampled alarm is escalated to
  // an exact re-check at 8x automatically, so recorded failures stay exact.
  opt.budget.max_states = 1u << 15;
  verify::FuzzOutcome out = verify::run_fuzz(opt);
  ASSERT_GT(out.divergences, 0u) << out.summary();
  ASSERT_FALSE(out.failures.empty());
  const verify::FuzzFailure& f = out.failures.front();
  EXPECT_TRUE(f.verdict.exact);
  // The reducer only deletes statements, so the floor depends on the find:
  // the Fig. 7 case above bottoms out under 10 nodes, a campaign find needs
  // its init/par/post-join skeleton — allow the par bracketing overhead.
  EXPECT_LE(f.reduced_nodes, 12u) << f.reduced_source;
  // The reduced source replays: it still diverges under the same injection.
  Graph g = lang::compile_or_throw(f.reduced_source);
  Graph t = verify::apply_named_pipeline("pcm", g, opt.inject);
  verify::Verdict v = verify::differential_check(g, t);
  EXPECT_EQ(verify::Status::kDiverged, v.status) << f.reduced_source;
}

TEST(Fuzz, CampaignIsReproducible) {
  verify::FuzzOptions opt;
  opt.seed = 7;
  opt.count = 12;
  opt.inject.enabled = true;
  opt.inject.mode = "no-privatize";
  verify::FuzzOutcome a = verify::run_fuzz(opt);
  verify::FuzzOutcome b = verify::run_fuzz(opt);
  EXPECT_EQ(a.divergences, b.divergences);
  EXPECT_EQ(a.to_json(), b.to_json());
}

TEST(Fuzz, RejectsInjectionForPipelinesWithoutCodeMotion) {
  Graph g = figures::fig2();
  verify::InjectOptions inject;
  inject.enabled = true;
  EXPECT_THROW(verify::apply_named_pipeline("dce", g, inject), InternalError);
  EXPECT_THROW(verify::apply_named_pipeline("bogus", g), InternalError);
}

TEST(Fuzz, OutcomeJsonHasSchemaAndCounts) {
  verify::FuzzOptions opt;
  opt.seed = 3;
  opt.count = 4;
  verify::FuzzOutcome out = verify::run_fuzz(opt);
  std::string json = out.to_json();
  EXPECT_NE(std::string::npos, json.find("\"parcm-fuzz-v1\""));
  EXPECT_NE(std::string::npos, json.find("\"programs\""));
  EXPECT_NE(std::string::npos, json.find("\"divergences\""));
}

// --------------------------------------------------------------- pipeline

TEST(Pipeline, ValidateSemanticsRecordsVerdict) {
  Graph g = figures::fig7();
  PipelineResult res =
      Pipeline().add_pcm().validate_semantics().run(g);
  ASSERT_TRUE(res.validation.has_value());
  EXPECT_TRUE(res.validation->ok()) << res.validation->summary();
  ASSERT_FALSE(res.passes.empty());
  EXPECT_EQ("differential-validate", res.passes.back().name);
  EXPECT_NE(std::string::npos, res.to_json().find("\"validation\""));
}

TEST(Pipeline, WithoutValidateSemanticsNoVerdict) {
  Graph g = figures::fig2();
  PipelineResult res = Pipeline().add_pcm().run(g);
  EXPECT_FALSE(res.validation.has_value());
  EXPECT_EQ(std::string::npos, res.to_json().find("\"validation\""));
}

TEST(Pipeline, DefaultPipelineValidatesOnFigures) {
  for (const char* id : {"2", "4", "7", "10"}) {
    Graph g = lang::compile_or_throw(figures::figure_source(id));
    Pipeline p = default_pipeline();
    p.validate_semantics();
    PipelineResult res = p.run(g);
    ASSERT_TRUE(res.validation.has_value()) << "figure " << id;
    EXPECT_TRUE(res.validation->ok())
        << "figure " << id << ": " << res.validation->summary();
  }
}

// ----------------------------------------------- the fuzzer's trophy case

TEST(Regression, NestedParBarrierKeepsPostJoinInitialization) {
  // Found by parcm_fuzz (campaign seed 7, program 7, reduced): with a
  // barrier inside a *nested* par, every Earliest candidate for a post-join
  // term lies inside fully transparent components, and suppressing them all
  // as bottleneck-useless left the replacement reading an uninitialized
  // temporary. The barrier makes such components coverage-relevant.
  const char* kSource =
      "par {\n"
      "  par {\n"
      "    barrier;\n"
      "  } and {\n"
      "  }\n"
      "} and {\n"
      "}\n"
      "v3 := 1 + 2;\n";
  Graph g = lang::compile_or_throw(kSource);
  Graph t = verify::apply_named_pipeline("pcm", g);
  verify::Verdict v = verify::differential_check(g, t);
  EXPECT_TRUE(v.exact);
  EXPECT_TRUE(v.ok()) << v.summary();

  // Same shape with a variable term: the divergence used to be masked by
  // the all-zero initial state (h and v0 + v1 both 0), which is exactly why
  // the generator seeds operands with distinct constants.
  const char* kMasked =
      "v0 := 4;\n"
      "v1 := 5;\n"
      "par {\n"
      "  par {\n"
      "    barrier;\n"
      "  } and {\n"
      "  }\n"
      "} and {\n"
      "}\n"
      "v3 := v0 + v1;\n";
  Graph g2 = lang::compile_or_throw(kMasked);
  Graph t2 = verify::apply_named_pipeline("pcm", g2);
  verify::Verdict v2 = verify::differential_check(g2, t2);
  EXPECT_TRUE(v2.ok()) << v2.summary();
}

}  // namespace
}  // namespace parcm
