#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace parcm {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next() == b.next();
  EXPECT_LT(equal, 4);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, StreamIsPinnedAcrossProcessesAndPlatforms) {
  // The fuzzer's reproducer contract (`parcm_fuzz --seed N` yields the same
  // programs in any process on any machine) bottoms out in these exact
  // xoshiro256** outputs. If this test ever fails, the generator changed its
  // stream and every committed campaign seed / golden reproducer is invalid.
  constexpr std::uint64_t kSeed42Stream[] = {
      0x15780b2e0c2ec716uLL,
      0x6104d9866d113a7euLL,
      0xae17533239e499a1uLL,
      0xecb8ad4703b360a1uLL,
  };
  Rng rng(42);
  for (std::uint64_t expected : kSeed42Stream) {
    EXPECT_EQ(expected, rng.next());
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    std::int64_t v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit with overwhelming probability
}

TEST(Rng, ChanceExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0, 10));
    EXPECT_TRUE(rng.chance(10, 10));
  }
}

TEST(Rng, ChanceRoughlyCalibrated) {
  Rng rng(123);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) hits += rng.chance(1, 4);
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.25, 0.02);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, NoShortCycles) {
  Rng rng(1);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) seen.insert(rng.next());
  EXPECT_EQ(seen.size(), 10000u);
}

}  // namespace
}  // namespace parcm
