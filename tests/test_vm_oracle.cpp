// The VM as a differential oracle: oracle-vs-oracle consistency on the
// fuzz shape pool, miscompile detection, and the byte-identity contracts
// of the campaign and corpus payloads across job counts.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "figures/figures.hpp"
#include "lang/lower.hpp"
#include "obs/metrics.hpp"
#include "semantics/cost.hpp"
#include "semantics/enumerator.hpp"
#include "verify/fuzz.hpp"
#include "verify/vm_oracle.hpp"
#include "vm/bytecode.hpp"
#include "vm/executor.hpp"
#include "vm/harness.hpp"

namespace parcm::verify {
namespace {

TEST(VmOracle, SeededSchedulesSubsetOfEnumeratedBehaviours) {
  // The satellite property: for every shape-pool program small enough for
  // exact enumeration, 64 seeded VM schedules only ever reach final stores
  // the POR enumerator also reaches under the split semantics.
  RandomProgramOptions gen = default_fuzz_gen();
  std::size_t enumerable = 0;
  for (std::size_t i = 0; i < 16; ++i) {
    lang::Program ast = fuzz_program(21, i, gen);
    Graph g = lang::lower(ast);
    if (g.num_nodes() > 72) continue;
    std::vector<std::string> observed;
    for (std::size_t v = 0; v < g.num_vars(); ++v) {
      observed.push_back(g.var_name(VarId(static_cast<std::uint32_t>(v))));
    }
    EnumerationOptions opts;
    opts.atomic_assignments = false;
    opts.partial_order_reduction = true;
    opts.max_states = 1u << 19;
    EnumerationResult ref = enumerate_executions(g, observed, opts);
    if (!ref.exhausted) continue;
    ++enumerable;
    vm::VmProgram p = vm::lower_to_bytecode(g);
    vm::ExecLimits limits;
    limits.max_steps = 40000;
    for (std::uint64_t s = 0; s < 64; ++s) {
      vm::ExecResult r = vm::run_seeded(p, s, limits);
      if (!r.ok) continue;  // spinning nondeterministic loop
      EXPECT_TRUE(ref.finals.count(r.store))
          << "program " << i << " seed " << s
          << " reached a final store outside the enumerated behaviour set";
    }
  }
  EXPECT_GE(enumerable, 8u) << "shape pool no longer enumerable; property "
                               "checked on too few programs";
}

TEST(VmOracle, CleanPcmValidatesOnFigures) {
  for (const Graph& g :
       {figures::fig2(), figures::fig7(), figures::fig10()}) {
    Graph t = apply_named_pipeline("pcm", g);
    Verdict v = vm_differential_check(g, t);
    EXPECT_TRUE(v.ok()) << v.summary();
  }
}

TEST(VmOracle, NaiveOnFig7DivergesWithPitfallSuspects) {
  Graph g = figures::fig7();
  InjectOptions inject;
  inject.enabled = true;
  inject.mode = "naive";
  Graph t = apply_named_pipeline("pcm", g, inject);
  Verdict v = vm_differential_check(g, t);
  ASSERT_EQ(Status::kDiverged, v.status) << v.summary();
  ASSERT_TRUE(v.witness.has_value());
  EXPECT_EQ(v.witness->size(), v.observed.size());
  // Divergences carry the same P1-P3 provenance as the exact oracle —
  // when the remark stream exists at all (OBS=OFF compiles it out).
#if PARCM_OBS_ENABLED
  EXPECT_FALSE(v.pitfalls.empty()) << v.summary();
#endif
}

TEST(VmOracle, VerdictIsDeterministic) {
  Graph g = figures::fig7();
  InjectOptions inject;
  inject.enabled = true;
  inject.mode = "naive";
  Graph t = apply_named_pipeline("pcm", g, inject);
  Verdict a = vm_differential_check(g, t);
  Verdict b = vm_differential_check(g, t);
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.witness, b.witness);
  EXPECT_EQ(a.original_behaviours, b.original_behaviours);
}

TEST(VmOracle, InjectedMiscompilesCaughtByVmOracle) {
  // The store-divergence miscompile classes the exact oracle catches on
  // this campaign must also fall to seeded VM schedules. no-privatize races
  // on a shared temporary, so its divergent interleaving window is narrow
  // under uniform scheduling — it needs the 256-schedule budget where the
  // always-divergent naive transfer falls to the default already.
  for (const char* mode : {"naive", "no-privatize"}) {
    FuzzOptions opt;
    opt.seed = 7;
    opt.count = 30;
    opt.pipeline = "pcm";
    opt.oracle = "vm";
    opt.inject.enabled = true;
    opt.inject.mode = mode;
    opt.budget.max_states = 1u << 15;  // escalation budget only
    opt.vm_budget.schedules = 256;
    opt.vm_budget.max_states = 1u << 15;
    opt.reduce = false;
    FuzzOutcome out = run_fuzz(opt);
    EXPECT_EQ(out.vm_checked, out.programs);
    EXPECT_GT(out.divergences, 0u)
        << "vm oracle missed every '" << mode
        << "' miscompile: " << out.summary();
    EXPECT_EQ(out.oracle_disagreements, 0u) << out.summary();
  }
}

TEST(VmOracle, NoSinkInjectionCaughtByExecutionalOracle) {
  // "no-sink" is the executional-regression ablation: the unsunk output
  // stays sequentially consistent (Ablation.SinkingKeepsSemantics), so no
  // store-differential oracle — exact or VM — can flag it. The VM catches
  // it on the other axis: on the double-pay program's else-path the
  // temporary initializes twice, and some seeded schedule takes strictly
  // more VM bottleneck time than the original program.
  const char* source = R"(
    b := 2;
    par {
      a := 1;
      if (*) { u := a + b; } else { skip; }
    } and {
      c := 3;
    }
    w := a + b;
  )";
  Graph g = lang::compile_or_throw(source);
  InjectOptions inject;
  inject.enabled = true;
  inject.mode = "no-sink";
  Graph t = apply_named_pipeline("pcm", g, inject);

  // Store-differentially clean, as the ablation contract promises.
  Verdict v = vm_differential_check(g, t);
  EXPECT_TRUE(v.ok()) << v.summary();

  // ...but the executional oracle sees the double initialization.
  vm::LowerOptions lopts;
  lopts.split_assignments = false;
  vm::VmProgram before = vm::lower_to_bytecode(g, lopts);
  vm::VmProgram after = vm::lower_to_bytecode(t, lopts);
  vm::ExecLimits limits;
  bool regressed = false;
  for (std::uint64_t seed = 0; seed < 64 && !regressed; ++seed) {
    SeededOracle oracle_before(seed);
    SeededOracle oracle_after(seed);
    vm::ExecResult rb = vm::run_with_oracle(before, oracle_before, limits);
    vm::ExecResult ra = vm::run_with_oracle(after, oracle_after, limits);
    auto analytic = paired_execution_times(g, t, seed);
    ASSERT_TRUE(rb.ok && ra.ok && analytic.has_value()) << seed;
    // The VM's phase algebra stays glued to the analytic cost model even
    // on a deliberately regressed pipeline.
    EXPECT_EQ(rb.time, analytic->first.time) << seed;
    EXPECT_EQ(ra.time, analytic->second.time) << seed;
    if (ra.time > rb.time) regressed = true;
  }
  EXPECT_TRUE(regressed)
      << "no schedule saw the unsunk double initialization";
}

TEST(VmOracle, BothOraclesAgreeOnCleanCampaign) {
  FuzzOptions opt;
  opt.seed = 5;
  opt.count = 15;
  opt.pipeline = "pcm";
  opt.oracle = "both";
  FuzzOutcome out = run_fuzz(opt);
  EXPECT_EQ(out.programs, 15u);
  EXPECT_EQ(out.vm_checked, 15u);
  EXPECT_EQ(out.divergences, 0u) << out.summary();
  EXPECT_EQ(out.vm_divergences, 0u) << out.summary();
  EXPECT_EQ(out.oracle_disagreements, 0u) << out.summary();
  EXPECT_TRUE(out.ok());
}

TEST(VmOracle, CampaignJsonByteIdenticalAcrossJobs) {
  // The batch-driver byte-identity contract (test_batch_determinism.cpp)
  // extends to the VM oracle: the parcm-fuzz-v1 payload is a pure function
  // of the options, independent of worker count.
  std::string reference;
  for (std::size_t jobs : {1u, 4u, 16u}) {
    FuzzOptions opt;
    opt.seed = 9;
    opt.count = 12;
    opt.pipeline = "pcm";
    opt.oracle = "both";
    opt.jobs = jobs;
    FuzzOutcome out = run_fuzz(opt);
    std::string json = out.to_json();
    if (reference.empty()) {
      reference = json;
    } else {
      EXPECT_EQ(reference, json) << "jobs=" << jobs;
    }
  }
}

TEST(VmOracle, CorpusJsonByteIdenticalAcrossJobs) {
  // Same contract for the BENCH_exec data source (parcm-vm-corpus-v1).
  std::string reference;
  for (std::size_t jobs : {1u, 4u, 16u}) {
    vm::CorpusOptions opt;
    opt.seed = 13;
    opt.programs = 12;
    opt.shapes = 4;
    opt.schedules = 4;
    opt.jobs = jobs;
    vm::CorpusReport report = vm::run_exec_corpus(opt);
    std::string json = report.to_json();
    if (reference.empty()) {
      reference = json;
    } else {
      EXPECT_EQ(reference, json) << "jobs=" << jobs;
    }
  }
}

}  // namespace
}  // namespace parcm::verify
