#include "motion/report.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "figures/figures.hpp"
#include "motion/pcm.hpp"

namespace parcm {
namespace {

TEST(Report, MotionReportMentionsTermsAndTemps) {
  Graph g = figures::fig2();
  MotionResult r = parallel_code_motion(g);
  std::string report = motion_report(r);
  EXPECT_NE(report.find("refined/PCM"), std::string::npos);
  EXPECT_NE(report.find("c + b"), std::string::npos);
  EXPECT_NE(report.find("insert at:"), std::string::npos);
  EXPECT_NE(report.find("replace at:"), std::string::npos);
}

TEST(Report, NaiveVariantLabelled) {
  Graph g = figures::fig2();
  MotionResult r = naive_parallel_code_motion(g);
  EXPECT_NE(motion_report(r).find("naive"), std::string::npos);
}

TEST(Report, SafetyTableHasRowPerAnalyzedNode) {
  Graph g = figures::fig9();
  MotionResult r = parallel_code_motion(g);
  ASSERT_FALSE(r.terms.empty());
  std::string table = safety_table(r.graph, r, r.terms[0].term);
  // Header + one line per analyzed node.
  std::size_t lines = static_cast<std::size_t>(
      std::count(table.begin(), table.end(), '\n'));
  EXPECT_EQ(lines, r.safety.upsafe.size() + 1);
  EXPECT_NE(table.find("up dn safe"), std::string::npos);
}

TEST(Report, CountsConsistent) {
  Graph g = figures::fig10();
  MotionResult r = parallel_code_motion(g);
  std::size_t inserts = 0, replaces = 0;
  for (const TermMotion& tm : r.terms) {
    inserts += tm.insert_nodes.size();
    replaces += tm.replaced.size();
  }
  EXPECT_EQ(inserts, r.num_insertions());
  EXPECT_EQ(replaces, r.num_replacements());
}

}  // namespace
}  // namespace parcm
