#include <gtest/gtest.h>

#include "analyses/downsafety.hpp"
#include "analyses/upsafety.hpp"
#include "dfa/hier_solver.hpp"
#include "dfa/packed.hpp"
#include "dfa/seq_solver.hpp"
#include "figures/figures.hpp"
#include "ir/transform_utils.hpp"
#include "lang/lower.hpp"
#include "workload/randomprog.hpp"

namespace parcm {
namespace {

// --- synchronization policies -------------------------------------------------

TEST(SyncPolicy, Standard) {
  using F = BVFun;
  EXPECT_EQ(apply_sync_policy(SyncPolicy::kStandard, {F::kConstTT, F::kId},
                              {false, false}),
            F::kConstTT);
  EXPECT_EQ(apply_sync_policy(SyncPolicy::kStandard, {F::kConstTT, F::kConstFF},
                              {false, true}),
            F::kConstFF);
  EXPECT_EQ(apply_sync_policy(SyncPolicy::kStandard, {F::kId, F::kId},
                              {false, false}),
            F::kId);
}

TEST(SyncPolicy, UpSafeParRequiresCleanSiblings) {
  using F = BVFun;
  // One component establishes; sibling clean -> tt.
  EXPECT_EQ(apply_sync_policy(SyncPolicy::kUpSafePar, {F::kConstTT, F::kId},
                              {false, false}),
            F::kConstTT);
  // Sibling destroys -> ff even though a component establishes.
  EXPECT_EQ(apply_sync_policy(SyncPolicy::kUpSafePar, {F::kConstTT, F::kId},
                              {false, true}),
            F::kConstFF);
  // The establishing component may itself destroy (its own order is fixed).
  EXPECT_EQ(apply_sync_policy(SyncPolicy::kUpSafePar, {F::kConstTT, F::kId},
                              {true, false}),
            F::kConstTT);
  // All identity -> transparent.
  EXPECT_EQ(apply_sync_policy(SyncPolicy::kUpSafePar, {F::kId, F::kId},
                              {false, false}),
            F::kId);
  // Established on both but both destroy: no candidate survives.
  EXPECT_EQ(apply_sync_policy(SyncPolicy::kUpSafePar,
                              {F::kConstTT, F::kConstTT}, {true, true}),
            F::kConstFF);
}

TEST(SyncPolicy, DownSafeParRequiresAllComponents) {
  using F = BVFun;
  EXPECT_EQ(apply_sync_policy(SyncPolicy::kDownSafePar,
                              {F::kConstTT, F::kConstTT}, {false, false}),
            F::kConstTT);
  // One component missing the computation -> ff (would move work out of a
  // possibly-free component).
  EXPECT_EQ(apply_sync_policy(SyncPolicy::kDownSafePar, {F::kConstTT, F::kId},
                              {false, false}),
            F::kConstFF);
  // Any modification anywhere -> ff.
  EXPECT_EQ(apply_sync_policy(SyncPolicy::kDownSafePar,
                              {F::kConstTT, F::kConstTT}, {true, false}),
            F::kConstFF);
  EXPECT_EQ(apply_sync_policy(SyncPolicy::kDownSafePar, {F::kId, F::kId},
                              {false, false}),
            F::kId);
}

TEST(SyncPolicy, PackedMatchesScalarExhaustively) {
  using F = BVFun;
  const F funs[] = {F::kConstFF, F::kId, F::kConstTT};
  for (SyncPolicy pol : {SyncPolicy::kStandard, SyncPolicy::kUpSafePar,
                         SyncPolicy::kDownSafePar}) {
    // All 3*3*2*2 = 36 two-component cases packed into one vector.
    std::vector<BVFun> e1s, e2s;
    std::vector<bool> d1s, d2s;
    for (F e1 : funs)
      for (F e2 : funs)
        for (bool d1 : {false, true})
          for (bool d2 : {false, true}) {
            e1s.push_back(e1);
            e2s.push_back(e2);
            d1s.push_back(d1);
            d2s.push_back(d2);
          }
    std::size_t n = e1s.size();
    PackedFun p1{BitVector(n), BitVector(n)}, p2{BitVector(n), BitVector(n)};
    BitVector m1(n), m2(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (e1s[i] == F::kConstTT) p1.tt.set(i);
      if (e1s[i] == F::kConstFF) p1.ff.set(i);
      if (e2s[i] == F::kConstTT) p2.tt.set(i);
      if (e2s[i] == F::kConstFF) p2.ff.set(i);
      if (d1s[i]) m1.set(i);
      if (d2s[i]) m2.set(i);
    }
    PackedFun packed = apply_sync_policy_packed(pol, n, {p1, p2}, {m1, m2});
    for (std::size_t i = 0; i < n; ++i) {
      BVFun scalar =
          apply_sync_policy(pol, {e1s[i], e2s[i]}, {d1s[i], d2s[i]});
      EXPECT_EQ(packed.at(i), scalar)
          << sync_policy_name(pol) << " case " << i;
    }
  }
}

TEST(SyncPolicy, PackedThreeComponentSiblingScan) {
  // Term 0: comp0 establishes, comp2 destroys -> ff under up-safe-par.
  // Term 1: comp1 establishes, others clean -> tt.
  std::size_t n = 2;
  PackedFun c0{BitVector(n), BitVector(n)};
  c0.tt.set(0);
  PackedFun c1{BitVector(n), BitVector(n)};
  c1.tt.set(1);
  PackedFun c2 = PackedFun::identity(n);
  BitVector d0(n), d1(n), d2(n);
  d2.set(0);
  PackedFun r = apply_sync_policy_packed(SyncPolicy::kUpSafePar, n,
                                         {c0, c1, c2}, {d0, d1, d2});
  EXPECT_EQ(r.at(0), BVFun::kConstFF);
  EXPECT_EQ(r.at(1), BVFun::kConstTT);
}

// --- solvers on hand-checked programs ------------------------------------------

struct Analysis {
  Graph graph;
  TermTable terms;
  LocalPredicates preds;
  InterleavingInfo itlv;

  explicit Analysis(Graph g)
      : graph(std::move(g)), terms(graph), preds(graph, terms), itlv(graph) {}
};

TEST(SeqSolver, AvailabilityStraightLine) {
  Analysis a(lang::compile_or_throw("x := a + b; y := a + b; a := 1; z := a + b;"));
  SeqProblem p;
  PackedProblem pp = make_upsafety_problem(a.graph, a.preds,
                                           SafetyVariant::kNaive);
  p.dir = pp.dir;
  p.num_terms = pp.num_terms;
  p.gen = pp.gen;
  p.kill = pp.kill;
  p.boundary = pp.boundary;
  SeqResult r = solve_seq(a.graph, p);
  TermId t = a.terms.find(a.graph, "a + b");
  // Entry of y := a+b: available. Entry of z := a+b after a := 1: not.
  for (NodeId n : a.graph.all_nodes()) {
    const Node& node = a.graph.node(n);
    if (node.kind != NodeKind::kAssign) continue;
    std::string lhs = a.graph.var_name(node.lhs);
    if (lhs == "x") {
      EXPECT_FALSE(r.entry[n.index()].test(t.index()));
    }
    if (lhs == "y") {
      EXPECT_TRUE(r.entry[n.index()].test(t.index()));
    }
    if (lhs == "z") {
      EXPECT_FALSE(r.entry[n.index()].test(t.index()));
    }
  }
}

TEST(HierSolver, MatchesSeqSolverOnSequentialGraphs) {
  Rng rng(7);
  RandomProgramOptions opt;
  opt.max_par_depth = 0;
  for (int trial = 0; trial < 30; ++trial) {
    Graph g = random_program(rng, opt);
    TermTable terms(g);
    LocalPredicates preds(g, terms);
    InterleavingInfo itlv(g);
    PackedProblem pp = make_upsafety_problem(g, preds, SafetyVariant::kNaive);
    PackedResult packed = solve_packed(g, pp);
    SeqProblem sp{pp.dir, pp.num_terms, pp.gen, pp.kill, pp.boundary};
    SeqResult seq = solve_seq(g, sp);
    for (NodeId n : g.all_nodes()) {
      EXPECT_EQ(packed.entry[n.index()], seq.entry[n.index()]) << trial;
      EXPECT_EQ(packed.out[n.index()], seq.out[n.index()]) << trial;
    }
  }
}

void expect_scalar_matches_packed(const Graph& g, const PackedProblem& pp) {
  InterleavingInfo itlv(g);
  PackedResult packed = solve_packed(g, pp);
  for (std::size_t t = 0; t < pp.num_terms; ++t) {
    BitProblem bp = extract_term_problem(pp, t);
    BitResult bit = solve_bit(g, bp);
    for (NodeId n : g.all_nodes()) {
      EXPECT_EQ(bit.entry[n.index()], packed.entry[n.index()].test(t))
          << "entry mismatch node " << n.value() << " term " << t;
      EXPECT_EQ(bit.out[n.index()], packed.out[n.index()].test(t))
          << "out mismatch node " << n.value() << " term " << t;
    }
    for (std::size_t s = 0; s < g.num_par_stmts(); ++s) {
      EXPECT_EQ(bit.stmt_summary[s], packed.stmt_summary[s].at(t))
          << "summary mismatch stmt " << s << " term " << t;
    }
  }
}

TEST(ScalarVsPacked, AgreeOnFigures) {
  for (const char* id : {"1", "2", "3c", "4", "6", "8", "9", "10"}) {
    Graph g = lang::compile_or_throw(figures::figure_source(id));
    TermTable terms(g);
    LocalPredicates preds(g, terms);
    for (SafetyVariant v : {SafetyVariant::kNaive, SafetyVariant::kRefined}) {
      expect_scalar_matches_packed(g, make_upsafety_problem(g, preds, v));
      expect_scalar_matches_packed(g, make_downsafety_problem(g, preds, v));
    }
  }
}

class ScalarVsPackedRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScalarVsPackedRandom, AgreeOnRandomParallelPrograms) {
  Rng rng(GetParam());
  RandomProgramOptions opt;
  opt.max_par_depth = 2;
  opt.target_stmts = 16;
  Graph g = random_program(rng, opt);
  TermTable terms(g);
  LocalPredicates preds(g, terms);
  for (SafetyVariant v : {SafetyVariant::kNaive, SafetyVariant::kRefined}) {
    expect_scalar_matches_packed(g, make_upsafety_problem(g, preds, v));
    expect_scalar_matches_packed(g, make_downsafety_problem(g, preds, v));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScalarVsPackedRandom,
                         ::testing::Range<std::uint64_t>(0, 25));

TEST(HierSolver, InterferenceDestroysAvailability) {
  // Sibling writes an operand: availability inside the component is killed
  // even though the component-local flow would preserve it.
  Analysis a(lang::compile_or_throw(R"(
    par { x := a + b; y := a + b; } and { a := 1; }
  )"));
  TermId t = a.terms.find(a.graph, "a + b");
  PackedResult r = compute_upsafety(a.graph, a.preds,
                                    SafetyVariant::kNaive);
  NodeId y = node_of_statement(a.graph, "y := a + b");
  EXPECT_FALSE(r.entry[y.index()].test(t.index()));
  EXPECT_FALSE(r.nondest[y.index()].test(t.index()));
}

TEST(HierSolver, NoInterferenceWithoutWriters) {
  Analysis a(lang::compile_or_throw(R"(
    par { x := a + b; y := a + b; } and { c := 1; }
  )"));
  TermId t = a.terms.find(a.graph, "a + b");
  PackedResult r = compute_upsafety(a.graph, a.preds,
                                    SafetyVariant::kNaive);
  NodeId y = node_of_statement(a.graph, "y := a + b");
  EXPECT_TRUE(r.entry[y.index()].test(t.index()));
}

TEST(HierSolver, RelaxationCountReported) {
  Analysis a(lang::compile_or_throw("while (*) { x := a + b; } y := a + b;"));
  PackedResult r = compute_upsafety(a.graph, a.preds,
                                    SafetyVariant::kNaive);
  EXPECT_GT(r.relaxations, 0u);
}

}  // namespace
}  // namespace parcm
