#include "ir/transform_utils.hpp"

#include <gtest/gtest.h>

#include "ir/printer.hpp"
#include "ir/validate.hpp"
#include "lang/lower.hpp"

namespace parcm {
namespace {

std::size_t count_kind(const Graph& g, NodeKind kind) {
  std::size_t n = 0;
  for (NodeId id : g.all_nodes()) n += g.node(id).kind == kind;
  return n;
}

TEST(SplitJoinEdges, StraightLineUntouched) {
  Graph g = lang::compile_or_throw("x := 1; y := 2;");
  EXPECT_EQ(split_join_edges(g), 0u);
}

TEST(SplitJoinEdges, DiamondJoinSplit) {
  Graph g = lang::compile_or_throw("if (*) { x := 1; } else { y := 2; } z := 3;");
  std::size_t before = g.num_nodes();
  std::size_t inserted = split_join_edges(g);
  validate_or_throw(g);
  // The join in front of `z := 3` has two incoming edges -> two synthetics;
  // the end node keeps in-degree 1.
  EXPECT_EQ(inserted, 2u);
  EXPECT_EQ(g.num_nodes(), before + 2);
  EXPECT_EQ(count_kind(g, NodeKind::kSynthetic), 2u);
}

TEST(SplitJoinEdges, LoopHeaderSplit) {
  Graph g = lang::compile_or_throw("while (*) { x := x + 1; } y := 2;");
  std::size_t inserted = split_join_edges(g);
  validate_or_throw(g);
  // Loop header has 2 preds (entry + back edge).
  EXPECT_EQ(inserted, 2u);
}

TEST(SplitJoinEdges, ParEndExempt) {
  Graph g = lang::compile_or_throw("par { x := 1; } and { y := 2; } z := 3;");
  std::size_t inserted = split_join_edges(g);
  validate_or_throw(g);
  // ParEnd has 2 preds but is exempt; nothing else joins.
  EXPECT_EQ(inserted, 0u);
  const ParStmt& s = g.par_stmt(ParStmtId(0));
  EXPECT_EQ(g.in_degree(s.end), 2u);
}

TEST(SplitJoinEdges, JoinInsideComponentSplit) {
  Graph g = lang::compile_or_throw(
      "par { if (*) { a := 1; } else { b := 2; } c := 3; } and { d := 4; }");
  std::size_t inserted = split_join_edges(g);
  validate_or_throw(g);
  EXPECT_EQ(inserted, 2u);
}

TEST(SplitJoinEdges, Idempotent) {
  Graph g = lang::compile_or_throw("if (*) { x := 1; } else { y := 2; } z := 3;");
  split_join_edges(g);
  EXPECT_EQ(split_join_edges(g), 0u);
  validate_or_throw(g);
}

TEST(SplitEdge, PreservesTestSlots) {
  Graph g = lang::compile_or_throw("if (c < 1) { x := 1; } else { y := 2; } skip;");
  NodeId test;
  for (NodeId n : g.all_nodes()) {
    if (g.node(n).kind == NodeKind::kTest) test = n;
  }
  ASSERT_TRUE(test.valid());
  EdgeId true_edge = g.node(test).out_edges[0];
  NodeId old_target = g.edge(true_edge).to;
  NodeId mid = split_edge(g, true_edge);
  EXPECT_EQ(g.node(test).out_edges[0], true_edge);
  EXPECT_EQ(g.edge(true_edge).to, mid);
  EXPECT_EQ(g.succs(mid), avector<NodeId>{old_target});
  validate_or_throw(g);
}

TEST(SplitEdge, IntoParEndStaysInComponentRegion) {
  Graph g = lang::compile_or_throw("par { x := 1; } and { y := 2; }");
  const ParStmt& s = g.par_stmt(ParStmtId(0));
  EdgeId e = g.node(s.end).in_edges[0];
  NodeId from = g.edge(e).from;
  NodeId mid = split_edge(g, e);
  EXPECT_EQ(g.node(mid).region, g.node(from).region);
  validate_or_throw(g);
}

TEST(SplitEdge, FromParBeginGoesToComponentRegion) {
  Graph g = lang::compile_or_throw("par { x := 1; } and { y := 2; }");
  const ParStmt& s = g.par_stmt(ParStmtId(0));
  EdgeId e = g.node(s.begin).out_edges[0];
  NodeId to = g.edge(e).to;
  NodeId mid = split_edge(g, e);
  EXPECT_EQ(g.node(mid).region, g.node(to).region);
  EXPECT_EQ(g.component_entry(g.node(to).region), mid);
  validate_or_throw(g);
}

TEST(FindNode, ByStatementAndLabel) {
  Graph g = lang::compile_or_throw("x := a + b @n3; y := a + b;");
  NodeId by_label = node_of_label(g, "n3");
  EXPECT_EQ(statement_to_string(g, by_label), "x := a + b");
  NodeId by_stmt = node_of_statement(g, "y := a + b");
  EXPECT_NE(by_stmt, by_label);
  EXPECT_THROW(node_of_label(g, "nope"), InternalError);
  EXPECT_THROW(node_of_statement(g, "q := 1"), InternalError);
}

TEST(FindNode, AmbiguityDetected) {
  Graph g = lang::compile_or_throw("x := a + b; x := a + b;");
  EXPECT_THROW(node_of_statement(g, "x := a + b"), InternalError);
}

TEST(FindNodes, PredicateSearch) {
  Graph g = lang::compile_or_throw("x := 1; y := 2; z := 3;");
  auto assigns = find_nodes(g, [](const Graph& gr, NodeId n) {
    return gr.node(n).kind == NodeKind::kAssign;
  });
  EXPECT_EQ(assigns.size(), 3u);
  NodeId none = find_node(g, [](const Graph&, NodeId) { return false; });
  EXPECT_FALSE(none.valid());
}

}  // namespace
}  // namespace parcm
