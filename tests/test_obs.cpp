#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace parcm {
namespace {

// Installs `r` as the global registry for the lifetime of the guard so a
// test observes only its own metrics.
struct RegistryGuard {
  explicit RegistryGuard(obs::Registry& r) : prev(obs::set_registry(&r)) {}
  ~RegistryGuard() { obs::set_registry(prev); }
  obs::Registry* prev;
};

TEST(JsonWriter, EscapesStrings) {
  EXPECT_EQ(obs::json_escape("plain"), "plain");
  EXPECT_EQ(obs::json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(obs::json_escape("tab\there"), "tab\\there");
  EXPECT_EQ(obs::json_escape(std::string_view("\x01\n", 2)), "\\u0001\\n");
}

TEST(JsonWriter, Numbers) {
  EXPECT_EQ(obs::json_number(1.5), "1.5");
  EXPECT_EQ(obs::json_number(-0.25), "-0.25");
  // JSON has no representation for non-finite values.
  EXPECT_EQ(obs::json_number(std::nan("")), "null");
  EXPECT_EQ(obs::json_number(INFINITY), "null");
}

TEST(JsonWriter, CompactDocument) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("s").value("x\"y");
  w.key("i").value(-3);
  w.key("u").value(std::uint64_t{18446744073709551615ull});
  w.key("b").value(true);
  w.key("d").value(0.5);
  w.key("n").null();
  w.key("arr").begin_array().value(1).value(2).end_array();
  w.key("obj").begin_object().end_object();
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"s\":\"x\\\"y\",\"i\":-3,\"u\":18446744073709551615,"
            "\"b\":true,\"d\":0.5,\"n\":null,\"arr\":[1,2],\"obj\":{}}");
}

TEST(JsonWriter, PrettyDocument) {
  obs::JsonWriter w(/*pretty=*/true);
  w.begin_object();
  w.key("a").value(1);
  w.key("b").begin_array().value(2).end_array();
  w.end_object();
  EXPECT_EQ(w.str(), "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}");
}

TEST(Registry, CounterSemantics) {
  obs::Registry r;
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.counter("missing"), 0u);
  r.add_counter("hits");           // default delta 1
  r.add_counter("hits", 4);
  EXPECT_EQ(r.counter("hits"), 5u);
  EXPECT_FALSE(r.empty());
  r.clear();
  EXPECT_TRUE(r.empty());
}

TEST(Registry, GaugeLastWriteWins) {
  obs::Registry r;
  r.set_gauge("blowup", 2.0);
  r.set_gauge("blowup", 3.5);
  EXPECT_EQ(r.gauges().at("blowup"), 3.5);
}

TEST(Registry, TimerAccumulates) {
  obs::Registry r;
  r.add_timer_ns("solve", 1'000'000);
  r.add_timer_ns("solve", 500'000);
  obs::TimerStat t = r.timers().at("solve");
  EXPECT_EQ(t.count, 2u);
  EXPECT_EQ(t.total_ns, 1'500'000u);
  EXPECT_DOUBLE_EQ(t.total_ms(), 1.5);
}

TEST(Registry, SnapshotsAreSortedByName) {
  obs::Registry r;
  r.add_counter("zeta");
  r.add_counter("alpha");
  r.add_counter("midway");
  std::vector<std::string> names;
  for (const auto& [k, v] : r.counters()) names.push_back(k);
  EXPECT_EQ(names, (std::vector<std::string>{"alpha", "midway", "zeta"}));
}

TEST(Registry, JsonIsStableOrdered) {
  obs::Registry r;
  r.add_counter("b", 2);
  r.add_counter("a", 1);
  r.set_gauge("g", 0.5);
  r.add_timer_ns("t", 2'000'000);
  EXPECT_EQ(r.to_json(),
            "{\"schema\":\"parcm-metrics-v1\","
            "\"counters\":{\"a\":1,\"b\":2},\"gauges\":{\"g\":0.5},"
            "\"timers\":{\"t\":{\"count\":1,\"total_ms\":2}},"
            "\"histograms\":{}}");
  // Identical content must serialize identically (machine diffing).
  obs::Registry r2;
  r2.set_gauge("g", 0.5);
  r2.add_timer_ns("t", 2'000'000);
  r2.add_counter("a", 1);
  r2.add_counter("b", 2);
  EXPECT_EQ(r.to_json(), r2.to_json());
}

TEST(Histogram, BucketOfIsLog2) {
  EXPECT_EQ(obs::Histogram::bucket_of(0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_of(1), 1u);
  EXPECT_EQ(obs::Histogram::bucket_of(2), 2u);
  EXPECT_EQ(obs::Histogram::bucket_of(3), 2u);
  EXPECT_EQ(obs::Histogram::bucket_of(4), 3u);
  EXPECT_EQ(obs::Histogram::bucket_of(1023), 10u);
  EXPECT_EQ(obs::Histogram::bucket_of(1024), 11u);
  EXPECT_EQ(obs::Histogram::bucket_of(~std::uint64_t{0}), 64u);
}

TEST(Histogram, SummaryStatistics) {
  obs::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.percentile(50.0), 0.0);
  for (std::uint64_t v : {100u, 200u, 300u, 400u}) h.record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 1000u);
  EXPECT_EQ(h.min(), 100u);
  EXPECT_EQ(h.max(), 400u);
  EXPECT_DOUBLE_EQ(h.mean(), 250.0);
  // Percentiles are clamped to the observed range and monotone in p.
  EXPECT_EQ(h.percentile(0.0), 100.0);
  EXPECT_EQ(h.percentile(100.0), 400.0);
  double p50 = h.p50(), p90 = h.p90(), p99 = h.p99();
  EXPECT_GE(p50, 100.0);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_LE(p99, 400.0);
}

TEST(Histogram, MergeIsExact) {
  // A histogram merged from shards must equal the histogram of the
  // concatenated samples — this is what makes per-worker aggregation
  // lossless in the batch driver.
  obs::Histogram a, b, whole;
  for (std::uint64_t v = 0; v < 500; ++v) {
    (v % 2 ? a : b).record(v * 37);
    whole.record(v * 37);
  }
  a.merge_from(b);
  EXPECT_EQ(a, whole);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_DOUBLE_EQ(a.p99(), whole.p99());
}

TEST(Histogram, EmptyPercentilesAreZero) {
  obs::Histogram h;
  for (double p : {0.0, 50.0, 90.0, 99.0, 100.0}) {
    EXPECT_EQ(h.percentile(p), 0.0) << p;
  }
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(Histogram, BucketSaturationAtUint64Max) {
  // The top bucket (index 64) absorbs the largest representable values;
  // sums may wrap but percentiles stay clamped to the observed max.
  obs::Histogram h;
  const std::uint64_t top = ~std::uint64_t{0};
  h.record(top);
  h.record(top - 1);
  h.record(1);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.buckets()[64], 2u);
  EXPECT_EQ(h.max(), top);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.percentile(100.0), static_cast<double>(top));
  EXPECT_LE(h.p99(), static_cast<double>(top));
  EXPECT_GE(h.p99(), 1.0);
}

TEST(Histogram, DisjointShardsMergeExactly) {
  // Shards whose value ranges do not overlap at all (distinct buckets):
  // the merge must still equal the histogram of the concatenation.
  obs::Histogram lo, hi, whole;
  for (std::uint64_t v = 1; v <= 64; ++v) {
    lo.record(v);
    whole.record(v);
  }
  for (std::uint64_t v = 1 << 20; v < (1 << 20) + 64; ++v) {
    hi.record(v);
    whole.record(v);
  }
  lo.merge_from(hi);
  EXPECT_EQ(lo, whole);
  EXPECT_EQ(lo.min(), 1u);
  EXPECT_EQ(lo.max(), (1u << 20) + 63);
  EXPECT_DOUBLE_EQ(lo.p50(), whole.p50());
  EXPECT_DOUBLE_EQ(lo.p99(), whole.p99());
  // Merging an empty shard is the identity.
  obs::Histogram empty;
  obs::Histogram copy = lo;
  copy.merge_from(empty);
  EXPECT_EQ(copy, lo);
}

TEST(Histogram, FromSerializedRoundTripsBucketsAndStats) {
  obs::Histogram h;
  for (std::uint64_t v : {0u, 1u, 7u, 4096u, 70000u}) h.record(v);
  std::vector<std::pair<std::size_t, std::uint64_t>> sparse;
  for (std::size_t b = 0; b < obs::Histogram::kNumBuckets; ++b) {
    if (h.buckets()[b] != 0) sparse.emplace_back(b, h.buckets()[b]);
  }
  obs::Histogram back =
      obs::Histogram::from_serialized(sparse, h.sum(), h.min(), h.max());
  EXPECT_EQ(back, h);

  // Degenerate inputs: no buckets -> a pristine empty histogram (stats are
  // ignored); out-of-range bucket indices are dropped, not UB.
  obs::Histogram empty = obs::Histogram::from_serialized({}, 99, 1, 98);
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_EQ(empty.min(), 0u);
  obs::Histogram bogus =
      obs::Histogram::from_serialized({{1000, 5}, {2, 1}}, 3, 3, 3);
  EXPECT_EQ(bogus.count(), 1u);
}

TEST(Registry, HistogramRecordAndSnapshot) {
  obs::Registry r;
  r.record_hist("lat", 10);
  r.record_hist("lat", 1000);
  EXPECT_EQ(r.histogram("lat").count(), 2u);
  EXPECT_EQ(r.histogram("missing").count(), 0u);
  EXPECT_EQ(r.histograms().size(), 1u);
  EXPECT_FALSE(r.empty());
  std::string json = r.to_json();
  EXPECT_NE(json.find("\"histograms\":{\"lat\":{\"count\":2"),
            std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_NE(r.to_string().find("lat"), std::string::npos);
  r.clear();
  EXPECT_TRUE(r.empty());
}

TEST(Registry, MergeSumsHistograms) {
  obs::Registry a, b;
  a.record_hist("h", 8);
  b.record_hist("h", 16);
  b.record_hist("other", 1);
  a.merge_from(b);
  EXPECT_EQ(a.histogram("h").count(), 2u);
  EXPECT_EQ(a.histogram("h").sum(), 24u);
  EXPECT_EQ(a.histogram("other").count(), 1u);
}

TEST(Registry, ToStringListsEveryMetric) {
  obs::Registry r;
  r.add_counter("dfa.relaxations", 12);
  r.set_gauge("blowup", 1.5);
  r.add_timer_ns("solve", 3'000'000);
  std::string s = r.to_string();
  EXPECT_NE(s.find("dfa.relaxations"), std::string::npos);
  EXPECT_NE(s.find("12"), std::string::npos);
  EXPECT_NE(s.find("blowup"), std::string::npos);
  EXPECT_NE(s.find("solve"), std::string::npos);
  EXPECT_EQ(obs::Registry().to_string(), "(no metrics recorded)\n");
}

TEST(Registry, ConcurrentCountersStayConsistent) {
  obs::Registry r;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&r] {
      for (int i = 0; i < 1000; ++i) r.add_counter("shared");
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(r.counter("shared"), 4000u);
}

TEST(Registry, GlobalInjection) {
  obs::Registry mine;
  {
    RegistryGuard guard(mine);
    obs::registry().add_counter("seen");
    EXPECT_EQ(mine.counter("seen"), 1u);
  }
  // Restored: further reports no longer land in `mine`.
  obs::registry().add_counter("obs.test.after_restore");
  EXPECT_EQ(mine.counter("obs.test.after_restore"), 0u);
}

#if PARCM_OBS_ENABLED
TEST(Macros, ReportIntoInstalledRegistry) {
  obs::Registry mine;
  RegistryGuard guard(mine);
  PARCM_OBS_COUNT("macro.count", 2);
  PARCM_OBS_COUNT("macro.count", 3);
  PARCM_OBS_GAUGE("macro.gauge", 7.5);
  {
    PARCM_OBS_TIMER("macro.timer");
  }
  EXPECT_EQ(mine.counter("macro.count"), 5u);
  EXPECT_EQ(mine.gauges().at("macro.gauge"), 7.5);
  EXPECT_EQ(mine.timers().at("macro.timer").count, 1u);
}

TEST(Trace, ScopedTimersRecordNestedSpans) {
  obs::Registry mine;
  RegistryGuard guard(mine);
  obs::trace().set_enabled(true);
  obs::trace().clear();
  {
    PARCM_OBS_TIMER("outer");
    { PARCM_OBS_TIMER("inner"); }
    { PARCM_OBS_TIMER("inner"); }
  }
  obs::trace().set_enabled(false);
  // Spans are stored in pre-order (begin order) with their nesting depth.
  const auto& spans = obs::trace().spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[0].depth, 0);
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[1].depth, 1);
  EXPECT_EQ(spans[2].name, "inner");
  EXPECT_EQ(spans[2].depth, 1);
  EXPECT_GE(spans[0].dur_ns, spans[1].dur_ns);

  std::string tree = obs::trace().tree();
  EXPECT_NE(tree.find("outer"), std::string::npos);
  EXPECT_NE(tree.find("  inner"), std::string::npos);

  std::string json = obs::trace().chrome_json(/*pretty=*/false);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"outer\""), std::string::npos);
  obs::trace().clear();
}
#endif  // PARCM_OBS_ENABLED

TEST(Trace, DisabledGlobalSinkIsNotFed) {
  // Timers gate on trace().enabled() before ever calling begin().
  obs::trace().set_enabled(false);
  obs::trace().clear();
  EXPECT_EQ(obs::detail::trace_begin("ignored"), -1);
  obs::detail::trace_end(-1);
  EXPECT_TRUE(obs::trace().spans().empty());
  EXPECT_NE(obs::trace().chrome_json().find("\"traceEvents\""),
            std::string::npos);
}

TEST(Trace, ExplicitSinkSpans) {
  obs::TraceSink sink;
  sink.set_enabled(true);
  int a = sink.begin("a");
  int b = sink.begin("b");
  sink.end(b);
  sink.end(a);
  ASSERT_EQ(sink.spans().size(), 2u);
  EXPECT_EQ(sink.spans()[0].name, "a");
  EXPECT_EQ(sink.spans()[1].name, "b");
  EXPECT_LE(sink.spans()[0].start_ns, sink.spans()[1].start_ns);
  EXPECT_GE(sink.spans()[0].dur_ns, sink.spans()[1].dur_ns);
  sink.clear();
  EXPECT_TRUE(sink.spans().empty());
}

TEST(Trace, BufferOverflowDropsAndCounts) {
  // A span buffer that fills up must reject further spans (handle -1),
  // count every rejection, and keep the spans it already holds intact —
  // the wraparound contract of the fixed-capacity ring.
  obs::TraceSink sink;
  sink.set_span_capacity(4);
  sink.set_enabled(true);
  for (int i = 0; i < 4; ++i) {
    int s = sink.begin("kept-" + std::to_string(i));
    ASSERT_GE(s, 0) << i;
    sink.end(s);
  }
  for (int i = 0; i < 10; ++i) {
    int s = sink.begin("dropped");
    EXPECT_EQ(s, -1) << i;
    sink.end(s);  // ending a rejected span must be harmless
  }
  EXPECT_EQ(sink.spans().size(), 4u);
  EXPECT_EQ(sink.dropped(), 10u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(sink.spans()[i].name, "kept-" + std::to_string(i));
  }
  // clear() resets the ring and the drop counter: capacity is available
  // again.
  sink.clear();
  EXPECT_EQ(sink.dropped(), 0u);
  int s = sink.begin("after-clear");
  EXPECT_GE(s, 0);
  sink.end(s);
  ASSERT_EQ(sink.spans().size(), 1u);
  EXPECT_EQ(sink.spans()[0].name, "after-clear");
}

}  // namespace
}  // namespace parcm
