#include "ir/validate.hpp"

#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "lang/lower.hpp"

namespace parcm {
namespace {

TEST(Validate, AcceptsWellFormedPrograms) {
  for (const char* src : {
           "skip;",
           "x := a + b; y := x;",
           "if (*) { x := 1; } else { y := 2; }",
           "while (*) { x := x + 1; }",
           "par { x := 1; } and { y := 2; }",
           "par { par { a := 1; } and { b := 2; } } and { c := 3; }",
       }) {
    Graph g = lang::compile_or_throw(src);
    DiagnosticSink sink;
    EXPECT_TRUE(validate(g, sink)) << src << "\n" << sink.to_string();
  }
}

TEST(Validate, RejectsDeadEndNode) {
  Graph g;
  NodeId n = g.new_node(NodeKind::kSkip, g.root_region());
  g.add_edge(g.start(), n);  // n has no out-edge; end unreachable
  DiagnosticSink sink;
  EXPECT_FALSE(validate(g, sink));
}

TEST(Validate, RejectsUnreachableNode) {
  Graph g;
  g.add_edge(g.start(), g.end());
  g.new_node(NodeKind::kSkip, g.root_region());  // floating
  DiagnosticSink sink;
  EXPECT_FALSE(validate(g, sink));
}

TEST(Validate, UnreachableOkWithoutReachabilityCheck) {
  Graph g;
  g.add_edge(g.start(), g.end());
  NodeId n = g.new_node(NodeKind::kSkip, g.root_region());
  g.add_edge(n, g.end());
  ValidateOptions opts;
  opts.check_reachability = false;
  DiagnosticSink sink;
  EXPECT_TRUE(validate(g, sink, opts));
}

TEST(Validate, RejectsTestWithWrongDegree) {
  Graph g;
  VarId x = g.intern_var("x");
  NodeId t = g.new_test(g.root_region(), Rhs(Operand::var(x)));
  g.add_edge(g.start(), t);
  g.add_edge(t, g.end());  // only one out-edge
  DiagnosticSink sink;
  EXPECT_FALSE(validate(g, sink));
}

TEST(Validate, RejectsCrossRegionEdge) {
  Graph g;
  ParStmtId s = g.add_par_stmt(g.root_region());
  RegionId c1 = g.add_component(s);
  RegionId c2 = g.add_component(s);
  NodeId a = g.new_node(NodeKind::kSkip, c1);
  NodeId b = g.new_node(NodeKind::kSkip, c2);
  g.add_edge(g.start(), g.par_stmt(s).begin);
  g.add_edge(g.par_stmt(s).begin, a);
  g.add_edge(g.par_stmt(s).begin, b);
  g.add_edge(a, b);  // jump into a sibling component
  g.add_edge(a, g.par_stmt(s).end);
  g.add_edge(b, g.par_stmt(s).end);
  g.add_edge(g.par_stmt(s).end, g.end());
  DiagnosticSink sink;
  EXPECT_FALSE(validate(g, sink));
  EXPECT_NE(sink.to_string().find("crosses a region boundary"),
            std::string::npos);
}

TEST(Validate, RejectsSingleComponentStatement) {
  Graph g;
  ParStmtId s = g.add_par_stmt(g.root_region());
  RegionId c1 = g.add_component(s);
  NodeId a = g.new_node(NodeKind::kSkip, c1);
  g.add_edge(g.start(), g.par_stmt(s).begin);
  g.add_edge(g.par_stmt(s).begin, a);
  g.add_edge(a, g.par_stmt(s).end);
  g.add_edge(g.par_stmt(s).end, g.end());
  DiagnosticSink sink;
  EXPECT_FALSE(validate(g, sink));
}

TEST(Validate, RejectsEmptyComponent) {
  Graph g;
  ParStmtId s = g.add_par_stmt(g.root_region());
  RegionId c1 = g.add_component(s);
  RegionId c2 = g.add_component(s);
  NodeId a = g.new_node(NodeKind::kSkip, c1);
  (void)c2;  // left empty
  g.add_edge(g.start(), g.par_stmt(s).begin);
  g.add_edge(g.par_stmt(s).begin, a);
  g.add_edge(a, g.par_stmt(s).end);
  g.add_edge(g.par_stmt(s).end, g.end());
  DiagnosticSink sink;
  EXPECT_FALSE(validate(g, sink));
}

TEST(Validate, ValidateOrThrowThrows) {
  Graph g;  // start not connected to end
  EXPECT_THROW(validate_or_throw(g), InternalError);
}

}  // namespace
}  // namespace parcm
