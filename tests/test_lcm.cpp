#include "motion/lcm.hpp"

#include <gtest/gtest.h>

#include "analyses/liveness.hpp"
#include "figures/figures.hpp"
#include "ir/transform_utils.hpp"
#include "ir/validate.hpp"
#include "lang/lower.hpp"
#include "motion/bcm.hpp"
#include "semantics/cost.hpp"
#include "semantics/equivalence.hpp"
#include "workload/randomprog.hpp"

namespace parcm {
namespace {

TEST(LCM, RejectsParallelPrograms) {
  Graph g = lang::compile_or_throw("par { x := 1; } and { y := 2; }");
  EXPECT_THROW(lazy_code_motion(g), InternalError);
}

TEST(LCM, IsolationKeepsLoneComputation) {
  // A single computation with nothing to reuse it: BCM introduces a
  // pointless h := a + b; x := h pair, LCM keeps the original statement.
  Graph g = lang::compile_or_throw("x := a + b; y := x;");
  MotionResult lcm = lazy_code_motion(g);
  validate_or_throw(lcm.graph);
  EXPECT_TRUE(lcm.terms.empty());
  NodeId x = node_of_statement(lcm.graph, "x := a + b");
  EXPECT_TRUE(lcm.graph.node(x).rhs.is_term());

  MotionResult bcm = busy_code_motion(g);
  EXPECT_EQ(bcm.num_insertions(), 1u);  // the busy pair exists
}

TEST(LCM, FullRedundancyStillEliminated) {
  Graph g = lang::compile_or_throw("x := a + b; y := a + b; z := a + b;");
  MotionResult lcm = lazy_code_motion(g);
  validate_or_throw(lcm.graph);
  ASSERT_EQ(lcm.terms.size(), 1u);
  EXPECT_EQ(lcm.terms[0].insert_nodes.size(), 1u);
  EXPECT_EQ(lcm.terms[0].replaced.size(), 3u);
}

TEST(LCM, DelaysBelowUnusedRegion) {
  // BCM hoists to the start; LCM delays the initialization down to the
  // first use, past the unrelated prefix.
  const char* src = R"(
    p := 1; q := 2; r := 3; s := 4;
    x := a + b;
    y := a + b;
  )";
  Graph g = lang::compile_or_throw(src);
  MotionResult bcm = busy_code_motion(g);
  MotionResult lcm = lazy_code_motion(g);
  validate_or_throw(lcm.graph);
  std::size_t bcm_life = total_temp_lifetime(bcm.graph);
  std::size_t lcm_life = total_temp_lifetime(lcm.graph);
  EXPECT_LT(lcm_life, bcm_life);
  // Same computation counts on every path.
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    auto pair = paired_execution_times(bcm.graph, lcm.graph, seed);
    ASSERT_TRUE(pair.has_value());
    EXPECT_EQ(pair->first.computations, pair->second.computations);
  }
}

TEST(LCM, IsolationRefusesMotionWithoutReuse) {
  // Both branches compute a+b exactly once with no further use: BCM hoists
  // (gaining nothing), LCM leaves the program untouched.
  Graph g = lang::compile_or_throw(
      "c := 9; if (*) { x := a + b; } else { u := a + b; }");
  MotionResult lcm = lazy_code_motion(g);
  validate_or_throw(lcm.graph);
  EXPECT_TRUE(lcm.terms.empty());
  MotionResult bcm = busy_code_motion(g);
  EXPECT_EQ(bcm.num_insertions(), 1u);
}

TEST(LCM, DelaysIntoBranchesWhenReused) {
  // With a use behind the join, LCM delays the initialization into the two
  // branch computations (latest points) instead of BCM's single hoist at
  // the start — shorter temporary lifetime, same computation counts.
  Graph g = lang::compile_or_throw(
      "c := 9; if (*) { x := a + b; } else { u := a + b; } y := a + b;");
  MotionResult lcm = lazy_code_motion(g);
  validate_or_throw(lcm.graph);
  ASSERT_EQ(lcm.terms.size(), 1u);
  EXPECT_EQ(lcm.terms[0].insert_nodes.size(), 2u);
  EXPECT_EQ(lcm.terms[0].replaced.size(), 3u);

  MotionResult bcm = busy_code_motion(g);
  EXPECT_EQ(bcm.terms[0].insert_nodes.size(), 1u);
  EXPECT_LT(total_temp_lifetime(lcm.graph), total_temp_lifetime(bcm.graph));
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    auto pair = paired_execution_times(bcm.graph, lcm.graph, seed);
    ASSERT_TRUE(pair.has_value());
    EXPECT_EQ(pair->first.computations, pair->second.computations);
  }
}

TEST(LCM, ComputationallyEqualToBcmOnFigures) {
  for (const char* id : {"1", "1h", "5"}) {
    Graph g = lang::compile_or_throw(figures::figure_source(id));
    MotionResult bcm = busy_code_motion(g);
    MotionResult lcm = lazy_code_motion(g);
    validate_or_throw(lcm.graph);
    for (std::uint64_t seed = 0; seed < 24; ++seed) {
      auto pair = paired_execution_times(bcm.graph, lcm.graph, seed);
      ASSERT_TRUE(pair.has_value()) << id;
      EXPECT_EQ(pair->first.computations, pair->second.computations)
          << "figure " << id << " seed " << seed;
    }
  }
}

class LcmProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LcmProperty, SemanticsPreservedAndNeverWorse) {
  Rng rng(GetParam());
  RandomProgramOptions opt;
  opt.max_par_depth = 0;
  opt.target_stmts = 12;
  opt.num_vars = 3;
  Graph g = random_program(rng, opt);
  MotionResult lcm = lazy_code_motion(g);
  validate_or_throw(lcm.graph);

  auto verdict = check_sequential_consistency(g, lcm.graph);
  if (verdict.exhausted) {
    EXPECT_TRUE(verdict.sequentially_consistent) << GetParam();
    EXPECT_TRUE(verdict.behaviours_preserved) << GetParam();
  }
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    auto pair = paired_execution_times(g, lcm.graph, seed * 31 + 7);
    if (!pair.has_value()) continue;
    EXPECT_LE(pair->second.time, pair->first.time) << GetParam();
  }
}

TEST_P(LcmProperty, ComputationallyMatchesBcmLifetimeNoWorse) {
  Rng rng(GetParam() + 400);
  RandomProgramOptions opt;
  opt.max_par_depth = 0;
  opt.target_stmts = 14;
  opt.num_vars = 3;
  Graph g = random_program(rng, opt);
  MotionResult bcm = busy_code_motion(g);
  MotionResult lcm = lazy_code_motion(g);
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    auto pair = paired_execution_times(bcm.graph, lcm.graph, seed * 13 + 1);
    if (!pair.has_value()) continue;
    EXPECT_EQ(pair->first.computations, pair->second.computations)
        << GetParam();
  }
  EXPECT_LE(total_temp_lifetime(lcm.graph), total_temp_lifetime(bcm.graph))
      << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, LcmProperty,
                         ::testing::Range<std::uint64_t>(0, 30));

TEST(Liveness, SingleVarStraightLine) {
  Graph g = lang::compile_or_throw("x := 1; y := x; z := 2;");
  VarId x = *g.find_var("x");
  LivenessResult r = compute_liveness(g, x);
  NodeId def = node_of_statement(g, "x := 1");
  NodeId use = node_of_statement(g, "y := x");
  NodeId after = node_of_statement(g, "z := 2");
  EXPECT_FALSE(r.live_in[def.index()]);
  EXPECT_TRUE(r.live_out[def.index()]);
  EXPECT_TRUE(r.live_in[use.index()]);
  EXPECT_FALSE(r.live_out[use.index()]);
  EXPECT_FALSE(r.live_in[after.index()]);
}

TEST(Liveness, LoopKeepsVariableLive) {
  Graph g = lang::compile_or_throw("x := 1; while (*) { y := x; }");
  VarId x = *g.find_var("x");
  LivenessResult r = compute_liveness(g, x);
  NodeId use = node_of_statement(g, "y := x");
  EXPECT_TRUE(r.live_out[use.index()]);  // live around the back edge
}

TEST(Liveness, TestConditionsCountAsUses) {
  Graph g = lang::compile_or_throw("x := 1; if (x < 2) { skip; }");
  VarId x = *g.find_var("x");
  LivenessResult r = compute_liveness(g, x);
  NodeId def = node_of_statement(g, "x := 1");
  EXPECT_TRUE(r.live_out[def.index()]);
}

TEST(Liveness, TempLifetimeCountsOnlyPrefix) {
  Graph g = lang::compile_or_throw("h_t := 1; y := h_t; other := 2;");
  EXPECT_GT(total_temp_lifetime(g, "h_"), 0u);
  EXPECT_EQ(total_temp_lifetime(g, "zz_"), 0u);
}

}  // namespace
}  // namespace parcm
