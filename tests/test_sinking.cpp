#include "motion/sinking.hpp"

#include <gtest/gtest.h>

#include "ir/printer.hpp"
#include "ir/validate.hpp"
#include "lang/lower.hpp"
#include "semantics/cost.hpp"
#include "semantics/equivalence.hpp"
#include "workload/randomprog.hpp"

namespace parcm {
namespace {

std::size_t count_stmt(const Graph& g, const std::string& text) {
  std::size_t n = 0;
  for (NodeId id : g.all_nodes()) n += statement_to_string(g, id) == text;
  return n;
}

TEST(Sinking, PartiallyDeadAssignmentSinksIntoLiveBranch) {
  // x := a+b is dead on the else path (overwritten): sink it into the then
  // branch.
  Graph g = lang::compile_or_throw(R"(
    x := a + b;
    if (*) { y := x; } else { x := 0; }
    z := x;
  )");
  SinkingResult r = sink_partially_dead_assignments(g);
  validate_or_throw(r.graph);
  ASSERT_EQ(r.sunk.size(), 1u);
  EXPECT_GE(r.copies_dropped, 1u);
  // Cost: the else path no longer computes a+b.
  bool improved = false;
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    auto pair = paired_execution_times(g, r.graph, seed);
    ASSERT_TRUE(pair.has_value());
    EXPECT_LE(pair->second.computations, pair->first.computations);
    improved |= pair->second.computations < pair->first.computations;
  }
  EXPECT_TRUE(improved);
  auto v = check_sequential_consistency(g, r.graph);
  EXPECT_TRUE(v.sequentially_consistent);
  EXPECT_TRUE(v.behaviours_preserved);
}

TEST(Sinking, FullyLiveAssignmentStaysPut) {
  Graph g = lang::compile_or_throw("x := a + b; y := x;");
  SinkingResult r = sink_partially_dead_assignments(g);
  EXPECT_TRUE(r.sunk.empty());
  EXPECT_EQ(count_stmt(r.graph, "x := a + b"), 1u);
}

TEST(Sinking, FullyDeadHandledByDceStyleDrop) {
  // Dead on every path: sinking drops all copies (acts as elimination).
  Graph g = lang::compile_or_throw("x := a + b; x := 1;");
  SinkingResult r = sink_partially_dead_assignments(g);
  validate_or_throw(r.graph);
  ASSERT_EQ(r.sunk.size(), 1u);
  EXPECT_EQ(r.copies_placed, 0u);
  EXPECT_EQ(count_stmt(r.graph, "x := a + b"), 0u);
}

TEST(Sinking, BlockedByUse) {
  Graph g = lang::compile_or_throw(R"(
    x := a + b;
    y := x;
    if (*) { skip; } else { x := 0; }
  )");
  SinkingResult r = sink_partially_dead_assignments(g);
  // The use right after blocks the sink; x is live there on every path up
  // to the use, so nothing is dropped and the transformation is refused.
  EXPECT_TRUE(r.sunk.empty());
}

TEST(Sinking, BlockedByOperandModification) {
  Graph g = lang::compile_or_throw(R"(
    x := a + b;
    a := 9;
    if (*) { y := x; } else { x := 0; }
  )");
  SinkingResult r = sink_partially_dead_assignments(g);
  // a := 9 blocks: the copy would compute a different value. The frontier
  // is before a := 9 where x is still live on all paths -> refused.
  EXPECT_TRUE(r.sunk.empty());
  EXPECT_EQ(count_stmt(r.graph, "x := a + b"), 1u);
}

TEST(Sinking, DoesNotCrossParallelBoundaries) {
  // x is uncontested (only the first component accesses it), but sinking
  // into the statement would duplicate or reorder across the spawn.
  Graph g = lang::compile_or_throw(R"(
    x := a + b;
    par { y := x; } and { c := 1; }
    x := 0;
  )");
  SinkingResult r = sink_partially_dead_assignments(g);
  EXPECT_EQ(count_stmt(r.graph, "x := a + b"), 1u);
}

TEST(Sinking, ContestedVariableNotACandidate) {
  Graph g = lang::compile_or_throw(R"(
    x := a + b;
    par { x := 1; } and { y := x; }
  )");
  SinkingResult r = sink_partially_dead_assignments(g);
  EXPECT_TRUE(r.sunk.empty());
}

TEST(Sinking, WithinComponentSinkingWorks) {
  // Entirely inside one component with component-local variables.
  Graph g = lang::compile_or_throw(R"(
    par {
      u := p + q;
      if (*) { v := u; } else { u := 0; }
    } and {
      w := 1;
    }
  )");
  SinkingResult r = sink_partially_dead_assignments(g);
  validate_or_throw(r.graph);
  EXPECT_EQ(r.sunk.size(), 1u);
  auto v = check_sequential_consistency(g, r.graph);
  EXPECT_TRUE(v.sequentially_consistent);
  EXPECT_TRUE(v.behaviours_preserved);
}

TEST(Sinking, LoopBodyAssignmentNotSunkOutOfLoop) {
  Graph g = lang::compile_or_throw(R"(
    while (*) { x := x + 1; }
    y := x;
  )");
  SinkingResult r = sink_partially_dead_assignments(g);
  // x := x + 1 uses and defines x: blocked immediately, nothing to drop.
  EXPECT_TRUE(r.sunk.empty());
}

class SinkingProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SinkingProperty, PreservesBehaviourNeverCostsMore) {
  Rng rng(GetParam());
  RandomProgramOptions opt;
  opt.target_stmts = 10;
  opt.max_par_depth = 2;
  opt.num_vars = 3;
  opt.while_permille = 30;
  Graph g = random_program(rng, opt);
  SinkingResult r = sink_partially_dead_assignments(g);
  validate_or_throw(r.graph);

  EnumerationOptions eo;
  eo.max_states = 1u << 19;
  auto v = check_sequential_consistency(g, r.graph, {}, eo);
  if (!v.exhausted) GTEST_SKIP();
  EXPECT_TRUE(v.sequentially_consistent) << GetParam();
  EXPECT_TRUE(v.behaviours_preserved) << GetParam();

  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    auto pair = paired_execution_times(g, r.graph, seed * 7 + 3);
    if (!pair.has_value()) continue;
    EXPECT_LE(pair->second.computations, pair->first.computations)
        << GetParam();
    EXPECT_LE(pair->second.time, pair->first.time) << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SinkingProperty,
                         ::testing::Range<std::uint64_t>(0, 40));

}  // namespace
}  // namespace parcm
