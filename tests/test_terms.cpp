#include "ir/terms.hpp"

#include <gtest/gtest.h>

#include "lang/lower.hpp"
#include "support/diagnostics.hpp"

namespace parcm {
namespace {

TEST(TermTable, CollectsDistinctTerms) {
  Graph g = lang::compile_or_throw(R"(
    x := a + b;
    y := a + b;
    z := c * d;
    w := a - b;
    v := 5;
    u := x;
  )");
  TermTable terms(g);
  EXPECT_EQ(terms.size(), 3u);  // a+b, c*d, a-b; trivial rhs not collected
}

TEST(TermTable, LexicalIdentityNotCommutative) {
  Graph g = lang::compile_or_throw("x := a + b; y := b + a;");
  TermTable terms(g);
  EXPECT_EQ(terms.size(), 2u);
}

TEST(TermTable, ConstantsDistinguish) {
  Graph g = lang::compile_or_throw("x := a + 1; y := a + 2; z := a + 1;");
  TermTable terms(g);
  EXPECT_EQ(terms.size(), 2u);
}

TEST(TermTable, TermOfNode) {
  Graph g = lang::compile_or_throw("x := a + b; y := c; skip;");
  TermTable terms(g);
  for (NodeId n : g.all_nodes()) {
    const Node& node = g.node(n);
    if (node.kind == NodeKind::kAssign && node.rhs.is_term()) {
      EXPECT_TRUE(terms.term_of(n).valid());
    } else {
      EXPECT_FALSE(terms.term_of(n).valid());
    }
  }
}

TEST(TermTable, TestConditionsNotCollected) {
  Graph g = lang::compile_or_throw("if (a < b) { x := 1; } while (c < d) { skip; }");
  TermTable terms(g);
  EXPECT_EQ(terms.size(), 0u);
}

TEST(TermTable, FindByValueAndText) {
  Graph g = lang::compile_or_throw("x := a + b; y := c * 2;");
  TermTable terms(g);
  VarId a = *g.find_var("a");
  VarId b = *g.find_var("b");
  TermId t = terms.find(Term{BinOp::kAdd, Operand::var(a), Operand::var(b)});
  EXPECT_TRUE(t.valid());
  EXPECT_EQ(terms.find(g, "a + b"), t);
  EXPECT_TRUE(terms.find(g, "c * 2").valid());
  EXPECT_THROW(terms.find(g, "a - b"), InternalError);
  EXPECT_FALSE(
      terms.find(Term{BinOp::kSub, Operand::var(a), Operand::var(b)}).valid());
}

TEST(TermTable, AllEnumerates) {
  Graph g = lang::compile_or_throw("x := a + b; y := a - b;");
  TermTable terms(g);
  auto all = terms.all();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0], TermId(0));
  EXPECT_EQ(all[1], TermId(1));
}

TEST(TermTable, FirstOccurrenceOrder) {
  Graph g = lang::compile_or_throw("x := a - b; y := a + b; z := a - b;");
  TermTable terms(g);
  EXPECT_EQ(terms.term(TermId(0)).op, BinOp::kSub);
  EXPECT_EQ(terms.term(TermId(1)).op, BinOp::kAdd);
}

}  // namespace
}  // namespace parcm
