// Arena-backed IR allocation: bump allocation, the thread-current arena
// scopes, and the tagged-header deallocation protocol that makes freeing an
// arena-backed container safe on any thread at any time (it is a no-op; the
// owning arena releases the memory wholesale).
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>

#include "lang/lower.hpp"
#include "support/arena.hpp"

namespace parcm {
namespace {

TEST(Arena, BumpAllocationAndStats) {
  Arena a;
  EXPECT_EQ(a.bytes_allocated(), 0u);
  EXPECT_EQ(a.block_count(), 0u);

  void* p = a.allocate(24, 8);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 8, 0u);
  EXPECT_TRUE(a.owns(p));

  void* q = a.allocate(1, 1);
  EXPECT_NE(p, q);
  EXPECT_TRUE(a.owns(q));

  EXPECT_GE(a.bytes_allocated(), 25u);
  EXPECT_GE(a.bytes_reserved(), a.bytes_allocated());
  EXPECT_EQ(a.allocation_count(), 2u);
  EXPECT_GE(a.block_count(), 1u);

  int stack_probe = 0;
  EXPECT_FALSE(a.owns(&stack_probe));
}

TEST(Arena, GrowsBlocksAndResetsToEmpty) {
  Arena a;
  // Exceed the first block so geometric growth kicks in; an oversize
  // request must also land inside a (fresh, large-enough) block.
  for (int i = 0; i < 40; ++i) a.allocate(8 * 1024, 8);
  void* big = a.allocate(Arena::kDefaultBlockBytes * 3, 16);
  EXPECT_TRUE(a.owns(big));
  EXPECT_GE(a.block_count(), 2u);

  a.reset();
  EXPECT_EQ(a.bytes_allocated(), 0u);
  EXPECT_EQ(a.bytes_reserved(), 0u);
  EXPECT_EQ(a.allocation_count(), 0u);
  EXPECT_EQ(a.block_count(), 0u);

  // Reusable after reset.
  void* p = a.allocate(64, 8);
  EXPECT_TRUE(a.owns(p));
}

TEST(ArenaScope, RoutesContainersToTheArenaAndRestores) {
  EXPECT_EQ(current_arena(), nullptr);
  Arena a;
  avector<int> v;
  {
    ArenaScope scope(a);
    EXPECT_EQ(current_arena(), &a);
    v.assign(100, 7);
    EXPECT_TRUE(a.owns(v.data()));

    {
      ArenaPauseScope pause;
      EXPECT_EQ(current_arena(), nullptr);
      avector<int> heap_backed;
      heap_backed.assign(10, 1);
      EXPECT_FALSE(a.owns(heap_backed.data()));
      // heap-tagged buffer freed while the pause is active: operator delete.
    }
    EXPECT_EQ(current_arena(), &a);
  }
  EXPECT_EQ(current_arena(), nullptr);

  // Freeing the arena-tagged buffer with no arena current must be a no-op
  // (the header tag, not the thread state, decides).
  EXPECT_EQ(v.size(), 100u);
  EXPECT_EQ(v[99], 7);
  v.clear();
  v.shrink_to_fit();
}

TEST(ArenaScope, TaggedFreeIsSafeUnderADifferentArena) {
  Arena a;
  Arena b;
  avector<int> from_a;
  {
    ArenaScope scope(a);
    from_a.assign(50, 3);
  }
  // Heap-tagged buffer freed while an unrelated arena is current: must go
  // to operator delete, not be leaked into (or confuse) arena b.
  avector<int> heap_backed;
  heap_backed.assign(50, 4);
  EXPECT_FALSE(a.owns(heap_backed.data()));
  {
    ArenaScope scope(b);
    heap_backed = avector<int>();          // heap-tagged free under b
    from_a = avector<int>();               // a-tagged free under b: no-op
    EXPECT_EQ(b.allocation_count(), 0u);   // neither free touched b
  }
}

TEST(ArenaScope, ScopesNest) {
  Arena outer;
  Arena inner;
  ArenaScope s1(outer);
  void* p;
  {
    ArenaScope s2(inner);
    p = arena_detail::tagged_allocate(32);
    EXPECT_TRUE(inner.owns(static_cast<char*>(p) - arena_detail::kHeaderBytes));
  }
  EXPECT_EQ(current_arena(), &outer);
  arena_detail::tagged_deallocate(p);  // inner-tagged: no-op under outer
  EXPECT_EQ(outer.allocation_count(), 0u);
}

TEST(Arena, GraphBuiltUnderArenaDiesBeforeIt) {
  // The driver's ownership rule: the per-job graph lives and dies inside
  // the job's ArenaScope; its containers never outlive the arena.
  Arena a;
  {
    ArenaScope scope(a);
    Graph g = lang::compile_or_throw(
        "b := 1;\npar {\n  x := a + b;\n} and {\n  y := a + b;\n}\nd := a + b;\n");
    EXPECT_GT(a.bytes_allocated(), 0u);
    EXPECT_GT(g.num_nodes(), 0u);
    // Graph destroyed here: all frees are arena-tagged no-ops.
  }
  std::size_t after_first = a.bytes_allocated();
  a.reset();
  // The arena is reusable for the next job.
  {
    ArenaScope scope(a);
    Graph g = lang::compile_or_throw("x := a + b;");
    EXPECT_GT(a.bytes_allocated(), 0u);
    EXPECT_LT(a.bytes_allocated(), after_first);
  }
}

}  // namespace
}  // namespace parcm
