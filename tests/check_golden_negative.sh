#!/usr/bin/env bash
# Negative test for scripts/check_golden.sh: a missing golden dump must fail
# loudly — non-zero exit naming the absent file — not skip as a silent pass.
#
# Hermetic: copies the repo's scripts/ + tests/golden/ into a scratch tree,
# deletes one golden file there, and runs the check against the copy, so no
# built binaries (and no mutation of the real tree) are needed — the
# existence check fires before the binary check.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
scratch="$(mktemp -d)"
trap 'rm -rf "$scratch"' EXIT

mkdir -p "$scratch/scripts" "$scratch/tests"
cp "$repo_root/scripts/check_golden.sh" "$scratch/scripts/"
cp -r "$repo_root/tests/golden" "$scratch/tests/golden"
rm "$scratch/tests/golden/repro_p3.parcm"

set +e
out="$("$scratch/scripts/check_golden.sh" 2>&1)"
status=$?
set -e

if [[ "$status" -eq 0 ]]; then
  echo "FAIL: check_golden.sh exited 0 with a golden file missing" >&2
  echo "$out" >&2
  exit 1
fi
if ! grep -q "repro_p3.parcm" <<<"$out"; then
  echo "FAIL: failure message does not name the missing file" >&2
  echo "$out" >&2
  exit 1
fi
echo "ok: missing golden fails loudly (exit $status) and names the file"
