#include "analyses/predicates.hpp"

#include <gtest/gtest.h>

#include "ir/transform_utils.hpp"
#include "lang/lower.hpp"

namespace parcm {
namespace {

struct Ctx {
  Graph g;
  TermTable terms;
  LocalPredicates preds;

  explicit Ctx(const char* src)
      : g(lang::compile_or_throw(src)), terms(g), preds(g, terms) {}
};

TEST(LocalPredicates, CompOnlyAtComputingNodes) {
  Ctx s("x := a + b; y := c; skip;");
  TermId ab = s.terms.find(s.g, "a + b");
  NodeId x = node_of_statement(s.g, "x := a + b");
  NodeId y = node_of_statement(s.g, "y := c");
  EXPECT_TRUE(s.preds.comp(x, ab));
  EXPECT_FALSE(s.preds.comp(y, ab));
  EXPECT_FALSE(s.preds.comp(s.g.start(), ab));
}

TEST(LocalPredicates, TranspKilledByOperandAssignment) {
  Ctx s("x := a + b; a := 1; b := 2; c := 3;");
  TermId ab = s.terms.find(s.g, "a + b");
  EXPECT_TRUE(s.preds.transp(node_of_statement(s.g, "x := a + b"), ab));
  EXPECT_FALSE(s.preds.transp(node_of_statement(s.g, "a := 1"), ab));
  EXPECT_FALSE(s.preds.transp(node_of_statement(s.g, "b := 2"), ab));
  EXPECT_TRUE(s.preds.transp(node_of_statement(s.g, "c := 3"), ab));
}

TEST(LocalPredicates, RecursiveAssignmentNotTransparentForOwnTerm) {
  Ctx s("a := a + b;");
  TermId ab = s.terms.find(s.g, "a + b");
  NodeId n = node_of_statement(s.g, "a := a + b");
  EXPECT_TRUE(s.preds.comp(n, ab));
  EXPECT_FALSE(s.preds.transp(n, ab));
  EXPECT_TRUE(s.preds.recursive(n));
}

TEST(LocalPredicates, RecursiveDetection) {
  Ctx s("a := a + b; x := a + b; y := y; z := 1; w := w * w;");
  EXPECT_TRUE(s.preds.recursive(node_of_statement(s.g, "a := a + b")));
  EXPECT_FALSE(s.preds.recursive(node_of_statement(s.g, "x := a + b")));
  EXPECT_TRUE(s.preds.recursive(node_of_statement(s.g, "y := y")));
  EXPECT_FALSE(s.preds.recursive(node_of_statement(s.g, "z := 1")));
  EXPECT_TRUE(s.preds.recursive(node_of_statement(s.g, "w := w * w")));
}

TEST(LocalPredicates, ModIsComplementOfTransp) {
  Ctx s("x := a + b; a := c * d; u := a - 1;");
  for (NodeId n : s.g.all_nodes()) {
    BitVector both = s.preds.transp(n) & s.preds.mod(n);
    EXPECT_TRUE(both.none());
    BitVector all = s.preds.transp(n) | s.preds.mod(n);
    EXPECT_TRUE(all.all());
  }
}

TEST(LocalPredicates, SkipAndTestAreNeutral) {
  Ctx s("x := a + b; skip; if (a < 1) { skip; } while (*) { skip; }");
  TermId ab = s.terms.find(s.g, "a + b");
  for (NodeId n : s.g.all_nodes()) {
    if (s.g.node(n).kind == NodeKind::kAssign) continue;
    EXPECT_FALSE(s.preds.comp(n, ab));
    EXPECT_TRUE(s.preds.transp(n, ab));
    EXPECT_FALSE(s.preds.recursive(n));
  }
}

TEST(LocalPredicates, ConstantOperandsNeverKilled) {
  Ctx s("x := 1 + 2; y := 3;");
  TermId t = s.terms.find(s.g, "1 + 2");
  for (NodeId n : s.g.all_nodes()) {
    EXPECT_TRUE(s.preds.transp(n, t));
  }
}

TEST(LocalPredicates, MultipleTermsPerVariable) {
  Ctx s("x := a + b; y := a - c; a := 5;");
  TermId ab = s.terms.find(s.g, "a + b");
  TermId ac = s.terms.find(s.g, "a - c");
  NodeId kill = node_of_statement(s.g, "a := 5");
  EXPECT_TRUE(s.preds.mod(kill).test(ab.index()));
  EXPECT_TRUE(s.preds.mod(kill).test(ac.index()));
  NodeId y = node_of_statement(s.g, "y := a - c");
  EXPECT_FALSE(s.preds.mod(y).test(ab.index()));
  EXPECT_FALSE(s.preds.mod(y).test(ac.index()));
}

}  // namespace
}  // namespace parcm
