// Property suite for the transformation guarantees (paper Sec. 3.3.4):
// on random parallel programs, PCM (a) preserves sequential consistency
// under the paper's split-assignment semantics (Remark 2.1), (b) never
// worsens the execution time of any path, and (c) never worsens the
// computation count. BCM gets the same treatment on sequential programs
// with full behavioural equality.
#include <gtest/gtest.h>

#include <algorithm>

#include "analyses/earliest.hpp"
#include "analyses/predicates.hpp"
#include "ir/terms.hpp"
#include "ir/validate.hpp"
#include "lang/lower.hpp"
#include "motion/bcm.hpp"
#include "motion/pcm.hpp"
#include "semantics/cost.hpp"
#include "semantics/equivalence.hpp"
#include "verify/fuzz.hpp"
#include "verify/verify.hpp"
#include "workload/randomprog.hpp"

namespace parcm {
namespace {

RandomProgramOptions parallel_options() {
  RandomProgramOptions opt;
  opt.target_stmts = 9;
  opt.max_par_depth = 2;
  opt.max_components = 3;
  opt.num_vars = 3;
  opt.while_permille = 30;  // bounded enumeration
  return opt;
}

class PcmProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PcmProperty, PreservesSequentialConsistencySplitSemantics) {
  Rng rng(GetParam());
  Graph g = random_program(rng, parallel_options());
  MotionResult r = parallel_code_motion(g);
  validate_or_throw(r.graph);
  EnumerationOptions opts;
  opts.atomic_assignments = false;
  opts.max_states = 1u << 19;
  auto verdict = check_sequential_consistency(g, r.graph, {}, opts);
  if (!verdict.exhausted) GTEST_SKIP() << "state space too large";
  EXPECT_TRUE(verdict.sequentially_consistent)
      << "seed " << GetParam() << " witness exists";
  EXPECT_TRUE(verdict.behaviours_preserved) << "seed " << GetParam();
}

TEST_P(PcmProperty, NeverExecutionallyWorse) {
  Rng rng(GetParam() + 5000);
  RandomProgramOptions opt = parallel_options();
  opt.target_stmts = 14;
  Graph g = random_program(rng, opt);
  MotionResult r = parallel_code_motion(g);
  validate_or_throw(r.graph);
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    auto pair = paired_execution_times(g, r.graph, seed * 77 + 1);
    if (!pair.has_value()) continue;  // unlucky divergent schedule
    EXPECT_LE(pair->second.time, pair->first.time)
        << "program seed " << GetParam() << " path seed " << seed;
    EXPECT_LE(pair->second.computations, pair->first.computations)
        << "program seed " << GetParam() << " path seed " << seed;
  }
}

TEST_P(PcmProperty, TransformedGraphAlwaysValid) {
  Rng rng(GetParam() + 9000);
  RandomProgramOptions opt = parallel_options();
  opt.target_stmts = 20;
  opt.max_par_depth = 3;
  Graph g = random_program(rng, opt);
  MotionResult refined = parallel_code_motion(g);
  validate_or_throw(refined.graph);
  MotionResult naive = naive_parallel_code_motion(g);
  validate_or_throw(naive.graph);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PcmProperty,
                         ::testing::Range<std::uint64_t>(0, 40));

// P2 (paper Sec. 3.3.2, Fig. 3): recursive assignments x := t with
// x ∈ operands(t). Inside a parallel statement the conceptual split
// x_t := t; x := x_t must never be materialized with other statements
// between initialization and replacement — the refined analyses guarantee
// that by refusing to replace such occurrences at all.
class PcmRecursiveProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static RandomProgramOptions recursive_heavy() {
    RandomProgramOptions opt = verify::default_fuzz_gen();
    opt.recursive_permille = 500;
    opt.p2_shape_permille = 250;
    opt.p3_shape_permille = 100;
    return opt;
  }
};

TEST_P(PcmRecursiveProperty, RecursiveOccurrencesInsideParOnlyReplacedIfUpSafe) {
  // Replacing `a := a+b` by `a := h` is only sound when h already holds the
  // value (up-safety): the occurrence itself must never justify the
  // initialization, because materializing its split `h := a+b; a := h`
  // with sibling interference in between is exactly the P2 miscompile.
  // Refined down-safety therefore treats it as a pure destroyer.
  Rng rng(GetParam());
  Graph g = lang::lower(random_program_ast(rng, recursive_heavy()));
  TermTable terms(g);
  LocalPredicates preds(g, terms);
  SafetyInfo safety = compute_safety(g, preds, SafetyVariant::kRefined);
  MotionResult r = parallel_code_motion(g);
  validate_or_throw(r.graph);
  for (const TermMotion& tm : r.terms) {
    for (NodeId n : tm.replaced) {
      if (n.index() >= g.num_nodes()) continue;  // created by the transform
      if (!preds.recursive(n) || !g.pfg(n).valid()) continue;
      EXPECT_TRUE(safety.upsafe[n.index()].test(tm.term.index()))
          << "seed " << GetParam() << ": recursive occurrence n" << n.index()
          << " inside a parallel statement was replaced without the value "
             "being available — its own down-safety materialized the split "
             "(P2)";
    }
  }
}

TEST_P(PcmRecursiveProperty, ConsistentOnRecursiveHeavyPrograms) {
  Rng rng(GetParam() + 300);
  Graph g = lang::lower(random_program_ast(rng, recursive_heavy()));
  Graph t = verify::apply_named_pipeline("pcm", g);
  verify::Budget budget;
  budget.max_states = 1u << 19;
  verify::Verdict v = verify::differential_check(g, t, budget);
  if (v.status == verify::Status::kInconclusive || !v.exact) {
    GTEST_SKIP() << "state space too large";
  }
  EXPECT_TRUE(v.ok()) << "seed " << GetParam() << ": " << v.summary();
}

TEST_P(PcmRecursiveProperty, FullPipelineConsistentOnRecursiveHeavyPrograms) {
  Rng rng(GetParam() + 700);
  Graph g = lang::lower(random_program_ast(rng, recursive_heavy()));
  Graph t = verify::apply_named_pipeline("full", g);
  verify::Verdict v = verify::differential_check(g, t);
  if (v.status == verify::Status::kInconclusive || !v.exact) {
    GTEST_SKIP() << "state space too large";
  }
  EXPECT_TRUE(v.ok()) << "seed " << GetParam() << ": " << v.summary();
}

INSTANTIATE_TEST_SUITE_P(Seeds, PcmRecursiveProperty,
                         ::testing::Range<std::uint64_t>(0, 30));

class BcmProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BcmProperty, SequentialFullEquivalenceAndImprovement) {
  Rng rng(GetParam());
  RandomProgramOptions opt;
  opt.max_par_depth = 0;
  opt.target_stmts = 12;
  opt.num_vars = 3;
  Graph g = random_program(rng, opt);
  MotionResult r = busy_code_motion(g);
  validate_or_throw(r.graph);

  auto verdict = check_sequential_consistency(g, r.graph);
  if (!verdict.exhausted) GTEST_SKIP();
  EXPECT_TRUE(verdict.sequentially_consistent) << GetParam();
  EXPECT_TRUE(verdict.behaviours_preserved) << GetParam();

  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    auto pair = paired_execution_times(g, r.graph, seed * 13 + 5);
    if (!pair.has_value()) continue;
    EXPECT_LE(pair->second.time, pair->first.time) << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BcmProperty,
                         ::testing::Range<std::uint64_t>(0, 40));

}  // namespace
}  // namespace parcm
