// Cross-cutting coverage: printers/validation for the barrier extension,
// transformation interplay on synchronized programs, and assorted edge
// cases that do not fit the per-module suites.
#include <gtest/gtest.h>

#include "parcm.hpp"

namespace parcm {
namespace {

TEST(Misc, BarrierPrinting) {
  Graph g = lang::compile_or_throw("par { barrier @b1; } and { barrier; }");
  NodeId b = node_of_label(g, "b1");
  EXPECT_EQ(statement_to_string(g, b), "barrier");
  EXPECT_NE(to_text(g).find("barrier"), std::string::npos);
  EXPECT_NE(to_dot(g).find("barrier"), std::string::npos);
}

TEST(Misc, BarrierKindName) {
  EXPECT_STREQ(node_kind_name(NodeKind::kBarrier), "barrier");
}

TEST(Misc, ValidateRejectsMultiSuccessorBarrier) {
  Graph g = lang::compile_or_throw("par { barrier; } and { skip; }");
  NodeId b = find_node(g, [](const Graph& gr, NodeId n) {
    return gr.node(n).kind == NodeKind::kBarrier;
  });
  ASSERT_TRUE(b.valid());
  // Add a second out-edge by hand.
  g.add_edge(b, g.par_stmt(ParStmtId(0)).end);
  DiagnosticSink sink;
  EXPECT_FALSE(validate(g, sink));
  EXPECT_NE(sink.to_string().find("barrier"), std::string::npos);
}

TEST(Misc, SplitJoinEdgesKeepsBarriers) {
  Graph g = lang::compile_or_throw(R"(
    par { if (*) { x := 1; } else { y := 2; } barrier; z := 3; }
    and { barrier; }
  )");
  split_join_edges(g);
  validate_or_throw(g);
}

TEST(Misc, DceRespectsBarrierPrograms) {
  // x := 1 is overwritten before any read even across the barrier.
  Graph g = lang::compile_or_throw(R"(
    par { x := 1; barrier; x := 2; } and { barrier; }
    y := x;
  )");
  DceResult r = eliminate_dead_assignments(g);
  validate_or_throw(r.graph);
  ASSERT_EQ(r.eliminated.size(), 1u);
  auto a = enumerate_executions(g, {"y"});
  auto b = enumerate_executions(r.graph, {"y"});
  EXPECT_EQ(a.finals, b.finals);
}

TEST(Misc, ConstPropAcrossBarrier) {
  // k is uncontested and constant; the barrier does not block propagation
  // (it is data-neutral).
  Graph g = lang::compile_or_throw(R"(
    k := 4;
    par { a := k + 1; barrier; b := k + 2; } and { barrier; }
  )");
  ConstPropResult r = propagate_constants(g);
  bool a5 = false, b6 = false;
  for (NodeId n : r.graph.all_nodes()) {
    a5 |= statement_to_string(r.graph, n) == "a := 5";
    b6 |= statement_to_string(r.graph, n) == "b := 6";
  }
  EXPECT_TRUE(a5);
  EXPECT_TRUE(b6);
}

TEST(Misc, PipelineOnBarrierProgram) {
  Graph g = lang::compile_or_throw(R"(
    a := 1; b := 2;
    par { x := a + b; barrier; y := a + b; } and { barrier; z := a + b; }
  )");
  PipelineResult r = default_pipeline().run(g);
  validate_or_throw(r.graph);
  EnumerationOptions eo;
  eo.atomic_assignments = false;
  auto v = check_sequential_consistency(g, r.graph, {}, eo);
  ASSERT_TRUE(v.exhausted);
  EXPECT_TRUE(v.sequentially_consistent);
}

TEST(Misc, DownSafetyEndsAtBarrier) {
  Graph g = lang::compile_or_throw(R"(
    par { barrier; x := a + b; } and { barrier; y := a + b; }
  )");
  TermTable terms(g);
  LocalPredicates preds(g, terms);
  SafetyInfo s = compute_safety(g, preds, SafetyVariant::kRefined);
  TermId ab = terms.find(g, "a + b");
  for (NodeId n : g.all_nodes()) {
    if (g.node(n).kind == NodeKind::kBarrier) {
      EXPECT_FALSE(s.dnsafe[n.index()].test(ab.index()));
    }
  }
  // Consequently no hoist above the barriers or the statement.
  MotionResult r = parallel_code_motion(g);
  for (const TermMotion& tm : r.terms) {
    for (NodeId ins : tm.insert_nodes) {
      EXPECT_NE(r.graph.node(ins).region, r.graph.root_region());
    }
  }
}

TEST(Misc, UpSafetyCrossesBarrierWithinComponent) {
  // Availability is a forward property; the barrier does not kill it.
  Graph g = lang::compile_or_throw(R"(
    par { x := a + b; barrier; y := a + b; } and { barrier; }
  )");
  TermTable terms(g);
  LocalPredicates preds(g, terms);
  SafetyInfo s = compute_safety(g, preds, SafetyVariant::kRefined);
  TermId ab = terms.find(g, "a + b");
  NodeId y = node_of_statement(g, "y := a + b");
  EXPECT_TRUE(s.upsafe[y.index()].test(ab.index()));
}

TEST(Misc, UmbrellaHeaderCompilesAndWorks) {
  Graph g = lang::compile_or_throw("x := a + b; y := a + b;");
  MotionResult r = parallel_code_motion(g);
  EXPECT_EQ(r.num_replacements(), 2u);
}

TEST(Misc, FigureSourceForNewIds) {
  for (const char* id : {"3b", "3d", "4b", "4c", "4d"}) {
    Graph g = lang::compile_or_throw(figures::figure_source(id));
    validate_or_throw(g);
  }
}

TEST(Misc, CostWalkerHandlesBarrierBeforeParEnd) {
  Graph g = lang::compile_or_throw(
      "par { x := a + b; barrier; } and { barrier; }");
  FixedOracle o(0);
  CostResult r = execution_time(g, o);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.time, 1u);
}

TEST(Misc, RandomBarrierProgramsValidate) {
  RandomProgramOptions opt;
  opt.max_par_depth = 2;
  opt.barrier_permille = 300;
  opt.target_stmts = 15;
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    Rng rng(seed);
    Graph g = random_program(rng, opt);
    DiagnosticSink sink;
    EXPECT_TRUE(validate(g, sink)) << seed << "\n" << sink.to_string();
  }
}

TEST(Misc, InterpreterBarrierRandomSchedules) {
  Graph g = lang::compile_or_throw(R"(
    par { a := 1; barrier; u := b + 0; } and { b := 2; barrier; v := a + 0; }
  )");
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    Rng rng(seed);
    auto final = run_random_schedule(g, rng);
    ASSERT_TRUE(final.has_value()) << seed;
    EXPECT_EQ(final->get(*g.find_var("u")), 2);
    EXPECT_EQ(final->get(*g.find_var("v")), 1);
  }
}

TEST(Misc, SinkingRefusesAcrossBarrier) {
  Graph g = lang::compile_or_throw(R"(
    par { u := p + q; barrier; if (*) { v := u; } else { u := 0; } }
    and { barrier; }
  )");
  SinkingResult r = sink_partially_dead_assignments(g);
  // The barrier blocks the delay region right away; u := p + q stays.
  bool found = false;
  for (NodeId n : r.graph.all_nodes()) {
    found |= statement_to_string(r.graph, n) == "u := p + q";
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace parcm
