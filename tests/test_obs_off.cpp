// Compiled with PARCM_OBS_ENABLED=0 (see tests/CMakeLists.txt): proves the
// instrumentation macros are true no-ops in the OFF configuration and that
// code *consuming* registries/JSON still compiles and works against a
// library built either way.
#include <gtest/gtest.h>

#include "obs/alloc.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/remarks.hpp"

static_assert(PARCM_OBS_ENABLED == 0,
              "this test exercises the PARCM_OBS=OFF configuration");

namespace parcm {
namespace {

TEST(ObsOff, MacrosCompileToNothing) {
  obs::Registry mine;
  obs::Registry* prev = obs::set_registry(&mine);
  // None of these may touch the installed registry.
  PARCM_OBS_COUNT("off.count", 7);
  PARCM_OBS_GAUGE("off.gauge", 1.0);
  PARCM_OBS_HIST("off.hist", 42);
  {
    PARCM_OBS_TIMER("off.timer");
  }
  obs::set_registry(prev);
  EXPECT_TRUE(mine.empty());
  EXPECT_EQ(mine.counter("off.count"), 0u);
  EXPECT_EQ(mine.histogram("off.hist").count(), 0u);
}

TEST(ObsOff, MacrosAreValidSingleStatements) {
  // Must parse as one statement (usable in an unbraced if/else).
  if (false)
    PARCM_OBS_COUNT("never", 1);
  else
    PARCM_OBS_HIST("never", 0);
  SUCCEED();
}

TEST(ObsOff, AllocScopeIsEmptyShell) {
  // The OFF-mode AllocCounterScope must carry no state (no saved counters)
  // and always report zero. Note the process-wide hook may still be live —
  // it belongs to the library build, not this TU's configuration.
  static_assert(sizeof(obs::AllocCounterScope) == 1,
                "OFF-mode AllocCounterScope must be stateless");
  obs::AllocCounterScope scope;
  std::string churn(1024, 'x');  // real allocation inside the scope
  churn += churn;
  EXPECT_EQ(scope.allocs(), 0u);
  EXPECT_EQ(scope.bytes(), 0u);
}

TEST(ObsOff, RemarkMacrosCompileToNothing) {
  obs::RemarkSink mine;
  mine.set_enabled(true);  // even an enabled sink must see nothing
  obs::RemarkSink* prev = obs::set_remark_sink(&mine);
  PARCM_OBS_REMARK_PASS("off-pass");
  PARCM_OBS_REMARK(obs::Remark{obs::RemarkKind::kInserted, "off", 1, 0,
                               "a + b", "must not be recorded",
                               {obs::RemarkReason::kEarliest}, ""});
  if (false)
    PARCM_OBS_REMARK(obs::Remark{});
  else
    PARCM_OBS_REMARK_PASS("branch");
  obs::set_remark_sink(prev);
  EXPECT_TRUE(mine.empty());
  EXPECT_EQ(mine.pass(), "");  // the pass scope macro vanished too
  // The guard expression folds to a constant false.
  EXPECT_FALSE(PARCM_OBS_REMARKS_ON());
}

TEST(ObsOff, RemarkConsumersStillWork) {
  // The sink itself stays fully functional — only the macros vanish.
  obs::RemarkSink sink;
  sink.set_enabled(true);
  sink.emit(obs::Remark{obs::RemarkKind::kBlocked, "manual", 2, -1, "",
                        "hand-emitted", {obs::RemarkReason::kBarrierPhase},
                        ""});
  EXPECT_EQ(sink.size(), 1u);
  EXPECT_NE(sink.to_json().find("parcm-remarks-v1"), std::string::npos);
  EXPECT_NE(sink.to_string().find("hand-emitted"), std::string::npos);
}

TEST(ObsOff, ConsumersStillWork) {
  // Registry and JsonWriter remain fully functional in OFF builds — only
  // the reporting macros vanish.
  obs::Registry r;
  r.add_counter("manual", 3);
  EXPECT_EQ(r.counter("manual"), 3u);
  EXPECT_EQ(r.to_json(),
            "{\"schema\":\"parcm-metrics-v1\","
            "\"counters\":{\"manual\":3},\"gauges\":{},\"timers\":{},"
            "\"histograms\":{}}");
  // Direct histogram recording keeps working too (consumer path).
  r.record_hist("h", 5);
  EXPECT_EQ(r.histogram("h").count(), 1u);
}

}  // namespace
}  // namespace parcm
