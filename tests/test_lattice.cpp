#include "dfa/lattice.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace parcm {
namespace {

const BVFun kAll[] = {BVFun::kConstFF, BVFun::kId, BVFun::kConstTT};

TEST(BVFun, Apply) {
  EXPECT_FALSE(apply_fun(BVFun::kConstFF, true));
  EXPECT_FALSE(apply_fun(BVFun::kConstFF, false));
  EXPECT_TRUE(apply_fun(BVFun::kConstTT, false));
  EXPECT_TRUE(apply_fun(BVFun::kId, true));
  EXPECT_FALSE(apply_fun(BVFun::kId, false));
}

TEST(BVFun, ComposeMatchesFunctionComposition) {
  for (BVFun g : kAll) {
    for (BVFun f : kAll) {
      BVFun c = compose(g, f);
      for (bool b : {false, true}) {
        EXPECT_EQ(apply_fun(c, b), apply_fun(g, apply_fun(f, b)));
      }
    }
  }
}

TEST(BVFun, ComposeAssociative) {
  for (BVFun f : kAll)
    for (BVFun g : kAll)
      for (BVFun h : kAll)
        EXPECT_EQ(compose(h, compose(g, f)), compose(compose(h, g), f));
}

TEST(BVFun, MainLemma) {
  // Main Lemma 2.2: a composition chain equals its last non-identity factor
  // (or Id if all are Id).
  std::vector<std::vector<BVFun>> chains = {
      {BVFun::kConstTT, BVFun::kId, BVFun::kId},
      {BVFun::kConstFF, BVFun::kConstTT},
      {BVFun::kId, BVFun::kId},
      {BVFun::kConstTT, BVFun::kConstFF, BVFun::kId, BVFun::kId},
  };
  for (const auto& chain : chains) {
    BVFun total = BVFun::kId;
    BVFun last_non_id = BVFun::kId;
    for (BVFun f : chain) {
      total = compose(f, total);
      if (f != BVFun::kId) last_non_id = f;
    }
    EXPECT_EQ(total, last_non_id);
  }
}

TEST(BVFun, MeetIsPointwiseAnd) {
  for (BVFun f : kAll) {
    for (BVFun g : kAll) {
      BVFun m = meet(f, g);
      for (bool b : {false, true}) {
        EXPECT_EQ(apply_fun(m, b), apply_fun(f, b) && apply_fun(g, b));
      }
    }
  }
}

TEST(BVFun, ChainOrder) {
  EXPECT_EQ(meet(BVFun::kConstFF, BVFun::kConstTT), BVFun::kConstFF);
  EXPECT_EQ(meet(BVFun::kId, BVFun::kConstTT), BVFun::kId);
  EXPECT_EQ(meet(BVFun::kId, BVFun::kConstFF), BVFun::kConstFF);
  EXPECT_TRUE(is_destructive(BVFun::kConstFF));
  EXPECT_FALSE(is_destructive(BVFun::kId));
}

PackedFun from_scalars(const std::vector<BVFun>& fs) {
  PackedFun p{BitVector(fs.size()), BitVector(fs.size())};
  for (std::size_t i = 0; i < fs.size(); ++i) {
    if (fs[i] == BVFun::kConstTT) p.tt.set(i);
    if (fs[i] == BVFun::kConstFF) p.ff.set(i);
  }
  return p;
}

TEST(PackedFun, IdentityAndTop) {
  PackedFun id = PackedFun::identity(5);
  EXPECT_TRUE(id.tt.none());
  EXPECT_TRUE(id.ff.none());
  PackedFun top = PackedFun::top(5);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(top.at(i), BVFun::kConstTT);
}

TEST(PackedFun, ComposedMatchesScalarOnAllPairs) {
  // 9 (g,f) pairs packed into one 9-term vector.
  std::vector<BVFun> gs, fs;
  for (BVFun g : kAll)
    for (BVFun f : kAll) {
      gs.push_back(g);
      fs.push_back(f);
    }
  PackedFun composed = PackedFun::composed(from_scalars(gs), from_scalars(fs));
  for (std::size_t i = 0; i < gs.size(); ++i) {
    EXPECT_EQ(composed.at(i), compose(gs[i], fs[i])) << i;
  }
}

TEST(PackedFun, MetMatchesScalarOnAllPairs) {
  std::vector<BVFun> gs, fs;
  for (BVFun g : kAll)
    for (BVFun f : kAll) {
      gs.push_back(g);
      fs.push_back(f);
    }
  PackedFun met = PackedFun::met(from_scalars(gs), from_scalars(fs));
  for (std::size_t i = 0; i < gs.size(); ++i) {
    EXPECT_EQ(met.at(i), meet(gs[i], fs[i])) << i;
  }
}

TEST(PackedFun, MasksStayDisjoint) {
  std::vector<BVFun> gs, fs;
  for (BVFun g : kAll)
    for (BVFun f : kAll) {
      gs.push_back(g);
      fs.push_back(f);
    }
  PackedFun c = PackedFun::composed(from_scalars(gs), from_scalars(fs));
  EXPECT_FALSE(c.tt.intersects(c.ff));
  PackedFun m = PackedFun::met(from_scalars(gs), from_scalars(fs));
  EXPECT_FALSE(m.tt.intersects(m.ff));
}

TEST(PackedFun, ApplyMatchesScalar) {
  std::vector<BVFun> fs = {BVFun::kConstFF, BVFun::kId, BVFun::kConstTT,
                           BVFun::kId};
  PackedFun p = from_scalars(fs);
  BitVector in(4);
  in.set(1);
  in.set(2);
  BitVector out = p.apply(in);
  EXPECT_FALSE(out.test(0));
  EXPECT_TRUE(out.test(1));
  EXPECT_TRUE(out.test(2));
  EXPECT_FALSE(out.test(3));
}

TEST(BVFun, Names) {
  EXPECT_STREQ(bvfun_name(BVFun::kConstFF), "Const_ff");
  EXPECT_STREQ(bvfun_name(BVFun::kId), "Id");
  EXPECT_STREQ(bvfun_name(BVFun::kConstTT), "Const_tt");
}

}  // namespace
}  // namespace parcm
