// Meta-properties of the transformations: re-running passes stays sound
// and cost-neutral, printers cover every figure, and the transformations
// compose in any order.
#include <gtest/gtest.h>

#include "parcm.hpp"

namespace parcm {
namespace {

const char* kFigureIds[] = {"1",  "1h", "2",  "3a", "3b", "3c", "3d",
                            "4",  "4b", "4c", "4d", "5",  "6",  "8",
                            "8n", "9",  "9n", "10"};

TEST(Meta, SecondPcmRunNeverWorseAndConsistent) {
  for (const char* id : {"2", "8", "9", "10"}) {
    Graph g = lang::compile_or_throw(figures::figure_source(id));
    Graph once = parallel_code_motion(g).graph;
    Graph twice = parallel_code_motion(once).graph;
    validate_or_throw(twice);
    for (std::uint64_t seed = 0; seed < 12; ++seed) {
      auto pair = paired_execution_times(once, twice, seed);
      ASSERT_TRUE(pair.has_value()) << id;
      EXPECT_LE(pair->second.time, pair->first.time) << id;
    }
    EnumerationOptions eo;
    eo.atomic_assignments = false;
    auto v = check_sequential_consistency(g, twice, all_var_names(g), eo);
    if (v.exhausted) EXPECT_TRUE(v.sequentially_consistent) << id;
  }
}

TEST(Meta, DceIsIdempotent) {
  Graph g = lang::compile_or_throw("x := 1; x := 2; y := x; z := 9;");
  DceOptions opts;
  opts.observed = {"y"};
  DceResult once = eliminate_dead_assignments(g, opts);
  DceResult twice = eliminate_dead_assignments(once.graph, opts);
  EXPECT_TRUE(twice.eliminated.empty());
}

TEST(Meta, ConstPropIsIdempotent) {
  Graph g = lang::compile_or_throw("x := 2; y := x + 3; z := y * y;");
  ConstPropResult once = propagate_constants(g);
  ConstPropResult twice = propagate_constants(once.graph);
  EXPECT_EQ(twice.operands_folded, 0u);
  EXPECT_EQ(twice.rhs_folded, 0u);
}

TEST(Meta, PrintersCoverEveryFigure) {
  for (const char* id : kFigureIds) {
    Graph g = lang::compile_or_throw(figures::figure_source(id));
    std::string text = to_text(g);
    std::string dot = to_dot(g, id);
    EXPECT_GT(text.size(), 10u) << id;
    EXPECT_EQ(dot.find("digraph"), 0u) << id;
    for (NodeId n : g.all_nodes()) {
      EXPECT_FALSE(statement_to_string(g, n).empty()) << id;
    }
  }
}

TEST(Meta, ReorderedPipelineStillSound) {
  Graph g = figures::fig10();
  Pipeline p;
  p.add_constprop().add_dce().add_pcm().add_sinking().add_validate();
  PipelineResult r = p.run(g);
  validate_or_throw(r.graph);
  LoopOracle l1(3), l2(3);
  CostResult before = execution_time(g, l1);
  CostResult after = execution_time(r.graph, l2);
  EXPECT_LE(after.time, before.time);
}

TEST(Meta, AllFiguresSurviveEveryPass) {
  for (const char* id : kFigureIds) {
    Graph g = lang::compile_or_throw(figures::figure_source(id));
    validate_or_throw(parallel_code_motion(g).graph);
    validate_or_throw(naive_parallel_code_motion(g).graph);
    validate_or_throw(propagate_constants(g).graph);
    validate_or_throw(eliminate_dead_assignments(g).graph);
    validate_or_throw(sink_partially_dead_assignments(g).graph);
    if (g.num_par_stmts() == 0) {
      validate_or_throw(busy_code_motion(g).graph);
      validate_or_throw(lazy_code_motion(g).graph);
    }
  }
}

TEST(Meta, TransformsPreserveVariableNames) {
  Graph g = figures::fig2();
  MotionResult r = parallel_code_motion(g);
  for (std::size_t v = 0; v < g.num_vars(); ++v) {
    VarId id(static_cast<VarId::underlying>(v));
    EXPECT_EQ(g.var_name(id), r.graph.var_name(id));
  }
}

TEST(Meta, NodeIdsStableUnderTransformation) {
  // Transformations only append nodes; original ids keep their statements'
  // identity (up to RHS replacement), which the cost pairing relies on.
  Graph g = figures::fig10();
  MotionResult r = parallel_code_motion(g);
  for (NodeId n : g.all_nodes()) {
    EXPECT_EQ(g.node(n).kind, r.graph.node(n).kind) << n.value();
    EXPECT_EQ(g.node(n).label, r.graph.node(n).label) << n.value();
  }
}

}  // namespace
}  // namespace parcm
