#include "motion/bcm.hpp"

#include <gtest/gtest.h>

#include "figures/figures.hpp"
#include "ir/printer.hpp"
#include "ir/transform_utils.hpp"
#include "ir/validate.hpp"
#include "lang/lower.hpp"
#include "semantics/cost.hpp"
#include "semantics/equivalence.hpp"

namespace parcm {
namespace {

std::size_t count_computations(const Graph& g) {
  std::size_t n = 0;
  for (NodeId id : g.all_nodes()) {
    const Node& node = g.node(id);
    n += node.kind == NodeKind::kAssign && node.rhs.is_term();
  }
  return n;
}

TEST(BCM, RejectsParallelPrograms) {
  Graph g = lang::compile_or_throw("par { x := 1; } and { y := 2; }");
  EXPECT_THROW(busy_code_motion(g), InternalError);
}

TEST(BCM, NoOpOnProgramWithoutRedundancy) {
  Graph g = lang::compile_or_throw("x := a + b;");
  MotionResult r = busy_code_motion(g);
  validate_or_throw(r.graph);
  // The single computation is trivially replaced by its own insertion; the
  // computation count is unchanged.
  EXPECT_EQ(count_computations(r.graph), 1u);
}

TEST(BCM, FullRedundancyEliminated) {
  Graph g = lang::compile_or_throw("x := a + b; y := a + b; z := a + b;");
  MotionResult r = busy_code_motion(g);
  validate_or_throw(r.graph);
  ASSERT_EQ(r.terms.size(), 1u);
  EXPECT_EQ(r.terms[0].insert_nodes.size(), 1u);
  EXPECT_EQ(r.terms[0].replaced.size(), 3u);
  EXPECT_EQ(count_computations(r.graph), 1u);
}

TEST(BCM, DiamondHoist) {
  Graph g = figures::fig1_hoistable();
  MotionResult r = busy_code_motion(g);
  validate_or_throw(r.graph);
  ASSERT_EQ(r.terms.size(), 1u);
  EXPECT_EQ(r.terms[0].insert_nodes.size(), 1u);
  EXPECT_EQ(r.terms[0].replaced.size(), 3u);
  // Per-path computations drop from 2 to 1.
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    auto pair = paired_execution_times(g, r.graph, seed);
    ASSERT_TRUE(pair.has_value());
    EXPECT_EQ(pair->first.computations, 2u);
    EXPECT_EQ(pair->second.computations, 1u);
  }
}

TEST(BCM, Fig1PartialRedundancyRemains) {
  Graph g = figures::fig1();
  MotionResult r = busy_code_motion(g);
  validate_or_throw(r.graph);
  // No insertion escapes the branches: every path's computation count is
  // unchanged (computational optimality of the argument program).
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    auto pair = paired_execution_times(g, r.graph, seed);
    ASSERT_TRUE(pair.has_value());
    EXPECT_EQ(pair->first.computations, pair->second.computations) << seed;
    EXPECT_EQ(pair->first.time, pair->second.time) << seed;
  }
}

TEST(BCM, NeverWorseNeverChangesSemantics) {
  const char* programs[] = {
      "x := a + b; y := a + b;",
      "if (*) { x := a + b; } else { a := 1; } y := a + b;",
      "while (*) { x := a + b; } y := a + b;",
      "a := 1; if (*) { b := 2; } else { x := a + b; } y := a + b;",
      "c := c + d; e := c + d;",
  };
  for (const char* src : programs) {
    Graph g = lang::compile_or_throw(src);
    MotionResult r = busy_code_motion(g);
    validate_or_throw(r.graph);
    for (std::uint64_t seed = 0; seed < 16; ++seed) {
      auto pair = paired_execution_times(g, r.graph, seed);
      ASSERT_TRUE(pair.has_value());
      EXPECT_LE(pair->second.time, pair->first.time) << src;
      EXPECT_LE(pair->second.computations, pair->first.computations) << src;
    }
    auto verdict = check_sequential_consistency(g, r.graph);
    EXPECT_TRUE(verdict.exhausted) << src;
    EXPECT_TRUE(verdict.sequentially_consistent) << src;
    EXPECT_TRUE(verdict.behaviours_preserved) << src;
  }
}

TEST(BCM, LoopInvariantNotHoistedWithoutDownSafety) {
  // Classic BCM limitation: the loop may execute zero times, so a+b is not
  // down-safe at the header and stays inside.
  Graph g = lang::compile_or_throw("while (*) { x := a + b; } y := c;");
  MotionResult r = busy_code_motion(g);
  validate_or_throw(r.graph);
  ASSERT_EQ(r.terms.size(), 1u);
  for (NodeId n : r.terms[0].insert_nodes) {
    // The insertion stays at the occurrence inside the loop body.
    EXPECT_EQ(r.graph.node(n).region, r.graph.root_region());
    bool reaches_header_only = true;
    (void)reaches_header_only;
  }
  LoopOracle loop3(3);
  CostResult orig = execution_time(g, loop3);
  LoopOracle loop3b(3);
  CostResult moved = execution_time(r.graph, loop3b);
  EXPECT_EQ(orig.computations, 3u);
  EXPECT_EQ(moved.computations, 3u);
}

TEST(BCM, RepeatedComputationInLoopCollapsesToFirstIteration) {
  // Two occurrences inside one body: the second is covered by the first.
  Graph g = lang::compile_or_throw(
      "while (*) { x := a + b; y := a + b; } z := 1;");
  MotionResult r = busy_code_motion(g);
  validate_or_throw(r.graph);
  LoopOracle loop4(4);
  CostResult orig = execution_time(g, loop4);
  LoopOracle loop4b(4);
  CostResult moved = execution_time(r.graph, loop4b);
  EXPECT_EQ(orig.computations, 8u);
  EXPECT_EQ(moved.computations, 4u);
}

TEST(BCM, MultipleTermsIndependent) {
  Graph g = lang::compile_or_throw(
      "x := a + b; y := c * d; z := a + b; w := c * d;");
  MotionResult r = busy_code_motion(g);
  validate_or_throw(r.graph);
  EXPECT_EQ(r.terms.size(), 2u);
  EXPECT_EQ(count_computations(r.graph), 2u);
}

TEST(BCM, TempNamesFreshAndStable) {
  Graph g = lang::compile_or_throw("h_a_add_b := 9; x := a + b; y := a + b;");
  MotionResult r = busy_code_motion(g);
  validate_or_throw(r.graph);
  ASSERT_EQ(r.terms.size(), 1u);
  // The natural name is taken by a program variable; a suffix is appended.
  EXPECT_EQ(r.graph.var_name(r.terms[0].temp), "h_a_add_b_1");
  auto verdict = check_sequential_consistency(g, r.graph);
  EXPECT_TRUE(verdict.sequentially_consistent);
}

TEST(BCM, ReportContainsTermAndCounts) {
  Graph g = lang::compile_or_throw("x := a + b; y := a + b;");
  MotionResult r = busy_code_motion(g);
  EXPECT_EQ(r.num_insertions(), 1u);
  EXPECT_EQ(r.num_replacements(), 2u);
}

}  // namespace
}  // namespace parcm
