// Property suite for the Parallel Bitvector Coincidence Theorem (Thm 2.4):
// on random parallel programs, the hierarchical PMFP solution with the
// *standard* synchronization equals the path-based PMOP solution computed
// by plain MFP over the explicit product program. The refined policies are
// deliberately stronger than PMOP (they under-approximate safety); the
// suite checks that direction too.
#include <gtest/gtest.h>

#include "analyses/downsafety.hpp"
#include "analyses/upsafety.hpp"
#include "dfa/packed.hpp"
#include "semantics/product.hpp"
#include "workload/randomprog.hpp"

namespace parcm {
namespace {

RandomProgramOptions small_options() {
  RandomProgramOptions opt;
  opt.target_stmts = 8;
  opt.max_par_depth = 2;
  opt.max_components = 3;
  opt.num_vars = 3;
  opt.while_permille = 40;  // keep products small
  return opt;
}

class Coincidence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Coincidence, StandardUpSafetyEqualsProductPmop) {
  Rng rng(GetParam());
  Graph g = random_program(rng, small_options());
  ProductProgram prod = build_product(g, 200000);
  if (!prod.exhausted) GTEST_SKIP() << "product too large";
  TermTable terms(g);
  LocalPredicates preds(g, terms);
  InterleavingInfo itlv(g);

  PackedProblem p = make_upsafety_problem(g, preds, SafetyVariant::kNaive);
  PackedResult pmfp = solve_packed(g, p);
  PmopResult pmop = solve_pmop_via_product(g, prod, p);
  for (NodeId n : g.all_nodes()) {
    EXPECT_EQ(pmfp.entry[n.index()], pmop.entry[n.index()])
        << "node " << n.value() << " seed " << GetParam();
  }
}

TEST_P(Coincidence, StandardDownSafetyEqualsProductPmop) {
  Rng rng(GetParam() + 1000);
  Graph g = random_program(rng, small_options());
  ProductProgram prod = build_product(g, 200000);
  if (!prod.exhausted) GTEST_SKIP() << "product too large";
  TermTable terms(g);
  LocalPredicates preds(g, terms);
  InterleavingInfo itlv(g);

  PackedProblem p = make_downsafety_problem(g, preds, SafetyVariant::kNaive);
  PackedResult pmfp = solve_packed(g, p);
  PmopResult pmop = solve_pmop_via_product(g, prod, p);
  for (NodeId n : g.all_nodes()) {
    EXPECT_EQ(pmfp.out[n.index()], pmop.out[n.index()])
        << "node " << n.value() << " seed " << GetParam();
  }
}

TEST_P(Coincidence, RefinedPoliciesUnderapproximatePmop) {
  Rng rng(GetParam() + 2000);
  Graph g = random_program(rng, small_options());
  ProductProgram prod = build_product(g, 200000);
  if (!prod.exhausted) GTEST_SKIP() << "product too large";
  TermTable terms(g);
  LocalPredicates preds(g, terms);
  InterleavingInfo itlv(g);

  // Up-safety: refined entry values imply PMOP availability.
  PackedProblem up_naive = make_upsafety_problem(g, preds,
                                                 SafetyVariant::kNaive);
  PackedResult refined = solve_packed(
      g, make_upsafety_problem(g, preds, SafetyVariant::kRefined));
  PmopResult pmop = solve_pmop_via_product(g, prod, up_naive);
  for (NodeId n : g.all_nodes()) {
    EXPECT_TRUE(refined.entry[n.index()].is_subset_of(pmop.entry[n.index()]))
        << "node " << n.value() << " seed " << GetParam();
  }
}

TEST_P(Coincidence, RefinedDownSafetyUnderapproximatesPmop) {
  Rng rng(GetParam() + 3000);
  RandomProgramOptions opt = small_options();
  opt.recursive_permille = 0;  // the recursive split intentionally deviates
  Graph g = random_program(rng, opt);
  ProductProgram prod = build_product(g, 200000);
  if (!prod.exhausted) GTEST_SKIP() << "product too large";
  TermTable terms(g);
  LocalPredicates preds(g, terms);
  InterleavingInfo itlv(g);

  PackedProblem down_naive = make_downsafety_problem(g, preds,
                                                     SafetyVariant::kNaive);
  PackedResult refined = solve_packed(
      g, make_downsafety_problem(g, preds, SafetyVariant::kRefined));
  PmopResult pmop = solve_pmop_via_product(g, prod, down_naive);
  for (NodeId n : g.all_nodes()) {
    EXPECT_TRUE(refined.out[n.index()].is_subset_of(pmop.out[n.index()]))
        << "node " << n.value() << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Coincidence,
                         ::testing::Range<std::uint64_t>(0, 40));

}  // namespace
}  // namespace parcm
