#include "analyses/downsafety.hpp"

#include <gtest/gtest.h>

#include "ir/transform_utils.hpp"
#include "lang/lower.hpp"

namespace parcm {
namespace {

struct Ctx {
  Graph g;
  TermTable terms;
  LocalPredicates preds;
  InterleavingInfo itlv;

  explicit Ctx(const char* src)
      : g(lang::compile_or_throw(src)), terms(g), preds(g, terms), itlv(g) {}

  // Down-safety *at* a node = out value of the backward analysis.
  bool dnsafe_at(SafetyVariant v, NodeId n, const std::string& term) {
    PackedResult r = compute_downsafety(g, preds, v);
    return r.out[n.index()].test(terms.find(g, term).index());
  }

  bool dnsafe_at(SafetyVariant v, const std::string& stmt,
                 const std::string& term) {
    return dnsafe_at(v, node_of_statement(g, stmt), term);
  }
};

TEST(DownSafety, ComputationIsDownSafeAtItself) {
  Ctx s("x := a + b;");
  EXPECT_TRUE(s.dnsafe_at(SafetyVariant::kRefined, "x := a + b", "a + b"));
}

TEST(DownSafety, HoldsUpstreamUntilOperandWrite) {
  Ctx s("a := 1; c := 2; x := a + b;");
  // At c := 2 the computation is still ahead on every path.
  EXPECT_TRUE(s.dnsafe_at(SafetyVariant::kRefined, "c := 2", "a + b"));
  // At a := 1 the assignment modifies an operand first -> not down-safe.
  EXPECT_FALSE(s.dnsafe_at(SafetyVariant::kRefined, "a := 1", "a + b"));
  EXPECT_FALSE(
      s.dnsafe_at(SafetyVariant::kRefined, s.g.start(), "a + b"));
}

TEST(DownSafety, BranchRequiresBothSides) {
  Ctx s("c := 0; if (*) { x := a + b; } else { skip; } y := c - 1;");
  EXPECT_FALSE(s.dnsafe_at(SafetyVariant::kRefined, "c := 0", "a + b"));
}

TEST(DownSafety, BranchWithBothSidesComputing) {
  Ctx s("c := 0; if (*) { x := a + b; } else { u := a + b; }");
  EXPECT_TRUE(s.dnsafe_at(SafetyVariant::kRefined, "c := 0", "a + b"));
}

TEST(DownSafety, LoopExitBlocksHeaderDownSafety) {
  // The loop may exit immediately; a + b is not computed on that path.
  Ctx s("c := 0; while (*) { x := a + b; } d := 1;");
  EXPECT_FALSE(s.dnsafe_at(SafetyVariant::kRefined, "c := 0", "a + b"));
}

TEST(DownSafety, RefinedEntryRequiresAllComponents) {
  // Fig. 9: all three components compute, nothing modifies -> entry of the
  // parallel statement is down-safe_par.
  Ctx all(R"(
    c := 0;
    par { x := a + b; } and { y := a + b; } and { z := a + b; }
  )");
  EXPECT_TRUE(all.dnsafe_at(SafetyVariant::kRefined, "c := 0", "a + b"));

  // One component does not compute -> refused (Fig. 9 negative), although
  // the naive/standard rule still claims down-safety.
  Ctx one(R"(
    c := 0;
    par { x := a + b; } and { u := 4; }
    w := a + b;
  )");
  EXPECT_FALSE(one.dnsafe_at(SafetyVariant::kRefined, "c := 0", "a + b"));
  EXPECT_TRUE(one.dnsafe_at(SafetyVariant::kNaive, "c := 0", "a + b"));
}

TEST(DownSafety, RefinedEntryRejectsAnyModifier) {
  Ctx s(R"(
    c := 0;
    par { x := a + b; } and { y := a + b; a := 2; }
    w := a + b;
  )");
  EXPECT_FALSE(s.dnsafe_at(SafetyVariant::kRefined, "c := 0", "a + b"));
}

TEST(DownSafety, TransparentStatementPassesThrough) {
  // No component touches e or f: the statement is transparent for e + f and
  // down-safety of the use behind it flows through (Fig. 10's e+f).
  Ctx s(R"(
    c := 0;
    par { x := a + b; } and { y := 2; }
    w := e + f;
  )");
  EXPECT_TRUE(s.dnsafe_at(SafetyVariant::kRefined, "c := 0", "e + f"));
  EXPECT_TRUE(s.dnsafe_at(SafetyVariant::kRefined,
                          s.g.par_stmt(ParStmtId(0)).begin, "e + f"));
}

TEST(DownSafety, RecursiveInParallelGeneratesNothingRefined) {
  // Under the implicit split, a recursive assignment inside a parallel
  // statement is a pure destroyer for its own term.
  Ctx s("c := 0; par { a := a + b; } and { u := 1; } ");
  NodeId rec = node_of_statement(s.g, "a := a + b");
  EXPECT_FALSE(s.dnsafe_at(SafetyVariant::kRefined, rec, "a + b"));
  EXPECT_TRUE(s.dnsafe_at(SafetyVariant::kNaive, rec, "a + b"));
  EXPECT_FALSE(s.dnsafe_at(SafetyVariant::kRefined, "c := 0", "a + b"));
}

TEST(DownSafety, RecursiveSequentialKeepsGenerating) {
  // Outside parallel statements the atomic treatment stays: a recursive
  // assignment is down-safe at itself.
  Ctx s("a := a + b;");
  EXPECT_TRUE(
      s.dnsafe_at(SafetyVariant::kRefined, "a := a + b", "a + b"));
}

TEST(DownSafety, InterferenceByRecursiveSiblingRefinedOnly) {
  // Fig. 3/4 mechanism: the recursive sibling destroys anticipability under
  // the split view; the naive atomic view treats it as a generator.
  Ctx s(R"(
    c := 2; b := 3;
    par { c := c + b; y := c + b; } and { c := c + b; z := c + b; }
  )");
  // At the ParBegin (the statement's entry; b := 3 itself modifies an
  // operand and is never down-safe).
  NodeId begin = s.g.par_stmt(ParStmtId(0)).begin;
  EXPECT_TRUE(s.dnsafe_at(SafetyVariant::kNaive, begin, "c + b"));
  EXPECT_FALSE(s.dnsafe_at(SafetyVariant::kRefined, begin, "c + b"));
}

TEST(DownSafety, NonDestDiagnosticExposed) {
  Ctx s("par { x := a + b; } and { a := 1; }");
  PackedResult r = compute_downsafety(s.g, s.preds,
                                      SafetyVariant::kRefined);
  NodeId x = node_of_statement(s.g, "x := a + b");
  TermId ab = s.terms.find(s.g, "a + b");
  EXPECT_FALSE(r.nondest[x.index()].test(ab.index()));
}

TEST(DownSafety, BoundaryAtEndIsFalse) {
  Ctx s("x := a + b;");
  PackedResult r = compute_downsafety(s.g, s.preds,
                                      SafetyVariant::kRefined);
  TermId ab = s.terms.find(s.g, "a + b");
  EXPECT_FALSE(r.out[s.g.end().index()].test(ab.index()));
}

}  // namespace
}  // namespace parcm
