// Fixpoint-engine suite (`ctest -L dfa`): the sparse-RPO worklist, the
// directed-view RPO/member indexing, the once-per-solve region metadata,
// sparse-vs-FIFO and packed-vs-scalar differentials on random programs, the
// relaxation-count regression the sparse seeding is expected to win, and
// the cross-pass analysis cache.
#include <gtest/gtest.h>

#include <algorithm>

#include "analyses/cache.hpp"
#include "analyses/downsafety.hpp"
#include "analyses/upsafety.hpp"
#include "dfa/direction.hpp"
#include "dfa/hier_solver.hpp"
#include "dfa/packed.hpp"
#include "dfa/region_meta.hpp"
#include "dfa/worklist.hpp"
#include "lang/lower.hpp"
#include "workload/families.hpp"
#include "workload/randomprog.hpp"

namespace parcm {
namespace {

// --- worklist ----------------------------------------------------------------

TEST(Worklist, SparsePopsInPositionOrderAndDedups) {
  Worklist wl;
  wl.reset(8, WorklistPolicy::kSparseRpo);
  EXPECT_TRUE(wl.empty());
  wl.push(5);
  wl.push(2);
  wl.push(5);  // duplicate
  wl.push(7);
  EXPECT_EQ(wl.size(), 3u);
  EXPECT_EQ(wl.pop(), 2u);
  EXPECT_EQ(wl.pop(), 5u);
  EXPECT_EQ(wl.pop(), 7u);
  EXPECT_TRUE(wl.empty());
}

TEST(Worklist, SparseCursorWrapsForBackEdges) {
  Worklist wl;
  wl.reset(8, WorklistPolicy::kSparseRpo);
  wl.push(5);
  EXPECT_EQ(wl.pop(), 5u);
  // A change at 5 pushed a forward successor (7) and a back-edge target (2):
  // forward progress first, then wrap around.
  wl.push(7);
  wl.push(2);
  EXPECT_EQ(wl.pop(), 7u);
  EXPECT_EQ(wl.pop(), 2u);
  EXPECT_TRUE(wl.empty());
}

TEST(Worklist, FifoPreservesInsertionOrder) {
  Worklist wl;
  wl.reset(8, WorklistPolicy::kDenseFifo);
  wl.push(5);
  wl.push(2);
  wl.push(5);  // duplicate
  wl.push(7);
  EXPECT_EQ(wl.pop(), 5u);
  wl.push(5);  // re-push after pop is allowed again
  EXPECT_EQ(wl.pop(), 2u);
  EXPECT_EQ(wl.pop(), 7u);
  EXPECT_EQ(wl.pop(), 5u);
  EXPECT_TRUE(wl.empty());
}

TEST(Worklist, ResetReusesBuffers) {
  Worklist wl;
  wl.reset(4, WorklistPolicy::kSparseRpo);
  wl.push(3);
  wl.reset(6, WorklistPolicy::kDenseFifo);
  EXPECT_TRUE(wl.empty());
  wl.push(5);
  EXPECT_EQ(wl.pop(), 5u);
}

// --- directed view: RPO and member indexing -----------------------------------

TEST(DirectedView, RpoIsAPermutationWithEntryFirst) {
  Rng rng(11);
  RandomProgramOptions opt;
  opt.target_stmts = 30;
  opt.max_par_depth = 2;
  opt.while_permille = 120;
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = random_program(rng, opt);
    for (Direction dir : {Direction::kForward, Direction::kBackward}) {
      DirectedView view(g, dir);
      EXPECT_EQ(view.num_nodes(), g.num_nodes());
      EXPECT_EQ(view.rpo_index(view.entry()), 0u);
      std::vector<char> seen(g.num_nodes(), 0);
      for (NodeId n : g.all_nodes()) {
        std::size_t pos = view.rpo_index(n);
        ASSERT_LT(pos, g.num_nodes());
        EXPECT_EQ(view.rpo_node(pos), n);
        EXPECT_FALSE(seen[pos]) << "duplicate rpo position";
        seen[pos] = 1;
      }
    }
  }
}

TEST(DirectedView, RpoIsTopologicalOnAcyclicGraphs) {
  Graph g = families::par_wide(4, 32);
  for (Direction dir : {Direction::kForward, Direction::kBackward}) {
    DirectedView view(g, dir);
    for (NodeId n : g.all_nodes()) {
      for (NodeId m : view.dir_succs(n)) {
        EXPECT_LT(view.rpo_index(n), view.rpo_index(m))
            << "edge against RPO in an acyclic graph";
      }
    }
  }
}

TEST(DirectedView, RegionMembersSortedByRpoWithDenseIndex) {
  Graph g = families::par_nested(3, 16);
  DirectedView view(g, Direction::kForward);
  for (std::size_t ri = 0; ri < g.num_regions(); ++ri) {
    RegionId r(static_cast<RegionId::underlying>(ri));
    std::span<const NodeId> members = view.region_members_rpo(r);
    EXPECT_EQ(members.size(), g.region(r).nodes.size());
    for (std::size_t i = 0; i < members.size(); ++i) {
      EXPECT_EQ(view.member_index(members[i]), i);
      if (i > 0) {
        EXPECT_LT(view.rpo_index(members[i - 1]), view.rpo_index(members[i]));
      }
    }
  }
}

TEST(DirectedView, AdjacencyMatchesGraph) {
  Rng rng(23);
  RandomProgramOptions opt;
  opt.max_par_depth = 2;
  Graph g = random_program(rng, opt);
  DirectedView fwd(g, Direction::kForward);
  for (NodeId n : g.all_nodes()) {
    avector<NodeId> want = g.succs(n);
    std::span<const NodeId> got = fwd.dir_succs(n);
    EXPECT_TRUE(std::is_permutation(got.begin(), got.end(), want.begin(),
                                    want.end()));
    want = g.preds(n);
    got = fwd.dir_preds(n);
    EXPECT_TRUE(std::is_permutation(got.begin(), got.end(), want.begin(),
                                    want.end()));
  }
}

// --- region metadata ----------------------------------------------------------

TEST(RegionMeta, DestroyMasksMatchRecursiveBruteForce) {
  Rng rng(31);
  RandomProgramOptions opt;
  opt.max_par_depth = 3;
  opt.target_stmts = 40;
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = random_program(rng, opt);
    TermTable terms(g);
    LocalPredicates preds(g, terms);
    PackedProblem p = make_upsafety_problem(g, preds, SafetyVariant::kRefined);
    std::vector<BitVector> masks =
        region_destroy_masks(g, p.destroy, p.num_terms);
    ASSERT_EQ(masks.size(), g.num_regions());
    for (std::size_t ri = 0; ri < g.num_regions(); ++ri) {
      RegionId r(static_cast<RegionId::underlying>(ri));
      BitVector want(p.num_terms);
      for (NodeId n : g.nodes_in_region_recursive(r)) {
        want |= p.destroy[n.index()];
      }
      EXPECT_EQ(masks[ri], want) << "region " << ri << " trial " << trial;
    }
  }
}

TEST(RegionMeta, NondestDropsExactlySiblingDestroys) {
  Rng rng(37);
  RandomProgramOptions opt;
  opt.max_par_depth = 3;
  opt.target_stmts = 40;
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = random_program(rng, opt);
    TermTable terms(g);
    LocalPredicates preds(g, terms);
    PackedProblem p = make_upsafety_problem(g, preds, SafetyVariant::kRefined);
    std::vector<BitVector> destroy =
        region_destroy_masks(g, p.destroy, p.num_terms);
    std::vector<BitVector> nondest =
        region_nondest_masks(g, destroy, p.num_terms);
    for (NodeId n : g.all_nodes()) {
      // Definition: drop every term destroyed in a sibling component of any
      // enclosing parallel statement.
      BitVector want(p.num_terms, true);
      for (const Graph::Enclosing& enc : g.enclosing_stmts(n)) {
        for (RegionId comp : g.par_stmt(enc.stmt).components) {
          if (comp != enc.component) want.and_not(destroy[comp.index()]);
        }
      }
      EXPECT_EQ(nondest[g.node(n).region.index()], want)
          << "node " << n.value() << " trial " << trial;
    }
  }
}

// --- differential: sparse vs FIFO, packed vs scalar ---------------------------

PackedProblem make_problem(const Graph& g, const LocalPredicates& preds,
                           bool forward) {
  return forward ? make_upsafety_problem(g, preds, SafetyVariant::kRefined)
                 : make_downsafety_problem(g, preds, SafetyVariant::kRefined);
}

TEST(FixpointDifferential, SparseAndFifoAreBitIdentical) {
  Rng rng(101);
  RandomProgramOptions opt;
  opt.target_stmts = 35;
  opt.max_par_depth = 2;
  opt.while_permille = 120;
  opt.barrier_permille = 80;
  for (int trial = 0; trial < 25; ++trial) {
    Graph g = random_program(rng, opt);
    TermTable terms(g);
    LocalPredicates preds(g, terms);
    if (terms.size() == 0) continue;
    for (bool forward : {true, false}) {
      PackedProblem p = make_problem(g, preds, forward);
      p.worklist = WorklistPolicy::kSparseRpo;
      PackedResult sparse = solve_packed(g, p);
      p.worklist = WorklistPolicy::kDenseFifo;
      PackedResult fifo = solve_packed(g, p);
      ASSERT_EQ(sparse.entry, fifo.entry) << "trial " << trial;
      ASSERT_EQ(sparse.out, fifo.out) << "trial " << trial;
      ASSERT_EQ(sparse.nondest, fifo.nondest) << "trial " << trial;
      ASSERT_EQ(sparse.stmt_summary, fifo.stmt_summary) << "trial " << trial;
    }
  }
}

TEST(FixpointDifferential, SparsePackedMatchesScalarSlices) {
  Rng rng(103);
  RandomProgramOptions opt;
  opt.target_stmts = 30;
  opt.max_par_depth = 2;
  opt.while_permille = 100;
  opt.barrier_permille = 60;
  for (int trial = 0; trial < 15; ++trial) {
    Graph g = random_program(rng, opt);
    TermTable terms(g);
    LocalPredicates preds(g, terms);
    if (terms.size() == 0) continue;
    for (bool forward : {true, false}) {
      PackedProblem p = make_problem(g, preds, forward);
      PackedResult packed = solve_packed(g, p);
      for (std::size_t t = 0; t < p.num_terms; ++t) {
        BitProblem bp = extract_term_problem(p, t);
        BitResult bit = solve_bit(g, bp);
        for (NodeId n : g.all_nodes()) {
          ASSERT_EQ(bit.entry[n.index()], packed.entry[n.index()].test(t))
              << "entry node " << n.value() << " term " << t << " trial "
              << trial;
          ASSERT_EQ(bit.out[n.index()], packed.out[n.index()].test(t))
              << "out node " << n.value() << " term " << t << " trial "
              << trial;
          ASSERT_EQ(bit.nondest[n.index()], packed.nondest[n.index()].test(t))
              << "nondest node " << n.value() << " term " << t << " trial "
              << trial;
        }
      }
    }
  }
}

// --- relaxation-count regression ----------------------------------------------

struct RelaxationPair {
  std::size_t sparse;
  std::size_t fifo;
};

RelaxationPair relaxations_both(const Graph& g) {
  TermTable terms(g);
  LocalPredicates preds(g, terms);
  PackedProblem p = make_upsafety_problem(g, preds, SafetyVariant::kRefined);
  p.worklist = WorklistPolicy::kSparseRpo;
  PackedResult sparse = solve_packed(g, p);
  p.worklist = WorklistPolicy::kDenseFifo;
  PackedResult fifo = solve_packed(g, p);
  EXPECT_EQ(sparse.entry, fifo.entry);
  EXPECT_EQ(sparse.out, fifo.out);
  return {sparse.relaxations, fifo.relaxations};
}

TEST(RelaxationRegression, ParWideSparseAtLeastHalvesFifo) {
  Graph g = families::par_wide(8, 128);
  RelaxationPair r = relaxations_both(g);
  EXPECT_GT(r.sparse, 0u);
  // FIFO seeds every node in both the summary and the value pass, so it is
  // lower-bounded by the node count; the sparse seeding must at least halve
  // it (in practice it does far better — only the boundary wave and the
  // initializer prefix relax).
  EXPECT_GE(r.fifo + 1, g.num_nodes());
  EXPECT_LE(r.sparse * 2, r.fifo);
  // Absolute guardrail so a future seeding bug cannot silently regress to
  // dense behaviour.
  EXPECT_LE(r.sparse, g.num_nodes());
}

TEST(RelaxationRegression, ParNestedSparseAtLeastHalvesFifo) {
  Graph g = families::par_nested(4, 32);
  RelaxationPair r = relaxations_both(g);
  EXPECT_GT(r.sparse, 0u);
  EXPECT_GE(r.fifo + 1, g.num_nodes());
  EXPECT_LE(r.sparse * 2, r.fifo);
  EXPECT_LE(r.sparse, g.num_nodes());
}

// --- graph version + analysis cache -------------------------------------------

TEST(GraphVersion, MutationsBumpAndCopiesInherit) {
  Graph g;
  std::uint64_t v0 = g.version();
  Graph copy = g;
  EXPECT_EQ(copy.version(), v0);
  g.intern_var("q");
  EXPECT_NE(g.version(), v0);
  EXPECT_EQ(copy.version(), v0);
  std::uint64_t v1 = g.version();
  NodeId n = g.new_node(NodeKind::kSkip, g.root_region());
  EXPECT_NE(g.version(), v1);
  std::uint64_t v2 = g.version();
  g.node(n).label = "l";  // non-const accessor counts as a mutation
  EXPECT_NE(g.version(), v2);
}

TEST(AnalysisCache, HitsOnUnmodifiedGraphAndIdenticalRebuild) {
  Graph g1 = lang::compile_or_throw("x := a + b; y := a + b;");
  AnalysisCache cache;
  auto b1 = cache.acquire(g1);
  ASSERT_EQ(b1->terms.size(), 1u);
  EXPECT_EQ(cache.acquire(g1).get(), b1.get());
  // A separately built but structurally identical graph has a different
  // version; the content hash still hits.
  Graph g2 = lang::compile_or_throw("x := a + b; y := a + b;");
  EXPECT_NE(g1.version(), g2.version());
  EXPECT_EQ(structural_hash(g1), structural_hash(g2));
  EXPECT_EQ(cache.acquire(g2).get(), b1.get());
}

TEST(AnalysisCache, MutationInvalidatesAndBundleOutlivesIt) {
  Graph g = lang::compile_or_throw("x := a + b; y := c + d;");
  AnalysisCache cache;
  auto before = cache.acquire(g);
  EXPECT_EQ(before->terms.size(), 2u);
  // Appending a node with a fresh term changes the structural hash.
  VarId e = g.intern_var("e");
  VarId f = g.intern_var("f");
  VarId z = g.intern_var("z");
  g.new_assign(g.root_region(), z,
               Rhs(Term{BinOp::kAdd, Operand::var(e), Operand::var(f)}));
  EXPECT_NE(structural_hash(g), 0u);
  auto after = cache.acquire(g);
  EXPECT_NE(after.get(), before.get());
  EXPECT_EQ(after->terms.size(), 3u);
  // The old shared_ptr stays valid for passes still holding it.
  EXPECT_EQ(before->terms.size(), 2u);
}

TEST(AnalysisCache, InterleavingKeyedByIdentityAndVersion) {
  Graph g = families::par_wide(2, 4);
  AnalysisCache cache;
  auto i1 = cache.interleaving(g);
  EXPECT_EQ(cache.interleaving(g).get(), i1.get());
  g.intern_var("fresh");
  auto i2 = cache.interleaving(g);
  EXPECT_NE(i2.get(), i1.get());
  // A structurally identical copy at a different address must not reuse the
  // pointer-keyed slot.
  Graph copy = families::par_wide(2, 4);
  EXPECT_NE(cache.interleaving(copy).get(), i2.get());
}

TEST(AnalysisCache, ClearDropsSlots) {
  Graph g = lang::compile_or_throw("x := a + b;");
  AnalysisCache cache;
  auto b1 = cache.acquire(g);
  cache.clear();
  // Same version, but the slot is gone: a fresh bundle is built.
  EXPECT_NE(cache.acquire(g).get(), b1.get());
}

}  // namespace
}  // namespace parcm
