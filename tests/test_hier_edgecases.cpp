// Edge cases of the hierarchical solvers: deep nesting, multi-exit
// components, parallel statements inside loops, summary inspection, and
// boundary behaviour.
#include <gtest/gtest.h>

#include "analyses/downsafety.hpp"
#include "analyses/upsafety.hpp"
#include "dfa/hier_solver.hpp"
#include "dfa/packed.hpp"
#include "ir/transform_utils.hpp"
#include "lang/lower.hpp"
#include "semantics/product.hpp"

namespace parcm {
namespace {

struct Ctx {
  Graph g;
  TermTable terms;
  LocalPredicates preds;
  InterleavingInfo itlv;

  explicit Ctx(const char* src)
      : g(lang::compile_or_throw(src)), terms(g), preds(g, terms), itlv(g) {}
};

TEST(HierEdge, TripleNestingSummaries) {
  Ctx s(R"(
    par {
      par {
        par { x := a + b; } and { c := 1; }
      } and {
        d := 2;
      }
    } and {
      e := 3;
    }
    w := a + b;
  )");
  TermId ab = s.terms.find(s.g, "a + b");
  PackedResult up = compute_upsafety(s.g, s.preds,
                                     SafetyVariant::kRefined);
  // Innermost to outermost, every summary is Const_tt: each level has an
  // establishing component with clean siblings.
  ASSERT_EQ(s.g.num_par_stmts(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(up.stmt_summary[i].at(ab.index()), BVFun::kConstTT) << i;
  }
  NodeId w = node_of_statement(s.g, "w := a + b");
  EXPECT_TRUE(up.entry[w.index()].test(ab.index()));
}

TEST(HierEdge, MultiExitComponentSummaryMeets) {
  // The component has two exits: one establishes a+b, one does not — the
  // end effect is the meet (Id on the empty branch), so the summary cannot
  // be Const_tt.
  Ctx s(R"(
    par {
      if (*) { x := a + b; } else { skip; }
    } and {
      c := 1;
    }
    w := a + b;
  )");
  TermId ab = s.terms.find(s.g, "a + b");
  PackedResult up = compute_upsafety(s.g, s.preds,
                                     SafetyVariant::kRefined);
  EXPECT_NE(up.stmt_summary[0].at(ab.index()), BVFun::kConstTT);
  NodeId w = node_of_statement(s.g, "w := a + b");
  EXPECT_FALSE(up.entry[w.index()].test(ab.index()));
}

TEST(HierEdge, ParInsideLoopReanalyzedConsistently) {
  Ctx s(R"(
    while (*) {
      par { x := a + b; } and { y := a + b; }
      a := a - 1;
    }
    w := a + b;
  )");
  TermId ab = s.terms.find(s.g, "a + b");
  PackedResult down = compute_downsafety(s.g, s.preds,
                                         SafetyVariant::kRefined);
  // Around the loop, a := a - 1 kills anticipability before re-entry; the
  // statement's entry is down-safe_par per iteration (both components
  // compute, none modifies).
  const ParStmt& stmt = s.g.par_stmt(ParStmtId(0));
  EXPECT_TRUE(down.out[stmt.begin.index()].test(ab.index()));
  NodeId kill = node_of_statement(s.g, "a := a - 1");
  EXPECT_FALSE(down.out[kill.index()].test(ab.index()));
}

TEST(HierEdge, SummariesPerDirectionDiffer) {
  // Forward (availability) vs backward (anticipability) summaries of the
  // same statement: comp1 computes late, comp2 kills late.
  Ctx s(R"(
    x := a + b;
    par { y := a + b; } and { a := 1; }
    w := a + b;
  )");
  TermId ab = s.terms.find(s.g, "a + b");
  PackedResult up = compute_upsafety(s.g, s.preds,
                                     SafetyVariant::kNaive);
  PackedResult down = compute_downsafety(s.g, s.preds,
                                         SafetyVariant::kNaive);
  // Forward: the killing component forces Const_ff.
  EXPECT_EQ(up.stmt_summary[0].at(ab.index()), BVFun::kConstFF);
  // Backward: one component computes (Const_tt end), the killer is
  // Const_ff: standard rule -> Const_ff as well, but for different reasons;
  // check entry values instead: w is not anticipated... w computes itself.
  EXPECT_EQ(down.stmt_summary[0].at(ab.index()), BVFun::kConstFF);
}

TEST(HierEdge, TransparentStatementIdSummary) {
  Ctx s(R"(
    x := a + b;
    par { c := 1; } and { d := 2; }
    w := a + b;
  )");
  TermId ab = s.terms.find(s.g, "a + b");
  for (SafetyVariant v : {SafetyVariant::kNaive, SafetyVariant::kRefined}) {
    PackedResult up = compute_upsafety(s.g, s.preds, v);
    EXPECT_EQ(up.stmt_summary[0].at(ab.index()), BVFun::kId);
    PackedResult down = compute_downsafety(s.g, s.preds, v);
    EXPECT_EQ(down.stmt_summary[0].at(ab.index()), BVFun::kId);
  }
}

TEST(HierEdge, NonDestCoversAllEnclosingLevels) {
  Ctx s(R"(
    par {
      par { x := a + b; y := a + b; } and { c := 1; }
    } and {
      b := 9;
    }
  )");
  TermId ab = s.terms.find(s.g, "a + b");
  PackedResult up = compute_upsafety(s.g, s.preds,
                                     SafetyVariant::kRefined);
  NodeId y = node_of_statement(s.g, "y := a + b");
  // The destroyer sits two levels up (outer sibling), yet NonDest(y) fails.
  EXPECT_FALSE(up.nondest[y.index()].test(ab.index()));
  EXPECT_FALSE(up.entry[y.index()].test(ab.index()));
}

TEST(HierEdge, LoopingComponent) {
  Ctx s(R"(
    par {
      x := a + b;
      while (*) { d := d + 1; }
      y := a + b;
    } and {
      c := 1;
    }
  )");
  TermId ab = s.terms.find(s.g, "a + b");
  PackedResult up = compute_upsafety(s.g, s.preds,
                                     SafetyVariant::kRefined);
  NodeId y = node_of_statement(s.g, "y := a + b");
  EXPECT_TRUE(up.entry[y.index()].test(ab.index()));
  EXPECT_EQ(up.stmt_summary[0].at(ab.index()), BVFun::kConstTT);
}

TEST(HierEdge, ScalarSolverRelaxationsBounded) {
  // The scalar solver must converge in a small number of relaxations per
  // node (finite chain height).
  Ctx s(R"(
    while (*) { par { x := a + b; } and { while (*) { c := c + 1; } } }
  )");
  PackedProblem pp =
      make_upsafety_problem(s.g, s.preds, SafetyVariant::kRefined);
  BitProblem bp = extract_term_problem(pp, 0);
  BitResult r = solve_bit(s.g, bp);
  EXPECT_LT(r.relaxations, s.g.num_nodes() * 10);
}

TEST(HierEdge, CoincidenceWithNestedStatements) {
  Ctx s(R"(
    a := 1; b := 2;
    par {
      par { x := a + b; } and { y := a + b; }
      z := a + b;
    } and {
      b := 3;
    }
    w := a + b;
  )");
  ProductProgram prod = build_product(s.g);
  ASSERT_TRUE(prod.exhausted);
  PackedProblem up = make_upsafety_problem(s.g, s.preds, SafetyVariant::kNaive);
  PackedResult pmfp = solve_packed(s.g, up);
  PmopResult pmop = solve_pmop_via_product(s.g, prod, up);
  for (NodeId n : s.g.all_nodes()) {
    EXPECT_EQ(pmfp.entry[n.index()], pmop.entry[n.index()])
        << "node " << n.value();
  }
}

TEST(HierEdge, BoundaryValueRespected) {
  // A boundary of all-true would make everything available at s*; the
  // analyses must start from ff.
  Ctx s("x := a + b;");
  PackedResult up = compute_upsafety(s.g, s.preds,
                                     SafetyVariant::kRefined);
  TermId ab = s.terms.find(s.g, "a + b");
  NodeId x = node_of_statement(s.g, "x := a + b");
  EXPECT_FALSE(up.entry[x.index()].test(ab.index()));
}

}  // namespace
}  // namespace parcm
