#include <gtest/gtest.h>

#include "ir/printer.hpp"
#include "ir/validate.hpp"
#include "support/diagnostics.hpp"
#include "lang/lexer.hpp"
#include "lang/lower.hpp"
#include "lang/parser.hpp"

namespace parcm {
namespace {

using lang::lex;
using lang::parse;
using lang::TokKind;

TEST(Lexer, BasicTokens) {
  DiagnosticSink sink;
  auto toks = lex("x := a + b;", sink);
  ASSERT_TRUE(sink.ok());
  ASSERT_EQ(toks.size(), 7u);  // x := a + b ; EOF
  EXPECT_EQ(toks[0].kind, TokKind::kIdent);
  EXPECT_EQ(toks[0].text, "x");
  EXPECT_EQ(toks[1].kind, TokKind::kAssignOp);
  EXPECT_EQ(toks[3].kind, TokKind::kPlus);
  EXPECT_EQ(toks[5].kind, TokKind::kSemi);
  EXPECT_EQ(toks[6].kind, TokKind::kEof);
}

TEST(Lexer, KeywordsVsIdents) {
  DiagnosticSink sink;
  auto toks = lex("par and skip if else while choose or pars", sink);
  ASSERT_TRUE(sink.ok());
  EXPECT_EQ(toks[0].kind, TokKind::kKwPar);
  EXPECT_EQ(toks[1].kind, TokKind::kKwAnd);
  EXPECT_EQ(toks[2].kind, TokKind::kKwSkip);
  EXPECT_EQ(toks[3].kind, TokKind::kKwIf);
  EXPECT_EQ(toks[4].kind, TokKind::kKwElse);
  EXPECT_EQ(toks[5].kind, TokKind::kKwWhile);
  EXPECT_EQ(toks[6].kind, TokKind::kKwChoose);
  EXPECT_EQ(toks[7].kind, TokKind::kKwOr);
  EXPECT_EQ(toks[8].kind, TokKind::kIdent);  // "pars" is not a keyword
}

TEST(Lexer, NumbersAndComparisons) {
  DiagnosticSink sink;
  auto toks = lex("123 <= >= == != < >", sink);
  ASSERT_TRUE(sink.ok());
  EXPECT_EQ(toks[0].kind, TokKind::kNumber);
  EXPECT_EQ(toks[0].number, 123);
  EXPECT_EQ(toks[1].kind, TokKind::kLe);
  EXPECT_EQ(toks[2].kind, TokKind::kGe);
  EXPECT_EQ(toks[3].kind, TokKind::kEqEq);
  EXPECT_EQ(toks[4].kind, TokKind::kNe);
  EXPECT_EQ(toks[5].kind, TokKind::kLt);
  EXPECT_EQ(toks[6].kind, TokKind::kGt);
}

TEST(Lexer, CommentsAndLocations) {
  DiagnosticSink sink;
  auto toks = lex("// comment\nx := 1;", sink);
  ASSERT_TRUE(sink.ok());
  EXPECT_EQ(toks[0].kind, TokKind::kIdent);
  EXPECT_EQ(toks[0].loc.line, 2);
  EXPECT_EQ(toks[0].loc.column, 1);
}

TEST(Lexer, BadCharacterReported) {
  DiagnosticSink sink;
  lex("x $ y", sink);
  EXPECT_FALSE(sink.ok());
}

TEST(Lexer, SingleEqualsReported) {
  DiagnosticSink sink;
  lex("x = 1;", sink);
  EXPECT_FALSE(sink.ok());
}

TEST(Parser, SimpleProgram) {
  DiagnosticSink sink;
  auto p = parse("x := a + b; skip;", sink);
  ASSERT_TRUE(p.has_value()) << sink.to_string();
  ASSERT_EQ(p->body.size(), 2u);
  EXPECT_EQ(p->body[0].kind, lang::StmtKind::kAssign);
  EXPECT_EQ(p->body[0].lhs, "x");
  ASSERT_TRUE(p->body[0].rhs.is_binary());
  EXPECT_EQ(*p->body[0].rhs.op, BinOp::kAdd);
  EXPECT_EQ(p->body[1].kind, lang::StmtKind::kSkip);
}

TEST(Parser, Labels) {
  DiagnosticSink sink;
  auto p = parse("x := 1 @n3; skip @n4;", sink);
  ASSERT_TRUE(p.has_value()) << sink.to_string();
  EXPECT_EQ(p->body[0].label, "n3");
  EXPECT_EQ(p->body[1].label, "n4");
}

TEST(Parser, NegativeConstants) {
  DiagnosticSink sink;
  auto p = parse("x := -5;", sink);
  ASSERT_TRUE(p.has_value()) << sink.to_string();
  EXPECT_EQ(p->body[0].rhs.a.value, -5);
}

TEST(Parser, IfElseAndNondet) {
  DiagnosticSink sink;
  auto p = parse("if (*) { x := 1; } else { y := 2; } if (a < b) { skip; }",
                 sink);
  ASSERT_TRUE(p.has_value()) << sink.to_string();
  ASSERT_EQ(p->body.size(), 2u);
  EXPECT_TRUE(p->body[0].cond.nondet);
  ASSERT_EQ(p->body[0].blocks.size(), 2u);
  EXPECT_FALSE(p->body[1].cond.nondet);
  EXPECT_EQ(*p->body[1].cond.expr.op, BinOp::kLt);
  EXPECT_TRUE(p->body[1].blocks[1].empty());  // implicit empty else
}

TEST(Parser, ParAndChoose) {
  DiagnosticSink sink;
  auto p = parse("par { x := 1; } and { y := 2; } and { z := 3; }"
                 "choose { a := 1; } or { b := 2; }",
                 sink);
  ASSERT_TRUE(p.has_value()) << sink.to_string();
  EXPECT_EQ(p->body[0].kind, lang::StmtKind::kPar);
  EXPECT_EQ(p->body[0].blocks.size(), 3u);
  EXPECT_EQ(p->body[1].kind, lang::StmtKind::kChoose);
  EXPECT_EQ(p->body[1].blocks.size(), 2u);
}

TEST(Parser, StarIsMulInExpressions) {
  DiagnosticSink sink;
  auto p = parse("x := a * b; while (*) { skip; }", sink);
  ASSERT_TRUE(p.has_value()) << sink.to_string();
  EXPECT_EQ(*p->body[0].rhs.op, BinOp::kMul);
  EXPECT_TRUE(p->body[1].cond.nondet);
}

TEST(Parser, ErrorsReported) {
  for (const char* bad : {
           "x := ;",                 // missing operand
           "par { x := 1; }",        // single component
           "if (*) x := 1;",         // missing block
           "x := a + b + c;",        // not 3-address
           "while { skip; }",        // missing condition
           "choose { skip; }",       // single alternative
       }) {
    DiagnosticSink sink;
    auto p = parse(bad, sink);
    EXPECT_FALSE(p.has_value() && sink.ok()) << "accepted: " << bad;
  }
}

TEST(Lower, SimpleProgramShape) {
  Graph g = lang::compile_or_throw("x := a + b; y := x;");
  validate_or_throw(g);
  NodeId first = g.succs(g.start())[0];
  EXPECT_EQ(statement_to_string(g, first), "x := a + b");
}

TEST(Lower, FigStyleParallelProgram) {
  Graph g = lang::compile_or_throw(R"(
    b := 1; c := 2;
    par { x := c + b; } and { u := e + f; }
    d := c + b;
  )");
  validate_or_throw(g);
  EXPECT_EQ(g.num_par_stmts(), 1u);
}

TEST(Lower, WhileCondLowersToTest) {
  Graph g = lang::compile_or_throw("while (i < 3) { i := i + 1; }");
  validate_or_throw(g);
  bool found_test = false;
  for (NodeId n : g.all_nodes()) {
    if (g.node(n).kind == NodeKind::kTest) found_test = true;
  }
  EXPECT_TRUE(found_test);
}

TEST(Lower, LabelsSurviveLowering) {
  Graph g = lang::compile_or_throw("x := a + b @n3;");
  bool found = false;
  for (NodeId n : g.all_nodes()) found = found || g.node(n).label == "n3";
  EXPECT_TRUE(found);
}

TEST(Lower, CompileReportsErrorsWithoutThrow) {
  DiagnosticSink sink;
  lang::compile("x := ;", sink);
  EXPECT_FALSE(sink.ok());
}

TEST(Lower, CompileOrThrowThrowsOnError) {
  EXPECT_THROW(lang::compile_or_throw("x := ;"), InternalError);
}

TEST(Lower, NestedEverything) {
  Graph g = lang::compile_or_throw(R"(
    i := 0;
    while (*) {
      par {
        if (*) { x := a + b; } else { x := a - b; }
      } and {
        choose { y := 1; } or { y := 2; }
      }
    }
  )");
  validate_or_throw(g);
  EXPECT_EQ(g.num_par_stmts(), 1u);
  EXPECT_EQ(g.num_regions(), 3u);
}


TEST(Parser, BarrierStatement) {
  DiagnosticSink sink;
  auto p = parse("par { barrier @b; } and { barrier; }", sink);
  ASSERT_TRUE(p.has_value()) << sink.to_string();
  ASSERT_EQ(p->body[0].blocks.size(), 2u);
  EXPECT_EQ(p->body[0].blocks[0][0].kind, lang::StmtKind::kBarrier);
  EXPECT_EQ(p->body[0].blocks[0][0].label, "b");
}

TEST(Lower, BarrierOutsideComponentRejected) {
  EXPECT_THROW(lang::compile_or_throw("barrier;"), InternalError);
  // Inside an if inside a component is fine (same region).
  Graph g = lang::compile_or_throw(
      "par { if (*) { barrier; } else { barrier; } } and { skip; }");
  validate_or_throw(g);
}

}  // namespace
}  // namespace parcm
