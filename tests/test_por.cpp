// Partial-order reduction: the reduced exploration must produce exactly the
// same observable final-state sets as full interleaving enumeration, while
// visiting (weakly) fewer states.
#include <gtest/gtest.h>

#include "figures/figures.hpp"
#include "lang/lower.hpp"
#include "semantics/enumerator.hpp"
#include "semantics/equivalence.hpp"
#include "workload/randomprog.hpp"

namespace parcm {
namespace {

void expect_same_finals(const Graph& g, bool atomic, const char* what) {
  std::vector<std::string> observed = all_var_names(g);
  EnumerationOptions full;
  full.atomic_assignments = atomic;
  EnumerationOptions reduced = full;
  reduced.partial_order_reduction = true;

  auto a = enumerate_executions(g, observed, full);
  auto b = enumerate_executions(g, observed, reduced);
  ASSERT_TRUE(a.exhausted && b.exhausted) << what;
  EXPECT_EQ(a.finals, b.finals) << what << " atomic=" << atomic;
  EXPECT_LE(b.states_explored, a.states_explored) << what;
}

TEST(Por, MatchesFullExplorationOnFigures) {
  for (const char* id : {"2", "3a", "3c", "4", "6", "8", "9", "10"}) {
    Graph g = lang::compile_or_throw(figures::figure_source(id));
    expect_same_finals(g, true, id);
    expect_same_finals(g, false, id);
  }
}

TEST(Por, ReducesStateCountOnSkipHeavyPrograms) {
  Graph g = lang::compile_or_throw(R"(
    par { skip; skip; skip; x := 1; }
    and { skip; skip; skip; y := 2; }
    and { skip; skip; skip; z := 3; }
  )");
  EnumerationOptions full;
  EnumerationOptions reduced;
  reduced.partial_order_reduction = true;
  auto a = enumerate_executions(g, {"x", "y", "z"}, full);
  auto b = enumerate_executions(g, {"x", "y", "z"}, reduced);
  ASSERT_TRUE(a.exhausted && b.exhausted);
  EXPECT_EQ(a.finals, b.finals);
  EXPECT_LT(b.states_explored * 2, a.states_explored);
}

TEST(Por, UncontestedAssignmentsCommute) {
  // Each component works on private variables; only the merge reads them.
  Graph g = lang::compile_or_throw(R"(
    par { a := 1; a := a + 1; } and { b := 2; b := b + 2; }
    c := a + b;
  )");
  expect_same_finals(g, true, "private-vars");
  EnumerationOptions reduced;
  reduced.partial_order_reduction = true;
  auto r = enumerate_executions(g, {"c"}, reduced);
  EXPECT_EQ(r.finals,
            (std::set<std::vector<std::int64_t>>{{6}}));
}

TEST(Por, ContestedAssignmentsStillBranch) {
  Graph g = lang::compile_or_throw("par { x := 1; } and { x := 2; }");
  EnumerationOptions reduced;
  reduced.partial_order_reduction = true;
  auto r = enumerate_executions(g, {"x"}, reduced);
  EXPECT_EQ(r.finals,
            (std::set<std::vector<std::int64_t>>{{1}, {2}}));
}

class PorProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PorProperty, AgreesWithFullEnumerationOnRandomPrograms) {
  Rng rng(GetParam());
  RandomProgramOptions opt;
  opt.target_stmts = 10;
  opt.max_par_depth = 2;
  opt.num_vars = 3;
  opt.while_permille = 40;
  Graph g = random_program(rng, opt);
  std::vector<std::string> observed = all_var_names(g);

  EnumerationOptions full;
  full.max_states = 1u << 19;
  EnumerationOptions reduced = full;
  reduced.partial_order_reduction = true;
  auto a = enumerate_executions(g, observed, full);
  auto b = enumerate_executions(g, observed, reduced);
  if (!a.exhausted || !b.exhausted) GTEST_SKIP();
  EXPECT_EQ(a.finals, b.finals) << "seed " << GetParam();
  EXPECT_LE(b.states_explored, a.states_explored);
}

TEST_P(PorProperty, AgreesUnderSplitSemantics) {
  Rng rng(GetParam() + 900);
  RandomProgramOptions opt;
  opt.target_stmts = 8;
  opt.max_par_depth = 1;
  opt.num_vars = 3;
  opt.while_permille = 30;
  Graph g = random_program(rng, opt);
  std::vector<std::string> observed = all_var_names(g);

  EnumerationOptions full;
  full.atomic_assignments = false;
  full.max_states = 1u << 19;
  EnumerationOptions reduced = full;
  reduced.partial_order_reduction = true;
  auto a = enumerate_executions(g, observed, full);
  auto b = enumerate_executions(g, observed, reduced);
  if (!a.exhausted || !b.exhausted) GTEST_SKIP();
  EXPECT_EQ(a.finals, b.finals) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, PorProperty,
                         ::testing::Range<std::uint64_t>(0, 30));

}  // namespace
}  // namespace parcm
