#include "ir/builder.hpp"

#include <gtest/gtest.h>

#include "ir/validate.hpp"

namespace parcm {
namespace {

TEST(Builder, EmptyProgram) {
  GraphBuilder b;
  Graph g = b.finish();
  validate_or_throw(g);
  EXPECT_EQ(g.succs(g.start()), avector<NodeId>{g.end()});
}

TEST(Builder, StraightLine) {
  GraphBuilder b;
  b.assign("x", b.v("a"), BinOp::kAdd, b.v("b"));
  b.assign("y", b.v("x"));
  Graph g = b.finish();
  validate_or_throw(g);
  EXPECT_EQ(g.num_nodes(), 4u);
  NodeId x = g.succs(g.start())[0];
  EXPECT_EQ(g.node(x).kind, NodeKind::kAssign);
  NodeId y = g.succs(x)[0];
  EXPECT_TRUE(g.node(y).rhs.is_trivial());
  EXPECT_EQ(g.succs(y)[0], g.end());
}

TEST(Builder, IfNondetJoins) {
  GraphBuilder b;
  b.if_nondet([&] { b.skip(); }, [&] { b.skip(); });
  b.skip();
  Graph g = b.finish();
  validate_or_throw(g);
  // start -> branch -> {skip, skip} -> join skip -> end
  NodeId branch = g.succs(g.start())[0];
  EXPECT_EQ(g.out_degree(branch), 2u);
  NodeId join = g.succs(g.succs(branch)[0])[0];
  EXPECT_EQ(g.in_degree(join), 2u);
}

TEST(Builder, IfNondetEmptyElse) {
  GraphBuilder b;
  b.if_nondet([&] { b.skip(); }, nullptr);
  b.skip();
  Graph g = b.finish();
  validate_or_throw(g);
  NodeId branch = g.succs(g.start())[0];
  EXPECT_EQ(g.out_degree(branch), 2u);
}

TEST(Builder, IfCondBranchOrder) {
  GraphBuilder b;
  VarId x = b.var("x");
  b.if_cond(Rhs(Operand::var(x)), [&] { b.assign("t", b.c(1)); },
            [&] { b.assign("e", b.c(2)); });
  Graph g = b.finish();
  validate_or_throw(g);
  NodeId test = g.succs(g.start())[0];
  ASSERT_EQ(g.node(test).kind, NodeKind::kTest);
  ASSERT_EQ(g.out_degree(test), 2u);
  // out_edges[0] = true branch; its entry skip leads to `t := 1`.
  NodeId then_entry = g.edge(g.node(test).out_edges[0]).to;
  NodeId then_stmt = g.succs(then_entry)[0];
  EXPECT_EQ(g.var_name(g.node(then_stmt).lhs), "t");
  NodeId else_entry = g.edge(g.node(test).out_edges[1]).to;
  NodeId else_stmt = g.succs(else_entry)[0];
  EXPECT_EQ(g.var_name(g.node(else_stmt).lhs), "e");
}

TEST(Builder, IfCondEmptyBlocksStillWellFormed) {
  GraphBuilder b;
  VarId x = b.var("x");
  b.if_cond(Rhs(Operand::var(x)), nullptr, nullptr);
  b.skip();
  Graph g = b.finish();
  validate_or_throw(g);
}

TEST(Builder, WhileNondetLoop) {
  GraphBuilder b;
  b.while_nondet([&] { b.assign("x", b.v("x"), BinOp::kAdd, b.c(1)); });
  Graph g = b.finish();
  validate_or_throw(g);
  NodeId header = g.succs(g.start())[0];
  EXPECT_EQ(g.out_degree(header), 2u);
  // Body edge first, exit edge second (LoopOracle contract).
  NodeId body = g.edge(g.node(header).out_edges[0]).to;
  EXPECT_EQ(g.node(body).kind, NodeKind::kAssign);
  EXPECT_EQ(g.succs(body)[0], header);
  EXPECT_EQ(g.edge(g.node(header).out_edges[1]).to, g.end());
}

TEST(Builder, WhileCondLoop) {
  GraphBuilder b;
  VarId i = b.var("i");
  b.while_cond(Rhs(Term{BinOp::kLt, Operand::var(i), Operand::constant(3)}),
               [&] { b.assign(i, Rhs(Term{BinOp::kAdd, Operand::var(i),
                                          Operand::constant(1)})); });
  Graph g = b.finish();
  validate_or_throw(g);
  NodeId header = g.succs(g.start())[0];
  EXPECT_EQ(g.node(header).kind, NodeKind::kTest);
}

TEST(Builder, Choose3Way) {
  GraphBuilder b;
  b.choose({[&] { b.skip(); }, [&] { b.skip(); }, [&] { b.skip(); }});
  Graph g = b.finish();
  validate_or_throw(g);
  NodeId branch = g.succs(g.start())[0];
  EXPECT_EQ(g.out_degree(branch), 3u);
}

TEST(Builder, ParTwoComponents) {
  GraphBuilder b;
  b.par({[&] { b.assign("x", b.c(1)); }, [&] { b.assign("y", b.c(2)); }});
  Graph g = b.finish();
  validate_or_throw(g);
  ASSERT_EQ(g.num_par_stmts(), 1u);
  const ParStmt& s = g.par_stmt(ParStmtId(0));
  EXPECT_EQ(s.components.size(), 2u);
  EXPECT_EQ(g.out_degree(s.begin), 2u);
  for (RegionId comp : s.components) {
    NodeId entry = g.component_entry(comp);
    EXPECT_EQ(g.node(entry).kind, NodeKind::kSkip);
    EXPECT_FALSE(g.component_exits(comp).empty());
  }
}

TEST(Builder, ParEmptyComponentGetsSkip) {
  GraphBuilder b;
  b.par({nullptr, nullptr});
  Graph g = b.finish();
  validate_or_throw(g);
}

TEST(Builder, NestedPar) {
  GraphBuilder b;
  b.par({[&] {
           b.par({[&] { b.assign("x", b.c(1)); },
                  [&] { b.assign("y", b.c(2)); }});
         },
         [&] { b.assign("z", b.c(3)); }});
  Graph g = b.finish();
  validate_or_throw(g);
  EXPECT_EQ(g.num_par_stmts(), 2u);
  EXPECT_EQ(g.num_regions(), 5u);
  // The inner statement's parent region is a component of the outer one.
  const ParStmt& inner = g.par_stmt(ParStmtId(1));
  EXPECT_TRUE(g.region(inner.parent_region).owner.valid());
}

TEST(Builder, ParInsideLoop) {
  GraphBuilder b;
  b.while_nondet([&] {
    b.par({[&] { b.assign("x", b.c(1)); }, [&] { b.assign("y", b.c(2)); }});
  });
  Graph g = b.finish();
  validate_or_throw(g);
  EXPECT_EQ(g.num_par_stmts(), 1u);
}

TEST(Builder, LabeledNodes) {
  GraphBuilder b;
  b.assign("x", b.c(1));
  b.labeled("n7");
  Graph g = b.finish();
  NodeId n = g.succs(g.start())[0];
  EXPECT_EQ(g.node(n).label, "n7");
}

}  // namespace
}  // namespace parcm
