#include "motion/dce.hpp"

#include <gtest/gtest.h>

#include "ir/printer.hpp"
#include "ir/transform_utils.hpp"
#include "ir/validate.hpp"
#include "lang/lower.hpp"
#include "semantics/equivalence.hpp"
#include "workload/randomprog.hpp"

namespace parcm {
namespace {

std::size_t assigns(const Graph& g) {
  std::size_t n = 0;
  for (NodeId id : g.all_nodes()) n += g.node(id).kind == NodeKind::kAssign;
  return n;
}

TEST(Dce, OverwrittenAssignmentDies) {
  Graph g = lang::compile_or_throw("x := 1; x := 2; y := x;");
  DceResult r = eliminate_dead_assignments(g);
  validate_or_throw(r.graph);
  ASSERT_EQ(r.eliminated.size(), 1u);
  EXPECT_EQ(assigns(r.graph), 2u);
}

TEST(Dce, ObservableAtEndSurvives) {
  Graph g = lang::compile_or_throw("x := 1;");
  DceResult r = eliminate_dead_assignments(g);
  EXPECT_TRUE(r.eliminated.empty());
}

TEST(Dce, UnobservedVariableDies) {
  Graph g = lang::compile_or_throw("x := 1; y := 2;");
  DceOptions opts;
  opts.observed = {"y"};
  DceResult r = eliminate_dead_assignments(g, opts);
  EXPECT_EQ(r.eliminated.size(), 1u);
  EXPECT_EQ(assigns(r.graph), 1u);
}

TEST(Dce, CascadeEliminatesFaintChains) {
  // y feeds only x, x feeds nothing observed: both die, over two rounds.
  Graph g = lang::compile_or_throw("y := 5; x := y + 1; z := 3;");
  DceOptions opts;
  opts.observed = {"z"};
  DceResult r = eliminate_dead_assignments(g, opts);
  EXPECT_EQ(r.eliminated.size(), 2u);
  EXPECT_GE(r.rounds, 2u);
  EXPECT_EQ(assigns(r.graph), 1u);
}

TEST(Dce, BranchUseKeepsAssignmentAlive) {
  Graph g = lang::compile_or_throw(
      "x := 1; if (x < 2) { y := 1; } else { y := 2; }");
  DceOptions opts;
  opts.observed = {"y"};
  DceResult r = eliminate_dead_assignments(g, opts);
  // x is read by the test condition.
  for (NodeId n : r.eliminated) {
    EXPECT_NE(statement_to_string(g, n), "x := 1");
  }
}

TEST(Dce, SiblingReadKeepsAssignmentAlive) {
  // Sequentially x := 1 is overwritten before the (post-join) read, but the
  // sibling may read x between the two writes.
  Graph g = lang::compile_or_throw(R"(
    par { x := 1; x := 2; } and { y := x; }
  )");
  DceResult r = eliminate_dead_assignments(g);
  EXPECT_TRUE(r.eliminated.empty());
}

TEST(Dce, NoSiblingReadAllowsElimination) {
  Graph g = lang::compile_or_throw(R"(
    par { x := 1; x := 2; } and { y := 3; }
  )");
  DceResult r = eliminate_dead_assignments(g);
  ASSERT_EQ(r.eliminated.size(), 1u);
  // The first write is the dead one.
  auto finals_orig = enumerate_executions(g, {"x", "y"});
  auto finals_dce = enumerate_executions(r.graph, {"x", "y"});
  EXPECT_EQ(finals_orig.finals, finals_dce.finals);
}

TEST(Dce, NestedSiblingReadCounts) {
  Graph g = lang::compile_or_throw(R"(
    par {
      par { x := 1; x := 2; } and { u := x; }
    } and {
      v := 3;
    }
  )");
  DceResult r = eliminate_dead_assignments(g);
  EXPECT_TRUE(r.eliminated.empty());
}

TEST(Dce, LoopCarriedUseSurvives) {
  Graph g = lang::compile_or_throw(
      "s := 0; i := 0; while (i < 3) { s := s + i; i := i + 1; }");
  DceOptions opts;
  opts.observed = {"s"};
  DceResult r = eliminate_dead_assignments(g, opts);
  // i feeds the condition and itself; s is observed: nothing dies.
  EXPECT_TRUE(r.eliminated.empty());
}

TEST(Dce, LivenessExposed) {
  Graph g = lang::compile_or_throw("x := 1; y := x; x := 2;");
  BitVector observed(g.num_vars(), true);
  ParallelLiveness live = compute_parallel_liveness(g, observed);
  VarId x = *g.find_var("x");
  NodeId first = find_nodes(g, [](const Graph& gr, NodeId n) {
                   return gr.node(n).kind == NodeKind::kAssign;
                 })[0];
  EXPECT_TRUE(live.live_out[first.index()].test(x.index()));
}

class DceProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DceProperty, PreservesObservableBehaviour) {
  Rng rng(GetParam());
  RandomProgramOptions opt;
  opt.target_stmts = 10;
  opt.max_par_depth = 2;
  opt.num_vars = 3;
  opt.while_permille = 30;
  Graph g = random_program(rng, opt);
  // Observe a subset so real eliminations happen.
  DceOptions opts;
  opts.observed = {"v0"};
  DceResult r = eliminate_dead_assignments(g, opts);
  validate_or_throw(r.graph);

  EnumerationOptions eo;
  eo.max_states = 1u << 19;
  auto a = enumerate_executions(g, {"v0"}, eo);
  auto b = enumerate_executions(r.graph, {"v0"}, eo);
  if (!a.exhausted || !b.exhausted) GTEST_SKIP();
  EXPECT_EQ(a.finals, b.finals) << "seed " << GetParam();
}

TEST_P(DceProperty, FullObservationStillSound) {
  Rng rng(GetParam() + 777);
  RandomProgramOptions opt;
  opt.target_stmts = 10;
  opt.max_par_depth = 2;
  opt.num_vars = 3;
  opt.while_permille = 30;
  Graph g = random_program(rng, opt);
  DceResult r = eliminate_dead_assignments(g);
  validate_or_throw(r.graph);
  auto v = check_sequential_consistency(g, r.graph);
  if (!v.exhausted) GTEST_SKIP();
  EXPECT_TRUE(v.sequentially_consistent) << GetParam();
  EXPECT_TRUE(v.behaviours_preserved) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, DceProperty,
                         ::testing::Range<std::uint64_t>(0, 30));

}  // namespace
}  // namespace parcm
