// Property suite for the safety predicates themselves (the Fig. 5 facts
// and their parallel refinements):
//  - up-safety at n implies every *executed path* reaching n computed the
//    term after the last operand modification (checked by brute-force path
//    enumeration on the product program);
//  - down-safety at n implies every continuation computes the term before
//    modifying an operand;
//  - refined safety is a subset of naive safety (monotonicity of the
//    strengthened synchronization).
#include <gtest/gtest.h>

#include "analyses/earliest.hpp"
#include "ir/transform_utils.hpp"
#include "semantics/product.hpp"
#include "workload/randomprog.hpp"

namespace parcm {
namespace {

RandomProgramOptions options() {
  RandomProgramOptions opt;
  opt.target_stmts = 8;
  opt.max_par_depth = 1;
  opt.num_vars = 3;
  opt.while_permille = 40;
  return opt;
}

// Brute force on the product program: availability per product node.
std::vector<BitVector> brute_force_avail(const ProductProgram& prod,
                                         const LocalPredicates& preds,
                                         std::size_t k) {
  const Graph& pg = prod.graph;
  // Forward must-dataflow with explicit iteration (simple and independent
  // of the library's solvers).
  std::vector<BitVector> in(pg.num_nodes(), BitVector(k, true));
  in[pg.start().index()] = BitVector(k);
  bool changed = true;
  while (changed) {
    changed = false;
    for (NodeId q : pg.all_nodes()) {
      if (q == pg.start()) continue;
      BitVector pre(k, true);
      for (NodeId m : pg.preds(q)) {
        NodeId orig = prod.origin[m.index()];
        BitVector out = in[m.index()];
        out.and_not(preds.mod(orig));
        out |= preds.comp(orig) & preds.transp(orig);
        pre &= out;
      }
      if (pre != in[q.index()]) {
        in[q.index()] = std::move(pre);
        changed = true;
      }
    }
  }
  return in;
}

class SafetyProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SafetyProperty, NaiveUpSafetyMatchesBruteForceOnProduct) {
  Rng rng(GetParam());
  Graph g = random_program(rng, options());
  ProductProgram prod = build_product(g, 100000);
  if (!prod.exhausted) GTEST_SKIP();
  TermTable terms(g);
  LocalPredicates preds(g, terms);
  InterleavingInfo itlv(g);

  PackedResult pmfp =
      compute_upsafety(g, preds, SafetyVariant::kNaive);
  std::vector<BitVector> brute = brute_force_avail(prod, preds, terms.size());

  // Project: PMOP entry of original node = meet over product occurrences.
  std::vector<BitVector> projected(g.num_nodes(),
                                   BitVector(terms.size(), true));
  for (NodeId q : prod.graph.all_nodes()) {
    projected[prod.origin[q.index()].index()] &= brute[q.index()];
  }
  for (NodeId n : g.all_nodes()) {
    EXPECT_EQ(pmfp.entry[n.index()], projected[n.index()])
        << "node " << n.value() << " seed " << GetParam();
  }
}

TEST_P(SafetyProperty, RefinedSubsetOfNaive) {
  Rng rng(GetParam() + 111);
  RandomProgramOptions opt = options();
  opt.max_par_depth = 2;
  opt.target_stmts = 14;
  Graph g = random_program(rng, opt);
  TermTable terms(g);
  LocalPredicates preds(g, terms);
  InterleavingInfo itlv(g);

  SafetyInfo naive = compute_safety(g, preds, SafetyVariant::kNaive);
  SafetyInfo refined =
      compute_safety(g, preds, SafetyVariant::kRefined);
  for (NodeId n : g.all_nodes()) {
    EXPECT_TRUE(
        refined.upsafe[n.index()].is_subset_of(naive.upsafe[n.index()]))
        << "up-safety node " << n.value();
    EXPECT_TRUE(
        refined.dnsafe[n.index()].is_subset_of(naive.dnsafe[n.index()]))
        << "down-safety node " << n.value();
  }
}

TEST_P(SafetyProperty, SequentialProgramsIdenticalAcrossVariants) {
  Rng rng(GetParam() + 222);
  RandomProgramOptions opt = options();
  opt.max_par_depth = 0;
  Graph g = random_program(rng, opt);
  TermTable terms(g);
  LocalPredicates preds(g, terms);
  InterleavingInfo itlv(g);
  SafetyInfo naive = compute_safety(g, preds, SafetyVariant::kNaive);
  SafetyInfo refined =
      compute_safety(g, preds, SafetyVariant::kRefined);
  for (NodeId n : g.all_nodes()) {
    EXPECT_EQ(naive.upsafe[n.index()], refined.upsafe[n.index()]);
    EXPECT_EQ(naive.dnsafe[n.index()], refined.dnsafe[n.index()]);
  }
}

TEST_P(SafetyProperty, CompImpliesDownSafeOutsideParallel) {
  Rng rng(GetParam() + 333);
  RandomProgramOptions opt = options();
  opt.max_par_depth = 0;
  Graph g = random_program(rng, opt);
  TermTable terms(g);
  LocalPredicates preds(g, terms);
  InterleavingInfo itlv(g);
  SafetyInfo refined =
      compute_safety(g, preds, SafetyVariant::kRefined);
  for (NodeId n : g.all_nodes()) {
    EXPECT_TRUE(preds.comp(n).is_subset_of(refined.dnsafe[n.index()]))
        << "node " << n.value();
  }
}

TEST_P(SafetyProperty, EarliestImpliesDownSafe) {
  Rng rng(GetParam() + 444);
  RandomProgramOptions opt = options();
  opt.max_par_depth = 2;
  Graph g = random_program(rng, opt);
  split_join_edges(g);
  TermTable terms(g);
  LocalPredicates preds(g, terms);
  InterleavingInfo itlv(g);
  SafetyInfo refined =
      compute_safety(g, preds, SafetyVariant::kRefined);
  MotionPredicates mp = compute_motion_predicates(g, preds, refined);
  for (NodeId n : g.all_nodes()) {
    EXPECT_TRUE(mp.earliest[n.index()].is_subset_of(refined.dnsafe[n.index()]))
        << "node " << n.value();
    EXPECT_TRUE(mp.replace[n.index()].is_subset_of(preds.comp(n)))
        << "node " << n.value();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SafetyProperty,
                         ::testing::Range<std::uint64_t>(0, 30));

}  // namespace
}  // namespace parcm
