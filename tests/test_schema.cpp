// Schema sanity for the machine-readable artifacts: the parcm-remarks-v1
// stream and the parcm-bench-v1 file produced by the benchmark harness must
// be structurally valid JSON with their version tag, so downstream tooling
// can dispatch on "schema" without guessing.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include <map>
#include <thread>
#include <vector>

#include "bench_support.hpp"
#include "driver/forensic.hpp"
#include "driver/profile.hpp"
#include "figures/figures.hpp"
#include "lang/lower.hpp"
#include "motion/pcm.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/remarks.hpp"
#include "obs/trace.hpp"
#include "vm/harness.hpp"

namespace parcm {
namespace {

TEST(JsonValid, AcceptsAndRejects) {
  EXPECT_TRUE(obs::json_valid("{}"));
  EXPECT_TRUE(obs::json_valid("[1, 2.5, -3e2, \"x\\n\", true, null]"));
  EXPECT_TRUE(obs::json_valid("{\"a\": {\"b\": []}}"));
  EXPECT_FALSE(obs::json_valid(""));
  EXPECT_FALSE(obs::json_valid("{"));
  EXPECT_FALSE(obs::json_valid("{\"a\":}"));
  EXPECT_FALSE(obs::json_valid("[1,]"));
  EXPECT_FALSE(obs::json_valid("{} trailing"));
  EXPECT_FALSE(obs::json_valid("'single'"));
}

TEST(SchemaRemarks, EndToEndStreamIsValid) {
#if !PARCM_OBS_ENABLED
  GTEST_SKIP() << "library built with PARCM_OBS=OFF: no remark stream";
#else
  Graph g = lang::compile_or_throw(figures::figure_source("10"));
  obs::RemarkSink sink;
  sink.set_enabled(true);
  obs::RemarkSink* prev = obs::set_remark_sink(&sink);
  parallel_code_motion(g);
  obs::set_remark_sink(prev);
  ASSERT_FALSE(sink.empty());
  for (bool pretty : {false, true}) {
    std::string json = sink.to_json(pretty);
    EXPECT_TRUE(obs::json_valid(json));
    EXPECT_NE(json.find("parcm-remarks-v1"), std::string::npos);
  }
#endif
}

TEST(SchemaMetrics, RegistryJsonIsValidAndTagged) {
  obs::Registry r;
  r.add_counter("c", 2);
  r.set_gauge("g", 0.25);
  r.add_timer_ns("t", 1'500'000);
  r.record_hist("h \"quoted\"", 12);
  for (bool pretty : {false, true}) {
    std::string json = r.to_json(pretty);
    EXPECT_TRUE(obs::json_valid(json)) << json;
    EXPECT_NE(json.find("parcm-metrics-v1"), std::string::npos);
  }
  std::string json = r.to_json(false);
  EXPECT_NE(json.find("\"h \\\"quoted\\\"\""), std::string::npos);
  for (const char* key : {"\"count\"", "\"p50\"", "\"p90\"", "\"p99\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

TEST(SchemaTrace, MultiTrackChromeJsonIsValid) {
#if !PARCM_OBS_ENABLED
  GTEST_SKIP() << "library built with PARCM_OBS=OFF: no spans";
#else
  obs::TraceSink& sink = obs::trace();
  sink.clear();
  sink.set_enabled(true);
  // Owner span whose name needs every escape class.
  int s = sink.begin("quote \" backslash \\ newline \n end");
  sink.end(s);
  // A second track so the export is genuinely multi-track.
  std::thread worker([&sink] {
    obs::TraceThreadScope scope("worker-0");
    for (int i = 0; i < 3; ++i) {
      int w = sink.begin("job");
      sink.end(w);
    }
  });
  worker.join();

  for (bool pretty : {false, true}) {
    std::string json = sink.chrome_json(pretty);
    EXPECT_TRUE(obs::json_valid(json)) << json;
    EXPECT_NE(json.find("parcm-trace-v1"), std::string::npos);
  }

  std::string json = sink.chrome_json(/*pretty=*/false);
  // Span names are escaped, not emitted raw.
  EXPECT_NE(json.find("quote \\\" backslash \\\\ newline \\n end"),
            std::string::npos);
  // Metadata rows name the process and both tracks.
  EXPECT_NE(json.find("\"name\":\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"main\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"worker-0\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);

  // Every duration event carries ph/ts/dur/pid/tid; timestamps are
  // non-decreasing within each track (tid), so Perfetto never reorders.
  std::size_t events = 0;
  std::map<int, double> last_ts;
  for (std::size_t pos = json.find("\"ph\":\"X\""); pos != std::string::npos;
       pos = json.find("\"ph\":\"X\"", pos + 1)) {
    ++events;
    std::size_t ts_pos = json.find("\"ts\":", pos);
    std::size_t dur_pos = json.find("\"dur\":", pos);
    std::size_t pid_pos = json.find("\"pid\":", pos);
    std::size_t tid_pos = json.find("\"tid\":", pos);
    std::size_t close = json.find('}', pos);
    ASSERT_NE(ts_pos, std::string::npos);
    ASSERT_LT(ts_pos, close);
    ASSERT_LT(dur_pos, close);
    ASSERT_LT(pid_pos, close);
    ASSERT_LT(tid_pos, close);
    double ts = std::stod(json.substr(ts_pos + 5));
    int tid = std::stoi(json.substr(tid_pos + 6));
    auto it = last_ts.find(tid);
    if (it != last_ts.end()) {
      EXPECT_LE(it->second, ts) << "tid " << tid;
    }
    last_ts[tid] = ts;
  }
  EXPECT_EQ(events, sink.spans().size());
  EXPECT_EQ(events, 4u);  // 1 owner span + 3 worker spans
  EXPECT_EQ(last_ts.size(), 2u);  // exactly two tracks carried events

  sink.clear();
  sink.set_enabled(false);
#endif
}

TEST(SchemaForensic, BundleJsonIsValidAndTagged) {
  driver::ForensicBundle bundle;
  bundle.reason = "oracle-divergence";
  bundle.id = "needs \"escaping\"";
  bundle.index = 3;
  bundle.source = "v0 := 1;\n";
  bundle.note = "diverged (exact)";
  bundle.config.pipeline = "full";
  bundle.config.validate = true;
  bundle.config.inject_mode = "naive";
  bundle.outcome.id = bundle.id;
  bundle.outcome.status = driver::JobStatus::kDone;
  bundle.outcome.validation_ok = false;
  bundle.outcome.validation = "diverged";
  bundle.outcome.shape_hash = 0xdeadbeef;
  obs::FlightEvent ev;
  ev.kind = obs::FlightKind::kOracleVerdict;
  ev.track = "worker-0";
  ev.label = "diverged";
  bundle.flight.push_back(ev);
  bundle.remark_tail.push_back("remark line");
  for (bool pretty : {false, true}) {
    std::string json = driver::bundle_to_json(bundle, pretty);
    EXPECT_TRUE(obs::json_valid(json)) << json;
    EXPECT_NE(json.find("parcm-forensic-v1"), std::string::npos);
    EXPECT_NE(json.find("oracle-divergence"), std::string::npos);
  }
  // The canonical outcome block replay compares is itself valid JSON.
  std::string outcome = driver::outcome_json(bundle.outcome);
  EXPECT_TRUE(obs::json_valid(outcome)) << outcome;
  EXPECT_NE(outcome.find("\"0x00000000deadbeef\""), std::string::npos);
}

TEST(SchemaProfile, AggregateAndDiffJsonAreValidAndTagged) {
  driver::Profile p;
  obs::Registry r;
  r.record_hist("pipeline.pass_wall_ns.pcm \"quoted\"", 1500);
  r.record_hist("pipeline.pass_wall_ns.pcm \"quoted\"", 9000);
  std::optional<obs::JsonValue> doc = obs::json_parse(r.to_json(false));
  ASSERT_TRUE(doc.has_value());
  std::string error;
  ASSERT_TRUE(p.ingest_json(*doc, "metrics", &error)) << error;
  for (bool pretty : {false, true}) {
    std::string json = p.to_json(pretty);
    EXPECT_TRUE(obs::json_valid(json)) << json;
    EXPECT_NE(json.find("parcm-profile-v1"), std::string::npos);
  }
  driver::Profile::Diff d = driver::Profile::diff(p, p);
  for (bool pretty : {false, true}) {
    std::string json = d.to_json(pretty);
    EXPECT_TRUE(obs::json_valid(json)) << json;
    EXPECT_NE(json.find("parcm-profile-v1"), std::string::npos);
  }
}

TEST(SchemaBench, HarnessJsonIsValid) {
  // Synthetic rows through the real serializer the bench binaries use.
  std::vector<benchsupport::ResultRow> rows(2);
  rows[0].name = "BM_pipeline/fig10";
  rows[0].iterations = 100;
  rows[0].real_ns_per_iter = 1234.5;
  rows[0].cpu_ns_per_iter = 1200.0;
  rows[0].counters["nodes"] = 42.0;
  rows[1].name = "BM_pipeline/\"quoted\"";
  rows[1].iterations = 1;
  std::string json = benchsupport::bench_json("bench_schema_test", rows);
  EXPECT_TRUE(obs::json_valid(json)) << json;
  EXPECT_NE(json.find("\"schema\": \"parcm-bench-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"bench\": \"bench_schema_test\""), std::string::npos);
  EXPECT_NE(json.find("\"results\""), std::string::npos);
  EXPECT_NE(json.find("\"obs\""), std::string::npos);
}

TEST(SchemaVmCorpus, ReportJsonIsValidAndTagged) {
  // The BENCH_exec data source: vm::run_exec_corpus's payload must parse,
  // carry its version tag, and expose the gate-facing tallies.
  vm::CorpusOptions opt;
  opt.seed = 3;
  opt.programs = 4;
  opt.shapes = 2;
  opt.schedules = 2;
  vm::CorpusReport report = vm::run_exec_corpus(opt);
  for (bool pretty : {false, true}) {
    std::string json = report.to_json(pretty);
    EXPECT_TRUE(obs::json_valid(json)) << json;
    EXPECT_NE(json.find("parcm-vm-corpus-v1"), std::string::npos);
    for (const char* key :
         {"\"programs\"", "\"pairs\"", "\"time_original\"",
          "\"time_optimized\"", "\"improved\"", "\"regressed\"",
          "\"cost_mismatches\"", "\"ok\""}) {
      EXPECT_NE(json.find(key), std::string::npos) << key;
    }
  }
}

#ifdef PARCM_REPO_ROOT
TEST(SchemaBench, CommittedArtifactsAreValid) {
  // scripts/run_bench.sh drops BENCH_*.json at the repo root; whichever are
  // present must parse and carry the schema tag, so a stale or hand-edited
  // artifact cannot slip through review.
  namespace fs = std::filesystem;
  fs::path root(PARCM_REPO_ROOT);
  std::size_t checked = 0;
  for (const fs::directory_entry& entry : fs::directory_iterator(root)) {
    fs::path p = entry.path();
    std::string name = p.filename().string();
    if (name.rfind("BENCH_", 0) != 0 || p.extension() != ".json") continue;
    std::ifstream in(p);
    ASSERT_TRUE(in.good()) << p;
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string json = buf.str();
    EXPECT_TRUE(obs::json_valid(json)) << p;
    EXPECT_NE(json.find("\"schema\": \"parcm-bench-v1\""), std::string::npos)
        << p;
    EXPECT_NE(json.find("\"results\""), std::string::npos) << p;
    ++checked;
  }
  // Zero artifacts is fine (fresh clone before any bench run); the test
  // only guards the ones that exist.
  SUCCEED() << checked << " artifacts checked";
}
#endif

}  // namespace
}  // namespace parcm
