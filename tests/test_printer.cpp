#include "ir/printer.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "lang/lower.hpp"

namespace parcm {
namespace {

TEST(Printer, StatementStrings) {
  Graph g = lang::compile_or_throw(R"(
    x := a + b;
    y := 5;
    z := x;
    if (x < 3) { skip; }
    while (*) { skip; }
    par { skip; } and { skip; }
  )");
  std::vector<std::string> stmts;
  for (NodeId n : g.all_nodes()) stmts.push_back(statement_to_string(g, n));
  auto has = [&](const std::string& s) {
    return std::find(stmts.begin(), stmts.end(), s) != stmts.end();
  };
  EXPECT_TRUE(has("start"));
  EXPECT_TRUE(has("end"));
  EXPECT_TRUE(has("x := a + b"));
  EXPECT_TRUE(has("y := 5"));
  EXPECT_TRUE(has("z := x"));
  EXPECT_TRUE(has("if (x < 3)"));
  EXPECT_TRUE(has("parbegin"));
  EXPECT_TRUE(has("parend"));
  EXPECT_TRUE(has("skip"));
}

TEST(Printer, OperandAndTermStrings) {
  Graph g;
  VarId a = g.intern_var("a");
  EXPECT_EQ(operand_to_string(g, Operand::var(a)), "a");
  EXPECT_EQ(operand_to_string(g, Operand::constant(-3)), "-3");
  EXPECT_EQ(term_to_string(
                g, Term{BinOp::kMul, Operand::var(a), Operand::constant(2)}),
            "a * 2");
  EXPECT_EQ(rhs_to_string(g, Rhs(Operand::var(a))), "a");
}

TEST(Printer, ToTextListsAllNodesWithSuccessors) {
  Graph g = lang::compile_or_throw("x := 1; y := 2;");
  std::string text = to_text(g);
  EXPECT_NE(text.find("x := 1"), std::string::npos);
  EXPECT_NE(text.find("y := 2"), std::string::npos);
  EXPECT_NE(text.find("->"), std::string::npos);
  // One line per node.
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(text.begin(), text.end(), '\n')),
            g.num_nodes());
}

TEST(Printer, ToTextIndentsParallelNesting) {
  Graph g = lang::compile_or_throw("par { x := 1; } and { y := 2; }");
  std::string text = to_text(g);
  EXPECT_NE(text.find("\n  "), std::string::npos);  // indented component
}

TEST(Printer, DotOutputWellFormed) {
  Graph g = lang::compile_or_throw(R"(
    if (a < 1) { x := 1; } else { y := 2; }
    par { u := 3; } and { v := 4; }
  )");
  std::string dot = to_dot(g, "test");
  EXPECT_EQ(dot.find("digraph \"test\" {"), 0u);
  EXPECT_EQ(dot.back(), '\n');
  EXPECT_NE(dot.find("subgraph cluster_r"), std::string::npos);
  EXPECT_NE(dot.find("[label=\"T\"]"), std::string::npos);
  EXPECT_NE(dot.find("[label=\"F\"]"), std::string::npos);
  // Balanced braces.
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'),
            std::count(dot.begin(), dot.end(), '}'));
}

TEST(Printer, LabelsShownInText) {
  Graph g = lang::compile_or_throw("x := 1 @here;");
  EXPECT_NE(to_text(g).find("[here]"), std::string::npos);
}

}  // namespace
}  // namespace parcm
