#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "ir/terms.hpp"
#include "ir/validate.hpp"
#include "lang/lower.hpp"
#include "lang/unparse.hpp"
#include "verify/fuzz.hpp"
#include "workload/families.hpp"
#include "workload/randomprog.hpp"

namespace parcm {
namespace {

TEST(RandomProgram, AlwaysWellFormed) {
  RandomProgramOptions opt;
  opt.max_par_depth = 2;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    Rng rng(seed);
    Graph g = random_program(rng, opt);
    DiagnosticSink sink;
    EXPECT_TRUE(validate(g, sink)) << "seed " << seed << "\n"
                                   << sink.to_string();
  }
}

TEST(RandomProgram, DeterministicPerSeed) {
  RandomProgramOptions opt;
  Rng r1(42), r2(42);
  Graph a = random_program(r1, opt);
  Graph b = random_program(r2, opt);
  EXPECT_EQ(a.num_nodes(), b.num_nodes());
  EXPECT_EQ(a.num_par_stmts(), b.num_par_stmts());
  for (NodeId n : a.all_nodes()) {
    EXPECT_EQ(a.node(n).kind, b.node(n).kind);
  }
}

TEST(RandomProgram, SequentialModeHasNoParStmts) {
  RandomProgramOptions opt;
  opt.max_par_depth = 0;
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    Rng rng(seed);
    EXPECT_EQ(random_program(rng, opt).num_par_stmts(), 0u);
  }
}

TEST(RandomProgram, ParallelStatementsAppear) {
  RandomProgramOptions opt;
  opt.max_par_depth = 2;
  opt.par_permille = 400;
  std::size_t with_par = 0;
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    Rng rng(seed);
    with_par += random_program(rng, opt).num_par_stmts() > 0;
  }
  EXPECT_GT(with_par, 25u);
}

TEST(RandomProgram, BudgetBoundsSize) {
  RandomProgramOptions opt;
  opt.target_stmts = 6;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    Graph g = random_program(rng, opt);
    // Structural overhead (entries, joins, par begin/end) is bounded by a
    // small multiple of the statement budget.
    EXPECT_LT(g.num_nodes(), 6u * 8u);
  }
}

TEST(RandomProgram, AlwaysHasAtLeastOneTerm) {
  RandomProgramOptions opt;
  opt.trivial_permille = 1000;  // all assignments trivial...
  Rng rng(5);
  Graph g = random_program(rng, opt);
  TermTable terms(g);
  EXPECT_GE(terms.size(), 1u);  // ...except the guaranteed final term
}

TEST(RandomProgramAst, AlwaysLowerableAndWellFormed) {
  RandomProgramOptions opt = verify::default_fuzz_gen();
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    Rng rng(seed);
    lang::Program p = random_program_ast(rng, opt);
    Graph g = lang::lower(p);
    DiagnosticSink sink;
    EXPECT_TRUE(validate(g, sink)) << "seed " << seed << "\n"
                                   << sink.to_string();
  }
}

TEST(RandomProgramAst, SameSeedIsByteIdentical) {
  // The reproducer contract at the source level: two independent generator
  // runs from the same seed render to the same bytes.
  RandomProgramOptions opt = verify::default_fuzz_gen();
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    Rng r1(seed), r2(seed);
    std::string a = lang::to_source(random_program_ast(r1, opt));
    std::string b = lang::to_source(random_program_ast(r2, opt));
    EXPECT_EQ(a, b) << "seed " << seed;
  }
}

TEST(RandomProgramAst, PitfallShapesAppearWhenEnabled) {
  RandomProgramOptions opt = verify::default_fuzz_gen();
  opt.p2_shape_permille = 400;
  opt.p3_shape_permille = 400;
  std::size_t with_par = 0;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    Rng rng(seed);
    lang::Program p = random_program_ast(rng, opt);
    with_par += lang::lower(p).num_par_stmts() > 0;
  }
  EXPECT_GT(with_par, 20u);
}

// Cross-process byte-identity: run the built parcm_fuzz binary twice with
// the same seed and compare the dumped program bytes. This is the strong
// form of the determinism contract — no shared in-process state can help.
TEST(RandomProgramAst, SameSeedIsByteIdenticalAcrossProcesses) {
#ifndef PARCM_FUZZ_BIN
  GTEST_SKIP() << "parcm_fuzz binary path not configured";
#else
  auto run = [](const std::string& cmd) {
    std::string out;
    FILE* pipe = popen(cmd.c_str(), "r");
    if (pipe == nullptr) return out;
    char buf[4096];
    std::size_t n;
    while ((n = fread(buf, 1, sizeof buf, pipe)) > 0) out.append(buf, n);
    pclose(pipe);
    return out;
  };
  const std::string base = std::string(PARCM_FUZZ_BIN);
  for (const char* args : {" --seed 42 --dump-program --index 0",
                           " --seed 42 --dump-program --index 9",
                           " --seed 1234 --dump-program --index 3"}) {
    std::string a = run(base + args);
    std::string b = run(base + args);
    ASSERT_FALSE(a.empty()) << args;
    EXPECT_EQ(a, b) << args;
  }
#endif
}

TEST(Families, Fig2FamilyShape) {
  Graph g = families::fig2_family(4);
  validate_or_throw(g);
  EXPECT_EQ(g.num_par_stmts(), 1u);
}

TEST(Families, Fig10FamilyShape) {
  Graph g = families::fig10_family(2);
  validate_or_throw(g);
  EXPECT_EQ(g.num_par_stmts(), 1u);
}

TEST(Families, SeqChainSize) {
  Graph g = families::seq_chain(50, 4);
  validate_or_throw(g);
  EXPECT_EQ(g.num_par_stmts(), 0u);
  EXPECT_GT(g.num_nodes(), 50u);
}

TEST(Families, ParWideComponents) {
  Graph g = families::par_wide(4, 5);
  validate_or_throw(g);
  EXPECT_EQ(g.par_stmt(ParStmtId(0)).components.size(), 4u);
}

TEST(Families, ParNestedDepth) {
  Graph g = families::par_nested(3, 2);
  validate_or_throw(g);
  EXPECT_EQ(g.num_par_stmts(), 3u);
}

}  // namespace
}  // namespace parcm
