// Multi-threaded observability (ctest -L batch): per-worker span buffers,
// histogram aggregation across worker registries, and the trace lifecycle
// contract. Compiled in the default PARCM_OBS=ON configuration; everything
// here exercises the paths the batch driver uses when --trace-json and the
// metrics registry are live at --jobs N.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "driver/driver.hpp"
#include "driver/manifest.hpp"
#include "lang/unparse.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "verify/fuzz.hpp"

#if !PARCM_OBS_ENABLED
#error "test_obs_mt requires the PARCM_OBS=ON configuration"
#endif

namespace parcm {
namespace {

driver::Manifest corpus(std::size_t n) {
  RandomProgramOptions gen = verify::default_fuzz_gen();
  return driver::Manifest::lazy(n, "mt", [gen](std::size_t i) {
    return lang::to_source(verify::fuzz_program(2026, i, gen));
  });
}

TEST(ObsMt, EveryWorkerContributesSpans) {
  driver::Manifest m = corpus(32);
  driver::BatchOptions opt;
  opt.jobs = 4;
  obs::trace().clear();
  obs::trace().set_enabled(true);
  driver::BatchReport report = driver::run_batch(m, opt);
  EXPECT_EQ(report.totals.done, 32u);

  // All four workers registered a track, and each recorded at least one
  // span (the driver.worker lifetime span guarantees this even for a
  // worker whose every job was stolen away).
  std::map<std::string, std::size_t> spans_per_track;
  for (const obs::TraceSpan& s : obs::trace().spans()) {
    spans_per_track[s.track]++;
  }
  for (std::size_t w = 0; w < 4; ++w) {
    std::string track = "worker-" + std::to_string(w);
    EXPECT_GT(spans_per_track[track], 0u) << "no spans on " << track;
  }
  EXPECT_EQ(obs::trace().dropped(), 0u);

  obs::trace().clear();
  obs::trace().set_enabled(false);
}

TEST(ObsMt, SpanSnapshotIsOrderedPerTrack) {
  driver::Manifest m = corpus(16);
  driver::BatchOptions opt;
  opt.jobs = 3;
  obs::trace().clear();
  obs::trace().set_enabled(true);
  driver::run_batch(m, opt);

  // The merged snapshot orders spans by start time within each track, so
  // exports are deterministic and Perfetto renders without reordering.
  std::map<std::string, std::uint64_t> last_start;
  std::vector<obs::TraceSpan> spans = obs::trace().spans();
  ASSERT_FALSE(spans.empty());
  for (const obs::TraceSpan& s : spans) {
    auto it = last_start.find(s.track);
    if (it != last_start.end()) {
      EXPECT_LE(it->second, s.start_ns) << "track " << s.track;
    }
    last_start[s.track] = s.start_ns;
  }

  obs::trace().clear();
  obs::trace().set_enabled(false);
}

TEST(ObsMt, BatchReportCarriesMergedHistograms) {
  driver::Manifest m = corpus(24);
  driver::BatchOptions opt;
  opt.jobs = 4;
  driver::BatchReport report = driver::run_batch(m, opt);
  EXPECT_EQ(report.totals.done, 24u);

  // One program-latency sample per completed program, merged across the
  // four worker registries without loss.
  auto it = report.histograms.find("driver.program_latency_ns");
  ASSERT_NE(it, report.histograms.end());
  EXPECT_EQ(it->second.count(), 24u);
  EXPECT_GT(it->second.sum(), 0u);
  EXPECT_LE(it->second.min(), it->second.max());

  // The timing report serializes percentiles for it.
  std::string json = report.to_json(/*pretty=*/false, /*include_timing=*/true);
  EXPECT_NE(json.find("\"driver.program_latency_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(ObsMt, HistogramShardsMergeExactly) {
  // Concurrent recording into per-thread registries, then a sequential
  // merge, must equal one histogram fed every sample: the lossless-merge
  // property the batch drain depends on.
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<obs::Registry> shards(kThreads);
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([t, &shards] {
      obs::Registry* prev = obs::set_thread_registry(&shards[t]);
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        PARCM_OBS_HIST("mt.value", i * 7 + static_cast<std::uint64_t>(t));
      }
      obs::set_thread_registry(prev);
    });
  }
  for (std::thread& t : pool) t.join();

  obs::Registry merged;
  for (obs::Registry& shard : shards) merged.merge_from(shard);

  obs::Histogram expected;
  for (int t = 0; t < kThreads; ++t) {
    for (std::uint64_t i = 0; i < kPerThread; ++i) {
      expected.record(i * 7 + static_cast<std::uint64_t>(t));
    }
  }
  EXPECT_EQ(merged.histogram("mt.value"), expected);
  EXPECT_EQ(merged.histogram("mt.value").count(), kThreads * kPerThread);
}

TEST(ObsMt, ThreadScopeLifecycle) {
  // Binding while the sink is disabled is a no-op; after enabling, worker
  // scopes bind real buffers and unwind cleanly so clear() is legal again.
  obs::trace().clear();
  {
    obs::TraceThreadScope inactive("worker-ghost");
    EXPECT_FALSE(inactive.active());
  }
  obs::trace().set_enabled(true);
  {
    std::thread worker([] {
      obs::TraceThreadScope scope("worker-0");
      EXPECT_TRUE(scope.active());
      EXPECT_EQ(obs::current_trace_track(), "worker-0");
      int span = obs::trace().begin("work");
      EXPECT_GE(span, 0);
      obs::trace().end(span);
      // Nested scopes shadow and restore the outer track.
      {
        obs::TraceThreadScope nested("worker-0/nested");
        EXPECT_EQ(obs::current_trace_track(), "worker-0/nested");
      }
      EXPECT_EQ(obs::current_trace_track(), "worker-0");
    });
    worker.join();
  }
  std::vector<std::string> tracks = obs::trace().tracks();
  EXPECT_NE(std::find(tracks.begin(), tracks.end(), "worker-0"), tracks.end());
  // Ghost track from the disabled bind must not exist.
  EXPECT_EQ(std::find(tracks.begin(), tracks.end(), "worker-ghost"),
            tracks.end());
  obs::trace().clear();
  obs::trace().set_enabled(false);
  EXPECT_EQ(obs::current_trace_track(), "");
}

}  // namespace
}  // namespace parcm
