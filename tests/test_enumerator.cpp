#include "semantics/enumerator.hpp"

#include <gtest/gtest.h>

#include "lang/lower.hpp"

namespace parcm {
namespace {

using Finals = std::set<std::vector<std::int64_t>>;

TEST(Enumerator, SequentialProgramSingleFinalState) {
  Graph g = lang::compile_or_throw("x := 2; y := x + 3;");
  auto r = enumerate_executions(g, {"x", "y"});
  ASSERT_TRUE(r.exhausted);
  EXPECT_EQ(r.finals, (Finals{{2, 5}}));
}

TEST(Enumerator, NondeterministicBranchBothOutcomes) {
  Graph g = lang::compile_or_throw("if (*) { x := 1; } else { x := 2; }");
  auto r = enumerate_executions(g, {"x"});
  ASSERT_TRUE(r.exhausted);
  EXPECT_EQ(r.finals, (Finals{{1}, {2}}));
}

TEST(Enumerator, ChooseThreeWay) {
  Graph g = lang::compile_or_throw(
      "choose { x := 1; } or { x := 2; } or { x := 3; }");
  auto r = enumerate_executions(g, {"x"});
  ASSERT_TRUE(r.exhausted);
  EXPECT_EQ(r.finals.size(), 3u);
}

TEST(Enumerator, RaceOutcomes) {
  Graph g = lang::compile_or_throw("par { x := 1; } and { x := 2; }");
  auto r = enumerate_executions(g, {"x"});
  ASSERT_TRUE(r.exhausted);
  EXPECT_EQ(r.finals, (Finals{{1}, {2}}));
}

TEST(Enumerator, ClassicInterleavingIncrements) {
  // Atomic increments: both orders give 2 (each reads the latest value).
  Graph g = lang::compile_or_throw(
      "par { x := x + 1; } and { x := x + 1; }");
  auto r = enumerate_executions(g, {"x"});
  ASSERT_TRUE(r.exhausted);
  EXPECT_EQ(r.finals, (Finals{{2}}));
}

TEST(Enumerator, SplitSemanticsExposesLostUpdate) {
  // Remark 2.1 semantics: both threads may read 0 before either writes —
  // the classic lost update x = 1 appears.
  Graph g = lang::compile_or_throw(
      "par { x := x + 1; } and { x := x + 1; }");
  EnumerationOptions opts;
  opts.atomic_assignments = false;
  auto r = enumerate_executions(g, {"x"}, opts);
  ASSERT_TRUE(r.exhausted);
  EXPECT_EQ(r.finals, (Finals{{1}, {2}}));
}

TEST(Enumerator, SplitSupersetOfAtomic) {
  const char* programs[] = {
      "par { x := x + 1; } and { x := x * 2; }",
      "par { y := x; x := 1; } and { x := y + 2; }",
      "x := 3; par { x := x + 1; y := x; } and { x := 0; }",
  };
  for (const char* src : programs) {
    Graph g = lang::compile_or_throw(src);
    auto atomic = enumerate_executions(g, {"x", "y"});
    EnumerationOptions opts;
    opts.atomic_assignments = false;
    auto split = enumerate_executions(g, {"x", "y"}, opts);
    ASSERT_TRUE(atomic.exhausted && split.exhausted) << src;
    for (const auto& s : atomic.finals) {
      EXPECT_TRUE(split.finals.contains(s)) << src;
    }
  }
}

TEST(Enumerator, InitialValues) {
  Graph g = lang::compile_or_throw("y := x + 1;");
  EnumerationOptions opts;
  opts.initial = {{"x", 41}};
  auto r = enumerate_executions(g, {"y"}, opts);
  EXPECT_EQ(r.finals, (Finals{{42}}));
}

TEST(Enumerator, ObservedVariableMissingReadsZero) {
  Graph g = lang::compile_or_throw("x := 1;");
  auto r = enumerate_executions(g, {"x", "ghost"});
  EXPECT_EQ(r.finals, (Finals{{1, 0}}));
}

TEST(Enumerator, LoopWithStableStateTerminates) {
  // The nondeterministic loop re-reaches the same (config, data) state:
  // memoization closes the exploration.
  Graph g = lang::compile_or_throw("while (*) { x := 5; } y := 1;");
  auto r = enumerate_executions(g, {"x", "y"});
  ASSERT_TRUE(r.exhausted);
  EXPECT_EQ(r.finals, (Finals{{0, 1}, {5, 1}}));
}

TEST(Enumerator, StateLimitReported) {
  // Divergent counter: the state space is unbounded; the limit must trip.
  Graph g = lang::compile_or_throw("while (*) { x := x + 1; }");
  EnumerationOptions opts;
  opts.max_states = 500;
  auto r = enumerate_executions(g, {"x"}, opts);
  EXPECT_FALSE(r.exhausted);
}

TEST(Enumerator, DeterministicConditionsRespectData) {
  Graph g = lang::compile_or_throw(R"(
    par { x := 1; } and { y := 2; }
    if (x < y) { z := 10; } else { z := 20; }
  )");
  auto r = enumerate_executions(g, {"z"});
  ASSERT_TRUE(r.exhausted);
  EXPECT_EQ(r.finals, (Finals{{10}}));
}

TEST(Enumerator, InterleavingSensitiveReads) {
  Graph g = lang::compile_or_throw(R"(
    a := 2; b := 3;
    par { a := a + b; } and { y := a + b; }
  )");
  auto r = enumerate_executions(g, {"a", "y"});
  ASSERT_TRUE(r.exhausted);
  // y reads a either before (5) or after (8) the recursive update.
  EXPECT_EQ(r.finals, (Finals{{5, 5}, {5, 8}}));
}

TEST(Enumerator, CountsStatesExplored) {
  Graph g = lang::compile_or_throw("par { x := 1; } and { y := 2; }");
  auto r = enumerate_executions(g, {"x"});
  EXPECT_GT(r.states_explored, 4u);
}

}  // namespace
}  // namespace parcm
