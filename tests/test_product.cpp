#include "semantics/product.hpp"

#include <gtest/gtest.h>

#include "analyses/downsafety.hpp"
#include "analyses/upsafety.hpp"
#include "dfa/packed.hpp"
#include "figures/figures.hpp"
#include "ir/printer.hpp"
#include "ir/transform_utils.hpp"
#include "ir/validate.hpp"
#include "lang/lower.hpp"

namespace parcm {
namespace {

TEST(Product, StraightLineProgramIsIsomorphicCopy) {
  Graph g = lang::compile_or_throw("x := a + b; y := x; z := y * 2;");
  ProductProgram p = build_product(g);
  ASSERT_TRUE(p.exhausted);
  EXPECT_EQ(p.graph.num_par_stmts(), 0u);
  // One product node per original node (every node executes in exactly one
  // control configuration).
  EXPECT_EQ(p.graph.num_nodes(), g.num_nodes());
  validate_or_throw(p.graph);
}

TEST(Product, BranchingDuplicatesPerChosenSuccessor) {
  // A product node is (node executed, configuration reached): a 2-way
  // branch node occurs twice, once per chosen successor.
  Graph g = lang::compile_or_throw("if (*) { y := 1; } else { y := 2; }");
  ProductProgram p = build_product(g);
  ASSERT_TRUE(p.exhausted);
  validate_or_throw(p.graph);
  EXPECT_EQ(p.graph.num_nodes(), g.num_nodes() + 1);
}

TEST(Product, TwoByTwoInterleavingCount) {
  // {A1 A2} || {B1 B2}: lattice-path unfolding.
  Graph g = lang::compile_or_throw(
      "par { a1 := 1; a2 := 2; } and { b1 := 3; b2 := 4; }");
  ProductProgram p = build_product(g);
  ASSERT_TRUE(p.exhausted);
  validate_or_throw(p.graph);
  // Each original assignment occurs once per reachable opposite-thread
  // position: 3 positions for a 2-statement sibling (before/middle/after)…
  // count conservatively: the product is strictly larger than the original.
  EXPECT_GT(p.graph.num_nodes(), g.num_nodes());
}

TEST(Product, OriginMapsToOriginalNodes) {
  Graph g = lang::compile_or_throw("par { x := 1; } and { y := 2; } z := 3;");
  ProductProgram p = build_product(g);
  ASSERT_TRUE(p.exhausted);
  for (NodeId q : p.graph.all_nodes()) {
    NodeId orig = p.origin[q.index()];
    ASSERT_TRUE(orig.valid());
    if (p.graph.node(q).kind == NodeKind::kAssign) {
      EXPECT_EQ(p.graph.node(q).lhs, g.node(orig).lhs);
    }
  }
  EXPECT_EQ(p.origin[p.graph.start().index()], g.start());
  EXPECT_EQ(p.origin[p.graph.end().index()], g.end());
}

TEST(Product, StateLimitReported) {
  Graph g = lang::compile_or_throw(R"(
    par { while (*) { a := 1; b := 2; c := 3; } }
    and { while (*) { d := 4; e := 5; f := 6; } }
    and { while (*) { u := 7; v := 8; w := 9; } }
  )");
  ProductProgram p = build_product(g, 100);
  EXPECT_FALSE(p.exhausted);
}

TEST(Product, PmopRejectedOnTruncatedProduct) {
  Graph g = lang::compile_or_throw("par { x := 1; y := 2; } and { z := 3; }");
  ProductProgram p = build_product(g, 2);
  ASSERT_FALSE(p.exhausted);
  TermTable terms(g);
  LocalPredicates preds(g, terms);
  PackedProblem pp = make_upsafety_problem(g, preds, SafetyVariant::kNaive);
  EXPECT_THROW(solve_pmop_via_product(g, p, pp), InternalError);
}

// The key validation of Theorem 2.4 on the paper's own program: PMFP with
// the standard synchronization equals the path-based PMOP from the product.
TEST(Product, CoincidenceOnFig6) {
  Graph g = figures::fig6();
  ProductProgram prod = build_product(g);
  ASSERT_TRUE(prod.exhausted);
  TermTable terms(g);
  LocalPredicates preds(g, terms);
  InterleavingInfo itlv(g);

  PackedProblem us = make_upsafety_problem(g, preds, SafetyVariant::kNaive);
  PackedResult pmfp = solve_packed(g, us);
  PmopResult pmop = solve_pmop_via_product(g, prod, us);
  for (NodeId n : g.all_nodes()) {
    EXPECT_EQ(pmfp.entry[n.index()], pmop.entry[n.index()])
        << "node " << n.value() << " (" << statement_to_string(g, n) << ")";
  }
}

TEST(Product, Fig6PerInterleavingSafetyClaims) {
  // The paper's Fig. 6 claims, checked against the product-based PMOP:
  // the statement's exit is up-safe and its entry down-safe per
  // interleaving, while the internal second computations are not.
  Graph g = figures::fig6();
  ProductProgram prod = build_product(g);
  ASSERT_TRUE(prod.exhausted);
  TermTable terms(g);
  LocalPredicates preds(g, terms);
  TermId ab = terms.find(g, "a + b");

  PmopResult up = solve_pmop_via_product(
      g, prod, make_upsafety_problem(g, preds, SafetyVariant::kNaive));
  // w := a+b after the join is available on every interleaving.
  NodeId w = node_of_statement(g, "w := a + b");
  EXPECT_TRUE(up.entry[w.index()].test(ab.index()));
  // The second computation inside component 1 is not.
  NodeId u = node_of_statement(g, "u := a + b");
  EXPECT_FALSE(up.entry[u.index()].test(ab.index()));

  PmopResult down = solve_pmop_via_product(
      g, prod, make_downsafety_problem(g, preds, SafetyVariant::kNaive));
  // x := a+b before the statement: down-safe on every interleaving (each
  // component computes before it modifies).
  NodeId x = node_of_statement(g, "x := a + b");
  EXPECT_TRUE(down.out[x.index()].test(ab.index()));
  const ParStmt& s = g.par_stmt(ParStmtId(0));
  EXPECT_TRUE(down.out[s.begin.index()].test(ab.index()));
}

TEST(Product, ImportanceOfInterference) {
  // A destroyed term: the PMOP solution must show the kill that pure
  // component-local reasoning would miss.
  Graph g = lang::compile_or_throw(R"(
    x := a + b;
    par { y := a + b; } and { a := 1; }
  )");
  ProductProgram prod = build_product(g);
  ASSERT_TRUE(prod.exhausted);
  TermTable terms(g);
  LocalPredicates preds(g, terms);
  TermId ab = terms.find(g, "a + b");
  PmopResult up = solve_pmop_via_product(
      g, prod, make_upsafety_problem(g, preds, SafetyVariant::kNaive));
  NodeId y = node_of_statement(g, "y := a + b");
  EXPECT_FALSE(up.entry[y.index()].test(ab.index()));
}

}  // namespace
}  // namespace parcm
