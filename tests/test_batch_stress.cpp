// Batch-driver stress suite (ctest -L batch): failure isolation, timeout
// containment, wall-limit backpressure and counter balance under load.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "driver/driver.hpp"
#include "driver/manifest.hpp"
#include "lang/unparse.hpp"
#include "verify/fuzz.hpp"

namespace parcm {
namespace {

driver::Manifest stress_corpus(std::size_t n) {
  RandomProgramOptions gen = verify::default_fuzz_gen();
  gen.target_stmts = 5;  // small programs: the point is volume, not depth
  return driver::Manifest::lazy(n, "stress", [gen](std::size_t i) {
    return lang::to_source(verify::fuzz_program(99, i, gen));
  });
}

void expect_balanced(const driver::BatchReport& r) {
  EXPECT_EQ(r.totals.submitted, r.totals.done + r.totals.failed +
                                    r.totals.timed_out + r.totals.skipped);
  EXPECT_EQ(r.programs.size(), r.totals.submitted);
}

// 500 programs, one injected per-program timeout and one throwing job: the
// batch completes, the two casualties are isolated with their own statuses,
// and the books balance.
TEST(BatchStress, FaultInjection500) {
  driver::Manifest m = stress_corpus(500);
  driver::BatchOptions opt;
  opt.jobs = 8;
  opt.keep_output = false;
  opt.timeout_seconds = 0.2;
  opt.test_before_job = [](std::size_t index) {
    if (index == 137) {  // outsleep the deadline -> kTimedOut
      std::this_thread::sleep_for(std::chrono::milliseconds(300));
    }
    if (index == 273) throw std::runtime_error("injected fault");
  };
  driver::BatchReport r = driver::run_batch(m, opt);
  expect_balanced(r);
  EXPECT_EQ(r.totals.submitted, 500u);
  EXPECT_EQ(r.totals.done, 498u);
  EXPECT_EQ(r.totals.timed_out, 1u);
  EXPECT_EQ(r.totals.failed, 1u);
  EXPECT_EQ(r.programs[137].status, driver::JobStatus::kTimedOut);
  EXPECT_EQ(r.programs[273].status, driver::JobStatus::kFailed);
  EXPECT_NE(r.programs[273].error.find("injected fault"), std::string::npos);
  EXPECT_FALSE(r.ok());
  // Results land in manifest slots regardless of completion order.
  for (std::size_t i = 0; i < r.programs.size(); ++i) {
    EXPECT_EQ(r.programs[i].index, i);
  }
}

TEST(BatchStress, ParseFailureIsIsolatedNotFatal) {
  driver::Manifest m = driver::Manifest::from_sources({
      {"good", "x := 1; y := x + 1;"},
      {"bad", "x := := garbage ("},
      {"alsogood", "a := 2;"},
  });
  driver::BatchOptions opt;
  opt.jobs = 2;
  driver::BatchReport r = driver::run_batch(m, opt);
  expect_balanced(r);
  EXPECT_EQ(r.totals.done, 2u);
  EXPECT_EQ(r.totals.failed, 1u);
  EXPECT_EQ(r.programs[1].status, driver::JobStatus::kFailed);
  EXPECT_NE(r.programs[1].error.find("parse"), std::string::npos);
}

// The batch wall limit stops scheduling: late jobs report kSkipped and the
// counters still balance.
TEST(BatchStress, WallLimitSkipsUnstartedJobs) {
  driver::Manifest m = stress_corpus(64);
  driver::BatchOptions opt;
  opt.jobs = 2;
  opt.keep_output = false;
  opt.wall_limit_seconds = 0.02;
  opt.test_before_job = [](std::size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  };
  driver::BatchReport r = driver::run_batch(m, opt);
  expect_balanced(r);
  EXPECT_GT(r.totals.skipped, 0u);
  EXPECT_GT(r.totals.done, 0u);
  EXPECT_EQ(r.totals.failed, 0u);
}

// A runner that throws on every job still yields a complete, balanced
// report — the driver's exception containment is per-program.
TEST(BatchStress, EveryJobThrowing) {
  driver::Manifest m = stress_corpus(50);
  driver::BatchOptions opt;
  opt.jobs = 4;
  opt.runner = [](const driver::BatchJob&, std::size_t index,
                  driver::WorkerContext&, driver::ProgramResult&) {
    throw std::runtime_error("boom " + std::to_string(index));
  };
  driver::BatchReport r = driver::run_batch(m, opt);
  expect_balanced(r);
  EXPECT_EQ(r.totals.failed, 50u);
  EXPECT_EQ(r.programs[49].error, "boom 49");
}

// Custom runners get scheduling + containment but keep full control of the
// payload; each index is visited exactly once.
TEST(BatchStress, CustomRunnerEachIndexOnce) {
  constexpr std::size_t kN = 400;
  std::vector<std::atomic<int>> visits(kN);
  driver::Manifest m =
      driver::Manifest::lazy(kN, "t", [](std::size_t) { return ""; });
  driver::BatchOptions opt;
  opt.jobs = 8;
  opt.steal_seed = 5;
  opt.shard_cap = 4;  // force heavy injector traffic
  opt.runner = [&visits](const driver::BatchJob&, std::size_t index,
                         driver::WorkerContext&, driver::ProgramResult&) {
    visits[index].fetch_add(1);
  };
  driver::BatchReport r = driver::run_batch(m, opt);
  expect_balanced(r);
  EXPECT_EQ(r.totals.done, kN);
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(visits[i].load(), 1) << "index " << i;
  }
  EXPECT_EQ(r.queue.own_pops + r.queue.injector_pops + r.queue.steals, kN);
}

// Big-first sharding: with wildly mixed sizes the report still carries
// every result in manifest order and the totals hold.
TEST(BatchStress, MixedSizesBalance) {
  driver::Manifest m;
  for (std::size_t i = 0; i < 120; ++i) {
    driver::BatchJob job;
    job.id = "m" + std::to_string(i);
    std::string stmt = "x := x + " + std::to_string(i) + "; ";
    std::string src;
    for (std::size_t k = 0; k <= i % 40; ++k) src += stmt;
    job.size_hint = src.size();
    job.source = std::move(src);
    m.jobs.push_back(std::move(job));
  }
  driver::BatchOptions opt;
  opt.jobs = 6;
  opt.keep_output = false;
  driver::BatchReport r = driver::run_batch(m, opt);
  expect_balanced(r);
  EXPECT_EQ(r.totals.done, 120u);
  for (std::size_t i = 0; i < r.programs.size(); ++i) {
    EXPECT_EQ(r.programs[i].id, "m" + std::to_string(i));
  }
}

}  // namespace
}  // namespace parcm
