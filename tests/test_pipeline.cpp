#include "motion/pipeline.hpp"

#include <gtest/gtest.h>

#include "analyses/cache.hpp"
#include "figures/figures.hpp"
#include "ir/validate.hpp"
#include "lang/lower.hpp"
#include "obs/metrics.hpp"
#include "semantics/cost.hpp"
#include "semantics/equivalence.hpp"
#include "workload/randomprog.hpp"

namespace parcm {
namespace {

TEST(Pipeline, EmptyPipelineIsIdentity) {
  Graph g = lang::compile_or_throw("x := a + b;");
  PipelineResult r = Pipeline().run(g);
  EXPECT_TRUE(r.passes.empty());
  EXPECT_EQ(r.graph.num_nodes(), g.num_nodes());
}

TEST(Pipeline, StatsPerPass) {
  Graph g = lang::compile_or_throw("x := a + b; y := a + b;");
  Pipeline p;
  p.add_pcm().add_validate();
  PipelineResult r = p.run(g);
  ASSERT_EQ(r.passes.size(), 2u);
  EXPECT_EQ(r.passes[0].name, "pcm");
  EXPECT_GT(r.passes[0].actions, 0u);
  EXPECT_GT(r.passes[0].nodes_after, r.passes[0].nodes_before);
  EXPECT_EQ(r.passes[1].name, "validate");
  std::string report = r.to_string();
  EXPECT_NE(report.find("pcm"), std::string::npos);
}

TEST(Pipeline, CustomPass) {
  Graph g = lang::compile_or_throw("x := 1;");
  Pipeline p;
  bool ran = false;
  p.add("custom", [&ran](const Graph& gr, std::size_t* actions) {
    ran = true;
    *actions = 42;
    return gr;
  });
  PipelineResult r = p.run(g);
  EXPECT_TRUE(ran);
  EXPECT_EQ(r.passes[0].actions, 42u);
}

TEST(Pipeline, DefaultPipelineOnFig10) {
  Graph g = figures::fig10();
  PipelineResult r = default_pipeline().run(g);
  validate_or_throw(r.graph);
  // PCM moved things; constprop folds the literal prologue into the
  // temporaries; DCE can then remove prologue assignments that became dead.
  ASSERT_EQ(r.passes.size(), 8u);
  EXPECT_GT(r.passes[0].actions, 0u);  // pcm
  EXPECT_GT(r.passes[2].actions, 0u);  // constprop
  LoopOracle l1(4), l2(4);
  CostResult before = execution_time(g, l1);
  CostResult after = execution_time(r.graph, l2);
  EXPECT_LT(after.time, before.time);
}

TEST(Pipeline, ConstpropEnablesDce) {
  // After propagation, y's value feeds nothing any more once z is folded.
  Graph g = lang::compile_or_throw("y := 2; z := y + 1; w := z + 0;");
  Pipeline p;
  p.add_constprop().add_dce({"w"});
  PipelineResult r = p.run(g);
  validate_or_throw(r.graph);
  // Everything folds to constants; y and z die.
  EXPECT_EQ(r.passes[1].actions, 2u);
  auto finals = enumerate_executions(r.graph, {"w"});
  EXPECT_EQ(finals.finals,
            (std::set<std::vector<std::int64_t>>{{3}}));
}

#if PARCM_OBS_ENABLED
// Runs the default pipeline on `g` with a fresh registry installed and
// returns the counter snapshot the run produced.
std::map<std::string, std::uint64_t> counters_of_run(const Graph& g) {
  // Cold analysis cache, so repeated runs see identical hit/miss counters.
  analysis_cache().clear();
  obs::Registry local;
  obs::Registry* prev = obs::set_registry(&local);
  default_pipeline().run(g);
  obs::set_registry(prev);
  return local.counters();
}

TEST(Pipeline, SolverIterationCountsRecordedOnFig2) {
  Graph g = figures::fig2();
  std::map<std::string, std::uint64_t> c = counters_of_run(g);
  // The packed solver ran and reported its worklist relaxations.
  EXPECT_GT(c["dfa.packed.solves"], 0u);
  EXPECT_GT(c["dfa.packed.relaxations"], 0u);
  EXPECT_GT(c["dfa.packed.bit_words"], 0u);
  EXPECT_GT(c["motion.liveness.relaxations"], 0u);
  EXPECT_EQ(c["dfa.packed.relaxations"],
            c["dfa.packed.summary_relaxations"] +
                c["dfa.packed.value_relaxations"]);
}

TEST(Pipeline, SolverIterationCountsDeterministic) {
  int fig = 2;
  for (Graph g : {figures::fig2(), figures::fig7()}) {
    std::map<std::string, std::uint64_t> first = counters_of_run(g);
    std::map<std::string, std::uint64_t> second = counters_of_run(g);
    EXPECT_GT(first["dfa.packed.relaxations"], 0u) << "figure " << fig;
    EXPECT_EQ(first, second) << "figure " << fig;
    fig = 7;
  }
}

TEST(Pipeline, PassStatsCarrySolverCounters) {
  obs::Registry local;
  obs::Registry* prev = obs::set_registry(&local);
  PipelineResult r = default_pipeline().run(figures::fig2());
  obs::set_registry(prev);
  ASSERT_FALSE(r.passes.empty());
  ASSERT_EQ(r.passes[0].name, "pcm");
  // The pcm pass is attributed the solver work it caused, not the whole
  // registry: relaxations land on pcm, liveness on dce.
  EXPECT_GT(r.passes[0].counters["dfa.packed.relaxations"], 0u);
  EXPECT_GT(r.passes[0].wall_ms, 0.0);
  std::string json = r.to_json();
  EXPECT_NE(json.find("\"passes\""), std::string::npos);
  EXPECT_NE(json.find("dfa.packed.relaxations"), std::string::npos);
}
#endif  // PARCM_OBS_ENABLED

class PipelineProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineProperty, DefaultPipelinePreservesBehaviourAndCost) {
  Rng rng(GetParam());
  RandomProgramOptions opt;
  opt.target_stmts = 9;
  opt.max_par_depth = 2;
  opt.num_vars = 3;
  opt.while_permille = 30;
  Graph g = random_program(rng, opt);
  PipelineResult r = default_pipeline().run(g);
  validate_or_throw(r.graph);

  EnumerationOptions eo;
  eo.atomic_assignments = false;
  eo.max_states = 1u << 19;
  auto v = check_sequential_consistency(g, r.graph, {}, eo);
  if (!v.exhausted) GTEST_SKIP();
  EXPECT_TRUE(v.sequentially_consistent) << GetParam();

  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    auto pair = paired_execution_times(g, r.graph, seed * 3 + 1);
    if (!pair.has_value()) continue;
    EXPECT_LE(pair->second.time, pair->first.time) << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineProperty,
                         ::testing::Range<std::uint64_t>(0, 30));

}  // namespace
}  // namespace parcm
