#include "support/bitvector.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "support/rng.hpp"

namespace parcm {
namespace {

TEST(BitVector, DefaultIsEmpty) {
  BitVector bv;
  EXPECT_EQ(bv.size(), 0u);
  EXPECT_TRUE(bv.empty());
  EXPECT_TRUE(bv.none());
  EXPECT_EQ(bv.count(), 0u);
}

TEST(BitVector, ConstructAllFalse) {
  BitVector bv(130);
  EXPECT_EQ(bv.size(), 130u);
  EXPECT_TRUE(bv.none());
  for (std::size_t i = 0; i < 130; ++i) EXPECT_FALSE(bv.test(i));
}

TEST(BitVector, ConstructAllTrue) {
  BitVector bv(130, true);
  EXPECT_TRUE(bv.all());
  EXPECT_EQ(bv.count(), 130u);
  // Padding bits beyond size must stay clear.
  EXPECT_EQ(bv.words().back() >> (130 % 64), 0u);
}

TEST(BitVector, SetResetFlip) {
  BitVector bv(70);
  bv.set(0);
  bv.set(69);
  EXPECT_TRUE(bv.test(0));
  EXPECT_TRUE(bv.test(69));
  EXPECT_EQ(bv.count(), 2u);
  bv.reset(0);
  EXPECT_FALSE(bv.test(0));
  bv.flip(69);
  EXPECT_FALSE(bv.test(69));
  bv.flip(69);
  EXPECT_TRUE(bv.test(69));
  bv.set(5, false);
  EXPECT_FALSE(bv.test(5));
}

TEST(BitVector, SetAllResetAll) {
  BitVector bv(100);
  bv.set_all();
  EXPECT_TRUE(bv.all());
  bv.reset_all();
  EXPECT_TRUE(bv.none());
}

TEST(BitVector, ResizeGrowWithFalse) {
  BitVector bv(10, true);
  bv.resize(100);
  EXPECT_EQ(bv.count(), 10u);
  EXPECT_FALSE(bv.test(99));
}

TEST(BitVector, ResizeGrowWithTrue) {
  BitVector bv(10);
  bv.resize(100, true);
  EXPECT_EQ(bv.count(), 90u);
  EXPECT_FALSE(bv.test(3));
  EXPECT_TRUE(bv.test(10));
  EXPECT_TRUE(bv.test(99));
}

TEST(BitVector, ResizeGrowWithTrueAcrossWordBoundary) {
  BitVector bv(70);
  bv.resize(130, true);
  EXPECT_FALSE(bv.test(69));
  EXPECT_TRUE(bv.test(70));
  EXPECT_TRUE(bv.test(129));
  EXPECT_EQ(bv.count(), 60u);
}

TEST(BitVector, ResizeShrinkClearsTail) {
  BitVector bv(100, true);
  bv.resize(10);
  EXPECT_EQ(bv.size(), 10u);
  EXPECT_EQ(bv.count(), 10u);
  bv.resize(100);
  EXPECT_EQ(bv.count(), 10u);
}

TEST(BitVector, AndOrXor) {
  BitVector a(80), b(80);
  a.set(1);
  a.set(70);
  b.set(70);
  b.set(3);
  EXPECT_EQ((a & b).count(), 1u);
  EXPECT_TRUE((a & b).test(70));
  EXPECT_EQ((a | b).count(), 3u);
  EXPECT_EQ((a ^ b).count(), 2u);
  EXPECT_TRUE((a ^ b).test(1));
  EXPECT_TRUE((a ^ b).test(3));
}

TEST(BitVector, AndNot) {
  BitVector a(80, true), b(80);
  b.set(7);
  b.set(77);
  a.and_not(b);
  EXPECT_EQ(a.count(), 78u);
  EXPECT_FALSE(a.test(7));
  EXPECT_FALSE(a.test(77));
}

TEST(BitVector, InvertKeepsPaddingClear) {
  BitVector a(67);
  a.set(3);
  a.invert();
  EXPECT_EQ(a.count(), 66u);
  EXPECT_FALSE(a.test(3));
  a.invert();
  EXPECT_EQ(a.count(), 1u);
}

TEST(BitVector, SubsetAndIntersects) {
  BitVector a(40), b(40);
  a.set(3);
  b.set(3);
  b.set(9);
  EXPECT_TRUE(a.is_subset_of(b));
  EXPECT_FALSE(b.is_subset_of(a));
  EXPECT_TRUE(a.intersects(b));
  BitVector c(40);
  c.set(10);
  EXPECT_FALSE(a.intersects(c));
  EXPECT_TRUE(BitVector(40).is_subset_of(a));
}

TEST(BitVector, FindFirstNext) {
  BitVector a(200);
  EXPECT_EQ(a.find_first(), 200u);
  a.set(5);
  a.set(64);
  a.set(199);
  EXPECT_EQ(a.find_first(), 5u);
  EXPECT_EQ(a.find_next(5), 64u);
  EXPECT_EQ(a.find_next(64), 199u);
  EXPECT_EQ(a.find_next(199), 200u);
  EXPECT_EQ(a.find_next(4), 5u);
}

TEST(BitVector, SetBitsIteration) {
  BitVector a(150);
  std::vector<std::size_t> want = {0, 63, 64, 127, 149};
  for (std::size_t i : want) a.set(i);
  std::vector<std::size_t> got;
  for (std::size_t i : a.set_bits()) got.push_back(i);
  EXPECT_EQ(got, want);
}

TEST(BitVector, EqualityAndToString) {
  BitVector a(4), b(4);
  a.set(1);
  EXPECT_NE(a, b);
  b.set(1);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.to_string(), "0100");
}

TEST(BitVector, NormalizeAfterRawWordWrite) {
  BitVector a(10);
  a.words()[0] = ~std::uint64_t{0};
  a.normalize();
  EXPECT_EQ(a.count(), 10u);
}

class BitVectorSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BitVectorSizeSweep, RandomOpsMatchReferenceModel) {
  std::size_t n = GetParam();
  Rng rng(n * 977 + 13);
  BitVector bv(n);
  std::vector<bool> model(n, false);
  for (int step = 0; step < 500; ++step) {
    if (n == 0) break;
    std::size_t i = rng.below(n);
    switch (rng.below(3)) {
      case 0:
        bv.set(i);
        model[i] = true;
        break;
      case 1:
        bv.reset(i);
        model[i] = false;
        break;
      default:
        bv.flip(i);
        model[i] = !model[i];
        break;
    }
  }
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(bv.test(i), model[i]) << "bit " << i;
    count += model[i];
  }
  EXPECT_EQ(bv.count(), count);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitVectorSizeSweep,
                         ::testing::Values(1, 63, 64, 65, 128, 129, 1000));

class BitVectorLogicSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BitVectorLogicSweep, DeMorganAndAbsorption) {
  Rng rng(GetParam());
  std::size_t n = 1 + rng.below(300);
  BitVector a(n), b(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.chance(1, 2)) a.set(i);
    if (rng.chance(1, 2)) b.set(i);
  }
  EXPECT_EQ(~(a & b), (~a | ~b));
  EXPECT_EQ(~(a | b), (~a & ~b));
  EXPECT_EQ((a & (a | b)), a);
  EXPECT_EQ((a | (a & b)), a);
  BitVector diff = a;
  diff.and_not(b);
  EXPECT_EQ(diff, (a & ~b));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitVectorLogicSweep,
                         ::testing::Range<std::uint64_t>(0, 12));

TEST(BitVector, AssignAndNot) {
  BitVector a(130), b(130), dst;
  a.set(0);
  a.set(64);
  a.set(129);
  b.set(64);
  dst.assign_and_not(a, b);
  EXPECT_EQ(dst.size(), 130u);
  EXPECT_EQ(dst, (a & ~b));
  // Reassignment from a different size adopts the new size.
  BitVector c(10, true), d(10);
  dst.assign_and_not(c, d);
  EXPECT_EQ(dst.size(), 10u);
  EXPECT_EQ(dst.count(), 10u);
}

TEST(BitVector, OrWithAndNot) {
  BitVector acc(130), a(130), b(130);
  acc.set(1);
  a.set(1);
  a.set(65);
  a.set(129);
  b.set(129);
  BitVector want = acc | (a & ~b);
  acc.or_with_and_not(a, b);
  EXPECT_EQ(acc, want);
}

TEST(BitVector, FusedOpsMatchTwoStepForms) {
  Rng rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    std::size_t n = 1 + rng.below(300);
    BitVector a(n), b(n), acc(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (rng.chance(1, 2)) a.set(i);
      if (rng.chance(1, 2)) b.set(i);
      if (rng.chance(1, 3)) acc.set(i);
    }
    BitVector dst;
    dst.assign_and_not(a, b);
    EXPECT_EQ(dst, (a & ~b));
    BitVector fused = acc;
    fused.or_with_and_not(a, b);
    EXPECT_EQ(fused, (acc | (a & ~b)));
  }
}

TEST(BitVector, FindFirstFrom) {
  BitVector a(200);
  a.set(5);
  a.set(64);
  a.set(199);
  EXPECT_EQ(a.find_first_from(0), 5u);
  EXPECT_EQ(a.find_first_from(5), 5u);
  EXPECT_EQ(a.find_first_from(6), 64u);
  EXPECT_EQ(a.find_first_from(64), 64u);
  EXPECT_EQ(a.find_first_from(65), 199u);
  EXPECT_EQ(a.find_first_from(199), 199u);
  EXPECT_EQ(a.find_first_from(200), 200u);
}

TEST(BitVector, ForEachSetBit) {
  BitVector a(150);
  std::vector<std::size_t> want = {0, 63, 64, 127, 149};
  for (std::size_t i : want) a.set(i);
  std::vector<std::size_t> got;
  a.for_each_set_bit([&](std::size_t i) { got.push_back(i); });
  EXPECT_EQ(got, want);
  BitVector none(77);
  none.for_each_set_bit([](std::size_t) { FAIL() << "no bits set"; });
}

}  // namespace
}  // namespace parcm
