// Flight recorder: bounded per-thread rings, wraparound, concurrent
// snapshot safety, generation-guarded clear.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight.hpp"
#include "obs/json.hpp"

namespace parcm {
namespace {

using obs::FlightEvent;
using obs::FlightKind;
using obs::FlightRecorder;

TEST(Flight, DisabledRecorderRecordsNothing) {
  FlightRecorder fr;
  fr.record(FlightKind::kNote, "ignored", 1, 2);
  EXPECT_TRUE(fr.snapshot().empty());
  EXPECT_EQ(fr.total_recorded(), 0u);
}

TEST(Flight, RecordsInOrderWithPayload) {
  FlightRecorder fr;
  fr.set_enabled(true);
  fr.record(FlightKind::kPassStart, "pcm", 10, 0);
  fr.record(FlightKind::kPassEnd, "pcm", 1234, 3);
  fr.record(FlightKind::kCacheProbe, "bundle", 0xabcd, 1);
  std::vector<FlightEvent> events = fr.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, FlightKind::kPassStart);
  EXPECT_EQ(events[0].label, "pcm");
  EXPECT_EQ(events[0].a, 10u);
  EXPECT_EQ(events[1].kind, FlightKind::kPassEnd);
  EXPECT_EQ(events[1].a, 1234u);
  EXPECT_EQ(events[1].b, 3u);
  EXPECT_EQ(events[2].kind, FlightKind::kCacheProbe);
  EXPECT_EQ(events[2].a, 0xabcdu);
  // Per-ring sequence numbers are monotone from 0.
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[1].seq, 1u);
  EXPECT_EQ(events[2].seq, 2u);
  EXPECT_EQ(fr.total_recorded(), 3u);
}

TEST(Flight, WraparoundKeepsMostRecent) {
  FlightRecorder fr;
  fr.set_capacity(8);
  fr.set_enabled(true);
  for (std::uint64_t i = 0; i < 100; ++i) {
    fr.record(FlightKind::kNote, "n", i, 0);
  }
  std::vector<FlightEvent> events = fr.snapshot();
  ASSERT_EQ(events.size(), 8u);
  // The survivors are exactly the last 8, oldest first.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].a, 92 + i) << i;
    EXPECT_EQ(events[i].seq, 92 + i) << i;
  }
  EXPECT_EQ(fr.total_recorded(), 100u);
}

TEST(Flight, LabelTruncatesAtCapacity) {
  FlightRecorder fr;
  fr.set_enabled(true);
  const std::string long_label(100, 'x');
  fr.record(FlightKind::kNote, long_label);
  std::vector<FlightEvent> events = fr.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].label,
            long_label.substr(0, FlightRecorder::kLabelBytes));
}

TEST(Flight, PerThreadRingsAndCurrentThreadView) {
  FlightRecorder fr;
  fr.set_enabled(true);
  fr.record(FlightKind::kNote, "main-event", 1, 0);
  std::thread worker([&fr] {
    fr.record(FlightKind::kNote, "worker-event", 2, 0);
    std::vector<FlightEvent> mine = fr.snapshot_current_thread();
    ASSERT_EQ(mine.size(), 1u);
    EXPECT_EQ(mine[0].label, "worker-event");
  });
  worker.join();
  std::vector<FlightEvent> mine = fr.snapshot_current_thread();
  ASSERT_EQ(mine.size(), 1u);
  EXPECT_EQ(mine[0].label, "main-event");
  // The full snapshot sees both rings with distinct track names.
  std::vector<FlightEvent> all = fr.snapshot();
  ASSERT_EQ(all.size(), 2u);
  std::set<std::string> tracks{all[0].track, all[1].track};
  EXPECT_EQ(tracks.size(), 2u);
}

TEST(Flight, SnapshotWhileWritersAreHotNeverTears) {
  FlightRecorder fr;
  fr.set_capacity(16);
  fr.set_enabled(true);
  std::atomic<bool> stop{false};
  // Writers stamp a == b; a torn slot would surface as a != b.
  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&fr, &stop] {
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        fr.record(FlightKind::kNote, "hot", i, i);
        ++i;
      }
    });
  }
  for (int round = 0; round < 200; ++round) {
    for (const FlightEvent& e : fr.snapshot()) {
      ASSERT_EQ(e.a, e.b) << "torn event surfaced from a snapshot";
    }
  }
  stop.store(true);
  for (std::thread& w : writers) w.join();
}

TEST(Flight, ClearDropsRingsAndRebinds) {
  FlightRecorder fr;
  fr.set_enabled(true);
  fr.record(FlightKind::kNote, "before");
  ASSERT_EQ(fr.snapshot().size(), 1u);
  fr.clear();
  EXPECT_TRUE(fr.snapshot().empty());
  EXPECT_EQ(fr.total_recorded(), 0u);
  // The stale thread binding must not resurrect the dropped ring.
  fr.record(FlightKind::kNote, "after", 7, 0);
  std::vector<FlightEvent> events = fr.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].label, "after");
  EXPECT_EQ(events[0].seq, 0u);
}

TEST(Flight, EventsJsonIsValidAndComplete) {
  FlightRecorder fr;
  fr.set_enabled(true);
  fr.record(FlightKind::kPassStart, "needs \"escaping\"", 1, 2);
  fr.record(FlightKind::kOracleVerdict, "diverged", 4, 6);
  obs::JsonWriter w;
  FlightRecorder::write_events_json(fr.snapshot(), w);
  std::string json = w.take();
  EXPECT_TRUE(obs::json_valid(json)) << json;
  EXPECT_NE(json.find("\"pass-start\""), std::string::npos);
  EXPECT_NE(json.find("\"oracle-verdict\""), std::string::npos);
  EXPECT_NE(json.find("needs \\\"escaping\\\""), std::string::npos);
}

TEST(Flight, KindNamesAreStable) {
  EXPECT_STREQ(obs::flight_kind_name(FlightKind::kPassStart), "pass-start");
  EXPECT_STREQ(obs::flight_kind_name(FlightKind::kCacheProbe), "cache-probe");
  EXPECT_STREQ(obs::flight_kind_name(FlightKind::kRngStream), "rng-stream");
  EXPECT_STREQ(obs::flight_kind_name(FlightKind::kNote), "note");
}

}  // namespace
}  // namespace parcm
