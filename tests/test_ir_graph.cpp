#include "ir/graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "support/diagnostics.hpp"

namespace parcm {
namespace {

TEST(Graph, FreshGraphHasStartAndEnd) {
  Graph g;
  EXPECT_EQ(g.num_nodes(), 2u);
  EXPECT_EQ(g.node(g.start()).kind, NodeKind::kStart);
  EXPECT_EQ(g.node(g.end()).kind, NodeKind::kEnd);
  EXPECT_EQ(g.num_regions(), 1u);
  EXPECT_EQ(g.node(g.start()).region, g.root_region());
}

TEST(Graph, VarInterning) {
  Graph g;
  VarId a = g.intern_var("a");
  VarId b = g.intern_var("b");
  EXPECT_NE(a, b);
  EXPECT_EQ(g.intern_var("a"), a);
  EXPECT_EQ(g.var_name(a), "a");
  EXPECT_EQ(g.num_vars(), 2u);
  EXPECT_EQ(g.find_var("a"), a);
  EXPECT_FALSE(g.find_var("zz").has_value());
}

TEST(Graph, EdgesAndDegrees) {
  Graph g;
  NodeId n = g.new_node(NodeKind::kSkip, g.root_region());
  g.add_edge(g.start(), n);
  g.add_edge(n, g.end());
  EXPECT_EQ(g.out_degree(g.start()), 1u);
  EXPECT_EQ(g.in_degree(n), 1u);
  EXPECT_EQ(g.succs(g.start()), avector<NodeId>{n});
  EXPECT_EQ(g.preds(g.end()), avector<NodeId>{n});
}

TEST(Graph, RemoveEdge) {
  Graph g;
  NodeId n = g.new_node(NodeKind::kSkip, g.root_region());
  EdgeId e = g.add_edge(g.start(), n);
  g.add_edge(n, g.end());
  g.remove_edge(e);
  EXPECT_EQ(g.out_degree(g.start()), 0u);
  EXPECT_EQ(g.in_degree(n), 0u);
  EXPECT_FALSE(g.edge(e).valid);
}

TEST(Graph, AssignNode) {
  Graph g;
  VarId x = g.intern_var("x");
  VarId a = g.intern_var("a");
  NodeId n = g.new_assign(g.root_region(),
                          x, Rhs(Term{BinOp::kAdd, Operand::var(a),
                                      Operand::constant(1)}));
  EXPECT_EQ(g.node(n).kind, NodeKind::kAssign);
  EXPECT_EQ(g.node(n).lhs, x);
  ASSERT_TRUE(g.node(n).rhs.is_term());
  EXPECT_EQ(g.node(n).rhs.term().op, BinOp::kAdd);
}

TEST(Graph, ParStmtStructure) {
  Graph g;
  ParStmtId s = g.add_par_stmt(g.root_region());
  RegionId c1 = g.add_component(s);
  RegionId c2 = g.add_component(s);
  const ParStmt& stmt = g.par_stmt(s);
  EXPECT_EQ(stmt.components.size(), 2u);
  EXPECT_EQ(g.node(stmt.begin).kind, NodeKind::kParBegin);
  EXPECT_EQ(g.node(stmt.end).kind, NodeKind::kParEnd);
  EXPECT_EQ(g.node(stmt.begin).par_stmt, s);
  EXPECT_EQ(g.region(c1).owner, s);
  EXPECT_EQ(g.region(c2).owner, s);
  EXPECT_EQ(g.region_depth(c1), 1);
  EXPECT_EQ(g.region_depth(g.root_region()), 0);
}

TEST(Graph, ComponentEntryAndExits) {
  Graph g;
  ParStmtId s = g.add_par_stmt(g.root_region());
  RegionId c1 = g.add_component(s);
  NodeId a = g.new_node(NodeKind::kSkip, c1);
  NodeId b = g.new_node(NodeKind::kSkip, c1);
  g.add_edge(g.par_stmt(s).begin, a);
  g.add_edge(a, b);
  g.add_edge(b, g.par_stmt(s).end);
  EXPECT_EQ(g.component_entry(c1), a);
  EXPECT_EQ(g.component_exits(c1), std::vector<NodeId>{b});
}

TEST(Graph, PfgAndEnclosingStmts) {
  Graph g;
  ParStmtId outer = g.add_par_stmt(g.root_region());
  RegionId oc = g.add_component(outer);
  ParStmtId inner = g.add_par_stmt(oc);
  RegionId ic = g.add_component(inner);
  NodeId deep = g.new_node(NodeKind::kSkip, ic);

  EXPECT_FALSE(g.pfg(g.start()).valid());
  EXPECT_EQ(g.pfg(deep), inner);
  // ParBegin of inner lives in outer's component, so its pfg is outer.
  EXPECT_EQ(g.pfg(g.par_stmt(inner).begin), outer);

  auto chain = g.enclosing_stmts(deep);
  ASSERT_EQ(chain.size(), 2u);
  EXPECT_EQ(chain[0].stmt, inner);
  EXPECT_EQ(chain[0].component, ic);
  EXPECT_EQ(chain[1].stmt, outer);
  EXPECT_EQ(chain[1].component, oc);
}

TEST(Graph, NodesInRegionRecursive) {
  Graph g;
  ParStmtId outer = g.add_par_stmt(g.root_region());
  RegionId oc = g.add_component(outer);
  NodeId x = g.new_node(NodeKind::kSkip, oc);
  ParStmtId inner = g.add_par_stmt(oc);
  RegionId ic = g.add_component(inner);
  NodeId deep = g.new_node(NodeKind::kSkip, ic);

  auto nodes = g.nodes_in_region_recursive(oc);
  EXPECT_NE(std::find(nodes.begin(), nodes.end(), x), nodes.end());
  EXPECT_NE(std::find(nodes.begin(), nodes.end(), deep), nodes.end());
  EXPECT_NE(std::find(nodes.begin(), nodes.end(), g.par_stmt(inner).begin),
            nodes.end());
  // Outer's own begin/end are in the root region, not in oc.
  EXPECT_EQ(std::find(nodes.begin(), nodes.end(), g.par_stmt(outer).begin),
            nodes.end());
}

TEST(Graph, SpliceBefore) {
  Graph g;
  NodeId a = g.new_node(NodeKind::kSkip, g.root_region());
  NodeId b = g.new_node(NodeKind::kSkip, g.root_region());
  g.add_edge(g.start(), a);
  g.add_edge(a, b);
  g.add_edge(b, g.end());
  NodeId mid = g.new_node(NodeKind::kSynthetic, g.root_region());
  g.splice_before(mid, b);
  EXPECT_EQ(g.succs(a), avector<NodeId>{mid});
  EXPECT_EQ(g.succs(mid), avector<NodeId>{b});
  EXPECT_EQ(g.in_degree(b), 1u);
}

TEST(Graph, SpliceAfter) {
  Graph g;
  NodeId a = g.new_node(NodeKind::kSkip, g.root_region());
  g.add_edge(g.start(), a);
  g.add_edge(a, g.end());
  NodeId mid = g.new_node(NodeKind::kSynthetic, g.root_region());
  g.splice_after(mid, a);
  EXPECT_EQ(g.succs(a), avector<NodeId>{mid});
  EXPECT_EQ(g.succs(mid), avector<NodeId>{g.end()});
}

TEST(Graph, SpliceBeforePreservesEdgeSlots) {
  Graph g;
  VarId x = g.intern_var("x");
  NodeId t = g.new_test(g.root_region(), Rhs(Operand::var(x)));
  NodeId then_n = g.new_node(NodeKind::kSkip, g.root_region());
  NodeId else_n = g.new_node(NodeKind::kSkip, g.root_region());
  g.add_edge(g.start(), t);
  EdgeId te = g.add_edge(t, then_n);
  g.add_edge(t, else_n);
  g.add_edge(then_n, g.end());
  g.add_edge(else_n, g.end());

  NodeId mid = g.new_node(NodeKind::kSynthetic, g.root_region());
  g.splice_before(mid, then_n);
  // The true branch is still out_edges[0] and still reaches then_n via mid.
  EXPECT_EQ(g.node(t).out_edges[0], te);
  EXPECT_EQ(g.edge(te).to, mid);
  EXPECT_EQ(g.succs(mid), avector<NodeId>{then_n});
}

TEST(Graph, CopyIsDeep) {
  Graph g;
  VarId x = g.intern_var("x");
  NodeId n = g.new_assign(g.root_region(), x, Rhs(Operand::constant(1)));
  g.add_edge(g.start(), n);
  g.add_edge(n, g.end());

  Graph copy = g;
  copy.node(n).rhs = Rhs(Operand::constant(2));
  copy.intern_var("y");
  EXPECT_EQ(g.node(n).rhs.trivial().const_value(), 1);
  EXPECT_EQ(g.num_vars(), 1u);
  EXPECT_EQ(copy.num_vars(), 2u);
}

TEST(Graph, InvalidRegionChecks) {
  Graph g;
  EXPECT_THROW(g.new_node(NodeKind::kSkip, RegionId(99)), InternalError);
}

TEST(Expr, OperandBasics) {
  Operand c = Operand::constant(-5);
  EXPECT_TRUE(c.is_const());
  EXPECT_EQ(c.const_value(), -5);
  Operand v = Operand::var(VarId(3));
  EXPECT_TRUE(v.is_var());
  EXPECT_EQ(v.var_id(), VarId(3));
  EXPECT_EQ(Operand(), Operand::constant(0));
}

TEST(Expr, TermHasOperand) {
  Term t{BinOp::kAdd, Operand::var(VarId(1)), Operand::constant(2)};
  EXPECT_TRUE(t.has_operand(VarId(1)));
  EXPECT_FALSE(t.has_operand(VarId(2)));
}

TEST(Expr, RhsUsesVar) {
  Rhs trivial(Operand::var(VarId(4)));
  EXPECT_TRUE(trivial.uses_var(VarId(4)));
  EXPECT_FALSE(trivial.uses_var(VarId(5)));
  Rhs term(Term{BinOp::kMul, Operand::var(VarId(1)), Operand::var(VarId(2))});
  EXPECT_TRUE(term.uses_var(VarId(2)));
  EXPECT_FALSE(term.uses_var(VarId(3)));
}

TEST(Expr, BinOpSymbols) {
  EXPECT_STREQ(bin_op_symbol(BinOp::kAdd), "+");
  EXPECT_STREQ(bin_op_symbol(BinOp::kLe), "<=");
  EXPECT_STREQ(bin_op_symbol(BinOp::kNe), "!=");
}

}  // namespace
}  // namespace parcm
