#include "analyses/constprop.hpp"

#include <gtest/gtest.h>

#include "ir/printer.hpp"
#include "ir/transform_utils.hpp"
#include "ir/validate.hpp"
#include "lang/lower.hpp"
#include "semantics/equivalence.hpp"
#include "workload/randomprog.hpp"

namespace parcm {
namespace {

TEST(CpValue, MeetLattice) {
  CpValue u = CpValue::undef();
  CpValue c5 = CpValue::constant(5);
  CpValue c7 = CpValue::constant(7);
  CpValue nc = CpValue::nonconst();
  EXPECT_EQ(meet(u, c5), c5);
  EXPECT_EQ(meet(c5, u), c5);
  EXPECT_EQ(meet(c5, c5), c5);
  EXPECT_EQ(meet(c5, c7), nc);
  EXPECT_EQ(meet(nc, c5), nc);
  EXPECT_EQ(meet(u, u), u);
}

TEST(ConstProp, StraightLineFolding) {
  Graph g = lang::compile_or_throw("x := 2; y := x + 3; z := y * y;");
  ConstPropResult r = propagate_constants(g);
  validate_or_throw(r.graph);
  EXPECT_EQ(statement_to_string(r.graph, node_of_statement(r.graph, "y := 5")),
            "y := 5");
  EXPECT_EQ(r.rhs_folded, 2u);  // y := 5, z := 25
}

TEST(ConstProp, UninitializedVariablesAreZero) {
  Graph g = lang::compile_or_throw("y := x + 1;");
  ConstPropResult r = propagate_constants(g);
  // x reads as the initial 0 -> y := 1.
  bool found = false;
  for (NodeId n : r.graph.all_nodes()) {
    found |= statement_to_string(r.graph, n) == "y := 1";
  }
  EXPECT_TRUE(found);
}

TEST(ConstProp, BranchJoinLosesDisagreeingConstants) {
  Graph g = lang::compile_or_throw(
      "if (*) { x := 1; } else { x := 2; } y := x + 1;");
  ConstPropResult r = propagate_constants(g);
  // x is 1 or 2 at the join: not folded.
  bool y_unfolded = false;
  for (NodeId n : r.graph.all_nodes()) {
    y_unfolded |= statement_to_string(r.graph, n) == "y := x + 1";
  }
  EXPECT_TRUE(y_unfolded);
}

TEST(ConstProp, BranchJoinKeepsAgreeingConstants) {
  Graph g = lang::compile_or_throw(
      "if (*) { x := 7; } else { x := 7; } y := x + 1;");
  ConstPropResult r = propagate_constants(g);
  bool folded = false;
  for (NodeId n : r.graph.all_nodes()) {
    folded |= statement_to_string(r.graph, n) == "y := 8";
  }
  EXPECT_TRUE(folded);
}

TEST(ConstProp, LoopBodyInvalidatesRedefined) {
  Graph g = lang::compile_or_throw(
      "x := 1; while (*) { x := x + 1; } y := x;");
  ConstPropResult r = propagate_constants(g);
  // x is loop-varying; y must not fold.
  bool y_unfolded = false;
  for (NodeId n : r.graph.all_nodes()) {
    y_unfolded |= statement_to_string(r.graph, n) == "y := x";
  }
  EXPECT_TRUE(y_unfolded);
}

TEST(ConstProp, ContestedVariableNeverFolds) {
  // x is written by one component and read by the sibling: interference
  // makes every x-read non-constant, even the sequential-looking one after
  // the join.
  Graph g = lang::compile_or_throw(R"(
    x := 1;
    par { x := 2; } and { y := x; }
    z := x;
  )");
  ConstPropAnalysis a = analyze_constants(g);
  EXPECT_TRUE(a.contested[g.find_var("x")->index()]);
  ConstPropResult r = propagate_constants(g);
  bool y_unfolded = false, z_unfolded = false;
  for (NodeId n : r.graph.all_nodes()) {
    y_unfolded |= statement_to_string(r.graph, n) == "y := x";
    z_unfolded |= statement_to_string(r.graph, n) == "z := x";
  }
  EXPECT_TRUE(y_unfolded);
  EXPECT_TRUE(z_unfolded);
}

TEST(ConstProp, UncontestedParallelVariablesFold) {
  // Each component works on its own variables: constants flow freely.
  Graph g = lang::compile_or_throw(R"(
    par { a := 2; b := a + 1; } and { c := 5; d := c * 2; }
    e := b + d;
  )");
  ConstPropAnalysis an = analyze_constants(g);
  for (const char* v : {"a", "b", "c", "d"}) {
    EXPECT_FALSE(an.contested[g.find_var(v)->index()]) << v;
  }
  ConstPropResult r = propagate_constants(g);
  bool e_folded = false;
  for (NodeId n : r.graph.all_nodes()) {
    e_folded |= statement_to_string(r.graph, n) == "e := 13";
  }
  EXPECT_TRUE(e_folded);
}

TEST(ConstProp, SharedReadOnlyVariableFolds) {
  // Both components read k; nobody writes it after the sequential init.
  Graph g = lang::compile_or_throw(R"(
    k := 10;
    par { a := k + 1; } and { b := k + 2; }
  )");
  ConstPropResult r = propagate_constants(g);
  bool a_folded = false, b_folded = false;
  for (NodeId n : r.graph.all_nodes()) {
    a_folded |= statement_to_string(r.graph, n) == "a := 11";
    b_folded |= statement_to_string(r.graph, n) == "b := 12";
  }
  EXPECT_TRUE(a_folded);
  EXPECT_TRUE(b_folded);
}

TEST(ConstProp, TestConditionOperandsFold) {
  Graph g = lang::compile_or_throw("k := 3; if (k < 5) { x := 1; } y := 2;");
  ConstPropResult r = propagate_constants(g);
  bool folded_cond = false;
  for (NodeId n : r.graph.all_nodes()) {
    if (r.graph.node(n).kind == NodeKind::kTest) {
      folded_cond = statement_to_string(r.graph, n) == "if (1)";
    }
  }
  EXPECT_TRUE(folded_cond);
  // Semantics unchanged.
  auto v = check_sequential_consistency(g, r.graph);
  EXPECT_TRUE(v.sequentially_consistent);
  EXPECT_TRUE(v.behaviours_preserved);
}

TEST(ConstProp, DivisionFoldingMatchesInterpreter) {
  Graph g = lang::compile_or_throw("x := 7 / 0; y := 9 / 2;");
  ConstPropResult r = propagate_constants(g);
  bool x0 = false, y4 = false;
  for (NodeId n : r.graph.all_nodes()) {
    x0 |= statement_to_string(r.graph, n) == "x := 0";
    y4 |= statement_to_string(r.graph, n) == "y := 4";
  }
  EXPECT_TRUE(x0);
  EXPECT_TRUE(y4);
}

class ConstPropProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConstPropProperty, PreservesAllBehaviours) {
  Rng rng(GetParam());
  RandomProgramOptions opt;
  opt.target_stmts = 10;
  opt.max_par_depth = 2;
  opt.num_vars = 3;
  opt.while_permille = 30;
  opt.cond_permille = 300;  // deterministic conditions exercise folding
  Graph g = random_program(rng, opt);
  ConstPropResult r = propagate_constants(g);
  validate_or_throw(r.graph);
  EnumerationOptions eo;
  eo.max_states = 1u << 19;
  auto v = check_sequential_consistency(g, r.graph, {}, eo);
  if (!v.exhausted) GTEST_SKIP();
  EXPECT_TRUE(v.sequentially_consistent) << GetParam();
  EXPECT_TRUE(v.behaviours_preserved) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConstPropProperty,
                         ::testing::Range<std::uint64_t>(0, 40));

}  // namespace
}  // namespace parcm
