// Structural keys and the process-wide shared analysis tier.
//
// Covers the contracts the batch driver's byte-identity guarantee leans on:
// structural_hash is invariant under rebuilds and renames but sensitive to
// any structural perturbation; a 64-bit hash collision is rejected by the
// full-key compare and never serves (or evicts) a wrong entry; two worker
// caches pointed at one shared tier return the same immutable artifacts;
// and acquisition remarks are emitted once per content per sink epoch
// regardless of which tier satisfied the acquire.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "analyses/cache.hpp"
#include "lang/lower.hpp"
#include "lang/unparse.hpp"
#include "obs/remarks.hpp"
#include "verify/fuzz.hpp"
#include "workload/families.hpp"

namespace parcm {
namespace {

// RAII installer for a private shared tier; restores the previous one so
// sibling tests (and the process default of "no tier") are unaffected.
struct SharedTierScope {
  explicit SharedTierScope(SharedAnalysisCache* c)
      : prev_(set_thread_shared_analysis_cache(c)) {}
  ~SharedTierScope() { set_thread_shared_analysis_cache(prev_); }
  SharedAnalysisCache* prev_;
};

struct ThreadSinkScope {
  explicit ThreadSinkScope(obs::RemarkSink* s)
      : prev_(obs::set_thread_remark_sink(s)) {}
  ~ThreadSinkScope() { obs::set_thread_remark_sink(prev_); }
  obs::RemarkSink* prev_;
};

TEST(StructuralHash, StableAcrossRebuilds) {
  const char* src = "b := 1; x := a + b; y := a + b;";
  Graph g1 = lang::compile_or_throw(src);
  Graph g2 = lang::compile_or_throw(src);
  EXPECT_NE(g1.version(), g2.version());  // distinct objects...
  EXPECT_EQ(structural_hash(g1), structural_hash(g2));
  EXPECT_EQ(structural_key(g1), structural_key(g2));  // ...same content
}

TEST(StructuralHash, InvariantUnderUniformRenaming) {
  // Same shape, every variable renamed but first-occurrence order kept —
  // the analyses never look at names, so the keys must match.
  Graph g1 = lang::compile_or_throw("b := 1; x := a + b; y := a + b;");
  Graph g2 = lang::compile_or_throw("q := 1; r := p + q; s := p + q;");
  EXPECT_EQ(structural_key(g1), structural_key(g2));
}

TEST(StructuralHash, PooledProgramsShareOneKeyPerSlot) {
  // fuzz_program_pooled repeats shape (i mod K) with per-repetition
  // renaming: texts differ across repetitions, structural keys do not.
  RandomProgramOptions gen = verify::default_fuzz_gen();
  constexpr std::size_t kShapes = 4;
  std::vector<StructuralKey> base;
  std::vector<std::string> base_src;
  for (std::size_t i = 0; i < kShapes; ++i) {
    lang::Program p = verify::fuzz_program_pooled(2027, i, kShapes, gen);
    base_src.push_back(lang::to_source(p));
    base.push_back(structural_key(lang::compile_or_throw(base_src.back())));
  }
  for (std::size_t i = kShapes; i < 3 * kShapes; ++i) {
    lang::Program p = verify::fuzz_program_pooled(2027, i, kShapes, gen);
    std::string src = lang::to_source(p);
    EXPECT_NE(src, base_src[i % kShapes]) << "repetition " << i;
    Graph g = lang::compile_or_throw(src);
    EXPECT_EQ(structural_key(g), base[i % kShapes]) << "repetition " << i;
  }
}

TEST(StructuralHash, PerturbationsChangeTheKey) {
  Graph base = lang::compile_or_throw("b := 1; x := a + b; y := c + d;");
  StructuralKey base_key = structural_key(base);

  // Extra node.
  Graph extra = lang::compile_or_throw("b := 1; x := a + b; y := c + d; y := c + d;");
  EXPECT_NE(structural_key(extra), base_key);

  // Different operator in one rhs.
  Graph op = lang::compile_or_throw("b := 1; x := a - b; y := c + d;");
  EXPECT_NE(structural_key(op), base_key);

  // Different operand structure (operand indices shift with intern order).
  Graph swapped = lang::compile_or_throw("b := 1; y := c + d; x := a + b;");
  EXPECT_NE(structural_key(swapped), base_key);

  // Same statements wrapped in a parallel region: region structure counts.
  Graph par = lang::compile_or_throw(
      "b := 1;\npar {\n  x := a + b;\n} and {\n  y := c + d;\n}\n");
  EXPECT_NE(structural_key(par), base_key);

  // Sibling components swapped inside the par: component order counts.
  Graph par_swapped = lang::compile_or_throw(
      "b := 1;\npar {\n  y := c + d;\n} and {\n  x := a + b;\n}\n");
  EXPECT_NE(structural_key(par_swapped), structural_key(par));
}

TEST(SharedAnalysisCache, CollisionNeverServesOrEvictsTheIncumbent) {
  Graph g = lang::compile_or_throw("x := a + b;");
  auto incumbent = std::make_shared<const AnalysisBundle>(g.version(), g);
  auto challenger = std::make_shared<const AnalysisBundle>(g.version(), g);

  // Two keys with the same 64-bit hash but different pre-images: the
  // forced-collision path the full compare exists for.
  StructuralKey k1{0x1234, {1, 2, 3}};
  StructuralKey k2{0x1234, {9}};

  SharedAnalysisCache cache;
  cache.put_bundle(k1, incumbent);
  EXPECT_EQ(cache.find_bundle(k1).get(), incumbent.get());
  EXPECT_EQ(cache.find_bundle(k2), nullptr);  // never a wrong entry

  // A colliding put keeps the incumbent and drops the challenger.
  cache.put_bundle(k2, challenger);
  EXPECT_EQ(cache.find_bundle(k1).get(), incumbent.get());
  EXPECT_EQ(cache.find_bundle(k2), nullptr);
  EXPECT_EQ(cache.size(), 1u);

  // Interleaving info rides the same entry and the same collision rule.
  Graph pg = families::par_wide(2, 4);
  auto itlv = std::make_shared<const InterleavingInfo>(pg);
  cache.put_itlv(k2, itlv);  // collides -> dropped
  EXPECT_EQ(cache.find_itlv(k1), nullptr);
  EXPECT_EQ(cache.find_itlv(k2), nullptr);
  cache.put_itlv(k1, itlv);
  EXPECT_EQ(cache.find_itlv(k1).get(), itlv.get());

  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.find_bundle(k1), nullptr);
}

TEST(SharedAnalysisCache, TwoWorkerCachesShareOneBuild) {
  const char* src = "b := 1; x := a + b; y := a + b;";
  Graph g1 = lang::compile_or_throw(src);
  Graph g2 = lang::compile_or_throw(src);

  // Without a shared tier, each worker cache builds its own bundle.
  {
    AnalysisCache w1, w2;
    EXPECT_NE(w1.acquire(g1).get(), w2.acquire(g2).get());
  }

  // With one, the second worker hits the first worker's artifacts.
  SharedAnalysisCache shared;
  SharedTierScope tier(&shared);
  AnalysisCache w1, w2;
  auto b1 = w1.acquire(g1);
  auto b2 = w2.acquire(g2);
  EXPECT_EQ(b1.get(), b2.get());
  EXPECT_EQ(shared.size(), 1u);

  Graph p1 = families::par_wide(2, 4);
  Graph p2 = families::par_wide(2, 4);
  auto i1 = w1.interleaving(p1);
  auto i2 = w2.interleaving(p2);
  EXPECT_EQ(i1.get(), i2.get());
}

#if PARCM_OBS_ENABLED
TEST(AcquisitionRemarks, OncePerEpochIdenticalAcrossTiers) {
  // A recursive assignment inside a parallel component trips the P2
  // recursive-split degradation remark on acquisition.
  const char* src = "u := 1;\npar {\n  u := u + 1;\n} and {\n  y := 1;\n}\n";
  Graph g = lang::compile_or_throw(src);

  obs::RemarkSink sink;
  sink.set_enabled(true);
  ThreadSinkScope sink_scope(&sink);

  AnalysisCache cache;
  cache.acquire(g);
  std::size_t first = sink.size();
  ASSERT_GT(first, 0u);

  // Same content again in the same epoch: deduped, even via a rebuild.
  cache.acquire(g);
  cache.acquire(lang::compile_or_throw(src));
  EXPECT_EQ(sink.size(), first);

  // clear() starts a new epoch: the same content re-emits.
  sink.clear();
  cache.acquire(g);
  EXPECT_EQ(sink.size(), first);

  // A shared-tier hit in a *fresh* worker emits the identical stream a
  // rebuild would — the property batch byte-identity depends on.
  SharedAnalysisCache shared;
  SharedTierScope tier(&shared);
  AnalysisCache builder;
  obs::RemarkSink build_sink;
  build_sink.set_enabled(true);
  {
    ThreadSinkScope s(&build_sink);
    builder.acquire(lang::compile_or_throw(src));  // populates the tier
  }
  AnalysisCache hitter;
  obs::RemarkSink hit_sink;
  hit_sink.set_enabled(true);
  {
    ThreadSinkScope s(&hit_sink);
    hitter.acquire(lang::compile_or_throw(src));  // shared-tier hit
  }
  EXPECT_EQ(shared.size(), 1u);
  EXPECT_EQ(build_sink.snapshot(), hit_sink.snapshot());
  EXPECT_GT(hit_sink.size(), 0u);
}
#endif  // PARCM_OBS_ENABLED

}  // namespace
}  // namespace parcm
