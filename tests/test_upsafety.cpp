#include "analyses/upsafety.hpp"

#include <gtest/gtest.h>

#include "ir/transform_utils.hpp"
#include "lang/lower.hpp"

namespace parcm {
namespace {

struct Ctx {
  Graph g;
  TermTable terms;
  LocalPredicates preds;
  InterleavingInfo itlv;

  explicit Ctx(const char* src)
      : g(lang::compile_or_throw(src)), terms(g), preds(g, terms), itlv(g) {}

  bool upsafe(SafetyVariant v, const std::string& stmt,
              const std::string& term) {
    PackedResult r = compute_upsafety(g, preds, v);
    return r.entry[node_of_statement(g, stmt).index()].test(
        terms.find(g, term).index());
  }
};

TEST(UpSafety, SequentialAvailability) {
  Ctx s("x := a + b; y := a + b; a := 1; z := a + b;");
  EXPECT_FALSE(s.upsafe(SafetyVariant::kRefined, "x := a + b", "a + b"));
  EXPECT_TRUE(s.upsafe(SafetyVariant::kRefined, "y := a + b", "a + b"));
  EXPECT_FALSE(s.upsafe(SafetyVariant::kRefined, "z := a + b", "a + b"));
}

TEST(UpSafety, MustHoldOnAllPaths) {
  Ctx s("if (*) { x := a + b; } else { skip; } y := a + b;");
  EXPECT_FALSE(s.upsafe(SafetyVariant::kRefined, "y := a + b", "a + b"));
}

TEST(UpSafety, BothBranchesEstablish) {
  Ctx s("if (*) { x := a + b; } else { u := a + b; } y := a + b;");
  EXPECT_TRUE(s.upsafe(SafetyVariant::kRefined, "y := a + b", "a + b"));
}

TEST(UpSafety, RecursiveAssignmentKillsOwnAvailability) {
  Ctx s("a := a + b; y := a + b;");
  EXPECT_FALSE(s.upsafe(SafetyVariant::kRefined, "y := a + b", "a + b"));
}

TEST(UpSafety, NaiveExitOfParAvailableFromOneComponent) {
  // Standard (naive) rule: one component establishes, nothing destroys ->
  // exit available; here the refined rule agrees since siblings are clean.
  Ctx s("par { x := a + b; } and { c := 1; } w := a + b;");
  EXPECT_TRUE(s.upsafe(SafetyVariant::kNaive, "w := a + b", "a + b"));
  EXPECT_TRUE(s.upsafe(SafetyVariant::kRefined, "w := a + b", "a + b"));
}

TEST(UpSafety, RefinedExitAcceptsCleanSiblingEstablisher) {
  // The sibling of the destroying component establishes after its own kill;
  // the destroyer-free sibling rule admits it (the establishing component's
  // temporary is valid: all computations after a := 1 yield the same value).
  Ctx s(R"(
    par { x := a + b; } and { a := 1; y := a + b; }
    w := a + b;
  )");
  EXPECT_TRUE(s.upsafe(SafetyVariant::kNaive, "w := a + b", "a + b"));
  EXPECT_TRUE(s.upsafe(SafetyVariant::kRefined, "w := a + b", "a + b"));
}

TEST(UpSafety, RefinedExitRejectsMutuallyDestroyingComponents) {
  // Fig. 6 shape: both components end with a computation (every
  // interleaving leaves a+b available, so the naive exit is up-safe), but
  // each candidate establisher has a destroying sibling — no single
  // component's occurrence pin-points the value, so up-safe_par fails.
  Ctx s(R"(
    par { b := 2; x := a + b; } and { a := 1; y := a + b; }
    w := a + b;
  )");
  EXPECT_TRUE(s.upsafe(SafetyVariant::kNaive, "w := a + b", "a + b"));
  EXPECT_FALSE(s.upsafe(SafetyVariant::kRefined, "w := a + b", "a + b"));
}

TEST(UpSafety, RefinedExitEstablisherMayDestroyItself) {
  // The destroying component itself re-establishes: order within the
  // component is fixed, siblings are clean -> refined exit is up-safe.
  Ctx s(R"(
    par { a := 1; x := a + b; } and { c := 2; }
    w := a + b;
  )");
  EXPECT_TRUE(s.upsafe(SafetyVariant::kRefined, "w := a + b", "a + b"));
}

TEST(UpSafety, InterleavingDestroysInsideComponent) {
  Ctx s("par { x := a + b; y := a + b; } and { b := 1; }");
  EXPECT_FALSE(s.upsafe(SafetyVariant::kRefined, "y := a + b", "a + b"));
  EXPECT_FALSE(s.upsafe(SafetyVariant::kNaive, "y := a + b", "a + b"));
}

TEST(UpSafety, TransparentStatementPassesAvailabilityThrough) {
  Ctx s("x := a + b; par { c := 1; } and { d := 2; } w := a + b;");
  EXPECT_TRUE(s.upsafe(SafetyVariant::kRefined, "w := a + b", "a + b"));
}

TEST(UpSafety, NestedParallelEstablish) {
  Ctx s(R"(
    par {
      par { x := a + b; } and { c := 1; }
    } and {
      d := 2;
    }
    w := a + b;
  )");
  EXPECT_TRUE(s.upsafe(SafetyVariant::kRefined, "w := a + b", "a + b"));
}

TEST(UpSafety, NestedParallelSiblingDestroysOuter) {
  Ctx s(R"(
    par {
      par { x := a + b; } and { c := 1; }
    } and {
      a := 9;
    }
    w := a + b;
  )");
  EXPECT_FALSE(s.upsafe(SafetyVariant::kRefined, "w := a + b", "a + b"));
  EXPECT_FALSE(s.upsafe(SafetyVariant::kNaive, "w := a + b", "a + b"));
}

TEST(UpSafety, LoopPreservesAvailability) {
  Ctx s("x := a + b; while (*) { c := c - 1; } y := a + b;");
  EXPECT_TRUE(s.upsafe(SafetyVariant::kRefined, "y := a + b", "a + b"));
}

TEST(UpSafety, LoopBodyKillDestroysAvailability) {
  Ctx s("x := a + b; while (*) { a := a - 1; } y := a + b;");
  EXPECT_FALSE(s.upsafe(SafetyVariant::kRefined, "y := a + b", "a + b"));
}

}  // namespace
}  // namespace parcm
