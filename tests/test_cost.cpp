#include "semantics/cost.hpp"

#include <gtest/gtest.h>

#include <set>

#include "lang/lower.hpp"
#include "workload/families.hpp"

namespace parcm {
namespace {

TEST(Cost, TrivialAssignmentsAreFree) {
  Graph g = lang::compile_or_throw("x := 1; y := x; skip;");
  FixedOracle o(0);
  CostResult r = execution_time(g, o);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.time, 0u);
  EXPECT_EQ(r.computations, 0u);
}

TEST(Cost, OperatorAssignmentsCostOne) {
  Graph g = lang::compile_or_throw("x := a + b; y := x * 2; z := x;");
  FixedOracle o(0);
  CostResult r = execution_time(g, o);
  EXPECT_EQ(r.time, 2u);
  EXPECT_EQ(r.computations, 2u);
}

TEST(Cost, SequentialCompositionSums) {
  Graph g = families::seq_chain(10, 2);
  FixedOracle o(0);
  CostResult r = execution_time(g, o);
  EXPECT_EQ(r.time, 10u);
}

TEST(Cost, ParallelStatementTakesMax) {
  Graph g = lang::compile_or_throw(R"(
    par { x := a + b; } and { u := c + d; v := c + d; w := c + d; }
    y := a + b;
  )");
  FixedOracle o(0);
  CostResult r = execution_time(g, o);
  // max(1, 3) + 1 = 4; computations count everything: 1 + 3 + 1 = 5.
  EXPECT_EQ(r.time, 4u);
  EXPECT_EQ(r.computations, 5u);
}

TEST(Cost, NestedParallelMax) {
  Graph g = lang::compile_or_throw(R"(
    par {
      par { x := a + b; } and { y := a + b; z := a + b; }
    } and {
      u := c + d;
    }
  )");
  FixedOracle o(0);
  CostResult r = execution_time(g, o);
  // Inner max(1,2) = 2; outer max(2,1) = 2.
  EXPECT_EQ(r.time, 2u);
  EXPECT_EQ(r.computations, 4u);
}

TEST(Cost, TestsAndSkipsAreFree) {
  Graph g = lang::compile_or_throw("if (a < b) { skip; } else { skip; }");
  FixedOracle o(0);
  CostResult r = execution_time(g, o);
  EXPECT_EQ(r.time, 0u);
}

TEST(Cost, LoopOracleDrivesTripCount) {
  Graph g = lang::compile_or_throw("while (*) { x := a + b; } y := 1;");
  for (std::size_t trips : {0u, 1u, 7u}) {
    LoopOracle o(trips);
    CostResult r = execution_time(g, o);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.time, trips);
  }
}

TEST(Cost, FixedOracleZeroLoopsForever) {
  // FixedOracle(0) always re-enters a builder loop -> step bound trips.
  Graph g = lang::compile_or_throw("while (*) { x := a + b; }");
  FixedOracle o(0);
  CostResult r = execution_time(g, o, 1000);
  EXPECT_FALSE(r.ok);
}

TEST(Cost, SeededOracleDeterministic) {
  Graph g = lang::compile_or_throw(R"(
    if (*) { x := a + b; } else { skip; }
    while (*) { y := c + d; }
    z := e + f;
  )");
  SeededOracle o1(99), o2(99);
  CostResult a = execution_time(g, o1);
  CostResult b = execution_time(g, o2);
  ASSERT_TRUE(a.ok && b.ok);
  EXPECT_EQ(a.time, b.time);
  EXPECT_EQ(a.computations, b.computations);
}

TEST(Cost, SeededOracleCoversBothBranches) {
  Graph g = lang::compile_or_throw(
      "if (*) { x := a + b; } else { skip; }");
  std::set<std::uint64_t> times;
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    SeededOracle o(seed);
    times.insert(execution_time(g, o).time);
  }
  EXPECT_EQ(times, (std::set<std::uint64_t>{0, 1}));
}

TEST(Cost, PairedTimesUseSameDecisions) {
  Graph g = lang::compile_or_throw(
      "if (*) { x := a + b; } else { skip; } y := c + d;");
  // Pair the program with itself: identical decisions, identical times.
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    auto pair = paired_execution_times(g, g, seed);
    ASSERT_TRUE(pair.has_value());
    EXPECT_EQ(pair->first.time, pair->second.time);
    EXPECT_EQ(pair->first.computations, pair->second.computations);
  }
}

TEST(Cost, Fig2FamilyBottleneckScaling) {
  for (std::size_t n : {1u, 5u, 9u}) {
    Graph g = families::fig2_family(n);
    FixedOracle o(0);
    CostResult r = execution_time(g, o);
    EXPECT_EQ(r.time, std::max<std::uint64_t>(1, n) + 1);
    EXPECT_EQ(r.computations, n + 2);
  }
}

TEST(Cost, ComputationsCountInterleavingView) {
  // time uses max, computations uses sum: the Fig. 2 distinction.
  Graph g = lang::compile_or_throw(
      "par { x := a + b; } and { y := c + d; }");
  FixedOracle o(0);
  CostResult r = execution_time(g, o);
  EXPECT_EQ(r.time, 1u);
  EXPECT_EQ(r.computations, 2u);
}

}  // namespace
}  // namespace parcm
