#include "motion/pcm.hpp"

#include <gtest/gtest.h>

#include "figures/figures.hpp"
#include "ir/printer.hpp"
#include "ir/transform_utils.hpp"
#include "ir/validate.hpp"
#include "lang/lower.hpp"
#include "semantics/cost.hpp"
#include "semantics/equivalence.hpp"

namespace parcm {
namespace {

EnumerationOptions split_semantics() {
  EnumerationOptions o;
  o.atomic_assignments = false;
  return o;
}

// Insertion nodes of `term` in the parent (root) region.
std::size_t root_inserts(const MotionResult& r, const std::string& term) {
  std::size_t n = 0;
  for (const TermMotion& tm : r.terms) {
    if (term_to_string(r.graph, tm.term_value) != term) continue;
    for (NodeId id : tm.insert_nodes) {
      n += r.graph.node(id).region == r.graph.root_region();
    }
  }
  return n;
}

std::size_t total_inserts(const MotionResult& r, const std::string& term) {
  for (const TermMotion& tm : r.terms) {
    if (term_to_string(r.graph, tm.term_value) == term) {
      return tm.insert_nodes.size();
    }
  }
  return 0;
}

std::size_t total_replaces(const MotionResult& r, const std::string& term) {
  for (const TermMotion& tm : r.terms) {
    if (term_to_string(r.graph, tm.term_value) == term) {
      return tm.replaced.size();
    }
  }
  return 0;
}

TEST(PCM, ValidatesOnAllFigures) {
  for (const char* id :
       {"1", "1h", "2", "3a", "3c", "4", "5", "6", "8", "8n", "9", "9n",
        "10"}) {
    Graph g = lang::compile_or_throw(figures::figure_source(id));
    MotionResult r = parallel_code_motion(g);
    validate_or_throw(r.graph);
    MotionResult rn = naive_parallel_code_motion(g);
    validate_or_throw(rn.graph);
  }
}

TEST(PCM, Fig2KeepsComputationInComponent) {
  Graph g = figures::fig2();
  MotionResult pcm = parallel_code_motion(g);
  // No insertion of c+b in sequential code.
  EXPECT_EQ(root_inserts(pcm, "c + b"), 0u);
  EXPECT_EQ(total_inserts(pcm, "c + b"), 1u);
  EXPECT_EQ(total_replaces(pcm, "c + b"), 2u);

  MotionResult naive = naive_parallel_code_motion(g);
  // The naive placement hoists into sequential code.
  EXPECT_EQ(root_inserts(naive, "c + b"), 1u);
}

TEST(PCM, Fig2ExecutionalOptimalityGap) {
  Graph g = figures::fig2();
  MotionResult pcm = parallel_code_motion(g);
  MotionResult naive = naive_parallel_code_motion(g);
  FixedOracle o1(0), o2(0), o3(0);
  CostResult orig = execution_time(g, o1);
  CostResult naive_t = execution_time(naive.graph, o2);
  CostResult pcm_t = execution_time(pcm.graph, o3);
  // Original: max(1,3) + 1 = 4. Naive: 1 + max(0,3) + 0 = 4 (no gain).
  // PCM: max(1,3) + 0 = 3.
  EXPECT_EQ(orig.time, 4u);
  EXPECT_EQ(naive_t.time, 4u);
  EXPECT_EQ(pcm_t.time, 3u);
  // Both transformations are computationally equal (the paper's point:
  // counting computations cannot separate them).
  EXPECT_EQ(naive_t.computations, pcm_t.computations);
  EXPECT_LT(naive_t.computations, orig.computations);
}

TEST(PCM, Fig3aNaiveHoistIsStillConsistentButPcmRefuses) {
  Graph g = figures::fig3a();
  MotionResult naive = naive_parallel_code_motion(g);
  // The naive transformation hoists c+b above the par (= Fig. 3b) and stays
  // sequentially consistent on this program.
  EXPECT_EQ(root_inserts(naive, "c + b"), 1u);
  auto verdict = check_sequential_consistency(g, naive.graph, {},
                                              split_semantics());
  ASSERT_TRUE(verdict.exhausted);
  EXPECT_TRUE(verdict.sequentially_consistent);

  // PCM refuses the hoist (profitability: without runtime information the
  // motion is not guaranteed profitable, Sec. 3.3.2).
  MotionResult pcm = parallel_code_motion(g);
  EXPECT_EQ(root_inserts(pcm, "c + b"), 0u);
  auto pv = check_sequential_consistency(g, pcm.graph, {}, split_semantics());
  ASSERT_TRUE(pv.exhausted);
  EXPECT_TRUE(pv.sequentially_consistent);
}

TEST(PCM, Fig3dHoistLosesSequentialConsistency) {
  // The paper's Fig. 3(d): the pure hoist of both recursive occurrences —
  // inconsistent under both assignment semantics.
  Graph g = figures::fig3c();
  Graph hoisted = figures::fig3d();
  for (bool atomic : {true, false}) {
    EnumerationOptions opts;
    opts.atomic_assignments = atomic;
    auto verdict =
        check_sequential_consistency(g, hoisted, all_var_names(g), opts);
    ASSERT_TRUE(verdict.exhausted);
    EXPECT_FALSE(verdict.sequentially_consistent) << "atomic=" << atomic;
    EXPECT_TRUE(verdict.violation_witness.has_value());
  }

  // PCM never hoists c+b out and stays consistent.
  MotionResult pcm = parallel_code_motion(g);
  auto pv = check_sequential_consistency(g, pcm.graph, {}, split_semantics());
  ASSERT_TRUE(pv.exhausted);
  EXPECT_TRUE(pv.sequentially_consistent);
  EXPECT_EQ(root_inserts(pcm, "c + b"), 0u);
}

TEST(PCM, Fig3bSingleRecursiveHoistStaysConsistent) {
  // The paper's Fig. 3(b): with only node 5 recursive the hoist is still
  // sequentially consistent (behaviours shrink).
  Graph g = figures::fig3a();
  Graph hoisted = figures::fig3b();
  auto verdict = check_sequential_consistency(g, hoisted, all_var_names(g));
  ASSERT_TRUE(verdict.exhausted);
  EXPECT_TRUE(verdict.sequentially_consistent);
  EXPECT_FALSE(verdict.behaviours_preserved);  // z = 8 is gone
}

TEST(PCM, Fig3cNaiveViolationIsAtomicToo) {
  // The paper: the witness is "impossible for any interleaving of (c),
  // regardless of considering assignments atomic or not".
  Graph g = figures::fig3c();
  MotionResult naive = naive_parallel_code_motion(g);
  auto verdict = check_sequential_consistency(g, naive.graph);
  ASSERT_TRUE(verdict.exhausted);
  EXPECT_FALSE(verdict.sequentially_consistent);
}

TEST(PCM, Fig4IndividualHoistsConsistentCombinationIsNot) {
  Graph g = figures::fig4();
  std::vector<std::string> observed = all_var_names(g);
  // (b) and (c): individually sequentially consistent.
  for (Graph individual : {figures::fig4b(), figures::fig4c()}) {
    auto v = check_sequential_consistency(g, individual, observed);
    ASSERT_TRUE(v.exhausted);
    EXPECT_TRUE(v.sequentially_consistent);
  }
  // (d): the combination forces x = 5 — impossible for (a) under either
  // semantics.
  for (bool atomic : {true, false}) {
    EnumerationOptions opts;
    opts.atomic_assignments = atomic;
    auto v = check_sequential_consistency(g, figures::fig4d(), observed, opts);
    ASSERT_TRUE(v.exhausted);
    EXPECT_FALSE(v.sequentially_consistent) << "atomic=" << atomic;
  }

  MotionResult pcm = parallel_code_motion(g);
  auto pv = check_sequential_consistency(g, pcm.graph, {}, split_semantics());
  ASSERT_TRUE(pv.exhausted);
  EXPECT_TRUE(pv.sequentially_consistent);
}

TEST(PCM, Fig4PrivatizationSplitsTemporaries) {
  Graph g = figures::fig4();
  MotionResult pcm = parallel_code_motion(g);
  // The statement contains a destroyer of a+b (the recursive assignment),
  // so in-component temporaries must be privatized.
  bool privatized = false;
  for (const TermMotion& tm : pcm.terms) {
    if (term_to_string(pcm.graph, tm.term_value) == "a + b") {
      privatized = !tm.private_temps.empty();
    }
  }
  EXPECT_TRUE(privatized);
}

TEST(PCM, Fig6NaiveCorruptsSemantics) {
  Graph g = figures::fig7();
  MotionResult naive = naive_parallel_code_motion(g);
  // Fig. 7: the naive earliest placement inserts before the parallel
  // statement...
  EXPECT_GE(root_inserts(naive, "a + b"), 1u);
  // ...and the suppressed initialization after the join corrupts the
  // semantics.
  auto verdict = check_sequential_consistency(g, naive.graph, {},
                                              split_semantics());
  ASSERT_TRUE(verdict.exhausted);
  EXPECT_FALSE(verdict.sequentially_consistent);
}

TEST(PCM, Fig6PcmSoundAndLocal) {
  Graph g = figures::fig7();
  MotionResult pcm = parallel_code_motion(g);
  auto verdict = check_sequential_consistency(g, pcm.graph, {},
                                              split_semantics());
  ASSERT_TRUE(verdict.exhausted);
  EXPECT_TRUE(verdict.sequentially_consistent);
}

TEST(PCM, Fig8UpSafeExitNeedsNoInitialization) {
  Graph g = figures::fig8();
  MotionResult pcm = parallel_code_motion(g);
  // w := a + b after the join is replaced...
  EXPECT_EQ(total_replaces(pcm, "a + b"), 2u);  // x and w
  // ...with no insertion in the root region (covered by the component).
  EXPECT_EQ(root_inserts(pcm, "a + b"), 0u);
  auto verdict = check_sequential_consistency(g, pcm.graph, {},
                                              split_semantics());
  ASSERT_TRUE(verdict.exhausted);
  EXPECT_TRUE(verdict.sequentially_consistent);
}

TEST(PCM, Fig8NegativeSiblingDestroys) {
  Graph g = figures::fig8_negative();
  MotionResult pcm = parallel_code_motion(g);
  // The destroying sibling forces an initialization for w after the join
  // (at the earliest point in the root region).
  EXPECT_GE(root_inserts(pcm, "a + b"), 1u);
  auto verdict = check_sequential_consistency(g, pcm.graph, {},
                                              split_semantics());
  ASSERT_TRUE(verdict.exhausted);
  EXPECT_TRUE(verdict.sequentially_consistent);
}

TEST(PCM, Fig9HoistsOnlyWhenAllComponentsCompute) {
  Graph pos = figures::fig9();
  MotionResult rp = parallel_code_motion(pos);
  EXPECT_EQ(root_inserts(rp, "a + b"), 1u);
  EXPECT_EQ(total_replaces(rp, "a + b"), 4u);

  Graph neg = figures::fig9_negative();
  MotionResult rn = parallel_code_motion(neg);
  EXPECT_EQ(root_inserts(rn, "a + b"), 0u);
}

TEST(PCM, Fig9ExecutionalImprovement) {
  Graph pos = figures::fig9();
  MotionResult rp = parallel_code_motion(pos);
  FixedOracle o1(0), o2(0);
  CostResult orig = execution_time(pos, o1);
  CostResult moved = execution_time(rp.graph, o2);
  // max(1,1,1) + 1 = 2 -> 1 + max(0,0,0) + 0 = 1.
  EXPECT_EQ(orig.time, 2u);
  EXPECT_EQ(moved.time, 1u);
}

TEST(PCM, Fig10TermPlacement) {
  Graph g = figures::fig10();
  MotionResult pcm = parallel_code_motion(g);
  validate_or_throw(pcm.graph);

  // a + b: hoisted to "node 1" — exactly one insertion, in the root region,
  // replacing p, q and t.
  EXPECT_EQ(total_inserts(pcm, "a + b"), 1u);
  EXPECT_EQ(root_inserts(pcm, "a + b"), 1u);
  EXPECT_EQ(total_replaces(pcm, "a + b"), 3u);

  // e + f: moved across the transparent parallel statement — one root
  // insertion covering both occurrences.
  EXPECT_EQ(total_inserts(pcm, "e + f"), 1u);
  EXPECT_EQ(root_inserts(pcm, "e + f"), 1u);
  EXPECT_EQ(total_replaces(pcm, "e + f"), 2u);

  // g + h / j + k: loop invariants stay inside their components.
  EXPECT_EQ(total_inserts(pcm, "g + h"), 1u);
  EXPECT_EQ(root_inserts(pcm, "g + h"), 0u);
  EXPECT_EQ(total_replaces(pcm, "g + h"), 2u);
  EXPECT_EQ(total_inserts(pcm, "j + k"), 1u);
  EXPECT_EQ(root_inserts(pcm, "j + k"), 0u);

  // c + d: remains inside the parallel statement.
  EXPECT_EQ(total_inserts(pcm, "c + d"), 1u);
  EXPECT_EQ(root_inserts(pcm, "c + d"), 0u);
  EXPECT_EQ(total_replaces(pcm, "c + d"), 1u);
}

TEST(PCM, Fig10LoopBodiesBecomeFree) {
  Graph g = figures::fig10();
  MotionResult pcm = parallel_code_motion(g);
  for (std::size_t trips : {0u, 1u, 5u, 20u}) {
    LoopOracle l1(trips), l2(trips);
    CostResult orig = execution_time(g, l1);
    CostResult moved = execution_time(pcm.graph, l2);
    EXPECT_LE(moved.time, orig.time) << trips;
    if (trips >= 2) EXPECT_LT(moved.time, orig.time) << trips;
  }
}

TEST(PCM, ExecutionalImprovementIsPerPath) {
  for (const char* id : {"1", "1h", "2", "3a", "3c", "4", "6", "8", "8n",
                         "9", "9n", "10"}) {
    Graph g = lang::compile_or_throw(figures::figure_source(id));
    MotionResult pcm = parallel_code_motion(g);
    for (std::uint64_t seed = 0; seed < 24; ++seed) {
      auto pair = paired_execution_times(g, pcm.graph, seed);
      ASSERT_TRUE(pair.has_value()) << id << " seed " << seed;
      EXPECT_LE(pair->second.time, pair->first.time)
          << "figure " << id << " seed " << seed;
    }
  }
}

TEST(PCM, SequentialConsistencyOnAllSmallFigures) {
  for (const char* id :
       {"1", "1h", "3a", "3c", "4", "5", "8", "8n", "9", "9n"}) {
    Graph g = lang::compile_or_throw(figures::figure_source(id));
    MotionResult pcm = parallel_code_motion(g);
    auto verdict = check_sequential_consistency(g, pcm.graph, {},
                                                split_semantics());
    ASSERT_TRUE(verdict.exhausted) << id;
    EXPECT_TRUE(verdict.sequentially_consistent) << id;
  }
}

}  // namespace
}  // namespace parcm
