#include "semantics/equivalence.hpp"

#include <gtest/gtest.h>

#include "lang/lower.hpp"

namespace parcm {
namespace {

TEST(Equivalence, IdenticalProgramsAreConsistent) {
  Graph g = lang::compile_or_throw("par { x := 1; } and { x := 2; }");
  auto v = check_sequential_consistency(g, g);
  EXPECT_TRUE(v.exhausted);
  EXPECT_TRUE(v.sequentially_consistent);
  EXPECT_TRUE(v.behaviours_preserved);
  EXPECT_EQ(v.original_behaviours, v.transformed_behaviours);
}

TEST(Equivalence, RenamedTemporariesIgnored) {
  Graph a = lang::compile_or_throw("x := a + b; y := x;");
  Graph b = lang::compile_or_throw("h := a + b; x := h; y := x;");
  // Observed variables default to a's variables; h is ignored.
  auto v = check_sequential_consistency(a, b);
  EXPECT_TRUE(v.sequentially_consistent);
  EXPECT_TRUE(v.behaviours_preserved);
}

TEST(Equivalence, DetectsNewBehaviour) {
  Graph a = lang::compile_or_throw("x := 1;");
  Graph b = lang::compile_or_throw("if (*) { x := 1; } else { x := 2; }");
  auto v = check_sequential_consistency(a, b);
  EXPECT_FALSE(v.sequentially_consistent);
  ASSERT_TRUE(v.violation_witness.has_value());
  // The witness is the x = 2 final state.
  EXPECT_EQ((*v.violation_witness)[0], 2);
}

TEST(Equivalence, DetectsLostBehaviourAsUnpreserved) {
  Graph a = lang::compile_or_throw("if (*) { x := 1; } else { x := 2; }");
  Graph b = lang::compile_or_throw("x := 1;");
  auto v = check_sequential_consistency(a, b);
  EXPECT_TRUE(v.sequentially_consistent);  // subset holds
  EXPECT_FALSE(v.behaviours_preserved);
}

TEST(Equivalence, ExplicitObservedList) {
  Graph a = lang::compile_or_throw("x := 1; y := 2;");
  Graph b = lang::compile_or_throw("x := 1; y := 99;");
  auto only_x = check_sequential_consistency(a, b, {"x"});
  EXPECT_TRUE(only_x.sequentially_consistent);
  auto both = check_sequential_consistency(a, b, {"x", "y"});
  EXPECT_FALSE(both.sequentially_consistent);
}

TEST(Equivalence, SplitSemanticsOption) {
  // The hoisted recursive pair is consistent under split semantics only.
  Graph a = lang::compile_or_throw("par { x := x + 1; } and { x := x + 1; }");
  Graph b = lang::compile_or_throw(
      "h := x + 1; par { x := h; } and { x := x + 1; }");
  auto atomic = check_sequential_consistency(a, b);
  EXPECT_FALSE(atomic.sequentially_consistent);
  EnumerationOptions split;
  split.atomic_assignments = false;
  auto relaxed = check_sequential_consistency(a, b, {}, split);
  EXPECT_TRUE(relaxed.sequentially_consistent);
}

TEST(Equivalence, AllVarNamesOrder) {
  Graph g = lang::compile_or_throw("b := 1; a := 2;");
  auto names = all_var_names(g);
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "b");
  EXPECT_EQ(names[1], "a");
}

TEST(Equivalence, ExhaustedFlagPropagates) {
  Graph g = lang::compile_or_throw("while (*) { x := x + 1; }");
  EnumerationOptions opts;
  opts.max_states = 100;
  auto v = check_sequential_consistency(g, g, {}, opts);
  EXPECT_FALSE(v.exhausted);
}

}  // namespace
}  // namespace parcm
