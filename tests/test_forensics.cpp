// Forensic failure bundles: every failure class (timeout, exception,
// oracle divergence) in a multi-worker batch must produce a
// parcm-forensic-v1 bundle whose replay reproduces the recorded outcome
// byte-for-byte — while the batch payload itself stays byte-identical
// whether or not the forensic side channel and flight recorder are armed.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "driver/driver.hpp"
#include "driver/forensic.hpp"
#include "lang/unparse.hpp"
#include "obs/flight.hpp"
#include "obs/json.hpp"
#include "verify/fuzz.hpp"

namespace parcm {
namespace {

namespace fs = std::filesystem;

// A fresh unique directory under the build tree's temp space.
fs::path fresh_dir(const std::string& tag) {
  fs::path dir = fs::temp_directory_path() /
                 ("parcm_forensics_" + tag + "_" +
                  std::to_string(static_cast<unsigned>(::getpid())));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::vector<fs::path> bundle_paths(const fs::path& dir) {
  std::vector<fs::path> out;
  for (const fs::directory_entry& e : fs::directory_iterator(dir)) {
    if (e.path().extension() == ".json") out.push_back(e.path());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t count_diverged(const driver::BatchReport& report) {
  std::size_t n = 0;
  for (const driver::ProgramResult& r : report.programs) {
    if (r.status == driver::JobStatus::kDone && !r.validation_ok) ++n;
  }
  return n;
}

driver::Manifest gen_manifest(std::size_t count, std::uint64_t seed) {
  RandomProgramOptions gen = verify::default_fuzz_gen();
  return driver::Manifest::lazy(count, "gen" + std::to_string(seed),
                                [seed, gen](std::size_t i) {
                                  return lang::to_source(
                                      verify::fuzz_program(seed, i, gen));
                                });
}

TEST(Forensics, DivergenceBundlesReplayByteForByte) {
  fs::path dir = fresh_dir("diverge");
  driver::BatchOptions opt;
  opt.jobs = 8;
  opt.validate = true;
  opt.inject_mode = "naive";
  opt.budget.max_states = 32768;
  opt.forensics_dir = dir.string();
  driver::BatchReport report = driver::run_batch(gen_manifest(12, 42), opt);
  const std::size_t diverged = count_diverged(report);
  ASSERT_GT(diverged, 0u)
      << "injected naive placement should diverge on the gen corpus";

  std::vector<fs::path> bundles = bundle_paths(dir);
  ASSERT_EQ(bundles.size(), diverged);
  for (const fs::path& p : bundles) {
    driver::ReplayResult rr = driver::replay_bundle(p.string());
    ASSERT_TRUE(rr.loaded) << p << ": " << rr.error;
    EXPECT_EQ(rr.reason, "oracle-divergence") << p;
    EXPECT_TRUE(rr.match) << p << "\n-- recorded --\n"
                          << rr.expected << "\n-- replayed --\n"
                          << rr.actual;
  }
  fs::remove_all(dir);
}

TEST(Forensics, TimeoutBundlesReplayByteForByte) {
  fs::path dir = fresh_dir("timeout");
  driver::BatchOptions opt;
  opt.jobs = 8;
  // Every deadline check fires immediately — deterministically, in the
  // original run and in the replay alike.
  opt.timeout_seconds = 1e-9;
  opt.forensics_dir = dir.string();
  driver::BatchReport report = driver::run_batch(gen_manifest(8, 7), opt);
  ASSERT_GT(report.totals.timed_out, 0u);

  std::vector<fs::path> bundles = bundle_paths(dir);
  ASSERT_EQ(bundles.size(), report.totals.timed_out);
  for (const fs::path& p : bundles) {
    driver::ReplayResult rr = driver::replay_bundle(p.string());
    ASSERT_TRUE(rr.loaded) << p << ": " << rr.error;
    EXPECT_EQ(rr.reason, "timeout") << p;
    EXPECT_TRUE(rr.match) << p << "\n-- recorded --\n"
                          << rr.expected << "\n-- replayed --\n"
                          << rr.actual;
  }
  fs::remove_all(dir);
}

TEST(Forensics, ExceptionBundlesReplayByteForByte) {
  fs::path dir = fresh_dir("exception");
  driver::Manifest manifest = driver::Manifest::from_sources({
      {"ok", "v0 := 1;\n"},
      {"broken-1", "this is not a parcm program {{{"},
      {"broken-2", "par { v0 := 1; } and { oops"},
  });
  driver::BatchOptions opt;
  opt.jobs = 8;
  opt.forensics_dir = dir.string();
  driver::BatchReport report = driver::run_batch(manifest, opt);
  ASSERT_EQ(report.totals.failed, 2u);

  std::vector<fs::path> bundles = bundle_paths(dir);
  ASSERT_EQ(bundles.size(), 2u);
  for (const fs::path& p : bundles) {
    driver::ReplayResult rr = driver::replay_bundle(p.string());
    ASSERT_TRUE(rr.loaded) << p << ": " << rr.error;
    EXPECT_EQ(rr.reason, "exception") << p;
    EXPECT_TRUE(rr.match) << p << "\n-- recorded --\n"
                          << rr.expected << "\n-- replayed --\n"
                          << rr.actual;
  }
  fs::remove_all(dir);
}

TEST(Forensics, MixedFailureStressEveryBundleReplays) {
  // The acceptance scenario: one --jobs 8 batch containing all three
  // failure classes at once. Parse failures and divergences mix with clean
  // programs; every emitted bundle must replay.
  fs::path dir = fresh_dir("mixed");
  driver::Manifest manifest = gen_manifest(10, 11);
  manifest.jobs.push_back({});
  manifest.jobs.back().id = "broken";
  manifest.jobs.back().source = "definitely not parsable (((";
  driver::BatchOptions opt;
  opt.jobs = 8;
  opt.validate = true;
  opt.inject_mode = "naive";
  opt.budget.max_states = 32768;
  opt.forensics_dir = dir.string();
  driver::BatchReport report = driver::run_batch(manifest, opt);
  const std::size_t diverged = count_diverged(report);
  ASSERT_GT(report.totals.failed, 0u);
  ASSERT_GT(diverged, 0u);

  std::vector<fs::path> bundles = bundle_paths(dir);
  ASSERT_EQ(bundles.size(), report.totals.failed + diverged);
  for (const fs::path& p : bundles) {
    driver::ReplayResult rr = driver::replay_bundle(p.string());
    ASSERT_TRUE(rr.loaded) << p << ": " << rr.error;
    EXPECT_TRUE(rr.match) << p << "\n-- recorded --\n"
                          << rr.expected << "\n-- replayed --\n"
                          << rr.actual;
  }
  fs::remove_all(dir);
}

TEST(Forensics, PayloadIsByteIdenticalWithRecorderAndForensicsArmed) {
  // Arming the flight recorder + bundle side channel must not perturb the
  // batch payload: forensics are observers, never participants.
  driver::Manifest manifest = gen_manifest(12, 42);
  driver::BatchOptions plain;
  plain.jobs = 4;
  plain.validate = true;
  plain.inject_mode = "naive";
  plain.budget.max_states = 32768;
  std::string base = driver::run_batch(manifest, plain)
                         .to_json(false, /*include_timing=*/false);

  fs::path dir = fresh_dir("identity");
  driver::BatchOptions armed = plain;
  armed.jobs = 8;
  armed.forensics_dir = dir.string();
  obs::flight().set_enabled(true);
  std::string hot = driver::run_batch(manifest, armed)
                        .to_json(false, /*include_timing=*/false);
  obs::flight().set_enabled(false);
  obs::flight().clear();
  EXPECT_EQ(base, hot);
  EXPECT_FALSE(bundle_paths(dir).empty());
  fs::remove_all(dir);
}

TEST(Forensics, BundleJsonIsValidAndSelfContained) {
  fs::path dir = fresh_dir("schema");
  driver::BatchOptions opt;
  opt.jobs = 2;
  opt.validate = true;
  opt.inject_mode = "naive";
  opt.budget.max_states = 32768;
  opt.forensics_dir = dir.string();
  obs::flight().set_enabled(true);
  driver::run_batch(gen_manifest(12, 42), opt);
  obs::flight().set_enabled(false);
  obs::flight().clear();

  std::vector<fs::path> bundles = bundle_paths(dir);
  ASSERT_FALSE(bundles.empty());
  std::ifstream in(bundles[0]);
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();
  EXPECT_TRUE(obs::json_valid(json));
  std::optional<obs::JsonValue> doc = obs::json_parse(json);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->get_or("schema").as_string(), "parcm-forensic-v1");
  EXPECT_EQ(doc->get_or("reason").as_string(), "oracle-divergence");
  // Self-contained: source, config, outcome, recorder events all inline.
  EXPECT_FALSE(doc->get_or("source").as_string().empty());
  EXPECT_EQ(doc->get_or("config").get_or("inject_mode").as_string(),
            "naive");
  EXPECT_EQ(doc->get_or("outcome").get_or("status").as_string(), "done");
  EXPECT_TRUE(doc->get_or("flight").is_array());
#if PARCM_OBS_ENABLED
  // The recorder macros compile out under PARCM_OBS=OFF, leaving a valid
  // but empty event tail; with instrumentation on the tail must be live.
  EXPECT_FALSE(doc->get_or("flight").array().empty());
#endif
  fs::remove_all(dir);
}

TEST(Forensics, ReplayRejectsGarbage) {
  driver::ReplayResult rr = driver::replay_bundle("/nonexistent/bundle.json");
  EXPECT_FALSE(rr.loaded);
  EXPECT_FALSE(rr.error.empty());

  fs::path dir = fresh_dir("garbage");
  fs::path not_a_bundle = dir / "x.json";
  std::ofstream(not_a_bundle) << "{\"schema\": \"parcm-batch-v1\"}";
  rr = driver::replay_bundle(not_a_bundle.string());
  EXPECT_FALSE(rr.loaded);
  EXPECT_NE(rr.error.find("parcm-forensic-v1"), std::string::npos);
  fs::remove_all(dir);
}

#ifdef PARCM_OPT_BIN
TEST(Forensics, ReplayCliMatchesInProcessReplay) {
  fs::path dir = fresh_dir("cli");
  driver::BatchOptions opt;
  opt.jobs = 4;
  opt.validate = true;
  opt.inject_mode = "naive";
  opt.budget.max_states = 32768;
  opt.forensics_dir = dir.string();
  driver::run_batch(gen_manifest(12, 42), opt);
  std::vector<fs::path> bundles = bundle_paths(dir);
  ASSERT_FALSE(bundles.empty());
  std::string cmd = std::string(PARCM_OPT_BIN) + " --replay " +
                    bundles[0].string() + " > /dev/null 2>&1";
  EXPECT_EQ(std::system(cmd.c_str()), 0) << cmd;
  fs::remove_all(dir);
}
#endif

}  // namespace
}  // namespace parcm
