#include "analyses/earliest.hpp"

#include <gtest/gtest.h>

#include "ir/transform_utils.hpp"
#include "lang/lower.hpp"

namespace parcm {
namespace {

struct Ctx {
  Graph g;
  TermTable terms;
  LocalPredicates preds;
  InterleavingInfo itlv;
  SafetyInfo safety;
  MotionPredicates mp;

  Ctx(const char* src, SafetyVariant v = SafetyVariant::kRefined)
      : g([&] {
          Graph gr = lang::compile_or_throw(src);
          split_join_edges(gr);
          return gr;
        }()),
        terms(g),
        preds(g, terms),
        itlv(g),
        safety(compute_safety(g, preds, v)),
        mp(compute_motion_predicates(g, preds, safety)) {}

  bool earliest(const std::string& stmt, const std::string& term) {
    return mp.earliest[node_of_statement(g, stmt).index()].test(
        terms.find(g, term).index());
  }
  bool replace(const std::string& stmt, const std::string& term) {
    return mp.replace[node_of_statement(g, stmt).index()].test(
        terms.find(g, term).index());
  }
  std::vector<NodeId> earliest_nodes(const std::string& term) {
    TermId t = terms.find(g, term);
    std::vector<NodeId> out;
    for (NodeId n : g.all_nodes()) {
      if (mp.earliest[n.index()].test(t.index())) out.push_back(n);
    }
    return out;
  }
};

TEST(Earliest, HoistAboveBranchWhenBothSidesCompute) {
  Ctx s("c := 0; if (*) { x := a + b; } else { u := a + b; } skip;");
  // Earliest is right after the last operand definition — here nothing
  // defines a or b, so the start node itself is earliest.
  auto points = s.earliest_nodes("a + b");
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0], s.g.start());
  EXPECT_TRUE(s.replace("x := a + b", "a + b"));
  EXPECT_TRUE(s.replace("u := a + b", "a + b"));
}

TEST(Earliest, BlockedByOperandDefinition) {
  Ctx s("a := 1; x := a + b;");
  auto points = s.earliest_nodes("a + b");
  ASSERT_EQ(points.size(), 1u);
  // a := 1 is not transparent; the computation itself is earliest.
  EXPECT_EQ(points[0], node_of_statement(s.g, "x := a + b"));
}

TEST(Earliest, PartialRedundancyNotHoistedAboveBranch) {
  Ctx s("if (*) { x := a + b; } else { skip; } y := a + b;");
  // The branch node is not down-safe (else path computes a+b only at y...
  // actually it does: every path reaches y). The start IS down-safe here.
  // Use an extra else-side kill to pin the earliest points down instead.
  EXPECT_TRUE(s.replace("y := a + b", "a + b"));
}

TEST(Earliest, KillInOneBranchForcesLateInsertion) {
  Ctx s("if (*) { x := a + b; } else { a := 1; } y := a + b;");
  // Down-safety of a+b does not hold above the branch (else kills first).
  auto points = s.earliest_nodes("a + b");
  // Earliest at the then-occurrence and again after the else kill (the
  // synthetic join edge node or y itself, depending on safety of preds).
  EXPECT_FALSE(points.empty());
  for (NodeId n : points) {
    EXPECT_NE(n, s.g.start());
  }
  EXPECT_TRUE(s.replace("x := a + b", "a + b"));
  EXPECT_TRUE(s.replace("y := a + b", "a + b"));
}

TEST(Earliest, UpSafeOccurrenceReplacedWithoutInsertion) {
  Ctx s("x := a + b; y := a + b;");
  auto points = s.earliest_nodes("a + b");
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0], s.g.start());
  EXPECT_TRUE(s.replace("y := a + b", "a + b"));
  // y is covered purely by up-safety: no earliest point at y.
  EXPECT_FALSE(s.earliest("y := a + b", "a + b"));
}

TEST(Earliest, ParallelComponentEntryInsertion) {
  // Fig. 2: c+b is earliest at the component entry, not above the par.
  Ctx s(R"(
    b := 1; c := 2;
    par { x := c + b; } and { u := u + 1; }
    d := c + b;
  )");
  TermId cb = s.terms.find(s.g, "c + b");
  const ParStmt& stmt = s.g.par_stmt(ParStmtId(0));
  // Not earliest at or above ParBegin.
  EXPECT_FALSE(s.mp.earliest[stmt.begin.index()].test(cb.index()));
  // Earliest somewhere inside the first component.
  bool inside = false;
  for (NodeId n : s.g.nodes_in_region_recursive(stmt.components[0])) {
    if (s.mp.earliest[n.index()].test(cb.index())) inside = true;
  }
  EXPECT_TRUE(inside);
  // The use after the join is replaced via up-safe_par, with no insertion
  // at or after the ParEnd.
  EXPECT_TRUE(s.replace("d := c + b", "c + b"));
  EXPECT_FALSE(s.mp.earliest[stmt.end.index()].test(cb.index()));
  EXPECT_FALSE(s.earliest("d := c + b", "c + b"));
}

TEST(Earliest, AllComponentsComputingHoistsAbovePar) {
  // Fig. 9: hoist above the parallel statement.
  Ctx s(R"(
    par { x := a + b; } and { y := a + b; }
  )");
  auto points = s.earliest_nodes("a + b");
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0], s.g.start());
}

TEST(Earliest, ReplaceRequiresSafety) {
  // A computation is always down-safe at itself (non-recursive), hence
  // always replaced.
  Ctx s("x := a + b; a := 1; y := a + b;");
  EXPECT_TRUE(s.replace("x := a + b", "a + b"));
  EXPECT_TRUE(s.replace("y := a + b", "a + b"));
}

TEST(Earliest, RecursiveInParallelNeitherInsertedNorReplaced) {
  Ctx s(R"(
    c := 2; b := 3;
    par { c := c + b; } and { u := 1; }
  )");
  EXPECT_FALSE(s.replace("c := c + b", "c + b"));
  EXPECT_TRUE(s.earliest_nodes("c + b").empty());
}

TEST(Earliest, RecursiveSequentialStillMoved) {
  Ctx s("c := 2; b := 3; c := c + b;");
  EXPECT_TRUE(s.replace("c := c + b", "c + b"));
  auto points = s.earliest_nodes("c + b");
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0], node_of_statement(s.g, "c := c + b"));
}

TEST(Earliest, NaiveVariantHoistsAbovePar) {
  Ctx s(R"(
    b := 1; c := 2;
    par { x := c + b; } and { u := u + 1; }
    d := c + b;
  )",
          SafetyVariant::kNaive);
  const ParStmt& stmt = s.g.par_stmt(ParStmtId(0));
  EXPECT_TRUE(s.mp.earliest[stmt.begin.index()].test(
      s.terms.find(s.g, "c + b").index()));
}

}  // namespace
}  // namespace parcm
