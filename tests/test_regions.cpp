#include "ir/regions.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "lang/lower.hpp"

namespace parcm {
namespace {

bool contains(const std::vector<NodeId>& v, NodeId n) {
  return std::find(v.begin(), v.end(), n) != v.end();
}

NodeId assign_node(const Graph& g, const std::string& lhs) {
  for (NodeId n : g.all_nodes()) {
    if (g.node(n).kind == NodeKind::kAssign &&
        g.var_name(g.node(n).lhs) == lhs) {
      return n;
    }
  }
  ADD_FAILURE() << "no assignment to " << lhs;
  return NodeId();
}

TEST(Interleaving, SequentialProgramHasNone) {
  Graph g = lang::compile_or_throw("x := 1; y := 2;");
  InterleavingInfo itlv(g);
  for (NodeId n : g.all_nodes()) EXPECT_TRUE(itlv.preds(g, n).empty());
}

TEST(Interleaving, SiblingNodesAreMutualPreds) {
  Graph g = lang::compile_or_throw(R"(
    par { x := 1; } and { y := 2; }
  )");
  InterleavingInfo itlv(g);
  NodeId x = assign_node(g, "x");
  NodeId y = assign_node(g, "y");
  EXPECT_TRUE(contains(itlv.preds(g, x), y));
  EXPECT_TRUE(contains(itlv.preds(g, y), x));
  // Same-component nodes are not interleaving predecessors.
  EXPECT_FALSE(contains(itlv.preds(g, x), x));
  // Top-level nodes have no interleaving predecessors.
  EXPECT_TRUE(itlv.preds(g, g.start()).empty());
  EXPECT_TRUE(itlv.preds(g, g.par_stmt(ParStmtId(0)).begin).empty());
}

TEST(Interleaving, SameComponentSequentialNodesNotInterleaved) {
  Graph g = lang::compile_or_throw(R"(
    par { x := 1; y := 2; } and { z := 3; }
  )");
  InterleavingInfo itlv(g);
  NodeId x = assign_node(g, "x");
  NodeId y = assign_node(g, "y");
  NodeId z = assign_node(g, "z");
  EXPECT_FALSE(contains(itlv.preds(g, y), x));
  EXPECT_TRUE(contains(itlv.preds(g, y), z));
  EXPECT_TRUE(contains(itlv.preds(g, z), x));
  EXPECT_TRUE(contains(itlv.preds(g, z), y));
}

TEST(Interleaving, NestedParSeesOuterSiblings) {
  Graph g = lang::compile_or_throw(R"(
    par {
      par { a := 1; } and { b := 2; }
    } and {
      c := 3;
    }
  )");
  InterleavingInfo itlv(g);
  NodeId a = assign_node(g, "a");
  NodeId b = assign_node(g, "b");
  NodeId c = assign_node(g, "c");
  // a interleaves with its inner sibling b and with the outer sibling c.
  EXPECT_TRUE(contains(itlv.preds(g, a), b));
  EXPECT_TRUE(contains(itlv.preds(g, a), c));
  // c interleaves with everything in the first outer component, including
  // the nested ParBegin/ParEnd.
  EXPECT_TRUE(contains(itlv.preds(g, c), a));
  EXPECT_TRUE(contains(itlv.preds(g, c), b));
  ParStmtId inner = g.pfg(a);
  EXPECT_TRUE(contains(itlv.preds(g, c), g.par_stmt(inner).begin));
}

TEST(Interleaving, ThreeComponents) {
  Graph g = lang::compile_or_throw(R"(
    par { x := 1; } and { y := 2; } and { z := 3; }
  )");
  InterleavingInfo itlv(g);
  NodeId x = assign_node(g, "x");
  NodeId y = assign_node(g, "y");
  NodeId z = assign_node(g, "z");
  EXPECT_TRUE(contains(itlv.preds(g, x), y));
  EXPECT_TRUE(contains(itlv.preds(g, x), z));
  EXPECT_TRUE(contains(itlv.preds(g, y), x));
  EXPECT_TRUE(contains(itlv.preds(g, y), z));
}

TEST(Interleaving, SymmetricRelation) {
  Graph g = lang::compile_or_throw(R"(
    u := 1;
    par { x := 1; if (*) { y := 2; } else { skip; } }
    and { while (*) { z := 3; } }
    v := 4;
  )");
  InterleavingInfo itlv(g);
  for (NodeId n : g.all_nodes()) {
    for (NodeId m : itlv.preds(g, n)) {
      EXPECT_TRUE(contains(itlv.preds(g, m), n))
          << "asymmetric pair " << n.value() << "," << m.value();
    }
  }
}

TEST(ComponentContaining, ResolvesPerStatement) {
  Graph g = lang::compile_or_throw(R"(
    par {
      par { a := 1; } and { b := 2; }
    } and {
      c := 3;
    }
  )");
  NodeId a = assign_node(g, "a");
  NodeId c = assign_node(g, "c");
  ParStmtId outer(0);
  ParStmtId inner(1);
  // `a` is in outer's first component and inner's first component.
  RegionId outer_comp = component_containing(g, outer, a);
  EXPECT_TRUE(outer_comp.valid());
  EXPECT_EQ(g.region(outer_comp).owner, outer);
  RegionId inner_comp = component_containing(g, inner, a);
  EXPECT_TRUE(inner_comp.valid());
  EXPECT_EQ(g.region(inner_comp).owner, inner);
  // `c` is not inside `inner`.
  EXPECT_FALSE(component_containing(g, inner, c).valid());
}

}  // namespace
}  // namespace parcm
