#include "semantics/interpreter.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "lang/lower.hpp"
#include "support/diagnostics.hpp"

namespace parcm {
namespace {

TEST(State, EvalOperandsAndRhs) {
  Graph g;
  VarId a = g.intern_var("a");
  VarState s(g.num_vars());
  s.set(a, 7);
  EXPECT_EQ(eval_operand(s, Operand::var(a)), 7);
  EXPECT_EQ(eval_operand(s, Operand::constant(-2)), -2);
  EXPECT_EQ(eval_rhs(s, Rhs(Term{BinOp::kAdd, Operand::var(a),
                                 Operand::constant(3)})),
            10);
  EXPECT_EQ(eval_rhs(s, Rhs(Term{BinOp::kMul, Operand::var(a),
                                 Operand::var(a)})),
            49);
  EXPECT_EQ(eval_rhs(s, Rhs(Term{BinOp::kDiv, Operand::var(a),
                                 Operand::constant(0)})),
            0);
  EXPECT_EQ(eval_rhs(s, Rhs(Term{BinOp::kLt, Operand::var(a),
                                 Operand::constant(9)})),
            1);
  EXPECT_EQ(eval_rhs(s, Rhs(Operand::var(a))), 7);
}

TEST(State, ComparisonOperators) {
  VarState s(0);
  auto ev = [&](BinOp op, std::int64_t a, std::int64_t b) {
    return eval_rhs(s, Rhs(Term{op, Operand::constant(a),
                                Operand::constant(b)}));
  };
  EXPECT_EQ(ev(BinOp::kLe, 2, 2), 1);
  EXPECT_EQ(ev(BinOp::kGt, 2, 2), 0);
  EXPECT_EQ(ev(BinOp::kGe, 3, 2), 1);
  EXPECT_EQ(ev(BinOp::kEq, 3, 3), 1);
  EXPECT_EQ(ev(BinOp::kNe, 3, 3), 0);
  EXPECT_EQ(ev(BinOp::kSub, 2, 5), -3);
}

TEST(Config, InitialAndTerminal) {
  Graph g = lang::compile_or_throw("x := 1;");
  Config c = Config::initial(g);
  EXPECT_TRUE(c.active(g.root_region()));
  EXPECT_EQ(c.pc(g.root_region()), g.start());
  EXPECT_FALSE(c.terminal());
  c.clear_pc(g.root_region());
  EXPECT_TRUE(c.terminal());
}

TEST(Interpreter, SequentialRun) {
  Graph g = lang::compile_or_throw("x := 2; y := x + 3; z := y * y;");
  Rng rng(1);
  auto final = run_random_schedule(g, rng);
  ASSERT_TRUE(final.has_value());
  EXPECT_EQ(final->get(*g.find_var("x")), 2);
  EXPECT_EQ(final->get(*g.find_var("y")), 5);
  EXPECT_EQ(final->get(*g.find_var("z")), 25);
}

TEST(Interpreter, DeterministicConditionals) {
  Graph g = lang::compile_or_throw(R"(
    x := 5;
    if (x < 10) { y := 1; } else { y := 2; }
    if (x < 2) { z := 1; } else { z := 2; }
  )");
  Rng rng(1);
  auto final = run_random_schedule(g, rng);
  ASSERT_TRUE(final.has_value());
  EXPECT_EQ(final->get(*g.find_var("y")), 1);
  EXPECT_EQ(final->get(*g.find_var("z")), 2);
}

TEST(Interpreter, WhileCondTerminates) {
  Graph g = lang::compile_or_throw(R"(
    i := 0; s := 0;
    while (i < 5) { s := s + i; i := i + 1; }
  )");
  Rng rng(3);
  auto final = run_random_schedule(g, rng);
  ASSERT_TRUE(final.has_value());
  EXPECT_EQ(final->get(*g.find_var("i")), 5);
  EXPECT_EQ(final->get(*g.find_var("s")), 10);
}

TEST(Interpreter, ParallelJoinWaitsForAllComponents) {
  Graph g = lang::compile_or_throw(R"(
    par { x := 1; } and { y := 2; } and { z := 3; }
    w := 9;
  )");
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    auto final = run_random_schedule(g, rng);
    ASSERT_TRUE(final.has_value());
    EXPECT_EQ(final->get(*g.find_var("x")), 1);
    EXPECT_EQ(final->get(*g.find_var("y")), 2);
    EXPECT_EQ(final->get(*g.find_var("z")), 3);
    EXPECT_EQ(final->get(*g.find_var("w")), 9);
  }
}

TEST(Interpreter, NestedParallel) {
  Graph g = lang::compile_or_throw(R"(
    par {
      par { a := 1; } and { b := 2; }
      c := a + b;
    } and {
      d := 4;
    }
  )");
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    auto final = run_random_schedule(g, rng);
    ASSERT_TRUE(final.has_value());
    EXPECT_EQ(final->get(*g.find_var("c")), 3);
    EXPECT_EQ(final->get(*g.find_var("d")), 4);
  }
}

TEST(Interpreter, RaceProducesDifferentOutcomes) {
  Graph g = lang::compile_or_throw("par { x := 1; } and { x := 2; }");
  std::set<std::int64_t> outcomes;
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    Rng rng(seed);
    auto final = run_random_schedule(g, rng);
    ASSERT_TRUE(final.has_value());
    outcomes.insert(final->get(*g.find_var("x")));
  }
  EXPECT_EQ(outcomes, (std::set<std::int64_t>{1, 2}));
}

TEST(Interpreter, StepBoundOnDivergentLoop) {
  Graph g = lang::compile_or_throw("while (1 < 2) { x := x + 1; }");
  Rng rng(1);
  EXPECT_FALSE(run_random_schedule(g, rng, 1000).has_value());
}

TEST(Transitions, ParkedParentNotRunnableUntilChildrenDone) {
  Graph g = lang::compile_or_throw("par { x := 1; } and { y := 2; }");
  Config c = Config::initial(g);
  // start -> parbegin -> spawn.
  auto step = [&](Config cur) {
    auto ts = enabled_transitions(g, cur);
    EXPECT_FALSE(ts.empty());
    return apply_transition(g, cur, ts[0]);
  };
  c = step(c);  // execute start
  ASSERT_EQ(g.node(c.pc(g.root_region())).kind, NodeKind::kParBegin);
  c = step(c);  // spawn
  const ParStmt& s = g.par_stmt(ParStmtId(0));
  EXPECT_EQ(c.pc(g.root_region()), s.end);
  EXPECT_TRUE(c.active(s.components[0]));
  EXPECT_TRUE(c.active(s.components[1]));
  EXPECT_FALSE(thread_runnable(g, c, g.root_region()));
  // Transitions only from the two components.
  for (const Transition& t : enabled_transitions(g, c)) {
    EXPECT_NE(t.region, g.root_region());
  }
}

TEST(Transitions, InterleavingCountForTwoIndependentWrites) {
  Graph g = lang::compile_or_throw("par { x := 1; x := 2; } and { x := 3; }");
  // Reachable schedules of {A1 A2} || {B}: B before A1, between, after.
  std::set<std::int64_t> outcomes;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    Rng rng(seed);
    auto final = run_random_schedule(g, rng);
    ASSERT_TRUE(final.has_value());
    outcomes.insert(final->get(*g.find_var("x")));
  }
  EXPECT_EQ(outcomes, (std::set<std::int64_t>{2, 3}));
}

TEST(ConfigHash, DistinctConfigsHashDifferently) {
  std::vector<std::uint32_t> a = {1, 2, 3};
  std::vector<std::uint32_t> b = {1, 2, 4};
  EXPECT_NE(ConfigHash{}(a), ConfigHash{}(b));
}


TEST(Schedule, RecordAndReplayReproducesFinalState) {
  Graph g = lang::compile_or_throw(R"(
    a := 2; b := 3;
    par { a := a + b; x := a * 2; } and { y := a + b; }
    w := x + y;
  )");
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    Rng rng(seed);
    Schedule sched;
    auto final = run_random_schedule(g, rng, 100000, &sched);
    ASSERT_TRUE(final.has_value());
    auto replayed = replay_schedule(g, sched);
    ASSERT_TRUE(replayed.has_value()) << seed;
    EXPECT_EQ(*replayed, *final) << seed;
  }
}

TEST(Schedule, ReplayOnWrongGraphThrows) {
  Graph g = lang::compile_or_throw("par { x := 1; } and { y := 2; }");
  Rng rng(3);
  Schedule sched;
  ASSERT_TRUE(run_random_schedule(g, rng, 100000, &sched).has_value());
  Graph other = lang::compile_or_throw("x := 1; y := 2;");
  EXPECT_THROW(replay_schedule(other, sched), InternalError);
}

TEST(Schedule, PartialScheduleReturnsNullopt) {
  Graph g = lang::compile_or_throw("x := 1; y := 2;");
  Rng rng(1);
  Schedule sched;
  ASSERT_TRUE(run_random_schedule(g, rng, 100000, &sched).has_value());
  sched.pop_back();
  EXPECT_FALSE(replay_schedule(g, sched).has_value());
}

TEST(Schedule, DistinctSchedulesDistinguishRaceOutcomes) {
  Graph g = lang::compile_or_throw("par { x := 1; } and { x := 2; }");
  std::map<std::int64_t, Schedule> witness;
  for (std::uint64_t seed = 0; seed < 64 && witness.size() < 2; ++seed) {
    Rng rng(seed);
    Schedule sched;
    auto final = run_random_schedule(g, rng, 100000, &sched);
    ASSERT_TRUE(final.has_value());
    witness.emplace(final->get(*g.find_var("x")), sched);
  }
  ASSERT_EQ(witness.size(), 2u);
  for (auto& [value, sched] : witness) {
    auto replayed = replay_schedule(g, sched);
    ASSERT_TRUE(replayed.has_value());
    EXPECT_EQ(replayed->get(*g.find_var("x")), value);
  }
}

}  // namespace
}  // namespace parcm
