// The explicit-synchronization extension (paper conclusions): `barrier;`
// synchronizes all components of the innermost parallel statement.
// Terminated components are excused. Analyses treat barriers as skips
// (conservative — fewer interleavings than the analyses assume, so all
// guarantees carry over); the cost model is phase-aware: components pay the
// per-phase maximum between barriers.
#include <gtest/gtest.h>

#include "ir/transform_utils.hpp"
#include "ir/validate.hpp"
#include "lang/lower.hpp"
#include "motion/pcm.hpp"
#include "semantics/cost.hpp"
#include "semantics/enumerator.hpp"
#include "semantics/equivalence.hpp"
#include "semantics/product.hpp"
#include "workload/randomprog.hpp"

namespace parcm {
namespace {

using Finals = std::set<std::vector<std::int64_t>>;

TEST(Barrier, ParsesAndValidates) {
  Graph g = lang::compile_or_throw(R"(
    par { x := 1; barrier; y := 2; } and { barrier; z := 3; }
  )");
  validate_or_throw(g);
  std::size_t barriers = 0;
  for (NodeId n : g.all_nodes()) {
    barriers += g.node(n).kind == NodeKind::kBarrier;
  }
  EXPECT_EQ(barriers, 2u);
}

TEST(Barrier, RejectedOutsideComponents) {
  DiagnosticSink sink;
  EXPECT_THROW(lang::compile_or_throw("barrier;"), InternalError);
}

TEST(Barrier, OrdersWritesAcrossComponents) {
  // Without the barrier, y := x can read 0 or 1; the barrier forces the
  // write before the read.
  Graph without = lang::compile_or_throw(R"(
    par { x := 1; } and { y := x; }
  )");
  auto rw = enumerate_executions(without, {"y"});
  ASSERT_TRUE(rw.exhausted);
  EXPECT_EQ(rw.finals, (Finals{{0}, {1}}));

  Graph with = lang::compile_or_throw(R"(
    par { x := 1; barrier; } and { barrier; y := x; }
  )");
  auto rb = enumerate_executions(with, {"y"});
  ASSERT_TRUE(rb.exhausted);
  EXPECT_EQ(rb.finals, (Finals{{1}}));
}

TEST(Barrier, TwoPhaseExchange) {
  // Classic two-phase pattern: both produce, synchronize, both consume the
  // sibling's value — deterministic result.
  Graph g = lang::compile_or_throw(R"(
    par { a := 1; barrier; u := b + 0; }
    and { b := 2; barrier; v := a + 0; }
  )");
  auto r = enumerate_executions(g, {"u", "v"});
  ASSERT_TRUE(r.exhausted);
  EXPECT_EQ(r.finals, (Finals{{2, 1}}));
}

TEST(Barrier, TerminatedComponentIsExcused) {
  // The second component never reaches a barrier; once it terminates the
  // first component's barrier releases.
  Graph g = lang::compile_or_throw(R"(
    par { barrier; x := 1; } and { y := 2; }
  )");
  auto r = enumerate_executions(g, {"x", "y"});
  ASSERT_TRUE(r.exhausted);
  EXPECT_EQ(r.finals, (Finals{{1, 2}}));
}

TEST(Barrier, ThreeComponentsReleaseTogether) {
  Graph g = lang::compile_or_throw(R"(
    par { a := 1; barrier; u := b + c; }
    and { b := 2; barrier; skip; }
    and { c := 3; barrier; skip; }
  )");
  auto r = enumerate_executions(g, {"u"});
  ASSERT_TRUE(r.exhausted);
  EXPECT_EQ(r.finals, (Finals{{5}}));
}

TEST(Barrier, NestedStatementsSynchronizeIndependently) {
  Graph g = lang::compile_or_throw(R"(
    par {
      par { a := 1; barrier; u := b + 0; } and { b := 2; barrier; skip; }
    } and {
      c := 3;
    }
  )");
  auto r = enumerate_executions(g, {"u", "c"});
  ASSERT_TRUE(r.exhausted);
  EXPECT_EQ(r.finals, (Finals{{2, 3}}));
}

TEST(Barrier, BarriersInLoops) {
  // A barrier inside a loop synchronizes each iteration pairwise; the
  // nondeterministic trip counts may differ, and the early-exiting
  // component is excused afterwards.
  Graph g = lang::compile_or_throw(R"(
    i := 0;
    par { while (i < 2) { i := i + 1; barrier; } }
    and { barrier; x := i; barrier; y := i; }
  )");
  auto r = enumerate_executions(g, {"x", "y"});
  ASSERT_TRUE(r.exhausted);
  // First barrier pairs with iteration 1; x reads i = 1, or 2 when the loop
  // races its next increment in before the read. The second barrier pairs
  // with iteration 2, so y always reads 2.
  EXPECT_EQ(r.finals, (Finals{{1, 2}, {2, 2}}));
}

TEST(Barrier, CostModelPhases) {
  // comp1 phases: 3 ops | 1 op; comp2 phases: 1 op | 3 ops.
  // Unsynchronized max would be max(4,4)=4; phase-aware: max(3,1)+max(1,3)=6.
  Graph g = lang::compile_or_throw(R"(
    par {
      p := a + b; q := a + b; r := a + b;
      barrier;
      s := a + b;
    } and {
      t := a + b;
      barrier;
      u := a + b; v := a + b; w := a + b;
    }
  )");
  FixedOracle o(0);
  CostResult c = execution_time(g, o);
  ASSERT_TRUE(c.ok);
  EXPECT_EQ(c.time, 6u);
  EXPECT_EQ(c.computations, 8u);
}

TEST(Barrier, CostModelUnbalancedPhaseCounts) {
  Graph g = lang::compile_or_throw(R"(
    par { x := a + b; } and { y := a + b; barrier; z := a + b; }
  )");
  FixedOracle o(0);
  CostResult c = execution_time(g, o);
  ASSERT_TRUE(c.ok);
  // Phases: comp1 {1}, comp2 {1, 1}: max(1,1) + max(0,1) = 2.
  EXPECT_EQ(c.time, 2u);
}

TEST(Barrier, ScheduleReplayWithReleases) {
  Graph g = lang::compile_or_throw(R"(
    par { a := 1; barrier; u := b + 0; } and { b := 2; barrier; skip; }
  )");
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    Rng rng(seed);
    Schedule sched;
    auto final = run_random_schedule(g, rng, 100000, &sched);
    ASSERT_TRUE(final.has_value());
    auto replayed = replay_schedule(g, sched);
    ASSERT_TRUE(replayed.has_value());
    EXPECT_EQ(*replayed, *final);
  }
}

TEST(Barrier, ProductConstructionRefuses) {
  Graph g = lang::compile_or_throw(
      "par { barrier; } and { barrier; }");
  EXPECT_THROW(build_product(g), InternalError);
}

TEST(Barrier, PcmTreatsBarrierConservatively) {
  // The barrier would allow hoisting y := a + b's operand reasoning across
  // the sync (a is stable after phase 1), but the analyses ignore barriers:
  // PCM stays sound, merely conservative.
  Graph g = lang::compile_or_throw(R"(
    par { a := 1; barrier; x := a + b; } and { barrier; y := a + b; }
    w := a + b;
  )");
  MotionResult r = parallel_code_motion(g);
  validate_or_throw(r.graph);
  EnumerationOptions eo;
  eo.atomic_assignments = false;
  auto v = check_sequential_consistency(g, r.graph, {}, eo);
  ASSERT_TRUE(v.exhausted);
  EXPECT_TRUE(v.sequentially_consistent);
}

TEST(Barrier, PorAgreesWithFullEnumeration) {
  Graph g = lang::compile_or_throw(R"(
    par { a := 1; barrier; u := b + 0; } and { b := 2; barrier; v := a + 0; }
  )");
  EnumerationOptions full;
  EnumerationOptions reduced;
  reduced.partial_order_reduction = true;
  auto a = enumerate_executions(g, {"u", "v"}, full);
  auto b = enumerate_executions(g, {"u", "v"}, reduced);
  ASSERT_TRUE(a.exhausted && b.exhausted);
  EXPECT_EQ(a.finals, b.finals);
}

class BarrierProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BarrierProperty, RandomBarrierProgramsExecuteAndTransformSoundly) {
  Rng rng(GetParam());
  RandomProgramOptions opt;
  opt.target_stmts = 10;
  opt.max_par_depth = 2;
  opt.num_vars = 3;
  opt.while_permille = 20;
  opt.barrier_permille = 250;
  Graph g = random_program(rng, opt);
  validate_or_throw(g);

  MotionResult r = parallel_code_motion(g);
  validate_or_throw(r.graph);
  EnumerationOptions eo;
  eo.atomic_assignments = false;
  eo.max_states = 1u << 19;
  auto v = check_sequential_consistency(g, r.graph, {}, eo);
  if (!v.exhausted) GTEST_SKIP();
  EXPECT_TRUE(v.sequentially_consistent) << GetParam();

  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    auto pair = paired_execution_times(g, r.graph, seed * 5 + 1);
    if (!pair.has_value()) continue;
    EXPECT_LE(pair->second.time, pair->first.time) << GetParam();
  }
}

TEST_P(BarrierProperty, PorPreservesFinalsWithBarriers) {
  Rng rng(GetParam() + 500);
  RandomProgramOptions opt;
  opt.target_stmts = 8;
  opt.max_par_depth = 1;
  opt.num_vars = 3;
  opt.while_permille = 20;
  opt.barrier_permille = 250;
  Graph g = random_program(rng, opt);
  std::vector<std::string> observed = all_var_names(g);
  EnumerationOptions full;
  full.max_states = 1u << 19;
  EnumerationOptions reduced = full;
  reduced.partial_order_reduction = true;
  auto a = enumerate_executions(g, observed, full);
  auto b = enumerate_executions(g, observed, reduced);
  if (!a.exhausted || !b.exhausted) GTEST_SKIP();
  EXPECT_EQ(a.finals, b.finals) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, BarrierProperty,
                         ::testing::Range<std::uint64_t>(0, 30));

}  // namespace
}  // namespace parcm
