// parcm_profile's library: artifact ingestion, lossless histogram
// round-trips, aggregate schema, and regression attribution via diff.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "driver/driver.hpp"
#include "driver/profile.hpp"
#include "lang/unparse.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "verify/fuzz.hpp"

namespace parcm {
namespace {

using driver::Profile;

// A synthetic parcm-batch-v1 report with controlled pass times (ms).
std::string batch_json(
    const std::vector<std::pair<std::string, std::vector<std::pair<std::string, double>>>>& programs,
    const std::string& cohort) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("schema").value("parcm-batch-v1");
  w.key("programs").begin_array();
  for (const auto& [id, passes] : programs) {
    w.begin_object();
    w.key("id").value(id);
    w.key("shape_hash").value(cohort);
    double wall = 0;
    for (const auto& [pass, ms] : passes) wall += ms;
    w.key("wall_ms").value(wall);
    w.key("pass_wall_ms").begin_array();
    for (const auto& [pass, ms] : passes) {
      w.begin_object();
      w.key("pass").value(pass);
      w.key("ms").value(ms);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

TEST(Profile, IngestsBatchReport) {
  Profile p;
  std::string error;
  std::optional<obs::JsonValue> doc = obs::json_parse(batch_json(
      {{"p0", {{"pcm", 2.0}, {"dce", 1.0}}},
       {"p1", {{"pcm", 4.0}, {"dce", 1.0}}}},
      "0xdeadbeef"));
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(p.ingest_json(*doc, "synthetic", &error)) << error;
  ASSERT_EQ(p.passes().size(), 2u);
  EXPECT_EQ(p.passes().at("pcm").count(), 2u);
  EXPECT_EQ(p.passes().at("pcm").sum(), 6'000'000u);  // 6 ms in ns
  ASSERT_EQ(p.cohorts().size(), 1u);
  EXPECT_EQ(p.cohorts().at("0xdeadbeef").programs, 2u);
  EXPECT_EQ(p.cohorts().at("0xdeadbeef").example_id, "p0");
  EXPECT_EQ(p.pairs().size(), 2u);
  EXPECT_EQ(p.pairs().at({"pcm", "0xdeadbeef"}).count(), 2u);
}

TEST(Profile, RejectsUnknownSchema) {
  Profile p;
  std::string error;
  std::optional<obs::JsonValue> doc =
      obs::json_parse("{\"schema\": \"parcm-mystery-v1\"}");
  ASSERT_TRUE(doc.has_value());
  EXPECT_FALSE(p.ingest_json(*doc, "x.json", &error));
  EXPECT_NE(error.find("parcm-mystery-v1"), std::string::npos);
  EXPECT_TRUE(p.empty());
}

TEST(Profile, MetricsHistogramsRoundTripLosslessly) {
  // A registry histogram serialized to parcm-metrics-v1 and re-ingested
  // must rank identically to the original: the sparse buckets carry the
  // full distribution, not just the summary stats.
  obs::Registry r;
  for (std::uint64_t v : {100u, 200u, 3000u, 40000u, 40001u, 500000u}) {
    r.record_hist("pipeline.pass_wall_ns.pcm", v);
  }
  r.record_hist("unrelated.metric", 7);  // must NOT become a pass
  std::optional<obs::JsonValue> doc = obs::json_parse(r.to_json(false));
  ASSERT_TRUE(doc.has_value());

  Profile p;
  std::string error;
  ASSERT_TRUE(p.ingest_json(*doc, "metrics", &error)) << error;
  ASSERT_EQ(p.passes().size(), 1u);
  const obs::Histogram& got = p.passes().at("pcm");
  const obs::Histogram want = r.histogram("pipeline.pass_wall_ns.pcm");
  EXPECT_EQ(got, want);
  EXPECT_EQ(got.p99(), want.p99());
}

TEST(Profile, AggregateJsonIsValidTaggedAndReingestible) {
  Profile p;
  std::string error;
  std::optional<obs::JsonValue> doc = obs::json_parse(batch_json(
      {{"p0", {{"pcm", 2.0}, {"sinking", 0.5}}}}, "0x1"));
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(p.ingest_json(*doc, "synthetic", &error)) << error;

  for (bool pretty : {false, true}) {
    std::string json = p.to_json(pretty);
    EXPECT_TRUE(obs::json_valid(json)) << json;
    EXPECT_NE(json.find("parcm-profile-v1"), std::string::npos);
  }

  // Round trip: an aggregate document re-ingests into an equal profile.
  std::optional<obs::JsonValue> agg = obs::json_parse(p.to_json(false));
  ASSERT_TRUE(agg.has_value());
  Profile p2;
  ASSERT_TRUE(p2.ingest_json(*agg, "agg", &error)) << error;
  EXPECT_EQ(p2.passes(), p.passes());
  EXPECT_EQ(p2.pairs(), p.pairs());
  ASSERT_EQ(p2.cohorts().size(), 1u);
  EXPECT_EQ(p2.cohorts().at("0x1").wall_ns, p.cohorts().at("0x1").wall_ns);
}

TEST(Profile, DiffNamesThePerturbedPassAndCohort) {
  // Baseline: two cohorts, all passes cheap. Perturbed: pcm on cohort 0xb
  // became 100x slower. The top attribution must name exactly that pair.
  auto make = [](double pcm_b_ms) {
    Profile p;
    std::string error;
    auto ingest = [&p, &error](const std::string& json) {
      std::optional<obs::JsonValue> doc = obs::json_parse(json);
      ASSERT_TRUE(doc.has_value());
      ASSERT_TRUE(p.ingest_json(*doc, "synthetic", &error)) << error;
    };
    ingest(batch_json({{"a0", {{"pcm", 1.0}, {"dce", 1.0}}},
                       {"a1", {{"pcm", 1.0}, {"dce", 1.0}}}},
                      "0xa"));
    ingest(batch_json({{"b0", {{"pcm", pcm_b_ms}, {"dce", 1.0}}},
                       {"b1", {{"pcm", pcm_b_ms}, {"dce", 1.0}}}},
                      "0xb"));
    return p;
  };
  Profile before = make(1.0);
  Profile after = make(100.0);

  Profile::Diff d = Profile::diff(before, after);
  ASSERT_FALSE(d.pairs.empty());
  EXPECT_EQ(d.pairs[0].pass, "pcm");
  EXPECT_EQ(d.pairs[0].cohort, "0xb");
  EXPECT_GT(d.pairs[0].score, 0.0);
  ASSERT_FALSE(d.passes.empty());
  EXPECT_EQ(d.passes[0].pass, "pcm");
  // ~99 ms mean delta × 2 samples on the pair.
  EXPECT_NEAR(d.pairs[0].delta_mean_ns, 99e6, 1e3);
  EXPECT_EQ(d.pairs[0].base_count, 2u);
  EXPECT_EQ(d.pairs[0].new_count, 2u);

  for (bool pretty : {false, true}) {
    std::string json = d.to_json(pretty);
    EXPECT_TRUE(obs::json_valid(json)) << json;
    EXPECT_NE(json.find("parcm-profile-v1"), std::string::npos);
    EXPECT_NE(json.find("diff"), std::string::npos);
  }
  std::string table = d.table(5);
  EXPECT_NE(table.find("pcm"), std::string::npos);
  EXPECT_NE(table.find("0xb"), std::string::npos);
}

TEST(Profile, EndToEndBatchReportAttribution) {
  // A real batch report (timing included) must yield per-pass and
  // per-cohort attribution without synthetic help.
  RandomProgramOptions gen = verify::default_fuzz_gen();
  driver::Manifest manifest =
      driver::Manifest::lazy(6, "gen", [gen](std::size_t i) {
        return lang::to_source(verify::fuzz_program(42, i, gen));
      });
  driver::BatchOptions opt;
  opt.jobs = 2;
  driver::BatchReport report = driver::run_batch(manifest, opt);
  std::optional<obs::JsonValue> doc =
      obs::json_parse(report.to_json(false, /*include_timing=*/true));
  ASSERT_TRUE(doc.has_value());

  Profile p;
  std::string error;
  ASSERT_TRUE(p.ingest_json(*doc, "batch", &error)) << error;
  // Pass wall times come from the pipeline's own stats (not the obs
  // registry), so attribution works in every build configuration.
  EXPECT_FALSE(p.passes().empty());
  EXPECT_FALSE(p.cohorts().empty());
  EXPECT_FALSE(p.pairs().empty());
  std::string table = p.table();
  EXPECT_NE(table.find("pcm"), std::string::npos);
}

TEST(Profile, IngestFileReportsMissingPath) {
  Profile p;
  std::string error;
  EXPECT_FALSE(p.ingest_file("/nonexistent/profile-input.json", &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace parcm
