// Batch-driver determinism suite (ctest -L batch).
//
// The contract under test: driver::run_batch processes every program with
// exactly the single-thread observability semantics (per-worker Registry /
// RemarkSink / AnalysisCache thread overrides), so the timing-free report —
// per-program optimized output, remark streams, node/action counts,
// verdicts — is byte-identical at any --jobs value and any steal order.
// Also unit-level coverage of the Chase–Lev deque and the global injector,
// including multithreaded hammer tests meant to run under TSan.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "analyses/cache.hpp"
#include "driver/driver.hpp"
#include "driver/manifest.hpp"
#include "driver/work_queue.hpp"
#include "lang/unparse.hpp"
#include "obs/trace.hpp"
#include "verify/fuzz.hpp"

namespace parcm {
namespace {

// The 64-program corpus every determinism test runs: the fuzz stream of
// campaign seed 2026 (deterministic bytes on any platform).
driver::Manifest corpus64() {
  RandomProgramOptions gen = verify::default_fuzz_gen();
  return driver::Manifest::lazy(64, "corpus", [gen](std::size_t i) {
    return lang::to_source(verify::fuzz_program(2026, i, gen));
  });
}

// Timing-free payload: everything schedule-dependent is excluded, so this
// string must be byte-identical across job counts and steal orders.
std::string payload(const driver::BatchReport& r) {
  return r.to_json(/*pretty=*/false, /*include_timing=*/false);
}

// 48 programs drawn from a pool of 8 shapes (variables renamed per
// repetition): the corpus where the shared analysis cache actually fires,
// and therefore where cache state could most plausibly leak into outputs.
driver::Manifest pooled_corpus() {
  RandomProgramOptions gen = verify::default_fuzz_gen();
  return driver::Manifest::lazy(48, "pool", [gen](std::size_t i) {
    return lang::to_source(verify::fuzz_program_pooled(2027, i, 8, gen));
  });
}

// The tentpole's hard constraint: on a duplicate-shape corpus the payload
// is one fixed byte string across jobs 1/4/16 crossed with shared cache
// off, on-and-cold, and on-and-pre-warmed. A hit must be indistinguishable
// from a rebuild in every payload byte (outputs, remark lines, counts).
TEST(BatchDeterminism, SharedCacheModesKeepPayloadByteIdentical) {
  driver::Manifest m = pooled_corpus();
  driver::BatchOptions opt;
  opt.keep_remark_lines = true;
  std::string reference;
  auto check = [&](driver::BatchOptions& o, const char* mode) {
    driver::BatchReport report = driver::run_batch(m, o);
    EXPECT_EQ(report.totals.done, 48u);
    if (reference.empty()) {
      reference = payload(report);
    } else {
      EXPECT_EQ(payload(report), reference)
          << mode << " jobs=" << o.jobs;
    }
    return report;
  };
  opt.shared_cache = false;
  for (std::size_t jobs : {1u, 4u, 16u}) {
    opt.jobs = jobs;
    check(opt, "shared-cache off");
  }
  opt.shared_cache = true;
  for (std::size_t jobs : {1u, 4u, 16u}) {
    SharedAnalysisCache cold;  // fresh instance: every run starts cold
    opt.shared_cache_instance = &cold;
    opt.jobs = jobs;
    check(opt, "shared-cache cold");
  }
  SharedAnalysisCache warm;  // reused: later runs face a fully hot cache
  opt.shared_cache_instance = &warm;
  for (std::size_t jobs : {1u, 4u, 16u}) {
    opt.jobs = jobs;
    driver::BatchReport report = check(opt, "shared-cache warm");
#if PARCM_OBS_ENABLED
    if (jobs > 1) {
      // The hot runs really are exercising the shared tier, not silently
      // missing it.
      EXPECT_GT(report.counters["analysis.shared_cache.hits"], 0u);
    }
#endif
  }
}

// Steal-order regression on the duplicate-shape corpus: with the shared
// tier hot, which worker acquires a shape first depends on stealing — the
// remark stream (sink-epoch emission) must not.
TEST(BatchDeterminism, DuplicateShapesByteIdenticalAcrossStealOrders) {
  driver::Manifest m = pooled_corpus();
  driver::BatchOptions opt;
  opt.jobs = 8;
  opt.keep_remark_lines = true;
  SharedAnalysisCache shared;
  opt.shared_cache_instance = &shared;
  std::string reference;
  for (std::uint64_t seed : {0ull, 3ull, 77ull, 0xC0FFEEull}) {
    opt.steal_seed = seed;
    driver::BatchReport report = driver::run_batch(m, opt);
    EXPECT_EQ(report.totals.done, 48u);
    if (reference.empty()) {
      reference = payload(report);
    } else {
      EXPECT_EQ(payload(report), reference) << "steal_seed=" << seed;
    }
  }
}

TEST(BatchDeterminism, ByteIdenticalAcrossJobCounts) {
  driver::Manifest m = corpus64();
  driver::BatchOptions opt;
  opt.keep_remark_lines = true;  // diff the remark streams too
  std::string reference;
  for (std::size_t jobs : {1u, 4u, 16u}) {
    opt.jobs = jobs;
    driver::BatchReport report = driver::run_batch(m, opt);
    EXPECT_EQ(report.totals.submitted, 64u);
    EXPECT_EQ(report.totals.done, 64u);
    EXPECT_TRUE(report.ok());
    if (reference.empty()) {
      reference = payload(report);
#if PARCM_OBS_ENABLED
      // Only meaningful when remark instrumentation is compiled in.
      EXPECT_NE(reference.find("\"remarks\""), std::string::npos);
#endif
    } else {
      EXPECT_EQ(payload(report), reference) << "jobs=" << jobs;
    }
  }
}

TEST(BatchDeterminism, ByteIdenticalAcrossStealOrders) {
  driver::Manifest m = corpus64();
  driver::BatchOptions opt;
  opt.jobs = 8;
  opt.keep_remark_lines = true;
  std::string reference;
  for (std::uint64_t seed : {0ull, 1ull, 42ull, 0xDEADBEEFull}) {
    opt.steal_seed = seed;
    driver::BatchReport report = driver::run_batch(m, opt);
    EXPECT_EQ(report.totals.done, 64u);
    if (reference.empty()) {
      reference = payload(report);
    } else {
      EXPECT_EQ(payload(report), reference) << "steal_seed=" << seed;
    }
  }
}

TEST(BatchDeterminism, ShardingKnobsDoNotChangeThePayload) {
  driver::Manifest m = corpus64();
  driver::BatchOptions opt;
  opt.jobs = 4;
  driver::BatchReport a = driver::run_batch(m, opt);
  opt.shard_cap = 1;  // almost everything through the injector
  driver::BatchReport b = driver::run_batch(m, opt);
  opt.shard_cap = 0;
  opt.drain_batch = 1;  // merge after every single result
  driver::BatchReport c = driver::run_batch(m, opt);
  EXPECT_EQ(payload(a), payload(b));
  EXPECT_EQ(payload(a), payload(c));
}

TEST(BatchDeterminism, ValidatedRunMatchesAcrossJobs) {
  RandomProgramOptions gen = verify::default_fuzz_gen();
  gen.target_stmts = 6;  // keep the oracle cheap
  driver::Manifest m = driver::Manifest::lazy(16, "v", [gen](std::size_t i) {
    return lang::to_source(verify::fuzz_program(7, i, gen));
  });
  driver::BatchOptions opt;
  opt.validate = true;
  opt.budget.max_states = 32768;
  opt.jobs = 1;
  driver::BatchReport a = driver::run_batch(m, opt);
  opt.jobs = 4;
  driver::BatchReport b = driver::run_batch(m, opt);
  EXPECT_EQ(a.validation_failures, 0u);
  EXPECT_EQ(payload(a), payload(b));
}

TEST(BatchDeterminism, MergedCountersMatchSequentialRun) {
  driver::Manifest m = corpus64();
  driver::BatchOptions opt;
  // Shared-tier traffic is schedule-dependent by design (which worker gets
  // the first instance of a shape decides who builds and who hits), so the
  // counter-sum invariant is a per-worker-cache property: pin the tier off.
  opt.shared_cache = false;
  opt.jobs = 1;
  driver::BatchReport seq = driver::run_batch(m, opt);
  opt.jobs = 8;
  opt.steal_seed = 9;
  driver::BatchReport par = driver::run_batch(m, opt);
  // Aggregated counters are sums of per-program deltas, so scheduling must
  // not change them — except the cache invalidation counter, which depends
  // on how programs interleave within one worker's cache.
  std::map<std::string, std::uint64_t> a = seq.counters;
  std::map<std::string, std::uint64_t> b = par.counters;
  a.erase("analysis.cache.invalidations");
  b.erase("analysis.cache.invalidations");
  // Cache hits/misses: per-worker caches see different program sequences
  // but every program is a miss for its own graph (graphs are distinct),
  // so totals still agree.
  EXPECT_EQ(a, b);
}

TEST(BatchDeterminism, TraceEnabledRunsStayByteIdentical) {
#if PARCM_OBS_ENABLED
  // Tracing records wall times, but none of them may leak into the
  // timing-free payload: runs with the sink hot must stay byte-identical
  // to each other at any jobs value.
  driver::Manifest m = corpus64();
  driver::BatchOptions opt;
  obs::trace().set_enabled(true);
  std::string reference;
  for (std::size_t jobs : {1u, 4u, 16u}) {
    obs::trace().clear();
    opt.jobs = jobs;
    driver::BatchReport report = driver::run_batch(m, opt);
    EXPECT_EQ(report.totals.done, 64u);
    // Every run actually recorded spans (main plus the worker tracks).
    EXPECT_GE(obs::trace().tracks().size(), jobs);
    EXPECT_FALSE(obs::trace().spans().empty());
    if (reference.empty()) {
      reference = payload(report);
    } else {
      EXPECT_EQ(payload(report), reference) << "jobs=" << jobs;
    }
  }
  obs::trace().clear();
  obs::trace().set_enabled(false);
#else
  GTEST_SKIP() << "instrumentation compiled out (PARCM_OBS=OFF)";
#endif
}

// --- Chase–Lev deque unit + hammer coverage ------------------------------

TEST(WorkStealingDeque, OwnerLifoThiefFifo) {
  driver::WorkStealingDeque dq(8);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_TRUE(dq.push(i));
  std::size_t v = 0;
  EXPECT_TRUE(dq.pop(&v));
  EXPECT_EQ(v, 4u);  // owner pops newest
  EXPECT_TRUE(dq.steal(&v));
  EXPECT_EQ(v, 0u);  // thief steals oldest
  EXPECT_TRUE(dq.steal(&v));
  EXPECT_EQ(v, 1u);
  EXPECT_TRUE(dq.pop(&v));
  EXPECT_EQ(v, 3u);
  EXPECT_TRUE(dq.pop(&v));
  EXPECT_EQ(v, 2u);
  EXPECT_FALSE(dq.pop(&v));
  EXPECT_FALSE(dq.steal(&v));
  EXPECT_TRUE(dq.empty());
}

TEST(WorkStealingDeque, RejectsPushBeyondCapacity) {
  driver::WorkStealingDeque dq(4);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_TRUE(dq.push(i));
  EXPECT_FALSE(dq.push(99));
  std::size_t v = 0;
  EXPECT_TRUE(dq.steal(&v));
  EXPECT_TRUE(dq.push(99));  // slot freed by the steal
}

// Owner pops + concurrent thieves: every pushed item is claimed exactly
// once. This is the test TSan watches for ordering bugs in push/pop/steal.
TEST(WorkStealingDeque, HammerEveryItemClaimedOnce) {
  constexpr std::size_t kItems = 20000;
  constexpr int kThieves = 3;
  driver::WorkStealingDeque dq(1 << 15);
  std::vector<std::atomic<int>> claimed(kItems);
  std::atomic<bool> done{false};
  std::vector<std::thread> thieves;
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      std::size_t v;
      while (!done.load(std::memory_order_acquire)) {
        if (dq.steal(&v)) claimed[v].fetch_add(1);
      }
      while (dq.steal(&v)) claimed[v].fetch_add(1);
    });
  }
  std::size_t v;
  for (std::size_t i = 0; i < kItems; ++i) {
    while (!dq.push(i)) {
      if (dq.pop(&v)) claimed[v].fetch_add(1);
    }
    if (i % 3 == 0 && dq.pop(&v)) claimed[v].fetch_add(1);
  }
  while (dq.pop(&v)) claimed[v].fetch_add(1);
  done.store(true, std::memory_order_release);
  for (std::thread& t : thieves) t.join();
  for (std::size_t i = 0; i < kItems; ++i) {
    ASSERT_EQ(claimed[i].load(), 1) << "item " << i;
  }
}

TEST(GlobalInjector, EachIndexPoppedOnce) {
  std::vector<std::size_t> jobs(1000);
  std::iota(jobs.begin(), jobs.end(), 0);
  driver::GlobalInjector inj;
  inj.seed(std::move(jobs));
  std::vector<std::atomic<int>> claimed(1000);
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&] {
      std::size_t v;
      while (inj.pop(&v)) claimed[v].fetch_add(1);
    });
  }
  for (std::thread& t : workers) t.join();
  EXPECT_TRUE(inj.exhausted());
  for (std::size_t i = 0; i < claimed.size(); ++i) {
    ASSERT_EQ(claimed[i].load(), 1) << "index " << i;
  }
}

// --- Manifest coverage ---------------------------------------------------

TEST(Manifest, FromSourcesAndLazyResolveText) {
  driver::Manifest s = driver::Manifest::from_sources(
      {{"a", "x := 1;"}, {"b", "y := 2;"}});
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s.jobs[0].text(), "x := 1;");
  EXPECT_EQ(s.jobs[0].size_hint, 7u);
  driver::Manifest l = driver::Manifest::lazy(
      3, "p", [](std::size_t i) { return "z := " + std::to_string(i) + ";"; });
  ASSERT_EQ(l.size(), 3u);
  EXPECT_EQ(l.jobs[2].id, "p#2");
  EXPECT_EQ(l.jobs[2].text(), "z := 2;");
}

TEST(Manifest, DirectoryAndManifestFileEnumeration) {
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() / "parcm_manifest_test";
  fs::create_directories(dir);
  std::ofstream(dir / "b.parcm") << "y := 2;";
  std::ofstream(dir / "a.parcm") << "x := 1;";
  std::ofstream(dir / "ignored.txt") << "not a program";
  driver::Manifest d = driver::Manifest::from_directory(dir.string());
  ASSERT_EQ(d.size(), 2u);  // sorted, .parcm only
  EXPECT_NE(d.jobs[0].id.find("a.parcm"), std::string::npos);

  std::ofstream(dir / "list.txt") << "# comment\na.parcm\nb.parcm  # inline\n";
  driver::Manifest m = driver::Manifest::from_file((dir / "list.txt").string());
  ASSERT_EQ(m.size(), 2u);
  EXPECT_EQ(m.jobs[1].text(), "y := 2;");
  // A single .parcm path is one program, not a manifest listing.
  driver::Manifest one = driver::Manifest::from_path((dir / "a.parcm").string());
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one.jobs[0].text(), "x := 1;");
  fs::remove_all(dir);
}

}  // namespace
}  // namespace parcm
