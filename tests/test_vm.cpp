// Unit coverage for the bytecode VM: lowering shape, seeded determinism,
// eval semantics, join/barrier protocol (including the zero-statement
// component edge case the lowering surfaced), cost parity against the
// analytic walker, and the per-path executional-improvement property on
// the paper's figures.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "figures/figures.hpp"
#include "lang/lower.hpp"
#include "semantics/cost.hpp"
#include "semantics/enumerator.hpp"
#include "verify/fuzz.hpp"
#include "vm/bytecode.hpp"
#include "vm/executor.hpp"
#include "vm/harness.hpp"

namespace parcm::vm {
namespace {

std::vector<std::string> all_vars(const Graph& g) {
  std::vector<std::string> names;
  for (std::size_t i = 0; i < g.num_vars(); ++i) {
    names.push_back(g.var_name(VarId(static_cast<std::uint32_t>(i))));
  }
  return names;
}

TEST(VmLowering, DisassemblyAndTables) {
  Graph g = figures::fig2();
  VmProgram p = lower_to_bytecode(g);
  EXPECT_GT(p.code.size(), 0u);
  EXPECT_EQ(p.num_regions, g.num_regions());
  EXPECT_EQ(p.num_vars, g.num_vars());
  EXPECT_EQ(p.par_stmts.size(), g.num_par_stmts());
  ASSERT_NE(p.root_entry(), kHaltPc);
  // Every region the graph has gets an entry point.
  for (Pc entry : p.region_entry) EXPECT_NE(entry, kHaltPc);
  std::string dis = p.to_string(&g);
  EXPECT_NE(dis.find("spawn"), std::string::npos);
  EXPECT_NE(dis.find("eval"), std::string::npos);
}

TEST(VmLowering, SplitModeDoublesAssignInstrs) {
  Graph g = lang::compile_or_throw("x := a + b; y := x;");
  LowerOptions split;  // default
  LowerOptions atomic;
  atomic.split_assignments = false;
  VmProgram ps = lower_to_bytecode(g, split);
  VmProgram pa = lower_to_bytecode(g, atomic);
  EXPECT_EQ(ps.code.size(), pa.code.size() + 2);  // two assignments split
}

TEST(VmExec, SequentialStoreAndArithmetic) {
  Graph g = lang::compile_or_throw(R"(
    a := 6; b := 7;
    x := a * b;
    y := x - a;
    z := x / b;
    q := a / c;
    lt := a < b;
    eq := x == x;
  )");
  VmProgram p = lower_to_bytecode(g);
  ExecResult r = run_seeded(p, 1);
  ASSERT_TRUE(r.ok);
  auto value = [&](const char* name) {
    auto v = g.find_var(name);
    return v ? r.store[v->index()] : 0;
  };
  EXPECT_EQ(value("x"), 42);
  EXPECT_EQ(value("y"), 36);
  EXPECT_EQ(value("z"), 6);
  EXPECT_EQ(value("q"), 0);  // division by (unset) zero yields 0
  EXPECT_EQ(value("lt"), 1);
  EXPECT_EQ(value("eq"), 1);
}

TEST(VmExec, BranchesFollowData) {
  Graph g = lang::compile_or_throw(R"(
    a := 3;
    if (a < 5) { x := 1; } else { x := 2; }
    if (a > 5) { y := 1; } else { y := 2; }
  )");
  VmProgram p = lower_to_bytecode(g);
  ExecResult r = run_seeded(p, 7);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.store[g.find_var("x")->index()], 1);
  EXPECT_EQ(r.store[g.find_var("y")->index()], 2);
}

TEST(VmExec, SameSeedSameRun) {
  Graph g = figures::fig10();
  VmProgram p = lower_to_bytecode(g);
  ExecResult a = run_seeded(p, 0xFEED);
  ExecResult b = run_seeded(p, 0xFEED);
  ASSERT_TRUE(a.ok && b.ok);
  EXPECT_EQ(a.store, b.store);
  EXPECT_EQ(a.instrs, b.instrs);
}

TEST(VmExec, DistinctSeedsExploreDistinctInterleavings) {
  // A two-way race: x can end 1 or 2 depending on schedule; 64 seeds must
  // see both outcomes (each has probability ~1/2 per seed).
  Graph g = lang::compile_or_throw("par { x := 1; } and { x := 2; }");
  VmProgram p = lower_to_bytecode(g);
  std::set<std::int64_t> outcomes;
  for (std::uint64_t s = 0; s < 64; ++s) {
    ExecResult r = run_seeded(p, s);
    ASSERT_TRUE(r.ok);
    outcomes.insert(r.store[g.find_var("x")->index()]);
  }
  EXPECT_EQ(outcomes, (std::set<std::int64_t>{1, 2}));
}

TEST(VmExec, SeededFinalsSubsetOfEnumeratedBehaviours) {
  Graph g = lang::compile_or_throw(R"(
    par { x := a + 1; a := 2; } and { a := x + 1; }
    y := a + x;
  )");
  std::vector<std::string> observed = all_vars(g);
  EnumerationOptions eopts;
  eopts.atomic_assignments = false;  // the split semantics of record
  eopts.partial_order_reduction = true;
  EnumerationResult ref = enumerate_executions(g, observed, eopts);
  ASSERT_TRUE(ref.exhausted);
  VmProgram p = lower_to_bytecode(g);  // split lowering (default)
  for (std::uint64_t s = 0; s < 64; ++s) {
    ExecResult r = run_seeded(p, s);
    ASSERT_TRUE(r.ok);
    EXPECT_TRUE(ref.finals.count(r.store))
        << "seed " << s << " reached a final store the enumerator cannot";
  }
}

TEST(VmExec, StepBudgetTurnsSpinIntoNotOk) {
  Graph g = lang::compile_or_throw("while (*) { x := a + b; }");
  VmProgram p = lower_to_bytecode(g);
  FixedOracle always_loop(0);
  ExecLimits limits;
  limits.max_steps = 1000;
  ExecResult r = run_with_oracle(p, always_loop, limits);
  EXPECT_FALSE(r.ok);
}

// --- join/barrier protocol edge cases (the satellite the lowering
// surfaced: components with no statements must neither deadlock a sibling
// barrier nor skip the join) ---

TEST(VmJoin, EmptyComponentJoins) {
  Graph g = lang::compile_or_throw(R"(
    par { skip; } and { x := 1; }
    y := x + 1;
  )");
  VmProgram p = lower_to_bytecode(g);
  for (std::uint64_t s = 0; s < 16; ++s) {
    ExecResult r = run_seeded(p, s);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.store[g.find_var("y")->index()], 2);
  }
}

TEST(VmJoin, BarrierWithTerminatedSiblingReleases) {
  // The sibling never reaches a barrier; once it halts, the waiting
  // component must be excused and released.
  Graph g = lang::compile_or_throw(R"(
    par { barrier; x := 1; } and { y := 2; }
  )");
  VmProgram p = lower_to_bytecode(g);
  for (std::uint64_t s = 0; s < 32; ++s) {
    ExecResult r = run_seeded(p, s);
    ASSERT_TRUE(r.ok) << "seed " << s << " deadlocked";
    EXPECT_EQ(r.store[g.find_var("x")->index()], 1);
    EXPECT_EQ(r.store[g.find_var("y")->index()], 2);
  }
}

TEST(VmJoin, BarrierInNestedParWithZeroStatementComponent) {
  Graph g = lang::compile_or_throw(R"(
    par {
      par { a := 1; barrier; b := a + 1; } and { skip; }
    } and {
      c := 3;
    }
    d := b + c;
  )");
  VmProgram p = lower_to_bytecode(g);
  for (std::uint64_t s = 0; s < 32; ++s) {
    ExecResult r = run_seeded(p, s);
    ASSERT_TRUE(r.ok) << "seed " << s << " deadlocked";
    EXPECT_EQ(r.store[g.find_var("d")->index()], 5);
  }
}

TEST(VmJoin, TrailingBarrierResumesIntoHalt) {
  // Regression (found by the fuzz shape pool): a barrier that is the final
  // statement of its component patches its post-barrier edge to the
  // component exit, so the release re-enqueues the task with pc already at
  // kHaltPc. Both executors must treat that resume as the halt itself, not
  // fetch through the sentinel. Covers barrier-only components and a
  // trailing barrier inside a nested par.
  Graph g = lang::compile_or_throw(R"(
    par {
      par { barrier; } and { a := 1; barrier; }
    } and {
      b := 2;
    }
    c := a + b;
  )");
  VmProgram p = lower_to_bytecode(g);
  for (std::uint64_t s = 0; s < 48; ++s) {
    ExecResult r = run_seeded(p, s);
    ASSERT_TRUE(r.ok) << "seed " << s << " deadlocked";
    EXPECT_EQ(r.store[g.find_var("c")->index()], 3);
  }
  ParallelOptions popts;
  popts.workers = 3;
  for (std::uint64_t s = 0; s < 8; ++s) {
    popts.seed = s;
    ExecResult r = run_parallel(p, popts);
    ASSERT_TRUE(r.ok) << "seed " << s;
    EXPECT_EQ(r.store[g.find_var("c")->index()], 3);
  }
}

TEST(VmJoin, BarrierPhasesOrderWrites) {
  Graph g = lang::compile_or_throw(R"(
    par { a := 1; barrier; u := b + 0; }
    and { b := 2; barrier; v := a + 0; }
  )");
  VmProgram p = lower_to_bytecode(g);
  for (std::uint64_t s = 0; s < 32; ++s) {
    ExecResult r = run_seeded(p, s);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.store[g.find_var("u")->index()], 2);
    EXPECT_EQ(r.store[g.find_var("v")->index()], 1);
  }
}

TEST(VmJoin, SingleNodeRegions) {
  Graph g = lang::compile_or_throw(R"(
    par { x := 1; } and { y := 2; } and { z := 3; }
  )");
  VmProgram p = lower_to_bytecode(g);
  ExecResult r = run_seeded(p, 5);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.store[g.find_var("x")->index()], 1);
  EXPECT_EQ(r.store[g.find_var("y")->index()], 2);
  EXPECT_EQ(r.store[g.find_var("z")->index()], 3);
}

TEST(VmJoin, SplitTempsCrossingRegionBoundaries) {
  // PCM on fig7 inserts initialization temps around the parallel statement;
  // the optimized graph must lower and run under every schedule, and its
  // finals (projected on the original variables) must stay inside the
  // original's behaviour set.
  Graph g = figures::fig7();
  Graph t = verify::apply_named_pipeline("pcm", g);
  std::vector<std::string> observed = all_vars(g);
  EnumerationOptions eopts;
  eopts.atomic_assignments = false;
  eopts.partial_order_reduction = true;
  EnumerationResult ref = enumerate_executions(g, observed, eopts);
  ASSERT_TRUE(ref.exhausted);
  VmProgram p = lower_to_bytecode(t);
  for (std::uint64_t s = 0; s < 48; ++s) {
    ExecResult r = run_seeded(p, s);
    ASSERT_TRUE(r.ok);
    std::vector<std::int64_t> projected;
    for (const std::string& name : observed) {
      auto v = t.find_var(name);
      projected.push_back(v ? r.store[v->index()] : 0);
    }
    EXPECT_TRUE(ref.finals.count(projected)) << "seed " << s;
  }
}

// --- cost mode: the VM and the analytic walker are two implementations of
// the same measure and must agree instruction for instruction ---

TEST(VmCost, MatchesAnalyticWalkerOnFigures) {
  const Graph figures[] = {figures::fig2(), figures::fig7(), figures::fig10(),
                           figures::fig1(), figures::fig1_hoistable()};
  for (const Graph& g : figures) {
    VmProgram p = lower_to_bytecode(g, LowerOptions{.split_assignments = false});
    for (std::uint64_t s = 0; s < 16; ++s) {
      SeededOracle vm_oracle(s);
      SeededOracle walker_oracle(s);
      ExecResult r = run_with_oracle(p, vm_oracle);
      CostResult c = execution_time(g, walker_oracle);
      ASSERT_TRUE(r.ok && c.ok);
      EXPECT_EQ(r.time, c.time) << "seed " << s;
      EXPECT_EQ(r.computations, c.computations) << "seed " << s;
    }
  }
}

TEST(VmCost, SplitAndAtomicLoweringsChargeTheSame) {
  Graph g = figures::fig2();
  VmProgram split = lower_to_bytecode(g);
  VmProgram atomic =
      lower_to_bytecode(g, LowerOptions{.split_assignments = false});
  for (std::uint64_t s = 0; s < 8; ++s) {
    SeededOracle o1(s), o2(s);
    ExecResult a = run_with_oracle(split, o1);
    ExecResult b = run_with_oracle(atomic, o2);
    ASSERT_TRUE(a.ok && b.ok);
    EXPECT_EQ(a.time, b.time);
    EXPECT_EQ(a.computations, b.computations);
  }
}

TEST(VmCost, ExecutionalImprovementOnFigures) {
  // Theorem 3 empirically: on every sampled path the transformed program's
  // bottleneck time never exceeds the original's, and the VM agrees with
  // the analytic model on both sides.
  struct Case {
    Graph g;
    const char* pipeline;
  };
  const Case cases[] = {{figures::fig2(), "pcm"},   {figures::fig7(), "pcm"},
                        {figures::fig10(), "pcm"},  {figures::fig1(), "bcm"},
                        {figures::fig1(), "lcm"},
                        {figures::fig1_hoistable(), "bcm"},
                        {figures::fig1_hoistable(), "lcm"}};
  LowerOptions atomic;
  atomic.split_assignments = false;
  for (const Case& c : cases) {
    Graph t = verify::apply_named_pipeline(c.pipeline, c.g);
    VmProgram before = lower_to_bytecode(c.g, atomic);
    VmProgram after = lower_to_bytecode(t, atomic);
    for (std::uint64_t s = 0; s < 32; ++s) {
      SeededOracle ob(s), oa(s);
      ExecResult rb = run_with_oracle(before, ob);
      ExecResult ra = run_with_oracle(after, oa);
      ASSERT_TRUE(rb.ok && ra.ok);
      EXPECT_LE(ra.time, rb.time)
          << c.pipeline << " regressed bottleneck time on seed " << s;
      auto analytic = paired_execution_times(c.g, t, s);
      ASSERT_TRUE(analytic.has_value());
      EXPECT_EQ(rb.time, analytic->first.time) << "seed " << s;
      EXPECT_EQ(ra.time, analytic->second.time) << "seed " << s;
    }
  }
}

// --- parallel mode: real threads through the work-stealing deques ---

TEST(VmParallel, SequentialProgramMatchesSeededRun) {
  Graph g = lang::compile_or_throw(R"(
    a := 5; b := a + 2; c := a * b; d := c - b;
  )");
  VmProgram p = lower_to_bytecode(g);
  ExecResult seeded = run_seeded(p, 1);
  ParallelOptions popts;
  popts.workers = 4;
  ExecResult par = run_parallel(p, popts);
  ASSERT_TRUE(seeded.ok && par.ok);
  EXPECT_EQ(par.store, seeded.store);
}

TEST(VmParallel, FiguresTerminateOnRealThreads) {
  const Graph figures[] = {figures::fig2(), figures::fig7(), figures::fig10()};
  for (const Graph& g : figures) {
    VmProgram p = lower_to_bytecode(g);
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
      ParallelOptions popts;
      popts.workers = 4;
      popts.seed = seed;
      ExecResult r = run_parallel(p, popts);
      EXPECT_TRUE(r.ok);
      EXPECT_FALSE(r.deadlocked);
      EXPECT_GT(r.instrs, 0u);
    }
  }
}

TEST(VmParallel, BarrierAndEmptyComponentsOnRealThreads) {
  Graph g = lang::compile_or_throw(R"(
    par {
      par { a := 1; barrier; b := a + 1; } and { skip; }
    } and {
      c := 3;
    }
    d := b + c;
  )");
  VmProgram p = lower_to_bytecode(g);
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    ParallelOptions popts;
    popts.workers = 3;
    popts.seed = seed;
    ExecResult r = run_parallel(p, popts);
    ASSERT_TRUE(r.ok) << "seed " << seed;
    EXPECT_EQ(r.store[g.find_var("d")->index()], 5);
  }
}

// --- corpus harness smoke ---

TEST(VmHarness, SmallCorpusIsCleanAndDeterministic) {
  CorpusOptions opts;
  opts.seed = 11;
  opts.programs = 12;
  opts.shapes = 4;
  opts.schedules = 4;
  CorpusReport a = run_exec_corpus(opts);
  EXPECT_EQ(a.regressed, 0u) << a.summary();
  EXPECT_EQ(a.cost_mismatches, 0u) << a.summary();
  EXPECT_GT(a.pairs, 0u);
  EXPECT_TRUE(a.ok());
  CorpusReport b = run_exec_corpus(opts);
  EXPECT_EQ(a.to_json(), b.to_json());
}

}  // namespace
}  // namespace parcm::vm
