// The optimization-remark provenance layer: typed remarks with
// machine-readable reason chains for every code-motion decision, plus
// golden-file regression dumps for the paper's figures.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "figures/figures.hpp"
#include "lang/lower.hpp"
#include "motion/pcm.hpp"
#include "motion/pipeline.hpp"
#include "motion/report.hpp"
#include "obs/json.hpp"
#include "obs/remarks.hpp"

namespace parcm {
namespace {

// Runs the figure through (refined or naive) PCM with an isolated sink and
// returns the resolved remark stream.
std::vector<obs::Remark> capture(const std::string& figure,
                                 bool naive = false) {
  Graph g = lang::compile_or_throw(figures::figure_source(figure));
  obs::RemarkSink sink;
  sink.set_enabled(true);
  obs::RemarkSink* prev = obs::set_remark_sink(&sink);
  MotionResult r =
      naive ? naive_parallel_code_motion(g) : parallel_code_motion(g);
  obs::set_remark_sink(prev);
  std::vector<obs::Remark> remarks = sink.snapshot();
  resolve_remark_terms(g, remarks);
  return remarks;
}

std::string render(const std::vector<obs::Remark>& remarks) {
  std::ostringstream os;
  for (const obs::Remark& r : remarks) os << remark_to_string(r) << "\n";
  return os.str();
}

bool has_reason(const obs::Remark& r, obs::RemarkReason reason) {
  return std::find(r.reasons.begin(), r.reasons.end(), reason) !=
         r.reasons.end();
}

// Golden-file comparison. PARCM_REGEN_GOLDEN=1 rewrites the files in the
// source tree (see scripts/check_golden.sh).
void check_golden(const std::string& name, const std::string& actual) {
  std::string path = std::string(PARCM_GOLDEN_DIR) + "/" + name;
  if (std::getenv("PARCM_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << actual;
    return;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in) << "missing golden file " << path
                  << " — regenerate with PARCM_REGEN_GOLDEN=1";
  std::stringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(expected.str(), actual)
      << "remark stream for " << name
      << " changed; if intentional, regenerate with PARCM_REGEN_GOLDEN=1 "
         "(see scripts/check_golden.sh)";
}

#if !PARCM_OBS_ENABLED
#define PARCM_REQUIRE_OBS() \
  GTEST_SKIP() << "library built with PARCM_OBS=OFF: no remark stream"
#else
#define PARCM_REQUIRE_OBS() (void)0
#endif

TEST(RemarkSink, EmitSnapshotAndPassContext) {
  obs::RemarkSink sink;
  EXPECT_FALSE(sink.enabled());
  sink.set_enabled(true);
  sink.set_pass("unit");
  sink.emit(obs::Remark{obs::RemarkKind::kInserted, "", 3, 0, "a + b",
                        "hello", {obs::RemarkReason::kEarliest}, ""});
  sink.emit(obs::Remark{obs::RemarkKind::kBlocked, "explicit", 4, -1, "",
                        "kept", {}, ""});
  ASSERT_EQ(sink.size(), 2u);
  std::vector<obs::Remark> r = sink.snapshot();
  EXPECT_EQ(r[0].pass, "unit");      // stamped from the scope context
  EXPECT_EQ(r[1].pass, "explicit");  // explicit name wins
  sink.clear();
  EXPECT_TRUE(sink.empty());
}

TEST(RemarkSink, PassScopeRestoresPreviousName) {
  obs::RemarkSink sink;
  obs::RemarkSink* prev = obs::set_remark_sink(&sink);
  sink.set_enabled(true);
  {
    obs::RemarkPassScope outer("outer");
    {
      obs::RemarkPassScope inner("inner");
      EXPECT_EQ(obs::remarks().pass(), "inner");
    }
    EXPECT_EQ(obs::remarks().pass(), "outer");
  }
  EXPECT_EQ(obs::remarks().pass(), "");
  obs::set_remark_sink(prev);
}

TEST(RemarkSink, DisabledSinkRecordsNothing) {
  PARCM_REQUIRE_OBS();
  Graph g = lang::compile_or_throw(figures::figure_source("7"));
  obs::RemarkSink sink;  // enabled defaults to false
  obs::RemarkSink* prev = obs::set_remark_sink(&sink);
  parallel_code_motion(g);
  obs::set_remark_sink(prev);
  EXPECT_TRUE(sink.empty());
}

TEST(RemarkJson, SchemaIsValidAndVersioned) {
  obs::RemarkSink sink;
  sink.set_enabled(true);
  sink.emit(obs::Remark{obs::RemarkKind::kBlocked, "pcm", 6, 0, "a + b",
                        "a \"quoted\" message\nwith a newline",
                        {obs::RemarkReason::kWitnessDiffers,
                         obs::RemarkReason::kBottleneck},
                        "detail"});
  std::string json = sink.to_json(/*pretty=*/true);
  EXPECT_TRUE(obs::json_valid(json)) << json;
  EXPECT_NE(json.find("\"schema\": \"parcm-remarks-v1\""), std::string::npos);
  EXPECT_NE(json.find("interleaving-witness-p3"), std::string::npos);
  EXPECT_NE(json.find("\"P3\""), std::string::npos);
  EXPECT_NE(json.find("\"P1\""), std::string::npos);
}

// The Fig. 7 pitfall, refined variant: both components are individually
// down-safe for a+b, but the witnessing occurrence differs per interleaving
// — so the initialization after the join must NOT be suppressed, and the
// placement remark names P3.
TEST(RemarkChains, Fig7RefinedBlocksSuppressionWithP3) {
  PARCM_REQUIRE_OBS();
  std::vector<obs::Remark> remarks = capture("7");
  auto blocked = std::find_if(
      remarks.begin(), remarks.end(), [](const obs::Remark& r) {
        return r.kind == obs::RemarkKind::kBlocked &&
               has_reason(r, obs::RemarkReason::kWitnessDiffers);
      });
  ASSERT_NE(blocked, remarks.end());
  EXPECT_EQ(blocked->term, "a + b");
  EXPECT_EQ(blocked->pass, "pcm");
  // The insertion materialized at that join carries the same P3 reason.
  auto inserted = std::find_if(
      remarks.begin(), remarks.end(), [&](const obs::Remark& r) {
        return r.kind == obs::RemarkKind::kInserted &&
               r.node == blocked->node &&
               has_reason(r, obs::RemarkReason::kWitnessDiffers);
      });
  ASSERT_NE(inserted, remarks.end());
  EXPECT_TRUE(has_reason(*inserted, obs::RemarkReason::kEarliest));
  EXPECT_TRUE(has_reason(*inserted, obs::RemarkReason::kDownSafe));
  EXPECT_TRUE(has_reason(*inserted, obs::RemarkReason::kEdgePlacement));
  EXPECT_STREQ(
      obs::remark_reason_pitfall(obs::RemarkReason::kWitnessDiffers), "P3");
}

// The same figure under the refuted naive (atomic) view: the analysis
// believes an establishing component delivers the value across the join and
// skips the initialization — the useless-initialization suppression the
// refined up-safe_par synchronization exists to prevent.
TEST(RemarkChains, Fig7NaiveWronglyExportsAcrossJoin) {
  PARCM_REQUIRE_OBS();
  std::vector<obs::Remark> remarks = capture("7", /*naive=*/true);
  auto skipped = std::find_if(
      remarks.begin(), remarks.end(), [](const obs::Remark& r) {
        return r.kind == obs::RemarkKind::kSkipped &&
               has_reason(r, obs::RemarkReason::kExported);
      });
  ASSERT_NE(skipped, remarks.end());
  EXPECT_EQ(skipped->pass, "pcm-naive");
  // Naive never detects the per-interleaving witness problem.
  for (const obs::Remark& r : remarks) {
    EXPECT_FALSE(has_reason(r, obs::RemarkReason::kWitnessDiffers))
        << remark_to_string(r);
  }
}

// Fig. 2's recursive assignment u := u + 1 inside a parallel statement:
// the P2 guard marks the occurrence non-replaceable.
TEST(RemarkChains, Fig2RecursiveAssignmentGuardP2) {
  PARCM_REQUIRE_OBS();
  std::vector<obs::Remark> remarks = capture("2");
  auto guard = std::find_if(
      remarks.begin(), remarks.end(), [](const obs::Remark& r) {
        return r.kind == obs::RemarkKind::kDegraded &&
               has_reason(r, obs::RemarkReason::kRecursiveSplit);
      });
  ASSERT_NE(guard, remarks.end());
  EXPECT_EQ(guard->pass, "predicates");
  EXPECT_EQ(guard->detail, "u := u + 1");
  EXPECT_STREQ(
      obs::remark_reason_pitfall(obs::RemarkReason::kRecursiveSplit), "P2");
}

TEST(RemarkChains, PipelineAttributesRemarksPerPass) {
  PARCM_REQUIRE_OBS();
  Graph g = lang::compile_or_throw(figures::figure_source("2"));
  obs::RemarkSink sink;
  sink.set_enabled(true);
  obs::RemarkSink* prev = obs::set_remark_sink(&sink);
  PipelineResult result = default_pipeline().run(g);
  obs::set_remark_sink(prev);
  std::size_t total = 0;
  for (const PassStats& p : result.passes) total += p.remarks;
  EXPECT_EQ(total, sink.size());
  EXPECT_GT(total, 0u);
  EXPECT_NE(result.to_json().find("\"remarks\""), std::string::npos);
  EXPECT_NE(result.to_string().find("remarks"), std::string::npos);
}

TEST(RemarkReport, MotionReportIsARenderingOfRemarks) {
  Graph g = lang::compile_or_throw(figures::figure_source("10"));
  MotionResult result = parallel_code_motion(g);
  std::vector<obs::Remark> summary = motion_remarks(result);
  // Works in OFF builds too: the summary path never touches the sink.
  EXPECT_EQ(summary.size(), result.num_insertions() +
                                result.num_replacements() +
                                [&] {
                                  std::size_t b = 0;
                                  for (const TermMotion& t : result.terms) {
                                    b += t.bridge_nodes.size();
                                  }
                                  return b;
                                }());
  std::string report = motion_report(result);
  for (const TermMotion& tm : result.terms) {
    EXPECT_NE(report.find("temp " + result.graph.var_name(tm.temp)),
              std::string::npos);
  }
  EXPECT_NE(report.find("insert at:"), std::string::npos);
  EXPECT_NE(report.find("replace at:"), std::string::npos);
}

TEST(RemarkDot, AnnotatedExportCarriesFactsAndBadges) {
  PARCM_REQUIRE_OBS();
  std::vector<obs::Remark> remarks = capture("7");
  Graph g = lang::compile_or_throw(figures::figure_source("7"));
  MotionResult result = parallel_code_motion(g);
  TermTable terms(g);
  std::string dot =
      motion_dot(result, TermId(0), remarks, "fig7");
  EXPECT_NE(dot.find("digraph \"fig7\""), std::string::npos);
  EXPECT_NE(dot.find("Earliest"), std::string::npos);
  EXPECT_NE(dot.find("[blocked P3]"), std::string::npos);
  EXPECT_NE(dot.find("fillcolor"), std::string::npos);
}

TEST(RemarkGolden, Fig2) {
  PARCM_REQUIRE_OBS();
  check_golden("remarks_fig2.txt", render(capture("2")));
}

TEST(RemarkGolden, Fig7) {
  PARCM_REQUIRE_OBS();
  check_golden("remarks_fig7.txt", render(capture("7")));
}

TEST(RemarkGolden, Fig10) {
  PARCM_REQUIRE_OBS();
  check_golden("remarks_fig10.txt", render(capture("10")));
}

}  // namespace
}  // namespace parcm
