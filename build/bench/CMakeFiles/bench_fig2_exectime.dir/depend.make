# Empty dependencies file for bench_fig2_exectime.
# This may be replaced when dependencies are built.
