# Empty compiler generated dependencies file for bench_packed_vs_scalar.
# This may be replaced when dependencies are built.
