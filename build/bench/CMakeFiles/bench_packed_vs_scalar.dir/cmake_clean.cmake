file(REMOVE_RECURSE
  "CMakeFiles/bench_packed_vs_scalar.dir/bench_packed_vs_scalar.cpp.o"
  "CMakeFiles/bench_packed_vs_scalar.dir/bench_packed_vs_scalar.cpp.o.d"
  "bench_packed_vs_scalar"
  "bench_packed_vs_scalar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_packed_vs_scalar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
