# Empty dependencies file for bench_product_blowup.
# This may be replaced when dependencies are built.
