file(REMOVE_RECURSE
  "CMakeFiles/bench_product_blowup.dir/bench_product_blowup.cpp.o"
  "CMakeFiles/bench_product_blowup.dir/bench_product_blowup.cpp.o.d"
  "bench_product_blowup"
  "bench_product_blowup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_product_blowup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
