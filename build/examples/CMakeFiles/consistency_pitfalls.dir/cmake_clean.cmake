file(REMOVE_RECURSE
  "CMakeFiles/consistency_pitfalls.dir/consistency_pitfalls.cpp.o"
  "CMakeFiles/consistency_pitfalls.dir/consistency_pitfalls.cpp.o.d"
  "consistency_pitfalls"
  "consistency_pitfalls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/consistency_pitfalls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
