# Empty compiler generated dependencies file for consistency_pitfalls.
# This may be replaced when dependencies are built.
