file(REMOVE_RECURSE
  "CMakeFiles/reproduce_experiments.dir/reproduce_experiments.cpp.o"
  "CMakeFiles/reproduce_experiments.dir/reproduce_experiments.cpp.o.d"
  "reproduce_experiments"
  "reproduce_experiments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reproduce_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
