# Empty dependencies file for reproduce_experiments.
# This may be replaced when dependencies are built.
