file(REMOVE_RECURSE
  "CMakeFiles/parcm_opt.dir/parcm_opt.cpp.o"
  "CMakeFiles/parcm_opt.dir/parcm_opt.cpp.o.d"
  "parcm_opt"
  "parcm_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parcm_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
