# Empty dependencies file for parcm_opt.
# This may be replaced when dependencies are built.
