# Empty dependencies file for barrier_phases.
# This may be replaced when dependencies are built.
