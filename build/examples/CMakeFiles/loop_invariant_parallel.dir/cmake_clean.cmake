file(REMOVE_RECURSE
  "CMakeFiles/loop_invariant_parallel.dir/loop_invariant_parallel.cpp.o"
  "CMakeFiles/loop_invariant_parallel.dir/loop_invariant_parallel.cpp.o.d"
  "loop_invariant_parallel"
  "loop_invariant_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loop_invariant_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
