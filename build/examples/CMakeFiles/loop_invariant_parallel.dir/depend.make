# Empty dependencies file for loop_invariant_parallel.
# This may be replaced when dependencies are built.
