# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_loop_invariant "/root/repo/build/examples/loop_invariant_parallel" "4")
set_tests_properties(example_loop_invariant PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_consistency "/root/repo/build/examples/consistency_pitfalls")
set_tests_properties(example_consistency PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_bottleneck "/root/repo/build/examples/bottleneck_aware" "4")
set_tests_properties(example_bottleneck PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_barrier_phases "/root/repo/build/examples/barrier_phases")
set_tests_properties(example_barrier_phases PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_redundancy_audit "/root/repo/build/examples/redundancy_audit")
set_tests_properties(example_redundancy_audit PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_reproduce "/root/repo/build/examples/reproduce_experiments")
set_tests_properties(example_reproduce PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_parcm_opt "/root/repo/build/examples/parcm_opt" "--figure" "10" "--report" "--table" "a + b")
set_tests_properties(example_parcm_opt PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_parcm_opt_dce "/root/repo/build/examples/parcm_opt" "--figure" "2" "--dce" "--report")
set_tests_properties(example_parcm_opt_dce PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
