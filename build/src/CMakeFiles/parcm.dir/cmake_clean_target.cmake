file(REMOVE_RECURSE
  "libparcm.a"
)
