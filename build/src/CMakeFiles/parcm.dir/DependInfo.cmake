
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analyses/constprop.cpp" "src/CMakeFiles/parcm.dir/analyses/constprop.cpp.o" "gcc" "src/CMakeFiles/parcm.dir/analyses/constprop.cpp.o.d"
  "/root/repo/src/analyses/downsafety.cpp" "src/CMakeFiles/parcm.dir/analyses/downsafety.cpp.o" "gcc" "src/CMakeFiles/parcm.dir/analyses/downsafety.cpp.o.d"
  "/root/repo/src/analyses/earliest.cpp" "src/CMakeFiles/parcm.dir/analyses/earliest.cpp.o" "gcc" "src/CMakeFiles/parcm.dir/analyses/earliest.cpp.o.d"
  "/root/repo/src/analyses/liveness.cpp" "src/CMakeFiles/parcm.dir/analyses/liveness.cpp.o" "gcc" "src/CMakeFiles/parcm.dir/analyses/liveness.cpp.o.d"
  "/root/repo/src/analyses/predicates.cpp" "src/CMakeFiles/parcm.dir/analyses/predicates.cpp.o" "gcc" "src/CMakeFiles/parcm.dir/analyses/predicates.cpp.o.d"
  "/root/repo/src/analyses/upsafety.cpp" "src/CMakeFiles/parcm.dir/analyses/upsafety.cpp.o" "gcc" "src/CMakeFiles/parcm.dir/analyses/upsafety.cpp.o.d"
  "/root/repo/src/dfa/direction.cpp" "src/CMakeFiles/parcm.dir/dfa/direction.cpp.o" "gcc" "src/CMakeFiles/parcm.dir/dfa/direction.cpp.o.d"
  "/root/repo/src/dfa/framework.cpp" "src/CMakeFiles/parcm.dir/dfa/framework.cpp.o" "gcc" "src/CMakeFiles/parcm.dir/dfa/framework.cpp.o.d"
  "/root/repo/src/dfa/hier_solver.cpp" "src/CMakeFiles/parcm.dir/dfa/hier_solver.cpp.o" "gcc" "src/CMakeFiles/parcm.dir/dfa/hier_solver.cpp.o.d"
  "/root/repo/src/dfa/lattice.cpp" "src/CMakeFiles/parcm.dir/dfa/lattice.cpp.o" "gcc" "src/CMakeFiles/parcm.dir/dfa/lattice.cpp.o.d"
  "/root/repo/src/dfa/packed.cpp" "src/CMakeFiles/parcm.dir/dfa/packed.cpp.o" "gcc" "src/CMakeFiles/parcm.dir/dfa/packed.cpp.o.d"
  "/root/repo/src/dfa/seq_solver.cpp" "src/CMakeFiles/parcm.dir/dfa/seq_solver.cpp.o" "gcc" "src/CMakeFiles/parcm.dir/dfa/seq_solver.cpp.o.d"
  "/root/repo/src/figures/figures.cpp" "src/CMakeFiles/parcm.dir/figures/figures.cpp.o" "gcc" "src/CMakeFiles/parcm.dir/figures/figures.cpp.o.d"
  "/root/repo/src/ir/builder.cpp" "src/CMakeFiles/parcm.dir/ir/builder.cpp.o" "gcc" "src/CMakeFiles/parcm.dir/ir/builder.cpp.o.d"
  "/root/repo/src/ir/expr.cpp" "src/CMakeFiles/parcm.dir/ir/expr.cpp.o" "gcc" "src/CMakeFiles/parcm.dir/ir/expr.cpp.o.d"
  "/root/repo/src/ir/graph.cpp" "src/CMakeFiles/parcm.dir/ir/graph.cpp.o" "gcc" "src/CMakeFiles/parcm.dir/ir/graph.cpp.o.d"
  "/root/repo/src/ir/printer.cpp" "src/CMakeFiles/parcm.dir/ir/printer.cpp.o" "gcc" "src/CMakeFiles/parcm.dir/ir/printer.cpp.o.d"
  "/root/repo/src/ir/regions.cpp" "src/CMakeFiles/parcm.dir/ir/regions.cpp.o" "gcc" "src/CMakeFiles/parcm.dir/ir/regions.cpp.o.d"
  "/root/repo/src/ir/terms.cpp" "src/CMakeFiles/parcm.dir/ir/terms.cpp.o" "gcc" "src/CMakeFiles/parcm.dir/ir/terms.cpp.o.d"
  "/root/repo/src/ir/transform_utils.cpp" "src/CMakeFiles/parcm.dir/ir/transform_utils.cpp.o" "gcc" "src/CMakeFiles/parcm.dir/ir/transform_utils.cpp.o.d"
  "/root/repo/src/ir/validate.cpp" "src/CMakeFiles/parcm.dir/ir/validate.cpp.o" "gcc" "src/CMakeFiles/parcm.dir/ir/validate.cpp.o.d"
  "/root/repo/src/lang/ast.cpp" "src/CMakeFiles/parcm.dir/lang/ast.cpp.o" "gcc" "src/CMakeFiles/parcm.dir/lang/ast.cpp.o.d"
  "/root/repo/src/lang/lexer.cpp" "src/CMakeFiles/parcm.dir/lang/lexer.cpp.o" "gcc" "src/CMakeFiles/parcm.dir/lang/lexer.cpp.o.d"
  "/root/repo/src/lang/lower.cpp" "src/CMakeFiles/parcm.dir/lang/lower.cpp.o" "gcc" "src/CMakeFiles/parcm.dir/lang/lower.cpp.o.d"
  "/root/repo/src/lang/parser.cpp" "src/CMakeFiles/parcm.dir/lang/parser.cpp.o" "gcc" "src/CMakeFiles/parcm.dir/lang/parser.cpp.o.d"
  "/root/repo/src/motion/bcm.cpp" "src/CMakeFiles/parcm.dir/motion/bcm.cpp.o" "gcc" "src/CMakeFiles/parcm.dir/motion/bcm.cpp.o.d"
  "/root/repo/src/motion/code_motion.cpp" "src/CMakeFiles/parcm.dir/motion/code_motion.cpp.o" "gcc" "src/CMakeFiles/parcm.dir/motion/code_motion.cpp.o.d"
  "/root/repo/src/motion/dce.cpp" "src/CMakeFiles/parcm.dir/motion/dce.cpp.o" "gcc" "src/CMakeFiles/parcm.dir/motion/dce.cpp.o.d"
  "/root/repo/src/motion/lcm.cpp" "src/CMakeFiles/parcm.dir/motion/lcm.cpp.o" "gcc" "src/CMakeFiles/parcm.dir/motion/lcm.cpp.o.d"
  "/root/repo/src/motion/pcm.cpp" "src/CMakeFiles/parcm.dir/motion/pcm.cpp.o" "gcc" "src/CMakeFiles/parcm.dir/motion/pcm.cpp.o.d"
  "/root/repo/src/motion/pipeline.cpp" "src/CMakeFiles/parcm.dir/motion/pipeline.cpp.o" "gcc" "src/CMakeFiles/parcm.dir/motion/pipeline.cpp.o.d"
  "/root/repo/src/motion/report.cpp" "src/CMakeFiles/parcm.dir/motion/report.cpp.o" "gcc" "src/CMakeFiles/parcm.dir/motion/report.cpp.o.d"
  "/root/repo/src/motion/sinking.cpp" "src/CMakeFiles/parcm.dir/motion/sinking.cpp.o" "gcc" "src/CMakeFiles/parcm.dir/motion/sinking.cpp.o.d"
  "/root/repo/src/semantics/cost.cpp" "src/CMakeFiles/parcm.dir/semantics/cost.cpp.o" "gcc" "src/CMakeFiles/parcm.dir/semantics/cost.cpp.o.d"
  "/root/repo/src/semantics/enumerator.cpp" "src/CMakeFiles/parcm.dir/semantics/enumerator.cpp.o" "gcc" "src/CMakeFiles/parcm.dir/semantics/enumerator.cpp.o.d"
  "/root/repo/src/semantics/equivalence.cpp" "src/CMakeFiles/parcm.dir/semantics/equivalence.cpp.o" "gcc" "src/CMakeFiles/parcm.dir/semantics/equivalence.cpp.o.d"
  "/root/repo/src/semantics/interpreter.cpp" "src/CMakeFiles/parcm.dir/semantics/interpreter.cpp.o" "gcc" "src/CMakeFiles/parcm.dir/semantics/interpreter.cpp.o.d"
  "/root/repo/src/semantics/product.cpp" "src/CMakeFiles/parcm.dir/semantics/product.cpp.o" "gcc" "src/CMakeFiles/parcm.dir/semantics/product.cpp.o.d"
  "/root/repo/src/semantics/state.cpp" "src/CMakeFiles/parcm.dir/semantics/state.cpp.o" "gcc" "src/CMakeFiles/parcm.dir/semantics/state.cpp.o.d"
  "/root/repo/src/support/bitvector.cpp" "src/CMakeFiles/parcm.dir/support/bitvector.cpp.o" "gcc" "src/CMakeFiles/parcm.dir/support/bitvector.cpp.o.d"
  "/root/repo/src/support/diagnostics.cpp" "src/CMakeFiles/parcm.dir/support/diagnostics.cpp.o" "gcc" "src/CMakeFiles/parcm.dir/support/diagnostics.cpp.o.d"
  "/root/repo/src/support/rng.cpp" "src/CMakeFiles/parcm.dir/support/rng.cpp.o" "gcc" "src/CMakeFiles/parcm.dir/support/rng.cpp.o.d"
  "/root/repo/src/workload/families.cpp" "src/CMakeFiles/parcm.dir/workload/families.cpp.o" "gcc" "src/CMakeFiles/parcm.dir/workload/families.cpp.o.d"
  "/root/repo/src/workload/randomprog.cpp" "src/CMakeFiles/parcm.dir/workload/randomprog.cpp.o" "gcc" "src/CMakeFiles/parcm.dir/workload/randomprog.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
