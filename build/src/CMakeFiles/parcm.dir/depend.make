# Empty dependencies file for parcm.
# This may be replaced when dependencies are built.
