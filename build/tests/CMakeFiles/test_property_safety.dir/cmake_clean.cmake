file(REMOVE_RECURSE
  "CMakeFiles/test_property_safety.dir/test_property_safety.cpp.o"
  "CMakeFiles/test_property_safety.dir/test_property_safety.cpp.o.d"
  "test_property_safety"
  "test_property_safety.pdb"
  "test_property_safety[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_safety.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
