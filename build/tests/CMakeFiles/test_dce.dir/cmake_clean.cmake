file(REMOVE_RECURSE
  "CMakeFiles/test_dce.dir/test_dce.cpp.o"
  "CMakeFiles/test_dce.dir/test_dce.cpp.o.d"
  "test_dce"
  "test_dce.pdb"
  "test_dce[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
