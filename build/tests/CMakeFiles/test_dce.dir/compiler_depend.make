# Empty compiler generated dependencies file for test_dce.
# This may be replaced when dependencies are built.
