# Empty dependencies file for test_property_transform.
# This may be replaced when dependencies are built.
