file(REMOVE_RECURSE
  "CMakeFiles/test_property_transform.dir/test_property_transform.cpp.o"
  "CMakeFiles/test_property_transform.dir/test_property_transform.cpp.o.d"
  "test_property_transform"
  "test_property_transform.pdb"
  "test_property_transform[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
