file(REMOVE_RECURSE
  "CMakeFiles/test_sinking.dir/test_sinking.cpp.o"
  "CMakeFiles/test_sinking.dir/test_sinking.cpp.o.d"
  "test_sinking"
  "test_sinking.pdb"
  "test_sinking[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sinking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
