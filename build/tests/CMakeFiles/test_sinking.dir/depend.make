# Empty dependencies file for test_sinking.
# This may be replaced when dependencies are built.
