# Empty dependencies file for test_earliest.
# This may be replaced when dependencies are built.
