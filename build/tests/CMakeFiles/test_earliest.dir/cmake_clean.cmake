file(REMOVE_RECURSE
  "CMakeFiles/test_earliest.dir/test_earliest.cpp.o"
  "CMakeFiles/test_earliest.dir/test_earliest.cpp.o.d"
  "test_earliest"
  "test_earliest.pdb"
  "test_earliest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_earliest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
