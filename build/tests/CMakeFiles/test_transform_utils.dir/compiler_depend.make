# Empty compiler generated dependencies file for test_transform_utils.
# This may be replaced when dependencies are built.
