file(REMOVE_RECURSE
  "CMakeFiles/test_transform_utils.dir/test_transform_utils.cpp.o"
  "CMakeFiles/test_transform_utils.dir/test_transform_utils.cpp.o.d"
  "test_transform_utils"
  "test_transform_utils.pdb"
  "test_transform_utils[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transform_utils.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
