file(REMOVE_RECURSE
  "CMakeFiles/test_dfa_solvers.dir/test_dfa_solvers.cpp.o"
  "CMakeFiles/test_dfa_solvers.dir/test_dfa_solvers.cpp.o.d"
  "test_dfa_solvers"
  "test_dfa_solvers.pdb"
  "test_dfa_solvers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dfa_solvers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
