# Empty compiler generated dependencies file for test_dfa_solvers.
# This may be replaced when dependencies are built.
