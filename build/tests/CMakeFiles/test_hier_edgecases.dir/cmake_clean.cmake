file(REMOVE_RECURSE
  "CMakeFiles/test_hier_edgecases.dir/test_hier_edgecases.cpp.o"
  "CMakeFiles/test_hier_edgecases.dir/test_hier_edgecases.cpp.o.d"
  "test_hier_edgecases"
  "test_hier_edgecases.pdb"
  "test_hier_edgecases[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hier_edgecases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
