# Empty dependencies file for test_hier_edgecases.
# This may be replaced when dependencies are built.
