file(REMOVE_RECURSE
  "CMakeFiles/test_enumerator.dir/test_enumerator.cpp.o"
  "CMakeFiles/test_enumerator.dir/test_enumerator.cpp.o.d"
  "test_enumerator"
  "test_enumerator.pdb"
  "test_enumerator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_enumerator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
