file(REMOVE_RECURSE
  "CMakeFiles/test_por.dir/test_por.cpp.o"
  "CMakeFiles/test_por.dir/test_por.cpp.o.d"
  "test_por"
  "test_por.pdb"
  "test_por[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_por.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
