# Empty dependencies file for test_por.
# This may be replaced when dependencies are built.
