# Empty compiler generated dependencies file for test_pcm.
# This may be replaced when dependencies are built.
