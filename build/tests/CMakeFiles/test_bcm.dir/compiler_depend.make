# Empty compiler generated dependencies file for test_bcm.
# This may be replaced when dependencies are built.
