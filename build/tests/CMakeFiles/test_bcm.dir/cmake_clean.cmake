file(REMOVE_RECURSE
  "CMakeFiles/test_bcm.dir/test_bcm.cpp.o"
  "CMakeFiles/test_bcm.dir/test_bcm.cpp.o.d"
  "test_bcm"
  "test_bcm.pdb"
  "test_bcm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bcm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
