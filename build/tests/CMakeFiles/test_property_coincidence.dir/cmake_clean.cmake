file(REMOVE_RECURSE
  "CMakeFiles/test_property_coincidence.dir/test_property_coincidence.cpp.o"
  "CMakeFiles/test_property_coincidence.dir/test_property_coincidence.cpp.o.d"
  "test_property_coincidence"
  "test_property_coincidence.pdb"
  "test_property_coincidence[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_coincidence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
