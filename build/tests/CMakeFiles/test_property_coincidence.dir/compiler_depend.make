# Empty compiler generated dependencies file for test_property_coincidence.
# This may be replaced when dependencies are built.
