# Empty dependencies file for test_constprop.
# This may be replaced when dependencies are built.
