file(REMOVE_RECURSE
  "CMakeFiles/test_constprop.dir/test_constprop.cpp.o"
  "CMakeFiles/test_constprop.dir/test_constprop.cpp.o.d"
  "test_constprop"
  "test_constprop.pdb"
  "test_constprop[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_constprop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
