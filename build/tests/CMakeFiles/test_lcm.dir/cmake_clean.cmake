file(REMOVE_RECURSE
  "CMakeFiles/test_lcm.dir/test_lcm.cpp.o"
  "CMakeFiles/test_lcm.dir/test_lcm.cpp.o.d"
  "test_lcm"
  "test_lcm.pdb"
  "test_lcm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lcm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
