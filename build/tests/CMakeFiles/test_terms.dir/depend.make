# Empty dependencies file for test_terms.
# This may be replaced when dependencies are built.
