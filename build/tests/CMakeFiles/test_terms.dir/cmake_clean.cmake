file(REMOVE_RECURSE
  "CMakeFiles/test_terms.dir/test_terms.cpp.o"
  "CMakeFiles/test_terms.dir/test_terms.cpp.o.d"
  "test_terms"
  "test_terms.pdb"
  "test_terms[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_terms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
