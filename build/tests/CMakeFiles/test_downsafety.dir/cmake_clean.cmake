file(REMOVE_RECURSE
  "CMakeFiles/test_downsafety.dir/test_downsafety.cpp.o"
  "CMakeFiles/test_downsafety.dir/test_downsafety.cpp.o.d"
  "test_downsafety"
  "test_downsafety.pdb"
  "test_downsafety[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_downsafety.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
