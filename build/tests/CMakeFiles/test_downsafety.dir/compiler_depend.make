# Empty compiler generated dependencies file for test_downsafety.
# This may be replaced when dependencies are built.
