file(REMOVE_RECURSE
  "CMakeFiles/test_upsafety.dir/test_upsafety.cpp.o"
  "CMakeFiles/test_upsafety.dir/test_upsafety.cpp.o.d"
  "test_upsafety"
  "test_upsafety.pdb"
  "test_upsafety[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_upsafety.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
