# Empty compiler generated dependencies file for test_upsafety.
# This may be replaced when dependencies are built.
