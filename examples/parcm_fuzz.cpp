// parcm_fuzz — differential translation-validation fuzzer.
//
// Generates random parallel programs, runs them through a transformation
// pipeline, and checks every result against the oracle
// (verify::differential_check). Confirmed divergences are delta-debugged to
// a minimal reproducer. Fully reproducible: the same --seed yields the same
// programs, schedules and verdicts in any process.
//
//   parcm_fuzz [options]
//     --seed N          campaign seed (default 1)
//     --count N         programs to generate (default 100)
//     --jobs N          worker threads for the check phase (default 1;
//                       0 = hardware concurrency). The outcome is
//                       identical at any jobs value.
//     --pipeline NAME   bcm | lcm | pcm | naive | sinking | dce | full
//     --oracle NAME     exact | vm | both (default exact). vm checks final
//                       stores across seeded VM schedules
//                       (verify::vm_differential_check); both additionally
//                       counts cross-oracle disagreements
//     --vm-schedules N  seeded VM schedules per side (default 64)
//     --smoke           time-boxed CI mode (wall-clock cap, default 60 s)
//     --seconds S       wall-clock cap in seconds (0 = none)
//     --inject MODE     flip a safety ingredient to test the oracle:
//                       naive | no-privatize | no-parend-export | no-sink
//     --expect-catch    exit 0 iff the injected miscompile WAS caught
//     --out DIR         write repro_<seed>_<i>.parcm + .regression.cpp
//     --no-reduce       skip delta debugging of failures
//     --atomic          check under atomic-assignment semantics instead of
//                       the Remark 2.1 split model (PCM is only expected to
//                       validate under split; see verify::Budget)
//     --target-stmts N  generator statement budget (default 10)
//     --max-par-depth N parallel nesting depth (default 2)
//     --max-states N    exact-enumeration state cap
//     --dump-program    print program #(--index, default 0) and exit
//                       (the byte-identity anchor of the reproducer
//                       contract; see tests/test_workload.cpp)
//     --index N         program index for --dump-program
//     --json            print the machine-readable campaign summary
//     --stats           print the verify.* observability counters
//     --metrics-json F  write the campaign's parcm-metrics-v1 registry dump
//                       (verify.* counters, check-latency histograms) to F;
//                       feed to parcm_profile for attribution
//     --forensics-dir D write a parcm-forensic-v1 bundle per confirmed
//                       divergence into D (replayable with
//                       parcm_opt --replay); also arms the flight recorder
//
// Exit codes: 0 clean (or caught, with --expect-catch), 1 unexpected
// divergence, 2 usage error, 4 injected miscompile not caught.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>

#include "lang/unparse.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "verify/fuzz.hpp"

int main(int argc, char** argv) {
  using namespace parcm;
  verify::FuzzOptions opt;
  bool expect_catch = false, dump_program = false, json = false, stats = false;
  std::size_t dump_index = 0;
  std::string metrics_json_path;

  std::vector<std::string> args(argv + 1, argv + argc);
  auto next_u64 = [&args](std::size_t* i) -> std::uint64_t {
    if (*i + 1 >= args.size()) {
      std::cerr << args[*i] << " needs a value\n";
      std::exit(2);
    }
    return std::stoull(args[++*i]);
  };
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--seed") {
      opt.seed = next_u64(&i);
    } else if (a == "--count") {
      opt.count = static_cast<std::size_t>(next_u64(&i));
    } else if (a == "--jobs") {
      opt.jobs = static_cast<std::size_t>(next_u64(&i));
    } else if (a == "--pipeline") {
      if (i + 1 >= args.size()) return 2;
      opt.pipeline = args[++i];
    } else if (a == "--oracle") {
      if (i + 1 >= args.size()) return 2;
      opt.oracle = args[++i];
      if (opt.oracle != "exact" && opt.oracle != "vm" &&
          opt.oracle != "both") {
        std::cerr << "unknown oracle " << opt.oracle << "\n";
        return 2;
      }
    } else if (a == "--vm-schedules") {
      opt.vm_budget.schedules = static_cast<std::size_t>(next_u64(&i));
    } else if (a == "--smoke") {
      if (opt.seconds <= 0) opt.seconds = 60;
      opt.count = 100000;  // the wall clock is the real bound
    } else if (a == "--seconds") {
      opt.seconds = static_cast<double>(next_u64(&i));
    } else if (a == "--inject") {
      if (i + 1 >= args.size()) return 2;
      opt.inject.enabled = true;
      opt.inject.mode = args[++i];
    } else if (a == "--expect-catch") {
      expect_catch = true;
    } else if (a == "--out") {
      if (i + 1 >= args.size()) return 2;
      opt.out_dir = args[++i];
    } else if (a == "--no-reduce") {
      opt.reduce = false;
    } else if (a == "--atomic") {
      opt.budget.split_assignments = false;
    } else if (a == "--target-stmts") {
      opt.gen.target_stmts = static_cast<std::size_t>(next_u64(&i));
    } else if (a == "--max-par-depth") {
      opt.gen.max_par_depth = static_cast<int>(next_u64(&i));
    } else if (a == "--max-states") {
      opt.budget.max_states = static_cast<std::size_t>(next_u64(&i));
    } else if (a == "--dump-program") {
      dump_program = true;
    } else if (a == "--index") {
      dump_index = static_cast<std::size_t>(next_u64(&i));
    } else if (a == "--json") {
      json = true;
    } else if (a == "--stats") {
      stats = true;
    } else if (a == "--metrics-json") {
      if (i + 1 >= args.size()) return 2;
      metrics_json_path = args[++i];
    } else if (a == "--forensics-dir") {
      if (i + 1 >= args.size()) return 2;
      opt.forensics_dir = args[++i];
    } else if (a == "--help" || a == "-h") {
      std::cout << "usage: parcm_fuzz [--seed N] [--count N] [--jobs N] "
                   "[--pipeline bcm|lcm|pcm|naive|sinking|dce|full] "
                   "[--oracle exact|vm|both] [--vm-schedules N] "
                   "[--smoke] [--seconds S] [--inject MODE] [--expect-catch] "
                   "[--out DIR] [--no-reduce] [--atomic] [--dump-program "
                   "[--index N]] [--json] [--stats] [--metrics-json FILE] "
                   "[--forensics-dir DIR]\n";
      return 0;
    } else {
      std::cerr << "unknown option " << a << "\n";
      return 2;
    }
  }

  if (dump_program) {
    std::cout << lang::to_source(
        verify::fuzz_program(opt.seed, dump_index, opt.gen));
    return 0;
  }

  // Bundles embed a flight-recorder snapshot; arm it before the campaign.
  if (!opt.forensics_dir.empty()) obs::flight().set_enabled(true);

  verify::FuzzOutcome outcome = verify::run_fuzz(opt);
  std::cout << outcome.summary() << "\n";
  for (const verify::FuzzFailure& f : outcome.failures) {
    std::cout << "--- reproducer #" << f.index << " ---\n"
              << f.reduced_source;
  }
  if (json) std::cout << outcome.to_json(true) << "\n";
  if (stats) std::cout << obs::registry().to_string();
  if (!metrics_json_path.empty()) {
    std::ofstream out(metrics_json_path);
    if (!out) {
      std::cerr << "cannot write " << metrics_json_path << "\n";
      return 2;
    }
    out << obs::registry().to_json(true) << "\n";
    std::cerr << "wrote " << metrics_json_path << "\n";
  }

  if (expect_catch) {
    if (outcome.divergences > 0) {
      std::cout << "injected miscompile caught\n";
      return 0;
    }
    std::cerr << "injected miscompile NOT caught\n";
    return 4;
  }
  return outcome.ok() ? 0 : 1;
}
