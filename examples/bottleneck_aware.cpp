// Figure 2 scenario: computational optimality is not executional
// optimality. Sweeps the bottleneck-component length and prints the cost-
// model execution times of the original program, the naive as-early-as-
// possible placement (Fig. 2b) and PCM (Fig. 2c) — naive and PCM always
// perform the same *number* of computations, yet PCM is faster because it
// keeps c+b in a component whose sibling is the bottleneck.
//
//   $ ./bottleneck_aware [max-bottleneck]
#include <cstdio>
#include <cstdlib>

#include "motion/pcm.hpp"
#include "semantics/cost.hpp"
#include "workload/families.hpp"

int main(int argc, char** argv) {
  using namespace parcm;
  std::size_t max_n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 10;

  std::puts("bottleneck  computations(orig/naive/pcm)  time(orig/naive/pcm)");
  for (std::size_t n = 1; n <= max_n; ++n) {
    Graph g = families::fig2_family(n);
    Graph naive = naive_parallel_code_motion(g).graph;
    Graph pcm = parallel_code_motion(g).graph;

    FixedOracle o1(0), o2(0), o3(0);
    CostResult orig_r = execution_time(g, o1);
    CostResult naive_r = execution_time(naive, o2);
    CostResult pcm_r = execution_time(pcm, o3);

    std::printf("%10zu  %6llu /%6llu /%6llu      %5llu /%6llu /%5llu\n", n,
                static_cast<unsigned long long>(orig_r.computations),
                static_cast<unsigned long long>(naive_r.computations),
                static_cast<unsigned long long>(pcm_r.computations),
                static_cast<unsigned long long>(orig_r.time),
                static_cast<unsigned long long>(naive_r.time),
                static_cast<unsigned long long>(pcm_r.time));
  }
  std::puts("\nnaive == pcm on computations (kernel of \"computationally"
            " better\"),\nbut pcm < naive on execution time: the Fig. 2 gap.");
  return 0;
}
