// Redundancy audit: for each term of a program, print the safety landscape
// (naive vs. refined, PMFP vs. product-based PMOP where feasible), the PCM
// placement decisions, and what dead-code elimination would remove.
//
//   $ ./redundancy_audit [file]       (a built-in demo program when absent)
#include <fstream>
#include <iostream>
#include <sstream>

#include "parcm.hpp"

namespace {

using namespace parcm;

const char* kDemo = R"(
  a := 1; b := 2;
  x := a + b;
  par {
    y := a + b;
    a := 5;
    u := a + b;
  } and {
    dead := 7;
    z := a + b;
  }
  w := a + b;
)";

void audit(const Graph& original) {
  Graph g = original;
  split_join_edges(g);
  TermTable terms(g);
  LocalPredicates preds(g, terms);
  SafetyInfo naive = compute_safety(g, preds, SafetyVariant::kNaive);
  SafetyInfo refined = compute_safety(g, preds, SafetyVariant::kRefined);

  ProductProgram prod = build_product(g, 1u << 16);
  std::cout << "program: " << g.num_nodes() << " nodes, " << terms.size()
            << " terms, " << g.num_par_stmts() << " parallel statement(s)\n";
  if (prod.exhausted) {
    std::cout << "product program: " << prod.num_configs << " nodes ("
              << static_cast<double>(prod.num_configs) /
                     static_cast<double>(g.num_nodes())
              << "x blowup)\n";
  } else {
    std::cout << "product program: too large to unfold\n";
  }

  for (TermId t : terms.all()) {
    std::cout << "\n== term `" << term_to_string(g, terms.term(t)) << "` ==\n";
    std::cout << "node  naive(up,dn)  refined(up,dn)  statement\n";
    for (NodeId n : g.all_nodes()) {
      const Node& node = g.node(n);
      if (node.kind == NodeKind::kSynthetic) continue;
      auto b = [&](const std::vector<BitVector>& v) {
        return v[n.index()].test(t.index()) ? '1' : '.';
      };
      std::cout << "n" << n.value() << (n.value() < 10 ? "      " : "     ")
                << b(naive.upsafe) << "," << b(naive.dnsafe) << "           "
                << b(refined.upsafe) << "," << b(refined.dnsafe) << "        "
                << statement_to_string(g, n) << "\n";
    }
  }

  MotionResult pcm = parallel_code_motion(original);
  std::cout << "\n" << motion_report(pcm);

  DceOptions dce_opts;
  DceResult dce = eliminate_dead_assignments(original, dce_opts);
  std::cout << "\ndead assignments (all variables observable): "
            << dce.eliminated.size() << "\n";
  for (NodeId n : dce.eliminated) {
    std::cout << "  n" << n.value() << ": "
              << statement_to_string(original, n) << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string source = kDemo;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::cerr << "cannot open " << argv[1] << "\n";
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    source = ss.str();
  }
  parcm::DiagnosticSink sink;
  parcm::Graph g = parcm::lang::compile(source, sink);
  if (!sink.ok()) {
    std::cerr << sink.to_string() << "\n";
    return 1;
  }
  audit(g);
  return 0;
}
