// Quickstart: compile a small parallel program, run the paper's PCM
// transformation, and inspect analyses, placement and cost.
//
//   $ ./quickstart
#include <cstdio>
#include <iostream>

#include "ir/printer.hpp"
#include "lang/lower.hpp"
#include "motion/pcm.hpp"
#include "motion/report.hpp"
#include "semantics/cost.hpp"
#include "semantics/equivalence.hpp"

int main() {
  using namespace parcm;

  // A program in the parcm language: `par {..} and {..}` runs components
  // interleaved on shared memory; `if (*)` branches nondeterministically.
  const char* source = R"(
    a := 1; b := 2;
    par {
      x := a + b;
      while (*) { y := a + b; }
    } and {
      z := a + b;
    }
    w := a + b;
  )";

  Graph program = lang::compile_or_throw(source);
  std::cout << "=== original program ===\n" << to_text(program) << "\n";

  // The paper's transformation: two unidirectional bitvector analyses
  // (up-safe_par forward, down-safe_par backward) + earliest placement.
  MotionResult result = parallel_code_motion(program);
  std::cout << "=== transformed program ===\n" << to_text(result.graph)
            << "\n";
  std::cout << motion_report(result) << "\n";

  // Cost model (Sec. 3.3.1): max across parallel components, sum along
  // sequences; non-trivial assignments cost 1.
  for (std::size_t trips : {0u, 4u}) {
    LoopOracle before(trips), after(trips);
    CostResult orig = execution_time(program, before);
    CostResult moved = execution_time(result.graph, after);
    std::printf("loop trips %zu: execution time %llu -> %llu\n", trips,
                static_cast<unsigned long long>(orig.time),
                static_cast<unsigned long long>(moved.time));
  }

  // Ground truth: the transformed program exposes no behaviour the original
  // could not produce (sequential consistency, Remark 2.1 semantics).
  EnumerationOptions opts;
  opts.atomic_assignments = false;
  auto verdict = check_sequential_consistency(program, result.graph, {}, opts);
  std::cout << "sequentially consistent: "
            << (verdict.sequentially_consistent ? "yes" : "NO") << " ("
            << verdict.original_behaviours << " original behaviours, "
            << verdict.transformed_behaviours << " transformed)\n";
  return verdict.sequentially_consistent ? 0 : 1;
}
