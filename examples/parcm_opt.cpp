// parcm_opt — command-line driver: read a parcm-language program, run code
// motion, print the result.
//
//   parcm_opt [options] [file]          (stdin when no file)
//     --naive       use the refuted naive placement instead of PCM
//     --dce         run dead-assignment elimination after code motion
//     --observe V   with --dce: only variable V (repeatable) is observable
//     --dot         emit Graphviz instead of the node-list text
//     --report      print the per-term insertion/replacement report
//     --table TERM  print the safety table for a term, e.g. --table 'a + b'
//     --figure ID   load a paper figure instead of a file (1, 2, 3a, ... 10)
//     --stats       print pass wall times, solver iteration counts and
//                   per-term motion counters (the obs registry + trace tree)
//     --trace-json FILE  write a Chrome trace_event file for chrome://tracing
//     --validate    re-check the transformation with the differential
//                   translation-validation oracle; non-zero exit and a
//                   witnessing interleaving on divergence
//     --replay BUNDLE  re-run a parcm-forensic-v1 bundle (written by
//                   parcm_batch/parcm_fuzz --forensics-dir) under its
//                   recorded config and compare the outcome byte-for-byte
//                   against the one captured at failure time; exit 0 iff
//                   they match
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "driver/forensic.hpp"
#include "figures/figures.hpp"
#include "ir/printer.hpp"
#include "ir/terms.hpp"
#include "lang/lower.hpp"
#include "motion/dce.hpp"
#include "motion/pcm.hpp"
#include "motion/report.hpp"
#include "obs/alloc.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "verify/verify.hpp"

int main(int argc, char** argv) {
  using namespace parcm;
  bool naive = false, dot = false, report = false, dce = false;
  bool stats = false, validate = false;
  std::vector<std::string> observed;
  std::string table_term, figure_id, file, trace_json, replay_path;

  std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--naive") {
      naive = true;
    } else if (a == "--dot") {
      dot = true;
    } else if (a == "--report") {
      report = true;
    } else if (a == "--dce") {
      dce = true;
    } else if (a == "--stats") {
      stats = true;
    } else if (a == "--validate") {
      validate = true;
    } else if (a == "--trace-json" && i + 1 < args.size()) {
      trace_json = args[++i];
    } else if (a.rfind("--trace-json=", 0) == 0) {
      trace_json = a.substr(std::string("--trace-json=").size());
    } else if (a == "--observe" && i + 1 < args.size()) {
      observed.push_back(args[++i]);
    } else if (a == "--table" && i + 1 < args.size()) {
      table_term = args[++i];
    } else if (a == "--figure" && i + 1 < args.size()) {
      figure_id = args[++i];
    } else if (a == "--replay" && i + 1 < args.size()) {
      replay_path = args[++i];
    } else if (a.rfind("--replay=", 0) == 0) {
      replay_path = a.substr(std::string("--replay=").size());
    } else if (a == "--help" || a == "-h") {
      std::cout << "usage: parcm_opt [--naive] [--dot] [--report] [--stats] "
                   "[--validate] [--trace-json FILE] [--table TERM] "
                   "[--figure ID] [--replay BUNDLE] [file]\n";
      return 0;
    } else if (!a.empty() && a[0] == '-') {
      std::cerr << "unknown option " << a << "\n";
      return 2;
    } else {
      file = a;
    }
  }

  if (!replay_path.empty()) {
    driver::ReplayResult rr = driver::replay_bundle(replay_path);
    if (!rr.loaded) {
      std::cerr << "replay: " << rr.error << "\n";
      return 2;
    }
    std::cout << "bundle:  " << replay_path << "\n"
              << "program: " << rr.id << "\n"
              << "reason:  " << rr.reason << "\n"
              << "status:  " << driver::job_status_name(rr.result.status)
              << "\n";
    if (!rr.result.error.empty()) {
      std::cout << "error:   " << rr.result.error << "\n";
    }
    if (!rr.result.validation.empty()) {
      std::cout << "oracle:  " << rr.result.validation << "\n";
    }
    if (rr.match) {
      std::cout << "replay MATCHES the recorded outcome byte-for-byte\n";
      return 0;
    }
    std::cout << "replay DIVERGES from the recorded outcome\n"
              << "-- recorded --\n" << rr.expected << "\n"
              << "-- replayed --\n" << rr.actual << "\n";
    return 3;
  }

  // Spans are recorded whenever stats or a trace file were requested; the
  // sink costs nothing otherwise.
  if (stats || !trace_json.empty()) obs::trace().set_enabled(true);

  std::string source;
  if (!figure_id.empty()) {
    source = figures::figure_source(figure_id);
  } else if (!file.empty()) {
    std::ifstream in(file);
    if (!in) {
      std::cerr << "cannot open " << file << "\n";
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    source = ss.str();
  } else {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    source = ss.str();
  }

  DiagnosticSink sink;
  Graph program = lang::compile(source, sink);
  if (!sink.ok()) {
    std::cerr << sink.to_string() << "\n";
    return 1;
  }

  MotionResult result = naive ? naive_parallel_code_motion(program)
                              : parallel_code_motion(program);
  if (dce) {
    DceOptions dce_opts;
    dce_opts.observed = observed;
    DceResult cleaned = eliminate_dead_assignments(result.graph, dce_opts);
    result.graph = std::move(cleaned.graph);
    if (report) {
      std::cout << "dead assignments removed: " << cleaned.eliminated.size()
                << "\n";
    }
  }
  if (report) std::cout << motion_report(result);
  if (!table_term.empty()) {
    TermTable terms(result.graph);
    std::cout << safety_table(result.graph, result,
                              terms.find(result.graph, table_term));
  }
  std::cout << (dot ? to_dot(result.graph, file.empty() ? "parcm" : file)
                    : to_text(result.graph));
  if (validate) {
    verify::Verdict v = verify::differential_check(program, result.graph);
    std::cout << "validate: " << v.summary() << "\n";
    if (!v.ok()) {
      std::cerr << "translation validation FAILED\n";
      if (v.witness.has_value()) std::cerr << v.witness_text() << "\n";
      return 3;
    }
  }
  if (stats) {
    std::cout << "\n== observability ==\n" << obs::registry().to_string();
    if (obs::alloc_hook_active()) {
      std::cout << "allocations: " << obs::thread_alloc_count() << " ("
                << obs::thread_alloc_bytes() << " bytes requested)\n";
    }
    std::cout << "trace:\n" << obs::trace().tree();
  }
  if (!trace_json.empty()) {
    std::ofstream out(trace_json);
    if (!out) {
      std::cerr << "cannot write " << trace_json << "\n";
      return 2;
    }
    out << obs::trace().chrome_json();
    std::cerr << "wrote " << trace_json << "\n";
  }
  return 0;
}
