// parcm_explain — answer "why did code motion do that?" for a program.
//
// Runs the transformation with an isolated remark sink and renders the
// provenance stream: every insertion, replacement, blocked or skipped
// candidate with its machine-readable reason chain (earliest ∧ down-safe,
// bottleneck (P1), recursive-assignment guard (P2), per-interleaving
// witness differs (P3), ...).
//
//   parcm_explain [options] [file]      (stdin when no file)
//     --figure ID    load a paper figure instead of a file (1, 2, 3a, ... 10)
//     --naive        use the refuted naive placement instead of PCM
//     --pipeline     run the full default pipeline (pcm/constprop/sinking/dce)
//     --pass NAME    keep only remarks emitted by pass NAME
//     --kind K       keep only inserted|replaced|blocked|skipped|degraded
//     --node N       keep only remarks anchored at node N
//     --term TEXT    keep only remarks about TEXT (e.g. 'a + b')
//     --why N:TERM   explain node N's decision for TERM and exit
//                    (exit status 1 when no remark matches)
//     --json [FILE]  write the parcm-remarks-v1 JSON stream
//     --dot [FILE]   write annotated Graphviz (dataflow facts + badges)
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "figures/figures.hpp"
#include "ir/printer.hpp"
#include "ir/terms.hpp"
#include "lang/lower.hpp"
#include "motion/pcm.hpp"
#include "motion/pipeline.hpp"
#include "motion/report.hpp"
#include "obs/remarks.hpp"

namespace {

using namespace parcm;

// "--json" and "--dot" take an optional FILE operand: consume the next
// argument only when it does not look like another option.
std::optional<std::string> optional_operand(const std::vector<std::string>& a,
                                            std::size_t* i) {
  if (*i + 1 < a.size() && (a[*i + 1].empty() || a[*i + 1][0] != '-')) {
    return a[++*i];
  }
  return std::nullopt;
}

bool write_or_print(const std::string& text,
                    const std::optional<std::string>& file) {
  if (!file) {
    std::cout << text;
    return true;
  }
  std::ofstream out(*file);
  if (!out) {
    std::cerr << "cannot write " << *file << "\n";
    return false;
  }
  out << text;
  std::cerr << "wrote " << *file << "\n";
  return true;
}

void print_expanded(const obs::Remark& r) {
  std::cout << "n" << r.node << " [" << obs::remark_kind_name(r.kind) << "]";
  if (!r.pass.empty()) std::cout << " " << r.pass;
  if (!r.term.empty()) std::cout << " `" << r.term << "`";
  std::cout << "\n  " << r.message << "\n";
  if (!r.reasons.empty()) {
    std::cout << "  because:\n";
    for (obs::RemarkReason reason : r.reasons) {
      std::cout << "    - " << obs::remark_reason_label(reason);
      if (const char* p = obs::remark_reason_pitfall(reason)) {
        std::cout << " [" << p << "]";
      }
      std::cout << "\n";
    }
  }
  if (!r.detail.empty()) std::cout << "  detail: " << r.detail << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool naive = false, pipeline = false;
  bool want_json = false, want_dot = false;
  std::optional<std::string> json_file, dot_file;
  std::string figure_id, file, pass_filter, kind_filter, term_filter, why;
  std::optional<std::int64_t> node_filter;

  std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--naive") {
      naive = true;
    } else if (a == "--pipeline") {
      pipeline = true;
    } else if (a == "--figure" && i + 1 < args.size()) {
      figure_id = args[++i];
    } else if (a == "--pass" && i + 1 < args.size()) {
      pass_filter = args[++i];
    } else if (a == "--kind" && i + 1 < args.size()) {
      kind_filter = args[++i];
    } else if (a == "--term" && i + 1 < args.size()) {
      term_filter = args[++i];
    } else if (a == "--node" && i + 1 < args.size()) {
      node_filter = std::stoll(args[++i]);
    } else if (a == "--why" && i + 1 < args.size()) {
      why = args[++i];
    } else if (a == "--json") {
      want_json = true;
      json_file = optional_operand(args, &i);
    } else if (a == "--dot") {
      want_dot = true;
      dot_file = optional_operand(args, &i);
    } else if (a == "--help" || a == "-h") {
      std::cout << "usage: parcm_explain [--figure ID] [--naive] "
                   "[--pipeline] [--pass NAME] [--kind K] [--node N] "
                   "[--term TEXT] [--why N:TERM] [--json [FILE]] "
                   "[--dot [FILE]] [file]\n";
      return 0;
    } else if (!a.empty() && a[0] == '-') {
      std::cerr << "unknown option " << a << "\n";
      return 2;
    } else {
      file = a;
    }
  }

  std::string source;
  if (!figure_id.empty()) {
    source = figures::figure_source(figure_id);
    if (source.empty()) {
      std::cerr << "unknown figure " << figure_id << "\n";
      return 2;
    }
  } else if (!file.empty()) {
    std::ifstream in(file);
    if (!in) {
      std::cerr << "cannot open " << file << "\n";
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    source = ss.str();
  } else {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    source = ss.str();
  }

  DiagnosticSink diags;
  Graph program = lang::compile(source, diags);
  if (!diags.ok()) {
    std::cerr << diags.to_string() << "\n";
    return 1;
  }

  // Capture an isolated provenance stream for this run.
  obs::RemarkSink sink;
  sink.set_enabled(true);
  obs::RemarkSink* prev = obs::set_remark_sink(&sink);

  std::optional<MotionResult> motion;
  Graph transformed = program;
  if (pipeline) {
    PipelineResult r = default_pipeline().run(program);
    transformed = std::move(r.graph);
  } else {
    motion = naive ? naive_parallel_code_motion(program)
                   : parallel_code_motion(program);
    transformed = motion->graph;
  }
  obs::set_remark_sink(prev);

  std::vector<obs::Remark> remarks = sink.snapshot();
  // Analyses emit remarks before any node is materialized, so the input
  // graph's term numbering resolves their term strings.
  resolve_remark_terms(program, remarks);
#if !PARCM_OBS_ENABLED
  std::cerr << "note: built with PARCM_OBS=OFF — no remarks are recorded\n";
#endif

  // --why N:TERM — TERM is the rendered term text ('a + b') or a term index.
  std::int64_t why_node = -1;
  std::string why_term;
  if (!why.empty()) {
    auto colon = why.find(':');
    if (colon == std::string::npos) {
      std::cerr << "--why expects NODE:TERM, e.g. 15:'a + b'\n";
      return 2;
    }
    why_node = std::stoll(why.substr(0, colon));
    why_term = why.substr(colon + 1);
  }

  auto matches = [&](const obs::Remark& r) {
    if (!pass_filter.empty() && r.pass != pass_filter) return false;
    if (!kind_filter.empty() && obs::remark_kind_name(r.kind) != kind_filter) {
      return false;
    }
    if (node_filter && r.node != *node_filter) return false;
    if (!term_filter.empty() && r.term != term_filter) return false;
    if (!why.empty()) {
      if (r.node != why_node) return false;
      bool by_text = r.term == why_term;
      bool by_index = !why_term.empty() &&
                      why_term.find_first_not_of("0123456789") ==
                          std::string::npos &&
                      r.term_index == std::stoll(why_term);
      if (!by_text && !by_index) return false;
    }
    return true;
  };
  std::vector<obs::Remark> selected;
  for (const obs::Remark& r : remarks) {
    if (matches(r)) selected.push_back(r);
  }

  if (!why.empty()) {
    if (selected.empty()) {
      std::cerr << "no remark for node " << why_node << " and term `"
                << why_term << "`\n";
      return 1;
    }
    for (const obs::Remark& r : selected) print_expanded(r);
    return 0;
  }

  if (want_json) {
    obs::RemarkSink filtered;
    filtered.set_enabled(true);
    for (const obs::Remark& r : selected) filtered.emit(r);
    if (!write_or_print(filtered.to_json(/*pretty=*/true), json_file)) {
      return 2;
    }
  }
  if (want_dot) {
    std::string dot;
    if (motion) {
      TermTable terms(program);
      TermId t = term_filter.empty()
                     ? (terms.size() > 0 ? TermId(0) : TermId())
                     : terms.find(program, term_filter);
      dot = motion_dot(*motion, t, selected,
                       figure_id.empty() ? "parcm" : "fig" + figure_id);
    } else {
      std::vector<DotNodeAnnotation> ann(transformed.num_nodes());
      for (const obs::Remark& r : selected) {
        if (r.node < 0 ||
            static_cast<std::size_t>(r.node) >= ann.size()) {
          continue;
        }
        ann[static_cast<std::size_t>(r.node)].badges.push_back(
            obs::remark_kind_name(r.kind));
      }
      dot = annotated_dot(transformed, ann);
    }
    if (!write_or_print(dot, dot_file)) return 2;
  }
  if (!want_json && !want_dot) {
    for (const obs::Remark& r : selected) {
      std::cout << obs::remark_to_string(r) << "\n";
    }
    std::cout << "(" << selected.size() << " remark"
              << (selected.size() == 1 ? "" : "s") << ")\n";
  }
  return 0;
}
