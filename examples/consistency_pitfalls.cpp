// Figures 3 and 4: why the naive transfer of sequential code motion breaks
// sequential consistency, demonstrated by exhaustive interleaving
// enumeration — and how PCM's treatment of recursive assignments
// (Sec. 3.3.2) avoids it.
//
//   $ ./consistency_pitfalls
#include <iostream>

#include "figures/figures.hpp"
#include "ir/printer.hpp"
#include "lang/lower.hpp"
#include "motion/pcm.hpp"
#include "semantics/equivalence.hpp"

namespace {

using namespace parcm;

void show(const char* title, const Graph& original, const Graph& transformed,
          bool atomic) {
  EnumerationOptions opts;
  opts.atomic_assignments = atomic;
  auto verdict = check_sequential_consistency(original, transformed, {}, opts);
  std::cout << "  " << title << " ["
            << (atomic ? "atomic" : "split (Remark 2.1)") << " semantics]: "
            << (verdict.sequentially_consistent ? "consistent"
                                                : "INCONSISTENT");
  if (verdict.violation_witness.has_value()) {
    std::cout << "  witness state (";
    auto names = all_var_names(original);
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (i) std::cout << ", ";
      std::cout << names[i] << "=" << (*verdict.violation_witness)[i];
    }
    std::cout << ") is unreachable in the original";
  }
  std::cout << "\n";
}

void study(const char* name, const char* figure_id) {
  Graph g = lang::compile_or_throw(figures::figure_source(figure_id));
  std::cout << "== " << name << " ==\n"
            << figures::figure_source(figure_id) << "\n";
  Graph naive = naive_parallel_code_motion(g).graph;
  Graph pcm = parallel_code_motion(g).graph;
  for (bool atomic : {true, false}) {
    show("naive as-early-as-possible", g, naive, atomic);
    show("PCM (paper)               ", g, pcm, atomic);
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  std::cout << "Loss of sequential consistency (paper Figs. 3 and 4)\n\n";
  study("Figure 3, program A (one recursive assignment)", "3a");
  study("Figure 3, program B (both occurrences recursive)", "3c");
  study("Figure 4 (combining occurrence transformations)", "4");
  return 0;
}
