// Regenerates the headline tables of EXPERIMENTS.md in one run (the
// microbenchmark timings live in bench/; this driver covers the cost-model
// and placement tables, which are exact).
//
//   $ ./reproduce_experiments
#include <cstdio>
#include <iostream>

#include "parcm.hpp"

namespace {

using namespace parcm;

void fig2_table() {
  std::puts("== Fig. 2 — computational vs. executional optimality ==");
  std::puts("b   computations orig/naive/PCM   time orig/naive/PCM");
  for (std::size_t b : {1u, 3u, 6u, 10u}) {
    Graph g = families::fig2_family(b);
    Graph naive = naive_parallel_code_motion(g).graph;
    Graph pcm = parallel_code_motion(g).graph;
    FixedOracle o1(0), o2(0), o3(0);
    CostResult ro = execution_time(g, o1);
    CostResult rn = execution_time(naive, o2);
    CostResult rp = execution_time(pcm, o3);
    std::printf("%-3zu %5llu / %llu / %llu             %5llu / %llu / %llu\n",
                b, (unsigned long long)ro.computations,
                (unsigned long long)rn.computations,
                (unsigned long long)rp.computations,
                (unsigned long long)ro.time, (unsigned long long)rn.time,
                (unsigned long long)rp.time);
  }
  std::puts("");
}

void fig10_table() {
  std::puts("== Fig. 10 — trip-count sweep (time original -> PCM) ==");
  Graph g = figures::fig10();
  Graph t = parallel_code_motion(g).graph;
  std::puts("trips  orig  pcm  speedup");
  for (std::size_t trips : {0u, 1u, 2u, 8u, 64u, 256u}) {
    LoopOracle l1(trips), l2(trips);
    CostResult a = execution_time(g, l1);
    CostResult b = execution_time(t, l2);
    std::printf("%5zu %5llu %4llu  %.1fx\n", trips,
                (unsigned long long)a.time, (unsigned long long)b.time,
                double(a.time) / double(b.time ? b.time : 1));
  }
  std::puts("");
}

void fig10_placements() {
  std::puts("== Fig. 10 — placements ==");
  Graph g = figures::fig10();
  MotionResult pcm = parallel_code_motion(g);
  for (const TermMotion& tm : pcm.terms) {
    std::size_t root = 0;
    for (NodeId n : tm.insert_nodes) {
      root += pcm.graph.node(n).region == pcm.graph.root_region();
    }
    std::printf("  %-6s  %zu insertion(s), %zu in the root region, "
                "%zu replacement(s)\n",
                term_to_string(pcm.graph, tm.term_value).c_str(),
                tm.insert_nodes.size(), root, tm.replaced.size());
  }
  std::puts("");
}

void product_blowup_table() {
  std::puts("== C2 — product program blowup ==");
  std::puts("comps x len   compact   product   blowup");
  const std::pair<std::size_t, std::size_t> shapes[] = {
      {2, 8}, {2, 16}, {3, 8}, {4, 4}, {5, 3}};
  for (auto [c, l] : shapes) {
    Graph g = families::par_wide(c, l);
    ProductProgram p = build_product(g, 4u << 20);
    std::printf("  %zu x %-8zu %5zu %9zu   %.1fx\n", c, l, g.num_nodes(),
                p.num_configs,
                double(p.num_configs) / double(g.num_nodes()));
  }
  std::puts("");
}

void consistency_table() {
  std::puts("== Figs. 3/4 — sequential consistency verdicts ==");
  struct Row {
    const char* name;
    const char* original;
    const char* transformed;
  };
  const Row rows[] = {
      {"Fig3 (b) vs (a)", "3a", "3b"},
      {"Fig3 (d) vs (c)", "3c", "3d"},
      {"Fig4 (b) vs (a)", "4", "4b"},
      {"Fig4 (c) vs (a)", "4", "4c"},
      {"Fig4 (d) vs (a)", "4", "4d"},
  };
  for (const Row& row : rows) {
    Graph orig = lang::compile_or_throw(figures::figure_source(row.original));
    Graph trans =
        lang::compile_or_throw(figures::figure_source(row.transformed));
    auto v = check_sequential_consistency(orig, trans, all_var_names(orig));
    std::printf("  %-16s %s\n", row.name,
                v.sequentially_consistent ? "consistent" : "INCONSISTENT");
  }
  std::puts("");
}

void enumeration_por_table() {
  std::puts("== C6 — enumeration states, full vs partial-order reduction ==");
  std::puts("comps x len   full   reduced");
  const std::pair<std::size_t, std::size_t> shapes[] = {{2, 4}, {3, 3}, {4, 2}};
  for (auto [c, l] : shapes) {
    Graph g = families::par_wide(c, l, 2);
    EnumerationOptions full;
    EnumerationOptions red;
    red.partial_order_reduction = true;
    auto a = enumerate_executions(g, {"w"}, full);
    auto b = enumerate_executions(g, {"w"}, red);
    std::printf("  %zu x %-8zu %5zu %8zu\n", c, l, a.states_explored,
                b.states_explored);
  }
  std::puts("");
}

}  // namespace

int main() {
  fig2_table();
  fig10_table();
  fig10_placements();
  product_blowup_table();
  consistency_table();
  enumeration_por_table();
  return 0;
}
