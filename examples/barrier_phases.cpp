// Explicit synchronization (the paper's conclusions): barriers split a
// parallel statement into phases. Shows the phase-aware cost model, the
// interleaving semantics of collective release, and how code motion remains
// sound but deliberately conservative across phases.
//
//   $ ./barrier_phases
#include <cstdio>
#include <iostream>

#include "parcm.hpp"

int main() {
  using namespace parcm;

  const char* source = R"(
    a := 1; b := 2;
    par {
      x1 := a + b; x2 := a + b; x3 := a + b;
      barrier;
      y1 := a + b;
    } and {
      z1 := a + b;
      barrier;
      z2 := a + b; z3 := a + b; z4 := a + b;
    }
  )";
  Graph g = lang::compile_or_throw(source);
  std::cout << "=== program ===\n" << source << "\n";

  // Phase-aware execution time: max per phase, summed.
  FixedOracle oracle(0);
  CostResult cost = execution_time(g, oracle);
  std::printf("execution time: %llu (phase 1: max(3,1)=3, phase 2: "
              "max(1,3)=3)\ncomputations:   %llu\n\n",
              static_cast<unsigned long long>(cost.time),
              static_cast<unsigned long long>(cost.computations));

  // The barrier really synchronizes: a cross-phase read is deterministic.
  Graph exchange = lang::compile_or_throw(R"(
    par { a := 1; barrier; u := b + 0; }
    and { b := 2; barrier; v := a + 0; }
  )");
  auto finals = enumerate_executions(exchange, {"u", "v"});
  std::cout << "two-phase exchange final states:";
  for (const auto& f : finals.finals) {
    std::cout << " (u=" << f[0] << ", v=" << f[1] << ")";
  }
  std::cout << "\n\n";

  // PCM on the phased program: every placement stays within its phase
  // (down-safety ends at barriers), so the transformation can never turn an
  // early phase into the bottleneck.
  MotionResult pcm = parallel_code_motion(g);
  std::cout << motion_report(pcm);
  FixedOracle o2(0);
  CostResult after = execution_time(pcm.graph, o2);
  std::printf("\nexecution time after PCM: %llu (never worse)\n",
              static_cast<unsigned long long>(after.time));

  EnumerationOptions eo;
  eo.atomic_assignments = false;
  auto verdict = check_sequential_consistency(g, pcm.graph, {}, eo);
  std::cout << "sequentially consistent: "
            << (verdict.sequentially_consistent ? "yes" : "NO") << "\n";
  return verdict.sequentially_consistent ? 0 : 1;
}
