// parcm_batch — sharded batch-compilation driver: optimize a whole corpus
// of parcm programs across a work-stealing thread pool.
//
//   parcm_batch [options] <dir | manifest.txt | file.parcm ...>
//     --jobs N         worker threads (default: hardware concurrency)
//     --pipeline NAME  full | pcm | naive | bcm | lcm | sinking | dce |
//                      constprop (default full)
//     --validate       run the differential translation-validation oracle
//                      on every program's output; divergences fail the run
//     --timeout S      per-program wall-clock box in seconds (fractional ok)
//     --wall-limit S   whole-batch wall-clock box; unstarted jobs report
//                      skipped
//     --steal-seed N   shuffle per-worker steal order (results must not
//                      change; the determinism suite varies this)
//     --json FILE      write the parcm-batch-v1 report ("-" = stdout)
//     --trace-json F   enable span tracing and write the multi-track
//                      Chrome trace_event timeline (parcm-trace-v1; open
//                      in ui.perfetto.dev) — one track per worker plus
//                      the async safety-solve helpers
//     --pretty         pretty-print the JSON report
//     --no-output      omit optimized program text from the report
//     --remarks        retain per-program remark lines in the report
//     --max-states N   exact-enumeration state cap for --validate
//     --quiet          suppress the human summary
//     --forensics-dir D  on per-program timeout/exception/oracle divergence,
//                      write a self-contained parcm-forensic-v1 bundle into
//                      D (replayable with parcm_opt --replay); also arms the
//                      flight recorder for the run
//     --inject MODE    deliberately miscompile through the named injector
//                      (naive | no-privatize | no-parend-export | no-sink) —
//                      forensics/oracle self-test, recorded in bundles so
//                      replays reproduce the divergence
//
//     --shared-cache on|off  share analysis artifacts across workers via
//                      the process-wide structural-key cache (default on;
//                      payloads are byte-identical either way)
//
//   Synthetic corpus (no files needed):
//     --gen N          batch N deterministically generated random programs
//     --gen-seed S     corpus seed (default 42)
//     --gen-stmts N    generator statement budget (default 10)
//     --gen-shapes K   draw the corpus from a pool of K distinct shapes
//                      (variables renamed per repetition; 0 = all distinct).
//                      The shared-cache workload: N programs, K rebuilds.
//
//   Scaling bench:
//     --scaling LIST   e.g. 1,2,4,8,16 — run the same corpus once per jobs
//                      value, print the speedup curve, and re-check that
//                      the per-program report is byte-identical across runs
//     --bench-json F   write the curve as a parcm-bench-v1 artifact
//                      (scripts/run_bench.sh -> BENCH_batch.json)
//
// Exit codes: 0 clean, 1 failures/timeouts/validation divergences (or a
// non-deterministic scaling run), 2 usage error.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "driver/driver.hpp"
#include "lang/unparse.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "verify/fuzz.hpp"
#include "workload/randomprog.hpp"

using namespace parcm;

namespace {

std::vector<std::size_t> parse_jobs_list(const std::string& list) {
  std::vector<std::size_t> out;
  std::istringstream ss(list);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(std::stoull(item));
  }
  return out;
}

bool write_text(const std::string& path, const std::string& text) {
  if (path == "-") {
    std::cout << text << "\n";
    return true;
  }
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    return false;
  }
  out << text << "\n";
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  driver::BatchOptions opt;
  opt.jobs = 0;
  std::vector<std::string> inputs;
  std::string json_path, trace_json_path, scaling_list, bench_json_path;
  std::size_t gen_count = 0, gen_stmts = 10, gen_shapes = 0;
  std::uint64_t gen_seed = 42;
  bool pretty = false, quiet = false;

  std::vector<std::string> args(argv + 1, argv + argc);
  auto next = [&args](std::size_t* i) -> std::string {
    if (*i + 1 >= args.size()) {
      std::cerr << args[*i] << " needs a value\n";
      std::exit(2);
    }
    return args[++*i];
  };
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--jobs") {
      opt.jobs = std::stoull(next(&i));
    } else if (a == "--pipeline") {
      opt.pipeline = next(&i);
    } else if (a == "--validate") {
      opt.validate = true;
    } else if (a == "--timeout") {
      opt.timeout_seconds = std::stod(next(&i));
    } else if (a == "--wall-limit") {
      opt.wall_limit_seconds = std::stod(next(&i));
    } else if (a == "--steal-seed") {
      opt.steal_seed = std::stoull(next(&i));
    } else if (a == "--json") {
      json_path = next(&i);
    } else if (a == "--trace-json") {
      trace_json_path = next(&i);
    } else if (a == "--pretty") {
      pretty = true;
    } else if (a == "--no-output") {
      opt.keep_output = false;
    } else if (a == "--remarks") {
      opt.keep_remark_lines = true;
    } else if (a == "--max-states") {
      opt.budget.max_states = std::stoull(next(&i));
    } else if (a == "--forensics-dir") {
      opt.forensics_dir = next(&i);
    } else if (a == "--inject") {
      opt.inject_mode = next(&i);
    } else if (a == "--quiet") {
      quiet = true;
    } else if (a == "--gen") {
      gen_count = std::stoull(next(&i));
    } else if (a == "--gen-seed") {
      gen_seed = std::stoull(next(&i));
    } else if (a == "--gen-stmts") {
      gen_stmts = std::stoull(next(&i));
    } else if (a == "--gen-shapes") {
      gen_shapes = std::stoull(next(&i));
    } else if (a == "--shared-cache") {
      std::string v = next(&i);
      if (v != "on" && v != "off") {
        std::cerr << "--shared-cache needs on or off\n";
        return 2;
      }
      opt.shared_cache = v == "on";
    } else if (a == "--scaling") {
      scaling_list = next(&i);
    } else if (a == "--bench-json") {
      bench_json_path = next(&i);
    } else if (a == "--manifest") {
      inputs.push_back(next(&i));
    } else if (a == "--help" || a == "-h") {
      std::cout
          << "usage: parcm_batch [--jobs N] [--pipeline NAME] [--validate] "
             "[--timeout S] [--wall-limit S] [--steal-seed N] [--json FILE] "
             "[--trace-json FILE] "
             "[--pretty] [--no-output] [--remarks] [--max-states N] [--quiet] "
             "[--forensics-dir DIR] [--inject MODE] [--shared-cache on|off] "
             "[--gen N [--gen-seed S] [--gen-stmts N] [--gen-shapes K]] "
             "[--scaling 1,2,4,8 [--bench-json FILE]] "
             "<dir | manifest | file.parcm ...>\n";
      return 0;
    } else if (!a.empty() && a[0] == '-') {
      std::cerr << "unknown option " << a << "\n";
      return 2;
    } else {
      inputs.push_back(a);
    }
  }

  driver::Manifest manifest;
  try {
    if (gen_count > 0) {
      RandomProgramOptions gen = verify::default_fuzz_gen();
      gen.target_stmts = gen_stmts;
      manifest = driver::Manifest::lazy(
          gen_count, "gen" + std::to_string(gen_seed),
          [gen_seed, gen, gen_shapes](std::size_t i) {
            lang::Program p =
                gen_shapes > 0
                    ? verify::fuzz_program_pooled(gen_seed, i, gen_shapes, gen)
                    : verify::fuzz_program(gen_seed, i, gen);
            return lang::to_source(p);
          });
    } else if (inputs.size() == 1) {
      manifest = driver::Manifest::from_path(inputs[0]);
    } else if (!inputs.empty()) {
      for (const std::string& path : inputs) {
        driver::BatchJob job;
        job.id = path;
        job.path = path;
        manifest.jobs.push_back(std::move(job));
      }
    } else {
      std::cerr << "no input: pass a directory, a manifest file, .parcm "
                   "files, or --gen N\n";
      return 2;
    }
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }

  // Tracing must be on before run_batch spawns workers (the sink adopts
  // this thread as owner; workers bind their span buffers at start-up).
  if (!trace_json_path.empty()) obs::trace().set_enabled(true);

  if (!scaling_list.empty()) {
    std::vector<std::size_t> jobs_values = parse_jobs_list(scaling_list);
    if (jobs_values.empty()) {
      std::cerr << "--scaling needs a non-empty jobs list\n";
      return 2;
    }
    // The batch payload must be schedule-independent: every run's
    // timing-free report is held against the first run's.
    std::string reference;
    bool deterministic = true;
    double jobs1_wall = 0.0;
    struct Row {
      std::size_t jobs = 0;
      double wall_ms = 0.0;
      double cpu_ms = 0.0;
      double speedup = 0.0;
      std::uint64_t steals = 0;
      driver::BatchTotals totals;
      double cache_hit_rate = 0.0;
      double allocs_per_program = 0.0;
      double latency_p50_ns = 0.0;
      double latency_p99_ns = 0.0;
    };
    std::vector<Row> rows;
    for (std::size_t jobs : jobs_values) {
      driver::BatchOptions run_opt = opt;
      run_opt.jobs = jobs;
      // Each scaling step gets a fresh timeline; the trace file ends up
      // holding the last (largest) jobs value.
      if (!trace_json_path.empty()) obs::trace().clear();
      driver::BatchReport report = driver::run_batch(manifest, run_opt);
      std::string payload = report.to_json(false, /*include_timing=*/false);
      if (reference.empty()) {
        reference = payload;
        jobs1_wall = report.wall_ms;
      } else if (payload != reference) {
        deterministic = false;
      }
      Row row;
      row.jobs = jobs;
      row.wall_ms = report.wall_ms;
      row.cpu_ms = report.cpu_ms;
      row.speedup = report.wall_ms > 0 ? jobs1_wall / report.wall_ms : 0.0;
      row.steals = report.queue.steals;
      row.totals = report.totals;
      row.cache_hit_rate = report.cache_hit_rate;
      row.allocs_per_program = report.allocs_per_program;
      auto lat = report.histograms.find("driver.program_latency_ns");
      if (lat != report.histograms.end()) {
        row.latency_p50_ns = lat->second.p50();
        row.latency_p99_ns = lat->second.p99();
      }
      rows.push_back(row);
      if (!quiet) {
        std::printf(
            "jobs %3zu: wall %10.1f ms  cpu %10.1f ms  speedup %5.2fx  "
            "steals %6llu  done %zu/%zu\n",
            row.jobs, row.wall_ms, row.cpu_ms, row.speedup,
            static_cast<unsigned long long>(row.steals), row.totals.done,
            row.totals.submitted);
      }
    }
    if (!deterministic) {
      std::cerr << "FAIL: batch payload differs across job counts\n";
    } else if (!quiet) {
      std::cout << "payload byte-identical across all "
                << jobs_values.size() << " runs\n";
    }
    if (!bench_json_path.empty()) {
      obs::JsonWriter w(/*pretty=*/true);
      w.begin_object();
      w.key("schema").value("parcm-bench-v1");
      w.key("bench").value("parcm_batch_scaling");
      w.key("results").begin_array();
      for (const Row& row : rows) {
        w.begin_object();
        w.key("name").value("batch/jobs:" + std::to_string(row.jobs));
        w.key("iterations").value(1);
        w.key("real_ns_per_iter").value(row.wall_ms * 1e6);
        w.key("cpu_ns_per_iter").value(row.cpu_ms * 1e6);
        w.key("counters").begin_object();
        w.key("programs").value(row.totals.submitted);
        w.key("done").value(row.totals.done);
        w.key("speedup_vs_jobs1").value(row.speedup);
        w.key("steals").value(row.steals);
        w.key("cache_hit_rate").value(row.cache_hit_rate);
        w.key("allocs_per_program").value(row.allocs_per_program);
        w.key("program_latency_p50_ns").value(row.latency_p50_ns);
        w.key("program_latency_p99_ns").value(row.latency_p99_ns);
        w.key("deterministic").value(deterministic ? 1 : 0);
        w.end_object();
        w.end_object();
      }
      w.end_array();
      w.end_object();
      if (!write_text(bench_json_path, w.take())) return 2;
    }
    if (!trace_json_path.empty() &&
        !write_text(trace_json_path, obs::trace().chrome_json())) {
      return 2;
    }
    return deterministic ? 0 : 1;
  }

  driver::BatchReport report = driver::run_batch(manifest, opt);
  if (!quiet) std::cout << report.summary() << "\n";
  if (!quiet) {
    for (const driver::ProgramResult& r : report.programs) {
      if (r.status == driver::JobStatus::kDone && r.validation_ok) continue;
      if (r.status == driver::JobStatus::kSkipped) continue;
      std::cout << "  " << r.id << ": " << driver::job_status_name(r.status);
      if (!r.error.empty()) std::cout << " — " << r.error;
      if (!r.validation_ok) std::cout << " — " << r.validation;
      std::cout << "\n";
    }
  }
  if (!json_path.empty() &&
      !write_text(json_path, report.to_json(pretty))) {
    return 2;
  }
  if (!trace_json_path.empty() &&
      !write_text(trace_json_path, obs::trace().chrome_json())) {
    return 2;
  }
  return report.ok() ? 0 : 1;
}
