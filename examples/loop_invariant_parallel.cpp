// Figure 10 scenario: loop-invariant code motion inside parallel
// components. Shows the paper's five-term case study — a+b hoisted to
// "node 1", e+f moved across the transparent parallel statement, g+h and
// j+k hoisted in front of their loops inside their components, c+d kept
// inside the parallel statement where it is free.
//
//   $ ./loop_invariant_parallel [trip-count]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "figures/figures.hpp"
#include "ir/printer.hpp"
#include "motion/pcm.hpp"
#include "motion/report.hpp"
#include "semantics/cost.hpp"

int main(int argc, char** argv) {
  using namespace parcm;
  std::size_t trips = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 8;

  Graph program = figures::fig10();
  std::cout << "=== Figure 10 argument program ===\n"
            << figures::figure_source("10") << "\n";

  MotionResult pcm = parallel_code_motion(program);
  std::cout << motion_report(pcm) << "\n";
  std::cout << "=== transformed ===\n" << to_text(pcm.graph) << "\n";

  std::puts("trips  original  pcm  speedup");
  for (std::size_t t : {0ul, 1ul, 2ul, 4ul, 8ul, trips}) {
    LoopOracle before(t), after(t);
    CostResult orig = execution_time(program, before);
    CostResult moved = execution_time(pcm.graph, after);
    std::printf("%5zu %9llu %4llu  %.2fx\n", t,
                static_cast<unsigned long long>(orig.time),
                static_cast<unsigned long long>(moved.time),
                static_cast<double>(orig.time) /
                    static_cast<double>(moved.time ? moved.time : 1));
  }
  return 0;
}
