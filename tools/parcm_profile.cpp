// parcm_profile — corpus cost attribution across the parcm-*-v1 artifacts.
//
//   parcm_profile [options] FILE...
//
// Each FILE is any of the machine-readable artifacts the toolchain emits:
// a `parcm-batch-v1` report (parcm_batch --json, with timing), a
// `parcm-metrics-v1` registry dump (parcm_fuzz --metrics-json, forensic
// bundles), a `parcm-trace-v1` chrome trace (parcm_opt --trace-json), or a
// previously aggregated `parcm-profile-v1` document. The schema is detected
// from the file content; everything merges into one aggregate that
// attributes wall time per pass, per shape cohort (structural-hash family),
// and per (pass, cohort) pair with exact p50/p99.
//
//   --diff A B    attribute the regression of B relative to A: ranks
//                 passes and (pass, cohort) pairs by mean-delta × samples,
//                 so the top row names what got slower and on which shape
//                 family. A and B are any supported artifact (aggregate
//                 profiles included).
//   --json        print the parcm-profile-v1 document instead of the table
//   --out FILE    write the JSON document to FILE (table still on stdout)
//   --pretty      indent the JSON
//   --top N       rows per human table (default 20)
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "driver/profile.hpp"

namespace {

int usage(int code) {
  (code == 0 ? std::cout : std::cerr)
      << "usage: parcm_profile [--json] [--pretty] [--out FILE] [--top N] "
         "FILE...\n"
         "       parcm_profile --diff A B [--json] [--pretty] [--out FILE] "
         "[--top N]\n";
  return code;
}

bool ingest_or_die(parcm::driver::Profile& profile, const std::string& path) {
  std::string error;
  if (!profile.ingest_file(path, &error)) {
    std::cerr << "parcm_profile: " << error << "\n";
    return false;
  }
  return true;
}

bool write_out(const std::string& path, const std::string& doc) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::cerr << "parcm_profile: cannot write " << path << "\n";
    return false;
  }
  out << doc << "\n";
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> files;
  std::string diff_a, diff_b, out_path;
  bool diff_mode = false, json_stdout = false, pretty = false;
  std::size_t top = 20;

  std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--diff" && i + 2 < args.size()) {
      diff_mode = true;
      diff_a = args[++i];
      diff_b = args[++i];
    } else if (a == "--out" && i + 1 < args.size()) {
      out_path = args[++i];
    } else if (a.rfind("--out=", 0) == 0) {
      out_path = a.substr(6);
    } else if (a == "--top" && i + 1 < args.size()) {
      top = static_cast<std::size_t>(std::strtoull(args[++i].c_str(),
                                                   nullptr, 10));
    } else if (a.rfind("--top=", 0) == 0) {
      top = static_cast<std::size_t>(std::strtoull(a.c_str() + 6, nullptr,
                                                   10));
    } else if (a == "--json") {
      json_stdout = true;
    } else if (a == "--pretty") {
      pretty = true;
    } else if (a == "--help" || a == "-h") {
      return usage(0);
    } else if (!a.empty() && a[0] == '-') {
      std::cerr << "unknown option " << a << "\n";
      return usage(2);
    } else {
      files.push_back(a);
    }
  }
  if (top == 0) top = 1;

  if (diff_mode) {
    if (!files.empty()) {
      std::cerr << "parcm_profile: --diff takes exactly two files\n";
      return usage(2);
    }
    parcm::driver::Profile before, after;
    if (!ingest_or_die(before, diff_a) || !ingest_or_die(after, diff_b)) {
      return 1;
    }
    parcm::driver::Profile::Diff d =
        parcm::driver::Profile::diff(before, after);
    const std::string doc = d.to_json(pretty);
    if (!out_path.empty() && !write_out(out_path, doc)) return 1;
    if (json_stdout) {
      std::cout << doc << "\n";
    } else {
      std::cout << d.table(top);
    }
    return 0;
  }

  if (files.empty()) return usage(2);
  parcm::driver::Profile profile;
  for (const std::string& path : files) {
    if (!ingest_or_die(profile, path)) return 1;
  }
  if (profile.empty()) {
    std::cerr << "parcm_profile: no samples found in "
              << (files.size() == 1 ? files[0]
                                    : std::to_string(files.size()) +
                                          " files")
              << " (batch reports need --json with timing; metrics need "
                 "pipeline.pass_wall_ns.* histograms)\n";
    return 1;
  }
  const std::string doc = profile.to_json(pretty);
  if (!out_path.empty() && !write_out(out_path, doc)) return 1;
  if (json_stdout) {
    std::cout << doc << "\n";
  } else {
    std::cout << profile.table(top);
  }
  return 0;
}
