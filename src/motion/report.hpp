// Human-readable transformation reports (used by examples and the CLI).
//
// Reports are renderings of optimization remarks: motion_remarks() distills
// a MotionResult into the same obs::Remark records the passes emit live,
// and motion_report()/motion_dot() format those records. The summary path
// works in PARCM_OBS=OFF builds too — it never touches the global sink.
#pragma once

#include <string>
#include <vector>

#include "ir/dot.hpp"
#include "motion/code_motion.hpp"
#include "obs/remarks.hpp"

namespace parcm {

// Summary remarks reconstructed from the result: one kInserted per
// insertion point, one kReplaced per rewritten computation, one kInserted
// (bridge-copy) per privatization bridge. Deterministic (term then node
// order); pass name "motion".
std::vector<obs::Remark> motion_remarks(const MotionResult& result);

// Fills in empty `term` strings on remarks that carry a term_index, using
// g's term numbering (stable across the transformation: motion only
// appends nodes, so indices computed on the input graph stay valid).
void resolve_remark_terms(const Graph& g, std::vector<obs::Remark>& remarks);

// Per-term insertions/replacements plus totals — a rendering of
// motion_remarks().
std::string motion_report(const MotionResult& result);

// Per-node safety table for one term: Comp/Transp/up-safe/down-safe/
// earliest/replace. Heavy; intended for small (figure-sized) programs.
std::string safety_table(const Graph& g, const MotionResult& result,
                         TermId term);

// Annotated Graphviz export of the transformed graph: per-node dataflow
// facts (U-Safe/D-Safe/Earliest/Replace for `term`) plus badges for any
// `remarks` attached to the node (kind, and the paper-pitfall tag when a
// reason carries one). Inserted/replaced nodes are tinted.
std::string motion_dot(const MotionResult& result, TermId term,
                       const std::vector<obs::Remark>& remarks = {},
                       const std::string& title = "parcm");

}  // namespace parcm
