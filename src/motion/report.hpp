// Human-readable transformation reports (used by examples and the CLI).
#pragma once

#include <string>

#include "motion/code_motion.hpp"

namespace parcm {

// Per-term insertions/replacements plus totals.
std::string motion_report(const MotionResult& result);

// Per-node safety table for one term: Comp/Transp/up-safe/down-safe/
// earliest/replace. Heavy; intended for small (figure-sized) programs.
std::string safety_table(const Graph& g, const MotionResult& result,
                         TermId term);

}  // namespace parcm
