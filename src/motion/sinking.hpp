// Partial dead-code elimination by assignment sinking.
//
// The dual of code motion, and the subject of the author's companion work
// the paper cites ([10] Knoop, TCS'98 — partially dead code in explicitly
// parallel programs; [16] assignment motion): an assignment `x := rhs` that
// is dead on *some* paths is sunk to the frontier where its value is about
// to be consumed, and the copies on paths where x is dead are dropped —
// the assignment then executes only when needed.
//
// Sinking region for a candidate assignment A (greatest fixpoint):
//   D(n) = every path from A to n is *clean* — no use or redefinition of x,
//          no modification of rhs operands, and no parallel statement
//          boundary (ParBegin/ParEnd block: sinking into components would
//          duplicate the assignment across sibling executions, sinking out
//          would reorder it against the join).
// Copies are placed (a) before every node n with D(n) that is not clean
// (the first consumer / blocker on each path) and (b) on every edge leaving
// the D-region; a copy is dropped when x is dead at its placement. Each
// path through A crosses exactly one placement, so per-path cost never
// increases, and strictly decreases on the dead paths.
//
// Interference: only assignments whose left-hand side and operands are all
// *uncontested* (no potentially-parallel access) are candidates — for those
// the reordering is thread-local and invisible to siblings.
#pragma once

#include <vector>

#include "ir/graph.hpp"

namespace parcm {

struct SinkingResult {
  Graph graph;
  // Original assignment nodes that were moved (turned into skips).
  std::vector<NodeId> sunk;
  // Placements materialized / dropped-as-dead across all candidates.
  std::size_t copies_placed = 0;
  std::size_t copies_dropped = 0;
};

// Applies assignment sinking to every profitable candidate (at least one
// dead copy dropped). Candidates are processed one at a time on the
// evolving graph.
SinkingResult sink_partially_dead_assignments(const Graph& g);

}  // namespace parcm
