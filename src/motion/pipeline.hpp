// Pass pipeline: chain the library's transformations with per-pass
// statistics and optional end-to-end verification.
//
// The default pipeline is the classical redundancy-removal stack enabled by
// the paper's framework: parallel code motion (partial redundancy
// elimination), constant propagation, dead assignment elimination.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ir/graph.hpp"
#include "verify/verify.hpp"

namespace parcm {

struct PassStats {
  std::string name;
  std::size_t nodes_before = 0;
  std::size_t nodes_after = 0;
  // Pass-specific headline number (insertions, folds, eliminations, ...).
  std::size_t actions = 0;
  // Wall-clock time of the pass.
  double wall_ms = 0.0;
  // Delta of every obs::Registry counter the pass moved (solver
  // relaxations, per-term motion counts, ...). Empty when the library is
  // built with PARCM_OBS=OFF.
  std::map<std::string, std::uint64_t> counters;
  // Optimization remarks the pass emitted into the global obs::remarks()
  // sink (zero when the sink is disabled or PARCM_OBS=OFF).
  std::size_t remarks = 0;
};

struct PipelineResult {
  Graph graph;
  std::vector<PassStats> passes;
  // Differential translation-validation verdict comparing the pipeline's
  // input against its final output; present when validate_semantics was
  // requested. A structural add_validate failure throws; a semantic
  // divergence is *recorded* here so callers (parcm_opt --validate, the
  // fuzzer) decide how loudly to fail.
  std::optional<verify::Verdict> validation;

  std::string to_string() const;
  // Machine-readable form: {"passes":[{name, nodes_before, nodes_after,
  // node_delta, actions, wall_ms, counters}, ...], "validation"?: {status,
  // exact, witness}}. Stable key order.
  std::string to_json(bool pretty = false) const;
};

class Pipeline {
 public:
  using PassFn = std::function<Graph(const Graph&, std::size_t* actions)>;

  Pipeline& add(std::string name, PassFn pass);

  // Built-in passes.
  Pipeline& add_pcm();        // parallel busy code motion (the paper)
  Pipeline& add_constprop();  // interference-aware constant propagation
  Pipeline& add_dce(std::vector<std::string> observed = {});
  Pipeline& add_sinking();    // partial dead-code elimination (sinking)
  Pipeline& add_validate();   // structural check between passes

  // Opt-in translation-validation post-pass: after the last pass, compare
  // the observable behaviours of the pipeline's input and output with the
  // differential oracle and record the verdict in PipelineResult.
  Pipeline& validate_semantics(verify::Budget budget = {});

  // Called with the pass name immediately before each pass (including the
  // differential-validate post-pass). The batch driver installs a deadline
  // check here, so a per-program timeout fires between passes and unwinds
  // as an exception instead of abandoning a half-transformed graph.
  Pipeline& on_pass_start(std::function<void(const std::string&)> hook);

  // Runs every pass in order on a copy of g.
  PipelineResult run(const Graph& g) const;

  std::size_t size() const { return passes_.size(); }

 private:
  struct Pass {
    std::string name;
    PassFn fn;
  };
  std::vector<Pass> passes_;
  std::optional<verify::Budget> semantic_budget_;
  std::function<void(const std::string&)> pass_start_hook_;
};

// PCM -> constant propagation -> DCE (with every variable observable),
// validating between passes.
Pipeline default_pipeline();

}  // namespace parcm
