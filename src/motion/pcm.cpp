#include "motion/pcm.hpp"

namespace parcm {

MotionResult parallel_code_motion(const Graph& g) {
  return run_code_motion(g, CodeMotionConfig{SafetyVariant::kRefined});
}

MotionResult naive_parallel_code_motion(const Graph& g) {
  return run_code_motion(g, CodeMotionConfig{SafetyVariant::kNaive});
}

}  // namespace parcm
