#include "motion/pcm.hpp"

#include "obs/metrics.hpp"
#include "obs/remarks.hpp"

namespace parcm {

MotionResult parallel_code_motion(const Graph& g) {
  PARCM_OBS_COUNT("motion.pcm.runs", 1);
  PARCM_OBS_REMARK_PASS("pcm");
  return run_code_motion(g, CodeMotionConfig{SafetyVariant::kRefined});
}

MotionResult naive_parallel_code_motion(const Graph& g) {
  PARCM_OBS_COUNT("motion.pcm_naive.runs", 1);
  PARCM_OBS_REMARK_PASS("pcm-naive");
  return run_code_motion(g, CodeMotionConfig{SafetyVariant::kNaive});
}

}  // namespace parcm
