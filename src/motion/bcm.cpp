#include "motion/bcm.hpp"

#include "obs/metrics.hpp"
#include "obs/remarks.hpp"
#include "support/diagnostics.hpp"

namespace parcm {

MotionResult busy_code_motion(const Graph& g) {
  PARCM_OBS_COUNT("motion.bcm.runs", 1);
  PARCM_OBS_REMARK_PASS("bcm");
  PARCM_CHECK(g.num_par_stmts() == 0,
              "busy_code_motion is the sequential baseline; use "
              "parallel_code_motion for parallel programs");
  return run_code_motion(g, CodeMotionConfig{SafetyVariant::kRefined});
}

}  // namespace parcm
