#include "motion/dce.hpp"

#include <deque>

#include "obs/metrics.hpp"
#include "obs/remarks.hpp"
#include "support/diagnostics.hpp"

namespace parcm {

namespace {

// Variables read by node n (rhs operands, test condition).
BitVector uses_mask(const Graph& g, NodeId n, std::size_t num_vars) {
  BitVector mask(num_vars);
  const Node& node = g.node(n);
  auto add = [&](const Rhs& rhs) {
    if (rhs.is_term()) {
      if (rhs.term().lhs.is_var()) mask.set(rhs.term().lhs.var_id().index());
      if (rhs.term().rhs.is_var()) mask.set(rhs.term().rhs.var_id().index());
    } else if (rhs.trivial().is_var()) {
      mask.set(rhs.trivial().var_id().index());
    }
  };
  if (node.kind == NodeKind::kAssign) add(node.rhs);
  if (node.kind == NodeKind::kTest) add(*node.cond);
  return mask;
}

}  // namespace

ParallelLiveness compute_parallel_liveness(const Graph& g,
                                           const BitVector& observed) {
  std::size_t k = g.num_vars();
  PARCM_CHECK(observed.size() == k, "observed mask size");

  std::vector<BitVector> use(g.num_nodes(), BitVector(k));
  std::vector<BitVector> def(g.num_nodes(), BitVector(k));
  for (NodeId n : g.all_nodes()) {
    use[n.index()] = uses_mask(g, n, k);
    if (g.node(n).kind == NodeKind::kAssign) {
      def[n.index()].set(g.node(n).lhs.index());
    }
  }

  // Interference: a read anywhere in a sibling component may execute after
  // any point of this component. Aggregate read masks per component.
  std::vector<BitVector> region_use(g.num_regions(), BitVector(k));
  for (std::size_t ri = 0; ri < g.num_regions(); ++ri) {
    RegionId r(static_cast<RegionId::underlying>(ri));
    for (NodeId n : g.nodes_in_region_recursive(r)) {
      region_use[ri] |= use[n.index()];
    }
  }
  std::vector<BitVector> sibling_use(g.num_nodes(), BitVector(k));
  for (NodeId n : g.all_nodes()) {
    for (const Graph::Enclosing& enc : g.enclosing_stmts(n)) {
      for (RegionId comp : g.par_stmt(enc.stmt).components) {
        if (comp != enc.component) {
          sibling_use[n.index()] |= region_use[comp.index()];
        }
      }
    }
  }

  ParallelLiveness res;
  res.live_in.assign(g.num_nodes(), BitVector(k));
  res.live_out.assign(g.num_nodes(), BitVector(k));
  res.live_out[g.end().index()] = observed;
  {
    BitVector in = observed;
    in |= use[g.end().index()];
    res.live_in[g.end().index()] = std::move(in);
  }

  std::deque<NodeId> worklist;
  std::vector<char> queued(g.num_nodes(), 0);
  for (NodeId n : g.all_nodes()) {
    worklist.push_back(n);
    queued[n.index()] = 1;
  }
  std::size_t relaxations = 0;
  while (!worklist.empty()) {
    NodeId n = worklist.front();
    worklist.pop_front();
    queued[n.index()] = 0;
    ++relaxations;

    BitVector out(k);
    if (n == g.end()) {
      out = observed;
    } else {
      for (NodeId m : g.succs(n)) out |= res.live_in[m.index()];
    }
    out |= sibling_use[n.index()];
    BitVector in = out;
    in.and_not(def[n.index()]);
    in |= use[n.index()];
    if (in == res.live_in[n.index()] && out == res.live_out[n.index()]) {
      continue;
    }
    res.live_in[n.index()] = std::move(in);
    res.live_out[n.index()] = std::move(out);
    for (NodeId m : g.preds(n)) {
      if (!queued[m.index()]) {
        queued[m.index()] = 1;
        worklist.push_back(m);
      }
    }
  }
  PARCM_OBS_COUNT("motion.liveness.relaxations", relaxations);
  return res;
}

DceResult eliminate_dead_assignments(const Graph& g,
                                     const DceOptions& options) {
  PARCM_OBS_TIMER("motion.dce");
  PARCM_OBS_REMARK_PASS("dce");
  DceResult res{g, {}, 0};
  Graph& out = res.graph;

  BitVector observed(out.num_vars(), options.observed.empty());
  for (const std::string& name : options.observed) {
    if (auto v = out.find_var(name)) observed.set(v->index());
  }

  bool changed = true;
  while (changed) {
    changed = false;
    ++res.rounds;
    ParallelLiveness live = compute_parallel_liveness(out, observed);
    for (NodeId n : out.all_nodes()) {
      Node& node = out.node(n);
      if (node.kind != NodeKind::kAssign) continue;
      if (live.live_out[n.index()].test(node.lhs.index())) continue;
      // Dead: no interleaving reads the value before it is overwritten.
      PARCM_OBS_REMARK(obs::Remark{
          obs::RemarkKind::kReplaced, "", n.value(), -1, "",
          "dead assignment to " + out.var_name(node.lhs) +
              " eliminated: no interleaving reads the value before it is "
              "overwritten",
          {obs::RemarkReason::kDeadAssignment},
          ""});
      node.kind = NodeKind::kSkip;
      node.rhs = Rhs();
      node.lhs = VarId();
      res.eliminated.push_back(n);
      changed = true;
    }
  }
  PARCM_OBS_COUNT("motion.dce.runs", 1);
  PARCM_OBS_COUNT("motion.dce.rounds", res.rounds);
  PARCM_OBS_COUNT("motion.dce.eliminated", res.eliminated.size());
  return res;
}

}  // namespace parcm
