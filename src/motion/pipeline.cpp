#include "motion/pipeline.hpp"

#include <chrono>
#include <sstream>

#include "analyses/constprop.hpp"
#include "ir/validate.hpp"
#include "motion/dce.hpp"
#include "motion/pcm.hpp"
#include "motion/sinking.hpp"
#include "obs/flight.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/remarks.hpp"
#include "support/diagnostics.hpp"

namespace parcm {

std::string PipelineResult::to_string() const {
  std::size_t name_width = 4;  // "pass"
  for (const PassStats& p : passes) {
    name_width = std::max(name_width, p.name.size());
  }
  std::ostringstream os;
  os << "pipeline (" << passes.size() << " pass"
     << (passes.size() == 1 ? "" : "es") << ")\n";
  char buf[160];
  std::snprintf(buf, sizeof(buf), "  %-*s %7s %7s %6s %8s %8s %10s\n",
                static_cast<int>(name_width), "pass", "before", "after",
                "delta", "actions", "remarks", "wall ms");
  os << buf;
  for (const PassStats& p : passes) {
    long long delta = static_cast<long long>(p.nodes_after) -
                      static_cast<long long>(p.nodes_before);
    std::snprintf(buf, sizeof(buf),
                  "  %-*s %7zu %7zu %+6lld %8zu %8zu %10.3f\n",
                  static_cast<int>(name_width), p.name.c_str(),
                  p.nodes_before, p.nodes_after, delta, p.actions, p.remarks,
                  p.wall_ms);
    os << buf;
  }
  return os.str();
}

std::string PipelineResult::to_json(bool pretty) const {
  obs::JsonWriter w(pretty);
  w.begin_object();
  w.key("passes").begin_array();
  for (const PassStats& p : passes) {
    w.begin_object();
    w.key("name").value(p.name);
    w.key("nodes_before").value(p.nodes_before);
    w.key("nodes_after").value(p.nodes_after);
    w.key("node_delta").value(static_cast<std::int64_t>(p.nodes_after) -
                              static_cast<std::int64_t>(p.nodes_before));
    w.key("actions").value(p.actions);
    w.key("remarks").value(p.remarks);
    w.key("wall_ms").value(p.wall_ms);
    w.key("counters").begin_object();
    for (const auto& [k, v] : p.counters) w.key(k).value(v);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  if (validation.has_value()) {
    w.key("validation").begin_object();
    w.key("status").value(verify::status_name(validation->status));
    w.key("exact").value(validation->exact);
    w.key("original_behaviours").value(validation->original_behaviours);
    w.key("transformed_behaviours").value(validation->transformed_behaviours);
    w.key("witness").value(validation->witness_text());
    w.end_object();
  }
  w.end_object();
  return w.take();
}

Pipeline& Pipeline::add(std::string name, PassFn pass) {
  passes_.push_back(Pass{std::move(name), std::move(pass)});
  return *this;
}

Pipeline& Pipeline::add_pcm() {
  return add("pcm", [](const Graph& g, std::size_t* actions) {
    MotionResult r = parallel_code_motion(g);
    *actions = r.num_insertions() + r.num_replacements();
    return std::move(r.graph);
  });
}

Pipeline& Pipeline::add_constprop() {
  return add("constprop", [](const Graph& g, std::size_t* actions) {
    ConstPropResult r = propagate_constants(g);
    *actions = r.operands_folded + r.rhs_folded;
    return std::move(r.graph);
  });
}

Pipeline& Pipeline::add_dce(std::vector<std::string> observed) {
  return add("dce", [observed = std::move(observed)](const Graph& g,
                                                     std::size_t* actions) {
    DceOptions opts;
    opts.observed = observed;
    DceResult r = eliminate_dead_assignments(g, opts);
    *actions = r.eliminated.size();
    return std::move(r.graph);
  });
}

Pipeline& Pipeline::add_sinking() {
  return add("sinking", [](const Graph& g, std::size_t* actions) {
    SinkingResult r = sink_partially_dead_assignments(g);
    *actions = r.sunk.size();
    return std::move(r.graph);
  });
}

Pipeline& Pipeline::add_validate() {
  // Remember which pass this check guards so a failure names the culprit.
  std::string after = passes_.empty() ? std::string("(input)")
                                      : passes_.back().name;
  return add("validate", [after](const Graph& g, std::size_t* actions) {
    try {
      validate_or_throw(g);
    } catch (const InternalError& e) {
      throw InternalError("pipeline validation failed after pass '" + after +
                          "': " + e.what());
    }
    *actions = 0;
    return g;
  });
}

Pipeline& Pipeline::validate_semantics(verify::Budget budget) {
  semantic_budget_ = budget;
  return *this;
}

Pipeline& Pipeline::on_pass_start(std::function<void(const std::string&)> hook) {
  pass_start_hook_ = std::move(hook);
  return *this;
}

PipelineResult Pipeline::run(const Graph& g) const {
  PARCM_OBS_TIMER("pipeline.run");
  PipelineResult res{g, {}, {}};
  // Reused across passes: after the first pass the snapshot allocates
  // nothing, keeping the pipeline's allocation count independent of how
  // many counters the ambient registry has accumulated.
  obs::CounterBaseline counter_base;
  for (const Pass& pass : passes_) {
    if (pass_start_hook_) pass_start_hook_(pass.name);
    PassStats stats;
    stats.name = pass.name;
    stats.nodes_before = res.graph.num_nodes();
    PARCM_OBS_FLIGHT(obs::FlightKind::kPassStart, pass.name,
                     stats.nodes_before, 0);
    counter_base.snapshot(obs::registry());
    std::size_t remarks_before = obs::remarks().size();
    auto start = std::chrono::steady_clock::now();
    std::size_t actions = 0;
    {
      // Remarks emitted by the pass body default to this pass's name (inner
      // scopes — e.g. pcm inside the pcm pass — take precedence).
      PARCM_OBS_REMARK_PASS(pass.name);
      res.graph = pass.fn(res.graph, &actions);
    }
    auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - start)
                  .count();
    stats.wall_ms = static_cast<double>(ns) / 1e6;
    PARCM_OBS_HIST("pipeline.pass_wall_ns", static_cast<std::uint64_t>(ns));
    PARCM_OBS_HIST(std::string("pipeline.pass_wall_ns.") + pass.name,
                   static_cast<std::uint64_t>(ns));
    PARCM_OBS_FLIGHT(obs::FlightKind::kPassEnd, pass.name,
                     static_cast<std::uint64_t>(ns), actions);
    // Attribute the registry counters the pass moved to this PassStats.
    counter_base.deltas_since(obs::registry(), &stats.counters);
    stats.nodes_after = res.graph.num_nodes();
    stats.actions = actions;
    stats.remarks = obs::remarks().size() - remarks_before;
    res.passes.push_back(std::move(stats));
  }
  if (semantic_budget_.has_value()) {
    if (pass_start_hook_) pass_start_hook_("differential-validate");
    PassStats stats;
    stats.name = "differential-validate";
    stats.nodes_before = g.num_nodes();
    stats.nodes_after = res.graph.num_nodes();
    PARCM_OBS_FLIGHT(obs::FlightKind::kPassStart, stats.name,
                     stats.nodes_before, 0);
    auto start = std::chrono::steady_clock::now();
    res.validation = verify::differential_check(g, res.graph,
                                                *semantic_budget_);
    auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - start)
                  .count();
    stats.wall_ms = static_cast<double>(ns) / 1e6;
    stats.actions = res.validation->status == verify::Status::kDiverged;
    PARCM_OBS_COUNT("verify.pipeline.validations", 1);
    PARCM_OBS_HIST(std::string("pipeline.pass_wall_ns.") + stats.name,
                   static_cast<std::uint64_t>(ns));
    PARCM_OBS_FLIGHT(obs::FlightKind::kOracleVerdict, stats.name,
                     res.validation->original_behaviours,
                     res.validation->transformed_behaviours);
    res.passes.push_back(std::move(stats));
  }
  return res;
}

Pipeline default_pipeline() {
  Pipeline p;
  p.add_pcm().add_validate().add_constprop().add_validate().add_sinking()
      .add_validate().add_dce().add_validate();
  return p;
}

}  // namespace parcm
