#include "motion/pipeline.hpp"

#include <sstream>

#include "analyses/constprop.hpp"
#include "ir/validate.hpp"
#include "motion/dce.hpp"
#include "motion/pcm.hpp"
#include "motion/sinking.hpp"

namespace parcm {

std::string PipelineResult::to_string() const {
  std::ostringstream os;
  os << "pipeline (" << passes.size() << " passes)\n";
  for (const PassStats& p : passes) {
    os << "  " << p.name << ": " << p.nodes_before << " -> " << p.nodes_after
       << " nodes, " << p.actions << " action(s)\n";
  }
  return os.str();
}

Pipeline& Pipeline::add(std::string name, PassFn pass) {
  passes_.push_back(Pass{std::move(name), std::move(pass)});
  return *this;
}

Pipeline& Pipeline::add_pcm() {
  return add("pcm", [](const Graph& g, std::size_t* actions) {
    MotionResult r = parallel_code_motion(g);
    *actions = r.num_insertions() + r.num_replacements();
    return std::move(r.graph);
  });
}

Pipeline& Pipeline::add_constprop() {
  return add("constprop", [](const Graph& g, std::size_t* actions) {
    ConstPropResult r = propagate_constants(g);
    *actions = r.operands_folded + r.rhs_folded;
    return std::move(r.graph);
  });
}

Pipeline& Pipeline::add_dce(std::vector<std::string> observed) {
  return add("dce", [observed = std::move(observed)](const Graph& g,
                                                     std::size_t* actions) {
    DceOptions opts;
    opts.observed = observed;
    DceResult r = eliminate_dead_assignments(g, opts);
    *actions = r.eliminated.size();
    return std::move(r.graph);
  });
}

Pipeline& Pipeline::add_sinking() {
  return add("sinking", [](const Graph& g, std::size_t* actions) {
    SinkingResult r = sink_partially_dead_assignments(g);
    *actions = r.sunk.size();
    return std::move(r.graph);
  });
}

Pipeline& Pipeline::add_validate() {
  return add("validate", [](const Graph& g, std::size_t* actions) {
    validate_or_throw(g);
    *actions = 0;
    return g;
  });
}

PipelineResult Pipeline::run(const Graph& g) const {
  PipelineResult res{g, {}};
  for (const Pass& pass : passes_) {
    PassStats stats;
    stats.name = pass.name;
    stats.nodes_before = res.graph.num_nodes();
    std::size_t actions = 0;
    res.graph = pass.fn(res.graph, &actions);
    stats.nodes_after = res.graph.num_nodes();
    stats.actions = actions;
    res.passes.push_back(std::move(stats));
  }
  return res;
}

Pipeline default_pipeline() {
  Pipeline p;
  p.add_pcm().add_validate().add_constprop().add_validate().add_sinking()
      .add_validate().add_dce().add_validate();
  return p;
}

}  // namespace parcm
