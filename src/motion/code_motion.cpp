#include "motion/code_motion.hpp"

#include <deque>

#include "analyses/cache.hpp"
#include "ir/printer.hpp"
#include "ir/regions.hpp"
#include "ir/transform_utils.hpp"
#include "obs/metrics.hpp"
#include "obs/remarks.hpp"
#include "support/diagnostics.hpp"

namespace parcm {

std::size_t MotionResult::num_insertions() const {
  std::size_t n = 0;
  for (const TermMotion& t : terms) n += t.insert_nodes.size();
  return n;
}

std::size_t MotionResult::num_replacements() const {
  std::size_t n = 0;
  for (const TermMotion& t : terms) n += t.replaced.size();
  return n;
}

namespace {

const char* op_word(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return "add";
    case BinOp::kSub: return "sub";
    case BinOp::kMul: return "mul";
    case BinOp::kDiv: return "div";
    case BinOp::kLt: return "lt";
    case BinOp::kLe: return "le";
    case BinOp::kGt: return "gt";
    case BinOp::kGe: return "ge";
    case BinOp::kEq: return "eq";
    case BinOp::kNe: return "ne";
  }
  return "op";
}

std::string operand_word(const Graph& g, const Operand& op) {
  if (op.is_var()) return g.var_name(op.var_id());
  std::int64_t v = op.const_value();
  return v < 0 ? "m" + std::to_string(-v) : std::to_string(v);
}

}  // namespace

std::string fresh_temp_name(const Graph& g, const Term& t) {
  std::string base = "h_" + operand_word(g, t.lhs) + "_" + op_word(t.op) +
                     "_" + operand_word(g, t.rhs);
  std::string name = base;
  int suffix = 0;
  while (g.find_var(name).has_value()) {
    name = base + "_" + std::to_string(++suffix);
  }
  return name;
}

namespace {

// Component-private temporaries (refined variant): inside a parallel
// statement where some node modifies an operand of the term, sibling
// components may write stale values into the shared temporary while another
// component (or the code after the join) still relies on it. Renaming every
// in-component access to a per-component temp removes the race; zero-cost
// trivial copies bridge the two legitimate cross-boundary flows — an
// upstream value entering a component (h_C := h at the component entry) and
// the unique operand-modifying component establishing up-safety at the exit
// (h := h_C after the ParEnd). Processes statements innermost-first so an
// outer rename uniformly captures inner bridges.
void privatize_term(Graph& out, const LocalPredicates& preds,
                    const SafetyInfo& safety, TermMotion& motion) {
  TermId t = motion.term;
  std::size_t ti = t.index();

  std::vector<ParStmtId> order;
  for (std::size_t i = 0; i < out.num_par_stmts(); ++i) {
    order.push_back(ParStmtId(static_cast<ParStmtId::underlying>(i)));
  }
  std::sort(order.begin(), order.end(), [&](ParStmtId a, ParStmtId b) {
    return out.region_depth(out.par_stmt(a).parent_region) >
           out.region_depth(out.par_stmt(b).parent_region);
  });

  // Nodes created by the transformation (>= analyzed count) have no
  // LocalPredicates entry; they are temp initializations and trivial
  // copies, which never modify the term's operands.
  std::size_t analyzed = safety.upsafe.size();
  auto subtree_dirty = [&](RegionId r) {
    bool dirty = false;
    out.for_each_node_in_region_recursive(r, [&](NodeId n) {
      dirty = dirty || (n.index() < analyzed && preds.mod(n).test(ti));
    });
    return dirty;
  };

  for (ParStmtId s : order) {
    const ParStmt& stmt = out.par_stmt(s);
    bool dirty = false;
    std::vector<char> comp_dirty;
    for (RegionId comp : stmt.components) {
      bool d = subtree_dirty(comp);
      comp_dirty.push_back(d);
      dirty = dirty || d;
    }
    if (!dirty) continue;

    RegionId dirty_comp;
    int dirty_count = 0;
    std::vector<std::pair<RegionId, VarId>> renamed;
    for (std::size_t ci = 0; ci < stmt.components.size(); ++ci) {
      RegionId comp = stmt.components[ci];
      if (comp_dirty[ci]) {
        ++dirty_count;
        dirty_comp = comp;
      }
      // Rename accesses of the shared temp within this component.
      bool any_access = false;
      avector<NodeId> members = out.nodes_in_region_recursive(comp);
      for (NodeId n : members) {
        Node& node = out.node(n);
        if (node.kind != NodeKind::kAssign) continue;
        if (node.lhs == motion.temp ||
            (node.rhs.is_trivial() && node.rhs.trivial().is_var() &&
             node.rhs.trivial().var_id() == motion.temp)) {
          any_access = true;
          break;
        }
      }
      if (!any_access) continue;

      VarId priv = out.intern_var(out.var_name(motion.temp) + "_c" +
                                  std::to_string(comp.value()));
      PARCM_OBS_REMARK(obs::Remark{
          obs::RemarkKind::kDegraded, "",
          out.component_entry(comp).value(),
          static_cast<std::int64_t>(t.index()),
          term_to_string(out, motion.term_value),
          "sibling components race on the shared temporary: accesses in "
          "this component renamed to " + out.var_name(priv),
          {obs::RemarkReason::kPrivatized},
          "component region r" + std::to_string(comp.value())});
      for (NodeId n : members) {
        Node& node = out.node(n);
        if (node.kind != NodeKind::kAssign) continue;
        if (node.lhs == motion.temp) node.lhs = priv;
        if (node.rhs.is_trivial() && node.rhs.trivial().is_var() &&
            node.rhs.trivial().var_id() == motion.temp) {
          node.rhs = Rhs(Operand::var(priv));
        }
      }
      // Entry bridge: carry an upstream value of the shared temp in.
      NodeId bridge = out.new_assign(comp, priv, Rhs(Operand::var(motion.temp)));
      out.splice_before(bridge, out.component_entry(comp));
      motion.bridge_nodes.push_back(bridge);
      PARCM_OBS_REMARK(obs::Remark{
          obs::RemarkKind::kInserted, "", bridge.value(),
          static_cast<std::int64_t>(t.index()),
          term_to_string(out, motion.term_value),
          out.var_name(priv) + " := " + out.var_name(motion.temp) +
              " carries the upstream value into the component",
          {obs::RemarkReason::kBridgeCopy, obs::RemarkReason::kPrivatized},
          ""});
      renamed.emplace_back(comp, priv);
      motion.private_temps.emplace_back(comp, priv);
    }

    // Exit bridge: the statement exit is up-safe_par only via the unique
    // operand-modifying component; code after the join reads the shared
    // temp, so copy the establishing component's value out.
    if (s.index() < safety.up_result.stmt_summary.size() &&
        safety.up_result.stmt_summary[s.index()].tt.test(ti) &&
        dirty_count == 1) {
      for (const auto& [comp, priv] : renamed) {
        if (comp != dirty_comp) continue;
        NodeId end = stmt.end;
        avector<EdgeId> outgoing = out.node(end).out_edges;
        for (EdgeId e : outgoing) {
          NodeId bridge = out.new_assign(edge_region(out, e), motion.temp,
                                         Rhs(Operand::var(priv)));
          wire_on_edge(out, e, bridge);
          motion.bridge_nodes.push_back(bridge);
        }
      }
    }
  }
}

}  // namespace

MotionResult run_code_motion(const Graph& g, const CodeMotionConfig& config) {
  PARCM_OBS_TIMER("motion.run_code_motion");
  MotionResult res{g, 0, {}, {}, {}};
  Graph& out = res.graph;

  res.synthetic_nodes = split_join_edges(out);

  // One cache lookup covers TermTable + LocalPredicates; repeated passes
  // over an unchanged graph (and benchmark loops rebuilding identical
  // programs) skip the rebuild entirely.
  std::shared_ptr<const AnalysisBundle> analyses =
      analysis_cache().acquire(out);
  const TermTable& terms = analyses->terms;
  const LocalPredicates& preds = analyses->preds;
  res.safety = compute_safety(out, preds, config.variant);
  MotionPredicateOptions mp_options;
  mp_options.parend_export_rule = config.parend_export_rule;
  res.predicates = compute_motion_predicates(out, preds, res.safety,
                                             mp_options);

  PARCM_OBS_TIMER("motion.placement");

  // Node set is about to grow; iterate over a snapshot of the analyzed ids.
  avector<NodeId> analyzed(out.all_nodes().begin(), out.all_nodes().end());

  // Per component region: terms computed / modified anywhere in its subtree.
  // Down-safety legitimately flows backward across a ParEnd into components
  // that are completely transparent for a term (the anticipated use lies
  // behind the join), which makes their entries Earliest. An insertion
  // there is never needed for coverage — no replacement inside the
  // component consumes it and the post-join uses are covered by the
  // establishing components or their own insertions — and it would move a
  // computation *into* a parallel component that never performed it
  // (potentially the bottleneck). Suppress those insertions.
  std::vector<BitVector> region_comp(out.num_regions(),
                                     BitVector(terms.size()));
  std::vector<BitVector> region_mod(out.num_regions(),
                                    BitVector(terms.size()));
  // A barrier inside the subtree makes a component non-transparent for
  // coverage even when it neither computes nor modifies anything: the
  // barrier kills down-safety, so the Earliest frontier of a post-join use
  // can lie entirely *inside* such components — suppressing those inserts
  // leaves the replacement reading an uninitialized temporary (found by
  // parcm_fuzz: nested par around a barrier plus any post-join occurrence).
  std::vector<char> region_barrier(out.num_regions(), 0);
  for (std::size_t ri = 0; ri < out.num_regions(); ++ri) {
    RegionId r(static_cast<RegionId::underlying>(ri));
    out.for_each_node_in_region_recursive(r, [&](NodeId n) {
      region_comp[ri] |= preds.comp(n);
      region_mod[ri] |= preds.mod(n);
      if (out.node(n).kind == NodeKind::kBarrier) region_barrier[ri] = 1;
    });
  }
  auto useless_insert = [&](NodeId n, TermId t) {
    for (const Graph::Enclosing& enc : out.enclosing_stmts(n)) {
      std::size_t c = enc.component.index();
      if (!region_comp[c].test(t.index()) && !region_mod[c].test(t.index()) &&
          !region_barrier[c]) {
        return true;
      }
    }
    return false;
  };

  // A second profitability pass: in parallel programs the Earliest frontier
  // need not be an antichain — interference (NonDest) can end a down-safe
  // region inside a component and a fresh anchor fires again behind the
  // join, so a path through the component would initialize the temporary
  // twice, violating the executional-improvement guarantee the busy formula
  // enjoys sequentially. Anchors therefore *sink*: an anchor stays only
  // where every continuation must reach a consumer (a replacement) before a
  // kill, another anchor or the end; otherwise it moves down to the
  // frontier where that becomes true (in the worst case, onto the consumers
  // themselves — the cost-neutral in-place initialization). Descents never
  // enter a ParBegin: placing one anchor per component would multiply the
  // computation across sibling executions, so the anchor stops at the
  // statement entry. Paths on which the BFS dies need no anchor at all —
  // which also erases anchors made fully redundant by a later one.

  // Helpers over the (possibly already grown) graph: nodes materialized for
  // earlier terms are temp initializations and trivial copies — transparent,
  // never consumers, never anchors.
  auto is_replace = [&](NodeId n, TermId t) {
    return n.index() < analyzed.size() &&
           res.predicates.replace[n.index()].test(t.index());
  };
  auto is_transp = [&](NodeId n, TermId t) {
    return n.index() >= analyzed.size() || preds.transp(n, t);
  };

  // Least-fixpoint MUSTUSE: every maximal path from n reaches a replacement
  // of t before a kill or an anchor of the blocking set (loops stay false:
  // the frontier then sinks to the consumer, which is always sound).
  auto compute_mustuse = [&](TermId t, const std::vector<char>& blocking) {
    std::vector<char> mustuse(out.num_nodes(), 0);
    std::deque<NodeId> worklist;
    std::vector<char> queued(out.num_nodes(), 0);
    auto enqueue_preds = [&](NodeId n) {
      for (NodeId m : out.preds(n)) {
        if (!queued[m.index()]) {
          queued[m.index()] = 1;
          worklist.push_back(m);
        }
      }
    };
    for (NodeId n : out.all_nodes()) {
      if (is_replace(n, t)) {
        mustuse[n.index()] = 1;
        enqueue_preds(n);
      }
    }
    while (!worklist.empty()) {
      NodeId n = worklist.front();
      worklist.pop_front();
      queued[n.index()] = 0;
      if (mustuse[n.index()] || is_replace(n, t)) continue;
      if (!is_transp(n, t) ||
          (n.index() < analyzed.size() && blocking[n.index()]) ||
          out.node(n).out_edges.empty()) {
        continue;
      }
      bool v = true;
      for (NodeId m : out.succs(n)) v = v && mustuse[m.index()];
      if (v) {
        mustuse[n.index()] = 1;
        enqueue_preds(n);
      }
    }
    return mustuse;
  };

  // Sinks anchor a against the blocking set; returns the frontier (empty if
  // every path dies first).
  auto sink_anchor = [&](NodeId a, TermId t, const std::vector<char>& blocking,
                         const std::vector<char>& mustuse) {
    std::vector<NodeId> frontier;
    if (is_replace(a, t)) {
      frontier.push_back(a);
      return frontier;
    }
    if (is_transp(a, t)) {
      bool keep = !out.node(a).out_edges.empty();
      for (NodeId m : out.succs(a)) keep = keep && mustuse[m.index()];
      if (keep) {
        frontier.push_back(a);
        return frontier;
      }
    }
    std::vector<char> visited(out.num_nodes(), 0);
    std::vector<NodeId> stack;
    auto push = [&](NodeId m) {
      if (!visited[m.index()]) {
        visited[m.index()] = 1;
        stack.push_back(m);
      }
    };
    if (!is_transp(a, t)) {
      // The anchor's own node kills the value; nothing to sink past.
      return frontier;
    }
    for (NodeId m : out.succs(a)) push(m);
    while (!stack.empty()) {
      NodeId n = stack.back();
      stack.pop_back();
      if (out.node(n).kind == NodeKind::kParBegin || mustuse[n.index()] ||
          is_replace(n, t)) {
        frontier.push_back(n);
        continue;
      }
      if (!is_transp(n, t)) continue;  // value dead on this path
      if (n.index() < analyzed.size() && blocking[n.index()]) continue;
      for (NodeId m : out.succs(n)) push(m);
    }
    return frontier;
  };

  // Reused across terms: emit_batch leaves the capacity in place, so the
  // hot replacement loop allocates a remark buffer once per run.
  std::vector<obs::Remark> replace_batch;

  for (TermId t : terms.all()) {
    TermMotion motion;
    motion.term = t;
    motion.term_value = terms.term(t);
    motion.temp = out.intern_var(fresh_temp_name(out, motion.term_value));

    // Remark emission is hot on large programs (one remark per insertion
    // and replacement); hoist the per-term invariant strings so each
    // emission copies instead of re-rendering.
    std::string term_str, replace_msg;
    obs::ReasonChain replace_why[4];
    if (PARCM_OBS_REMARKS_ON()) {
      term_str = term_to_string(out, motion.term_value);
      replace_msg =
          "computation replaced by the temporary " + out.var_name(motion.temp);
      // Index: bit 0 = up-safe, bit 1 = down-safe.
      for (int mask = 0; mask < 4; ++mask) {
        replace_why[mask].push_back(obs::RemarkReason::kComputes);
        if (mask & 1) replace_why[mask].push_back(obs::RemarkReason::kUpSafe);
        if (mask & 2) replace_why[mask].push_back(obs::RemarkReason::kDownSafe);
      }
    }

    std::vector<char> in_set(out.num_nodes(), 0);
    std::vector<NodeId> candidates;
    for (NodeId n : analyzed) {
      if (!res.predicates.earliest[n.index()].test(t.index())) continue;
      if (useless_insert(n, t)) {
        PARCM_OBS_REMARK(obs::Remark{
            obs::RemarkKind::kBlocked, "", n.value(),
            static_cast<std::int64_t>(t.index()),
            term_str,
            "insertion would move the computation into a parallel component "
            "that never performs it: the component could become the "
            "bottleneck",
            {obs::RemarkReason::kEarliest, obs::RemarkReason::kBottleneck},
            ""});
        continue;
      }
      in_set[n.index()] = 1;
      candidates.push_back(n);
    }
    // Sink each candidate against the current set (sequential updates keep
    // mutually-blocking anchors from vanishing together).
    std::vector<NodeId> anchors;
    if (config.sink_anchors) {
      for (NodeId a : candidates) {
        in_set[a.index()] = 0;
        std::vector<char> mustuse = compute_mustuse(t, in_set);
        std::vector<NodeId> frontier = sink_anchor(a, t, in_set, mustuse);
        for (NodeId m : frontier) {
          if (!in_set[m.index()]) {
            in_set[m.index()] = 1;
            anchors.push_back(m);
          }
        }
        if (PARCM_OBS_REMARKS_ON()) {
          if (frontier.empty()) {
            PARCM_OBS_REMARK(obs::Remark{
                obs::RemarkKind::kSkipped, "", a.value(),
                static_cast<std::int64_t>(t.index()),
                term_str,
                "anchor dropped: every continuation kills the value before "
                "any consumer needs it",
                {obs::RemarkReason::kValueDies},
                ""});
          } else if (frontier.size() != 1 || frontier.front() != a) {
            std::string where;
            for (NodeId m : frontier) {
              if (!where.empty()) where += ", ";
              where += "n" + std::to_string(m.value());
            }
            PARCM_OBS_REMARK(obs::Remark{
                obs::RemarkKind::kDegraded, "", a.value(),
                static_cast<std::int64_t>(t.index()),
                term_str,
                "earliest anchor is not executionally optimal here: a path "
                "would initialize the temporary twice, so the anchor sinks",
                {obs::RemarkReason::kAnchorSunk},
                "frontier: " + where});
          }
        }
      }
    }
    for (NodeId a : candidates) {
      if (in_set[a.index()]) anchors.push_back(a);
    }
    std::sort(anchors.begin(), anchors.end());
    anchors.erase(std::unique(anchors.begin(), anchors.end()), anchors.end());
    // Drop anchors that another anchor made stale (a sunk frontier landing
    // on a node already in the set was deduped by in_set above).
    for (NodeId n : anchors) {
      if (!in_set[n.index()]) continue;
      motion.insert_points.push_back(n);
      // Provenance of the placement decision: the reason chain names the
      // dataflow facts that justify the anchor, and flags the Fig. 7 case —
      // an initialization after a join whose components are individually
      // down-safe but whose safety witnesses differ per interleaving (P3).
      obs::ReasonChain why;
      bool edge_wise =
          n == out.start() || out.node(n).kind == NodeKind::kParEnd;
      if (PARCM_OBS_REMARKS_ON()) {
        why.push_back(obs::RemarkReason::kEarliest);
        why.push_back(obs::RemarkReason::kDownSafe);
        if (edge_wise) why.push_back(obs::RemarkReason::kEdgePlacement);
        if (out.node(n).kind == NodeKind::kParEnd) {
          ParStmtId s = out.node(n).par_stmt;
          if (s.valid() &&
              s.index() < res.safety.up_result.stmt_summary.size() &&
              res.safety.up_result.stmt_summary[s.index()].ff.test(
                  t.index())) {
            why.push_back(obs::RemarkReason::kWitnessDiffers);
          }
        }
      }
      // "Insert at n" = initialize before n's statement runs. The start
      // node has no incoming edges, and inserting *before* a ParEnd would
      // pull the initialization inside the synchronization, so those two
      // anchor on each outgoing edge instead (edge-wise placement keeps the
      // node's branch structure intact for path pairing).
      if (edge_wise) {
        avector<EdgeId> outgoing = out.node(n).out_edges;
        for (EdgeId e : outgoing) {
          NodeId init = out.new_assign(edge_region(out, e), motion.temp,
                                       Rhs(motion.term_value));
          wire_on_edge(out, e, init);
          motion.insert_nodes.push_back(init);
          PARCM_OBS_REMARK(obs::Remark{
              obs::RemarkKind::kInserted, "", n.value(),
              static_cast<std::int64_t>(t.index()),
              term_str,
              "initialize " + out.var_name(motion.temp) +
                  " on the outgoing edge (node n" +
                  std::to_string(init.value()) + ")",
              why, ""});
        }
      } else {
        NodeId init = out.new_assign(out.node(n).region, motion.temp,
                                     Rhs(motion.term_value));
        out.splice_before(init, n);
        motion.insert_nodes.push_back(init);
        PARCM_OBS_REMARK(obs::Remark{
            obs::RemarkKind::kInserted, "", n.value(),
            static_cast<std::int64_t>(t.index()),
            term_str,
            "initialize " + out.var_name(motion.temp) +
                " immediately before this node (node n" +
                std::to_string(init.value()) + ")",
            why, ""});
      }
    }

    for (NodeId n : analyzed) {
      if (!res.predicates.replace[n.index()].test(t.index())) continue;
      PARCM_CHECK(out.node(n).kind == NodeKind::kAssign,
                  "replacement at a non-assignment");
      out.node(n).rhs = Rhs(Operand::var(motion.temp));
      motion.replaced.push_back(n);
      if (PARCM_OBS_REMARKS_ON()) {
        int mask =
            (res.safety.upsafe[n.index()].test(t.index()) ? 1 : 0) |
            (res.safety.dnsafe[n.index()].test(t.index()) ? 2 : 0);
        replace_batch.push_back(obs::Remark{
            obs::RemarkKind::kReplaced, "", n.value(),
            static_cast<std::int64_t>(t.index()),
            term_str, replace_msg, replace_why[mask], ""});
      }
    }
    if (!replace_batch.empty()) {
      obs::remarks().emit_batch(replace_batch);
    }

    if (config.variant == SafetyVariant::kRefined && config.privatize_temps &&
        out.num_par_stmts() > 0 &&
        (!motion.insert_nodes.empty() || !motion.replaced.empty())) {
      privatize_term(out, preds, res.safety, motion);
    }

    if (!motion.insert_nodes.empty() || !motion.replaced.empty()) {
      res.terms.push_back(std::move(motion));
    }
  }

  PARCM_OBS_COUNT("motion.runs", 1);
  PARCM_OBS_COUNT("motion.synthetic_nodes", res.synthetic_nodes);
  PARCM_OBS_COUNT("motion.terms_considered", terms.size());
  PARCM_OBS_COUNT("motion.terms_moved", res.terms.size());
  PARCM_OBS_COUNT("motion.insertions", res.num_insertions());
  PARCM_OBS_COUNT("motion.replacements", res.num_replacements());
  for (const TermMotion& m : res.terms) {
    std::string prefix = "motion.term." + out.var_name(m.temp);
    PARCM_OBS_COUNT(prefix + ".insertions", m.insert_nodes.size());
    PARCM_OBS_COUNT(prefix + ".replacements", m.replaced.size());
    PARCM_OBS_COUNT(prefix + ".bridges", m.bridge_nodes.size());
  }
  return res;
}

}  // namespace parcm
