// Busy code motion (Knoop/Rüthing/Steffen PLDI'92) — the sequential
// as-early-as-possible placement the paper builds on. On a sequential graph
// the naive and refined variants coincide; busy_code_motion checks the
// graph is parallel-free so benchmarks and tests can use it as the honest
// sequential baseline.
#pragma once

#include "motion/code_motion.hpp"

namespace parcm {

// Requires g.num_par_stmts() == 0.
MotionResult busy_code_motion(const Graph& g);

}  // namespace parcm
