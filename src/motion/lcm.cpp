#include "motion/lcm.hpp"

#include <deque>

#include "analyses/cache.hpp"
#include "ir/printer.hpp"
#include "ir/regions.hpp"
#include "ir/transform_utils.hpp"
#include "obs/remarks.hpp"
#include "support/diagnostics.hpp"

namespace parcm {

LcmInternals compute_lcm_internals(const Graph& g, const TermTable& terms,
                                   const LocalPredicates& preds,
                                   const MotionPredicates& mp) {
  std::size_t k = terms.size();
  LcmInternals res;

  // Delayability (forward, must): an initialization placed at the earliest
  // points can be postponed to n's entry iff on *every* path an earliest
  // point has been passed and no original computation consumed the value
  // since. delay_out kills at computations (they are the consumers).
  res.delay_in.assign(g.num_nodes(), BitVector(k, true));
  std::vector<BitVector> delay_out(g.num_nodes(), BitVector(k, true));
  res.delay_in[g.start().index()] = mp.earliest[g.start().index()];
  {
    BitVector out = res.delay_in[g.start().index()];
    out.and_not(preds.comp(g.start()));
    delay_out[g.start().index()] = std::move(out);
  }
  std::deque<NodeId> worklist;
  std::vector<char> queued(g.num_nodes(), 0);
  for (NodeId n : g.all_nodes()) {
    if (n == g.start()) continue;
    worklist.push_back(n);
    queued[n.index()] = 1;
  }
  while (!worklist.empty()) {
    NodeId n = worklist.front();
    worklist.pop_front();
    queued[n.index()] = 0;
    BitVector in(k, true);
    for (NodeId m : g.preds(n)) in &= delay_out[m.index()];
    in |= mp.earliest[n.index()];
    BitVector out = in;
    out.and_not(preds.comp(n));
    if (in == res.delay_in[n.index()] && out == delay_out[n.index()]) {
      continue;
    }
    res.delay_in[n.index()] = std::move(in);
    delay_out[n.index()] = std::move(out);
    for (NodeId m : g.succs(n)) {
      if (m != g.start() && !queued[m.index()]) {
        queued[m.index()] = 1;
        worklist.push_back(m);
      }
    }
  }

  // Latest: the frontier of delayability — delayed here, but not delayable
  // into every successor (or consumed right here).
  res.latest.assign(g.num_nodes(), BitVector(k));
  for (NodeId n : g.all_nodes()) {
    BitVector all_succs_delayed(k, true);
    for (NodeId m : g.succs(n)) all_succs_delayed &= res.delay_in[m.index()];
    BitVector frontier = all_succs_delayed;
    frontier.invert();
    frontier |= preds.comp(n);
    res.latest[n.index()] = res.delay_in[n.index()] & frontier;
  }

  // Usefulness (backward, may): some later computation consumes the value
  // initialized at n — i.e. a path from n reaches a Comp node that is not
  // itself a latest point, without first crossing another latest point.
  res.useful.assign(g.num_nodes(), BitVector(k));
  for (NodeId n : g.all_nodes()) {
    worklist.push_back(n);
    queued[n.index()] = 1;
  }
  while (!worklist.empty()) {
    NodeId n = worklist.front();
    worklist.pop_front();
    queued[n.index()] = 0;
    BitVector out(k);
    for (NodeId m : g.succs(n)) {
      // Consumers below a later latest point belong to that insertion.
      BitVector not_latest = res.latest[m.index()];
      not_latest.invert();
      out |= (preds.comp(m) | res.useful[m.index()]) & not_latest;
    }
    if (out == res.useful[n.index()]) continue;
    res.useful[n.index()] = std::move(out);
    for (NodeId m : g.preds(n)) {
      if (!queued[m.index()]) {
        queued[m.index()] = 1;
        worklist.push_back(m);
      }
    }
  }
  return res;
}

MotionResult lazy_code_motion(const Graph& g) {
  PARCM_CHECK(g.num_par_stmts() == 0,
              "lazy_code_motion is sequential-only; the parallel "
              "transformation is parallel_code_motion");

  PARCM_OBS_REMARK_PASS("lcm");
  MotionResult res{g, 0, {}, {}, {}};
  Graph& out = res.graph;
  res.synthetic_nodes = split_join_edges(out);

  std::shared_ptr<const AnalysisBundle> analyses =
      analysis_cache().acquire(out);
  const TermTable& terms = analyses->terms;
  const LocalPredicates& preds = analyses->preds;
  res.safety = compute_safety(out, preds, SafetyVariant::kRefined);
  res.predicates = compute_motion_predicates(out, preds, res.safety);
  LcmInternals lcm = compute_lcm_internals(out, terms, preds, res.predicates);

  avector<NodeId> analyzed(out.all_nodes().begin(), out.all_nodes().end());
  for (TermId t : terms.all()) {
    TermMotion motion;
    motion.term = t;
    motion.term_value = terms.term(t);
    motion.temp = out.intern_var(fresh_temp_name(out, motion.term_value));

    for (NodeId n : analyzed) {
      std::size_t ti = t.index();
      bool latest = lcm.latest[n.index()].test(ti);
      bool useful = lcm.useful[n.index()].test(ti);
      bool comp = preds.comp(n, t);
      // Isolation: a latest point whose temporary no later computation
      // consumes serves only its own replacement — keep the original.
      bool insert = latest && (useful || !comp);
      bool replace =
          comp && res.predicates.replace[n.index()].test(ti) &&
          !(latest && !useful);
      if (latest && !useful && comp) {
        // Isolation: the latest point coincides with its only consumer, so
        // hoisting would trade the computation for an equal-cost copy.
        PARCM_OBS_REMARK(obs::Remark{
            obs::RemarkKind::kSkipped, "", n.value(),
            static_cast<std::int64_t>(ti),
            term_to_string(out, motion.term_value),
            "latest point serves only its own computation: original kept",
            {obs::RemarkReason::kLatest, obs::RemarkReason::kIsolated},
            ""});
      }
      if (insert) {
        motion.insert_points.push_back(n);
        if (n == out.start()) {
          avector<EdgeId> outgoing = out.node(n).out_edges;
          for (EdgeId e : outgoing) {
            NodeId init = out.new_assign(edge_region(out, e), motion.temp,
                                         Rhs(motion.term_value));
            wire_on_edge(out, e, init);
            motion.insert_nodes.push_back(init);
            PARCM_OBS_REMARK(obs::Remark{
                obs::RemarkKind::kInserted, "", n.value(),
                static_cast<std::int64_t>(ti),
                term_to_string(out, motion.term_value),
                "initialize " + out.var_name(motion.temp) +
                    " on the outgoing edge (node n" +
                    std::to_string(init.value()) + ")",
                {obs::RemarkReason::kLatest,
                 obs::RemarkReason::kEdgePlacement},
                ""});
          }
        } else {
          NodeId init = out.new_assign(out.node(n).region, motion.temp,
                                       Rhs(motion.term_value));
          out.splice_before(init, n);
          motion.insert_nodes.push_back(init);
          PARCM_OBS_REMARK(obs::Remark{
              obs::RemarkKind::kInserted, "", n.value(),
              static_cast<std::int64_t>(ti),
              term_to_string(out, motion.term_value),
              "initialize " + out.var_name(motion.temp) +
                  " immediately before this node (node n" +
                  std::to_string(init.value()) + ")",
              {obs::RemarkReason::kLatest},
              ""});
        }
      }
      if (replace) {
        out.node(n).rhs = Rhs(Operand::var(motion.temp));
        motion.replaced.push_back(n);
        PARCM_OBS_REMARK(obs::Remark{
            obs::RemarkKind::kReplaced, "", n.value(),
            static_cast<std::int64_t>(ti),
            term_to_string(out, motion.term_value),
            "computation replaced by the temporary " +
                out.var_name(motion.temp),
            {obs::RemarkReason::kComputes},
            ""});
      }
    }
    if (!motion.insert_nodes.empty() || !motion.replaced.empty()) {
      res.terms.push_back(std::move(motion));
    }
  }
  return res;
}

}  // namespace parcm
