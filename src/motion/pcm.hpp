// The paper's transformation (Sec. 3.3.4) and its refuted naive counterpart
// (the conjecture of [17], kept as the pitfall baseline for Figures 2-7).
#pragma once

#include "motion/code_motion.hpp"

namespace parcm {

// Parallel busy code motion with up-safe_par / down-safe_par and the
// implicit recursive-assignment decomposition: admissible (safe + correct)
// and executionally at-least-as-good on every parallel program path.
MotionResult parallel_code_motion(const Graph& g);

// The straightforward as-early-as-possible transfer: computationally
// optimal on interleavings but potentially executionally worse (Fig. 2) and
// semantically wrong in the presence of recursive assignments or
// interference (Figs. 3, 4, 7). For demonstration and benchmarking only.
MotionResult naive_parallel_code_motion(const Graph& g);

}  // namespace parcm
