// Dead assignment elimination for explicitly parallel programs.
//
// The paper's conclusions list the classical bitvector-based optimizations
// its framework carries to the parallel setting — code motion, strength
// reduction, partial dead-code elimination, assignment motion. This module
// implements the dead-code side: an assignment x := e is eliminated when x
// is dead after it, i.e. no continuation of any interleaving reads x before
// it is overwritten (and x is not observable at the end).
//
// Liveness is a *may* (union) problem, so unlike the must-analyses of the
// code motion pipeline it needs no hierarchical synchronization: the union
// over interleavings equals the union over graph paths, plus interference —
// a read of x anywhere in a sibling component may execute after any point
// of the component, which conservatively makes x live throughout. The
// sibling-read masks are aggregated per component exactly like NonDest.
//
// Elimination cascades (removing a dead assignment may kill the last use
// feeding another one — "faint" variables), so the transformation iterates
// to a fixpoint.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/graph.hpp"
#include "support/bitvector.hpp"

namespace parcm {

struct DceOptions {
  // Variables observable after e*; they stay live at the end. Empty means
  // every variable of the program is observable (the conservative default —
  // only assignments that are definitely overwritten die).
  std::vector<std::string> observed;
};

struct DceResult {
  Graph graph;
  // Assignment nodes turned into skips, per elimination round.
  std::vector<NodeId> eliminated;
  std::size_t rounds = 0;
};

DceResult eliminate_dead_assignments(const Graph& g,
                                     const DceOptions& options = {});

// The liveness analysis behind it: one bit per variable.
struct ParallelLiveness {
  // live at entry / exit of each node (graph paths + interference).
  std::vector<BitVector> live_in;
  std::vector<BitVector> live_out;
};

ParallelLiveness compute_parallel_liveness(const Graph& g,
                                           const BitVector& observed);

}  // namespace parcm
