// Sequential lazy code motion (Knoop/Rüthing/Steffen, PLDI'92 — the
// paper's reference [12], the transformation whose busy counterpart PCM
// generalizes).
//
// LCM refines BCM: instead of initializing at the *earliest* down-safe
// points it delays initializations as far as possible without losing any
// reuse (latest placement) and drops insertion/replacement pairs whose
// temporary would serve only the computation right at the insertion point
// (isolation). The result is computationally identical to BCM on every
// path but with minimal temporary lifetimes — the register-pressure
// argument for laziness.
//
// LCM here is the sequential baseline/extension; the parallel
// transformation of the paper stays busy (as published), with the anchor
// sinking of code_motion.cpp providing the slice of laziness that the
// executional-improvement guarantee requires.
#pragma once

#include "motion/code_motion.hpp"

namespace parcm {

struct LcmInternals {
  // Per node, one bit per term (on the join-split graph).
  std::vector<BitVector> delay_in;
  std::vector<BitVector> latest;
  std::vector<BitVector> useful;  // a later consumer exists for the temp
};

// Requires g.num_par_stmts() == 0.
MotionResult lazy_code_motion(const Graph& g);

// The analyses behind LCM, for tests (computed on a copy with split joins).
LcmInternals compute_lcm_internals(const Graph& split_graph,
                                   const TermTable& terms,
                                   const LocalPredicates& preds,
                                   const MotionPredicates& mp);

}  // namespace parcm
