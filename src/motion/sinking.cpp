#include "motion/sinking.hpp"

#include <deque>

#include "ir/printer.hpp"
#include "ir/transform_utils.hpp"
#include "motion/dce.hpp"
#include "obs/metrics.hpp"
#include "obs/remarks.hpp"
#include "support/bitvector.hpp"
#include "support/diagnostics.hpp"

namespace parcm {

namespace {

// Variables with a potentially-parallel (write, access) pair.
BitVector contested_vars(const Graph& g) {
  std::size_t k = g.num_vars();
  std::vector<BitVector> access(g.num_regions(), BitVector(k));
  std::vector<BitVector> write(g.num_regions(), BitVector(k));
  for (std::size_t ri = 0; ri < g.num_regions(); ++ri) {
    RegionId r(static_cast<RegionId::underlying>(ri));
    for (NodeId n : g.nodes_in_region_recursive(r)) {
      const Node& node = g.node(n);
      auto touch = [&](const Rhs& rhs) {
        if (rhs.is_term()) {
          if (rhs.term().lhs.is_var()) access[ri].set(rhs.term().lhs.var_id().index());
          if (rhs.term().rhs.is_var()) access[ri].set(rhs.term().rhs.var_id().index());
        } else if (rhs.trivial().is_var()) {
          access[ri].set(rhs.trivial().var_id().index());
        }
      };
      if (node.kind == NodeKind::kAssign) {
        access[ri].set(node.lhs.index());
        write[ri].set(node.lhs.index());
        touch(node.rhs);
      } else if (node.kind == NodeKind::kTest) {
        touch(*node.cond);
      }
    }
  }
  BitVector contested(k);
  for (std::size_t si = 0; si < g.num_par_stmts(); ++si) {
    const ParStmt& s =
        g.par_stmt(ParStmtId(static_cast<ParStmtId::underlying>(si)));
    for (RegionId a : s.components) {
      for (RegionId b : s.components) {
        if (a == b) continue;
        contested |= write[a.index()] & access[b.index()];
      }
    }
  }
  return contested;
}

class Sinker {
 public:
  explicit Sinker(Graph& g) : g_(g) {}

  // Attempts to sink assignment node a; returns true if applied.
  bool try_sink(NodeId a, std::size_t* placed, std::size_t* dropped) {
    const Node& node = g_.node(a);
    PARCM_CHECK(node.kind == NodeKind::kAssign, "sinking a non-assignment");
    x_ = node.lhs;
    rhs_ = node.rhs;

    // Clean(n): the assignment commutes with n and may move past it.
    auto clean = [&](NodeId n) {
      const Node& m = g_.node(n);
      if (m.kind == NodeKind::kParBegin || m.kind == NodeKind::kParEnd ||
          m.kind == NodeKind::kBarrier || m.kind == NodeKind::kEnd) {
        return false;
      }
      if (m.kind == NodeKind::kAssign) {
        if (m.lhs == x_) return false;            // redefinition
        if (m.rhs.uses_var(x_)) return false;     // use of x
        if (rhs_.uses_var(m.lhs)) return false;   // operand modified
        return true;
      }
      if (m.kind == NodeKind::kTest) return !m.cond->uses_var(x_);
      return true;  // skip / synthetic / start
    };

    // D(n): greatest fixpoint over nodes reachable from a.
    std::vector<char> reachable(g_.num_nodes(), 0);
    {
      std::vector<NodeId> stack{a};
      reachable[a.index()] = 1;
      while (!stack.empty()) {
        NodeId n = stack.back();
        stack.pop_back();
        for (NodeId m : g_.succs(n)) {
          if (!reachable[m.index()]) {
            reachable[m.index()] = 1;
            stack.push_back(m);
          }
        }
      }
    }
    std::vector<char> d(g_.num_nodes(), 0);
    for (NodeId n : g_.all_nodes()) {
      d[n.index()] = reachable[n.index()] && n != a;
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (NodeId n : g_.all_nodes()) {
        if (!d[n.index()]) continue;
        bool v = true;
        for (NodeId m : g_.preds(n)) {
          bool ok = m == a || (d[m.index()] && clean(m));
          v = v && ok;
        }
        if (!v) {
          d[n.index()] = 0;
          changed = true;
        }
      }
    }

    // Placements: (a) before blocked D-nodes, (b) on edges leaving the
    // D-region from clean D-nodes (or from a itself).
    std::vector<NodeId> before_nodes;
    std::vector<EdgeId> on_edges;
    for (NodeId n : g_.all_nodes()) {
      if (d[n.index()] && !clean(n)) before_nodes.push_back(n);
      bool source_ok = n == a || (d[n.index()] && clean(n));
      if (!source_ok) continue;
      for (EdgeId e : g_.node(n).out_edges) {
        NodeId t = g_.edge(e).to;
        if (!d[t.index()]) on_edges.push_back(e);
      }
    }

    // Liveness decides which copies are dead (every variable observable:
    // only definite overwrites drop).
    BitVector observed(g_.num_vars(), true);
    ParallelLiveness live = compute_parallel_liveness(g_, observed);
    std::size_t new_placed = 0, new_dropped = 0;
    std::vector<NodeId> live_before;
    std::vector<EdgeId> live_edges;
    for (NodeId n : before_nodes) {
      if (live.live_in[n.index()].test(x_.index())) {
        live_before.push_back(n);
        ++new_placed;
      } else {
        ++new_dropped;
      }
    }
    for (EdgeId e : on_edges) {
      NodeId t = g_.edge(e).to;
      if (live.live_in[t.index()].test(x_.index())) {
        live_edges.push_back(e);
        ++new_placed;
      } else {
        ++new_dropped;
      }
    }

    // Profitability: only transform when some copy is dropped; otherwise
    // the program merely churns.
    if (new_dropped == 0) return false;

    for (NodeId n : live_before) {
      NodeId copy = g_.new_assign(g_.node(n).region, x_, rhs_);
      g_.splice_before(copy, n);
    }
    for (EdgeId e : live_edges) {
      NodeId copy = g_.new_assign(edge_region(g_, e), x_, rhs_);
      wire_on_edge(g_, e, copy);
    }
    // The original becomes a skip.
    Node& orig = g_.node(a);
    orig.kind = NodeKind::kSkip;
    orig.lhs = VarId();
    orig.rhs = Rhs();
    *placed += new_placed;
    *dropped += new_dropped;
    return true;
  }

 private:
  Graph& g_;
  VarId x_;
  Rhs rhs_;
};

}  // namespace

SinkingResult sink_partially_dead_assignments(const Graph& g) {
  PARCM_OBS_TIMER("motion.sinking");
  PARCM_OBS_REMARK_PASS("sinking");
  SinkingResult res{g, {}, 0, 0};
  Graph& out = res.graph;

  BitVector contested = contested_vars(out);
  std::vector<NodeId> candidates;
  for (NodeId n : out.all_nodes()) {
    const Node& node = out.node(n);
    if (node.kind != NodeKind::kAssign) continue;
    bool ok = !contested.test(node.lhs.index());
    auto check = [&](const Operand& op) {
      if (op.is_var()) ok = ok && !contested.test(op.var_id().index());
    };
    if (node.rhs.is_term()) {
      check(node.rhs.term().lhs);
      check(node.rhs.term().rhs);
    } else {
      check(node.rhs.trivial());
    }
    if (ok) {
      candidates.push_back(n);
    } else {
      PARCM_OBS_REMARK(obs::Remark{
          obs::RemarkKind::kBlocked, "", n.value(), -1, "",
          "assignment touches a variable with a potentially-parallel "
          "(write, access) pair: moving it could change an interleaving",
          {obs::RemarkReason::kContested},
          statement_to_string(out, n)});
    }
  }

  Sinker sinker(out);
  for (NodeId a : candidates) {
    if (out.node(a).kind != NodeKind::kAssign) continue;  // already sunk
    std::size_t placed_before = res.copies_placed;
    std::size_t dropped_before = res.copies_dropped;
    if (sinker.try_sink(a, &res.copies_placed, &res.copies_dropped)) {
      res.sunk.push_back(a);
      PARCM_OBS_REMARK(obs::Remark{
          obs::RemarkKind::kReplaced, "", a.value(), -1, "",
          "partially dead assignment sunk: " +
              std::to_string(res.copies_placed - placed_before) +
              " cop(ies) placed, " +
              std::to_string(res.copies_dropped - dropped_before) +
              " dropped",
          {obs::RemarkReason::kPartiallyDead},
          ""});
    } else if (PARCM_OBS_REMARKS_ON()) {
      PARCM_OBS_REMARK(obs::Remark{
          obs::RemarkKind::kSkipped, "", a.value(), -1, "",
          "assignment is live on every continuation: sinking would only "
          "churn the program",
          {obs::RemarkReason::kUnprofitable},
          statement_to_string(out, a)});
    }
  }
  PARCM_OBS_COUNT("motion.sinking.runs", 1);
  PARCM_OBS_COUNT("motion.sinking.sunk", res.sunk.size());
  PARCM_OBS_COUNT("motion.sinking.copies_placed", res.copies_placed);
  PARCM_OBS_COUNT("motion.sinking.copies_dropped", res.copies_dropped);
  return res;
}

}  // namespace parcm
