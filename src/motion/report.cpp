#include "motion/report.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "ir/printer.hpp"
#include "ir/terms.hpp"

namespace parcm {

std::vector<obs::Remark> motion_remarks(const MotionResult& result) {
  const Graph& g = result.graph;
  std::vector<obs::Remark> out;
  for (const TermMotion& tm : result.terms) {
    std::string term = term_to_string(g, tm.term_value);
    auto index = static_cast<std::int64_t>(tm.term.index());
    for (NodeId n : tm.insert_points) {
      out.push_back(obs::Remark{
          obs::RemarkKind::kInserted, "motion", n.value(), index, term,
          "initialize " + g.var_name(tm.temp),
          {obs::RemarkReason::kEarliest, obs::RemarkReason::kDownSafe},
          statement_to_string(g, n)});
    }
    for (NodeId n : tm.replaced) {
      out.push_back(obs::Remark{
          obs::RemarkKind::kReplaced, "motion", n.value(), index, term,
          "computation replaced by the temporary " + g.var_name(tm.temp),
          {obs::RemarkReason::kComputes},
          statement_to_string(g, n)});
    }
    for (NodeId n : tm.bridge_nodes) {
      out.push_back(obs::Remark{
          obs::RemarkKind::kInserted, "motion", n.value(), index, term,
          "bridge copy for a component-private temporary",
          {obs::RemarkReason::kBridgeCopy, obs::RemarkReason::kPrivatized},
          statement_to_string(g, n)});
    }
  }
  return out;
}

void resolve_remark_terms(const Graph& g, std::vector<obs::Remark>& remarks) {
  TermTable terms(g);
  for (obs::Remark& r : remarks) {
    if (!r.term.empty() || r.term_index < 0) continue;
    auto i = static_cast<std::size_t>(r.term_index);
    if (i >= terms.size()) continue;
    TermId t(static_cast<TermId::underlying>(i));
    r.term = term_to_string(g, terms.term(t));
  }
}

std::string motion_report(const MotionResult& result) {
  const Graph& g = result.graph;
  std::vector<obs::Remark> remarks = motion_remarks(result);
  std::ostringstream os;
  os << "code motion report ("
     << (result.safety.variant == SafetyVariant::kRefined ? "refined/PCM"
                                                          : "naive")
     << ")\n";
  os << "  synthetic join nodes: " << result.synthetic_nodes << "\n";
  os << "  terms moved: " << result.terms.size() << ", insertions: "
     << result.num_insertions() << ", replacements: "
     << result.num_replacements() << "\n";
  auto has_reason = [](const obs::Remark& r, obs::RemarkReason reason) {
    return std::find(r.reasons.begin(), r.reasons.end(), reason) !=
           r.reasons.end();
  };
  for (const TermMotion& tm : result.terms) {
    auto index = static_cast<std::int64_t>(tm.term.index());
    os << "  term `" << term_to_string(g, tm.term_value) << "` -> temp "
       << g.var_name(tm.temp) << "\n";
    os << "    insert at:";
    for (const obs::Remark& r : remarks) {
      if (r.term_index != index || r.kind != obs::RemarkKind::kInserted ||
          has_reason(r, obs::RemarkReason::kBridgeCopy)) {
        continue;
      }
      os << " n" << r.node << "(" << r.detail << ")";
    }
    os << "\n    replace at:";
    for (const obs::Remark& r : remarks) {
      if (r.term_index != index || r.kind != obs::RemarkKind::kReplaced) {
        continue;
      }
      os << " n" << r.node;
    }
    os << "\n";
    if (!tm.bridge_nodes.empty()) {
      os << "    bridge copies:";
      for (NodeId n : tm.bridge_nodes) os << " n" << n.value();
      os << "\n";
    }
  }
  return os.str();
}

std::string safety_table(const Graph& g, const MotionResult& result,
                         TermId term) {
  std::ostringstream os;
  std::size_t t = term.index();
  os << "node  up dn safe early repl  statement\n";
  for (NodeId n : g.all_nodes()) {
    if (n.index() >= result.safety.upsafe.size()) break;  // inserted nodes
    auto flag = [&](const std::vector<BitVector>& v) {
      return v[n.index()].test(t) ? '1' : '.';
    };
    os << "n" << n.value() << (n.value() < 10 ? "    " : "   ")
       << flag(result.safety.upsafe) << "  " << flag(result.safety.dnsafe)
       << "  " << flag(result.safety.safe) << "    "
       << flag(result.predicates.earliest) << "     "
       << flag(result.predicates.replace) << "    "
       << statement_to_string(g, n) << "\n";
  }
  return os.str();
}

std::string motion_dot(const MotionResult& result, TermId term,
                       const std::vector<obs::Remark>& remarks,
                       const std::string& title) {
  const Graph& g = result.graph;
  std::vector<DotNodeAnnotation> ann(g.num_nodes());
  std::size_t t = term.index();
  for (NodeId n : g.all_nodes()) {
    DotNodeAnnotation& a = ann[n.index()];
    if (n.index() < result.safety.upsafe.size()) {
      std::string facts;
      auto add = [&](const std::vector<BitVector>& v, const char* name) {
        if (v[n.index()].test(t)) {
          if (!facts.empty()) facts += " ";
          facts += name;
        }
      };
      add(result.safety.upsafe, "U-Safe");
      add(result.safety.dnsafe, "D-Safe");
      add(result.predicates.earliest, "Earliest");
      add(result.predicates.replace, "Repl");
      if (!facts.empty()) a.facts.push_back(facts);
    }
    for (const obs::Remark& r : remarks) {
      if (r.node != static_cast<std::int64_t>(n.value())) continue;
      if (r.term_index >= 0 &&
          r.term_index != static_cast<std::int64_t>(t)) {
        continue;
      }
      std::string badge = remark_kind_name(r.kind);
      for (obs::RemarkReason reason : r.reasons) {
        if (const char* p = remark_reason_pitfall(reason)) {
          badge += std::string(" ") + p;
        }
      }
      a.badges.push_back(std::move(badge));
    }
  }
  // Tint the nodes the transformation materialized or rewrote.
  std::set<NodeId> inserted, replaced;
  for (const TermMotion& tm : result.terms) {
    if (tm.term != term) continue;
    inserted.insert(tm.insert_nodes.begin(), tm.insert_nodes.end());
    inserted.insert(tm.bridge_nodes.begin(), tm.bridge_nodes.end());
    replaced.insert(tm.replaced.begin(), tm.replaced.end());
  }
  for (NodeId n : inserted) ann[n.index()].fill = "palegreen";
  for (NodeId n : replaced) ann[n.index()].fill = "lightgoldenrod";
  DotOptions options;
  options.title = title;
  return annotated_dot(g, ann, options);
}

}  // namespace parcm
