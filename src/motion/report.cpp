#include "motion/report.hpp"

#include <sstream>

#include "ir/printer.hpp"

namespace parcm {

std::string motion_report(const MotionResult& result) {
  const Graph& g = result.graph;
  std::ostringstream os;
  os << "code motion report ("
     << (result.safety.variant == SafetyVariant::kRefined ? "refined/PCM"
                                                          : "naive")
     << ")\n";
  os << "  synthetic join nodes: " << result.synthetic_nodes << "\n";
  os << "  terms moved: " << result.terms.size() << ", insertions: "
     << result.num_insertions() << ", replacements: "
     << result.num_replacements() << "\n";
  for (const TermMotion& tm : result.terms) {
    os << "  term `" << term_to_string(g, tm.term_value) << "` -> temp "
       << g.var_name(tm.temp) << "\n";
    os << "    insert at:";
    for (NodeId n : tm.insert_points) {
      os << " n" << n.value() << "(" << statement_to_string(g, n) << ")";
    }
    os << "\n    replace at:";
    for (NodeId n : tm.replaced) os << " n" << n.value();
    os << "\n";
  }
  return os.str();
}

std::string safety_table(const Graph& g, const MotionResult& result,
                         TermId term) {
  std::ostringstream os;
  std::size_t t = term.index();
  os << "node  up dn safe early repl  statement\n";
  for (NodeId n : g.all_nodes()) {
    if (n.index() >= result.safety.upsafe.size()) break;  // inserted nodes
    auto flag = [&](const std::vector<BitVector>& v) {
      return v[n.index()].test(t) ? '1' : '.';
    };
    os << "n" << n.value() << (n.value() < 10 ? "    " : "   ")
       << flag(result.safety.upsafe) << "  " << flag(result.safety.dnsafe)
       << "  " << flag(result.safety.safe) << "    "
       << flag(result.predicates.earliest) << "     "
       << flag(result.predicates.replace) << "    "
       << statement_to_string(g, n) << "\n";
  }
  return os.str();
}

}  // namespace parcm
