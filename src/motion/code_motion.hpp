// The generic busy-code-motion transformation machinery shared by BCM
// (sequential), the naive parallel transfer, and PCM (the paper's
// algorithm). The pipeline (paper Sec. 3):
//
//   1. split join edges (synthetic nodes; ParEnd targets exempt),
//   2. compute up-/down-safety in the selected variant,
//   3. insert `h_t := t` at every Earliest point,
//   4. replace every original computation at a Safe point by `h_t`.
#pragma once

#include <string>
#include <vector>

#include "analyses/earliest.hpp"
#include "ir/graph.hpp"
#include "ir/terms.hpp"

namespace parcm {

struct CodeMotionConfig {
  // kRefined: the paper's PCM (up-safe_par / down-safe_par, implicit
  // recursive-assignment split). kNaive: the refuted straightforward
  // transfer of the sequential as-early-as-possible strategy.
  SafetyVariant variant = SafetyVariant::kRefined;

  // Ablation switches for the three additions this implementation needs on
  // top of the paper's literal formulas (each OFF reproduces a concrete
  // failure; see tests/test_ablation.cpp and DESIGN.md Sec. 4):
  //
  // Anchor sinking: without it, interference-restarted down-safe regions
  // make some paths initialize the temporary twice (executional
  // regression).
  bool sink_anchors = true;
  // Component-private temporaries: without them, sibling components race on
  // the shared temporary whenever an operand modifier is present
  // (sequential-consistency violation on Fig. 4).
  bool privatize_temps = true;
  // ParEnd export rule (Fig. 7): without it, a down-safety chain crossing
  // the join suppresses the post-join initialization although no component
  // exports the value (sequential-consistency violation on Fig. 6).
  bool parend_export_rule = true;
};

struct TermMotion {
  TermId term;
  Term term_value;
  VarId temp;
  std::vector<NodeId> insert_points;  // anchors (ids in the result graph)
  std::vector<NodeId> insert_nodes;   // created `h := t` assignments
  std::vector<NodeId> replaced;       // originals rewritten to `x := h`
  // Privatization (refined variant only): inside a parallel statement that
  // modifies an operand of the term, sibling components must not race on
  // the shared temporary — each component gets a private temp, wired up by
  // zero-cost trivial copies at the component entry (h_C := h) and, when
  // the statement's exit is up-safe_par via its (unique) operand-modifying
  // component, after the ParEnd (h := h_C).
  std::vector<std::pair<RegionId, VarId>> private_temps;
  std::vector<NodeId> bridge_nodes;
};

struct MotionResult {
  Graph graph;
  std::size_t synthetic_nodes = 0;  // from join-edge splitting
  std::vector<TermMotion> terms;
  // The analyses behind the decisions (on the split graph), for reports.
  SafetyInfo safety;
  MotionPredicates predicates;

  std::size_t num_insertions() const;
  std::size_t num_replacements() const;
};

// Applies busy code motion to a copy of g. Node ids of g remain valid in
// the result graph (new nodes are only appended).
MotionResult run_code_motion(const Graph& g, const CodeMotionConfig& config);

// Fresh temporary name for a term: "h_<lhs>_<op>_<rhs>", uniqued against the
// graph's symbol table.
std::string fresh_temp_name(const Graph& g, const Term& t);

}  // namespace parcm
