// Recursive-descent parser for the parcm language.
//
// Grammar:
//   program := stmt*
//   stmt    := ident ":=" expr label? ";"
//            | "skip" label? ";"
//            | "barrier" label? ";"   (inside a par component only)
//            | "if" "(" cond ")" block ("else" block)?
//            | "while" "(" cond ")" block
//            | "par" block ("and" block)+
//            | "choose" block ("or" block)+
//   block   := "{" stmt* "}"
//   cond    := "*" | expr
//   expr    := operand (binop operand)?
//   operand := ident | number
//   label   := "@" ident
//   binop   := "+" | "-" | "*" | "/" | "<" | "<=" | ">" | ">=" | "==" | "!="
#pragma once

#include <optional>
#include <string_view>

#include "lang/ast.hpp"
#include "support/diagnostics.hpp"

namespace parcm::lang {

// Returns the program, or nullopt with errors in sink.
std::optional<Program> parse(std::string_view source, DiagnosticSink& sink);

}  // namespace parcm::lang
