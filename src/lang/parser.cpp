#include "lang/parser.hpp"

#include "lang/lexer.hpp"

namespace parcm::lang {

namespace {

class Parser {
 public:
  Parser(std::vector<Token> tokens, DiagnosticSink& sink)
      : tokens_(std::move(tokens)), sink_(sink) {}

  std::optional<Program> parse_program() {
    Program p;
    while (!at(TokKind::kEof) && !failed_) {
      if (auto s = parse_stmt()) p.body.push_back(std::move(*s));
    }
    if (failed_) return std::nullopt;
    return p;
  }

 private:
  const Token& cur() const { return tokens_[pos_]; }
  bool at(TokKind kind) const { return cur().kind == kind; }
  const Token& advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }

  bool expect(TokKind kind) {
    if (at(kind)) {
      advance();
      return true;
    }
    fail(std::string("expected ") + tok_kind_name(kind) + ", found " +
         tok_kind_name(cur().kind));
    return false;
  }

  void fail(const std::string& message) {
    if (!failed_) sink_.error(cur().loc, message);
    failed_ = true;
  }

  std::optional<BinOp> peek_bin_op() const {
    switch (cur().kind) {
      case TokKind::kPlus: return BinOp::kAdd;
      case TokKind::kMinus: return BinOp::kSub;
      case TokKind::kStar: return BinOp::kMul;
      case TokKind::kSlash: return BinOp::kDiv;
      case TokKind::kLt: return BinOp::kLt;
      case TokKind::kLe: return BinOp::kLe;
      case TokKind::kGt: return BinOp::kGt;
      case TokKind::kGe: return BinOp::kGe;
      case TokKind::kEqEq: return BinOp::kEq;
      case TokKind::kNe: return BinOp::kNe;
      default: return std::nullopt;
    }
  }

  std::optional<AOperand> parse_operand() {
    if (at(TokKind::kIdent)) {
      return AOperand::var(advance().text);
    }
    if (at(TokKind::kNumber)) {
      return AOperand::constant(advance().number);
    }
    if (at(TokKind::kMinus)) {
      advance();
      if (!at(TokKind::kNumber)) {
        fail("expected number after unary '-'");
        return std::nullopt;
      }
      return AOperand::constant(-advance().number);
    }
    fail("expected operand (identifier or number)");
    return std::nullopt;
  }

  std::optional<AExpr> parse_expr() {
    auto a = parse_operand();
    if (!a) return std::nullopt;
    AExpr e;
    e.a = std::move(*a);
    if (auto op = peek_bin_op()) {
      advance();
      auto b = parse_operand();
      if (!b) return std::nullopt;
      e.op = op;
      e.b = std::move(*b);
    }
    return e;
  }

  std::optional<ACond> parse_cond() {
    if (!expect(TokKind::kLParen)) return std::nullopt;
    ACond c;
    if (at(TokKind::kStar) && tokens_[pos_ + 1].kind == TokKind::kRParen) {
      advance();
      c.nondet = true;
    } else {
      auto e = parse_expr();
      if (!e) return std::nullopt;
      c.expr = std::move(*e);
    }
    if (!expect(TokKind::kRParen)) return std::nullopt;
    return c;
  }

  std::optional<Block> parse_block() {
    if (!expect(TokKind::kLBrace)) return std::nullopt;
    Block b;
    while (!at(TokKind::kRBrace) && !at(TokKind::kEof) && !failed_) {
      if (auto s = parse_stmt()) b.push_back(std::move(*s));
    }
    if (!expect(TokKind::kRBrace)) return std::nullopt;
    return b;
  }

  std::string parse_optional_label() {
    if (!at(TokKind::kAt)) return {};
    advance();
    if (!at(TokKind::kIdent) && !at(TokKind::kNumber)) {
      fail("expected label name after '@'");
      return {};
    }
    return advance().text;
  }

  std::optional<Stmt> parse_stmt() {
    switch (cur().kind) {
      case TokKind::kKwSkip: {
        advance();
        Stmt s;
        s.kind = StmtKind::kSkip;
        s.label = parse_optional_label();
        if (!expect(TokKind::kSemi)) return std::nullopt;
        return s;
      }
      case TokKind::kKwBarrier: {
        advance();
        Stmt s;
        s.kind = StmtKind::kBarrier;
        s.label = parse_optional_label();
        if (!expect(TokKind::kSemi)) return std::nullopt;
        return s;
      }
      case TokKind::kIdent: {
        Stmt s;
        s.kind = StmtKind::kAssign;
        s.lhs = advance().text;
        if (!expect(TokKind::kAssignOp)) return std::nullopt;
        auto e = parse_expr();
        if (!e) return std::nullopt;
        s.rhs = std::move(*e);
        s.label = parse_optional_label();
        if (!expect(TokKind::kSemi)) return std::nullopt;
        return s;
      }
      case TokKind::kKwIf: {
        advance();
        Stmt s;
        s.kind = StmtKind::kIf;
        auto c = parse_cond();
        if (!c) return std::nullopt;
        s.cond = std::move(*c);
        auto then_b = parse_block();
        if (!then_b) return std::nullopt;
        s.blocks.push_back(std::move(*then_b));
        if (at(TokKind::kKwElse)) {
          advance();
          auto else_b = parse_block();
          if (!else_b) return std::nullopt;
          s.blocks.push_back(std::move(*else_b));
        } else {
          s.blocks.emplace_back();
        }
        return s;
      }
      case TokKind::kKwWhile: {
        advance();
        Stmt s;
        s.kind = StmtKind::kWhile;
        auto c = parse_cond();
        if (!c) return std::nullopt;
        s.cond = std::move(*c);
        auto body = parse_block();
        if (!body) return std::nullopt;
        s.blocks.push_back(std::move(*body));
        return s;
      }
      case TokKind::kKwPar: {
        advance();
        Stmt s;
        s.kind = StmtKind::kPar;
        auto first = parse_block();
        if (!first) return std::nullopt;
        s.blocks.push_back(std::move(*first));
        while (at(TokKind::kKwAnd)) {
          advance();
          auto comp = parse_block();
          if (!comp) return std::nullopt;
          s.blocks.push_back(std::move(*comp));
        }
        if (s.blocks.size() < 2) {
          fail("'par' needs at least two components ('par {..} and {..}')");
          return std::nullopt;
        }
        return s;
      }
      case TokKind::kKwChoose: {
        advance();
        Stmt s;
        s.kind = StmtKind::kChoose;
        auto first = parse_block();
        if (!first) return std::nullopt;
        s.blocks.push_back(std::move(*first));
        while (at(TokKind::kKwOr)) {
          advance();
          auto alt = parse_block();
          if (!alt) return std::nullopt;
          s.blocks.push_back(std::move(*alt));
        }
        if (s.blocks.size() < 2) {
          fail("'choose' needs at least two alternatives");
          return std::nullopt;
        }
        return s;
      }
      default:
        fail(std::string("unexpected ") + tok_kind_name(cur().kind) +
             " at statement start");
        return std::nullopt;
    }
  }

  std::vector<Token> tokens_;
  DiagnosticSink& sink_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace

std::optional<Program> parse(std::string_view source, DiagnosticSink& sink) {
  std::vector<Token> tokens = lex(source, sink);
  if (!sink.ok()) return std::nullopt;
  Parser parser(std::move(tokens), sink);
  return parser.parse_program();
}

}  // namespace parcm::lang
