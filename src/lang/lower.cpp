#include "lang/lower.hpp"

#include "ir/builder.hpp"
#include "lang/parser.hpp"

namespace parcm::lang {

namespace {

class Lowerer {
 public:
  explicit Lowerer(const Program& program) : program_(program) {}

  Graph run() {
    lower_block(program_.body);
    return builder_.finish();
  }

 private:
  Operand lower_operand(const AOperand& op) {
    if (op.is_var) return builder_.v(op.name);
    return GraphBuilder::c(op.value);
  }

  Rhs lower_expr(const AExpr& e) {
    if (e.is_binary()) {
      return Rhs(Term{*e.op, lower_operand(e.a), lower_operand(e.b)});
    }
    return Rhs(lower_operand(e.a));
  }

  GraphBuilder::BlockFn block_fn(const Block& block) {
    return [this, &block] { lower_block(block); };
  }

  void lower_block(const Block& block) {
    for (const Stmt& s : block) lower_stmt(s);
  }

  void lower_stmt(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::kAssign:
        builder_.assign(builder_.var(s.lhs), lower_expr(s.rhs));
        if (!s.label.empty()) builder_.labeled(s.label);
        return;
      case StmtKind::kSkip:
        builder_.skip();
        if (!s.label.empty()) builder_.labeled(s.label);
        return;
      case StmtKind::kBarrier:
        builder_.barrier();
        if (!s.label.empty()) builder_.labeled(s.label);
        return;
      case StmtKind::kIf:
        if (s.cond.nondet) {
          builder_.if_nondet(block_fn(s.blocks[0]), block_fn(s.blocks[1]));
        } else {
          builder_.if_cond(lower_expr(s.cond.expr), block_fn(s.blocks[0]),
                           block_fn(s.blocks[1]));
        }
        return;
      case StmtKind::kWhile:
        if (s.cond.nondet) {
          builder_.while_nondet(block_fn(s.blocks[0]));
        } else {
          builder_.while_cond(lower_expr(s.cond.expr), block_fn(s.blocks[0]));
        }
        return;
      case StmtKind::kPar: {
        std::vector<GraphBuilder::BlockFn> comps;
        comps.reserve(s.blocks.size());
        for (const Block& b : s.blocks) comps.push_back(block_fn(b));
        builder_.par(comps);
        return;
      }
      case StmtKind::kChoose: {
        std::vector<GraphBuilder::BlockFn> alts;
        alts.reserve(s.blocks.size());
        for (const Block& b : s.blocks) alts.push_back(block_fn(b));
        builder_.choose(alts);
        return;
      }
    }
  }

  const Program& program_;
  GraphBuilder builder_;
};

}  // namespace

Graph lower(const Program& program) { return Lowerer(program).run(); }

Graph compile(std::string_view source, DiagnosticSink& sink) {
  auto program = parse(source, sink);
  if (!program) return Graph();
  return lower(*program);
}

Graph compile_or_throw(std::string_view source) {
  DiagnosticSink sink;
  auto program = parse(source, sink);
  PARCM_CHECK(program.has_value(), "parse failed:\n" + sink.to_string());
  return lower(*program);
}

}  // namespace parcm::lang
