// Abstract syntax tree of the parcm language.
//
// The AST is name-based (variables are strings); lowering interns names into
// the graph's symbol table. Statements own their children via unique_ptr-
// free value vectors — the tree is acyclic and cheap.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ir/expr.hpp"

namespace parcm::lang {

struct AOperand {
  bool is_var = false;
  std::string name;        // when is_var
  std::int64_t value = 0;  // when !is_var

  static AOperand var(std::string n) { return AOperand{true, std::move(n), 0}; }
  static AOperand constant(std::int64_t v) { return AOperand{false, {}, v}; }
};

// Right-hand side / condition expression: `a` or `a op b`.
struct AExpr {
  AOperand a;
  std::optional<BinOp> op;
  AOperand b;

  bool is_binary() const { return op.has_value(); }
};

// A condition is nondeterministic (`*`) or an expression.
struct ACond {
  bool nondet = false;
  AExpr expr;
};

enum class StmtKind { kAssign, kSkip, kIf, kWhile, kPar, kChoose, kBarrier };

struct Stmt;
using Block = std::vector<Stmt>;

struct Stmt {
  StmtKind kind;

  // kAssign
  std::string lhs;
  AExpr rhs;
  // kAssign / kSkip: optional @label
  std::string label;

  // kIf / kWhile
  ACond cond;

  // kIf: blocks[0] = then, blocks[1] = else (possibly empty).
  // kWhile: blocks[0] = body.
  // kPar / kChoose: one block per component / alternative.
  std::vector<Block> blocks;
};

struct Program {
  Block body;
};

}  // namespace parcm::lang
