// ast.hpp is header-only; this TU exists so the build system has a stable
// object for the module and future out-of-line helpers.
#include "lang/ast.hpp"
