// Lowering from the language AST to a parallel flow graph.
#pragma once

#include <string_view>

#include "ir/graph.hpp"
#include "lang/ast.hpp"
#include "support/diagnostics.hpp"

namespace parcm::lang {

// Lowers a parsed program through GraphBuilder.
Graph lower(const Program& program);

// Parse + lower; errors go to sink and an empty (start->end) graph is
// returned on failure.
Graph compile(std::string_view source, DiagnosticSink& sink);

// Parse + lower; throws InternalError with the diagnostics on failure.
// The workhorse for tests, figures, and examples.
Graph compile_or_throw(std::string_view source);

}  // namespace parcm::lang
