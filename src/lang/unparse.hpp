// Rendering a language AST back to parseable parcm source.
//
// The inverse of the parser, used by the fuzzer's delta-debugging reducer to
// emit minimal reproducers as `.parcm` files: parse(to_source(p)) succeeds
// for every well-formed program and yields a structurally identical AST
// (round-tripped in tests/test_verify.cpp). Output is deterministic — the
// same AST always renders to the same bytes — which is what the fuzzer's
// same-seed-same-reproducer contract rests on.
#pragma once

#include <string>

#include "lang/ast.hpp"

namespace parcm::lang {

std::string to_source(const Program& program);

// Appends one statement (with trailing newline) at the given indent level.
void append_source(const Stmt& stmt, int indent, std::string* out);

std::string to_source(const AExpr& expr);
std::string to_source(const ACond& cond);

}  // namespace parcm::lang
