// Lexer for the parcm parallel imperative language.
//
// Grammar summary (see parser.hpp for the full grammar):
//   x := a + b;   skip;   if (cond) {..} else {..}   while (cond) {..}
//   par {..} and {..}     choose {..} or {..}
// A condition is `*` (nondeterministic) or an expression. An optional
// `@name` before `;` labels the node for figure reconstructions.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "support/diagnostics.hpp"

namespace parcm::lang {

enum class TokKind {
  kIdent,
  kNumber,
  kAssignOp,  // :=
  kSemi,
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kAt,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kLt,
  kLe,
  kGt,
  kGe,
  kEqEq,
  kNe,
  kKwSkip,
  kKwIf,
  kKwElse,
  kKwWhile,
  kKwPar,
  kKwAnd,
  kKwChoose,
  kKwOr,
  kKwBarrier,
  kEof,
};

const char* tok_kind_name(TokKind kind);

struct Token {
  TokKind kind;
  std::string text;
  std::int64_t number = 0;
  SourceLoc loc;
};

// Tokenizes `source`; appends errors (bad characters, malformed numbers) to
// sink. Always ends with a kEof token.
std::vector<Token> lex(std::string_view source, DiagnosticSink& sink);

}  // namespace parcm::lang
