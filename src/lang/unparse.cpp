#include "lang/unparse.hpp"

#include "ir/expr.hpp"

namespace parcm::lang {

namespace {

std::string operand_source(const AOperand& op) {
  if (op.is_var) return op.name;
  return std::to_string(op.value);
}

void indent_to(int indent, std::string* out) {
  out->append(static_cast<std::size_t>(indent) * 2, ' ');
}

void append_block(const Block& block, int indent, std::string* out) {
  out->append("{\n");
  for (const Stmt& s : block) append_source(s, indent + 1, out);
  indent_to(indent, out);
  out->append("}");
}

void append_label(const Stmt& s, std::string* out) {
  if (!s.label.empty()) {
    out->append(" @");
    out->append(s.label);
  }
}

}  // namespace

std::string to_source(const AExpr& expr) {
  std::string out = operand_source(expr.a);
  if (expr.is_binary()) {
    out.append(" ");
    out.append(bin_op_symbol(*expr.op));
    out.append(" ");
    out.append(operand_source(expr.b));
  }
  return out;
}

std::string to_source(const ACond& cond) {
  if (cond.nondet) return "*";
  return to_source(cond.expr);
}

void append_source(const Stmt& stmt, int indent, std::string* out) {
  indent_to(indent, out);
  switch (stmt.kind) {
    case StmtKind::kAssign:
      out->append(stmt.lhs);
      out->append(" := ");
      out->append(to_source(stmt.rhs));
      append_label(stmt, out);
      out->append(";\n");
      return;
    case StmtKind::kSkip:
      out->append("skip");
      append_label(stmt, out);
      out->append(";\n");
      return;
    case StmtKind::kBarrier:
      out->append("barrier");
      append_label(stmt, out);
      out->append(";\n");
      return;
    case StmtKind::kIf:
      out->append("if (");
      out->append(to_source(stmt.cond));
      out->append(") ");
      append_block(stmt.blocks[0], indent, out);
      if (stmt.blocks.size() > 1 && !stmt.blocks[1].empty()) {
        out->append(" else ");
        append_block(stmt.blocks[1], indent, out);
      }
      out->append("\n");
      return;
    case StmtKind::kWhile:
      out->append("while (");
      out->append(to_source(stmt.cond));
      out->append(") ");
      append_block(stmt.blocks[0], indent, out);
      out->append("\n");
      return;
    case StmtKind::kPar:
    case StmtKind::kChoose: {
      // The grammar requires at least two blocks; a degenerate single-block
      // statement (a reducer intermediate) renders as its body inline.
      const char* head = stmt.kind == StmtKind::kPar ? "par " : "choose ";
      const char* sep = stmt.kind == StmtKind::kPar ? " and " : " or ";
      if (stmt.blocks.size() < 2) {
        out->resize(out->size() - static_cast<std::size_t>(indent) * 2);
        if (!stmt.blocks.empty()) {
          for (const Stmt& s : stmt.blocks[0]) append_source(s, indent, out);
        }
        return;
      }
      out->append(head);
      for (std::size_t i = 0; i < stmt.blocks.size(); ++i) {
        if (i > 0) out->append(sep);
        append_block(stmt.blocks[i], indent, out);
      }
      out->append("\n");
      return;
    }
  }
}

std::string to_source(const Program& program) {
  std::string out;
  for (const Stmt& s : program.body) append_source(s, 0, &out);
  return out;
}

}  // namespace parcm::lang
