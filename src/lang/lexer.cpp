#include "lang/lexer.hpp"

#include <cctype>
#include <unordered_map>

namespace parcm::lang {

const char* tok_kind_name(TokKind kind) {
  switch (kind) {
    case TokKind::kIdent: return "identifier";
    case TokKind::kNumber: return "number";
    case TokKind::kAssignOp: return "':='";
    case TokKind::kSemi: return "';'";
    case TokKind::kLParen: return "'('";
    case TokKind::kRParen: return "')'";
    case TokKind::kLBrace: return "'{'";
    case TokKind::kRBrace: return "'}'";
    case TokKind::kAt: return "'@'";
    case TokKind::kPlus: return "'+'";
    case TokKind::kMinus: return "'-'";
    case TokKind::kStar: return "'*'";
    case TokKind::kSlash: return "'/'";
    case TokKind::kLt: return "'<'";
    case TokKind::kLe: return "'<='";
    case TokKind::kGt: return "'>'";
    case TokKind::kGe: return "'>='";
    case TokKind::kEqEq: return "'=='";
    case TokKind::kNe: return "'!='";
    case TokKind::kKwSkip: return "'skip'";
    case TokKind::kKwIf: return "'if'";
    case TokKind::kKwElse: return "'else'";
    case TokKind::kKwWhile: return "'while'";
    case TokKind::kKwPar: return "'par'";
    case TokKind::kKwAnd: return "'and'";
    case TokKind::kKwChoose: return "'choose'";
    case TokKind::kKwOr: return "'or'";
    case TokKind::kKwBarrier: return "'barrier'";
    case TokKind::kEof: return "end of input";
  }
  return "?";
}

namespace {
const std::unordered_map<std::string_view, TokKind>& keywords() {
  static const std::unordered_map<std::string_view, TokKind> kw = {
      {"skip", TokKind::kKwSkip},     {"if", TokKind::kKwIf},
      {"else", TokKind::kKwElse},     {"while", TokKind::kKwWhile},
      {"par", TokKind::kKwPar},       {"and", TokKind::kKwAnd},
      {"choose", TokKind::kKwChoose}, {"or", TokKind::kKwOr},
      {"barrier", TokKind::kKwBarrier},
  };
  return kw;
}
}  // namespace

std::vector<Token> lex(std::string_view source, DiagnosticSink& sink) {
  std::vector<Token> tokens;
  int line = 1;
  int col = 1;
  std::size_t i = 0;
  auto loc = [&] { return SourceLoc{line, col}; };
  auto advance = [&](std::size_t k = 1) {
    for (std::size_t j = 0; j < k && i < source.size(); ++j, ++i) {
      if (source[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
  };
  auto push = [&](TokKind kind, SourceLoc at, std::string text = {},
                  std::int64_t num = 0) {
    tokens.push_back(Token{kind, std::move(text), num, at});
  };

  while (i < source.size()) {
    char ch = source[i];
    if (std::isspace(static_cast<unsigned char>(ch))) {
      advance();
      continue;
    }
    // Comments: // to end of line.
    if (ch == '/' && i + 1 < source.size() && source[i + 1] == '/') {
      while (i < source.size() && source[i] != '\n') advance();
      continue;
    }
    SourceLoc at = loc();
    if (std::isalpha(static_cast<unsigned char>(ch)) || ch == '_') {
      std::size_t start = i;
      while (i < source.size() &&
             (std::isalnum(static_cast<unsigned char>(source[i])) ||
              source[i] == '_')) {
        advance();
      }
      std::string_view word = source.substr(start, i - start);
      auto it = keywords().find(word);
      if (it != keywords().end()) {
        push(it->second, at, std::string(word));
      } else {
        push(TokKind::kIdent, at, std::string(word));
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(ch))) {
      std::size_t start = i;
      while (i < source.size() &&
             std::isdigit(static_cast<unsigned char>(source[i]))) {
        advance();
      }
      std::string text(source.substr(start, i - start));
      std::int64_t value = 0;
      try {
        value = std::stoll(text);
      } catch (const std::exception&) {
        sink.error(at, "integer literal out of range: " + text);
      }
      push(TokKind::kNumber, at, text, value);
      continue;
    }
    auto two = [&](char second) {
      return i + 1 < source.size() && source[i + 1] == second;
    };
    switch (ch) {
      case ':':
        if (two('=')) {
          advance(2);
          push(TokKind::kAssignOp, at);
        } else {
          advance();
          sink.error(at, "expected ':='");
        }
        continue;
      case ';': advance(); push(TokKind::kSemi, at); continue;
      case '(': advance(); push(TokKind::kLParen, at); continue;
      case ')': advance(); push(TokKind::kRParen, at); continue;
      case '{': advance(); push(TokKind::kLBrace, at); continue;
      case '}': advance(); push(TokKind::kRBrace, at); continue;
      case '@': advance(); push(TokKind::kAt, at); continue;
      case '+': advance(); push(TokKind::kPlus, at); continue;
      case '-': advance(); push(TokKind::kMinus, at); continue;
      case '*': advance(); push(TokKind::kStar, at); continue;
      case '/': advance(); push(TokKind::kSlash, at); continue;
      case '<':
        if (two('=')) {
          advance(2);
          push(TokKind::kLe, at);
        } else {
          advance();
          push(TokKind::kLt, at);
        }
        continue;
      case '>':
        if (two('=')) {
          advance(2);
          push(TokKind::kGe, at);
        } else {
          advance();
          push(TokKind::kGt, at);
        }
        continue;
      case '=':
        if (two('=')) {
          advance(2);
          push(TokKind::kEqEq, at);
        } else {
          advance();
          sink.error(at, "expected '==' (assignment is ':=')");
        }
        continue;
      case '!':
        if (two('=')) {
          advance(2);
          push(TokKind::kNe, at);
        } else {
          advance();
          sink.error(at, "expected '!='");
        }
        continue;
      default:
        sink.error(at, std::string("unexpected character '") + ch + "'");
        advance();
        continue;
    }
  }
  push(TokKind::kEof, loc());
  return tokens;
}

}  // namespace parcm::lang
