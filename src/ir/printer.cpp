#include "ir/printer.hpp"

#include <algorithm>
#include <sstream>

namespace parcm {

std::string operand_to_string(const Graph& g, const Operand& op) {
  if (op.is_var()) return g.var_name(op.var_id());
  return std::to_string(op.const_value());
}

std::string term_to_string(const Graph& g, const Term& t) {
  return operand_to_string(g, t.lhs) + " " + bin_op_symbol(t.op) + " " +
         operand_to_string(g, t.rhs);
}

std::string rhs_to_string(const Graph& g, const Rhs& rhs) {
  if (rhs.is_term()) return term_to_string(g, rhs.term());
  return operand_to_string(g, rhs.trivial());
}

std::string statement_to_string(const Graph& g, NodeId n) {
  const Node& node = g.node(n);
  switch (node.kind) {
    case NodeKind::kStart:
      return "start";
    case NodeKind::kEnd:
      return "end";
    case NodeKind::kSkip:
      return "skip";
    case NodeKind::kSynthetic:
      return "skip*";
    case NodeKind::kAssign:
      return g.var_name(node.lhs) + " := " + rhs_to_string(g, node.rhs);
    case NodeKind::kTest:
      return "if (" + rhs_to_string(g, *node.cond) + ")";
    case NodeKind::kParBegin:
      return "parbegin";
    case NodeKind::kParEnd:
      return "parend";
    case NodeKind::kBarrier:
      return "barrier";
  }
  return "?";
}

std::string to_text(const Graph& g) {
  std::ostringstream os;
  for (NodeId n : g.all_nodes()) {
    const Node& node = g.node(n);
    for (int i = 0; i < g.region_depth(node.region); ++i) os << "  ";
    os << "n" << n.value() << ": " << statement_to_string(g, n);
    if (!node.label.empty()) os << "  [" << node.label << "]";
    os << " ->";
    for (NodeId m : g.succs(n)) os << " n" << m.value();
    os << "\n";
  }
  return os.str();
}

namespace {

void emit_region(const Graph& g, RegionId r, std::ostringstream& os,
                 int indent) {
  std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  // Region membership lists follow transformation order; sort by node id so
  // the rendering is deterministic regardless of how the graph was built.
  std::vector<NodeId> nodes(g.region(r).nodes.begin(), g.region(r).nodes.end());
  std::sort(nodes.begin(), nodes.end());
  std::vector<ParStmtId> stmts(g.region(r).child_stmts.begin(), g.region(r).child_stmts.end());
  std::sort(stmts.begin(), stmts.end());
  for (NodeId n : nodes) {
    os << pad << "n" << n.value() << " [label=\"" << n.value() << ": "
       << statement_to_string(g, n) << "\"";
    const Node& node = g.node(n);
    if (node.kind == NodeKind::kParBegin || node.kind == NodeKind::kParEnd) {
      os << ", shape=ellipse";
    } else if (node.kind == NodeKind::kStart || node.kind == NodeKind::kEnd) {
      os << ", shape=doublecircle";
    } else {
      os << ", shape=box";
    }
    os << "];\n";
  }
  for (ParStmtId s : stmts) {
    const ParStmt& stmt = g.par_stmt(s);
    for (RegionId comp : stmt.components) {
      os << pad << "subgraph cluster_r" << comp.value() << " {\n";
      os << pad << "  style=dashed;\n";
      emit_region(g, comp, os, indent + 1);
      os << pad << "}\n";
    }
  }
}

}  // namespace

std::string to_dot(const Graph& g, const std::string& title) {
  std::ostringstream os;
  os << "digraph \"" << title << "\" {\n";
  os << "  node [fontname=\"monospace\"];\n";
  emit_region(g, g.root_region(), os, 1);
  for (std::size_t i = 0; i < g.num_edges_total(); ++i) {
    const Edge& e = g.edge(EdgeId(static_cast<EdgeId::underlying>(i)));
    if (!e.valid) continue;
    os << "  n" << e.from.value() << " -> n" << e.to.value();
    const Node& from = g.node(e.from);
    if (from.kind == NodeKind::kTest && from.out_edges.size() == 2) {
      os << " [label=\""
         << (from.out_edges[0].index() == i ? "T" : "F") << "\"]";
    }
    os << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace parcm
