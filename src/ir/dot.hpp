// Annotated Graphviz export: a PFG rendering that carries per-node
// dataflow facts (D-Safe, U-Safe, Earliest, ...) and remark badges next to
// the statement text. The exporter is deliberately generic — annotations
// arrive as plain strings so any layer (analyses, motion, the parcm_explain
// CLI) can assemble them without this file depending on those layers.
#pragma once

#include <string>
#include <vector>

#include "ir/graph.hpp"

namespace parcm {

struct DotNodeAnnotation {
  // Short fact lines rendered under the statement ("D-Safe: a+b", ...).
  std::vector<std::string> facts;
  // Compact badges rendered in brackets on the statement line
  // ("inserted", "P3", ...).
  std::vector<std::string> badges;
  // Graphviz fillcolor; empty keeps the default (white).
  std::string fill;
};

struct DotOptions {
  std::string title = "parcm";
  // Prefix every statement with its node id ("3: x := a + b").
  bool number_nodes = true;
};

// Escapes a string for use inside a double-quoted DOT label. Newlines
// become the DOT line-break escape.
std::string dot_escape(const std::string& s);

// Renders g as Graphviz, one dashed cluster per parallel component, with
// `ann[n.index()]` attached to node n (out-of-range indices mean "no
// annotation" so callers may pass a shorter — or empty — vector). Output is
// deterministic: nodes and edges are emitted in id order.
std::string annotated_dot(const Graph& g,
                          const std::vector<DotNodeAnnotation>& ann,
                          const DotOptions& options = {});

}  // namespace parcm
