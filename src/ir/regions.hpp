// Interference structure of a parallel flow graph.
//
// The interleaving predecessors of a node n (paper: PredItlvg(n)) are all
// nodes that may execute immediately before n at runtime due to interleaving
// — i.e. every node of every *sibling* component of every parallel statement
// enclosing n, including nodes of parallel statements nested inside those
// siblings. The relation is symmetric, so the same sets serve as
// interleaving successors for backward analyses.
#pragma once

#include <vector>

#include "ir/graph.hpp"

namespace parcm {

class InterleavingInfo {
 public:
  explicit InterleavingInfo(const Graph& g);

  // Computed on demand: materializing every node's sibling set up front is
  // quadratic in the component size. The solvers work from per-component
  // aggregates instead; this enumeration exists for tests, tools and the
  // enumerator's reduction machinery.
  //
  // The graph is a query parameter rather than a stored pointer so one
  // InterleavingInfo can serve every structurally identical graph (the
  // shared analysis cache hands the same instance to all workers); `g` must
  // have the structure this info was built from.
  std::vector<NodeId> preds(const Graph& g, NodeId n) const;

 private:
  // Recursive node set per component region, shared by all queries.
  std::vector<avector<NodeId>> comp_nodes_;
};

// Component region of `stmt` that (transitively) contains node n; invalid id
// if n is not inside stmt.
RegionId component_containing(const Graph& g, ParStmtId stmt, NodeId n);

}  // namespace parcm
