// Graph surgery shared by the code motion transformations.
#pragma once

#include <functional>
#include <vector>

#include "ir/graph.hpp"

namespace parcm {

// Inserts a synthetic skip node on every edge (m, n) where n has more than
// one predecessor, except when n is a ParEnd node (the paper's precondition
// for code motion: such join edges would otherwise block placements).
// Returns the number of synthetic nodes inserted.
std::size_t split_join_edges(Graph& g);

// Region a node spliced into edge e must live in: the target's region,
// unless the target is a ParEnd (then the source's region), so region
// discipline holds for ParBegin->entry and exit->ParEnd edges.
RegionId edge_region(const Graph& g, EdgeId e);

// Rewires edge e through `fresh` (a fresh node in edge_region(g, e)); the
// edge keeps its slot in the source's out-edge list, so test-branch order
// and oracle-visible branch structure are preserved.
void wire_on_edge(Graph& g, EdgeId e, NodeId fresh);

// Inserts a synthetic skip node in the middle of edge e.
NodeId split_edge(Graph& g, EdgeId e);

// First node satisfying pred, or invalid id.
NodeId find_node(const Graph& g,
                 const std::function<bool(const Graph&, NodeId)>& pred);
// All nodes satisfying pred.
std::vector<NodeId> find_nodes(
    const Graph& g, const std::function<bool(const Graph&, NodeId)>& pred);

// The unique assignment node whose statement prints as `text` (e.g.
// "x := a + b"); throws if absent or ambiguous. Figure tests use this to
// address paper nodes without depending on internal numbering.
NodeId node_of_statement(const Graph& g, const std::string& text);
// The unique node carrying `label`; throws if absent or ambiguous.
NodeId node_of_label(const Graph& g, const std::string& label);

}  // namespace parcm
