#include "ir/transform_utils.hpp"

#include "ir/printer.hpp"
#include "support/diagnostics.hpp"

namespace parcm {

RegionId edge_region(const Graph& g, EdgeId e) {
  NodeId from = g.edge(e).from;
  NodeId to = g.edge(e).to;
  return g.node(to).kind == NodeKind::kParEnd ? g.node(from).region
                                              : g.node(to).region;
}

void wire_on_edge(Graph& g, EdgeId e, NodeId fresh) {
  PARCM_CHECK(g.node(fresh).region == edge_region(g, e),
              "wire_on_edge: node in wrong region");
  PARCM_CHECK(g.node(fresh).in_edges.empty() &&
                  g.node(fresh).out_edges.empty(),
              "wire_on_edge requires a fresh node");
  NodeId to = g.edge(e).to;
  // Retarget in place so the edge keeps its slot in the source's out list.
  g.edge(e).to = fresh;
  auto& to_in = g.node(to).in_edges;
  for (std::size_t i = 0; i < to_in.size(); ++i) {
    if (to_in[i] == e) {
      to_in.erase(to_in.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
  g.node(fresh).in_edges.push_back(e);
  g.add_edge(fresh, to);
}

NodeId split_edge(Graph& g, EdgeId e) {
  NodeId mid = g.new_node(NodeKind::kSynthetic, edge_region(g, e));
  wire_on_edge(g, e, mid);
  return mid;
}

std::size_t split_join_edges(Graph& g) {
  std::size_t inserted = 0;
  for (NodeId n : g.all_nodes()) {
    if (g.node(n).kind == NodeKind::kParEnd) continue;
    if (g.in_degree(n) <= 1) continue;
    // Copy: split_edge mutates the in-edge list.
    avector<EdgeId> incoming = g.node(n).in_edges;
    for (EdgeId e : incoming) {
      // Already split (a dedicated synthetic feeds only this edge)?
      NodeId from = g.edge(e).from;
      if (g.node(from).kind == NodeKind::kSynthetic &&
          g.out_degree(from) == 1) {
        continue;
      }
      split_edge(g, e);
      ++inserted;
    }
  }
  return inserted;
}

NodeId find_node(const Graph& g,
                 const std::function<bool(const Graph&, NodeId)>& pred) {
  for (NodeId n : g.all_nodes()) {
    if (pred(g, n)) return n;
  }
  return NodeId();
}

std::vector<NodeId> find_nodes(
    const Graph& g, const std::function<bool(const Graph&, NodeId)>& pred) {
  std::vector<NodeId> out;
  for (NodeId n : g.all_nodes()) {
    if (pred(g, n)) out.push_back(n);
  }
  return out;
}

NodeId node_of_statement(const Graph& g, const std::string& text) {
  NodeId found;
  for (NodeId n : g.all_nodes()) {
    if (statement_to_string(g, n) == text) {
      PARCM_CHECK(!found.valid(), "ambiguous statement: " + text);
      found = n;
    }
  }
  PARCM_CHECK(found.valid(), "no node with statement: " + text);
  return found;
}

NodeId node_of_label(const Graph& g, const std::string& label) {
  NodeId found;
  for (NodeId n : g.all_nodes()) {
    if (g.node(n).label == label) {
      PARCM_CHECK(!found.valid(), "ambiguous label: " + label);
      found = n;
    }
  }
  PARCM_CHECK(found.valid(), "no node with label: " + label);
  return found;
}

}  // namespace parcm
