// Expressions of the 3-address parallel IR.
//
// Right-hand sides contain at most one operator (the paper's 3-address
// assumption, Section 3). A *term* — the unit of code motion — is a binary
// right-hand side `a op b`; trivial right-hand sides (variable or constant)
// are free under the paper's cost model and never moved.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "support/ids.hpp"

namespace parcm {

enum class BinOp : std::uint8_t {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kLt,
  kLe,
  kGt,
  kGe,
  kEq,
  kNe,
};

const char* bin_op_symbol(BinOp op);

// A variable or an integer literal.
class Operand {
 public:
  // Defaults to the constant 0.
  Operand() : Operand(VarId(), 0) {}

  static Operand var(VarId v) { return Operand(v, 0); }
  static Operand constant(std::int64_t c) { return Operand(VarId(), c); }

  bool is_var() const { return var_.valid(); }
  bool is_const() const { return !var_.valid(); }
  VarId var_id() const { return var_; }
  std::int64_t const_value() const { return const_; }

  bool operator==(const Operand&) const = default;

 private:
  Operand(VarId v, std::int64_t c) : var_(v), const_(c) {}
  VarId var_;
  std::int64_t const_;
};

// `a op b` — the movable computation pattern. Terms are compared lexically:
// two occurrences are the same pattern iff operator and operands coincide
// syntactically (no commutativity normalization; the paper's notion).
struct Term {
  BinOp op;
  Operand lhs;
  Operand rhs;

  bool has_operand(VarId v) const {
    return (lhs.is_var() && lhs.var_id() == v) ||
           (rhs.is_var() && rhs.var_id() == v);
  }

  bool operator==(const Term&) const = default;
};

// Right-hand side of an assignment: a binary term or a trivial operand.
class Rhs {
 public:
  Rhs() : Rhs(Operand::constant(0)) {}
  explicit Rhs(Operand trivial) : trivial_(trivial) {}
  explicit Rhs(Term term) : term_(term), trivial_(Operand::constant(0)) {}

  bool is_term() const { return term_.has_value(); }
  bool is_trivial() const { return !term_.has_value(); }
  const Term& term() const { return *term_; }
  const Operand& trivial() const { return trivial_; }

  // True iff variable v appears anywhere in this right-hand side.
  bool uses_var(VarId v) const;

  bool operator==(const Rhs&) const = default;

 private:
  std::optional<Term> term_;
  Operand trivial_;
};

}  // namespace parcm
