// Structured construction of parallel flow graphs.
//
// The builder maintains a set of dangling "tail" nodes whose next outgoing
// edge targets the next appended statement, so straight-line code, branches,
// loops, nondeterministic choice, and parallel statements compose freely.
// Test nodes rely on edge order (out_edges[0] = true branch); the builder
// sequences callback invocation to preserve it.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "ir/graph.hpp"

namespace parcm {

class GraphBuilder {
 public:
  using BlockFn = std::function<void()>;

  GraphBuilder();

  VarId var(const std::string& name) { return graph_.intern_var(name); }

  // Operand / term shorthands.
  Operand v(const std::string& name) { return Operand::var(var(name)); }
  static Operand c(std::int64_t value) { return Operand::constant(value); }
  static Term term(Operand lhs, BinOp op, Operand rhs) {
    return Term{op, lhs, rhs};
  }

  // --- statement appenders ---------------------------------------------------
  NodeId assign(VarId lhs, Rhs rhs);
  NodeId assign(const std::string& lhs, Operand a, BinOp op, Operand b);
  NodeId assign(const std::string& lhs, Operand a);
  NodeId skip();
  // Collective barrier; only valid inside a parallel component (the paper's
  // "explicit synchronization" extension).
  NodeId barrier();

  // Attach a label to the most recently appended node.
  GraphBuilder& labeled(const std::string& label);

  // --- control flow ------------------------------------------------------------
  // Nondeterministic 2-way branch (paper branching model).
  void if_nondet(const BlockFn& then_block, const BlockFn& else_block);
  // Deterministic branch with a condition evaluated by the interpreter.
  void if_cond(Rhs cond, const BlockFn& then_block, const BlockFn& else_block);
  // Nondeterministic n-way choice.
  void choose(const std::vector<BlockFn>& alternatives);
  // Loop with nondeterministic exit.
  void while_nondet(const BlockFn& body);
  // Loop while cond evaluates to nonzero.
  void while_cond(Rhs cond, const BlockFn& body);
  // Parallel statement with one component per callback.
  void par(const std::vector<BlockFn>& components);

  // --- escape hatches ----------------------------------------------------------
  Graph& graph() { return graph_; }
  RegionId current_region() const { return region_; }
  NodeId last_node() const { return last_; }

  // Wires all dangling tails to the end node and returns the graph. The
  // builder must not be used afterwards.
  Graph finish();

 private:
  NodeId append(NodeId n);
  void run_block(NodeId from, const BlockFn& block,
                 std::vector<NodeId>* collected_tails);

  Graph graph_;
  RegionId region_;
  std::vector<NodeId> tails_;
  NodeId last_;
  bool finished_ = false;
};

}  // namespace parcm
