#include "ir/validate.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

namespace parcm {

namespace {

std::string node_desc(const Graph& g, NodeId n) {
  std::ostringstream os;
  os << "node " << n.value() << " (" << node_kind_name(g.node(n).kind);
  if (!g.node(n).label.empty()) os << " '" << g.node(n).label << "'";
  os << ")";
  return os.str();
}

}  // namespace

bool validate(const Graph& g, DiagnosticSink& sink,
              const ValidateOptions& options) {
  bool was_ok = sink.ok();

  // Start / end shape.
  if (g.node(g.start()).kind != NodeKind::kStart) {
    sink.error("start node has wrong kind");
  }
  if (g.node(g.end()).kind != NodeKind::kEnd) {
    sink.error("end node has wrong kind");
  }
  if (g.in_degree(g.start()) != 0) {
    sink.error("start node has incoming edges");
  }
  if (g.out_degree(g.end()) != 0) {
    sink.error("end node has outgoing edges");
  }

  for (NodeId n : g.all_nodes()) {
    const Node& node = g.node(n);

    // Kind-uniqueness of start/end.
    if (node.kind == NodeKind::kStart && n != g.start()) {
      sink.error("extra start node: " + node_desc(g, n));
    }
    if (node.kind == NodeKind::kEnd && n != g.end()) {
      sink.error("extra end node: " + node_desc(g, n));
    }
    if (node.kind == NodeKind::kTest) {
      if (node.out_edges.size() != 2) {
        sink.error(node_desc(g, n) + ": test node must have 2 out-edges");
      }
      if (!node.cond.has_value()) {
        sink.error(node_desc(g, n) + ": test node without condition");
      }
    }
    if (node.kind != NodeKind::kEnd && node.out_edges.empty()) {
      sink.error(node_desc(g, n) + ": dead-end node (no out-edges)");
    }
    if (node.kind == NodeKind::kBarrier) {
      if (!g.pfg(n).valid()) {
        sink.error(node_desc(g, n) + ": barrier outside a parallel component");
      }
      if (node.out_edges.size() != 1) {
        sink.error(node_desc(g, n) + ": barrier must have one out-edge");
      }
    }

    // Region membership bookkeeping.
    const Region& reg = g.region(node.region);
    if (std::find(reg.nodes.begin(), reg.nodes.end(), n) == reg.nodes.end()) {
      sink.error(node_desc(g, n) + ": missing from its region's node list");
    }

    // Edge region discipline.
    for (EdgeId e : node.out_edges) {
      const Edge& ed = g.edge(e);
      if (!ed.valid) {
        sink.error(node_desc(g, n) + ": references removed edge");
        continue;
      }
      if (ed.from != n) {
        sink.error(node_desc(g, n) + ": out-edge with wrong source");
      }
      const Node& to = g.node(ed.to);
      bool same_region = to.region == node.region;
      bool enters_component =
          node.kind == NodeKind::kParBegin && to.region.valid() &&
          g.region(to.region).owner == node.par_stmt;
      bool exits_component =
          to.kind == NodeKind::kParEnd && node.region.valid() &&
          g.region(node.region).owner == to.par_stmt;
      if (!same_region && !enters_component && !exits_component) {
        sink.error(node_desc(g, n) + " -> " + node_desc(g, ed.to) +
                   ": edge crosses a region boundary");
      }
    }
    for (EdgeId e : node.in_edges) {
      const Edge& ed = g.edge(e);
      if (!ed.valid || ed.to != n) {
        sink.error(node_desc(g, n) + ": corrupt in-edge list");
      }
    }
  }

  // Parallel statement shape.
  for (std::size_t i = 0; i < g.num_par_stmts(); ++i) {
    const ParStmt& s = g.par_stmt(ParStmtId(static_cast<ParStmtId::underlying>(i)));
    if (s.components.size() < 2) {
      sink.error("parallel statement with fewer than 2 components");
    }
    if (g.node(s.begin).kind != NodeKind::kParBegin ||
        g.node(s.end).kind != NodeKind::kParEnd) {
      sink.error("parallel statement with mis-kinded begin/end nodes");
    }
    // One edge from ParBegin into each component; component nonempty with a
    // unique entry and at least one exit to ParEnd.
    for (RegionId comp : s.components) {
      const Region& reg = g.region(comp);
      if (reg.nodes.empty()) {
        sink.error("empty parallel component region");
        continue;
      }
      int entries = 0;
      for (NodeId t : g.succs(s.begin)) {
        if (g.node(t).region == comp) ++entries;
      }
      if (entries != 1) {
        sink.error("component must have exactly one entry edge from ParBegin");
      }
      if (g.component_exits(comp).empty()) {
        sink.error("component has no exit edge to ParEnd");
      }
    }
    if (g.out_degree(s.begin) != s.components.size()) {
      sink.error("ParBegin out-degree differs from component count");
    }
  }

  if (options.check_reachability) {
    // Forward reachability from start.
    std::vector<char> fwd(g.num_nodes(), 0);
    std::vector<NodeId> stack{g.start()};
    fwd[g.start().index()] = 1;
    while (!stack.empty()) {
      NodeId n = stack.back();
      stack.pop_back();
      for (NodeId m : g.succs(n)) {
        if (!fwd[m.index()]) {
          fwd[m.index()] = 1;
          stack.push_back(m);
        }
      }
    }
    // Backward reachability from end.
    std::vector<char> bwd(g.num_nodes(), 0);
    stack.push_back(g.end());
    bwd[g.end().index()] = 1;
    while (!stack.empty()) {
      NodeId n = stack.back();
      stack.pop_back();
      for (NodeId m : g.preds(n)) {
        if (!bwd[m.index()]) {
          bwd[m.index()] = 1;
          stack.push_back(m);
        }
      }
    }
    for (NodeId n : g.all_nodes()) {
      if (!fwd[n.index()]) {
        sink.error(node_desc(g, n) + ": unreachable from start");
      }
      if (!bwd[n.index()]) {
        sink.error(node_desc(g, n) + ": cannot reach end");
      }
    }
  }

  return was_ok && sink.ok();
}

void validate_or_throw(const Graph& g, const ValidateOptions& options) {
  DiagnosticSink sink;
  if (!validate(g, sink, options)) {
    internal_error(__FILE__, __LINE__,
                   "graph validation failed:\n" + sink.to_string());
  }
}

}  // namespace parcm
