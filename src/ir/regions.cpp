#include "ir/regions.hpp"

#include <algorithm>

namespace parcm {

InterleavingInfo::InterleavingInfo(const Graph& g) {
  comp_nodes_.resize(g.num_regions());
  for (std::size_t r = 0; r < g.num_regions(); ++r) {
    comp_nodes_[r] = g.nodes_in_region_recursive(
        RegionId(static_cast<RegionId::underlying>(r)));
  }
}

std::vector<NodeId> InterleavingInfo::preds(const Graph& g, NodeId n) const {
  std::vector<NodeId> out;
  for (const Graph::Enclosing& enc : g.enclosing_stmts(n)) {
    const ParStmt& stmt = g.par_stmt(enc.stmt);
    for (RegionId comp : stmt.components) {
      if (comp == enc.component) continue;
      const auto& nodes = comp_nodes_[comp.index()];
      out.insert(out.end(), nodes.begin(), nodes.end());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

RegionId component_containing(const Graph& g, ParStmtId stmt, NodeId n) {
  for (const Graph::Enclosing& enc : g.enclosing_stmts(n)) {
    if (enc.stmt == stmt) return enc.component;
  }
  return RegionId();
}

}  // namespace parcm
