#include "ir/expr.hpp"

#include "support/diagnostics.hpp"

namespace parcm {

const char* bin_op_symbol(BinOp op) {
  switch (op) {
    case BinOp::kAdd:
      return "+";
    case BinOp::kSub:
      return "-";
    case BinOp::kMul:
      return "*";
    case BinOp::kDiv:
      return "/";
    case BinOp::kLt:
      return "<";
    case BinOp::kLe:
      return "<=";
    case BinOp::kGt:
      return ">";
    case BinOp::kGe:
      return ">=";
    case BinOp::kEq:
      return "==";
    case BinOp::kNe:
      return "!=";
  }
  PARCM_CHECK(false, "unknown BinOp");
}

bool Rhs::uses_var(VarId v) const {
  if (is_term()) return term_->has_operand(v);
  return trivial_.is_var() && trivial_.var_id() == v;
}

}  // namespace parcm
