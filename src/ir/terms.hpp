// The term universe of a graph: every distinct binary right-hand side.
//
// Code motion treats each term (computation pattern) independently; the
// packed dataflow engine analyzes all of them simultaneously, one bit per
// term.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "ir/graph.hpp"

namespace parcm {

class TermTable {
 public:
  // Collects the distinct terms of all assignment right-hand sides of g, in
  // first-occurrence order. Test conditions are not collected: conditions
  // are not subject to code motion in the paper's model.
  explicit TermTable(const Graph& g);

  std::size_t size() const { return terms_.size(); }
  const Term& term(TermId t) const { return terms_[t.index()]; }

  // Term computed by node n (its RHS), or invalid if n computes no term.
  TermId term_of(NodeId n) const { return node_term_[n.index()]; }

  // Id of a term equal to t, or invalid.
  TermId find(const Term& t) const;
  // Id of the term that prints as `text` under g's variable names, e.g.
  // "a + b"; throws if absent.
  TermId find(const Graph& g, const std::string& text) const;

  std::vector<TermId> all() const;

 private:
  avector<Term> terms_;
  avector<TermId> node_term_;
};

}  // namespace parcm
