#include "ir/builder.hpp"

#include "support/diagnostics.hpp"

namespace parcm {

GraphBuilder::GraphBuilder() : region_(graph_.root_region()) {
  tails_ = {graph_.start()};
}

NodeId GraphBuilder::append(NodeId n) {
  for (NodeId t : tails_) graph_.add_edge(t, n);
  tails_ = {n};
  last_ = n;
  return n;
}

NodeId GraphBuilder::assign(VarId lhs, Rhs rhs) {
  return append(graph_.new_assign(region_, lhs, std::move(rhs)));
}

NodeId GraphBuilder::assign(const std::string& lhs, Operand a, BinOp op,
                            Operand b) {
  return assign(var(lhs), Rhs(Term{op, a, b}));
}

NodeId GraphBuilder::assign(const std::string& lhs, Operand a) {
  return assign(var(lhs), Rhs(a));
}

NodeId GraphBuilder::skip() {
  return append(graph_.new_node(NodeKind::kSkip, region_));
}

NodeId GraphBuilder::barrier() {
  PARCM_CHECK(graph_.region(region_).owner.valid(),
              "barrier outside a parallel component");
  return append(graph_.new_node(NodeKind::kBarrier, region_));
}

GraphBuilder& GraphBuilder::labeled(const std::string& label) {
  PARCM_CHECK(last_.valid(), "labeled() before any statement");
  graph_.node(last_).label = label;
  return *this;
}

void GraphBuilder::run_block(NodeId from, const BlockFn& block,
                             std::vector<NodeId>* collected_tails) {
  tails_ = {from};
  if (block) block();
  collected_tails->insert(collected_tails->end(), tails_.begin(),
                          tails_.end());
}

void GraphBuilder::if_nondet(const BlockFn& then_block,
                             const BlockFn& else_block) {
  NodeId branch = append(graph_.new_node(NodeKind::kSkip, region_));
  std::vector<NodeId> joined;
  run_block(branch, then_block, &joined);
  run_block(branch, else_block, &joined);
  tails_ = std::move(joined);
}

void GraphBuilder::if_cond(Rhs cond, const BlockFn& then_block,
                           const BlockFn& else_block) {
  NodeId test = append(graph_.new_test(region_, std::move(cond)));
  // Materialized branch entries pin the true/false edge order even when a
  // block is empty (out_edges[0] must be the true branch).
  NodeId then_entry = graph_.new_node(NodeKind::kSkip, region_);
  graph_.add_edge(test, then_entry);
  NodeId else_entry = graph_.new_node(NodeKind::kSkip, region_);
  graph_.add_edge(test, else_entry);
  std::vector<NodeId> joined;
  run_block(then_entry, then_block, &joined);
  run_block(else_entry, else_block, &joined);
  tails_ = std::move(joined);
}

void GraphBuilder::choose(const std::vector<BlockFn>& alternatives) {
  PARCM_CHECK(alternatives.size() >= 2, "choose needs >= 2 alternatives");
  NodeId branch = append(graph_.new_node(NodeKind::kSkip, region_));
  std::vector<NodeId> joined;
  for (const BlockFn& alt : alternatives) run_block(branch, alt, &joined);
  tails_ = std::move(joined);
}

void GraphBuilder::while_nondet(const BlockFn& body) {
  NodeId header = append(graph_.new_node(NodeKind::kSkip, region_));
  std::vector<NodeId> body_tails;
  run_block(header, body, &body_tails);
  for (NodeId t : body_tails) {
    if (t != header) graph_.add_edge(t, header);
  }
  tails_ = {header};
}

void GraphBuilder::while_cond(Rhs cond, const BlockFn& body) {
  NodeId header = append(graph_.new_test(region_, std::move(cond)));
  // First out-edge of the header test = "true" = enter the body; the
  // materialized entry keeps that true even for an empty body.
  NodeId body_entry = graph_.new_node(NodeKind::kSkip, region_);
  graph_.add_edge(header, body_entry);
  std::vector<NodeId> body_tails;
  run_block(body_entry, body, &body_tails);
  for (NodeId t : body_tails) graph_.add_edge(t, header);
  // Next appended statement receives the second ("false") edge.
  tails_ = {header};
}

void GraphBuilder::par(const std::vector<BlockFn>& components) {
  PARCM_CHECK(components.size() >= 2, "par needs >= 2 components");
  ParStmtId stmt = graph_.add_par_stmt(region_);
  const ParStmt& ps = graph_.par_stmt(stmt);
  NodeId begin = ps.begin;
  NodeId end = ps.end;
  for (NodeId t : tails_) graph_.add_edge(t, begin);

  RegionId saved_region = region_;
  for (const BlockFn& comp : components) {
    RegionId r = graph_.add_component(stmt);
    region_ = r;
    // Component entry must be a node inside the component; materialize a
    // skip so even an empty component is well-formed.
    NodeId entry = graph_.new_node(NodeKind::kSkip, r);
    graph_.add_edge(begin, entry);
    std::vector<NodeId> comp_tails;
    run_block(entry, comp, &comp_tails);
    for (NodeId t : comp_tails) graph_.add_edge(t, end);
  }
  region_ = saved_region;
  tails_ = {end};
  last_ = end;
}

Graph GraphBuilder::finish() {
  PARCM_CHECK(!finished_, "finish() called twice");
  finished_ = true;
  for (NodeId t : tails_) graph_.add_edge(t, graph_.end());
  return std::move(graph_);
}

}  // namespace parcm
