#include "ir/dot.hpp"

#include <algorithm>
#include <sstream>

#include "ir/printer.hpp"

namespace parcm {

std::string dot_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c; break;
    }
  }
  return out;
}

namespace {

const DotNodeAnnotation kEmptyAnnotation{};

const DotNodeAnnotation& annotation_of(
    const std::vector<DotNodeAnnotation>& ann, NodeId n) {
  return n.index() < ann.size() ? ann[n.index()] : kEmptyAnnotation;
}

void emit_annotated_region(const Graph& g, RegionId r,
                           const std::vector<DotNodeAnnotation>& ann,
                           const DotOptions& options, std::ostringstream& os,
                           int indent) {
  std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  std::vector<NodeId> nodes(g.region(r).nodes.begin(), g.region(r).nodes.end());
  std::sort(nodes.begin(), nodes.end());
  std::vector<ParStmtId> stmts(g.region(r).child_stmts.begin(), g.region(r).child_stmts.end());
  std::sort(stmts.begin(), stmts.end());
  for (NodeId n : nodes) {
    const DotNodeAnnotation& a = annotation_of(ann, n);
    std::string label;
    if (options.number_nodes) label += std::to_string(n.value()) + ": ";
    label += statement_to_string(g, n);
    for (const std::string& b : a.badges) label += " [" + b + "]";
    for (const std::string& f : a.facts) label += "\n" + f;
    os << pad << "n" << n.value() << " [label=\"" << dot_escape(label)
       << "\"";
    const Node& node = g.node(n);
    if (node.kind == NodeKind::kParBegin || node.kind == NodeKind::kParEnd) {
      os << ", shape=ellipse";
    } else if (node.kind == NodeKind::kStart || node.kind == NodeKind::kEnd) {
      os << ", shape=doublecircle";
    } else {
      os << ", shape=box";
    }
    if (!a.fill.empty()) {
      os << ", style=filled, fillcolor=\"" << dot_escape(a.fill) << "\"";
    }
    os << "];\n";
  }
  for (ParStmtId s : stmts) {
    const ParStmt& stmt = g.par_stmt(s);
    for (RegionId comp : stmt.components) {
      os << pad << "subgraph cluster_r" << comp.value() << " {\n";
      os << pad << "  style=dashed;\n";
      emit_annotated_region(g, comp, ann, options, os, indent + 1);
      os << pad << "}\n";
    }
  }
}

}  // namespace

std::string annotated_dot(const Graph& g,
                          const std::vector<DotNodeAnnotation>& ann,
                          const DotOptions& options) {
  std::ostringstream os;
  os << "digraph \"" << dot_escape(options.title) << "\" {\n";
  os << "  node [fontname=\"monospace\"];\n";
  emit_annotated_region(g, g.root_region(), ann, options, os, 1);
  for (std::size_t i = 0; i < g.num_edges_total(); ++i) {
    const Edge& e = g.edge(EdgeId(static_cast<EdgeId::underlying>(i)));
    if (!e.valid) continue;
    os << "  n" << e.from.value() << " -> n" << e.to.value();
    const Node& from = g.node(e.from);
    if (from.kind == NodeKind::kTest && from.out_edges.size() == 2) {
      os << " [label=\""
         << (from.out_edges[0].index() == i ? "T" : "F") << "\"]";
    }
    os << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace parcm
