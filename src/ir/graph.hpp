// The parallel flow graph G* = (N*, E*, s*, e*) of Knoop/Steffen/Vollmer.
//
// Structure mirrors the paper: nodes represent statements, edges the
// nondeterministic branching structure; a parallel statement is a subgraph
// encapsulated by a ParBegin and a ParEnd node whose component subgraphs run
// interleaved on shared memory. Components are modelled as *regions*: every
// node belongs to exactly one region, the root region holds top-level code
// (and the ParBegin/ParEnd nodes of top-level parallel statements), and each
// parallel statement owns one region per component. No edge crosses a region
// boundary except ParBegin -> component entry and component exit -> ParEnd.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/expr.hpp"
#include "support/arena.hpp"
#include "support/ids.hpp"

namespace parcm {

enum class NodeKind : std::uint8_t {
  kStart,      // s*: unique, skip, no incoming edges
  kEnd,        // e*: unique, skip, no outgoing edges
  kSkip,       // empty statement
  kSynthetic,  // skip inserted by join-edge splitting or code motion
  kAssign,     // x := rhs
  kTest,       // deterministic 2-way branch on a condition (analysis: skip)
  kParBegin,   // entry of a parallel statement (skip)
  kParEnd,     // synchronizing exit of a parallel statement (skip)
  kBarrier,    // collective barrier of the innermost parallel statement
};

const char* node_kind_name(NodeKind kind);

// Lazy 0..n-1 id range: all_nodes() used to materialize a vector per call,
// which shows up as allocator traffic in every analysis loop.
class NodeRange {
 public:
  class iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = NodeId;
    using difference_type = std::ptrdiff_t;
    using pointer = void;
    using reference = NodeId;

    explicit iterator(std::size_t i) : i_(i) {}
    NodeId operator*() const {
      return NodeId(static_cast<NodeId::underlying>(i_));
    }
    iterator& operator++() {
      ++i_;
      return *this;
    }
    iterator operator++(int) {
      iterator old = *this;
      ++i_;
      return old;
    }
    bool operator==(const iterator& o) const { return i_ == o.i_; }
    bool operator!=(const iterator& o) const { return i_ != o.i_; }

   private:
    std::size_t i_;
  };

  explicit NodeRange(std::size_t n) : n_(n) {}
  iterator begin() const { return iterator(0); }
  iterator end() const { return iterator(n_); }
  std::size_t size() const { return n_; }

 private:
  std::size_t n_;
};

struct Node {
  NodeKind kind = NodeKind::kSkip;
  RegionId region;

  // kAssign only.
  VarId lhs;
  Rhs rhs;

  // kTest only; out_edges[0] is the true branch, out_edges[1] the false one.
  std::optional<Rhs> cond;

  // kParBegin / kParEnd only: the parallel statement this node delimits.
  ParStmtId par_stmt;

  // Free-form label used by figure reconstructions ("n3" etc.) and printers.
  std::string label;

  avector<EdgeId> in_edges;
  avector<EdgeId> out_edges;
};

struct Edge {
  NodeId from;
  NodeId to;
  bool valid = true;
};

struct Region {
  RegionId id;
  // Parallel statement owning this region as a component; invalid for root.
  ParStmtId owner;
  avector<NodeId> nodes;
  // Parallel statements whose ParBegin/ParEnd live directly in this region.
  avector<ParStmtId> child_stmts;
};

struct ParStmt {
  ParStmtId id;
  NodeId begin;
  NodeId end;
  RegionId parent_region;
  avector<RegionId> components;
};

class Graph {
 public:
  // Creates the root region plus start and end nodes (unconnected).
  Graph();

  // Structural version stamp. Every mutation (including handing out a
  // non-const Node&/Edge&) assigns a fresh value from a process-wide
  // counter, so two graphs carry the same version only if one is an
  // unmodified copy of the other — equal versions imply equal content,
  // which is what AnalysisCache's fast path relies on.
  std::uint64_t version() const { return version_; }

  // --- variables -----------------------------------------------------------
  VarId intern_var(const std::string& name);
  std::optional<VarId> find_var(const std::string& name) const;
  const std::string& var_name(VarId v) const;
  std::size_t num_vars() const { return var_names_.size(); }

  // --- nodes and edges -----------------------------------------------------
  NodeId new_node(NodeKind kind, RegionId region);
  NodeId new_assign(RegionId region, VarId lhs, Rhs rhs);
  NodeId new_test(RegionId region, Rhs cond);

  EdgeId add_edge(NodeId from, NodeId to);
  void remove_edge(EdgeId e);

  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t num_edges_total() const { return edges_.size(); }
  // The non-const accessors conservatively bump the version: transforms
  // mutate nodes in place through them (e.g. rewriting an assignment's rhs).
  Node& node(NodeId n) {
    bump_version();
    return nodes_[n.index()];
  }
  const Node& node(NodeId n) const { return nodes_[n.index()]; }
  Edge& edge(EdgeId e) {
    bump_version();
    return edges_[e.index()];
  }
  const Edge& edge(EdgeId e) const { return edges_[e.index()]; }

  NodeId start() const { return start_; }
  NodeId end() const { return end_; }

  avector<NodeId> preds(NodeId n) const;
  avector<NodeId> succs(NodeId n) const;
  std::size_t in_degree(NodeId n) const;
  std::size_t out_degree(NodeId n) const;

  // All node ids, in creation order.
  NodeRange all_nodes() const { return NodeRange(nodes_.size()); }

  // --- regions and parallel statements --------------------------------------
  RegionId root_region() const { return RegionId(0); }
  std::size_t num_regions() const { return regions_.size(); }
  std::size_t num_par_stmts() const { return par_stmts_.size(); }
  const Region& region(RegionId r) const { return regions_[r.index()]; }
  const ParStmt& par_stmt(ParStmtId s) const { return par_stmts_[s.index()]; }

  // Creates the statement with its ParBegin/ParEnd nodes in `parent`.
  ParStmtId add_par_stmt(RegionId parent);
  RegionId add_component(ParStmtId stmt);

  // Smallest parallel statement containing n, i.e. the paper's pfg(n);
  // invalid id if n is top-level. ParBegin/ParEnd nodes of a statement S sit
  // in S's parent region, so pfg(begin(S)) is *not* S.
  ParStmtId pfg(NodeId n) const;

  // Chain of (statement, component-region containing n) pairs from innermost
  // to outermost; empty for top-level nodes.
  struct Enclosing {
    ParStmtId stmt;
    RegionId component;
  };
  std::vector<Enclosing> enclosing_stmts(NodeId n) const;

  // All nodes of region r including nodes of nested parallel statements'
  // components (the paper's Nodes(G') for a component G').
  avector<NodeId> nodes_in_region_recursive(RegionId r) const;

  // Callback-style variant for hot loops: visits the same nodes without
  // materializing a vector per call. Region traversal order matches
  // nodes_in_region_recursive.
  template <class Fn>
  void for_each_node_in_region_recursive(RegionId r, Fn&& fn) const {
    avector<RegionId> stack{r};
    while (!stack.empty()) {
      RegionId cur = stack.back();
      stack.pop_back();
      const Region& reg = regions_[cur.index()];
      for (NodeId n : reg.nodes) fn(n);
      for (ParStmtId s : reg.child_stmts) {
        for (RegionId comp : par_stmts_[s.index()].components) {
          stack.push_back(comp);
        }
      }
    }
  }

  // The unique component entry node: target of the ParBegin edge into r.
  // Derived from edges, so call only once the statement is fully wired.
  NodeId component_entry(RegionId r) const;
  // Nodes of r with an edge to the statement's ParEnd.
  std::vector<NodeId> component_exits(RegionId r) const;

  // Statement nesting depth of a region (root = 0).
  int region_depth(RegionId r) const;

  // --- bookkeeping for transformations --------------------------------------
  // Moves node n in front of `before`: redirects every incoming edge of
  // `before` to n and adds edge n -> before. n must be fresh (no edges) and
  // in the same region as `before`.
  void splice_before(NodeId n, NodeId before);
  // Moves node n right after `after` on all outgoing edges of `after`.
  void splice_after(NodeId n, NodeId after);

 private:
  void bump_version();

  avector<Node> nodes_;
  avector<Edge> edges_;
  avector<Region> regions_;
  avector<ParStmt> par_stmts_;
  std::vector<std::string> var_names_;
  std::unordered_map<std::string, VarId> var_index_;
  NodeId start_;
  NodeId end_;
  std::uint64_t version_ = 0;
};

}  // namespace parcm
