#include "ir/terms.hpp"

#include "ir/printer.hpp"
#include "support/diagnostics.hpp"

namespace parcm {

TermTable::TermTable(const Graph& g) {
  node_term_.resize(g.num_nodes());
  for (NodeId n : g.all_nodes()) {
    const Node& node = g.node(n);
    if (node.kind != NodeKind::kAssign || !node.rhs.is_term()) continue;
    const Term& t = node.rhs.term();
    TermId id = find(t);
    if (!id.valid()) {
      id = TermId(static_cast<TermId::underlying>(terms_.size()));
      terms_.push_back(t);
    }
    node_term_[n.index()] = id;
  }
}

TermId TermTable::find(const Term& t) const {
  for (std::size_t i = 0; i < terms_.size(); ++i) {
    if (terms_[i] == t) return TermId(static_cast<TermId::underlying>(i));
  }
  return TermId();
}

TermId TermTable::find(const Graph& g, const std::string& text) const {
  for (std::size_t i = 0; i < terms_.size(); ++i) {
    if (term_to_string(g, terms_[i]) == text) {
      return TermId(static_cast<TermId::underlying>(i));
    }
  }
  PARCM_CHECK(false, "no term printing as: " + text);
}

std::vector<TermId> TermTable::all() const {
  std::vector<TermId> out;
  out.reserve(terms_.size());
  for (std::size_t i = 0; i < terms_.size(); ++i) {
    out.push_back(TermId(static_cast<TermId::underlying>(i)));
  }
  return out;
}

}  // namespace parcm
