// Structural well-formedness checks for parallel flow graphs.
#pragma once

#include "ir/graph.hpp"
#include "support/diagnostics.hpp"

namespace parcm {

struct ValidateOptions {
  // Require every node reachable from start and the end reachable from every
  // node (the paper's analyses assume terminating paths to e*).
  bool check_reachability = true;
};

// Appends any violations to `sink`; returns sink.ok() on entry && no new
// violations.
bool validate(const Graph& g, DiagnosticSink& sink,
              const ValidateOptions& options = {});

// Convenience wrapper that throws InternalError on violation. Use in tests
// and after transformations.
void validate_or_throw(const Graph& g, const ValidateOptions& options = {});

}  // namespace parcm
