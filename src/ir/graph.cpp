#include "ir/graph.hpp"

#include <algorithm>
#include <atomic>

#include "support/diagnostics.hpp"

namespace parcm {

namespace {
// Process-wide version source: every mutation of any graph draws a fresh
// value, so a version number is issued at most once and equal versions on
// two Graph objects imply one is an unmodified copy of the other.
std::atomic<std::uint64_t> g_graph_version{0};
}  // namespace

void Graph::bump_version() {
  version_ = g_graph_version.fetch_add(1, std::memory_order_relaxed) + 1;
}

const char* node_kind_name(NodeKind kind) {
  switch (kind) {
    case NodeKind::kStart:
      return "start";
    case NodeKind::kEnd:
      return "end";
    case NodeKind::kSkip:
      return "skip";
    case NodeKind::kSynthetic:
      return "synthetic";
    case NodeKind::kAssign:
      return "assign";
    case NodeKind::kTest:
      return "test";
    case NodeKind::kParBegin:
      return "parbegin";
    case NodeKind::kParEnd:
      return "parend";
    case NodeKind::kBarrier:
      return "barrier";
  }
  PARCM_CHECK(false, "unknown NodeKind");
}

Graph::Graph() {
  regions_.push_back(Region{RegionId(0), ParStmtId(), {}, {}});
  start_ = new_node(NodeKind::kStart, root_region());
  end_ = new_node(NodeKind::kEnd, root_region());
}

VarId Graph::intern_var(const std::string& name) {
  auto it = var_index_.find(name);
  if (it != var_index_.end()) return it->second;
  bump_version();
  VarId v(static_cast<VarId::underlying>(var_names_.size()));
  var_names_.push_back(name);
  var_index_.emplace(name, v);
  return v;
}

std::optional<VarId> Graph::find_var(const std::string& name) const {
  auto it = var_index_.find(name);
  if (it == var_index_.end()) return std::nullopt;
  return it->second;
}

const std::string& Graph::var_name(VarId v) const {
  PARCM_CHECK(v.valid() && v.index() < var_names_.size(), "bad VarId");
  return var_names_[v.index()];
}

NodeId Graph::new_node(NodeKind kind, RegionId region) {
  PARCM_CHECK(region.valid() && region.index() < regions_.size(),
              "bad RegionId");
  bump_version();
  NodeId n(static_cast<NodeId::underlying>(nodes_.size()));
  Node node;
  node.kind = kind;
  node.region = region;
  nodes_.push_back(std::move(node));
  regions_[region.index()].nodes.push_back(n);
  return n;
}

NodeId Graph::new_assign(RegionId region, VarId lhs, Rhs rhs) {
  NodeId n = new_node(NodeKind::kAssign, region);
  nodes_[n.index()].lhs = lhs;
  nodes_[n.index()].rhs = std::move(rhs);
  return n;
}

NodeId Graph::new_test(RegionId region, Rhs cond) {
  NodeId n = new_node(NodeKind::kTest, region);
  nodes_[n.index()].cond = std::move(cond);
  return n;
}

EdgeId Graph::add_edge(NodeId from, NodeId to) {
  bump_version();
  EdgeId e(static_cast<EdgeId::underlying>(edges_.size()));
  edges_.push_back(Edge{from, to, true});
  nodes_[from.index()].out_edges.push_back(e);
  nodes_[to.index()].in_edges.push_back(e);
  return e;
}

void Graph::remove_edge(EdgeId e) {
  bump_version();
  Edge& ed = edges_[e.index()];
  PARCM_CHECK(ed.valid, "edge removed twice");
  ed.valid = false;
  auto erase_from = [e](avector<EdgeId>& list) {
    list.erase(std::remove(list.begin(), list.end(), e), list.end());
  };
  erase_from(nodes_[ed.from.index()].out_edges);
  erase_from(nodes_[ed.to.index()].in_edges);
}

avector<NodeId> Graph::preds(NodeId n) const {
  avector<NodeId> out;
  out.reserve(nodes_[n.index()].in_edges.size());
  for (EdgeId e : nodes_[n.index()].in_edges) out.push_back(edges_[e.index()].from);
  return out;
}

avector<NodeId> Graph::succs(NodeId n) const {
  avector<NodeId> out;
  out.reserve(nodes_[n.index()].out_edges.size());
  for (EdgeId e : nodes_[n.index()].out_edges) out.push_back(edges_[e.index()].to);
  return out;
}

std::size_t Graph::in_degree(NodeId n) const {
  return nodes_[n.index()].in_edges.size();
}

std::size_t Graph::out_degree(NodeId n) const {
  return nodes_[n.index()].out_edges.size();
}

ParStmtId Graph::add_par_stmt(RegionId parent) {
  bump_version();
  ParStmtId s(static_cast<ParStmtId::underlying>(par_stmts_.size()));
  NodeId begin = new_node(NodeKind::kParBegin, parent);
  NodeId end = new_node(NodeKind::kParEnd, parent);
  nodes_[begin.index()].par_stmt = s;
  nodes_[end.index()].par_stmt = s;
  par_stmts_.push_back(ParStmt{s, begin, end, parent, {}});
  regions_[parent.index()].child_stmts.push_back(s);
  return s;
}

RegionId Graph::add_component(ParStmtId stmt) {
  bump_version();
  RegionId r(static_cast<RegionId::underlying>(regions_.size()));
  regions_.push_back(Region{r, stmt, {}, {}});
  par_stmts_[stmt.index()].components.push_back(r);
  return r;
}

ParStmtId Graph::pfg(NodeId n) const {
  return regions_[nodes_[n.index()].region.index()].owner;
}

std::vector<Graph::Enclosing> Graph::enclosing_stmts(NodeId n) const {
  std::vector<Enclosing> out;
  RegionId r = nodes_[n.index()].region;
  while (regions_[r.index()].owner.valid()) {
    ParStmtId s = regions_[r.index()].owner;
    out.push_back(Enclosing{s, r});
    r = par_stmts_[s.index()].parent_region;
  }
  return out;
}

avector<NodeId> Graph::nodes_in_region_recursive(RegionId r) const {
  avector<NodeId> out;
  avector<RegionId> stack{r};
  while (!stack.empty()) {
    RegionId cur = stack.back();
    stack.pop_back();
    const Region& reg = regions_[cur.index()];
    out.insert(out.end(), reg.nodes.begin(), reg.nodes.end());
    for (ParStmtId s : reg.child_stmts) {
      for (RegionId comp : par_stmts_[s.index()].components) {
        stack.push_back(comp);
      }
    }
  }
  return out;
}

NodeId Graph::component_entry(RegionId r) const {
  const Region& reg = regions_[r.index()];
  PARCM_CHECK(reg.owner.valid(), "component_entry of non-component region");
  NodeId begin = par_stmts_[reg.owner.index()].begin;
  NodeId entry;
  for (EdgeId e : nodes_[begin.index()].out_edges) {
    NodeId t = edges_[e.index()].to;
    if (nodes_[t.index()].region == r) {
      PARCM_CHECK(!entry.valid() || entry == t,
                  "component has multiple entry nodes");
      entry = t;
    }
  }
  PARCM_CHECK(entry.valid(), "component has no entry node");
  return entry;
}

std::vector<NodeId> Graph::component_exits(RegionId r) const {
  const Region& reg = regions_[r.index()];
  PARCM_CHECK(reg.owner.valid(), "component_exits of non-component region");
  NodeId end = par_stmts_[reg.owner.index()].end;
  std::vector<NodeId> out;
  for (EdgeId e : nodes_[end.index()].in_edges) {
    NodeId f = edges_[e.index()].from;
    if (nodes_[f.index()].region == r) out.push_back(f);
  }
  return out;
}

int Graph::region_depth(RegionId r) const {
  int depth = 0;
  while (regions_[r.index()].owner.valid()) {
    ++depth;
    r = par_stmts_[regions_[r.index()].owner.index()].parent_region;
  }
  return depth;
}

void Graph::splice_before(NodeId n, NodeId before) {
  bump_version();
  Node& fresh = nodes_[n.index()];
  PARCM_CHECK(fresh.in_edges.empty() && fresh.out_edges.empty(),
              "splice_before requires a fresh node");
  PARCM_CHECK(fresh.region == nodes_[before.index()].region,
              "splice_before across regions");
  // Redirect incoming edges of `before` to n.
  avector<EdgeId> incoming = nodes_[before.index()].in_edges;
  for (EdgeId e : incoming) {
    edges_[e.index()].to = n;
    fresh.in_edges.push_back(e);
  }
  nodes_[before.index()].in_edges.clear();
  add_edge(n, before);
}

void Graph::splice_after(NodeId n, NodeId after) {
  bump_version();
  Node& fresh = nodes_[n.index()];
  PARCM_CHECK(fresh.in_edges.empty() && fresh.out_edges.empty(),
              "splice_after requires a fresh node");
  PARCM_CHECK(fresh.region == nodes_[after.index()].region,
              "splice_after across regions");
  avector<EdgeId> outgoing = nodes_[after.index()].out_edges;
  for (EdgeId e : outgoing) {
    edges_[e.index()].from = n;
    fresh.out_edges.push_back(e);
  }
  nodes_[after.index()].out_edges.clear();
  add_edge(after, n);
}

}  // namespace parcm
