// Textual and DOT rendering of parallel flow graphs.
#pragma once

#include <string>

#include "ir/graph.hpp"

namespace parcm {

// Single-statement rendering: "x := a + b", "if (x < y)", "skip", ...
std::string statement_to_string(const Graph& g, NodeId n);
std::string operand_to_string(const Graph& g, const Operand& op);
std::string term_to_string(const Graph& g, const Term& t);
std::string rhs_to_string(const Graph& g, const Rhs& rhs);

// Node-list dump: one line per node with successors, indented by parallel
// nesting depth. Stable output used by golden tests.
std::string to_text(const Graph& g);

// Graphviz rendering with one cluster per parallel statement.
std::string to_dot(const Graph& g, const std::string& title = "parcm");

}  // namespace parcm
