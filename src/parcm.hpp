// parcm — Code Motion for Explicitly Parallel Programs (Knoop & Steffen,
// PPoPP 1999). Umbrella header: includes the full public API.
//
// Typical flow:
//
//   #include "parcm.hpp"
//
//   parcm::Graph g = parcm::lang::compile_or_throw(source);
//   parcm::MotionResult moved = parcm::parallel_code_motion(g);
//   std::cout << parcm::to_text(moved.graph) << parcm::motion_report(moved);
//
// Layers (each usable on its own):
//   ir/         parallel flow graphs, builder, validation, printers
//   lang/       the textual program language (lexer/parser/lowering)
//   dfa/        the hierarchical bitvector framework (PMFP_BV)
//   analyses/   up-/down-safety, earliest/replace predicates, liveness
//   motion/     BCM, LCM, PCM (+ naive baseline), dead-code elimination
//   semantics/  interpreter, enumerator, cost model, product program
//   figures/    the paper's figures as executable programs
//   workload/   random programs and parameterized families
#pragma once

#include "analyses/downsafety.hpp"
#include "analyses/earliest.hpp"
#include "analyses/constprop.hpp"
#include "analyses/liveness.hpp"
#include "analyses/predicates.hpp"
#include "analyses/upsafety.hpp"
#include "dfa/framework.hpp"
#include "dfa/hier_solver.hpp"
#include "dfa/lattice.hpp"
#include "dfa/packed.hpp"
#include "dfa/seq_solver.hpp"
#include "figures/figures.hpp"
#include "ir/builder.hpp"
#include "ir/expr.hpp"
#include "ir/graph.hpp"
#include "ir/printer.hpp"
#include "ir/regions.hpp"
#include "ir/terms.hpp"
#include "ir/transform_utils.hpp"
#include "ir/validate.hpp"
#include "lang/lower.hpp"
#include "lang/parser.hpp"
#include "motion/bcm.hpp"
#include "motion/code_motion.hpp"
#include "motion/dce.hpp"
#include "motion/lcm.hpp"
#include "motion/pipeline.hpp"
#include "motion/pcm.hpp"
#include "motion/report.hpp"
#include "motion/sinking.hpp"
#include "semantics/cost.hpp"
#include "semantics/enumerator.hpp"
#include "semantics/equivalence.hpp"
#include "semantics/interpreter.hpp"
#include "semantics/product.hpp"
#include "semantics/state.hpp"
#include "support/bitvector.hpp"
#include "support/diagnostics.hpp"
#include "support/ids.hpp"
#include "support/rng.hpp"
#include "workload/families.hpp"
#include "workload/randomprog.hpp"
