#include "dfa/hier_solver.hpp"

#include <algorithm>

#include "dfa/region_meta.hpp"
#include "dfa/worklist.hpp"
#include "obs/metrics.hpp"
#include "support/diagnostics.hpp"

namespace parcm {

const char* sync_policy_name(SyncPolicy p) {
  switch (p) {
    case SyncPolicy::kStandard:
      return "standard";
    case SyncPolicy::kUpSafePar:
      return "up-safe-par";
    case SyncPolicy::kDownSafePar:
      return "down-safe-par";
  }
  return "?";
}

BVFun apply_sync_policy(SyncPolicy policy, const std::vector<BVFun>& ends,
                        const std::vector<bool>& destroys) {
  PARCM_CHECK(ends.size() == destroys.size(), "sync policy arity mismatch");
  bool all_id = std::all_of(ends.begin(), ends.end(),
                            [](BVFun f) { return f == BVFun::kId; });
  switch (policy) {
    case SyncPolicy::kStandard: {
      if (std::any_of(ends.begin(), ends.end(),
                      [](BVFun f) { return f == BVFun::kConstFF; })) {
        return BVFun::kConstFF;
      }
      return all_id ? BVFun::kId : BVFun::kConstTT;
    }
    case SyncPolicy::kUpSafePar: {
      // Const_tt iff some component establishes the information and no node
      // of any *sibling* component can destroy it.
      for (std::size_t i = 0; i < ends.size(); ++i) {
        if (ends[i] != BVFun::kConstTT) continue;
        bool sibling_destroys = false;
        for (std::size_t j = 0; j < ends.size(); ++j) {
          if (j != i && destroys[j]) sibling_destroys = true;
        }
        if (!sibling_destroys) return BVFun::kConstTT;
      }
      return all_id ? BVFun::kId : BVFun::kConstFF;
    }
    case SyncPolicy::kDownSafePar: {
      // Const_tt iff *every* component establishes the information and no
      // node of *any* component can destroy it (this is what stops motion
      // out of a single — possibly non-bottleneck — component).
      bool all_tt = std::all_of(ends.begin(), ends.end(),
                                [](BVFun f) { return f == BVFun::kConstTT; });
      bool any_destroys =
          std::any_of(destroys.begin(), destroys.end(), [](bool d) { return d; });
      if (all_tt && !any_destroys) return BVFun::kConstTT;
      return all_id ? BVFun::kId : BVFun::kConstFF;
    }
  }
  PARCM_CHECK(false, "unknown sync policy");
}

namespace {

// Step 1+2: per-statement summaries, innermost first.
class SummaryPass {
 public:
  SummaryPass(const DirectedView& view, const BitProblem& p,
              const std::vector<char>& region_destroy)
      : view_(view),
        g_(view.graph()),
        p_(p),
        region_destroy_(region_destroy) {}

  std::vector<BVFun> run(std::size_t* relaxations) {
    summaries_.assign(g_.num_par_stmts(), BVFun::kId);

    // Innermost first = decreasing region depth of the parent region.
    std::vector<ParStmtId> order;
    for (std::size_t i = 0; i < g_.num_par_stmts(); ++i) {
      order.push_back(ParStmtId(static_cast<ParStmtId::underlying>(i)));
    }
    std::sort(order.begin(), order.end(), [&](ParStmtId a, ParStmtId b) {
      return g_.region_depth(g_.par_stmt(a).parent_region) >
             g_.region_depth(g_.par_stmt(b).parent_region);
    });

    std::vector<BVFun> ends;
    std::vector<bool> destroys;
    for (ParStmtId s : order) {
      const ParStmt& stmt = g_.par_stmt(s);
      ends.clear();
      destroys.clear();
      for (RegionId comp : stmt.components) {
        ends.push_back(component_effect(s, comp, relaxations));
        destroys.push_back(region_destroy_[comp.index()] != 0);
      }
      summaries_[s.index()] = apply_sync_policy(p_.policy, ends, destroys);
    }
    return std::move(summaries_);
  }

 private:
  // Functional MFP over F_B inside one component region: the effect of
  // executing from the statement's directional entry through node n, met
  // over all paths. Nested statements contribute their precomputed summary.
  // The eff table and worklist are indexed by dense component-local ids
  // (member_index) and reused across components.
  BVFun component_effect(ParStmtId s, RegionId comp, std::size_t* relaxations) {
    NodeId stmt_entry = view_.stmt_entry(s);
    std::span<const NodeId> members = view_.region_members_rpo(comp);
    std::size_t k = members.size();

    eff_.assign(k, BVFun::kConstTT);  // top of F_B
    wl_.reset(k, p_.worklist);

    auto in_comp = [&](NodeId m) { return g_.node(m).region == comp; };

    if (p_.worklist == WorklistPolicy::kDenseFifo) {
      // Legacy baseline: every member, in region-creation order.
      for (NodeId n : g_.region(comp).nodes) wl_.push(view_.member_index(n));
    } else {
      // Sparse seeding: only equations violated at the top initialization —
      // members adjacent to the statement entry (the Id meet lowers them),
      // members with a Const_ff local function, and nested exits whose
      // summary is Const_ff.
      for (std::size_t i = 0; i < k; ++i) {
        NodeId n = members[i];
        bool seed;
        if (view_.is_stmt_exit(n)) {
          seed = summaries_[g_.node(n).par_stmt.index()] == BVFun::kConstFF;
        } else if (p_.local[n.index()] == BVFun::kConstFF) {
          seed = true;
        } else {
          seed = false;
          for (NodeId m : view_.dir_preds(n)) {
            if (m == stmt_entry) {
              seed = true;
              break;
            }
          }
        }
        if (seed) wl_.push(i);
      }
    }

    while (!wl_.empty()) {
      std::size_t pos = wl_.pop();
      NodeId n = members[pos];
      ++*relaxations;

      BVFun value;
      if (view_.is_stmt_exit(n)) {
        // Directional exit of a nested statement: skip across it via the
        // nested summary applied to the value at its directional entry.
        ParStmtId nested = g_.node(n).par_stmt;
        value = compose(summaries_[nested.index()],
                        eff_[view_.member_index(view_.stmt_entry(nested))]);
      } else {
        BVFun pre = BVFun::kConstTT;
        for (NodeId m : view_.dir_preds(n)) {
          if (m == stmt_entry) {
            pre = meet(pre, BVFun::kId);
          } else if (in_comp(m)) {
            pre = meet(pre, eff_[view_.member_index(m)]);
          } else {
            PARCM_CHECK(false, "component pred outside region");
          }
        }
        value = compose(p_.local[n.index()], pre);
      }

      if (value != eff_[pos]) {
        eff_[pos] = value;
        for (NodeId m : view_.dir_succs(n)) {
          if (!in_comp(m)) continue;
          if (view_.is_stmt_exit(m) &&
              n != view_.stmt_entry(g_.node(m).par_stmt)) {
            continue;  // nested exits depend only on their entry's value
          }
          wl_.push(view_.member_index(m));
        }
        if (view_.is_stmt_entry(n)) {
          wl_.push(view_.member_index(view_.stmt_exit(g_.node(n).par_stmt)));
        }
      }
    }

    BVFun end_effect = BVFun::kConstTT;
    for (NodeId m : view_.component_exits_dir(comp)) {
      end_effect = meet(end_effect, eff_[view_.member_index(m)]);
    }
    return end_effect;
  }

  const DirectedView& view_;
  const Graph& g_;
  const BitProblem& p_;
  const std::vector<char>& region_destroy_;
  std::vector<BVFun> summaries_;
  // Scratch reused across components (component-local dense indexing).
  std::vector<BVFun> eff_;
  Worklist wl_;
};

}  // namespace

BitResult solve_bit(const Graph& g, const BitProblem& p) {
  PARCM_OBS_TIMER("dfa.solve_bit");
  PARCM_CHECK(p.local.size() == g.num_nodes(), "local functional size");
  PARCM_CHECK(p.destroy.size() == g.num_nodes(), "destroy predicate size");
  DirectedView view(g, p.dir);

  BitResult res;
  res.relaxations = 0;

  // NonDest(n) per Sec. 2, from the once-per-solve region metadata (linear,
  // not quadratic).
  std::vector<char> region_destroy = region_destroy_flags(g, p.destroy);
  std::vector<char> region_nondest = region_nondest_flags(g, region_destroy);
  res.nondest.reserve(g.num_nodes());
  for (NodeId n : g.all_nodes()) {
    res.nondest.push_back(region_nondest[g.node(n).region.index()]);
  }

  // Steps 1 + 2.
  SummaryPass summaries(view, p, region_destroy);
  res.stmt_summary = summaries.run(&res.relaxations);
  std::size_t summary_relaxations = res.relaxations;

  // Step 3: value-level greatest fixpoint of Definition 2.3.
  res.entry.assign(g.num_nodes(), true);
  res.out.assign(g.num_nodes(), true);
  NodeId dir_entry = view.entry();
  res.entry[dir_entry.index()] = p.boundary;
  res.out[dir_entry.index()] =
      apply_fun(p.local[dir_entry.index()], p.boundary);

  Worklist wl;
  wl.reset(g.num_nodes(), p.worklist);
  if (p.worklist == WorklistPolicy::kDenseFifo) {
    for (NodeId n : g.all_nodes()) {
      if (n != dir_entry) wl.push(view.rpo_index(n));
    }
  } else {
    // Boundary wave plus equations violated at the top initialization (see
    // solve_packed; the scalar analogues of "kill bit" and "summary has a
    // Const_ff component" are equality with Const_ff).
    for (NodeId m : view.dir_succs(dir_entry)) {
      if (m == dir_entry) continue;
      if (view.is_stmt_exit(m) &&
          dir_entry != view.stmt_entry(g.node(m).par_stmt)) {
        continue;
      }
      wl.push(view.rpo_index(m));
    }
    for (NodeId n : g.all_nodes()) {
      if (n == dir_entry) continue;
      bool violated = !res.nondest[n.index()] ||
                      p.local[n.index()] == BVFun::kConstFF;
      if (!violated && view.is_stmt_exit(n)) {
        violated = res.stmt_summary[g.node(n).par_stmt.index()] ==
                   BVFun::kConstFF;
      }
      if (violated) wl.push(view.rpo_index(n));
    }
  }

  while (!wl.empty()) {
    NodeId n = view.rpo_node(wl.pop());
    ++res.relaxations;

    bool pre;
    if (view.is_stmt_exit(n)) {
      ParStmtId s = g.node(n).par_stmt;
      pre = apply_fun(res.stmt_summary[s.index()],
                  res.out[view.stmt_entry(s).index()]);
    } else {
      pre = true;
      for (NodeId m : view.dir_preds(n)) pre = pre && res.out[m.index()];
    }
    pre = pre && res.nondest[n.index()];

    bool new_out = apply_fun(p.local[n.index()], pre);
    if (pre == res.entry[n.index()] && new_out == res.out[n.index()]) {
      continue;
    }
    res.entry[n.index()] = pre;
    res.out[n.index()] = new_out;

    for (NodeId m : view.dir_succs(n)) {
      if (m == dir_entry) continue;
      if (view.is_stmt_exit(m) && n != view.stmt_entry(g.node(m).par_stmt)) {
        continue;  // statement exits consume the entry's value, not exits'
      }
      wl.push(view.rpo_index(m));
    }
    if (view.is_stmt_entry(n)) {
      NodeId exit = view.stmt_exit(g.node(n).par_stmt);
      if (exit != dir_entry) wl.push(view.rpo_index(exit));
    }
  }

  PARCM_OBS_COUNT("dfa.hier.solves", 1);
  PARCM_OBS_COUNT("dfa.hier.relaxations", res.relaxations);
  PARCM_OBS_COUNT("dfa.hier.summary_relaxations", summary_relaxations);
  PARCM_OBS_COUNT("dfa.hier.value_relaxations",
                  res.relaxations - summary_relaxations);
  PARCM_OBS_COUNT("dfa.hier.sync_applications", g.num_par_stmts());
  return res;
}

}  // namespace parcm
