#include "dfa/hier_solver.hpp"

#include <algorithm>
#include <deque>

#include "obs/metrics.hpp"
#include "support/diagnostics.hpp"

namespace parcm {

const char* sync_policy_name(SyncPolicy p) {
  switch (p) {
    case SyncPolicy::kStandard:
      return "standard";
    case SyncPolicy::kUpSafePar:
      return "up-safe-par";
    case SyncPolicy::kDownSafePar:
      return "down-safe-par";
  }
  return "?";
}

BVFun apply_sync_policy(SyncPolicy policy, const std::vector<BVFun>& ends,
                        const std::vector<bool>& destroys) {
  PARCM_CHECK(ends.size() == destroys.size(), "sync policy arity mismatch");
  bool all_id = std::all_of(ends.begin(), ends.end(),
                            [](BVFun f) { return f == BVFun::kId; });
  switch (policy) {
    case SyncPolicy::kStandard: {
      if (std::any_of(ends.begin(), ends.end(),
                      [](BVFun f) { return f == BVFun::kConstFF; })) {
        return BVFun::kConstFF;
      }
      return all_id ? BVFun::kId : BVFun::kConstTT;
    }
    case SyncPolicy::kUpSafePar: {
      // Const_tt iff some component establishes the information and no node
      // of any *sibling* component can destroy it.
      for (std::size_t i = 0; i < ends.size(); ++i) {
        if (ends[i] != BVFun::kConstTT) continue;
        bool sibling_destroys = false;
        for (std::size_t j = 0; j < ends.size(); ++j) {
          if (j != i && destroys[j]) sibling_destroys = true;
        }
        if (!sibling_destroys) return BVFun::kConstTT;
      }
      return all_id ? BVFun::kId : BVFun::kConstFF;
    }
    case SyncPolicy::kDownSafePar: {
      // Const_tt iff *every* component establishes the information and no
      // node of *any* component can destroy it (this is what stops motion
      // out of a single — possibly non-bottleneck — component).
      bool all_tt = std::all_of(ends.begin(), ends.end(),
                                [](BVFun f) { return f == BVFun::kConstTT; });
      bool any_destroys =
          std::any_of(destroys.begin(), destroys.end(), [](bool d) { return d; });
      if (all_tt && !any_destroys) return BVFun::kConstTT;
      return all_id ? BVFun::kId : BVFun::kConstFF;
    }
  }
  PARCM_CHECK(false, "unknown sync policy");
}

namespace {

// Step 1+2: per-statement summaries, innermost first.
class SummaryPass {
 public:
  SummaryPass(const DirectedView& view, const BitProblem& p)
      : view_(view), g_(view.graph()), p_(p) {}

  std::vector<BVFun> run(std::size_t* relaxations) {
    summaries_.assign(g_.num_par_stmts(), BVFun::kId);

    // Innermost first = decreasing region depth of the parent region.
    std::vector<ParStmtId> order;
    for (std::size_t i = 0; i < g_.num_par_stmts(); ++i) {
      order.push_back(ParStmtId(static_cast<ParStmtId::underlying>(i)));
    }
    std::sort(order.begin(), order.end(), [&](ParStmtId a, ParStmtId b) {
      return g_.region_depth(g_.par_stmt(a).parent_region) >
             g_.region_depth(g_.par_stmt(b).parent_region);
    });

    for (ParStmtId s : order) {
      const ParStmt& stmt = g_.par_stmt(s);
      std::vector<BVFun> ends;
      std::vector<bool> destroys;
      for (RegionId comp : stmt.components) {
        ends.push_back(component_effect(s, comp, relaxations));
        bool d = false;
        for (NodeId m : g_.nodes_in_region_recursive(comp)) {
          if (p_.destroy[m.index()]) d = true;
        }
        destroys.push_back(d);
      }
      summaries_[s.index()] = apply_sync_policy(p_.policy, ends, destroys);
    }
    return std::move(summaries_);
  }

 private:
  // Functional MFP over F_B inside one component region: the effect of
  // executing from the statement's directional entry through node n, met
  // over all paths. Nested statements contribute their precomputed summary.
  BVFun component_effect(ParStmtId s, RegionId comp, std::size_t* relaxations) {
    NodeId stmt_entry = view_.stmt_entry(s);
    const std::vector<NodeId>& members = g_.region(comp).nodes;

    std::vector<BVFun> eff(g_.num_nodes(), BVFun::kConstTT);  // top of F_B
    std::deque<NodeId> worklist(members.begin(), members.end());
    std::vector<char> queued(g_.num_nodes(), 0);
    for (NodeId n : members) queued[n.index()] = 1;

    auto in_comp = [&](NodeId m) { return g_.node(m).region == comp; };

    while (!worklist.empty()) {
      NodeId n = worklist.front();
      worklist.pop_front();
      queued[n.index()] = 0;
      ++*relaxations;

      BVFun value;
      if (view_.is_stmt_exit(n)) {
        // Directional exit of a nested statement: skip across it via the
        // nested summary applied to the value at its directional entry.
        ParStmtId nested = g_.node(n).par_stmt;
        value = compose(summaries_[nested.index()],
                        eff[view_.stmt_entry(nested).index()]);
      } else {
        BVFun pre = BVFun::kConstTT;
        for (NodeId m : view_.dir_preds(n)) {
          if (m == stmt_entry) {
            pre = meet(pre, BVFun::kId);
          } else if (in_comp(m)) {
            pre = meet(pre, eff[m.index()]);
          } else {
            PARCM_CHECK(false, "component pred outside region");
          }
        }
        value = compose(p_.local[n.index()], pre);
      }

      if (value != eff[n.index()]) {
        eff[n.index()] = value;
        for (NodeId m : view_.dir_succs(n)) {
          if (!in_comp(m)) continue;
          if (view_.is_stmt_exit(m) &&
              n != view_.stmt_entry(g_.node(m).par_stmt)) {
            continue;  // nested exits depend only on their entry's value
          }
          if (!queued[m.index()]) {
            queued[m.index()] = 1;
            worklist.push_back(m);
          }
        }
        if (view_.is_stmt_entry(n)) {
          NodeId exit = view_.stmt_exit(g_.node(n).par_stmt);
          if (!queued[exit.index()]) {
            queued[exit.index()] = 1;
            worklist.push_back(exit);
          }
        }
      }
    }

    BVFun end_effect = BVFun::kConstTT;
    for (NodeId m : view_.component_exits_dir(comp)) {
      end_effect = meet(end_effect, eff[m.index()]);
    }
    return end_effect;
  }

  const DirectedView& view_;
  const Graph& g_;
  const BitProblem& p_;
  std::vector<BVFun> summaries_;
};

}  // namespace

BitResult solve_bit(const Graph& g, const BitProblem& p) {
  PARCM_OBS_TIMER("dfa.solve_bit");
  PARCM_CHECK(p.local.size() == g.num_nodes(), "local functional size");
  PARCM_CHECK(p.destroy.size() == g.num_nodes(), "destroy predicate size");
  DirectedView view(g, p.dir);

  BitResult res;
  res.relaxations = 0;

  // NonDest(n) per Sec. 2: no interleaving predecessor destroys. Computed
  // from per-component aggregated destroy flags (linear, not quadratic).
  std::vector<char> region_destroy(g.num_regions(), 0);
  for (std::size_t ri = 0; ri < g.num_regions(); ++ri) {
    RegionId r(static_cast<RegionId::underlying>(ri));
    for (NodeId n : g.nodes_in_region_recursive(r)) {
      if (p.destroy[n.index()]) region_destroy[ri] = 1;
    }
  }
  res.nondest.assign(g.num_nodes(), true);
  for (NodeId n : g.all_nodes()) {
    for (const Graph::Enclosing& enc : g.enclosing_stmts(n)) {
      for (RegionId comp : g.par_stmt(enc.stmt).components) {
        if (comp != enc.component && region_destroy[comp.index()]) {
          res.nondest[n.index()] = false;
        }
      }
    }
  }

  // Steps 1 + 2.
  SummaryPass summaries(view, p);
  res.stmt_summary = summaries.run(&res.relaxations);
  std::size_t summary_relaxations = res.relaxations;

  // Step 3: value-level greatest fixpoint of Definition 2.3.
  res.entry.assign(g.num_nodes(), true);
  res.out.assign(g.num_nodes(), true);
  NodeId dir_entry = view.entry();
  res.entry[dir_entry.index()] = p.boundary;
  res.out[dir_entry.index()] =
      apply_fun(p.local[dir_entry.index()], p.boundary);

  std::deque<NodeId> worklist;
  std::vector<char> queued(g.num_nodes(), 0);
  for (NodeId n : g.all_nodes()) {
    if (n == dir_entry) continue;
    worklist.push_back(n);
    queued[n.index()] = 1;
  }

  while (!worklist.empty()) {
    NodeId n = worklist.front();
    worklist.pop_front();
    queued[n.index()] = 0;
    ++res.relaxations;

    bool pre;
    if (view.is_stmt_exit(n)) {
      ParStmtId s = g.node(n).par_stmt;
      pre = apply_fun(res.stmt_summary[s.index()],
                  res.out[view.stmt_entry(s).index()]);
    } else {
      pre = true;
      for (NodeId m : view.dir_preds(n)) pre = pre && res.out[m.index()];
    }
    pre = pre && res.nondest[n.index()];

    bool new_out = apply_fun(p.local[n.index()], pre);
    if (pre == res.entry[n.index()] && new_out == res.out[n.index()]) {
      continue;
    }
    res.entry[n.index()] = pre;
    res.out[n.index()] = new_out;

    auto enqueue = [&](NodeId m) {
      if (m != dir_entry && !queued[m.index()]) {
        queued[m.index()] = 1;
        worklist.push_back(m);
      }
    };
    for (NodeId m : view.dir_succs(n)) {
      if (view.is_stmt_exit(m) && n != view.stmt_entry(g.node(m).par_stmt)) {
        continue;  // statement exits consume the entry's value, not exits'
      }
      enqueue(m);
    }
    if (view.is_stmt_entry(n)) {
      enqueue(view.stmt_exit(g.node(n).par_stmt));
    }
  }

  PARCM_OBS_COUNT("dfa.hier.solves", 1);
  PARCM_OBS_COUNT("dfa.hier.relaxations", res.relaxations);
  PARCM_OBS_COUNT("dfa.hier.summary_relaxations", summary_relaxations);
  PARCM_OBS_COUNT("dfa.hier.value_relaxations",
                  res.relaxations - summary_relaxations);
  PARCM_OBS_COUNT("dfa.hier.sync_applications", g.num_par_stmts());
  return res;
}

}  // namespace parcm
