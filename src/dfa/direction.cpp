// direction.hpp is header-only; this TU anchors the module in the build.
#include "dfa/direction.hpp"
