#include "dfa/direction.hpp"

#include <utility>

namespace parcm {

DirectedView::DirectedView(const Graph& g, Direction dir) : g_(&g), dir_(dir) {
  std::size_t n = g.num_nodes();

  // CSR adjacency from the per-node edge lists (removed edges are already
  // absent from those lists).
  auto build = [&](Csr& csr, bool outgoing) {
    csr.offsets.assign(n + 1, 0);
    for (std::size_t i = 0; i < n; ++i) {
      NodeId node(static_cast<NodeId::underlying>(i));
      const avector<EdgeId>& edges =
          outgoing ? g.node(node).out_edges : g.node(node).in_edges;
      csr.offsets[i + 1] =
          csr.offsets[i] + static_cast<std::uint32_t>(edges.size());
    }
    csr.targets.resize(csr.offsets[n]);
    for (std::size_t i = 0; i < n; ++i) {
      NodeId node(static_cast<NodeId::underlying>(i));
      const avector<EdgeId>& edges =
          outgoing ? g.node(node).out_edges : g.node(node).in_edges;
      std::uint32_t slot = csr.offsets[i];
      for (EdgeId e : edges) {
        csr.targets[slot++] = outgoing ? g.edge(e).to : g.edge(e).from;
      }
    }
  };
  build(out_, /*outgoing=*/true);
  build(in_, /*outgoing=*/false);

  // Reverse postorder over dir_succs from the directional entry, iterative
  // DFS with an explicit (node, next-child) stack.
  rpo_index_.assign(n, 0);
  rpo_order_.resize(n);
  std::vector<char> visited(n, 0);
  std::vector<std::pair<NodeId, std::uint32_t>> stack;
  std::vector<NodeId> postorder;
  postorder.reserve(n);
  NodeId root = entry();
  visited[root.index()] = 1;
  stack.emplace_back(root, 0);
  while (!stack.empty()) {
    auto& [node, next] = stack.back();
    std::span<const NodeId> succs = dir_succs(node);
    if (next < succs.size()) {
      NodeId m = succs[next++];
      if (!visited[m.index()]) {
        visited[m.index()] = 1;
        stack.emplace_back(m, 0);
      }
    } else {
      postorder.push_back(node);
      stack.pop_back();
    }
  }
  std::size_t pos = 0;
  for (std::size_t i = postorder.size(); i-- > 0;) {
    rpo_index_[postorder[i].index()] = static_cast<std::uint32_t>(pos);
    rpo_order_[pos++] = postorder[i];
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!visited[i]) {
      NodeId node(static_cast<NodeId::underlying>(i));
      rpo_index_[i] = static_cast<std::uint32_t>(pos);
      rpo_order_[pos++] = node;
    }
  }

  // Region member lists: filling the buckets in RPO order sorts each
  // region's list by rpo_index without an explicit sort.
  std::size_t num_regions = g.num_regions();
  member_offsets_.assign(num_regions + 1, 0);
  for (std::size_t r = 0; r < num_regions; ++r) {
    member_offsets_[r + 1] =
        member_offsets_[r] +
        static_cast<std::uint32_t>(
            g.region(RegionId(static_cast<RegionId::underlying>(r)))
                .nodes.size());
  }
  member_nodes_.resize(member_offsets_[num_regions]);
  member_index_.assign(n, 0);
  std::vector<std::uint32_t> cursor(member_offsets_.begin(),
                                    member_offsets_.end() - 1);
  for (NodeId node : rpo_order_) {
    std::size_t r = g.node(node).region.index();
    std::uint32_t slot = cursor[r]++;
    member_nodes_[slot] = node;
    member_index_[node.index()] = slot - member_offsets_[r];
  }
}

}  // namespace parcm
