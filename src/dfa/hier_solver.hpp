// Scalar hierarchical PMFP_BV solver — the three-step procedure A of [17]
// with this paper's pluggable synchronization step (Secs. 2 and 3.3.3).
//
//  step 1  innermost-first functional MFP over F_B computes, for every
//          parallel component, the meet-over-paths effect of the component
//          from the statement's directional entry to the component's end;
//  step 2  the SyncPolicy combines component end effects (and the
//          destroys-scan over component node sets) into the statement's
//          global semantics [G]*;
//  step 3  a value-level worklist evaluates the equation system of
//          Definition 2.3: ordinary nodes meet their directional
//          predecessors, statement exits apply [G]* to the value entering
//          the statement, and every node meets Const_NonDest.
//
// This per-term solver is the reference implementation; dfa/packed.hpp runs
// the identical algorithm word-parallel over all terms.
#pragma once

#include "dfa/framework.hpp"
#include "ir/regions.hpp"

namespace parcm {

BitResult solve_bit(const Graph& g, const BitProblem& problem);

// Synchronization step in isolation (used by tests; `ends` are the component
// end effects, `destroys` the per-component recursive destroys-scan).
BVFun apply_sync_policy(SyncPolicy policy, const std::vector<BVFun>& ends,
                        const std::vector<bool>& destroys);

}  // namespace parcm
