// Word-parallel hierarchical PMFP_BV solver.
//
// Runs the identical three-step algorithm as dfa/hier_solver.hpp but for all
// terms of the universe simultaneously: local functions are (gen, kill) mask
// pairs, F_B elements are (tt, ff) mask pairs, and every meet / composition
// / transfer is a handful of 64-bit word operations per 64 terms. This is
// the engine behind the paper's "as efficiently as for sequential programs"
// claim; the scalar solver is its differential-testing oracle.
#pragma once

#include "dfa/framework.hpp"
#include "ir/regions.hpp"

namespace parcm {

PackedResult solve_packed(const Graph& g, const PackedProblem& problem);

// Packed synchronization step (exposed for tests): combines per-component
// end effects and destroys-scan masks into the statement summary.
PackedFun apply_sync_policy_packed(SyncPolicy policy, std::size_t num_terms,
                                   const std::vector<PackedFun>& ends,
                                   const std::vector<BitVector>& destroys);

}  // namespace parcm
