// Problem/result types shared by the hierarchical PMFP solvers.
//
// A unidirectional bitvector problem is given by one F_B element per node
// (the local semantic functional), a per-node interference-destruction
// predicate feeding NonDest, a boundary value at the directional entry, and
// a synchronization policy — the only place the paper's refinements differ
// from the original framework of [17]:
//
//   kStandard    the rule of [17]; PMFP coincides with PMOP (Theorem 2.4)
//   kUpSafePar   paper Sec. 3.3.3: exit is Const_tt only if some component
//                delivers Const_tt and no node of a *sibling* component
//                destroys the information
//   kDownSafePar paper Sec. 3.3.3: entry is Const_tt only if *every*
//                component delivers Const_tt and no node of *any* component
//                destroys the information
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dfa/direction.hpp"
#include "dfa/lattice.hpp"
#include "dfa/worklist.hpp"
#include "support/bitvector.hpp"

namespace parcm {

enum class SyncPolicy { kStandard, kUpSafePar, kDownSafePar };

const char* sync_policy_name(SyncPolicy p);

// --- scalar (single-term) problem -------------------------------------------

struct BitProblem {
  Direction dir = Direction::kForward;
  SyncPolicy policy = SyncPolicy::kStandard;
  // Local semantic function of each node (indexed by NodeId).
  std::vector<BVFun> local;
  // True if the node destroys the information when interleaved (the paper's
  // implicit recursive-assignment split lives here: with the split, a node
  // destroys iff it assigns an operand of the term).
  std::vector<bool> destroy;
  // Value at the directional entry node (s* forward, e* backward).
  bool boundary = false;
  // Iteration strategy; kDenseFifo reproduces the legacy seed-everything
  // FIFO baseline for benchmarks and regression tests.
  WorklistPolicy worklist = WorklistPolicy::kSparseRpo;
};

struct BitResult {
  // Value at the directional entry of each node (before its statement in
  // flow direction) and after applying its local function. uint8_t instead
  // of vector<bool> so results have addressable storage.
  std::vector<std::uint8_t> entry;
  std::vector<std::uint8_t> out;
  // NonDest predicate per node (diagnostic; true = no interference).
  std::vector<std::uint8_t> nondest;
  // Synchronized summary of each parallel statement.
  std::vector<BVFun> stmt_summary;
  std::size_t relaxations = 0;
};

// --- packed (all terms at once) problem --------------------------------------

struct PackedProblem {
  Direction dir = Direction::kForward;
  SyncPolicy policy = SyncPolicy::kStandard;
  std::size_t num_terms = 0;
  // Per node: local function as masks. gen bit => Const_tt, kill bit =>
  // Const_ff, neither => Id (masks disjoint).
  std::vector<BitVector> gen;
  std::vector<BitVector> kill;
  // Per node: terms destroyed under interference.
  std::vector<BitVector> destroy;
  BitVector boundary;
  // Iteration strategy; kDenseFifo reproduces the legacy seed-everything
  // FIFO baseline for benchmarks and regression tests.
  WorklistPolicy worklist = WorklistPolicy::kSparseRpo;
};

struct PackedResult {
  std::vector<BitVector> entry;
  std::vector<BitVector> out;
  // Per node: terms with no interfering destruction.
  std::vector<BitVector> nondest;
  std::vector<PackedFun> stmt_summary;
  std::size_t relaxations = 0;
};

// Single-term slice of a packed problem, for the scalar solver (used in
// differential tests: solve_bit on every slice must equal solve_packed).
BitProblem extract_term_problem(const PackedProblem& p, std::size_t term);

}  // namespace parcm
