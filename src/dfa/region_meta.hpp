// Once-per-solve region metadata for the hierarchical solvers.
//
// Both solvers need (a) per-region destroy masks aggregated over the
// region's recursive subtree — the "some node of a sibling component
// destroys" predicate behind NonDest and the synchronization policies — and
// (b) the NonDest value itself, which is constant across all nodes of a
// region. Regions are created parents-first, so one reverse index scan
// folds children into parents and one forward scan pushes NonDest down the
// nesting tree; neither materializes nodes_in_region_recursive.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/graph.hpp"
#include "support/bitvector.hpp"

namespace parcm {

// Packed flavour: one destroy mask per region over the term universe.
std::vector<BitVector> region_destroy_masks(
    const Graph& g, const std::vector<BitVector>& node_destroy,
    std::size_t num_terms);

// Scalar flavour: one flag per region for the single-term solver.
std::vector<char> region_destroy_flags(const Graph& g,
                                       const std::vector<bool>& node_destroy);

// NonDest per region: all-true at the root; a component drops every term
// destroyed somewhere in a sibling component, at every nesting level.
std::vector<BitVector> region_nondest_masks(
    const Graph& g, const std::vector<BitVector>& region_destroy,
    std::size_t num_terms);

std::vector<char> region_nondest_flags(
    const Graph& g, const std::vector<char>& region_destroy);

}  // namespace parcm
