#include "dfa/worklist.hpp"

namespace parcm {

const char* worklist_policy_name(WorklistPolicy p) {
  switch (p) {
    case WorklistPolicy::kSparseRpo:
      return "sparse-rpo";
    case WorklistPolicy::kDenseFifo:
      return "dense-fifo";
  }
  return "?";
}

}  // namespace parcm
