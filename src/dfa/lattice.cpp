#include "dfa/lattice.hpp"

namespace parcm {

const char* bvfun_name(BVFun f) {
  switch (f) {
    case BVFun::kConstFF:
      return "Const_ff";
    case BVFun::kId:
      return "Id";
    case BVFun::kConstTT:
      return "Const_tt";
  }
  return "?";
}

PackedFun PackedFun::composed(const PackedFun& g, const PackedFun& f) {
  // For each term: if g is a constant it wins, otherwise f's value passes
  // through. Derived word-wise from Main Lemma 2.2.
  PackedFun out;
  BitVector pass_tt = f.tt;
  pass_tt.and_not(g.ff);
  out.tt = g.tt | pass_tt;
  BitVector pass_ff = f.ff;
  pass_ff.and_not(g.tt);
  out.ff = g.ff | pass_ff;
  return out;
}

PackedFun PackedFun::met(const PackedFun& f, const PackedFun& g) {
  PackedFun out;
  out.tt = f.tt & g.tt;
  out.ff = f.ff | g.ff;
  return out;
}

}  // namespace parcm
