// Direction abstraction: backward analyses run on the reversed graph, where
// ParEnd plays the role of a parallel statement's entry and ParBegin its
// synchronizing exit. All solvers are written against this view.
#pragma once

#include <vector>

#include "ir/graph.hpp"

namespace parcm {

enum class Direction { kForward, kBackward };

class DirectedView {
 public:
  DirectedView(const Graph& g, Direction dir) : g_(&g), dir_(dir) {}

  const Graph& graph() const { return *g_; }
  Direction direction() const { return dir_; }
  bool forward() const { return dir_ == Direction::kForward; }

  // Analysis information flows from entry() toward exit().
  NodeId entry() const { return forward() ? g_->start() : g_->end(); }
  NodeId exit() const { return forward() ? g_->end() : g_->start(); }

  std::vector<NodeId> dir_preds(NodeId n) const {
    return forward() ? g_->preds(n) : g_->succs(n);
  }
  std::vector<NodeId> dir_succs(NodeId n) const {
    return forward() ? g_->succs(n) : g_->preds(n);
  }

  // The node through which flow enters / leaves a parallel statement.
  NodeId stmt_entry(ParStmtId s) const {
    return forward() ? g_->par_stmt(s).begin : g_->par_stmt(s).end;
  }
  NodeId stmt_exit(ParStmtId s) const {
    return forward() ? g_->par_stmt(s).end : g_->par_stmt(s).begin;
  }

  bool is_stmt_entry(NodeId n) const {
    NodeKind k = g_->node(n).kind;
    return forward() ? k == NodeKind::kParBegin : k == NodeKind::kParEnd;
  }
  bool is_stmt_exit(NodeId n) const {
    NodeKind k = g_->node(n).kind;
    return forward() ? k == NodeKind::kParEnd : k == NodeKind::kParBegin;
  }

  // Nodes of component r adjacent to the statement's entry / exit in flow
  // direction. In the forward view the entry set is the single component
  // entry; backward it is the set of component exits.
  std::vector<NodeId> component_entries(RegionId r) const {
    if (forward()) return {g_->component_entry(r)};
    return g_->component_exits(r);
  }
  std::vector<NodeId> component_exits_dir(RegionId r) const {
    if (forward()) return g_->component_exits(r);
    return {g_->component_entry(r)};
  }

 private:
  const Graph* g_;
  Direction dir_;
};

}  // namespace parcm
