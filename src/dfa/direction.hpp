// Direction abstraction: backward analyses run on the reversed graph, where
// ParEnd plays the role of a parallel statement's entry and ParBegin its
// synchronizing exit. All solvers are written against this view.
//
// Construction precomputes CSR adjacency, a per-direction reverse-postorder
// index, and RPO-sorted region member lists with dense component-local ids,
// so the solvers' inner loops perform no heap allocation and their worklists
// can prioritize by RPO position.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ir/graph.hpp"

namespace parcm {

enum class Direction { kForward, kBackward };

class DirectedView {
 public:
  DirectedView(const Graph& g, Direction dir);

  const Graph& graph() const { return *g_; }
  Direction direction() const { return dir_; }
  bool forward() const { return dir_ == Direction::kForward; }

  // Analysis information flows from entry() toward exit().
  NodeId entry() const { return forward() ? g_->start() : g_->end(); }
  NodeId exit() const { return forward() ? g_->end() : g_->start(); }

  std::span<const NodeId> dir_preds(NodeId n) const {
    return forward() ? adjacent(in_, n) : adjacent(out_, n);
  }
  std::span<const NodeId> dir_succs(NodeId n) const {
    return forward() ? adjacent(out_, n) : adjacent(in_, n);
  }

  // Reverse-postorder position of n: a DFS from entry() over dir_succs
  // numbers every reachable node topologically up to back edges;
  // unreachable nodes follow in creation order. rpo_node(rpo_index(n)) == n.
  std::size_t rpo_index(NodeId n) const { return rpo_index_[n.index()]; }
  NodeId rpo_node(std::size_t pos) const { return rpo_order_[pos]; }
  std::size_t num_nodes() const { return rpo_order_.size(); }

  // Direct members of region r sorted by rpo_index, and each node's dense
  // index within its own region's member list (the component-local id used
  // by the summary pass's eff tables).
  std::span<const NodeId> region_members_rpo(RegionId r) const {
    return {member_nodes_.data() + member_offsets_[r.index()],
            member_offsets_[r.index() + 1] - member_offsets_[r.index()]};
  }
  std::uint32_t member_index(NodeId n) const {
    return member_index_[n.index()];
  }

  // The node through which flow enters / leaves a parallel statement.
  NodeId stmt_entry(ParStmtId s) const {
    return forward() ? g_->par_stmt(s).begin : g_->par_stmt(s).end;
  }
  NodeId stmt_exit(ParStmtId s) const {
    return forward() ? g_->par_stmt(s).end : g_->par_stmt(s).begin;
  }

  bool is_stmt_entry(NodeId n) const {
    NodeKind k = g_->node(n).kind;
    return forward() ? k == NodeKind::kParBegin : k == NodeKind::kParEnd;
  }
  bool is_stmt_exit(NodeId n) const {
    NodeKind k = g_->node(n).kind;
    return forward() ? k == NodeKind::kParEnd : k == NodeKind::kParBegin;
  }

  // Nodes of component r adjacent to the statement's entry / exit in flow
  // direction. In the forward view the entry set is the single component
  // entry; backward it is the set of component exits.
  std::vector<NodeId> component_entries(RegionId r) const {
    if (forward()) return {g_->component_entry(r)};
    return g_->component_exits(r);
  }
  std::vector<NodeId> component_exits_dir(RegionId r) const {
    if (forward()) return g_->component_exits(r);
    return {g_->component_entry(r)};
  }

 private:
  // Compressed adjacency in forward orientation; the view swaps the two
  // tables for backward analyses.
  struct Csr {
    std::vector<std::uint32_t> offsets;  // num_nodes + 1
    std::vector<NodeId> targets;
  };

  std::span<const NodeId> adjacent(const Csr& c, NodeId n) const {
    std::uint32_t begin = c.offsets[n.index()];
    return {c.targets.data() + begin, c.offsets[n.index() + 1] - begin};
  }

  const Graph* g_;
  Direction dir_;
  Csr in_;
  Csr out_;
  std::vector<std::uint32_t> rpo_index_;
  std::vector<NodeId> rpo_order_;
  std::vector<std::uint32_t> member_offsets_;  // num_regions + 1
  std::vector<NodeId> member_nodes_;
  std::vector<std::uint32_t> member_index_;
};

}  // namespace parcm
