#include "dfa/seq_solver.hpp"

#include <deque>

#include "obs/metrics.hpp"
#include "support/diagnostics.hpp"

namespace parcm {

SeqResult solve_seq(const Graph& g, const SeqProblem& p) {
  PARCM_OBS_TIMER("dfa.solve_seq");
  PARCM_CHECK(g.num_par_stmts() == 0,
              "solve_seq requires a sequential graph (use solve_packed)");
  PARCM_CHECK(p.gen.size() == g.num_nodes() && p.kill.size() == g.num_nodes(),
              "seq local functional size");
  DirectedView view(g, p.dir);

  SeqResult res;
  res.entry.assign(g.num_nodes(), BitVector(p.num_terms, true));
  res.out.assign(g.num_nodes(), BitVector(p.num_terms, true));
  NodeId dir_entry = view.entry();
  res.entry[dir_entry.index()] = p.boundary;
  {
    BitVector o = p.boundary;
    o.and_not(p.kill[dir_entry.index()]);
    o |= p.gen[dir_entry.index()];
    res.out[dir_entry.index()] = std::move(o);
  }

  std::deque<NodeId> worklist;
  std::vector<char> queued(g.num_nodes(), 0);
  for (NodeId n : g.all_nodes()) {
    if (n == dir_entry) continue;
    worklist.push_back(n);
    queued[n.index()] = 1;
  }

  while (!worklist.empty()) {
    NodeId n = worklist.front();
    worklist.pop_front();
    queued[n.index()] = 0;
    ++res.relaxations;

    BitVector pre(p.num_terms, true);
    for (NodeId m : view.dir_preds(n)) pre &= res.out[m.index()];

    BitVector new_out = pre;
    new_out.and_not(p.kill[n.index()]);
    new_out |= p.gen[n.index()];

    if (pre == res.entry[n.index()] && new_out == res.out[n.index()]) {
      continue;
    }
    res.entry[n.index()] = std::move(pre);
    res.out[n.index()] = std::move(new_out);
    for (NodeId m : view.dir_succs(n)) {
      if (m != dir_entry && !queued[m.index()]) {
        queued[m.index()] = 1;
        worklist.push_back(m);
      }
    }
  }

  PARCM_OBS_COUNT("dfa.seq.solves", 1);
  PARCM_OBS_COUNT("dfa.seq.relaxations", res.relaxations);
  PARCM_OBS_COUNT("dfa.seq.bit_words",
                  res.relaxations * ((p.num_terms + BitVector::kWordBits - 1) /
                                     BitVector::kWordBits));
  return res;
}

}  // namespace parcm
