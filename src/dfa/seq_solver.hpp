// Plain sequential bitvector MFP solver.
//
// Operates on graphs without parallel statements (sequential CFGs and
// product programs). Serves three roles: the sequential baseline the paper
// compares against ("as efficiently as for sequential ones"), the MOP
// reference on product programs (distributive bitvector => MFP = MOP), and
// an independent oracle for the hierarchical solvers on parallel-free
// graphs.
#pragma once

#include "dfa/framework.hpp"
#include "ir/graph.hpp"

namespace parcm {

struct SeqProblem {
  Direction dir = Direction::kForward;
  std::size_t num_terms = 0;
  std::vector<BitVector> gen;
  std::vector<BitVector> kill;
  BitVector boundary;
};

struct SeqResult {
  std::vector<BitVector> entry;  // value at directional entry of each node
  std::vector<BitVector> out;    // after the node's transfer function
  std::size_t relaxations = 0;
};

// Requires g.num_par_stmts() == 0.
SeqResult solve_seq(const Graph& g, const SeqProblem& problem);

}  // namespace parcm
