#include "dfa/region_meta.hpp"

#include "support/diagnostics.hpp"

namespace parcm {

namespace {

// Region containing region r's owning statement; invalid for the root.
// Component regions are always created after their ancestors, so parent
// indices are strictly smaller than child indices.
RegionId parent_region(const Graph& g, RegionId r) {
  ParStmtId owner = g.region(r).owner;
  if (!owner.valid()) return RegionId();
  return g.par_stmt(owner).parent_region;
}

}  // namespace

std::vector<BitVector> region_destroy_masks(
    const Graph& g, const std::vector<BitVector>& node_destroy,
    std::size_t num_terms) {
  std::vector<BitVector> masks(g.num_regions(), BitVector(num_terms));
  for (NodeId n : g.all_nodes()) {
    masks[g.node(n).region.index()] |= node_destroy[n.index()];
  }
  for (std::size_t ri = g.num_regions(); ri-- > 1;) {
    RegionId r(static_cast<RegionId::underlying>(ri));
    RegionId parent = parent_region(g, r);
    PARCM_CHECK(parent.valid() && parent.index() < ri,
                "region created before its parent");
    masks[parent.index()] |= masks[ri];
  }
  return masks;
}

std::vector<char> region_destroy_flags(const Graph& g,
                                       const std::vector<bool>& node_destroy) {
  std::vector<char> flags(g.num_regions(), 0);
  for (NodeId n : g.all_nodes()) {
    if (node_destroy[n.index()]) flags[g.node(n).region.index()] = 1;
  }
  for (std::size_t ri = g.num_regions(); ri-- > 1;) {
    RegionId r(static_cast<RegionId::underlying>(ri));
    RegionId parent = parent_region(g, r);
    PARCM_CHECK(parent.valid() && parent.index() < ri,
                "region created before its parent");
    flags[parent.index()] = flags[parent.index()] | flags[ri];
  }
  return flags;
}

std::vector<BitVector> region_nondest_masks(
    const Graph& g, const std::vector<BitVector>& region_destroy,
    std::size_t num_terms) {
  std::vector<BitVector> nondest(g.num_regions(), BitVector(num_terms, true));
  // Forward scan: a region's parent precedes it, so the parent's mask is
  // final when the component inherits it and drops its siblings' destroys.
  for (std::size_t ri = 1; ri < g.num_regions(); ++ri) {
    RegionId r(static_cast<RegionId::underlying>(ri));
    ParStmtId owner = g.region(r).owner;
    nondest[ri] = nondest[parent_region(g, r).index()];
    for (RegionId sibling : g.par_stmt(owner).components) {
      if (sibling != r) nondest[ri].and_not(region_destroy[sibling.index()]);
    }
  }
  return nondest;
}

std::vector<char> region_nondest_flags(
    const Graph& g, const std::vector<char>& region_destroy) {
  std::vector<char> nondest(g.num_regions(), 1);
  for (std::size_t ri = 1; ri < g.num_regions(); ++ri) {
    RegionId r(static_cast<RegionId::underlying>(ri));
    ParStmtId owner = g.region(r).owner;
    char nd = nondest[parent_region(g, r).index()];
    for (RegionId sibling : g.par_stmt(owner).components) {
      if (sibling != r && region_destroy[sibling.index()]) nd = 0;
    }
    nondest[ri] = nd;
  }
  return nondest;
}

}  // namespace parcm
