// Worklist strategies for the fixpoint solvers.
//
// The default strategy pairs a reverse-postorder priority order with sparse
// seeding: only equations that are violated at the top initialization enter
// the worklist, and pending nodes are popped in RPO so each wave of changes
// crosses the graph once. The original dense-FIFO strategy (seed everything,
// pop in insertion order) stays selectable as the measured baseline for
// bench_fixpoint_scaling and the relaxation-count regression tests.
#pragma once

#include <cstdint>
#include <vector>

#include "support/bitvector.hpp"

namespace parcm {

enum class WorklistPolicy {
  // Bitset-backed priority worklist popping the smallest pending
  // reverse-postorder position at or after the previous pop (wrapping
  // around for back edges), seeded sparsely.
  kSparseRpo,
  // Legacy behaviour: every node seeded, FIFO pop order.
  kDenseFifo,
};

const char* worklist_policy_name(WorklistPolicy p);

// Deduplicating worklist over positions [0, n). In sparse mode a bitset
// holds the pending set and pop() scans forward from a cursor (one
// find_first_from per pop, word-at-a-time); in FIFO mode a ring buffer of
// capacity n preserves insertion order. reset() reuses the buffers, so a
// solver can run many components through one instance without reallocating.
class Worklist {
 public:
  Worklist() = default;

  void reset(std::size_t n, WorklistPolicy policy) {
    policy_ = policy;
    pending_.resize(n);
    pending_.reset_all();
    count_ = 0;
    cursor_ = 0;
    if (policy_ == WorklistPolicy::kDenseFifo) {
      ring_.resize(n);
      head_ = 0;
      tail_ = 0;
    }
  }

  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }
  WorklistPolicy policy() const { return policy_; }

  void push(std::size_t pos) {
    if (pending_.test(pos)) return;
    pending_.set(pos);
    ++count_;
    if (policy_ == WorklistPolicy::kDenseFifo) {
      ring_[tail_] = static_cast<std::uint32_t>(pos);
      tail_ = tail_ + 1 == ring_.size() ? 0 : tail_ + 1;
    }
  }

  // Precondition: !empty().
  std::size_t pop() {
    std::size_t pos;
    if (policy_ == WorklistPolicy::kDenseFifo) {
      pos = ring_[head_];
      head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
    } else {
      pos = pending_.find_first_from(cursor_);
      if (pos == pending_.size()) pos = pending_.find_first();
      cursor_ = pos + 1;
    }
    pending_.reset(pos);
    --count_;
    return pos;
  }

 private:
  WorklistPolicy policy_ = WorklistPolicy::kSparseRpo;
  BitVector pending_;
  std::size_t count_ = 0;
  std::size_t cursor_ = 0;
  std::vector<std::uint32_t> ring_;
  std::size_t head_ = 0;
  std::size_t tail_ = 0;
};

}  // namespace parcm
