#include "dfa/framework.hpp"

#include "support/diagnostics.hpp"

namespace parcm {

BitProblem extract_term_problem(const PackedProblem& p, std::size_t term) {
  PARCM_CHECK(term < p.num_terms, "term index out of range");
  BitProblem b;
  b.dir = p.dir;
  b.policy = p.policy;
  b.worklist = p.worklist;
  b.boundary = p.boundary.test(term);
  b.local.reserve(p.gen.size());
  b.destroy.reserve(p.gen.size());
  for (std::size_t n = 0; n < p.gen.size(); ++n) {
    if (p.gen[n].test(term)) {
      b.local.push_back(BVFun::kConstTT);
    } else if (p.kill[n].test(term)) {
      b.local.push_back(BVFun::kConstFF);
    } else {
      b.local.push_back(BVFun::kId);
    }
    b.destroy.push_back(p.destroy[n].test(term));
  }
  return b;
}

}  // namespace parcm
