#include "dfa/packed.hpp"

#include <algorithm>

#include "dfa/region_meta.hpp"
#include "dfa/worklist.hpp"
#include "obs/metrics.hpp"
#include "support/diagnostics.hpp"

namespace parcm {

PackedFun apply_sync_policy_packed(SyncPolicy policy, std::size_t num_terms,
                                   const std::vector<PackedFun>& ends,
                                   const std::vector<BitVector>& destroys) {
  PARCM_CHECK(ends.size() == destroys.size(), "sync policy arity mismatch");
  std::size_t k = ends.size();

  // Terms on which *every* component end effect is Id.
  BitVector all_id(num_terms, true);
  for (const PackedFun& f : ends) {
    all_id.and_not(f.tt);
    all_id.and_not(f.ff);
  }

  PackedFun out;
  switch (policy) {
    case SyncPolicy::kStandard: {
      BitVector any_ff(num_terms);
      for (const PackedFun& f : ends) any_ff |= f.ff;
      out.ff = any_ff;
      out.tt = BitVector(num_terms, true);
      out.tt.and_not(any_ff);
      out.tt.and_not(all_id);
      return out;
    }
    case SyncPolicy::kUpSafePar: {
      // tt where some component ends Const_tt and no sibling destroys.
      // others_destroy[i] = OR of destroys[j], j != i: one suffix array plus
      // a running prefix accumulator; the fused and_not forms avoid the
      // per-component `prefix[i] | suffix[i+1]` temporaries.
      std::vector<BitVector> suffix(k + 1, BitVector(num_terms));
      for (std::size_t i = k; i-- > 0;) {
        suffix[i] = suffix[i + 1];
        suffix[i] |= destroys[i];
      }
      BitVector tt(num_terms);
      BitVector prefix_run(num_terms);
      BitVector cand(num_terms);
      for (std::size_t i = 0; i < k; ++i) {
        cand.assign_and_not(ends[i].tt, prefix_run);
        cand.and_not(suffix[i + 1]);
        tt |= cand;
        prefix_run |= destroys[i];
      }
      out.tt = tt;
      out.ff = BitVector(num_terms, true);
      out.ff.and_not(tt);
      out.ff.and_not(all_id);
      return out;
    }
    case SyncPolicy::kDownSafePar: {
      BitVector tt(num_terms, true);
      for (const PackedFun& f : ends) tt &= f.tt;
      for (const BitVector& d : destroys) tt.and_not(d);
      out.tt = tt;
      out.ff = BitVector(num_terms, true);
      out.ff.and_not(tt);
      out.ff.and_not(all_id);
      return out;
    }
  }
  PARCM_CHECK(false, "unknown sync policy");
}

namespace {

class PackedSummaryPass {
 public:
  PackedSummaryPass(const DirectedView& view, const PackedProblem& p,
                    const std::vector<BitVector>& region_destroy)
      : view_(view),
        g_(view.graph()),
        p_(p),
        region_destroy_(region_destroy) {}

  std::vector<PackedFun> run(std::size_t* relaxations, std::size_t* allocs) {
    summaries_.assign(g_.num_par_stmts(), PackedFun::identity(p_.num_terms));
    value_ = PackedFun::identity(p_.num_terms);
    ++*allocs;

    std::vector<ParStmtId> order;
    for (std::size_t i = 0; i < g_.num_par_stmts(); ++i) {
      order.push_back(ParStmtId(static_cast<ParStmtId::underlying>(i)));
    }
    std::sort(order.begin(), order.end(), [&](ParStmtId a, ParStmtId b) {
      return g_.region_depth(g_.par_stmt(a).parent_region) >
             g_.region_depth(g_.par_stmt(b).parent_region);
    });

    std::vector<PackedFun> ends;
    std::vector<BitVector> destroys;
    for (ParStmtId s : order) {
      const ParStmt& stmt = g_.par_stmt(s);
      ends.clear();
      destroys.clear();
      for (RegionId comp : stmt.components) {
        ends.push_back(component_effect(s, comp, relaxations, allocs));
        destroys.push_back(region_destroy_[comp.index()]);
      }
      summaries_[s.index()] =
          apply_sync_policy_packed(p_.policy, p_.num_terms, ends, destroys);
    }
    return std::move(summaries_);
  }

 private:
  // Functional MFP over F_B inside one component region: the effect of
  // executing from the statement's directional entry through node n, met
  // over all paths. Nested statements contribute their precomputed summary.
  // The eff table and worklist are indexed by dense component-local ids
  // (member_index) and reused across components.
  PackedFun component_effect(ParStmtId s, RegionId comp,
                             std::size_t* relaxations, std::size_t* allocs) {
    NodeId stmt_entry = view_.stmt_entry(s);
    std::span<const NodeId> members = view_.region_members_rpo(comp);
    std::size_t k = members.size();

    if (eff_.size() < k) {
      *allocs += k - eff_.size();
      eff_.resize(k);
    }
    for (std::size_t i = 0; i < k; ++i) {
      eff_[i].tt.resize(p_.num_terms);
      eff_[i].ff.resize(p_.num_terms);
      eff_[i].assign_top();
    }
    wl_.reset(k, p_.worklist);

    auto in_comp = [&](NodeId m) { return g_.node(m).region == comp; };

    if (p_.worklist == WorklistPolicy::kDenseFifo) {
      // Legacy baseline: every member, in region-creation order.
      for (NodeId n : g_.region(comp).nodes) wl_.push(view_.member_index(n));
    } else {
      // Sparse seeding: only equations violated at the top initialization —
      // members adjacent to the statement entry (the Id meet lowers them),
      // members whose local function has a Const_ff component, and nested
      // exits whose summary does.
      for (std::size_t i = 0; i < k; ++i) {
        NodeId n = members[i];
        bool seed;
        if (view_.is_stmt_exit(n)) {
          seed = summaries_[g_.node(n).par_stmt.index()].ff.any();
        } else if (p_.kill[n.index()].any()) {
          seed = true;
        } else {
          seed = false;
          for (NodeId m : view_.dir_preds(n)) {
            if (m == stmt_entry) {
              seed = true;
              break;
            }
          }
        }
        if (seed) wl_.push(i);
      }
    }

    while (!wl_.empty()) {
      std::size_t pos = wl_.pop();
      NodeId n = members[pos];
      ++*relaxations;

      if (view_.is_stmt_exit(n)) {
        ParStmtId nested = g_.node(n).par_stmt;
        value_.compose_from(
            summaries_[nested.index()],
            eff_[view_.member_index(view_.stmt_entry(nested))]);
      } else {
        value_.assign_top();
        for (NodeId m : view_.dir_preds(n)) {
          if (m == stmt_entry) {
            value_.meet_with_identity();
          } else if (in_comp(m)) {
            value_.meet_with(eff_[view_.member_index(m)]);
          } else {
            PARCM_CHECK(false, "component pred outside region");
          }
        }
        value_.compose_local(p_.gen[n.index()], p_.kill[n.index()]);
      }

      if (!(value_ == eff_[pos])) {
        eff_[pos] = value_;
        for (NodeId m : view_.dir_succs(n)) {
          if (!in_comp(m)) continue;
          if (view_.is_stmt_exit(m) &&
              n != view_.stmt_entry(g_.node(m).par_stmt)) {
            continue;  // nested exits depend only on their entry's value
          }
          wl_.push(view_.member_index(m));
        }
        if (view_.is_stmt_entry(n)) {
          wl_.push(view_.member_index(view_.stmt_exit(g_.node(n).par_stmt)));
        }
      }
    }

    PackedFun end_effect = PackedFun::top(p_.num_terms);
    for (NodeId m : view_.component_exits_dir(comp)) {
      end_effect.meet_with(eff_[view_.member_index(m)]);
    }
    return end_effect;
  }

  const DirectedView& view_;
  const Graph& g_;
  const PackedProblem& p_;
  const std::vector<BitVector>& region_destroy_;
  std::vector<PackedFun> summaries_;
  // Scratch reused across components (component-local dense indexing).
  std::vector<PackedFun> eff_;
  PackedFun value_;
  Worklist wl_;
};

}  // namespace

PackedResult solve_packed(const Graph& g, const PackedProblem& p) {
  PARCM_OBS_TIMER("dfa.solve_packed");
  PARCM_CHECK(p.gen.size() == g.num_nodes() && p.kill.size() == g.num_nodes(),
              "packed local functional size");
  PARCM_CHECK(p.destroy.size() == g.num_nodes(), "packed destroy size");
  DirectedView view(g, p.dir);

  PackedResult res;
  res.relaxations = 0;
  std::size_t solver_allocs = 0;
  std::size_t seeded = 0;

  // Once-per-solve region metadata: destroy masks aggregated bottom-up over
  // each region's subtree, and NonDest per region (Sec. 2) pushed down the
  // nesting tree — iterating raw interleaving-predecessor lists would be
  // quadratic in the component size, defeating the framework's "as
  // efficiently as sequential" claim.
  std::vector<BitVector> region_destroy =
      region_destroy_masks(g, p.destroy, p.num_terms);
  std::vector<BitVector> region_nondest =
      region_nondest_masks(g, region_destroy, p.num_terms);
  res.nondest.reserve(g.num_nodes());
  for (NodeId n : g.all_nodes()) {
    res.nondest.push_back(region_nondest[g.node(n).region.index()]);
  }

  // Steps 1 + 2.
  PackedSummaryPass summaries(view, p, region_destroy);
  res.stmt_summary = summaries.run(&res.relaxations, &solver_allocs);
  std::size_t summary_relaxations = res.relaxations;

  // Step 3: value-level greatest fixpoint of Definition 2.3.
  res.entry.assign(g.num_nodes(), BitVector(p.num_terms, true));
  res.out.assign(g.num_nodes(), BitVector(p.num_terms, true));
  NodeId dir_entry = view.entry();
  res.entry[dir_entry.index()] = p.boundary;
  {
    BitVector o = p.boundary;
    o.and_not(p.kill[dir_entry.index()]);
    o |= p.gen[dir_entry.index()];
    res.out[dir_entry.index()] = std::move(o);
  }

  Worklist wl;
  wl.reset(g.num_nodes(), p.worklist);
  if (p.worklist == WorklistPolicy::kDenseFifo) {
    // Legacy baseline: seed everything in creation order.
    for (NodeId n : g.all_nodes()) {
      if (n != dir_entry) wl.push(view.rpo_index(n));
    }
  } else {
    // Boundary wave: the entry's value is already below top, so its
    // successors must re-evaluate.
    for (NodeId m : view.dir_succs(dir_entry)) {
      if (m == dir_entry) continue;
      if (view.is_stmt_exit(m) &&
          dir_entry != view.stmt_entry(g.node(m).par_stmt)) {
        continue;
      }
      wl.push(view.rpo_index(m));
    }
    // Equations violated at the top initialization: a node leaves top only
    // through interference (NonDest), a Const_ff local component, or a
    // statement summary with a Const_ff component.
    for (NodeId n : g.all_nodes()) {
      if (n == dir_entry) continue;
      bool violated =
          !res.nondest[n.index()].all() || p.kill[n.index()].any();
      if (!violated && view.is_stmt_exit(n)) {
        violated = res.stmt_summary[g.node(n).par_stmt.index()].ff.any();
      }
      if (violated) wl.push(view.rpo_index(n));
    }
    seeded = wl.size();
  }

  BitVector pre(p.num_terms);
  BitVector new_out(p.num_terms);
  solver_allocs += 2;

  while (!wl.empty()) {
    NodeId n = view.rpo_node(wl.pop());
    ++res.relaxations;

    if (view.is_stmt_exit(n)) {
      ParStmtId s = g.node(n).par_stmt;
      res.stmt_summary[s.index()].apply_into(
          pre, res.out[view.stmt_entry(s).index()]);
    } else {
      pre.set_all();
      for (NodeId m : view.dir_preds(n)) pre &= res.out[m.index()];
    }
    pre &= res.nondest[n.index()];

    new_out.assign_and_not(pre, p.kill[n.index()]);
    new_out |= p.gen[n.index()];

    if (pre == res.entry[n.index()] && new_out == res.out[n.index()]) {
      continue;
    }
    res.entry[n.index()] = pre;
    res.out[n.index()] = new_out;

    for (NodeId m : view.dir_succs(n)) {
      if (m == dir_entry) continue;
      if (view.is_stmt_exit(m) && n != view.stmt_entry(g.node(m).par_stmt)) {
        continue;  // statement exits consume the entry's value, not exits'
      }
      wl.push(view.rpo_index(m));
    }
    if (view.is_stmt_entry(n)) {
      NodeId exit = view.stmt_exit(g.node(n).par_stmt);
      if (exit != dir_entry) wl.push(view.rpo_index(exit));
    }
  }

  PARCM_OBS_COUNT("dfa.packed.solves", 1);
  PARCM_OBS_COUNT("dfa.packed.relaxations", res.relaxations);
  PARCM_OBS_COUNT("dfa.packed.summary_relaxations", summary_relaxations);
  PARCM_OBS_COUNT("dfa.packed.value_relaxations",
                  res.relaxations - summary_relaxations);
  PARCM_OBS_COUNT("dfa.packed.sync_applications", g.num_par_stmts());
  PARCM_OBS_COUNT("dfa.packed.seeded", seeded);
  PARCM_OBS_COUNT("dfa.packed.solver_allocs", solver_allocs);
  // Each relaxation touches every word of the node's term masks.
  PARCM_OBS_COUNT("dfa.packed.bit_words",
                  res.relaxations * ((p.num_terms + BitVector::kWordBits - 1) /
                                     BitVector::kWordBits));
  return res;
}

}  // namespace parcm
