#include "dfa/packed.hpp"

#include <algorithm>
#include <deque>

#include "obs/metrics.hpp"
#include "support/diagnostics.hpp"

namespace parcm {

PackedFun apply_sync_policy_packed(SyncPolicy policy, std::size_t num_terms,
                                   const std::vector<PackedFun>& ends,
                                   const std::vector<BitVector>& destroys) {
  PARCM_CHECK(ends.size() == destroys.size(), "sync policy arity mismatch");
  std::size_t k = ends.size();

  // Terms on which *every* component end effect is Id.
  BitVector all_id(num_terms, true);
  for (const PackedFun& f : ends) {
    all_id.and_not(f.tt);
    all_id.and_not(f.ff);
  }

  PackedFun out;
  switch (policy) {
    case SyncPolicy::kStandard: {
      BitVector any_ff(num_terms);
      for (const PackedFun& f : ends) any_ff |= f.ff;
      out.ff = any_ff;
      out.tt = BitVector(num_terms, true);
      out.tt.and_not(any_ff);
      out.tt.and_not(all_id);
      return out;
    }
    case SyncPolicy::kUpSafePar: {
      // tt where some component ends Const_tt and no sibling destroys.
      // others_destroy[i] = OR of destroys[j], j != i, via prefix/suffix ORs.
      std::vector<BitVector> prefix(k + 1, BitVector(num_terms));
      std::vector<BitVector> suffix(k + 1, BitVector(num_terms));
      for (std::size_t i = 0; i < k; ++i) prefix[i + 1] = prefix[i] | destroys[i];
      for (std::size_t i = k; i-- > 0;) suffix[i] = suffix[i + 1] | destroys[i];
      BitVector tt(num_terms);
      for (std::size_t i = 0; i < k; ++i) {
        BitVector cand = ends[i].tt;
        cand.and_not(prefix[i] | suffix[i + 1]);
        tt |= cand;
      }
      out.tt = tt;
      out.ff = BitVector(num_terms, true);
      out.ff.and_not(tt);
      out.ff.and_not(all_id);
      return out;
    }
    case SyncPolicy::kDownSafePar: {
      BitVector tt(num_terms, true);
      for (const PackedFun& f : ends) tt &= f.tt;
      for (const BitVector& d : destroys) tt.and_not(d);
      out.tt = tt;
      out.ff = BitVector(num_terms, true);
      out.ff.and_not(tt);
      out.ff.and_not(all_id);
      return out;
    }
  }
  PARCM_CHECK(false, "unknown sync policy");
}

namespace {

class PackedSummaryPass {
 public:
  PackedSummaryPass(const DirectedView& view, const PackedProblem& p)
      : view_(view), g_(view.graph()), p_(p) {}

  std::vector<PackedFun> run(std::size_t* relaxations) {
    summaries_.assign(g_.num_par_stmts(), PackedFun::identity(p_.num_terms));

    std::vector<ParStmtId> order;
    for (std::size_t i = 0; i < g_.num_par_stmts(); ++i) {
      order.push_back(ParStmtId(static_cast<ParStmtId::underlying>(i)));
    }
    std::sort(order.begin(), order.end(), [&](ParStmtId a, ParStmtId b) {
      return g_.region_depth(g_.par_stmt(a).parent_region) >
             g_.region_depth(g_.par_stmt(b).parent_region);
    });

    for (ParStmtId s : order) {
      const ParStmt& stmt = g_.par_stmt(s);
      std::vector<PackedFun> ends;
      std::vector<BitVector> destroys;
      for (RegionId comp : stmt.components) {
        ends.push_back(component_effect(s, comp, relaxations));
        BitVector d(p_.num_terms);
        for (NodeId m : g_.nodes_in_region_recursive(comp)) {
          d |= p_.destroy[m.index()];
        }
        destroys.push_back(std::move(d));
      }
      summaries_[s.index()] =
          apply_sync_policy_packed(p_.policy, p_.num_terms, ends, destroys);
    }
    return std::move(summaries_);
  }

 private:
  PackedFun local_fun(NodeId n) const {
    return PackedFun{p_.gen[n.index()], p_.kill[n.index()]};
  }

  PackedFun component_effect(ParStmtId s, RegionId comp,
                             std::size_t* relaxations) {
    NodeId stmt_entry = view_.stmt_entry(s);
    const std::vector<NodeId>& members = g_.region(comp).nodes;

    std::vector<PackedFun> eff(g_.num_nodes(), PackedFun::top(p_.num_terms));
    std::deque<NodeId> worklist(members.begin(), members.end());
    std::vector<char> queued(g_.num_nodes(), 0);
    for (NodeId n : members) queued[n.index()] = 1;

    auto in_comp = [&](NodeId m) { return g_.node(m).region == comp; };

    while (!worklist.empty()) {
      NodeId n = worklist.front();
      worklist.pop_front();
      queued[n.index()] = 0;
      ++*relaxations;

      PackedFun value;
      if (view_.is_stmt_exit(n)) {
        ParStmtId nested = g_.node(n).par_stmt;
        value = PackedFun::composed(summaries_[nested.index()],
                                    eff[view_.stmt_entry(nested).index()]);
      } else {
        PackedFun pre = PackedFun::top(p_.num_terms);
        for (NodeId m : view_.dir_preds(n)) {
          if (m == stmt_entry) {
            pre = PackedFun::met(pre, PackedFun::identity(p_.num_terms));
          } else if (in_comp(m)) {
            pre = PackedFun::met(pre, eff[m.index()]);
          } else {
            PARCM_CHECK(false, "component pred outside region");
          }
        }
        value = PackedFun::composed(local_fun(n), pre);
      }

      if (!(value == eff[n.index()])) {
        eff[n.index()] = value;
        for (NodeId m : view_.dir_succs(n)) {
          if (!in_comp(m)) continue;
          if (view_.is_stmt_exit(m) &&
              n != view_.stmt_entry(g_.node(m).par_stmt)) {
            continue;
          }
          if (!queued[m.index()]) {
            queued[m.index()] = 1;
            worklist.push_back(m);
          }
        }
        if (view_.is_stmt_entry(n)) {
          NodeId exit = view_.stmt_exit(g_.node(n).par_stmt);
          if (!queued[exit.index()]) {
            queued[exit.index()] = 1;
            worklist.push_back(exit);
          }
        }
      }
    }

    PackedFun end_effect = PackedFun::top(p_.num_terms);
    for (NodeId m : view_.component_exits_dir(comp)) {
      end_effect = PackedFun::met(end_effect, eff[m.index()]);
    }
    return end_effect;
  }

  const DirectedView& view_;
  const Graph& g_;
  const PackedProblem& p_;
  std::vector<PackedFun> summaries_;
};

}  // namespace

PackedResult solve_packed(const Graph& g, const PackedProblem& p) {
  PARCM_OBS_TIMER("dfa.solve_packed");
  PARCM_CHECK(p.gen.size() == g.num_nodes() && p.kill.size() == g.num_nodes(),
              "packed local functional size");
  PARCM_CHECK(p.destroy.size() == g.num_nodes(), "packed destroy size");
  DirectedView view(g, p.dir);

  PackedResult res;
  res.relaxations = 0;

  // NonDest via per-component aggregated destroy masks: iterating the raw
  // interleaving-predecessor lists would be quadratic in the component
  // size, defeating the framework's "as efficiently as sequential" claim.
  std::vector<BitVector> region_destroy(g.num_regions(),
                                        BitVector(p.num_terms));
  for (std::size_t ri = 0; ri < g.num_regions(); ++ri) {
    RegionId r(static_cast<RegionId::underlying>(ri));
    for (NodeId n : g.nodes_in_region_recursive(r)) {
      region_destroy[ri] |= p.destroy[n.index()];
    }
  }
  res.nondest.assign(g.num_nodes(), BitVector(p.num_terms, true));
  for (NodeId n : g.all_nodes()) {
    for (const Graph::Enclosing& enc : g.enclosing_stmts(n)) {
      for (RegionId comp : g.par_stmt(enc.stmt).components) {
        if (comp != enc.component) {
          res.nondest[n.index()].and_not(region_destroy[comp.index()]);
        }
      }
    }
  }

  PackedSummaryPass summaries(view, p);
  res.stmt_summary = summaries.run(&res.relaxations);
  std::size_t summary_relaxations = res.relaxations;

  res.entry.assign(g.num_nodes(), BitVector(p.num_terms, true));
  res.out.assign(g.num_nodes(), BitVector(p.num_terms, true));
  NodeId dir_entry = view.entry();
  res.entry[dir_entry.index()] = p.boundary;
  {
    BitVector o = p.boundary;
    o.and_not(p.kill[dir_entry.index()]);
    o |= p.gen[dir_entry.index()];
    res.out[dir_entry.index()] = std::move(o);
  }

  std::deque<NodeId> worklist;
  std::vector<char> queued(g.num_nodes(), 0);
  for (NodeId n : g.all_nodes()) {
    if (n == dir_entry) continue;
    worklist.push_back(n);
    queued[n.index()] = 1;
  }

  while (!worklist.empty()) {
    NodeId n = worklist.front();
    worklist.pop_front();
    queued[n.index()] = 0;
    ++res.relaxations;

    BitVector pre(p.num_terms, true);
    if (view.is_stmt_exit(n)) {
      ParStmtId s = g.node(n).par_stmt;
      pre = res.stmt_summary[s.index()].apply(
          res.out[view.stmt_entry(s).index()]);
    } else {
      for (NodeId m : view.dir_preds(n)) pre &= res.out[m.index()];
    }
    pre &= res.nondest[n.index()];

    BitVector new_out = pre;
    new_out.and_not(p.kill[n.index()]);
    new_out |= p.gen[n.index()];

    if (pre == res.entry[n.index()] && new_out == res.out[n.index()]) {
      continue;
    }
    res.entry[n.index()] = std::move(pre);
    res.out[n.index()] = std::move(new_out);

    auto enqueue = [&](NodeId m) {
      if (m != dir_entry && !queued[m.index()]) {
        queued[m.index()] = 1;
        worklist.push_back(m);
      }
    };
    for (NodeId m : view.dir_succs(n)) {
      if (view.is_stmt_exit(m) && n != view.stmt_entry(g.node(m).par_stmt)) {
        continue;
      }
      enqueue(m);
    }
    if (view.is_stmt_entry(n)) {
      enqueue(view.stmt_exit(g.node(n).par_stmt));
    }
  }

  PARCM_OBS_COUNT("dfa.packed.solves", 1);
  PARCM_OBS_COUNT("dfa.packed.relaxations", res.relaxations);
  PARCM_OBS_COUNT("dfa.packed.summary_relaxations", summary_relaxations);
  PARCM_OBS_COUNT("dfa.packed.value_relaxations",
                  res.relaxations - summary_relaxations);
  PARCM_OBS_COUNT("dfa.packed.sync_applications", g.num_par_stmts());
  // Each relaxation touches every word of the node's term masks.
  PARCM_OBS_COUNT("dfa.packed.bit_words",
                  res.relaxations * ((p.num_terms + BitVector::kWordBits - 1) /
                                     BitVector::kWordBits));
  return res;
}

}  // namespace parcm
