// The semantic domain of unidirectional bitvector problems (paper Sec. 2).
//
// F_B, the monotone Boolean functions B -> B, has exactly three elements:
// Const_ff, Id, Const_tt. Under the pointwise order they form the chain
// Const_ff < Id < Const_tt, closed under composition (Main Lemma 2.2:
// a composition equals its last non-Id factor). PackedFun carries one such
// function per term in two machine-word masks for the word-parallel engine.
#pragma once

#include <cstdint>

#include "support/bitvector.hpp"

namespace parcm {

enum class BVFun : std::uint8_t {
  kConstFF = 0,
  kId = 1,
  kConstTT = 2,
};

const char* bvfun_name(BVFun f);

inline bool apply_fun(BVFun f, bool b) {
  switch (f) {
    case BVFun::kConstFF:
      return false;
    case BVFun::kId:
      return b;
    case BVFun::kConstTT:
      return true;
  }
  return b;
}

// g after f (first f, then g).
inline BVFun compose(BVFun g, BVFun f) { return g == BVFun::kId ? f : g; }

// Pointwise meet; on the chain this is the minimum.
inline BVFun meet(BVFun f, BVFun g) { return f < g ? f : g; }

inline bool is_destructive(BVFun f) { return f == BVFun::kConstFF; }

// One F_B element per term, packed: bit set in tt => Const_tt, bit set in
// ff => Const_ff, neither => Id. The masks are kept disjoint.
struct PackedFun {
  BitVector tt;
  BitVector ff;

  static PackedFun identity(std::size_t num_terms) {
    return PackedFun{BitVector(num_terms), BitVector(num_terms)};
  }
  static PackedFun top(std::size_t num_terms) {
    // Greatest element of F_B^terms: Const_tt everywhere.
    return PackedFun{BitVector(num_terms, true), BitVector(num_terms)};
  }

  // (g after f): tt' = g.tt | (~g.ff & f.tt); ff' = g.ff | (~g.tt & f.ff).
  static PackedFun composed(const PackedFun& g, const PackedFun& f);

  // Pointwise meet on the chain: tt' = f.tt & g.tt; ff' = f.ff | g.ff.
  static PackedFun met(const PackedFun& f, const PackedFun& g);

  // In-place variants for the allocation-free solver kernels. They reuse
  // this object's word storage, so none of them allocates once the masks
  // have reached their final size.

  // this := g after f. Must not alias g or f.
  void compose_from(const PackedFun& g, const PackedFun& f) {
    tt.assign_and_not(f.tt, g.ff);
    tt |= g.tt;
    ff.assign_and_not(f.ff, g.tt);
    ff |= g.ff;
  }

  // this := met(this, o).
  void meet_with(const PackedFun& o) {
    tt &= o.tt;
    ff |= o.ff;
  }

  // this := met(this, identity): on the chain Const_ff < Id < Const_tt the
  // meet with Id lowers every Const_tt to Id and leaves Const_ff alone.
  void meet_with_identity() { tt.reset_all(); }

  // this := {gen, kill} after this (pre-compose a node's local function; gen
  // and kill must be disjoint).
  void compose_local(const BitVector& gen, const BitVector& kill) {
    tt.and_not(kill);
    tt |= gen;
    ff.and_not(gen);
    ff |= kill;
  }

  // this := top (Const_tt on every term). Masks must already be sized.
  void assign_top() {
    tt.set_all();
    ff.reset_all();
  }

  BitVector apply(const BitVector& b) const {
    BitVector out = b;
    out.and_not(ff);
    out |= tt;
    return out;
  }

  // dst := apply(b) without the temporary.
  void apply_into(BitVector& dst, const BitVector& b) const {
    dst.assign_and_not(b, ff);
    dst |= tt;
  }

  BVFun at(std::size_t term) const {
    if (tt.test(term)) return BVFun::kConstTT;
    if (ff.test(term)) return BVFun::kConstFF;
    return BVFun::kId;
  }

  bool operator==(const PackedFun&) const = default;
};

}  // namespace parcm
