// The semantic domain of unidirectional bitvector problems (paper Sec. 2).
//
// F_B, the monotone Boolean functions B -> B, has exactly three elements:
// Const_ff, Id, Const_tt. Under the pointwise order they form the chain
// Const_ff < Id < Const_tt, closed under composition (Main Lemma 2.2:
// a composition equals its last non-Id factor). PackedFun carries one such
// function per term in two machine-word masks for the word-parallel engine.
#pragma once

#include <cstdint>

#include "support/bitvector.hpp"

namespace parcm {

enum class BVFun : std::uint8_t {
  kConstFF = 0,
  kId = 1,
  kConstTT = 2,
};

const char* bvfun_name(BVFun f);

inline bool apply_fun(BVFun f, bool b) {
  switch (f) {
    case BVFun::kConstFF:
      return false;
    case BVFun::kId:
      return b;
    case BVFun::kConstTT:
      return true;
  }
  return b;
}

// g after f (first f, then g).
inline BVFun compose(BVFun g, BVFun f) { return g == BVFun::kId ? f : g; }

// Pointwise meet; on the chain this is the minimum.
inline BVFun meet(BVFun f, BVFun g) { return f < g ? f : g; }

inline bool is_destructive(BVFun f) { return f == BVFun::kConstFF; }

// One F_B element per term, packed: bit set in tt => Const_tt, bit set in
// ff => Const_ff, neither => Id. The masks are kept disjoint.
struct PackedFun {
  BitVector tt;
  BitVector ff;

  static PackedFun identity(std::size_t num_terms) {
    return PackedFun{BitVector(num_terms), BitVector(num_terms)};
  }
  static PackedFun top(std::size_t num_terms) {
    // Greatest element of F_B^terms: Const_tt everywhere.
    return PackedFun{BitVector(num_terms, true), BitVector(num_terms)};
  }

  // (g after f): tt' = g.tt | (~g.ff & f.tt); ff' = g.ff | (~g.tt & f.ff).
  static PackedFun composed(const PackedFun& g, const PackedFun& f);

  // Pointwise meet on the chain: tt' = f.tt & g.tt; ff' = f.ff | g.ff.
  static PackedFun met(const PackedFun& f, const PackedFun& g);

  BitVector apply(const BitVector& b) const {
    BitVector out = b;
    out.and_not(ff);
    out |= tt;
    return out;
  }

  BVFun at(std::size_t term) const {
    if (tt.test(term)) return BVFun::kConstTT;
    if (ff.test(term)) return BVFun::kConstFF;
    return BVFun::kId;
  }

  bool operator==(const PackedFun&) const = default;
};

}  // namespace parcm
