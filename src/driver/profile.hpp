// Corpus cost attribution: the library behind the `parcm_profile` CLI.
//
// A Profile ingests the machine-readable artifacts the rest of the tree
// already emits — `parcm-batch-v1` reports (per-program pass wall times +
// shape hashes), `parcm-metrics-v1` registries (per-pass latency
// histograms, reconstructed exactly from their sparse buckets), and
// `parcm-trace-v1` chrome traces (span durations) — and aggregates cost
// three ways:
//
//   passes    per-pass wall-time distribution (obs::Histogram: p50/p99,
//             share of total attributed time)
//   cohorts   per-shape-family distribution, keyed by the structural hash
//             of the input graph ("all programs shaped like this one"):
//             whole-program wall time per cohort
//   pairs     the (pass, cohort) cross product — the granularity at which
//             a regression is actionable ("sinking got slower, but only on
//             the deep-par-nest family")
//
// `diff` ranks (pass, cohort) pairs of two profiles by regression score
// (mean delta × sample count, i.e. total wall-time lost), so the top entry
// names the pass/cohort responsible for a slowdown. Both the aggregate and
// the diff render as `parcm-profile-v1` JSON, schema-checked like every
// other artifact.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace parcm::obs {
class JsonValue;
}

namespace parcm::driver {

struct ProfileSource {
  std::string path;
  std::string schema;       // detected input schema
  std::uint64_t samples = 0;  // samples this file contributed
};

struct CohortStats {
  std::size_t programs = 0;     // distinct program results seen
  std::string example_id;       // first program id observed in the cohort
  obs::Histogram wall_ns;       // whole-program wall time
};

class Profile {
 public:
  // Detects the schema by content and dispatches; false + *error on an
  // unreadable path, malformed JSON, or an unrecognized schema.
  bool ingest_file(const std::string& path, std::string* error = nullptr);
  bool ingest_json(const obs::JsonValue& doc, const std::string& path,
                   std::string* error = nullptr);

  const std::vector<ProfileSource>& sources() const { return sources_; }
  const std::map<std::string, obs::Histogram>& passes() const {
    return passes_;
  }
  const std::map<std::string, CohortStats>& cohorts() const {
    return cohorts_;
  }
  const std::map<std::pair<std::string, std::string>, obs::Histogram>&
  pairs() const {
    return pairs_;
  }
  bool empty() const {
    return passes_.empty() && cohorts_.empty() && pairs_.empty();
  }

  // `parcm-profile-v1` aggregate document.
  std::string to_json(bool pretty = false) const;
  // Aligned human tables (passes by total time, cohorts, top pairs).
  std::string table(std::size_t top = 20) const;

  struct DiffEntry {
    std::string pass;
    std::string cohort;  // "" for pass-level rows
    std::uint64_t base_count = 0;
    std::uint64_t new_count = 0;
    double base_mean_ns = 0;
    double new_mean_ns = 0;
    double delta_mean_ns = 0;
    // delta_mean × new_count: total nanoseconds gained/lost — the ranking
    // key (descending), so entry 0 is the dominant regression.
    double score = 0;
  };

  struct Diff {
    std::vector<DiffEntry> passes;  // pass-level, ranked by score desc
    std::vector<DiffEntry> pairs;   // (pass, cohort) level, ranked likewise
    // `parcm-profile-v1` document with "kind": "diff".
    std::string to_json(bool pretty = false) const;
    std::string table(std::size_t top = 10) const;
  };

  // Attribution of `after - before`: positive scores are regressions.
  static Diff diff(const Profile& before, const Profile& after);

 private:
  bool ingest_batch(const obs::JsonValue& doc, ProfileSource& src);
  bool ingest_metrics(const obs::JsonValue& doc, ProfileSource& src);
  bool ingest_trace(const obs::JsonValue& doc, ProfileSource& src);
  bool ingest_profile(const obs::JsonValue& doc, ProfileSource& src);

  std::vector<ProfileSource> sources_;
  std::map<std::string, obs::Histogram> passes_;
  std::map<std::string, CohortStats> cohorts_;
  std::map<std::pair<std::string, std::string>, obs::Histogram> pairs_;
};

}  // namespace parcm::driver
