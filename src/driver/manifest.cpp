#include "driver/manifest.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "support/diagnostics.hpp"

namespace parcm::driver {

namespace fs = std::filesystem;

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  PARCM_CHECK(in.good(), "cannot open program file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::size_t file_size_or_zero(const std::string& path) {
  std::error_code ec;
  std::uintmax_t n = fs::file_size(path, ec);
  return ec ? 0 : static_cast<std::size_t>(n);
}

}  // namespace

std::string BatchJob::text() const {
  if (!source.empty()) return source;
  if (load) return load();
  return read_file(path);
}

Manifest Manifest::from_directory(const std::string& dir) {
  PARCM_CHECK(fs::is_directory(dir), "not a directory: " + dir);
  std::vector<std::string> paths;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".parcm") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  Manifest m;
  for (std::string& p : paths) {
    BatchJob job;
    job.id = p;
    job.size_hint = file_size_or_zero(p);
    job.path = std::move(p);
    m.jobs.push_back(std::move(job));
  }
  return m;
}

Manifest Manifest::from_file(const std::string& path) {
  std::ifstream in(path);
  PARCM_CHECK(in.good(), "cannot open manifest: " + path);
  fs::path base = fs::path(path).parent_path();
  Manifest m;
  std::string line;
  while (std::getline(in, line)) {
    std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    // Trim surrounding whitespace.
    std::size_t b = line.find_first_not_of(" \t\r");
    if (b == std::string::npos) continue;
    std::size_t e = line.find_last_not_of(" \t\r");
    std::string entry = line.substr(b, e - b + 1);
    fs::path p(entry);
    if (p.is_relative()) p = base / p;
    BatchJob job;
    job.id = entry;
    job.path = p.string();
    job.size_hint = file_size_or_zero(job.path);
    PARCM_CHECK(fs::is_regular_file(job.path),
                "manifest " + path + " names a missing file: " + job.path);
    m.jobs.push_back(std::move(job));
  }
  return m;
}

Manifest Manifest::from_path(const std::string& path) {
  if (fs::is_directory(path)) return from_directory(path);
  if (fs::path(path).extension() == ".parcm") {
    Manifest m;
    BatchJob job;
    job.id = path;
    job.path = path;
    job.size_hint = file_size_or_zero(path);
    m.jobs.push_back(std::move(job));
    return m;
  }
  return from_file(path);
}

Manifest Manifest::from_sources(
    std::vector<std::pair<std::string, std::string>> sources) {
  Manifest m;
  for (auto& [id, source] : sources) {
    BatchJob job;
    job.id = std::move(id);
    job.size_hint = source.size();
    job.source = std::move(source);
    m.jobs.push_back(std::move(job));
  }
  return m;
}

Manifest Manifest::lazy(std::size_t count, const std::string& prefix,
                        std::function<std::string(std::size_t)> gen) {
  Manifest m;
  m.jobs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    BatchJob job;
    job.id = prefix + "#" + std::to_string(i);
    job.load = [gen, i] { return gen(i); };
    m.jobs.push_back(std::move(job));
  }
  return m;
}

}  // namespace parcm::driver
