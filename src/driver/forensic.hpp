// Forensic failure bundles: self-contained `parcm-forensic-v1` artifacts.
//
// When a program times out, throws, or diverges under the translation-
// validation oracle, the evidence used to evaporate with the worker's
// stack. A forensic bundle freezes it: the unparsed program source, the
// exact pipeline configuration (name, validation budget, timeout box,
// injected-miscompile mode), the RNG seeds that produced the program (fuzz
// campaigns), the flight-recorder snapshot of the failing thread, the
// worker's metrics registry, and the tail of its remark stream — one JSON
// file a human can read and `parcm_opt --replay` can re-execute.
//
// Replay contract: `replay_bundle` rebuilds a single-job batch from the
// bundle's source + config and runs it through the same code path as the
// original (driver::run_batch with the default runner), then compares the
// canonical outcome serialization byte-for-byte. Everything in the outcome
// is deterministic for a fixed (source, config): status and error strings,
// shape hash, node/action counts, remark count, validation verdict, and
// the optimized output text. Wall times, allocation counts and recorder
// contents are diagnostics, never part of the compared outcome.
#pragma once

#include <string>
#include <vector>

#include "driver/driver.hpp"
#include "obs/flight.hpp"

namespace parcm::driver {

// The reproducible slice of a batch/fuzz configuration — everything the
// outcome of one program depends on.
struct ForensicConfig {
  std::string pipeline = "full";
  bool validate = false;
  bool collect_remarks = true;
  bool keep_output = true;
  double timeout_seconds = 0;
  // verify::InjectOptions mode; empty = no injected miscompile.
  std::string inject_mode;
  verify::Budget budget;

  // The BatchOptions that reproduce this config on a one-job batch.
  BatchOptions to_batch_options() const;
  static ForensicConfig from_batch_options(const BatchOptions& options);
};

struct ForensicBundle {
  // "timeout" | "exception" | "oracle-divergence"
  std::string reason;
  // "batch" | "fuzz" — provenance only; replay treats both identically.
  std::string mode = "batch";
  std::string id;
  std::size_t index = 0;
  std::string source;  // unparsed program text
  // Fuzz provenance (0/0 for batch bundles).
  std::uint64_t campaign_seed = 0;
  std::uint64_t program_seed = 0;
  // Free-form context (e.g. the fuzz oracle's escalated verdict summary).
  std::string note;
  ForensicConfig config;
  // The canonical outcome (deterministic ProgramResult fields only).
  ProgramResult outcome;
  std::vector<obs::FlightEvent> flight;
  // Embedded `parcm-metrics-v1` object of the failing worker's registry;
  // empty = omitted.
  std::string metrics_json;
  std::vector<std::string> remark_tail;
};

// Canonical serialization of the deterministic outcome fields — the byte
// string replay compares. Field order is fixed; schedule-dependent fields
// (wall_ms, allocs, pass_wall_ms) are excluded.
std::string outcome_json(const ProgramResult& result);

std::string bundle_to_json(const ForensicBundle& bundle, bool pretty = true);

// "forensic_<index>_<sanitized id>.json" — unique per manifest slot.
std::string bundle_filename(const ForensicBundle& bundle);

// Creates `dir` if needed and writes the bundle there; returns the full
// path, or "" with `*error` set. Never throws.
std::string write_bundle(const ForensicBundle& bundle, const std::string& dir,
                         std::string* error = nullptr);

struct ReplayResult {
  bool loaded = false;  // bundle parsed and replay executed
  bool match = false;   // replayed outcome byte-identical to the recorded one
  std::string error;    // load/parse failure detail
  std::string reason;   // the bundle's failure reason
  std::string id;
  std::string expected;  // canonical outcome recorded in the bundle
  std::string actual;    // canonical outcome of the replay
  ProgramResult result;  // full replayed result (incl. timing diagnostics)
};

// Loads a bundle and re-runs its program from source under the recorded
// config. Deterministic: a matching replay produces `expected == actual`.
ReplayResult replay_bundle(const std::string& path);

}  // namespace parcm::driver
