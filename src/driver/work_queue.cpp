#include "driver/work_queue.hpp"

namespace parcm::driver {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

WorkStealingDeque::WorkStealingDeque(std::size_t capacity)
    : mask_(round_up_pow2(capacity < 2 ? 2 : capacity) - 1),
      buffer_(new std::atomic<std::size_t>[mask_ + 1]) {}

bool WorkStealingDeque::push(std::size_t job) {
  std::int64_t b = bottom_.load(std::memory_order_relaxed);
  std::int64_t t = top_.load(std::memory_order_acquire);
  if (b - t > static_cast<std::int64_t>(mask_)) return false;  // full
  buffer_[static_cast<std::size_t>(b) & mask_].store(
      job, std::memory_order_relaxed);
  // Publish the element before publishing the new bottom.
  bottom_.store(b + 1, std::memory_order_release);
  return true;
}

bool WorkStealingDeque::pop(std::size_t* job) {
  std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
  // The seq_cst store is the heart of the algorithm: it must be ordered
  // against the thief's seq_cst load of bottom_ so owner and thief cannot
  // both claim the last element.
  bottom_.store(b, std::memory_order_seq_cst);
  std::int64_t t = top_.load(std::memory_order_seq_cst);
  if (t > b) {
    // Empty: restore bottom.
    bottom_.store(b + 1, std::memory_order_relaxed);
    return false;
  }
  *job = buffer_[static_cast<std::size_t>(b) & mask_].load(
      std::memory_order_relaxed);
  if (t == b) {
    // Last element: race thieves for it by advancing top.
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      // A thief won; the deque is now empty.
      bottom_.store(b + 1, std::memory_order_relaxed);
      return false;
    }
    bottom_.store(b + 1, std::memory_order_relaxed);
  }
  return true;
}

bool WorkStealingDeque::steal(std::size_t* job) {
  std::int64_t t = top_.load(std::memory_order_seq_cst);
  std::int64_t b = bottom_.load(std::memory_order_seq_cst);
  if (t >= b) return false;  // empty
  std::size_t candidate =
      buffer_[static_cast<std::size_t>(t) & mask_].load(
          std::memory_order_relaxed);
  // Claim the top element; losing the CAS means another thief or the
  // owner's last-element pop got there first.
  if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                    std::memory_order_relaxed)) {
    return false;
  }
  *job = candidate;
  return true;
}

bool WorkStealingDeque::empty() const {
  std::int64_t t = top_.load(std::memory_order_acquire);
  std::int64_t b = bottom_.load(std::memory_order_acquire);
  return t >= b;
}

}  // namespace parcm::driver
