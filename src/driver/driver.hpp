// Sharded batch-compilation engine.
//
// run_batch takes a Manifest of `.parcm` programs and pushes every one
// through the optimization pipeline across a work-stealing thread pool:
//
//   sharding      jobs are sorted by size (big programs first, so the batch
//                 tail stays short) and dealt round-robin into per-worker
//                 Chase–Lev deques; the overflow seeds a global injector
//                 that workers drain when their own deque runs dry, which
//                 bounds in-flight memory (backpressure: a worker holds at
//                 most its initial shard plus one injector draw, and
//                 finished results are merged on drain instead of piling
//                 up per worker).
//   isolation     each worker installs its own obs::Registry, RemarkSink
//                 and AnalysisCache as thread overrides, so programs are
//                 processed with exactly the single-thread observability
//                 semantics — per-program outputs and remark streams are
//                 byte-identical at any --jobs value and any steal order
//                 (tests/test_batch_determinism.cpp holds this).
//   failure       one bad program degrades to a reported failure: internal
//                 errors and parse errors mark the job kFailed, a
//                 per-program deadline unwinds between passes as
//                 kTimedOut, and the batch always completes with balanced
//                 counters (submitted = done + failed + timed_out +
//                 skipped).
//   validation    opt-in --validate runs the differential
//                 translation-validation oracle on every program's output
//                 and records the verdict per program.
//
// The aggregate report carries per-program verdicts, remark counts,
// wall/cpu time, cache hit rates and queue/steal statistics, and renders
// as `parcm-batch-v1` JSON.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "driver/manifest.hpp"
#include "obs/metrics.hpp"
#include "verify/verify.hpp"

namespace parcm {
class Pipeline;
class SharedAnalysisCache;
}

namespace parcm::driver {

// Thrown by deadline checks when a program exceeds its per-job timeout;
// the worker catches it and reports the job as kTimedOut.
struct TimeoutError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

// Per-job view handed to custom runners: the worker index and the job's
// deadline. check_deadline() is the cooperative cancellation point — the
// default runner wires it between pipeline passes.
class WorkerContext {
 public:
  WorkerContext(std::size_t worker,
                std::chrono::steady_clock::time_point deadline, bool has_deadline)
      : worker_(worker), deadline_(deadline), has_deadline_(has_deadline) {}

  std::size_t worker() const { return worker_; }
  bool past_deadline() const {
    return has_deadline_ && std::chrono::steady_clock::now() > deadline_;
  }
  void check_deadline() const {
    if (past_deadline()) throw TimeoutError("per-program timeout exceeded");
  }

 private:
  std::size_t worker_;
  std::chrono::steady_clock::time_point deadline_;
  bool has_deadline_;
};

enum class JobStatus : std::uint8_t {
  kDone,      // pipeline (and validation, when requested) completed
  kFailed,    // parse error or exception; `error` carries the message
  kTimedOut,  // per-program deadline fired
  kSkipped,   // never ran (batch wall limit reached first)
};

const char* job_status_name(JobStatus s);

struct ProgramResult {
  std::size_t index = 0;  // manifest position
  std::string id;
  JobStatus status = JobStatus::kSkipped;
  std::string error;
  double wall_ms = 0.0;
  // operator-new calls made while compiling this program (0 when the
  // counting hook is compiled out; see obs::alloc_hook_active()).
  std::uint64_t allocs = 0;
  // Structural hash of the *input* graph (analyses/cache.hpp): the shape-
  // family cohort key for profile attribution. Content-derived and
  // schedule-independent, so it lives in the deterministic payload; 0 when
  // the program never compiled.
  std::uint64_t shape_hash = 0;
  std::size_t nodes_before = 0;
  std::size_t nodes_after = 0;
  std::size_t actions = 0;       // summed pass actions
  std::size_t remark_count = 0;
  // Per-pass wall clock in pipeline order; timing-only (excluded from the
  // deterministic payload), feeds parcm_profile's per-pass attribution.
  std::vector<std::pair<std::string, double>> pass_wall_ms;
  std::vector<std::string> remarks;  // rendered lines (collect_remarks)
  std::string output;                // optimized program text (keep_output)
  // Differential-validation verdict summary; empty when not validated.
  std::string validation;
  bool validation_ok = true;
};

struct BatchOptions {
  // Worker threads; 0 = std::thread::hardware_concurrency().
  std::size_t jobs = 0;
  // full | pcm | naive | bcm | lcm | sinking | dce | constprop
  std::string pipeline = "full";
  // Run the translation-validation oracle on every program's output.
  bool validate = false;
  verify::Budget budget;
  // Per-program wall-clock box in seconds; 0 = none.
  double timeout_seconds = 0;
  // Whole-batch wall-clock box; jobs not started in time report kSkipped.
  double wall_limit_seconds = 0;
  // Seeds the per-worker shuffle of steal-victim order. Results are
  // independent of this value — the determinism suite varies it to prove
  // that.
  std::uint64_t steal_seed = 0;
  // Results buffered per worker before a merge-on-drain into the report.
  std::size_t drain_batch = 16;
  // Initial deque shard per worker; everything beyond stays in the global
  // injector. 0 = default (32).
  std::size_t shard_cap = 0;
  // Share analysis artifacts across workers through the process-wide
  // structural-key cache (analyses/cache.hpp): a corpus full of repeated
  // shapes builds TermTable/LocalPredicates/InterleavingInfo once per shape
  // instead of once per (program, worker). Purely a rebuild-count
  // optimization — per-program payloads are byte-identical either way (the
  // determinism suite runs both modes, hot and cold).
  bool shared_cache = true;
  // Test hook: when shared_cache is on and this is set, workers install
  // this instance instead of the process-wide one — tests get a private,
  // guaranteed-cold cache without clearing global state.
  SharedAnalysisCache* shared_cache_instance = nullptr;
  bool keep_output = true;
  // Enable the per-worker remark sink and record per-program remark counts.
  bool collect_remarks = true;
  // When non-empty, every timed-out, failed or oracle-diverged program
  // dumps a self-contained `parcm-forensic-v1` bundle into this directory
  // (created on demand). A side channel only: bundles never alter the
  // report payload, and a bundle-write failure never fails the job.
  std::string forensics_dir;
  // Miscompile injection for the default runner (verify::InjectOptions
  // modes: naive | no-privatize | no-parend-export | no-sink). Empty = run
  // the real pipeline. Recorded in forensic bundles so replay reproduces
  // the injected divergence; used by the forensics drills and oracle
  // stress tests.
  std::string inject_mode;
  // Additionally retain every rendered remark line in ProgramResult (the
  // determinism suite diffs these; off by default to bound report size).
  bool keep_remark_lines = false;
  // Test hook, called on the worker right before a job runs (fault and
  // delay injection for the stress suite).
  std::function<void(std::size_t index)> test_before_job;
  // Replaces the default compile+pipeline body. The driver still provides
  // scheduling, per-worker obs isolation, timing, timeout and exception
  // containment; the runner fills the result's payload fields.
  std::function<void(const BatchJob&, std::size_t index, WorkerContext&,
                     ProgramResult&)>
      runner;
};

struct BatchTotals {
  std::size_t submitted = 0;
  std::size_t done = 0;
  std::size_t failed = 0;
  std::size_t timed_out = 0;
  std::size_t skipped = 0;
};

struct QueueStats {
  std::uint64_t own_pops = 0;
  std::uint64_t injector_pops = 0;
  std::uint64_t steals = 0;
  std::uint64_t steal_attempts = 0;
};

struct BatchReport {
  std::vector<ProgramResult> programs;  // manifest order
  BatchTotals totals;
  QueueStats queue;
  std::size_t workers = 0;
  std::string pipeline;
  bool validated = false;
  double wall_ms = 0.0;
  double cpu_ms = 0.0;
  // Merged per-worker registries (merge-on-drain aggregation). Histogram
  // merges are exact, so driver.program_latency_ns / steal_latency_ns /
  // queue_wait_ns summarize the whole batch as if recorded centrally.
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, obs::TimerStat> timers;
  std::map<std::string, obs::Histogram> histograms;
  std::uint64_t allocs_total = 0;
  double allocs_per_program = 0.0;  // allocs_total / done, 0 when none ran
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  // Analyses actually constructed ("analysis.cache.builds"): lookups the
  // thread tier AND the shared tier both missed.
  std::uint64_t cache_builds = 0;
  // Fraction of lookups served without a rebuild by either cache tier:
  // 1 - builds / (hits + misses); 0 when unused. Equals the classic
  // hits / (hits + misses) when the shared tier is off.
  double cache_hit_rate = 0.0;
  std::size_t validation_failures = 0;

  bool ok() const {
    return totals.failed == 0 && totals.timed_out == 0 &&
           validation_failures == 0;
  }

  // One-paragraph human summary.
  std::string summary() const;
  // `parcm-batch-v1` JSON. include_timing=false omits every
  // schedule-dependent field (wall/cpu times, worker count, queue/steal
  // statistics, merged metrics) leaving exactly the per-program payload
  // that is byte-identical across job counts and steal orders.
  std::string to_json(bool pretty = false, bool include_timing = true) const;
};

BatchReport run_batch(const Manifest& manifest, const BatchOptions& options);

// The named pipeline the default runner builds (full | pcm | naive | bcm |
// lcm | sinking | dce | constprop). Shared with forensic replay so a
// bundle's `config.pipeline` string resolves to exactly the batch
// semantics. Throws on unknown names.
Pipeline make_batch_pipeline(const std::string& name);

}  // namespace parcm::driver
