// Batch-compilation manifests: the job list consumed by driver::run_batch.
//
// A manifest is an ordered list of `.parcm` programs, each identified by a
// stable id (the path, or a caller-chosen name for in-memory sources). The
// report preserves manifest order regardless of how jobs were scheduled, so
// batch output is diffable across runs and job counts.
//
// Sources load lazily: a job constructed from a path reads the file on the
// worker that runs it and releases it with the job, so a thousand-program
// corpus never sits in memory at once (bounded in-flight memory).
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace parcm::driver {

struct BatchJob {
  std::string id;
  // Exactly one of the three is the source of truth, checked in this
  // order: inline `source`, a `load` callback (lazy generation — the
  // parallel fuzzer), a file `path`.
  std::string source;
  std::function<std::string()> load;
  std::string path;
  // Scheduling weight: file size or source length. Bigger programs are
  // sharded first so the batch tail is short.
  std::size_t size_hint = 0;

  // Resolves the program text; throws InternalError on an unreadable path.
  std::string text() const;
};

struct Manifest {
  std::vector<BatchJob> jobs;

  std::size_t size() const { return jobs.size(); }
  bool empty() const { return jobs.empty(); }

  // Every *.parcm file directly inside `dir`, sorted by filename.
  static Manifest from_directory(const std::string& dir);
  // One path per line, relative to the manifest file's directory; blank
  // lines and `#` comments are skipped.
  static Manifest from_file(const std::string& path);
  // Directory or manifest file, decided by what `path` points at.
  static Manifest from_path(const std::string& path);
  // In-memory sources: (id, program text) pairs.
  static Manifest from_sources(
      std::vector<std::pair<std::string, std::string>> sources);
  // `count` lazily generated jobs named `<prefix>#<i>`; `gen` is invoked on
  // the worker that runs job i, exactly once.
  static Manifest lazy(std::size_t count, const std::string& prefix,
                       std::function<std::string(std::size_t)> gen);
};

}  // namespace parcm::driver
