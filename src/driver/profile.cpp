#include "driver/profile.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "obs/json.hpp"

namespace parcm::driver {

namespace {

std::uint64_t ms_to_ns(double ms) {
  if (!(ms > 0.0)) return 0;
  return static_cast<std::uint64_t>(std::llround(ms * 1e6));
}

// Shared histogram serialization for profile documents: summary stats plus
// the exact sparse buckets, so profiles re-ingest losslessly. Writes fields
// into the caller's already-open object.
void write_hist_fields(const obs::Histogram& h, obs::JsonWriter& w) {
  w.key("count").value(h.count());
  w.key("sum_ns").value(h.sum());
  w.key("min_ns").value(h.min());
  w.key("max_ns").value(h.max());
  w.key("mean_ns").value(h.mean());
  w.key("p50_ns").value(h.p50());
  w.key("p99_ns").value(h.p99());
  w.key("buckets").begin_array();
  const auto& buckets = h.buckets();
  for (std::size_t b = 0; b < obs::Histogram::kNumBuckets; ++b) {
    if (buckets[b] == 0) continue;
    w.begin_array();
    w.value(b);
    w.value(buckets[b]);
    w.end_array();
  }
  w.end_array();
}

obs::Histogram parse_hist(const obs::JsonValue& v) {
  std::vector<std::pair<std::size_t, std::uint64_t>> buckets;
  for (const obs::JsonValue& pair : v.get_or("buckets").array()) {
    const auto& items = pair.array();
    if (items.size() != 2) continue;
    buckets.emplace_back(static_cast<std::size_t>(items[0].as_u64()),
                         items[1].as_u64());
  }
  // Accept both the profile's *_ns names and the metrics writer's bare
  // names.
  const std::uint64_t sum =
      v.get("sum_ns") ? v.get_or("sum_ns").as_u64() : v.get_or("sum").as_u64();
  const std::uint64_t min =
      v.get("min_ns") ? v.get_or("min_ns").as_u64() : v.get_or("min").as_u64();
  const std::uint64_t max =
      v.get("max_ns") ? v.get_or("max_ns").as_u64() : v.get_or("max").as_u64();
  return obs::Histogram::from_serialized(buckets, sum, min, max);
}

constexpr std::string_view kPassHistPrefix = "pipeline.pass_wall_ns.";

}  // namespace

bool Profile::ingest_file(const std::string& path, std::string* error) {
  std::string parse_error;
  std::optional<obs::JsonValue> doc =
      obs::json_parse_file(path, &parse_error);
  if (!doc.has_value()) {
    if (error) *error = parse_error;
    return false;
  }
  return ingest_json(*doc, path, error);
}

bool Profile::ingest_json(const obs::JsonValue& doc, const std::string& path,
                          std::string* error) {
  if (!doc.is_object()) {
    if (error) *error = path + ": not a JSON object";
    return false;
  }
  ProfileSource src;
  src.path = path;
  src.schema = doc.get_or("schema").as_string();
  bool ok;
  if (src.schema == "parcm-batch-v1") {
    ok = ingest_batch(doc, src);
  } else if (src.schema == "parcm-metrics-v1") {
    ok = ingest_metrics(doc, src);
  } else if (src.schema == "parcm-trace-v1") {
    ok = ingest_trace(doc, src);
  } else if (src.schema == "parcm-profile-v1") {
    ok = ingest_profile(doc, src);
  } else {
    if (error) {
      *error = path + ": unrecognized schema '" + src.schema +
               "' (want parcm-batch-v1 | parcm-metrics-v1 | parcm-trace-v1 "
               "| parcm-profile-v1)";
    }
    return false;
  }
  if (ok) sources_.push_back(std::move(src));
  return ok;
}

bool Profile::ingest_batch(const obs::JsonValue& doc, ProfileSource& src) {
  for (const obs::JsonValue& prog : doc.get_or("programs").array()) {
    const std::string cohort = prog.get_or("shape_hash").as_string();
    const std::string id = prog.get_or("id").as_string();
    std::uint64_t pass_sum_ns = 0;
    for (const obs::JsonValue& entry : prog.get_or("pass_wall_ms").array()) {
      const std::string pass = entry.get_or("pass").as_string();
      if (pass.empty()) continue;
      const std::uint64_t ns = ms_to_ns(entry.get_or("ms").as_double());
      pass_sum_ns += ns;
      passes_[pass].record(ns);
      ++src.samples;
      if (!cohort.empty()) pairs_[{pass, cohort}].record(ns);
    }
    if (!cohort.empty()) {
      CohortStats& stats = cohorts_[cohort];
      ++stats.programs;
      if (stats.example_id.empty()) stats.example_id = id;
      // Prefer the measured whole-program wall clock; a payload-only
      // report (include_timing=false) at least carries the pass sum.
      const std::uint64_t wall = ms_to_ns(prog.get_or("wall_ms").as_double());
      stats.wall_ns.record(wall != 0 ? wall : pass_sum_ns);
      ++src.samples;
    }
  }
  return true;
}

bool Profile::ingest_metrics(const obs::JsonValue& doc, ProfileSource& src) {
  for (const auto& [name, value] : doc.get_or("histograms").members()) {
    if (name.size() <= kPassHistPrefix.size() ||
        name.compare(0, kPassHistPrefix.size(), kPassHistPrefix) != 0) {
      continue;
    }
    obs::Histogram h = parse_hist(value);
    if (h.count() == 0) continue;
    passes_[name.substr(kPassHistPrefix.size())].merge_from(h);
    src.samples += h.count();
  }
  return true;
}

bool Profile::ingest_trace(const obs::JsonValue& doc, ProfileSource& src) {
  for (const obs::JsonValue& ev : doc.get_or("traceEvents").array()) {
    if (ev.get_or("ph").as_string() != "X") continue;
    const std::string name = ev.get_or("name").as_string();
    if (name.empty()) continue;
    // Chrome trace durations are microseconds.
    const std::uint64_t ns = ms_to_ns(ev.get_or("dur").as_double() / 1e3);
    passes_[name].record(ns);
    ++src.samples;
  }
  return true;
}

bool Profile::ingest_profile(const obs::JsonValue& doc, ProfileSource& src) {
  for (const auto& [name, value] : doc.get_or("passes").members()) {
    obs::Histogram h = parse_hist(value);
    if (h.count() == 0) continue;
    passes_[name].merge_from(h);
    src.samples += h.count();
  }
  for (const auto& [cohort, value] : doc.get_or("cohorts").members()) {
    CohortStats& stats = cohorts_[cohort];
    stats.programs +=
        static_cast<std::size_t>(value.get_or("programs").as_u64());
    if (stats.example_id.empty()) {
      stats.example_id = value.get_or("example_id").as_string();
    }
    stats.wall_ns.merge_from(parse_hist(value));
  }
  for (const obs::JsonValue& entry : doc.get_or("pairs").array()) {
    const std::string pass = entry.get_or("pass").as_string();
    const std::string cohort = entry.get_or("cohort").as_string();
    if (pass.empty() || cohort.empty()) continue;
    pairs_[{pass, cohort}].merge_from(parse_hist(entry));
  }
  return true;
}

std::string Profile::to_json(bool pretty) const {
  obs::JsonWriter w(pretty);
  w.begin_object();
  w.key("schema").value("parcm-profile-v1");
  w.key("kind").value("aggregate");
  w.key("sources").begin_array();
  for (const ProfileSource& s : sources_) {
    w.begin_object();
    w.key("path").value(s.path);
    w.key("schema").value(s.schema);
    w.key("samples").value(s.samples);
    w.end_object();
  }
  w.end_array();
  std::uint64_t total_ns = 0;
  for (const auto& [name, h] : passes_) total_ns += h.sum();
  w.key("total_pass_ns").value(total_ns);
  w.key("passes").begin_object();
  for (const auto& [name, h] : passes_) {
    w.key(name);
    w.begin_object();
    write_hist_fields(h, w);
    w.key("share").value(
        total_ns == 0 ? 0.0
                      : static_cast<double>(h.sum()) /
                            static_cast<double>(total_ns));
    w.end_object();
  }
  w.end_object();
  w.key("cohorts").begin_object();
  for (const auto& [cohort, stats] : cohorts_) {
    w.key(cohort);
    w.begin_object();
    w.key("programs").value(stats.programs);
    w.key("example_id").value(stats.example_id);
    write_hist_fields(stats.wall_ns, w);
    w.end_object();
  }
  w.end_object();
  // Pairs ranked by total attributed time, so readers (and the schema
  // test) see the dominant (pass, cohort) first.
  std::vector<const std::pair<const std::pair<std::string, std::string>,
                              obs::Histogram>*> ranked;
  for (const auto& entry : pairs_) ranked.push_back(&entry);
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto* a, const auto* b) {
                     return a->second.sum() > b->second.sum();
                   });
  w.key("pairs").begin_array();
  for (const auto* entry : ranked) {
    const auto& [key, h] = *entry;
    w.begin_object();
    w.key("pass").value(key.first);
    w.key("cohort").value(key.second);
    write_hist_fields(h, w);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

std::string Profile::table(std::size_t top) const {
  std::ostringstream os;
  std::uint64_t total_ns = 0;
  for (const auto& [name, h] : passes_) total_ns += h.sum();
  os << "profile: " << sources_.size() << " source file"
     << (sources_.size() == 1 ? "" : "s") << ", " << passes_.size()
     << " passes, " << cohorts_.size() << " shape cohorts\n";
  char buf[200];
  if (!passes_.empty()) {
    std::size_t width = 4;
    for (const auto& [name, h] : passes_) width = std::max(width, name.size());
    std::vector<std::pair<std::string, const obs::Histogram*>> ranked;
    for (const auto& [name, h] : passes_) ranked.emplace_back(name, &h);
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const auto& a, const auto& b) {
                       return a.second->sum() > b.second->sum();
                     });
    std::snprintf(buf, sizeof(buf), "  %-*s %8s %12s %12s %12s %7s\n",
                  static_cast<int>(width), "pass", "count", "total ms",
                  "p50 us", "p99 us", "share");
    os << buf;
    for (const auto& [name, h] : ranked) {
      std::snprintf(
          buf, sizeof(buf), "  %-*s %8llu %12.3f %12.3f %12.3f %6.1f%%\n",
          static_cast<int>(width), name.c_str(),
          static_cast<unsigned long long>(h->count()),
          static_cast<double>(h->sum()) / 1e6, h->p50() / 1e3,
          h->p99() / 1e3,
          total_ns == 0 ? 0.0 : 100.0 * static_cast<double>(h->sum()) /
                                    static_cast<double>(total_ns));
      os << buf;
    }
  }
  if (!pairs_.empty()) {
    std::vector<const std::pair<const std::pair<std::string, std::string>,
                                obs::Histogram>*> ranked;
    for (const auto& entry : pairs_) ranked.push_back(&entry);
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const auto* a, const auto* b) {
                       return a->second.sum() > b->second.sum();
                     });
    os << "top (pass, cohort) pairs:\n";
    const std::size_t n = std::min(top, ranked.size());
    for (std::size_t i = 0; i < n; ++i) {
      const auto& [key, h] = *ranked[i];
      std::snprintf(buf, sizeof(buf),
                    "  %-14s %-20s %8llu %12.3f ms total %10.3f us p99\n",
                    key.first.c_str(), key.second.c_str(),
                    static_cast<unsigned long long>(h.count()),
                    static_cast<double>(h.sum()) / 1e6, h.p99() / 1e3);
      os << buf;
    }
    if (ranked.size() > n) {
      os << "  (" << ranked.size() - n << " more)\n";
    }
  }
  return os.str();
}

Profile::Diff Profile::diff(const Profile& before, const Profile& after) {
  Diff d;
  auto entry_for = [](const std::string& pass, const std::string& cohort,
                      const obs::Histogram* base,
                      const obs::Histogram* next) {
    DiffEntry e;
    e.pass = pass;
    e.cohort = cohort;
    if (base != nullptr) {
      e.base_count = base->count();
      e.base_mean_ns = base->mean();
    }
    if (next != nullptr) {
      e.new_count = next->count();
      e.new_mean_ns = next->mean();
    }
    e.delta_mean_ns = e.new_mean_ns - e.base_mean_ns;
    const double weight =
        static_cast<double>(e.new_count != 0 ? e.new_count : e.base_count);
    e.score = e.delta_mean_ns * weight;
    return e;
  };

  for (const auto& [name, h] : after.passes_) {
    auto it = before.passes_.find(name);
    d.passes.push_back(entry_for(
        name, "", it == before.passes_.end() ? nullptr : &it->second, &h));
  }
  for (const auto& [name, h] : before.passes_) {
    if (after.passes_.count(name) == 0) {
      d.passes.push_back(entry_for(name, "", &h, nullptr));
    }
  }
  for (const auto& [key, h] : after.pairs_) {
    auto it = before.pairs_.find(key);
    d.pairs.push_back(entry_for(
        key.first, key.second,
        it == before.pairs_.end() ? nullptr : &it->second, &h));
  }
  for (const auto& [key, h] : before.pairs_) {
    if (after.pairs_.count(key) == 0) {
      d.pairs.push_back(entry_for(key.first, key.second, &h, nullptr));
    }
  }
  auto by_score = [](const DiffEntry& a, const DiffEntry& b) {
    return a.score > b.score;
  };
  std::stable_sort(d.passes.begin(), d.passes.end(), by_score);
  std::stable_sort(d.pairs.begin(), d.pairs.end(), by_score);
  return d;
}

namespace {

void write_diff_entries(const std::vector<Profile::DiffEntry>& entries,
                        obs::JsonWriter& w) {
  w.begin_array();
  for (const Profile::DiffEntry& e : entries) {
    w.begin_object();
    w.key("pass").value(e.pass);
    if (!e.cohort.empty()) w.key("cohort").value(e.cohort);
    w.key("base_count").value(e.base_count);
    w.key("new_count").value(e.new_count);
    w.key("base_mean_ns").value(e.base_mean_ns);
    w.key("new_mean_ns").value(e.new_mean_ns);
    w.key("delta_mean_ns").value(e.delta_mean_ns);
    w.key("score").value(e.score);
    w.end_object();
  }
  w.end_array();
}

}  // namespace

std::string Profile::Diff::to_json(bool pretty) const {
  obs::JsonWriter w(pretty);
  w.begin_object();
  w.key("schema").value("parcm-profile-v1");
  w.key("kind").value("diff");
  w.key("passes");
  write_diff_entries(passes, w);
  w.key("pairs");
  write_diff_entries(pairs, w);
  w.end_object();
  return w.take();
}

std::string Profile::Diff::table(std::size_t top) const {
  std::ostringstream os;
  char buf[200];
  auto render = [&](const char* title,
                    const std::vector<DiffEntry>& entries) {
    if (entries.empty()) return;
    os << title << "\n";
    std::size_t width = 4;
    for (const DiffEntry& e : entries) {
      width = std::max(width,
                       e.pass.size() + (e.cohort.empty()
                                            ? 0
                                            : e.cohort.size() + 3));
    }
    const std::size_t n = std::min(top, entries.size());
    for (std::size_t i = 0; i < n; ++i) {
      const DiffEntry& e = entries[i];
      std::string label = e.pass;
      if (!e.cohort.empty()) label += " @ " + e.cohort;
      std::snprintf(buf, sizeof(buf),
                    "  %-*s %12.3f -> %12.3f us mean  %+12.3f us  score %+.3f ms\n",
                    static_cast<int>(width), label.c_str(),
                    e.base_mean_ns / 1e3, e.new_mean_ns / 1e3,
                    e.delta_mean_ns / 1e3, e.score / 1e6);
      os << buf;
    }
    if (entries.size() > n) os << "  (" << entries.size() - n << " more)\n";
  };
  render("pass regressions (score = mean delta x samples):", passes);
  render("(pass, cohort) regressions:", pairs);
  if (passes.empty() && pairs.empty()) os << "(no overlapping samples)\n";
  return os.str();
}

}  // namespace parcm::driver
