#include "driver/driver.hpp"

#include <algorithm>
#include <cstdio>
#include <ctime>
#include <mutex>
#include <numeric>
#include <thread>

#include "analyses/cache.hpp"
#include "analyses/constprop.hpp"
#include "driver/forensic.hpp"
#include "driver/work_queue.hpp"
#include "ir/printer.hpp"
#include "lang/lower.hpp"
#include "motion/bcm.hpp"
#include "motion/dce.hpp"
#include "motion/lcm.hpp"
#include "motion/pcm.hpp"
#include "motion/pipeline.hpp"
#include "motion/sinking.hpp"
#include "obs/alloc.hpp"
#include "obs/flight.hpp"
#include "obs/json.hpp"
#include "obs/remarks.hpp"
#include "obs/trace.hpp"
#include "support/arena.hpp"
#include "support/diagnostics.hpp"
#include "support/rng.hpp"
#include "verify/fuzz.hpp"

namespace parcm::driver {

namespace {

constexpr std::size_t kDefaultShardCap = 32;

Pipeline build_named_pipeline(const std::string& name) {
  return make_batch_pipeline(name);
}

}  // namespace

Pipeline make_batch_pipeline(const std::string& name) {
  if (name == "full") return default_pipeline();
  Pipeline p;
  if (name == "pcm") {
    p.add_pcm().add_validate();
  } else if (name == "naive") {
    p.add("naive", [](const Graph& g, std::size_t* actions) {
      MotionResult r = naive_parallel_code_motion(g);
      *actions = r.num_insertions() + r.num_replacements();
      return std::move(r.graph);
    });
    p.add_validate();
  } else if (name == "bcm") {
    p.add("bcm", [](const Graph& g, std::size_t* actions) {
      MotionResult r = busy_code_motion(g);
      *actions = r.num_insertions() + r.num_replacements();
      return std::move(r.graph);
    });
    p.add_validate();
  } else if (name == "lcm") {
    p.add("lcm", [](const Graph& g, std::size_t* actions) {
      MotionResult r = lazy_code_motion(g);
      *actions = r.num_insertions() + r.num_replacements();
      return std::move(r.graph);
    });
    p.add_validate();
  } else if (name == "sinking") {
    p.add_sinking().add_validate();
  } else if (name == "dce") {
    p.add_dce().add_validate();
  } else if (name == "constprop") {
    p.add_constprop().add_validate();
  } else {
    PARCM_CHECK(false, "unknown batch pipeline: " + name);
  }
  return p;
}

namespace {

void default_runner(const BatchJob& job, WorkerContext& ctx,
                    ProgramResult& result, const BatchOptions& options) {
  // Per-program bump arena for the IR containers (graphs, bit vectors,
  // region trees): everything graph-shaped built below dies before this
  // scope ends, so the whole job's IR churn is reclaimed wholesale here.
  // Result payload fields are plain strings (heap), and everything that
  // outlives the job — cached analysis bundles, shared-cache entries — is
  // built under an ArenaPauseScope by the cache, so nothing arena-backed
  // escapes. Scoped to the default runner only: custom runners own their
  // allocation story.
  Arena arena;
  ArenaScope arena_scope(arena);
  std::string source = job.text();
  ctx.check_deadline();
  DiagnosticSink diag;
  Graph g = lang::compile(source, diag);
  PARCM_CHECK(diag.ok(), "parse failed: " + diag.to_string());
  result.shape_hash = structural_hash(g);
  ctx.check_deadline();
  if (!options.inject_mode.empty()) {
    // Injected-miscompile path (forensics drills, oracle stress): the named
    // pipeline runs through the fuzzer's transformation entry point so one
    // of its safety ablations can be switched on, then faces the oracle
    // directly. Deterministic for fixed (source, pipeline, mode, budget) —
    // a forensic bundle recording this config replays byte-identically.
    verify::InjectOptions inject;
    inject.enabled = true;
    inject.mode = options.inject_mode;
    Graph out = verify::apply_named_pipeline(options.pipeline, g, inject);
    ctx.check_deadline();
    result.nodes_before = g.num_nodes();
    result.nodes_after = out.num_nodes();
    if (options.keep_output) result.output = to_text(out);
    if (options.validate) {
      std::vector<obs::Remark> remarks = obs::remarks().snapshot();
      verify::Verdict verdict =
          verify::differential_check(g, out, options.budget, &remarks);
      ctx.check_deadline();
      result.validation = verdict.summary();
      result.validation_ok = verdict.status != verify::Status::kDiverged;
    }
    return;
  }
  Pipeline pipeline = build_named_pipeline(options.pipeline);
  if (options.validate) pipeline.validate_semantics(options.budget);
  pipeline.on_pass_start(
      [&ctx](const std::string&) { ctx.check_deadline(); });
  PipelineResult res = pipeline.run(g);
  ctx.check_deadline();
  result.nodes_before = g.num_nodes();
  result.nodes_after = res.graph.num_nodes();
  for (const PassStats& ps : res.passes) {
    result.actions += ps.actions;
    result.pass_wall_ms.emplace_back(ps.name, ps.wall_ms);
  }
  if (options.keep_output) result.output = to_text(res.graph);
  if (res.validation.has_value()) {
    result.validation = res.validation->summary();
    result.validation_ok =
        res.validation->status != verify::Status::kDiverged;
  }
}

// Everything the workers share; the aggregation side is mutex-protected
// and touched only on drain.
struct BatchShared {
  const Manifest* manifest = nullptr;
  const BatchOptions* options = nullptr;
  std::vector<std::unique_ptr<WorkStealingDeque>> deques;
  GlobalInjector injector;
  std::chrono::steady_clock::time_point batch_start;

  std::mutex mu;
  BatchReport* report = nullptr;  // programs preallocated, manifest order
  obs::Registry aggregate;
};

struct WorkerTally {
  std::uint64_t own_pops = 0;
  std::uint64_t injector_pops = 0;
  std::uint64_t steals = 0;
  std::uint64_t steal_attempts = 0;
};

void drain_results(BatchShared& shared, std::vector<ProgramResult>& buffer) {
  if (buffer.empty()) return;
  std::lock_guard<std::mutex> lock(shared.mu);
  for (ProgramResult& r : buffer) {
    shared.report->programs[r.index] = std::move(r);
  }
  buffer.clear();
}

void run_one_job(std::size_t index, std::size_t worker, BatchShared& shared,
                 std::vector<ProgramResult>& buffer) {
  const BatchOptions& options = *shared.options;
  const BatchJob& job = shared.manifest->jobs[index];
  ProgramResult result;
  result.index = index;
  result.id = job.id;
  auto start = std::chrono::steady_clock::now();
  bool has_deadline = options.timeout_seconds > 0;
  auto deadline =
      start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(options.timeout_seconds));
  WorkerContext ctx(worker, deadline, has_deadline);
  obs::RemarkSink& sink = obs::remarks();
  sink.clear();
  PARCM_OBS_FLIGHT(obs::FlightKind::kProgramBegin, job.id, index, 0);
  // Helper threads (the safety solver's std::async solves) flush their
  // allocation deltas here, so result.allocs covers the whole job no
  // matter how the solver split its work across threads.
  obs::ForeignAllocSink foreign_allocs;
  obs::ForeignAllocSink* prev_foreign =
      obs::set_thread_foreign_alloc_sink(&foreign_allocs);
  obs::AllocCounterScope alloc_scope;
  try {
    if (options.test_before_job) options.test_before_job(index);
    ctx.check_deadline();
    if (options.runner) {
      options.runner(job, index, ctx, result);
    } else {
      default_runner(job, ctx, result, options);
    }
    result.status = JobStatus::kDone;
  } catch (const TimeoutError&) {
    result.status = JobStatus::kTimedOut;
    result.error = "per-program timeout exceeded";
  } catch (const std::exception& e) {
    result.status = JobStatus::kFailed;
    result.error = e.what();
  } catch (...) {
    result.status = JobStatus::kFailed;
    result.error = "unknown exception";
  }
  if (options.collect_remarks && result.status == JobStatus::kDone) {
    result.remark_count = sink.size();
    if (options.keep_remark_lines) {
      for (const obs::Remark& r : sink.snapshot()) {
        result.remarks.push_back(obs::remark_to_string(r));
      }
    }
  }
  result.allocs = alloc_scope.allocs() + foreign_allocs.allocs();
  obs::set_thread_foreign_alloc_sink(prev_foreign);
  auto latency_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  result.wall_ms = static_cast<double>(latency_ns) / 1e6;
  PARCM_OBS_HIST("driver.program_latency_ns",
                 static_cast<std::uint64_t>(latency_ns));
  PARCM_OBS_FLIGHT(obs::FlightKind::kProgramEnd, job.id, index,
                   static_cast<std::uint64_t>(result.status));
  // Forensics: a side channel strictly after the result is final — bundles
  // never feed back into the payload, and a failed dump never fails the
  // job.
  const bool forensic_worthy =
      result.status == JobStatus::kTimedOut ||
      result.status == JobStatus::kFailed ||
      (result.status == JobStatus::kDone && !result.validation_ok);
  if (!options.forensics_dir.empty() && forensic_worthy) {
    try {
      ForensicBundle bundle;
      bundle.reason = result.status == JobStatus::kTimedOut ? "timeout"
                      : result.status == JobStatus::kFailed
                          ? "exception"
                          : "oracle-divergence";
      bundle.mode = "batch";
      bundle.id = job.id;
      bundle.index = index;
      bundle.source = job.text();
      bundle.config = ForensicConfig::from_batch_options(options);
      bundle.outcome = result;
      bundle.flight = obs::flight().snapshot_current_thread();
      bundle.metrics_json = obs::registry().to_json(false);
      constexpr std::size_t kRemarkTail = 50;
      std::vector<obs::Remark> tail = sink.snapshot();
      const std::size_t first =
          tail.size() > kRemarkTail ? tail.size() - kRemarkTail : 0;
      for (std::size_t i = first; i < tail.size(); ++i) {
        bundle.remark_tail.push_back(obs::remark_to_string(tail[i]));
      }
      write_bundle(bundle, options.forensics_dir);
    } catch (...) {
      // An unreadable source or full disk must not take the batch down.
    }
  }
  buffer.push_back(std::move(result));
  if (buffer.size() >= std::max<std::size_t>(1, options.drain_batch)) {
    drain_results(shared, buffer);
  }
}

// Nanoseconds since `since`, for histogram samples.
std::uint64_t ns_since(std::chrono::steady_clock::time_point since) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

// The pop/steal/run loop, split out so its "driver.worker" span and timer
// close while the worker's thread overrides are still installed.
void worker_loop(std::size_t worker, BatchShared& shared,
                 const std::vector<std::size_t>& victims,
                 std::vector<ProgramResult>& buffer, WorkerTally& tally) {
  const BatchOptions& options = *shared.options;
  WorkStealingDeque& own = *shared.deques[worker];
  // One span covering the worker's whole lifetime, so every worker track
  // is populated even when all of its jobs were stolen out from under it.
  PARCM_OBS_TIMER("driver.worker");
  // Time from starting to look for work until a job is in hand; survives
  // failed steal sweeps (the yield-and-retry path keeps accumulating).
  auto seek_start = std::chrono::steady_clock::now();
  for (;;) {
    if (options.wall_limit_seconds > 0) {
      std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - shared.batch_start;
      if (elapsed.count() >= options.wall_limit_seconds) break;
    }
    std::size_t job = 0;
    if (own.pop(&job)) {
      ++tally.own_pops;
    } else if (shared.injector.pop(&job)) {
      ++tally.injector_pops;
    } else {
      auto sweep_start = std::chrono::steady_clock::now();
      bool stole = false, contended = false;
      for (std::size_t v : victims) {
        ++tally.steal_attempts;
        if (shared.deques[v]->steal(&job)) {
          ++tally.steals;
          stole = true;
          break;
        }
        // A lost CAS (as opposed to an empty deque) means work may remain;
        // sweep again instead of exiting.
        if (!shared.deques[v]->empty()) contended = true;
      }
      if (!stole) {
        if (!contended && shared.injector.exhausted()) break;
        std::this_thread::yield();
        continue;
      }
      PARCM_OBS_HIST("driver.steal_latency_ns", ns_since(sweep_start));
    }
    PARCM_OBS_HIST("driver.queue_wait_ns", ns_since(seek_start));
    run_one_job(job, worker, shared, buffer);
    seek_start = std::chrono::steady_clock::now();
  }
}

void worker_main(std::size_t worker, BatchShared& shared) {
  const BatchOptions& options = *shared.options;

  // Per-worker observability and analysis state: programs run with exactly
  // the single-thread semantics, merged on drain.
  obs::Registry registry;
  obs::RemarkSink sink;
  sink.set_enabled(options.collect_remarks);
  AnalysisCache cache;
  obs::Registry* prev_registry = obs::set_thread_registry(&registry);
  obs::RemarkSink* prev_sink = obs::set_thread_remark_sink(&sink);
  AnalysisCache* prev_cache = set_thread_analysis_cache(&cache);
  SharedAnalysisCache* shared_tier = nullptr;
  if (options.shared_cache) {
    shared_tier = options.shared_cache_instance != nullptr
                      ? options.shared_cache_instance
                      : &process_shared_analysis_cache();
  }
  SharedAnalysisCache* prev_shared =
      set_thread_shared_analysis_cache(shared_tier);

  // Deterministically shuffled steal-victim order (worker-level shuffle;
  // outputs must not depend on it).
  std::vector<std::size_t> victims;
  for (std::size_t v = 0; v < shared.deques.size(); ++v) {
    if (v != worker) victims.push_back(v);
  }
  Rng rng(options.steal_seed * 0x9E3779B97F4A7C15ull + worker + 1);
  for (std::size_t i = victims.size(); i > 1; --i) {
    std::swap(victims[i - 1], victims[rng.below(i)]);
  }

  std::vector<ProgramResult> buffer;
  WorkerTally tally;
  {
    // Named trace track for this worker (no-op while tracing is disabled);
    // the async safety-solve helpers land on "worker-N/async". The sink
    // must have been enabled before run_batch spawned us.
    obs::TraceThreadScope trace_scope("worker-" + std::to_string(worker));
    worker_loop(worker, shared, victims, buffer, tally);
  }

  drain_results(shared, buffer);
  set_thread_shared_analysis_cache(prev_shared);
  set_thread_analysis_cache(prev_cache);
  obs::set_thread_remark_sink(prev_sink);
  obs::set_thread_registry(prev_registry);
  {
    std::lock_guard<std::mutex> lock(shared.mu);
    shared.report->queue.own_pops += tally.own_pops;
    shared.report->queue.injector_pops += tally.injector_pops;
    shared.report->queue.steals += tally.steals;
    shared.report->queue.steal_attempts += tally.steal_attempts;
  }
  shared.aggregate.merge_from(registry);
}

}  // namespace

const char* job_status_name(JobStatus s) {
  switch (s) {
    case JobStatus::kDone: return "done";
    case JobStatus::kFailed: return "failed";
    case JobStatus::kTimedOut: return "timed-out";
    case JobStatus::kSkipped: return "skipped";
  }
  return "?";
}

BatchReport run_batch(const Manifest& manifest, const BatchOptions& options) {
  BatchReport report;
  report.pipeline = options.pipeline;
  report.validated = options.validate;
  std::size_t workers = options.jobs;
  if (workers == 0) {
    workers = std::max(1u, std::thread::hardware_concurrency());
  }
  workers = std::max<std::size_t>(1, std::min(workers, std::size_t{256}));
  report.workers = workers;
  report.totals.submitted = manifest.size();
  report.programs.resize(manifest.size());
  for (std::size_t i = 0; i < manifest.size(); ++i) {
    report.programs[i].index = i;
    report.programs[i].id = manifest.jobs[i].id;
  }
  if (manifest.empty()) return report;

  // Forensic bundles embed a flight-recorder snapshot; arm the recorder
  // whenever a bundle directory was requested. The recorder writes only to
  // its own rings and the payload never includes recorder state, so this
  // cannot perturb report byte-identity.
  if (!options.forensics_dir.empty()) obs::flight().set_enabled(true);

  // Size-ordered sharding: big programs first, dealt round-robin across
  // the per-worker deques; the rest feeds the global injector in the same
  // order.
  std::vector<std::size_t> order(manifest.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&manifest](std::size_t a, std::size_t b) {
                     return manifest.jobs[a].size_hint >
                            manifest.jobs[b].size_hint;
                   });

  BatchShared shared;
  shared.manifest = &manifest;
  shared.options = &options;
  shared.report = &report;
  std::size_t shard_cap =
      options.shard_cap > 0 ? options.shard_cap : kDefaultShardCap;
  std::size_t dealt = std::min(order.size(), shard_cap * workers);
  for (std::size_t w = 0; w < workers; ++w) {
    shared.deques.push_back(
        std::make_unique<WorkStealingDeque>(manifest.size()));
  }
  // Deal in reverse so each deque's bottom (the owner's LIFO end) holds its
  // biggest job: workers start their largest program first.
  for (std::size_t i = dealt; i-- > 0;) {
    shared.deques[i % workers]->push(order[i]);
  }
  shared.injector.seed(
      std::vector<std::size_t>(order.begin() + dealt, order.end()));

  auto wall_start = std::chrono::steady_clock::now();
  shared.batch_start = wall_start;
  std::clock_t cpu_start = std::clock();

  if (workers == 1) {
    worker_main(0, shared);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back([w, &shared] { worker_main(w, shared); });
    }
    for (std::thread& t : pool) t.join();
  }

  report.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - wall_start)
                       .count();
  report.cpu_ms = 1000.0 *
                  static_cast<double>(std::clock() - cpu_start) /
                  static_cast<double>(CLOCKS_PER_SEC);

  for (const ProgramResult& r : report.programs) {
    report.allocs_total += r.allocs;
    switch (r.status) {
      case JobStatus::kDone:
        ++report.totals.done;
        if (!r.validation_ok) ++report.validation_failures;
        break;
      case JobStatus::kFailed: ++report.totals.failed; break;
      case JobStatus::kTimedOut: ++report.totals.timed_out; break;
      case JobStatus::kSkipped: ++report.totals.skipped; break;
    }
  }
  if (report.totals.done > 0) {
    report.allocs_per_program = static_cast<double>(report.allocs_total) /
                                static_cast<double>(report.totals.done);
  }
  report.counters = shared.aggregate.counters();
  report.timers = shared.aggregate.timers();
  report.histograms = shared.aggregate.histograms();
  auto counter = [&report](const char* name) -> std::uint64_t {
    auto it = report.counters.find(name);
    return it == report.counters.end() ? 0 : it->second;
  };
  report.cache_hits = counter("analysis.cache.hits");
  report.cache_misses = counter("analysis.cache.misses");
  report.cache_builds = counter("analysis.cache.builds");
  // Hit rate = fraction of lookups that avoided a rebuild, on either tier:
  // a thread-tier miss that the shared tier satisfies is still a hit. With
  // the shared tier off, builds == misses and this reduces to the classic
  // hits / (hits + misses).
  std::uint64_t lookups = report.cache_hits + report.cache_misses;
  report.cache_hit_rate =
      lookups == 0 ? 0.0
                   : 1.0 - static_cast<double>(report.cache_builds) /
                               static_cast<double>(lookups);
  return report;
}

std::string BatchReport::summary() const {
  std::string s = "batch: " + std::to_string(totals.submitted) +
                  " programs on " + std::to_string(workers) + " worker" +
                  (workers == 1 ? "" : "s") + " — " +
                  std::to_string(totals.done) + " done, " +
                  std::to_string(totals.failed) + " failed, " +
                  std::to_string(totals.timed_out) + " timed out";
  if (totals.skipped > 0) {
    s += ", " + std::to_string(totals.skipped) + " skipped";
  }
  if (validated) {
    s += "; validation: " + std::to_string(validation_failures) +
         " divergence" + (validation_failures == 1 ? "" : "s");
  }
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "; wall %.1f ms, cpu %.1f ms, cache hit rate %.2f, steals %llu",
                wall_ms, cpu_ms, cache_hit_rate,
                static_cast<unsigned long long>(queue.steals));
  s += buf;
  if (allocs_total > 0) {
    std::snprintf(buf, sizeof(buf), ", %.0f allocs/program",
                  allocs_per_program);
    s += buf;
  }
  return s;
}

std::string BatchReport::to_json(bool pretty, bool include_timing) const {
  obs::JsonWriter w(pretty);
  w.begin_object();
  w.key("schema").value("parcm-batch-v1");
  w.key("pipeline").value(pipeline);
  w.key("validated").value(validated);
  w.key("totals").begin_object();
  w.key("submitted").value(totals.submitted);
  w.key("done").value(totals.done);
  w.key("failed").value(totals.failed);
  w.key("timed_out").value(totals.timed_out);
  w.key("skipped").value(totals.skipped);
  w.key("validation_failures").value(validation_failures);
  w.end_object();
  if (include_timing) {
    w.key("workers").value(workers);
    w.key("wall_ms").value(wall_ms);
    w.key("cpu_ms").value(cpu_ms);
    w.key("allocs_total").value(allocs_total);
    w.key("allocs_per_program").value(allocs_per_program);
    w.key("queue").begin_object();
    w.key("own_pops").value(queue.own_pops);
    w.key("injector_pops").value(queue.injector_pops);
    w.key("steals").value(queue.steals);
    w.key("steal_attempts").value(queue.steal_attempts);
    w.end_object();
    w.key("cache").begin_object();
    w.key("hits").value(cache_hits);
    w.key("misses").value(cache_misses);
    w.key("builds").value(cache_builds);
    w.key("hit_rate").value(cache_hit_rate);
    w.end_object();
  }
  w.key("programs").begin_array();
  for (const ProgramResult& r : programs) {
    w.begin_object();
    w.key("index").value(r.index);
    w.key("id").value(r.id);
    w.key("status").value(job_status_name(r.status));
    if (!r.error.empty()) w.key("error").value(r.error);
    // Wall time and allocation counts are schedule- and cache-state-
    // dependent, so they stay out of the deterministic payload.
    if (include_timing) {
      w.key("wall_ms").value(r.wall_ms);
      w.key("allocs").value(r.allocs);
      if (!r.pass_wall_ms.empty()) {
        // Array, not object: pass names repeat ("validate" guards several
        // stages of the full pipeline).
        w.key("pass_wall_ms").begin_array();
        for (const auto& [pass, ms] : r.pass_wall_ms) {
          w.begin_object();
          w.key("pass").value(pass);
          w.key("ms").value(ms);
          w.end_object();
        }
        w.end_array();
      }
    }
    // Content-derived (schedule-independent), so part of the payload: the
    // profile tool's shape-family cohort key.
    if (r.shape_hash != 0) {
      char hex[19];
      std::snprintf(hex, sizeof(hex), "0x%016llx",
                    static_cast<unsigned long long>(r.shape_hash));
      w.key("shape_hash").value(hex);
    }
    w.key("nodes_before").value(r.nodes_before);
    w.key("nodes_after").value(r.nodes_after);
    w.key("actions").value(r.actions);
    w.key("remark_count").value(r.remark_count);
    if (!r.remarks.empty()) {
      w.key("remarks").begin_array();
      for (const std::string& line : r.remarks) w.value(line);
      w.end_array();
    }
    if (!r.validation.empty()) {
      w.key("validation").value(r.validation);
      w.key("validation_ok").value(r.validation_ok);
    }
    if (!r.output.empty()) w.key("output").value(r.output);
    w.end_object();
  }
  w.end_array();
  if (include_timing) {
    w.key("metrics").begin_object();
    w.key("counters").begin_object();
    for (const auto& [k, v] : counters) w.key(k).value(v);
    w.end_object();
    w.key("timers").begin_object();
    for (const auto& [k, v] : timers) {
      w.key(k).begin_object();
      w.key("count").value(v.count);
      w.key("total_ms").value(v.total_ms());
      w.end_object();
    }
    w.end_object();
    w.key("histograms").begin_object();
    for (const auto& [k, v] : histograms) {
      w.key(k).begin_object();
      w.key("count").value(v.count());
      w.key("min").value(v.min());
      w.key("max").value(v.max());
      w.key("mean").value(v.mean());
      w.key("p50").value(v.p50());
      w.key("p90").value(v.p90());
      w.key("p99").value(v.p99());
      w.end_object();
    }
    w.end_object();
    w.end_object();
  }
  w.end_object();
  return w.take();
}

}  // namespace parcm::driver
