#include "driver/forensic.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "obs/json.hpp"

namespace parcm::driver {

namespace {

std::string hex_u64(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::uint64_t parse_hex_u64(std::string_view s) {
  if (s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
    s.remove_prefix(2);
  }
  std::uint64_t v = 0;
  for (char c : s) {
    std::uint64_t digit;
    if (c >= '0' && c <= '9') digit = static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') digit = static_cast<std::uint64_t>(c - 'a') + 10;
    else if (c >= 'A' && c <= 'F') digit = static_cast<std::uint64_t>(c - 'A') + 10;
    else return 0;
    v = (v << 4) | digit;
  }
  return v;
}

void write_budget(const verify::Budget& b, obs::JsonWriter& w) {
  w.begin_object();
  w.key("max_exact_nodes").value(b.max_exact_nodes);
  w.key("max_states").value(b.max_states);
  w.key("samples").value(b.samples);
  w.key("strata").value(b.strata);
  w.key("max_steps").value(b.max_steps);
  w.key("sample_seed").value(b.sample_seed);
  w.key("split_assignments").value(b.split_assignments);
  w.end_object();
}

verify::Budget parse_budget(const obs::JsonValue& v) {
  verify::Budget b;
  b.max_exact_nodes =
      static_cast<std::size_t>(v.get_or("max_exact_nodes").as_u64(b.max_exact_nodes));
  b.max_states =
      static_cast<std::size_t>(v.get_or("max_states").as_u64(b.max_states));
  b.samples = static_cast<std::size_t>(v.get_or("samples").as_u64(b.samples));
  b.strata = static_cast<std::size_t>(v.get_or("strata").as_u64(b.strata));
  b.max_steps =
      static_cast<std::size_t>(v.get_or("max_steps").as_u64(b.max_steps));
  b.sample_seed = v.get_or("sample_seed").as_u64(b.sample_seed);
  b.split_assignments =
      v.get_or("split_assignments").as_bool(b.split_assignments);
  return b;
}

void write_config(const ForensicConfig& c, obs::JsonWriter& w) {
  w.begin_object();
  w.key("pipeline").value(c.pipeline);
  w.key("validate").value(c.validate);
  w.key("collect_remarks").value(c.collect_remarks);
  w.key("keep_output").value(c.keep_output);
  w.key("timeout_seconds").value(c.timeout_seconds);
  w.key("inject_mode").value(c.inject_mode);
  w.key("budget");
  write_budget(c.budget, w);
  w.end_object();
}

ForensicConfig parse_config(const obs::JsonValue& v) {
  ForensicConfig c;
  c.pipeline = v.get_or("pipeline").as_string();
  if (c.pipeline.empty()) c.pipeline = "full";
  c.validate = v.get_or("validate").as_bool(false);
  c.collect_remarks = v.get_or("collect_remarks").as_bool(true);
  c.keep_output = v.get_or("keep_output").as_bool(true);
  c.timeout_seconds = v.get_or("timeout_seconds").as_double(0.0);
  c.inject_mode = v.get_or("inject_mode").as_string();
  c.budget = parse_budget(v.get_or("budget"));
  return c;
}

// The canonical outcome writer. Every field is written unconditionally so
// the byte string is a total function of the deterministic result fields —
// no presence/absence cases for the replay comparison to get wrong.
void write_outcome(const ProgramResult& r, obs::JsonWriter& w) {
  w.begin_object();
  w.key("status").value(job_status_name(r.status));
  w.key("error").value(r.error);
  w.key("shape_hash").value(hex_u64(r.shape_hash));
  w.key("nodes_before").value(r.nodes_before);
  w.key("nodes_after").value(r.nodes_after);
  w.key("actions").value(r.actions);
  w.key("remark_count").value(r.remark_count);
  w.key("validation").value(r.validation);
  w.key("validation_ok").value(r.validation_ok);
  w.key("output").value(r.output);
  w.end_object();
}

// Re-serializes a parsed outcome object through the same canonical writer,
// so `expected` and `actual` compare byte-for-byte regardless of how the
// bundle file was formatted on disk.
std::string canonical_outcome(const obs::JsonValue& v) {
  ProgramResult r;
  const std::string status = v.get_or("status").as_string();
  if (status == "done") r.status = JobStatus::kDone;
  else if (status == "failed") r.status = JobStatus::kFailed;
  else if (status == "timed-out") r.status = JobStatus::kTimedOut;
  else r.status = JobStatus::kSkipped;
  r.error = v.get_or("error").as_string();
  r.shape_hash = parse_hex_u64(v.get_or("shape_hash").as_string());
  r.nodes_before =
      static_cast<std::size_t>(v.get_or("nodes_before").as_u64());
  r.nodes_after = static_cast<std::size_t>(v.get_or("nodes_after").as_u64());
  r.actions = static_cast<std::size_t>(v.get_or("actions").as_u64());
  r.remark_count =
      static_cast<std::size_t>(v.get_or("remark_count").as_u64());
  r.validation = v.get_or("validation").as_string();
  r.validation_ok = v.get_or("validation_ok").as_bool(true);
  r.output = v.get_or("output").as_string();
  return outcome_json(r);
}

}  // namespace

BatchOptions ForensicConfig::to_batch_options() const {
  BatchOptions o;
  o.jobs = 1;
  o.pipeline = pipeline;
  o.validate = validate;
  o.collect_remarks = collect_remarks;
  o.keep_output = keep_output;
  o.timeout_seconds = timeout_seconds;
  o.inject_mode = inject_mode;
  o.budget = budget;
  return o;
}

ForensicConfig ForensicConfig::from_batch_options(const BatchOptions& o) {
  ForensicConfig c;
  c.pipeline = o.pipeline;
  c.validate = o.validate;
  c.collect_remarks = o.collect_remarks;
  c.keep_output = o.keep_output;
  c.timeout_seconds = o.timeout_seconds;
  c.inject_mode = o.inject_mode;
  c.budget = o.budget;
  return c;
}

std::string outcome_json(const ProgramResult& result) {
  obs::JsonWriter w(false);
  write_outcome(result, w);
  return w.take();
}

std::string bundle_to_json(const ForensicBundle& bundle, bool pretty) {
  obs::JsonWriter w(pretty);
  w.begin_object();
  w.key("schema").value("parcm-forensic-v1");
  w.key("reason").value(bundle.reason);
  w.key("mode").value(bundle.mode);
  w.key("id").value(bundle.id);
  w.key("index").value(bundle.index);
  w.key("seeds").begin_object();
  w.key("campaign_seed").value(bundle.campaign_seed);
  w.key("program_seed").value(bundle.program_seed);
  w.end_object();
  if (!bundle.note.empty()) w.key("note").value(bundle.note);
  w.key("source").value(bundle.source);
  w.key("config");
  write_config(bundle.config, w);
  w.key("outcome");
  write_outcome(bundle.outcome, w);
  w.key("flight");
  obs::FlightRecorder::write_events_json(bundle.flight, w);
  if (!bundle.metrics_json.empty()) {
    w.key("metrics").raw_value(bundle.metrics_json);
  }
  w.key("remark_tail").begin_array();
  for (const std::string& line : bundle.remark_tail) w.value(line);
  w.end_array();
  w.end_object();
  return w.take();
}

std::string bundle_filename(const ForensicBundle& bundle) {
  std::string id = bundle.id;
  for (char& c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '.';
    if (!ok) c = '_';
  }
  return "forensic_" + std::to_string(bundle.index) + "_" + id + ".json";
}

std::string write_bundle(const ForensicBundle& bundle, const std::string& dir,
                         std::string* error) {
  try {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
      if (error) *error = "cannot create " + dir + ": " + ec.message();
      return "";
    }
    const std::string path =
        (std::filesystem::path(dir) / bundle_filename(bundle)).string();
    std::ofstream out(path, std::ios::binary);
    if (!out) {
      if (error) *error = "cannot open " + path;
      return "";
    }
    out << bundle_to_json(bundle, /*pretty=*/true) << "\n";
    out.close();
    if (!out) {
      if (error) *error = "write failed: " + path;
      return "";
    }
    return path;
  } catch (const std::exception& e) {
    if (error) *error = e.what();
    return "";
  }
}

ReplayResult replay_bundle(const std::string& path) {
  ReplayResult rr;
  std::string parse_error;
  std::optional<obs::JsonValue> doc = obs::json_parse_file(path, &parse_error);
  if (!doc.has_value()) {
    rr.error = parse_error;
    return rr;
  }
  if (!doc->is_object() ||
      doc->get_or("schema").as_string() != "parcm-forensic-v1") {
    rr.error = "not a parcm-forensic-v1 bundle: " + path;
    return rr;
  }
  rr.reason = doc->get_or("reason").as_string();
  rr.id = doc->get_or("id").as_string();
  const std::string source = doc->get_or("source").as_string();
  if (source.empty()) {
    rr.error = "bundle has no program source: " + path;
    return rr;
  }
  const obs::JsonValue* outcome = doc->get("outcome");
  if (outcome == nullptr) {
    rr.error = "bundle has no recorded outcome: " + path;
    return rr;
  }
  rr.expected = canonical_outcome(*outcome);

  ForensicConfig config = parse_config(doc->get_or("config"));
  Manifest manifest = Manifest::from_sources({{rr.id, source}});
  BatchReport report = run_batch(manifest, config.to_batch_options());
  rr.loaded = true;
  rr.result = report.programs.empty() ? ProgramResult{} : report.programs[0];
  rr.actual = outcome_json(rr.result);
  rr.match = rr.actual == rr.expected;
  return rr;
}

}  // namespace parcm::driver
