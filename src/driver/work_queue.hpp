// Work-stealing scheduling primitives for the batch-compilation driver.
//
// Each worker owns a Chase–Lev deque: the owner pushes and pops jobs at the
// bottom (LIFO, cache-warm), thieves steal from the top (FIFO, so the
// oldest — largest, under size-ordered sharding — job migrates first). The
// memory orderings follow Lê/Pop/Cohen/Zappa Nardelli, "Correct and
// Efficient Work-Stealing for Weak Memory Models" (PPoPP'13). Capacity is
// fixed at construction: the driver knows the whole job set up front, so
// the growable-buffer reclamation problem never arises.
//
// Jobs enter through a GlobalInjector — an atomic cursor over the
// size-ordered job list. Workers refill from the injector only when their
// own deque runs dry, which bounds in-flight memory: at any moment a worker
// holds at most its initial shard plus one injector draw.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace parcm::driver {

// Fixed-capacity Chase–Lev deque of job indices. Owner calls push/pop;
// any thread may call steal.
class WorkStealingDeque {
 public:
  // Capacity is rounded up to a power of two and must accommodate every
  // push (the driver sizes it to the whole batch).
  explicit WorkStealingDeque(std::size_t capacity);

  // Owner only. Returns false when full (the driver never overfills; the
  // return value exists for the hammer tests).
  bool push(std::size_t job);

  // Owner only. Returns false when empty.
  bool pop(std::size_t* job);

  // Any thread. Returns false when empty or when the race for the top
  // element was lost.
  bool steal(std::size_t* job);

  bool empty() const;

 private:
  std::size_t mask_;
  std::unique_ptr<std::atomic<std::size_t>[]> buffer_;
  // top_ is the steal end, bottom_ the owner end; bottom_ - top_ is the
  // current size. int64 so the transient bottom_ = top_ - 1 state of a
  // losing pop is representable.
  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
};

// Atomic cursor over the size-ordered job list: pop-only MPMC queue. The
// driver seeds it with every job index beyond the initial per-worker
// shards.
class GlobalInjector {
 public:
  void seed(std::vector<std::size_t> jobs) { jobs_ = std::move(jobs); }

  bool pop(std::size_t* job) {
    std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= jobs_.size()) return false;
    *job = jobs_[i];
    return true;
  }

  bool exhausted() const {
    return next_.load(std::memory_order_relaxed) >= jobs_.size();
  }

 private:
  std::vector<std::size_t> jobs_;
  std::atomic<std::size_t> next_{0};
};

}  // namespace parcm::driver
