// Differential fuzzing campaign: generate random parallel programs, push
// them through a named transformation pipeline, and hold every result
// against the translation-validation oracle. Confirmed divergences are
// delta-debugged to a minimal reproducer and rendered as a `.parcm` source
// file plus a ready-to-paste regression test.
//
// Reproducibility contract: the whole campaign is a pure function of
// FuzzOptions. `fuzz_program(seed, i, gen)` is the i-th program of campaign
// `seed` — the same bytes in any process on any platform — and the oracle's
// sampling streams are fixed, so verdicts replay too.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/graph.hpp"
#include "lang/ast.hpp"
#include "verify/verify.hpp"
#include "verify/vm_oracle.hpp"
#include "workload/randomprog.hpp"

namespace parcm::verify {

// Miscompile injection for testing the oracle itself: flip one of the
// safety ingredients the paper's transformation needs (each is a ctest'd
// ablation known to break sequential consistency on concrete figures).
struct InjectOptions {
  bool enabled = false;
  // "naive"            — the refuted as-early-as-possible transfer
  // "no-privatize"     — share temporaries across sibling components
  // "no-parend-export" — drop the Fig. 7 ParEnd export rule
  // "no-sink"          — keep anchors at their unsunk positions
  std::string mode = "naive";
};

struct FuzzOptions {
  std::uint64_t seed = 1;
  std::size_t count = 100;
  // Worker threads for the per-program check phase (driver::run_batch).
  // Reduction and reporting stay sequential in index order, so the outcome
  // is identical at any jobs value; 0 = hardware concurrency.
  std::size_t jobs = 1;
  // bcm | lcm | pcm | naive | sinking | dce | full
  // (bcm/lcm force sequential generation; full = pcm+constprop+sinking+dce)
  std::string pipeline = "pcm";
  // Wall-clock box in seconds; 0 = unbounded (the --smoke CI job sets 60).
  double seconds = 0;
  InjectOptions inject;
  // Which differential oracle checks each program:
  //   exact — enumerative/sampled differential_check (the default)
  //   vm    — seeded-schedule vm_differential_check
  //   both  — run both and count cross-oracle disagreements (a VM-claimed
  //           divergence the exact oracle refutes is a VM oracle bug; an
  //           exact find the VM's schedules missed is tracked as vm_missed
  //           without failing the campaign)
  std::string oracle = "exact";
  Budget budget;
  VmBudget vm_budget;
  RandomProgramOptions gen;  // defaulted via default_fuzz_gen()
  bool reduce = true;
  // Stop reducing/recording after this many failures (counting continues).
  std::size_t max_failures = 4;
  // When non-empty, write repro_<seed>_<index>.parcm and a sibling
  // .regression.cpp into this directory.
  std::string out_dir;
  // When non-empty, every recorded divergence also dumps a self-contained
  // `parcm-forensic-v1` bundle (source, config, seeds, recorder snapshot)
  // into this directory; replay with `parcm_opt --replay <bundle>`.
  std::string forensics_dir;

  FuzzOptions();
};

// Generator tuning for the oracle's exact budget: small programs, shallow
// nesting, bounded loops, and the P2/P3 pitfall shapes switched on.
RandomProgramOptions default_fuzz_gen();

struct FuzzFailure {
  std::size_t index = 0;
  std::uint64_t program_seed = 0;
  Verdict verdict;
  std::string source;          // the generated program
  std::string reduced_source;  // after delta debugging
  std::size_t reduced_stmts = 0;
  std::size_t reduced_nodes = 0;  // node count of the lowered reproducer
  std::string repro_path;         // written file, when out_dir was set
};

struct FuzzOutcome {
  std::size_t programs = 0;
  std::size_t exact = 0;
  std::size_t sampled = 0;
  std::size_t inconclusive = 0;
  // All divergences (a sampled kDiverged is sound: the oracle only emits it
  // against a complete original behaviour set). sampled_alarms is the subset
  // that resisted the exact two-sided re-check, so it lacks exact counts.
  std::size_t divergences = 0;
  std::size_t sampled_alarms = 0;
  // VM-oracle bookkeeping (zero unless oracle was "vm" or "both").
  std::size_t vm_checked = 0;
  std::size_t vm_divergences = 0;
  // Cross-oracle contradictions: the VM claimed a divergence the exact
  // oracle (or the exact escalation) refuted. Soundness bugs — fatal.
  std::size_t oracle_disagreements = 0;
  // Exact divergences the VM's schedule sample failed to reach. A sampling
  // shortfall, not a soundness bug: reported, never fatal.
  std::size_t vm_missed = 0;
  std::vector<FuzzFailure> failures;

  bool ok() const { return divergences == 0 && oracle_disagreements == 0; }
  std::string summary() const;
  std::string to_json(bool pretty = false) const;
};

// The deterministic program stream.
std::uint64_t fuzz_program_seed(std::uint64_t campaign_seed,
                                std::size_t index);
lang::Program fuzz_program(std::uint64_t campaign_seed, std::size_t index,
                           const RandomProgramOptions& gen);

// The i-th program of a K-shape pool: structurally the (i mod K)-th
// campaign program with every variable uniformly renamed per repetition
// (i div K), so a large corpus repeats shapes without repeating texts.
// Renaming is injective and preserves first-occurrence order, so all
// repetitions of a pool slot share one structural_hash — the workload the
// shared analysis cache exists for. shapes == 0 behaves like 1.
lang::Program fuzz_program_pooled(std::uint64_t campaign_seed,
                                  std::size_t index, std::size_t shapes,
                                  const RandomProgramOptions& gen);

// Applies the named transformation pipeline (optionally with an injected
// miscompile) to a copy of g. Throws InternalError on unknown names, or
// when injection is requested for a pipeline without a code-motion stage.
Graph apply_named_pipeline(const std::string& name, const Graph& g,
                           const InjectOptions& inject = {});

FuzzOutcome run_fuzz(const FuzzOptions& options);

// Reproducer rendering (also used by run_fuzz when out_dir is set).
std::string render_repro_source(const FuzzFailure& f, const FuzzOptions& o);
std::string render_regression_test(const FuzzFailure& f, const FuzzOptions& o);

}  // namespace parcm::verify
