#include "verify/reduce.hpp"

#include <optional>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace parcm::verify {

namespace {

using lang::Block;
using lang::Program;
using lang::Stmt;
using lang::StmtKind;

enum class EditKind : std::uint8_t {
  kDelete,         // remove the statement (and its subtree)
  kInlineBlock,    // replace the statement by blocks[arg]'s contents
  kDropComponent,  // erase blocks[arg] of a par/choose with >2 blocks
  kRhsTrivial,     // x := a op b  ->  x := a
  kOperandZeroA,   // first operand variable -> 0
  kOperandZeroB,   // second operand variable -> 0
  kCondNondet,     // deterministic condition -> `*`
  kDropLabel,
};

struct Edit {
  EditKind kind;
  std::size_t stmt;  // DFS pre-order index
  std::size_t arg = 0;
};

void enumerate_in_block(const Block& b, std::size_t* k, std::vector<Edit>* out) {
  for (const Stmt& s : b) {
    std::size_t id = (*k)++;
    out->push_back({EditKind::kDelete, id});
    for (std::size_t bi = 0; bi < s.blocks.size(); ++bi) {
      out->push_back({EditKind::kInlineBlock, id, bi});
    }
    if (s.blocks.size() > 2 &&
        (s.kind == StmtKind::kPar || s.kind == StmtKind::kChoose)) {
      for (std::size_t bi = 0; bi < s.blocks.size(); ++bi) {
        out->push_back({EditKind::kDropComponent, id, bi});
      }
    }
    if (s.kind == StmtKind::kAssign) {
      if (s.rhs.is_binary()) out->push_back({EditKind::kRhsTrivial, id});
      if (s.rhs.a.is_var) out->push_back({EditKind::kOperandZeroA, id});
      if (s.rhs.is_binary() && s.rhs.b.is_var) {
        out->push_back({EditKind::kOperandZeroB, id});
      }
    }
    if ((s.kind == StmtKind::kIf || s.kind == StmtKind::kWhile) &&
        !s.cond.nondet) {
      out->push_back({EditKind::kCondNondet, id});
    }
    if (!s.label.empty()) out->push_back({EditKind::kDropLabel, id});
    for (const Block& child : s.blocks) enumerate_in_block(child, k, out);
  }
}

std::vector<Edit> enumerate_edits(const Program& p) {
  std::vector<Edit> out;
  std::size_t k = 0;
  enumerate_in_block(p.body, &k, &out);
  return out;
}

struct Found {
  Block* parent;
  std::size_t index;
};

std::optional<Found> find_stmt(Block* b, std::size_t* k, std::size_t target) {
  for (std::size_t i = 0; i < b->size(); ++i) {
    if ((*k)++ == target) return Found{b, i};
    for (Block& child : (*b)[i].blocks) {
      if (auto f = find_stmt(&child, k, target)) return f;
    }
  }
  return std::nullopt;
}

bool apply_edit(Program* p, const Edit& e) {
  std::size_t k = 0;
  std::optional<Found> f = find_stmt(&p->body, &k, e.stmt);
  if (!f.has_value()) return false;
  Stmt& s = (*f->parent)[f->index];
  switch (e.kind) {
    case EditKind::kDelete:
      f->parent->erase(f->parent->begin() + static_cast<long>(f->index));
      return true;
    case EditKind::kInlineBlock: {
      if (e.arg >= s.blocks.size()) return false;
      Block body = std::move(s.blocks[e.arg]);
      f->parent->erase(f->parent->begin() + static_cast<long>(f->index));
      f->parent->insert(f->parent->begin() + static_cast<long>(f->index),
                        std::make_move_iterator(body.begin()),
                        std::make_move_iterator(body.end()));
      return true;
    }
    case EditKind::kDropComponent:
      if (s.blocks.size() <= 2 || e.arg >= s.blocks.size()) return false;
      s.blocks.erase(s.blocks.begin() + static_cast<long>(e.arg));
      return true;
    case EditKind::kRhsTrivial:
      if (!s.rhs.is_binary()) return false;
      s.rhs.op.reset();
      s.rhs.b = {};
      return true;
    case EditKind::kOperandZeroA:
      if (!s.rhs.a.is_var) return false;
      s.rhs.a = lang::AOperand::constant(0);
      return true;
    case EditKind::kOperandZeroB:
      if (!s.rhs.is_binary() || !s.rhs.b.is_var) return false;
      s.rhs.b = lang::AOperand::constant(0);
      return true;
    case EditKind::kCondNondet:
      if (s.cond.nondet) return false;
      s.cond.nondet = true;
      s.cond.expr = {};
      return true;
    case EditKind::kDropLabel:
      if (s.label.empty()) return false;
      s.label.clear();
      return true;
  }
  return false;
}

std::size_t count_in_block(const Block& b) {
  std::size_t n = 0;
  for (const Stmt& s : b) {
    ++n;
    for (const Block& child : s.blocks) n += count_in_block(child);
  }
  return n;
}

}  // namespace

std::size_t count_statements(const Program& program) {
  return count_in_block(program.body);
}

ReduceResult reduce_program(const Program& failing, const Predicate& still_fails,
                            const ReduceOptions& options) {
  PARCM_OBS_TIMER("verify.reduce");
  ReduceResult res;
  res.program = failing;
  res.stmts_before = count_statements(failing);

  bool progress = true;
  while (progress && res.checks < options.max_checks) {
    progress = false;
    // Re-enumerate after every accepted edit: indices shift under deletion.
    for (const Edit& e : enumerate_edits(res.program)) {
      if (res.checks >= options.max_checks) break;
      Program candidate = res.program;
      if (!apply_edit(&candidate, e)) continue;
      ++res.checks;
      PARCM_OBS_COUNT("verify.reduce.checks", 1);
      if (still_fails(candidate)) {
        res.program = std::move(candidate);
        progress = true;
        PARCM_OBS_COUNT("verify.reduce.accepted", 1);
        break;
      }
    }
  }
  res.stmts_after = count_statements(res.program);
  return res;
}

}  // namespace parcm::verify
