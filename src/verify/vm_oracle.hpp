// Second differential oracle: seeded VM schedules instead of enumerated or
// interpreter-sampled interleavings.
//
// The VM runs the split-assignment lowering under a pinned per-schedule
// xoshiro stream, so every run is a genuine Remark 2.1 behaviour of the
// program; N schedules per side cost O(N * program length) — independent of
// the interleaving count that drives the exact checker's bill. The verdict
// logic mirrors differential_check's sampled path: a transformed-only final
// store is alarmed only after a one-sided POR enumeration of the original
// completes without producing it (sound kDiverged), and stays
// kInconclusive otherwise. Divergences are classified with the same P1–P3
// remark provenance (classify_divergence).
#pragma once

#include <cstdint>
#include <vector>

#include "ir/graph.hpp"
#include "obs/remarks.hpp"
#include "verify/verify.hpp"

namespace parcm::verify {

struct VmBudget {
  // Seeded schedules per side.
  std::size_t schedules = 64;
  // Instruction cap per schedule (the split lowering spends ~2 instructions
  // per assignment, so this is roomier than Budget::max_steps).
  std::size_t max_steps = 40000;
  // Base of the schedule streams; same seed, same schedules, same verdict.
  std::uint64_t seed = 0x5EEDC0DEuLL;
  // Escalation budget for the one-sided exact enumeration that a candidate
  // divergence must survive before it is believed.
  std::size_t max_exact_nodes = 72;
  std::size_t max_states = 1u << 19;
};

// Compares final stores of `before` and `after` (projected onto the
// variables of `before`) across seeded VM schedules. Deterministic for
// fixed inputs and budget; `remarks` feeds pitfall classification exactly
// as in differential_check.
Verdict vm_differential_check(const Graph& before, const Graph& after,
                              const VmBudget& budget = {},
                              const std::vector<obs::Remark>* remarks = nullptr);

}  // namespace parcm::verify
