#include "verify/verify.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "obs/metrics.hpp"
#include "semantics/equivalence.hpp"
#include "motion/pcm.hpp"
#include "obs/remarks.hpp"
#include "semantics/interpreter.hpp"
#include "support/rng.hpp"

namespace parcm::verify {

namespace {

// splitmix64 finalizer: decorrelates the per-stratum / per-side RNG streams
// derived from one user-visible seed.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15uLL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9uLL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBuLL;
  return x ^ (x >> 31);
}

struct SampleStats {
  std::set<std::vector<std::int64_t>> finals;
  std::size_t completed = 0;
  std::size_t aborted = 0;  // step cap hit before termination
};

// One maximal execution under the stratum's scheduling bias. Stratum 0 (and
// every stratum past 2) schedules uniformly on its own stream; stratum 1
// prefers the lowest-index runnable region (near-sequential, left-first
// order), stratum 2 the highest (join-adversarial order). The biased strata
// keep a 1-in-4 uniform escape so repeated samples still diversify.
std::optional<VarState> run_stratum_schedule(const Graph& g, Rng& rng,
                                             std::size_t stratum,
                                             std::size_t max_steps,
                                             bool split) {
  Config c = Config::initial(g);
  VarState s(g.num_vars());
  // Split semantics (Remark 2.1): an assignment is two schedulable steps —
  // evaluate the rhs into a thread-private slot, then store. A region whose
  // pending slot is full is mid-assignment; picking it again completes the
  // store, picking another region interleaves between read and write.
  std::vector<std::optional<std::int64_t>> pending(g.num_regions());
  for (std::size_t step = 0; step < max_steps; ++step) {
    if (c.terminal()) return s;
    std::vector<Transition> ts = enabled_transitions(g, c, s);
    if (ts.empty()) return std::nullopt;  // deadlock: malformed input
    std::size_t pick = 0;
    if (ts.size() == 1) {
      pick = 0;
    } else if (stratum == 1 || stratum == 2) {
      if (rng.chance(1, 4)) {
        pick = rng.below(ts.size());
      } else {
        pick = 0;
        for (std::size_t i = 1; i < ts.size(); ++i) {
          bool better = stratum == 1
                            ? ts[i].region.index() < ts[pick].region.index()
                            : ts[i].region.index() > ts[pick].region.index();
          if (better) pick = i;
        }
      }
    } else {
      pick = rng.below(ts.size());
    }
    const Transition& t = ts[pick];
    if (t.barrier_stmt.valid()) {
      c = apply_transition(g, c, t);
      continue;
    }
    const Node& node = g.node(t.node);
    if (split && node.kind == NodeKind::kAssign) {
      std::optional<std::int64_t>& slot = pending[t.region.index()];
      if (!slot.has_value()) {
        slot = eval_rhs(s, node.rhs);
        continue;  // rhs read done; control stays, the write is a new step
      }
      s.set(node.lhs, *slot);
      slot.reset();
      c = apply_transition(g, c, t);
      continue;
    }
    execute_node(g, t.node, s);
    c = apply_transition(g, c, t);
  }
  return std::nullopt;
}

SampleStats sample_finals(const Graph& g,
                          const std::vector<std::optional<VarId>>& projection,
                          const Budget& budget, std::uint64_t side_salt) {
  SampleStats out;
  std::size_t strata = std::max<std::size_t>(1, budget.strata);
  std::size_t per = std::max<std::size_t>(1, budget.samples / strata);
  for (std::size_t stratum = 0; stratum < strata; ++stratum) {
    Rng rng(mix(budget.sample_seed ^ mix(side_salt) ^ mix(stratum)));
    for (std::size_t i = 0; i < per; ++i) {
      PARCM_OBS_COUNT("verify.sample_schedules", 1);
      std::optional<VarState> fin = run_stratum_schedule(
          g, rng, stratum, budget.max_steps, budget.split_assignments);
      if (!fin.has_value()) {
        ++out.aborted;
        continue;
      }
      ++out.completed;
      std::vector<std::int64_t> row;
      row.reserve(projection.size());
      for (const std::optional<VarId>& v : projection) {
        row.push_back(v.has_value() ? fin->get(*v) : 0);
      }
      out.finals.insert(std::move(row));
    }
  }
  return out;
}

std::vector<std::optional<VarId>> project_vars(
    const Graph& g, const std::vector<std::string>& observed) {
  std::vector<std::optional<VarId>> ids;
  ids.reserve(observed.size());
  for (const std::string& name : observed) ids.push_back(g.find_var(name));
  return ids;
}

}  // namespace

void classify_divergence(Verdict* v, const Graph& before,
                         const std::vector<obs::Remark>* remarks) {
  if (remarks != nullptr) v->pitfalls = pitfalls_from_remarks(*remarks);
  if (!v->pitfalls.empty()) return;
  // A divergent pipeline's own remark stream rarely names a pitfall: the
  // P2/P3 reasons are emitted by the refined analyses when they *block* a
  // placement, and a broken variant went ahead instead of blocking. Re-run
  // refined PCM on the original program and harvest its blocking reasons —
  // whatever the refined analyses guard against on this program is the
  // prime suspect for what the checked transformation tripped over.
  obs::RemarkSink sink;
  sink.set_enabled(true);
  obs::RemarkSink* prev = obs::set_remark_sink(&sink);
  try {
    parallel_code_motion(before);
  } catch (...) {
    obs::set_remark_sink(prev);
    return;  // classification is best-effort; the verdict stands either way
  }
  obs::set_remark_sink(prev);
  std::vector<obs::Remark> refined = sink.snapshot();
  v->pitfalls = pitfalls_from_remarks(refined);
}

const char* status_name(Status s) {
  switch (s) {
    case Status::kEquivalent: return "equivalent";
    case Status::kConsistent: return "consistent";
    case Status::kDiverged: return "diverged";
    case Status::kInconclusive: return "inconclusive";
  }
  return "?";
}

std::string Verdict::witness_text() const {
  if (!witness.has_value()) return {};
  std::ostringstream os;
  for (std::size_t i = 0; i < witness->size() && i < observed.size(); ++i) {
    if (i > 0) os << " ";
    os << observed[i] << "=" << (*witness)[i];
  }
  return os.str();
}

std::string Verdict::summary() const {
  std::ostringstream os;
  os << status_name(status) << " (" << (exact ? "exact" : "sampled") << "): "
     << original_behaviours << " original / " << transformed_behaviours
     << " transformed behaviours";
  if (witness.has_value()) {
    os << " — transformed-only final state " << witness_text();
  }
  if (!pitfalls.empty()) {
    os << " — suspects:";
    for (const std::string& p : pitfalls) os << " " << p;
  }
  return os.str();
}

std::vector<std::string> pitfalls_from_remarks(
    const std::vector<obs::Remark>& remarks) {
  bool seen[3] = {false, false, false};
  for (const obs::Remark& r : remarks) {
    for (obs::RemarkReason reason : r.reasons) {
      const char* tag = obs::remark_reason_pitfall(reason);
      if (tag != nullptr && tag[0] == 'P') {
        int idx = tag[1] - '1';
        if (idx >= 0 && idx < 3) seen[idx] = true;
      }
    }
  }
  std::vector<std::string> out;
  for (int i = 0; i < 3; ++i) {
    if (seen[i]) out.push_back(std::string("P") + static_cast<char>('1' + i));
  }
  return out;
}

Verdict differential_check(const Graph& before, const Graph& after,
                           const Budget& budget,
                           const std::vector<obs::Remark>* remarks) {
  PARCM_OBS_TIMER("verify.differential_check");
  PARCM_OBS_COUNT("verify.checks", 1);
  Verdict v;
  v.observed = all_var_names(before);

  if (before.num_nodes() <= budget.max_exact_nodes &&
      after.num_nodes() <= budget.max_exact_nodes) {
    EnumerationOptions opts;
    opts.max_states = budget.max_states;
    opts.atomic_assignments = !budget.split_assignments;
    opts.partial_order_reduction = true;
    ConsistencyVerdict cv =
        check_sequential_consistency(before, after, v.observed, opts);
    if (cv.exhausted) {
      PARCM_OBS_COUNT("verify.exact", 1);
      v.exact = true;
      v.original_behaviours = cv.original_behaviours;
      v.transformed_behaviours = cv.transformed_behaviours;
      if (!cv.sequentially_consistent) {
        v.status = Status::kDiverged;
        v.witness = cv.violation_witness;
        PARCM_OBS_COUNT("verify.diverged", 1);
        classify_divergence(&v, before, remarks);
      } else {
        v.status = cv.behaviours_preserved ? Status::kEquivalent
                                           : Status::kConsistent;
      }
      return v;
    }
  }

  // Sampled fallback. The reference set is every original behaviour we can
  // get our hands on: a (possibly partial) enumeration plus the original's
  // own sampled schedules. Both are genuine behaviours, so a sampled
  // transformed-only state really is outside the *observed* reference — but
  // the reference may be incomplete, hence exact=false on every verdict
  // from this path.
  PARCM_OBS_COUNT("verify.sampled", 1);
  std::vector<std::optional<VarId>> before_proj =
      project_vars(before, v.observed);
  std::vector<std::optional<VarId>> after_proj =
      project_vars(after, v.observed);

  EnumerationOptions partial;
  partial.max_states = budget.max_states;
  partial.atomic_assignments = !budget.split_assignments;
  partial.partial_order_reduction = true;
  EnumerationResult ref = enumerate_executions(before, v.observed, partial);

  SampleStats orig = sample_finals(before, before_proj, budget, 1);
  SampleStats trans = sample_finals(after, after_proj, budget, 2);
  if (trans.completed == 0 || (orig.completed == 0 && ref.finals.empty())) {
    v.status = Status::kInconclusive;
    PARCM_OBS_COUNT("verify.inconclusive", 1);
    return v;
  }

  std::set<std::vector<std::int64_t>> reference = ref.finals;
  reference.insert(orig.finals.begin(), orig.finals.end());

  auto first_missing = [&]() -> const std::vector<std::int64_t>* {
    for (const std::vector<std::int64_t>& row : trans.finals) {
      if (!reference.contains(row)) return &row;
    }
    return nullptr;
  };
  const std::vector<std::int64_t>* bad = first_missing();
  bool reference_complete = ref.exhausted;
  if (bad != nullptr && !reference_complete) {
    // The reference enumeration was truncated, so a "transformed-only" row
    // is more often a missed original behaviour than a miscompile (the
    // transformation stretches rare interleaving windows, biasing the
    // transformed sampler toward states the original sampler almost never
    // hits). Deepen the one-sided enumeration before alarming: it is far
    // cheaper than the two-sided consistency product, and every state it
    // visits is exact reachability evidence.
    PARCM_OBS_COUNT("verify.deep_probes", 1);
    partial.max_states = budget.max_states * 8;
    EnumerationResult deep = enumerate_executions(before, v.observed, partial);
    reference_complete = deep.exhausted;
    reference.insert(deep.finals.begin(), deep.finals.end());
    bad = first_missing();
  }
  v.original_behaviours = reference.size();
  v.transformed_behaviours = trans.finals.size();

  if (bad != nullptr) {
    if (!reference_complete) {
      // The original's behaviour set could not be enumerated to completion
      // (typically a value-divergent nondeterministic loop, where it is
      // infinite) and the sampled row was not found in the part we saw.
      // That distinguishes nothing: a missed rare original behaviour and a
      // real miscompile look identical from here, so the only honest
      // verdict is inconclusive. The witness is kept for diagnostics.
      v.status = Status::kInconclusive;
      v.witness = *bad;
      PARCM_OBS_COUNT("verify.inconclusive", 1);
      return v;
    }
    // The reference is the complete original behaviour set and the row came
    // from a genuine transformed execution, so this is a real divergence
    // even though the verdict is labelled sampled (the *transformed* side
    // was not exhausted).
    v.status = Status::kDiverged;
    v.witness = *bad;
    PARCM_OBS_COUNT("verify.diverged", 1);
    classify_divergence(&v, before, remarks);
    return v;
  }
  v.status = std::includes(trans.finals.begin(), trans.finals.end(),
                           reference.begin(), reference.end())
                 ? Status::kEquivalent
                 : Status::kConsistent;
  return v;
}

}  // namespace parcm::verify
