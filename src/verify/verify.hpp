// Translation-validation oracle: differential behaviour comparison of a
// graph before and after a transformation.
//
// The paper's correctness notion is semantic — a placement is admissible
// iff the transformed program is sequentially consistent with the original
// under *every* interleaving — and its three pitfalls (P1 optimality, P2
// recursive assignments, P3 up-/down-safety) are exactly the ways naive
// code motion silently breaks that. differential_check is the standing
// oracle: exact behaviour-set comparison via the POR-pruned enumerator for
// small programs, stratified-sampled interleavings on fixed RNG streams
// above the size budget, and divergence classification against P1/P2/P3
// through the optimization-remark provenance of the transforming pass.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ir/graph.hpp"
#include "obs/remarks.hpp"

namespace parcm::verify {

struct Budget {
  // Graphs up to this many nodes (both sides) are checked exactly by
  // exhaustive enumeration; larger ones fall back to sampling.
  std::size_t max_exact_nodes = 72;
  // State cap for the exact enumerator; hitting it also demotes to sampling.
  std::size_t max_states = 1u << 19;
  // Sampled mode: total schedules per side, spread over scheduler strata
  // (uniform, left-biased, right-biased, extra uniform streams) so
  // near-sequential and adversarial interleavings are all represented.
  std::size_t samples = 192;
  std::size_t strata = 4;
  // Step cap per sampled schedule (nondeterministic loops may spin).
  std::size_t max_steps = 20000;
  // Base of the fixed RNG streams: same seed, same schedules, same verdict.
  std::uint64_t sample_seed = 0x5EEDC0DEuLL;
  // Semantics of record. The paper's transformation initialises h_t := t and
  // replaces x := t by x := h_t, which splits one assignment into two
  // interleaving points — behaviour-preserving only under the Remark 2.1
  // *split-assignment* model where evaluation of t and the write to x were
  // separately interleavable to begin with. Defaulting to atomic assignments
  // would make the oracle flag correct PCM output (phantom "new" behaviours
  // that are really just the split made visible), so split is the default;
  // set false to check transformations that keep assignments whole.
  bool split_assignments = true;
};

enum class Status : std::uint8_t {
  kEquivalent,    // behaviour sets identical
  kConsistent,    // transformed ⊆ original (admissible; motion may not shrink
                  // the set, so kEquivalent is the expected verdict)
  kDiverged,      // a transformed-only behaviour exists (witness recorded)
  kInconclusive,  // budget exhausted before any verdict — including the case
                  // of a sampled transformed-only state against an original
                  // whose behaviour set could not be enumerated to
                  // completion (e.g. value-divergent nondeterministic
                  // loops): indistinguishable from a missed rare original
                  // behaviour, so no divergence is claimed (the candidate
                  // state is still recorded as `witness` for diagnostics)
};

const char* status_name(Status s);

struct Verdict {
  Status status = Status::kInconclusive;
  // true: verdict from exhaustive enumeration (ground truth). false: from
  // sampled schedules against a possibly partial reference set — a sampled
  // kDiverged should be re-checked exactly before being believed (the fuzz
  // driver escalates automatically).
  bool exact = false;
  std::size_t original_behaviours = 0;
  std::size_t transformed_behaviours = 0;
  // Variables projected (interning order of the original graph).
  std::vector<std::string> observed;
  // A transformed-only final state, ordered as `observed`, when diverged.
  std::optional<std::vector<std::int64_t>> witness;
  // Pitfall tags ("P1"/"P2"/"P3") present in the transforming pass's remark
  // stream — the provenance-based suspects for a divergence.
  std::vector<std::string> pitfalls;

  bool ok() const {
    return status == Status::kEquivalent || status == Status::kConsistent;
  }
  // "v0=1 v1=3" rendering of the witness; empty when none.
  std::string witness_text() const;
  // One-line human verdict, e.g.
  // "diverged (exact): transformed-only final state v0=1 — suspects: P3".
  std::string summary() const;
};

// Compares observable behaviours of `before` and `after` projected onto the
// variables of `before`. When `remarks` is given (the remark stream captured
// around the transformation), divergences carry the pitfall suspects found
// in it. Deterministic for fixed inputs and budget.
Verdict differential_check(const Graph& before, const Graph& after,
                           const Budget& budget = {},
                           const std::vector<obs::Remark>* remarks = nullptr);

// Distinct pitfall tags ("P1", "P2", "P3") appearing in any reason chain of
// the stream, in tag order. Exposed for tests and the explain tooling.
std::vector<std::string> pitfalls_from_remarks(
    const std::vector<obs::Remark>& remarks);

// Fills v->pitfalls with the P1/P2/P3 suspects for a divergence: first from
// the supplied remark stream, and — when that stream names none, the usual
// case for a transformation that went ahead instead of blocking — by
// re-running refined PCM on `before` under a private sink and harvesting
// its blocking reasons. Best-effort; shared by the exact and the VM oracle.
void classify_divergence(Verdict* v, const Graph& before,
                         const std::vector<obs::Remark>* remarks);

}  // namespace parcm::verify
