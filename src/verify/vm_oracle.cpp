#include "verify/vm_oracle.hpp"

#include <algorithm>
#include <optional>
#include <set>
#include <string>

#include "obs/metrics.hpp"
#include "semantics/enumerator.hpp"
#include "vm/bytecode.hpp"
#include "vm/executor.hpp"

namespace parcm::verify {

namespace {

std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15uLL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9uLL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBuLL;
  return x ^ (x >> 31);
}

std::vector<std::string> all_var_names(const Graph& g) {
  std::vector<std::string> names;
  names.reserve(g.num_vars());
  for (std::size_t i = 0; i < g.num_vars(); ++i) {
    names.push_back(g.var_name(VarId(static_cast<std::uint32_t>(i))));
  }
  return names;
}

struct VmSamples {
  std::set<std::vector<std::int64_t>> finals;
  std::size_t completed = 0;
};

// `stream` tags the side so original and transformed runs draw independent
// schedule streams (mirrors sample_finals' stream discipline).
VmSamples sample_vm_finals(const Graph& g,
                           const std::vector<std::string>& observed,
                           const VmBudget& budget, std::uint64_t stream) {
  VmSamples out;
  vm::VmProgram p = vm::lower_to_bytecode(g);  // split: semantics of record
  std::vector<std::optional<VarId>> proj;
  proj.reserve(observed.size());
  for (const std::string& name : observed) proj.push_back(g.find_var(name));
  vm::ExecLimits limits;
  limits.max_steps = budget.max_steps;
  vm::SeededRunner runner(p);
  PARCM_OBS_COUNT("verify.vm_schedules", budget.schedules);
  for (std::size_t i = 0; i < budget.schedules; ++i) {
    std::uint64_t seed = mix(budget.seed ^ mix(stream) ^ i);
    // Stratified perturbation (mirrors sample_finals): a third of the
    // budget each for uniform, spawn-order-biased and reverse-biased
    // schedules — the biased strata reach the corner interleavings whose
    // finals would otherwise surface only through an escalation.
    limits.schedule_bias =
        i % 3 == 0 ? 0 : (i % 3 == 1 ? -1 : 1);
    vm::ExecResult r = runner.run(seed, limits);
    if (!r.ok) continue;  // step budget: a spinning nondeterministic loop
    ++out.completed;
    std::vector<std::int64_t> row;
    row.reserve(proj.size());
    for (const std::optional<VarId>& v : proj) {
      row.push_back(v.has_value() ? r.store[v->index()] : 0);
    }
    out.finals.insert(std::move(row));
  }
  return out;
}

}  // namespace

Verdict vm_differential_check(const Graph& before, const Graph& after,
                              const VmBudget& budget,
                              const std::vector<obs::Remark>* remarks) {
  PARCM_OBS_TIMER("verify.vm_differential_check");
  PARCM_OBS_COUNT("verify.vm_checks", 1);
  Verdict v;
  v.observed = all_var_names(before);

  VmSamples orig = sample_vm_finals(before, v.observed, budget, 1);
  VmSamples trans = sample_vm_finals(after, v.observed, budget, 2);
  if (trans.completed == 0 || orig.completed == 0) {
    v.status = Status::kInconclusive;
    PARCM_OBS_COUNT("verify.vm_inconclusive", 1);
    return v;
  }

  // Fast path: every VM-sampled original final is a genuine behaviour, so
  // containment needs no enumeration at all — the common (clean) case costs
  // exactly 2 * schedules executions.
  std::set<std::vector<std::int64_t>> reference = std::move(orig.finals);
  auto first_missing = [&]() -> const std::vector<std::int64_t>* {
    for (const std::vector<std::int64_t>& row : trans.finals) {
      if (!reference.contains(row)) return &row;
    }
    return nullptr;
  };
  const std::vector<std::int64_t>* bad = first_missing();
  bool reference_complete = false;

  if (bad != nullptr) {
    // A racy-but-legal final the base sample missed is far more common
    // than a real divergence, and 3x more schedules cost ~nothing next to
    // a POR enumeration: deepen the original-side sample before reaching
    // for the enumerator.
    PARCM_OBS_COUNT("verify.vm_deepenings", 1);
    VmBudget deep = budget;
    deep.schedules = budget.schedules * 3;
    VmSamples more = sample_vm_finals(before, v.observed, deep, 3);
    reference.insert(more.finals.begin(), more.finals.end());
    bad = first_missing();
  }

  if (bad != nullptr && before.num_nodes() <= budget.max_exact_nodes) {
    // Candidate divergence: the schedule sampler missed something, or the
    // transformation manufactured a new behaviour. Only a *complete*
    // one-sided enumeration of the original can tell them apart; it is far
    // cheaper than the two-sided product the exact oracle builds.
    PARCM_OBS_COUNT("verify.vm_escalations", 1);
    EnumerationOptions opts;
    opts.max_states = budget.max_states;
    opts.atomic_assignments = false;  // split semantics, like the VM
    opts.partial_order_reduction = true;
    EnumerationResult ref = enumerate_executions(before, v.observed, opts);
    if (!ref.exhausted) {
      opts.max_states = budget.max_states * 8;
      ref = enumerate_executions(before, v.observed, opts);
    }
    reference_complete = ref.exhausted;
    reference.insert(ref.finals.begin(), ref.finals.end());
    bad = first_missing();
  }
  v.original_behaviours = reference.size();
  v.transformed_behaviours = trans.finals.size();

  if (bad != nullptr) {
    if (!reference_complete) {
      // Indistinguishable from a missed rare original behaviour; keep the
      // candidate as a diagnostic witness but claim nothing.
      v.status = Status::kInconclusive;
      v.witness = *bad;
      PARCM_OBS_COUNT("verify.vm_inconclusive", 1);
      return v;
    }
    v.status = Status::kDiverged;
    v.witness = *bad;
    PARCM_OBS_COUNT("verify.vm_diverged", 1);
    classify_divergence(&v, before, remarks);
    return v;
  }
  v.status = std::includes(trans.finals.begin(), trans.finals.end(),
                           reference.begin(), reference.end())
                 ? Status::kEquivalent
                 : Status::kConsistent;
  return v;
}

}  // namespace parcm::verify
