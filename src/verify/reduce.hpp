// Delta-debugging reducer for failing fuzzer programs.
//
// Shrinks a language AST while a caller-supplied predicate (typically
// "lower, transform, differential_check still diverges") keeps holding.
// Reduction is greedy 1-minimal over a fixed edit vocabulary, visiting
// parents before children so whole subtrees disappear first:
//   - delete a statement (with its entire subtree),
//   - inline one block of a compound statement in its place,
//   - drop a component/alternative of a par/choose with >2 blocks,
//   - simplify term-by-term: binary rhs -> trivial operand, variable
//     operand -> the constant 0, deterministic condition -> `*`,
//   - drop labels.
// The result parses (lang::to_source round-trips) and re-checks against the
// oracle at every step, so the emitted reproducer is guaranteed to still
// fail. Deterministic: no randomness, stable edit order.
#pragma once

#include <cstddef>
#include <functional>
#include <string>

#include "lang/ast.hpp"

namespace parcm::verify {

// Returns true while the candidate still exhibits the failure. Must be a
// pure function of the program (the reducer may call it many times).
using Predicate = std::function<bool(const lang::Program&)>;

struct ReduceOptions {
  // Hard cap on predicate evaluations (each one may enumerate behaviours).
  std::size_t max_checks = 4000;
};

struct ReduceResult {
  lang::Program program;  // 1-minimal under the edit vocabulary
  std::size_t checks = 0;
  std::size_t stmts_before = 0;
  std::size_t stmts_after = 0;
};

// `failing` must satisfy the predicate; the result still does.
ReduceResult reduce_program(const lang::Program& failing,
                            const Predicate& still_fails,
                            const ReduceOptions& options = {});

// Statements at every nesting depth (the reducer's size measure).
std::size_t count_statements(const lang::Program& program);

}  // namespace parcm::verify
