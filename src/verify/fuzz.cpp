#include "verify/fuzz.hpp"

#include <chrono>
#include <fstream>
#include <sstream>

#include "driver/driver.hpp"
#include "driver/forensic.hpp"
#include "lang/lower.hpp"
#include "lang/unparse.hpp"
#include "motion/bcm.hpp"
#include "motion/code_motion.hpp"
#include "motion/dce.hpp"
#include "motion/lcm.hpp"
#include "motion/pipeline.hpp"
#include "motion/sinking.hpp"
#include "obs/flight.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/remarks.hpp"
#include "support/diagnostics.hpp"
#include "verify/reduce.hpp"

namespace parcm::verify {

namespace {

std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15uLL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9uLL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBuLL;
  return x ^ (x >> 31);
}

CodeMotionConfig injected_config(const InjectOptions& inject) {
  CodeMotionConfig c;
  if (!inject.enabled) return c;
  if (inject.mode == "naive") {
    c.variant = SafetyVariant::kNaive;
  } else if (inject.mode == "no-privatize") {
    c.privatize_temps = false;
  } else if (inject.mode == "no-parend-export") {
    c.parend_export_rule = false;
  } else if (inject.mode == "no-sink") {
    c.sink_anchors = false;
  } else {
    PARCM_CHECK(false, "unknown injection mode: " + inject.mode);
  }
  return c;
}

bool sequential_pipeline(const std::string& name) {
  return name == "bcm" || name == "lcm";
}

// Phase-1 result of one program: everything the sequential tally/reduce
// phase needs, computed independently per index (and so in parallel).
struct ProgramVerdict {
  bool ran = false;
  Verdict verdict;
  bool sampled_alarm = false;
  Budget confirmed_budget;
  // VM-oracle leg (oracle == "vm" or "both").
  bool vm_ran = false;
  Status vm_status = Status::kInconclusive;
  bool disagreement = false;  // VM divergence refuted by the exact oracle
  bool vm_missed = false;     // exact divergence the VM schedules missed
};

ProgramVerdict check_one(const FuzzOptions& options,
                         const RandomProgramOptions& gen, std::size_t i) {
  ProgramVerdict slot;
  const auto check_start = std::chrono::steady_clock::now();
  std::uint64_t pseed = fuzz_program_seed(options.seed, i);
  PARCM_OBS_FLIGHT(obs::FlightKind::kRngStream, "fuzz-program", pseed, i);
  Rng rng(pseed);
  lang::Program ast = random_program_ast(rng, gen);
  Graph before = lang::lower(ast);

  // Capture the transforming pass's remark stream for P1-P3 provenance.
  // The sink is installed as a *thread* override, so on a batch worker it
  // shadows the worker's own sink instead of a process-global — per-program
  // streams stay exact at any --jobs value.
  obs::RemarkSink sink;
  sink.set_enabled(true);
  obs::RemarkSink* prev = obs::set_thread_remark_sink(&sink);
  Graph after;
  try {
    after = apply_named_pipeline(options.pipeline, before, options.inject);
  } catch (...) {
    obs::set_thread_remark_sink(prev);
    throw;
  }
  obs::set_thread_remark_sink(prev);
  std::vector<obs::Remark> remarks = sink.snapshot();

  const bool use_vm = options.oracle == "vm" || options.oracle == "both";
  const bool use_exact = options.oracle != "vm";
  Verdict vm_verdict;
  if (use_vm) {
    vm_verdict = vm_differential_check(before, after, options.vm_budget,
                                       &remarks);
    slot.vm_ran = true;
    slot.vm_status = vm_verdict.status;
  }
  slot.verdict = use_exact ? differential_check(before, after, options.budget,
                                                &remarks)
                           : vm_verdict;
  if (options.oracle == "both") {
    if (vm_verdict.status == Status::kDiverged && slot.verdict.ok()) {
      // The VM only claims kDiverged against a complete original behaviour
      // set, so an exact refutation means one of the oracles is broken.
      slot.disagreement = true;
    }
    if (slot.verdict.status == Status::kDiverged && vm_verdict.ok()) {
      slot.vm_missed = true;
    }
  }
  slot.confirmed_budget = options.budget;
  if (slot.verdict.status == Status::kDiverged && !slot.verdict.exact) {
    // A sampled kDiverged is already sound — the oracle only reports it
    // when the original's behaviour set was enumerated to completion (an
    // incomplete reference yields kInconclusive instead). Still try the
    // two-sided exact re-check: an exact verdict carries the full
    // behaviour counts and is what the reducer wants to replay against.
    slot.confirmed_budget.max_exact_nodes =
        std::max(before.num_nodes(), after.num_nodes());
    slot.confirmed_budget.max_states = options.budget.max_states * 8;
    Verdict exact_verdict =
        differential_check(before, after, slot.confirmed_budget, &remarks);
    if (exact_verdict.exact) {
      if (use_vm && !use_exact && exact_verdict.ok()) {
        // The VM's divergence claim did not survive the exact re-check: a
        // soundness bug in one of the oracles, surfaced as a disagreement
        // rather than silently swallowed.
        slot.disagreement = true;
      }
      slot.verdict = exact_verdict;
    } else {
      // Kept as a sampled divergence; tracked separately so campaign
      // output shows how many finds lack an exact behaviour count.
      slot.sampled_alarm = true;
    }
  }
  slot.ran = true;
  PARCM_OBS_HIST(
      "verify.check_latency_ns",
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - check_start)
              .count()));
  PARCM_OBS_FLIGHT(obs::FlightKind::kOracleVerdict, status_name(slot.verdict.status),
                   slot.verdict.original_behaviours,
                   slot.verdict.transformed_behaviours);
  return slot;
}

}  // namespace

FuzzOptions::FuzzOptions() : gen(default_fuzz_gen()) {}

RandomProgramOptions default_fuzz_gen() {
  RandomProgramOptions gen;
  gen.target_stmts = 10;
  gen.max_par_depth = 2;
  gen.max_components = 3;
  gen.num_vars = 4;
  gen.while_permille = 30;  // keeps exact enumeration tractable
  gen.cond_permille = 200;
  gen.barrier_permille = 60;
  gen.recursive_permille = 200;
  gen.p2_shape_permille = 90;
  gen.p3_shape_permille = 90;
  return gen;
}

std::uint64_t fuzz_program_seed(std::uint64_t campaign_seed,
                                std::size_t index) {
  return mix(campaign_seed) ^ mix(static_cast<std::uint64_t>(index) + 1);
}

lang::Program fuzz_program(std::uint64_t campaign_seed, std::size_t index,
                           const RandomProgramOptions& gen) {
  Rng rng(fuzz_program_seed(campaign_seed, index));
  return random_program_ast(rng, gen);
}

namespace {

void suffix_expr_vars(lang::AExpr& e, const std::string& suffix) {
  if (e.a.is_var) e.a.name += suffix;
  if (e.b.is_var) e.b.name += suffix;
}

void suffix_block_vars(lang::Block& block, const std::string& suffix) {
  for (lang::Stmt& s : block) {
    if (!s.lhs.empty()) s.lhs += suffix;
    suffix_expr_vars(s.rhs, suffix);
    if (!s.cond.nondet) suffix_expr_vars(s.cond.expr, suffix);
    for (lang::Block& b : s.blocks) suffix_block_vars(b, suffix);
  }
}

}  // namespace

lang::Program fuzz_program_pooled(std::uint64_t campaign_seed,
                                  std::size_t index, std::size_t shapes,
                                  const RandomProgramOptions& gen) {
  if (shapes == 0) shapes = 1;
  lang::Program p = fuzz_program(campaign_seed, index % shapes, gen);
  std::size_t repetition = index / shapes;
  if (repetition > 0) {
    suffix_block_vars(p.body, "_r" + std::to_string(repetition));
  }
  return p;
}

Graph apply_named_pipeline(const std::string& name, const Graph& g,
                           const InjectOptions& inject) {
  if (name == "pcm" || name == "naive" || name == "full") {
    CodeMotionConfig config = injected_config(inject);
    if (name == "naive") config.variant = SafetyVariant::kNaive;
    if (name != "full") return run_code_motion(g, config).graph;
    Pipeline p;
    p.add("pcm", [config](const Graph& in, std::size_t* actions) {
      MotionResult r = run_code_motion(in, config);
      *actions = r.num_insertions() + r.num_replacements();
      return std::move(r.graph);
    });
    p.add_validate().add_constprop().add_validate().add_sinking()
        .add_validate().add_dce().add_validate();
    return p.run(g).graph;
  }
  PARCM_CHECK(!inject.enabled,
              "miscompile injection needs a code-motion stage; pipeline '" +
                  name + "' has none");
  if (name == "bcm") return busy_code_motion(g).graph;
  if (name == "lcm") return lazy_code_motion(g).graph;
  if (name == "sinking") return sink_partially_dead_assignments(g).graph;
  if (name == "dce") return eliminate_dead_assignments(g).graph;
  PARCM_CHECK(false, "unknown pipeline: " + name);
}

std::string FuzzOutcome::summary() const {
  std::ostringstream os;
  os << "fuzz: " << programs << " programs (" << exact << " exact, " << sampled
     << " sampled, " << inconclusive << " inconclusive) — " << divergences
     << " divergence" << (divergences == 1 ? "" : "s");
  if (sampled_alarms > 0) {
    os << ", " << sampled_alarms << " sampled-only divergence"
       << (sampled_alarms == 1 ? "" : "s");
  }
  if (vm_checked > 0) {
    os << "; vm oracle: " << vm_checked << " checked, " << vm_divergences
       << " diverged, " << oracle_disagreements << " disagreement"
       << (oracle_disagreements == 1 ? "" : "s");
    if (vm_missed > 0) os << ", " << vm_missed << " missed by schedules";
  }
  for (const FuzzFailure& f : failures) {
    os << "\n  #" << f.index << " seed 0x" << std::hex << f.program_seed
       << std::dec << ": " << f.verdict.summary() << "\n    reduced to "
       << f.reduced_stmts << " statements / " << f.reduced_nodes << " nodes";
    if (!f.repro_path.empty()) os << " -> " << f.repro_path;
  }
  return os.str();
}

std::string FuzzOutcome::to_json(bool pretty) const {
  obs::JsonWriter w(pretty);
  w.begin_object();
  w.key("schema").value("parcm-fuzz-v1");
  w.key("programs").value(programs);
  w.key("exact").value(exact);
  w.key("sampled").value(sampled);
  w.key("inconclusive").value(inconclusive);
  w.key("divergences").value(divergences);
  w.key("sampled_alarms").value(sampled_alarms);
  w.key("vm_checked").value(vm_checked);
  w.key("vm_divergences").value(vm_divergences);
  w.key("oracle_disagreements").value(oracle_disagreements);
  w.key("vm_missed").value(vm_missed);
  w.key("failures").begin_array();
  for (const FuzzFailure& f : failures) {
    w.begin_object();
    w.key("index").value(f.index);
    w.key("program_seed").value(f.program_seed);
    w.key("status").value(status_name(f.verdict.status));
    w.key("witness").value(f.verdict.witness_text());
    w.key("pitfalls").begin_array();
    for (const std::string& p : f.verdict.pitfalls) w.value(p);
    w.end_array();
    w.key("reduced_stmts").value(f.reduced_stmts);
    w.key("reduced_nodes").value(f.reduced_nodes);
    w.key("reduced_source").value(f.reduced_source);
    w.key("repro_path").value(f.repro_path);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

std::string render_repro_source(const FuzzFailure& f, const FuzzOptions& o) {
  std::ostringstream os;
  os << "// parcm_fuzz reproducer (minimized by verify::reduce_program)\n"
     << "// pipeline: " << o.pipeline;
  if (o.inject.enabled) os << "  inject: " << o.inject.mode;
  os << "\n// campaign seed: " << o.seed << "  program index: " << f.index
     << "  program seed: 0x" << std::hex << f.program_seed << std::dec << "\n"
     << "// verdict: " << f.verdict.summary() << "\n"
     << "// replay: parcm_fuzz --seed " << o.seed << " --count "
     << (f.index + 1) << " --pipeline " << o.pipeline;
  if (o.inject.enabled) os << " --inject " << o.inject.mode;
  os << "\n" << f.reduced_source;
  return os.str();
}

std::string render_regression_test(const FuzzFailure& f,
                                   const FuzzOptions& o) {
  std::ostringstream os;
  os << "// Ready-to-paste regression test for the reproducer above.\n"
     << "// Drop into tests/test_verify_repro.cpp (or any parcm test file).\n"
     << "TEST(VerifyRepro, Campaign" << o.seed << "Program" << f.index
     << ") {\n"
     << "  const char* kSource = R\"parcm(\n"
     << f.reduced_source << ")parcm\";\n"
     << "  Graph g = lang::compile_or_throw(kSource);\n"
     << "  verify::InjectOptions inject;\n";
  if (o.inject.enabled) {
    os << "  inject.enabled = true;\n"
       << "  inject.mode = \"" << o.inject.mode << "\";\n";
  }
  os << "  Graph t = verify::apply_named_pipeline(\"" << o.pipeline
     << "\", g, inject);\n"
     << "  verify::Verdict v = verify::differential_check(g, t);\n"
     << "  ASSERT_TRUE(v.exact);\n"
     << "  EXPECT_EQ(verify::Status::kDiverged, v.status);\n"
     << "}\n";
  return os.str();
}

FuzzOutcome run_fuzz(const FuzzOptions& options) {
  PARCM_OBS_TIMER("verify.fuzz.run");
  PARCM_CHECK(options.oracle == "exact" || options.oracle == "vm" ||
                  options.oracle == "both",
              "unknown oracle: " + options.oracle);
  FuzzOutcome out;
  RandomProgramOptions gen = options.gen;
  if (sequential_pipeline(options.pipeline)) {
    gen.max_par_depth = 0;
    gen.p2_shape_permille = 0;
    gen.p3_shape_permille = 0;
  }

  // Phase 1 — per-program check. Every slot is a pure function of
  // (options, index), so with jobs > 1 the loop fans out through the batch
  // driver: each worker writes only its own indices, and the sequential
  // phase below reads the slots in index order — the campaign outcome is
  // identical at any jobs value.
  std::vector<ProgramVerdict> slots(options.count);
  if (options.jobs != 1) {
    driver::BatchOptions batch;
    batch.jobs = options.jobs;
    batch.wall_limit_seconds = options.seconds;
    batch.keep_output = false;
    // check_one installs its own per-program sink; no batch-level capture.
    batch.collect_remarks = false;
    batch.runner = [&options, &gen, &slots](const driver::BatchJob&,
                                            std::size_t index,
                                            driver::WorkerContext&,
                                            driver::ProgramResult&) {
      slots[index] = check_one(options, gen, index);
    };
    driver::Manifest manifest = driver::Manifest::lazy(
        options.count, "fuzz", [](std::size_t) { return std::string(); });
    driver::BatchReport report = driver::run_batch(manifest, batch);
    for (const driver::ProgramResult& r : report.programs) {
      PARCM_CHECK(r.status != driver::JobStatus::kFailed,
                  "fuzz program #" + std::to_string(r.index) +
                      " failed: " + r.error);
    }
    // Re-emit the workers' pipeline/oracle metrics into the caller's
    // registry so a campaign reports the same counters at any jobs value
    // (timers/histograms additionally carry the driver's own scheduling
    // metrics, which only exist when the batch driver ran).
    for (const auto& [name, delta] : report.counters) {
      obs::registry().add_counter(name, delta);
    }
    for (const auto& [name, stat] : report.timers) {
      obs::registry().add_timer_stat(name, stat);
    }
    for (const auto& [name, hist] : report.histograms) {
      obs::registry().merge_hist(name, hist);
    }
  } else {
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < options.count; ++i) {
      if (options.seconds > 0) {
        std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start;
        if (elapsed.count() >= options.seconds) break;
      }
      slots[i] = check_one(options, gen, i);
    }
  }

  // Phase 2 — sequential tally, reduction and reporting in index order.
  for (std::size_t i = 0; i < options.count; ++i) {
    ProgramVerdict& slot = slots[i];
    if (!slot.ran) continue;  // seconds box fired before this index
    Verdict& verdict = slot.verdict;
    ++out.programs;
    PARCM_OBS_COUNT("verify.fuzz.programs", 1);
    if (slot.sampled_alarm) {
      ++out.sampled_alarms;
      PARCM_OBS_COUNT("verify.fuzz.sampled_alarms", 1);
    }
    if (slot.vm_ran) {
      ++out.vm_checked;
      if (slot.vm_status == Status::kDiverged) ++out.vm_divergences;
      if (slot.disagreement) {
        ++out.oracle_disagreements;
        PARCM_OBS_COUNT("verify.fuzz.oracle_disagreements", 1);
      }
      if (slot.vm_missed) ++out.vm_missed;
    }
    if (verdict.exact) {
      ++out.exact;
    } else if (verdict.status == Status::kInconclusive) {
      ++out.inconclusive;
      continue;
    } else {
      ++out.sampled;
    }
    if (verdict.status != Status::kDiverged) continue;

    ++out.divergences;
    PARCM_OBS_COUNT("verify.fuzz.divergences", 1);
    if (out.failures.size() >= options.max_failures) continue;

    std::uint64_t pseed = fuzz_program_seed(options.seed, i);
    Rng rng(pseed);
    lang::Program ast = random_program_ast(rng, gen);

    FuzzFailure failure;
    failure.index = i;
    failure.program_seed = pseed;
    failure.verdict = verdict;
    failure.source = lang::to_source(ast);
    // Reduction replays against the exact predicate, so only exact finds
    // shrink; a sampled-only divergence keeps its full source.
    if (options.reduce && verdict.exact) {
      const std::string& pipeline = options.pipeline;
      const InjectOptions& inject = options.inject;
      const Budget& confirmed_budget = slot.confirmed_budget;
      Predicate still_fails = [&pipeline, &inject,
                               &confirmed_budget](const lang::Program& p) {
        try {
          Graph g = lang::lower(p);
          Graph t = apply_named_pipeline(pipeline, g, inject);
          Verdict v = differential_check(g, t, confirmed_budget);
          return v.exact && v.status == Status::kDiverged;
        } catch (const InternalError&) {
          // A reduction step that makes the pipeline itself throw is not
          // the failure we are chasing.
          return false;
        }
      };
      ReduceResult reduced = reduce_program(ast, still_fails);
      failure.reduced_source = lang::to_source(reduced.program);
      failure.reduced_stmts = reduced.stmts_after;
      failure.reduced_nodes = lang::lower(reduced.program).num_nodes();
    } else {
      failure.reduced_source = failure.source;
      failure.reduced_stmts = count_statements(ast);
      failure.reduced_nodes = lang::lower(ast).num_nodes();
    }
    if (!options.forensics_dir.empty()) {
      try {
        driver::ForensicBundle bundle;
        bundle.reason = "oracle-divergence";
        bundle.mode = "fuzz";
        bundle.id = "fuzz-" + std::to_string(options.seed) + "-" +
                    std::to_string(i);
        bundle.index = i;
        bundle.source = failure.source;
        bundle.campaign_seed = options.seed;
        bundle.program_seed = pseed;
        // The campaign's (possibly exact-escalated) verdict, for the human
        // reader; the replayable outcome below is computed at base budget.
        bundle.note = verdict.summary();
        bundle.config.pipeline = options.pipeline;
        bundle.config.validate = true;
        bundle.config.inject_mode =
            options.inject.enabled ? options.inject.mode : "";
        bundle.config.budget = options.budget;
        // Outcome through the replay core itself (one-job batch under the
        // recorded config), so `parcm_opt --replay` matches byte-for-byte
        // by construction.
        driver::Manifest one = driver::Manifest::from_sources(
            {{bundle.id, bundle.source}});
        driver::BatchOptions replay_opts = bundle.config.to_batch_options();
        replay_opts.keep_remark_lines = true;
        driver::BatchReport replayed = driver::run_batch(one, replay_opts);
        if (!replayed.programs.empty()) {
          bundle.outcome = replayed.programs[0];
          constexpr std::size_t kRemarkTail = 50;
          const std::vector<std::string>& lines = bundle.outcome.remarks;
          const std::size_t first =
              lines.size() > kRemarkTail ? lines.size() - kRemarkTail : 0;
          bundle.remark_tail.assign(lines.begin() +
                                        static_cast<std::ptrdiff_t>(first),
                                    lines.end());
          bundle.outcome.remarks.clear();
        }
        bundle.flight = obs::flight().snapshot();
        bundle.metrics_json = obs::registry().to_json(false);
        driver::write_bundle(bundle, options.forensics_dir);
      } catch (...) {
        // Forensics are best-effort; the campaign result stands either way.
      }
    }
    if (!options.out_dir.empty()) {
      std::ostringstream name;
      name << options.out_dir << "/repro_" << options.seed << "_" << i;
      failure.repro_path = name.str() + ".parcm";
      std::ofstream repro(failure.repro_path);
      if (repro) {
        repro << render_repro_source(failure, options);
        std::ofstream test(name.str() + ".regression.cpp");
        if (test) test << render_regression_test(failure, options);
      } else {
        failure.repro_path.clear();  // unwritable out_dir: keep the result
      }
    }
    out.failures.push_back(std::move(failure));
  }
  return out;
}

}  // namespace parcm::verify
