#include "support/bitvector.hpp"

#include <bit>
#include <cassert>

namespace parcm {

namespace {
std::size_t words_for(std::size_t bits) {
  return (bits + BitVector::kWordBits - 1) / BitVector::kWordBits;
}
}  // namespace

BitVector::BitVector(std::size_t size, bool value)
    : size_(size), words_(words_for(size), value ? ~Word{0} : Word{0}) {
  normalize();
}

bool BitVector::test(std::size_t i) const {
  assert(i < size_);
  return (words_[i / kWordBits] >> (i % kWordBits)) & 1u;
}

void BitVector::set(std::size_t i, bool value) {
  assert(i < size_);
  Word mask = Word{1} << (i % kWordBits);
  if (value) {
    words_[i / kWordBits] |= mask;
  } else {
    words_[i / kWordBits] &= ~mask;
  }
}

void BitVector::reset(std::size_t i) { set(i, false); }

void BitVector::flip(std::size_t i) {
  assert(i < size_);
  words_[i / kWordBits] ^= Word{1} << (i % kWordBits);
}

void BitVector::set_all() {
  for (auto& w : words_) w = ~Word{0};
  normalize();
}

void BitVector::reset_all() {
  for (auto& w : words_) w = 0;
}

void BitVector::resize(std::size_t size, bool value) {
  std::size_t old_size = size_;
  size_ = size;
  words_.resize(words_for(size), value ? ~Word{0} : Word{0});
  if (value && old_size < size) {
    // The partial word at the old boundary needs its upper bits set.
    std::size_t w = old_size / kWordBits;
    if (w < words_.size()) {
      std::size_t bit = old_size % kWordBits;
      words_[w] |= ~((Word{1} << bit) - 1);
    }
  }
  normalize();
}

std::size_t BitVector::count() const {
  std::size_t n = 0;
  for (Word w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

bool BitVector::any() const {
  for (Word w : words_) {
    if (w != 0) return true;
  }
  return false;
}

bool BitVector::all() const { return count() == size_; }

BitVector& BitVector::operator&=(const BitVector& o) {
  assert(size_ == o.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= o.words_[i];
  return *this;
}

BitVector& BitVector::operator|=(const BitVector& o) {
  assert(size_ == o.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= o.words_[i];
  return *this;
}

BitVector& BitVector::operator^=(const BitVector& o) {
  assert(size_ == o.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= o.words_[i];
  return *this;
}

BitVector& BitVector::and_not(const BitVector& o) {
  assert(size_ == o.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~o.words_[i];
  return *this;
}

BitVector& BitVector::assign_and_not(const BitVector& a, const BitVector& b) {
  assert(a.size_ == b.size_);
  size_ = a.size_;
  words_.resize(a.words_.size());
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] = a.words_[i] & ~b.words_[i];
  }
  return *this;
}

BitVector& BitVector::or_with_and_not(const BitVector& a, const BitVector& b) {
  assert(size_ == a.size_ && size_ == b.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] |= a.words_[i] & ~b.words_[i];
  }
  return *this;
}

void BitVector::invert() {
  for (auto& w : words_) w = ~w;
  normalize();
}

bool BitVector::is_subset_of(const BitVector& o) const {
  assert(size_ == o.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if (words_[i] & ~o.words_[i]) return false;
  }
  return true;
}

bool BitVector::intersects(const BitVector& o) const {
  assert(size_ == o.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if (words_[i] & o.words_[i]) return true;
  }
  return false;
}

std::size_t BitVector::find_first() const {
  for (std::size_t w = 0; w < words_.size(); ++w) {
    if (words_[w] != 0) {
      return w * kWordBits +
             static_cast<std::size_t>(std::countr_zero(words_[w]));
    }
  }
  return size_;
}

std::size_t BitVector::find_next(std::size_t i) const {
  ++i;
  if (i >= size_) return size_;
  std::size_t w = i / kWordBits;
  Word masked = words_[w] & (~Word{0} << (i % kWordBits));
  if (masked != 0) {
    return w * kWordBits + static_cast<std::size_t>(std::countr_zero(masked));
  }
  for (++w; w < words_.size(); ++w) {
    if (words_[w] != 0) {
      return w * kWordBits +
             static_cast<std::size_t>(std::countr_zero(words_[w]));
    }
  }
  return size_;
}

std::size_t BitVector::find_first_from(std::size_t i) const {
  if (i >= size_) return size_;
  std::size_t w = i / kWordBits;
  Word masked = words_[w] & (~Word{0} << (i % kWordBits));
  if (masked != 0) {
    return w * kWordBits + static_cast<std::size_t>(std::countr_zero(masked));
  }
  for (++w; w < words_.size(); ++w) {
    if (words_[w] != 0) {
      return w * kWordBits +
             static_cast<std::size_t>(std::countr_zero(words_[w]));
    }
  }
  return size_;
}

void BitVector::normalize() {
  std::size_t rem = size_ % kWordBits;
  if (rem != 0 && !words_.empty()) {
    words_.back() &= (Word{1} << rem) - 1;
  }
}

std::string BitVector::to_string() const {
  std::string s;
  s.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) s.push_back(test(i) ? '1' : '0');
  return s;
}

}  // namespace parcm
