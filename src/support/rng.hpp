// Deterministic, seedable PRNG (xoshiro256**) for workload generation and
// property tests. Not cryptographic. Deterministic across platforms, unlike
// std::uniform_int_distribution.
#pragma once

#include <cstdint>

namespace parcm {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  std::uint64_t next();

  // Uniform in [0, bound); bound must be > 0.
  std::uint64_t below(std::uint64_t bound);

  // Uniform in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  // True with probability num/den.
  bool chance(std::uint64_t num, std::uint64_t den);

  // Uniform double in [0, 1).
  double uniform();

 private:
  std::uint64_t s_[4];
};

}  // namespace parcm
