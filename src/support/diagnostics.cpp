#include "support/diagnostics.hpp"

#include <sstream>

namespace parcm {

std::string Diagnostic::to_string() const {
  std::ostringstream os;
  if (loc.line > 0) {
    os << loc.line << ":" << loc.column << ": ";
  }
  os << "error: " << message;
  return os.str();
}

void DiagnosticSink::error(SourceLoc loc, std::string message) {
  diagnostics_.push_back(Diagnostic{loc, std::move(message)});
}

std::string DiagnosticSink::to_string() const {
  std::string out;
  for (const auto& d : diagnostics_) {
    if (!out.empty()) out.push_back('\n');
    out += d.to_string();
  }
  return out;
}

void internal_error(const char* file, int line, const std::string& message) {
  std::ostringstream os;
  os << "parcm internal error at " << file << ":" << line << ": " << message;
  throw InternalError(os.str());
}

}  // namespace parcm
