#include "support/rng.hpp"

#include <bit>
#include <cassert>

namespace parcm {

namespace {
// splitmix64: seeds the xoshiro state from a single 64-bit value.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
  // All-zero state would be a fixed point; splitmix64 cannot produce four
  // zeros from any seed, but keep the guard cheap and explicit.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling for an unbiased result.
  std::uint64_t threshold = -bound % bound;
  for (;;) {
    std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<std::int64_t>(
                  below(static_cast<std::uint64_t>(hi - lo) + 1));
}

bool Rng::chance(std::uint64_t num, std::uint64_t den) {
  assert(den > 0);
  return below(den) < num;
}

double Rng::uniform() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

}  // namespace parcm
