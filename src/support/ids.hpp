// Strongly typed integer ids for IR entities.
//
// Ids are dense indices into the owning container; kInvalid marks "no
// entity". The Tag parameter makes NodeId/EdgeId/... mutually unassignable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace parcm {

template <class Tag>
class Id {
 public:
  using underlying = std::uint32_t;
  static constexpr underlying kInvalid = ~underlying{0};

  constexpr Id() = default;
  constexpr explicit Id(underlying v) : value_(v) {}

  constexpr underlying value() const { return value_; }
  constexpr std::size_t index() const { return value_; }
  constexpr bool valid() const { return value_ != kInvalid; }

  constexpr auto operator<=>(const Id&) const = default;

  static constexpr Id invalid() { return Id(); }

 private:
  underlying value_ = kInvalid;
};

struct NodeTag {};
struct EdgeTag {};
struct RegionTag {};
struct VarTag {};
struct TermTag {};
struct ParStmtTag {};

using NodeId = Id<NodeTag>;
using EdgeId = Id<EdgeTag>;
using RegionId = Id<RegionTag>;
using VarId = Id<VarTag>;
using TermId = Id<TermTag>;
using ParStmtId = Id<ParStmtTag>;

}  // namespace parcm

template <class Tag>
struct std::hash<parcm::Id<Tag>> {
  std::size_t operator()(const parcm::Id<Tag>& id) const noexcept {
    return std::hash<typename parcm::Id<Tag>::underlying>{}(id.value());
  }
};
