// Bump-pointer arena for batch-scoped IR allocation.
//
// A batch job builds a Graph, runs the pipeline, serializes the result and
// throws everything away; paying malloc/free per node vector, edge list and
// bitvector word block is pure overhead. An Arena hands out memory from
// geometrically growing malloc'd blocks and frees them wholesale in its
// destructor.
//
// Containers opt in through ArenaAllocator<T>, which is *stateless*: every
// allocation consults the calling thread's current arena (ArenaScope) and
// falls back to the global heap when none is installed. Each allocation
// carries a one-word header tagging its origin, so deallocation is always
// safe no matter which arena — or none — is current at that point: heap
// blocks are returned to operator delete, arena blocks are a no-op (their
// memory dies with the arena).
//
// Ownership rule (see DESIGN.md): an object whose containers were filled
// while an arena was current must be destroyed before that arena. Anything
// that outlives the job — cached analysis bundles, shared-cache entries,
// result payloads — must be built under ArenaPauseScope so its memory is
// heap-tagged.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <vector>

namespace parcm {

class Arena {
 public:
  static constexpr std::size_t kDefaultBlockBytes = 64 * 1024;

  Arena() = default;
  ~Arena();
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Aligned bump allocation; starts a new block when the current one is
  // exhausted. align must be a power of two <= alignof(std::max_align_t).
  void* allocate(std::size_t bytes, std::size_t align);

  // True iff p points into one of this arena's blocks.
  bool owns(const void* p) const;

  // Releases every block; the arena is reusable afterwards.
  void reset();

  std::uint64_t bytes_allocated() const { return bytes_allocated_; }
  std::uint64_t bytes_reserved() const { return bytes_reserved_; }
  std::uint64_t allocation_count() const { return allocation_count_; }
  std::uint64_t block_count() const { return block_count_; }

 private:
  struct BlockHeader {
    BlockHeader* next;
    std::size_t size;  // usable bytes after the header
  };

  void new_block(std::size_t min_bytes);

  BlockHeader* head_ = nullptr;
  char* cur_ = nullptr;
  char* end_ = nullptr;
  std::size_t next_block_bytes_ = kDefaultBlockBytes;
  std::uint64_t bytes_allocated_ = 0;
  std::uint64_t bytes_reserved_ = 0;
  std::uint64_t allocation_count_ = 0;
  std::uint64_t block_count_ = 0;
};

// The calling thread's current arena (nullptr when none is installed).
Arena* current_arena();
// Installs `a` (nullptr uninstalls); returns the previous value.
Arena* set_current_arena(Arena* a);

// RAII install/uninstall of the thread-current arena.
class ArenaScope {
 public:
  explicit ArenaScope(Arena& a) : prev_(set_current_arena(&a)) {}
  ~ArenaScope() { set_current_arena(prev_); }
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  Arena* prev_;
};

// Suspends arena allocation for a region that builds objects which must
// outlive the current job (cached bundles, shared-cache entries).
class ArenaPauseScope {
 public:
  ArenaPauseScope() : prev_(set_current_arena(nullptr)) {}
  ~ArenaPauseScope() { set_current_arena(prev_); }
  ArenaPauseScope(const ArenaPauseScope&) = delete;
  ArenaPauseScope& operator=(const ArenaPauseScope&) = delete;

 private:
  Arena* prev_;
};

namespace arena_detail {

// Every ArenaAllocator allocation is prefixed by one max-aligned word
// recording where it came from, so deallocate() never has to guess.
inline constexpr std::size_t kHeaderBytes = alignof(std::max_align_t);
inline constexpr std::uint64_t kArenaTag = 0xA7E7A000A7E7A001ull;
inline constexpr std::uint64_t kHeapTag = 0x4EA9000000004EA9ull;

void* tagged_allocate(std::size_t bytes);
void tagged_deallocate(void* p) noexcept;

}  // namespace arena_detail

// Standard-conforming stateless allocator: arena-backed while an ArenaScope
// is active on the calling thread, global heap otherwise.
template <class T>
class ArenaAllocator {
 public:
  using value_type = T;
  using is_always_equal = std::true_type;
  using propagate_on_container_move_assignment = std::true_type;

  static_assert(alignof(T) <= alignof(std::max_align_t),
                "over-aligned types are not supported by ArenaAllocator");

  ArenaAllocator() = default;
  template <class U>
  ArenaAllocator(const ArenaAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(arena_detail::tagged_allocate(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t) noexcept {
    arena_detail::tagged_deallocate(p);
  }

  template <class U>
  bool operator==(const ArenaAllocator<U>&) const noexcept {
    return true;
  }
};

// Shorthand for the arena-aware vector used throughout the IR.
template <class T>
using avector = std::vector<T, ArenaAllocator<T>>;

}  // namespace parcm
