// Dynamic packed bitvector.
//
// The word-parallel engine in `dfa/packed` relies on direct word access
// (words()), so the representation is deliberately transparent: a vector of
// 64-bit words, least significant bit first, with all bits beyond size()
// kept at zero (the class re-normalizes after every whole-word operation).
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "support/arena.hpp"

namespace parcm {

class BitVector {
 public:
  using Word = std::uint64_t;
  static constexpr std::size_t kWordBits = 64;

  BitVector() = default;
  explicit BitVector(std::size_t size, bool value = false);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  bool test(std::size_t i) const;
  void set(std::size_t i, bool value = true);
  void reset(std::size_t i);
  void flip(std::size_t i);

  void set_all();
  void reset_all();

  // Grows or shrinks; new bits are `value`.
  void resize(std::size_t size, bool value = false);

  std::size_t count() const;
  bool any() const;
  bool none() const { return !any(); }
  bool all() const;

  // Word-wise logical operations; operands must have equal size.
  BitVector& operator&=(const BitVector& o);
  BitVector& operator|=(const BitVector& o);
  BitVector& operator^=(const BitVector& o);
  // this := this & ~o
  BitVector& and_not(const BitVector& o);
  // Fused in-place forms used by the allocation-free solver kernels: each
  // replaces a two-step sequence that would otherwise materialize a
  // temporary BitVector. All operands must have equal size.
  // this := a & ~b
  BitVector& assign_and_not(const BitVector& a, const BitVector& b);
  // this := this | (a & ~b)
  BitVector& or_with_and_not(const BitVector& a, const BitVector& b);
  // Flip every bit.
  void invert();

  friend BitVector operator&(BitVector a, const BitVector& b) { return a &= b; }
  friend BitVector operator|(BitVector a, const BitVector& b) { return a |= b; }
  friend BitVector operator^(BitVector a, const BitVector& b) { return a ^= b; }
  friend BitVector operator~(BitVector a) {
    a.invert();
    return a;
  }

  bool operator==(const BitVector& o) const = default;

  // True iff every set bit of *this is also set in o.
  bool is_subset_of(const BitVector& o) const;
  // True iff (*this & o) has any set bit.
  bool intersects(const BitVector& o) const;

  // Index of first set bit, or size() if none.
  std::size_t find_first() const;
  // Index of first set bit > i, or size() if none.
  std::size_t find_next(std::size_t i) const;
  // Index of first set bit >= i, or size() if none.
  std::size_t find_first_from(std::size_t i) const;

  // Calls fn(i) for every set bit, in increasing order. Word-at-a-time, so
  // considerably cheaper than iterating set_bits() on sparse vectors.
  template <class Fn>
  void for_each_set_bit(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      Word bits = words_[w];
      while (bits != 0) {
        Word lsb = bits & (~bits + 1);
        fn(w * kWordBits + bit_index(lsb));
        bits ^= lsb;
      }
    }
  }

  avector<Word>& words() { return words_; }
  const avector<Word>& words() const { return words_; }
  std::size_t word_count() const { return words_.size(); }

  // Zeroes any bits at positions >= size(); call after raw word writes.
  void normalize();

  // "0110..." least-significant (index 0) first.
  std::string to_string() const;

  // Iterate set bits: for (std::size_t i : bv.set_bits()) ...
  class SetBitRange;
  SetBitRange set_bits() const;

 private:
  static std::size_t bit_index(Word isolated_bit) {
    return static_cast<std::size_t>(std::countr_zero(isolated_bit));
  }

  std::size_t size_ = 0;
  avector<Word> words_;
};

class BitVector::SetBitRange {
 public:
  explicit SetBitRange(const BitVector& bv) : bv_(&bv) {}

  class iterator {
   public:
    iterator(const BitVector* bv, std::size_t pos) : bv_(bv), pos_(pos) {}
    std::size_t operator*() const { return pos_; }
    iterator& operator++() {
      pos_ = bv_->find_next(pos_);
      return *this;
    }
    bool operator!=(const iterator& o) const { return pos_ != o.pos_; }

   private:
    const BitVector* bv_;
    std::size_t pos_;
  };

  iterator begin() const { return iterator(bv_, bv_->find_first()); }
  iterator end() const { return iterator(bv_, bv_->size()); }

 private:
  const BitVector* bv_;
};

inline BitVector::SetBitRange BitVector::set_bits() const {
  return SetBitRange(*this);
}

}  // namespace parcm
