// Error reporting used across the library.
//
// Parsing and validation return diagnostics instead of throwing; internal
// invariant violations use PARCM_CHECK which throws InternalError (these
// indicate library bugs, not user errors).
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

namespace parcm {

struct SourceLoc {
  int line = 0;
  int column = 0;
};

struct Diagnostic {
  SourceLoc loc;
  std::string message;

  std::string to_string() const;
};

class DiagnosticSink {
 public:
  void error(SourceLoc loc, std::string message);
  void error(std::string message) { error(SourceLoc{}, std::move(message)); }

  bool ok() const { return diagnostics_.empty(); }
  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }

  // All messages joined by newlines; empty string if ok().
  std::string to_string() const;

 private:
  std::vector<Diagnostic> diagnostics_;
};

class InternalError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

[[noreturn]] void internal_error(const char* file, int line,
                                 const std::string& message);

#define PARCM_CHECK(cond, msg)                               \
  do {                                                       \
    if (!(cond)) ::parcm::internal_error(__FILE__, __LINE__, \
                                         std::string(msg));  \
  } while (false)

}  // namespace parcm
