#include "support/arena.hpp"

#include <cstdlib>

#include "support/diagnostics.hpp"

namespace parcm {

namespace {

std::size_t align_up(std::size_t v, std::size_t align) {
  return (v + align - 1) & ~(align - 1);
}

thread_local Arena* tl_current_arena = nullptr;

}  // namespace

Arena::~Arena() { reset(); }

void Arena::reset() {
  BlockHeader* b = head_;
  while (b != nullptr) {
    BlockHeader* next = b->next;
    std::free(b);
    b = next;
  }
  head_ = nullptr;
  cur_ = end_ = nullptr;
  next_block_bytes_ = kDefaultBlockBytes;
  bytes_allocated_ = 0;
  bytes_reserved_ = 0;
  allocation_count_ = 0;
  block_count_ = 0;
}

void Arena::new_block(std::size_t min_bytes) {
  std::size_t usable = next_block_bytes_;
  if (usable < min_bytes) usable = align_up(min_bytes, kDefaultBlockBytes);
  // Geometric growth, capped so a huge corpus program cannot make every
  // later block huge as well.
  if (next_block_bytes_ < 1024 * 1024) next_block_bytes_ *= 2;
  std::size_t header = align_up(sizeof(BlockHeader), alignof(std::max_align_t));
  // Blocks come from malloc, not operator new, so arena reservations are
  // invisible to the obs alloc hook by design: allocs_per_program measures
  // residual global-allocator traffic, and the handful of block
  // reservations per program is reported via bytes_reserved() instead.
  auto* raw = static_cast<char*>(std::malloc(header + usable));
  PARCM_CHECK(raw != nullptr, "arena block allocation failed");
  auto* block = reinterpret_cast<BlockHeader*>(raw);
  block->next = head_;
  block->size = usable;
  head_ = block;
  cur_ = raw + header;
  end_ = cur_ + usable;
  bytes_reserved_ += usable;
  ++block_count_;
}

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  PARCM_CHECK(align != 0 && (align & (align - 1)) == 0 &&
                  align <= alignof(std::max_align_t),
              "unsupported arena alignment");
  char* p = reinterpret_cast<char*>(
      align_up(reinterpret_cast<std::uintptr_t>(cur_), align));
  if (p + bytes > end_ || p + bytes < p) {
    new_block(bytes + align);
    p = reinterpret_cast<char*>(
        align_up(reinterpret_cast<std::uintptr_t>(cur_), align));
  }
  cur_ = p + bytes;
  bytes_allocated_ += bytes;
  ++allocation_count_;
  return p;
}

bool Arena::owns(const void* p) const {
  std::size_t header = align_up(sizeof(BlockHeader), alignof(std::max_align_t));
  for (const BlockHeader* b = head_; b != nullptr; b = b->next) {
    const char* base = reinterpret_cast<const char*>(b) + header;
    if (p >= base && p < base + b->size) return true;
  }
  return false;
}

Arena* current_arena() { return tl_current_arena; }

Arena* set_current_arena(Arena* a) {
  Arena* prev = tl_current_arena;
  tl_current_arena = a;
  return prev;
}

namespace arena_detail {

void* tagged_allocate(std::size_t bytes) {
  std::size_t total = bytes + kHeaderBytes;
  char* raw;
  std::uint64_t tag;
  if (Arena* a = tl_current_arena) {
    raw = static_cast<char*>(a->allocate(total, alignof(std::max_align_t)));
    tag = kArenaTag;
  } else {
    raw = static_cast<char*>(::operator new(total));
    tag = kHeapTag;
  }
  *reinterpret_cast<std::uint64_t*>(raw) = tag;
  return raw + kHeaderBytes;
}

void tagged_deallocate(void* p) noexcept {
  if (p == nullptr) return;
  char* raw = static_cast<char*>(p) - kHeaderBytes;
  std::uint64_t tag = *reinterpret_cast<std::uint64_t*>(raw);
  if (tag == kArenaTag) return;  // freed wholesale by the owning arena
  ::operator delete(raw);
}

}  // namespace arena_detail

}  // namespace parcm
