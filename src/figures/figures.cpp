#include "figures/figures.hpp"

#include "lang/lower.hpp"
#include "support/diagnostics.hpp"

namespace parcm::figures {

namespace {

const char* kFig1 = R"(
a := 1; b := 2;
if (*) { x := a + b @n3; } else { skip @n5; }
if (*) { y := a + b @n8; } else { skip @n9; }
z := x + y @n10;
)";

const char* kFig1Hoistable = R"(
a := 1; b := 2;
if (*) { x := a + b @n3; } else { u := a + b @n5; }
y := a + b @n8;
)";

const char* kFig2 = R"(
b := 1; c := 2;
par {
  x := c + b @n3;
} and {
  u := u + 1 @n5;
  u := u + 1 @n6;
  u := u + 1 @n7;
}
d := c + b @n10;
)";

const char* kFig3a = R"(
c := 2; b := 3;
par {
  z := c + b @n3;
} and {
  c := c + b @n5;
}
)";

const char* kFig3c = R"(
c := 2; b := 3;
par {
  c := c + b @n3;
  y := c + b @n4;
} and {
  c := c + b @n5;
  z := c + b @n6;
}
)";

// Fig. 3(b): the naive hoist applied to program A — still sequentially
// consistent (behaviours shrink but stay within the argument program's).
const char* kFig3b = R"(
c := 2; b := 3;
h := c + b;
par {
  z := h @n3;
} and {
  c := h @n5;
}
)";

// Fig. 3(d): the naive hoist applied to program B — y = z = 5 always,
// impossible for any interleaving of (c) under either assignment semantics.
const char* kFig3d = R"(
c := 2; b := 3;
h := c + b;
par {
  c := h @n3;
  y := h @n4;
} and {
  c := h @n5;
  z := h @n6;
}
)";

const char* kFig4 = R"(
a := 2; b := 3;
par {
  a := a + b @n3;
  x := a + b @n4;
} and {
  y := a + b @n5;
}
)";

// Fig. 4(b)/(c): hoisting a single occurrence each — individually
// sequentially consistent.
const char* kFig4b = R"(
a := 2; b := 3;
h := a + b;
par {
  a := a + b @n3;
  x := a + b @n4;
} and {
  y := h @n5;
}
)";

const char* kFig4c = R"(
a := 2; b := 3;
h := a + b;
par {
  a := h @n3;
  x := a + b @n4;
} and {
  y := a + b @n5;
}
)";

// Fig. 4(d): the combination — every interleaving assigns the stale value 5
// to the uses at nodes 4 and 5, impossible for (a): x's own thread already
// executed a := a + b, so x = 8 on every interleaving of the original.
const char* kFig4d = R"(
a := 2; b := 3;
h := a + b;
par {
  a := h @n3;
  x := h @n4;
} and {
  y := h @n5;
}
)";

const char* kFig5 = R"(
a := 1; b := 2;
x := a + b @n2;
if (*) { y := a + b @n4; } else { a := 7 @n5; z := a + b @n6; }
w := a + b @n8;
)";

const char* kFig6 = R"(
a := 1; b := 2;
x := a + b @n3;
par {
  y := a + b @n5;
  a := 5 @n6;
  u := a + b @n7;
} and {
  z := a + b @n9;
  b := 7 @n10;
  v := a + b @n11;
}
w := a + b @n16;
)";

const char* kFig8 = R"(
a := 1; b := 2;
par {
  x := a + b @n5;
  skip @n6;
} and {
  c := 3 @n7;
  d := 4 @n8;
}
w := a + b @n12;
)";

const char* kFig8Negative = R"(
a := 1; b := 2;
par {
  x := a + b @n5;
  skip @n6;
} and {
  c := 3 @n7;
  a := 4 @n8;
}
w := a + b @n12;
)";

const char* kFig9 = R"(
a := 1; b := 2;
par {
  x := a + b @n6;
} and {
  y := a + b @n10;
} and {
  z := a + b @n14;
}
w := a + b @n16;
)";

const char* kFig9Negative = R"(
a := 1; b := 2; c := 3; d := 4;
par {
  x := a + b @n6;
} and {
  u := c + d @n10;
}
w := a + b @n16;
)";

const char* kFig10 = R"(
a := 1; b := 2; c := 3; d := 4; e := 5; f := 6;
g := 7; h := 8; j := 9; k := 10;
if (*) { p := a + b @n6; } else { skip @n7; }
par {
  q := a + b @n10;
  r := g + h @n11;
  while (*) { r := g + h @n12; }
  s := c + d @n13;
} and {
  t := a + b @n20;
  u := j + k @n21;
  while (*) { u := j + k @n22; }
}
if (*) { v1 := e + f @n30; } else { skip @n31; }
v2 := e + f @n32;
)";

}  // namespace

Graph fig1() { return lang::compile_or_throw(kFig1); }
Graph fig1_hoistable() { return lang::compile_or_throw(kFig1Hoistable); }
Graph fig2() { return lang::compile_or_throw(kFig2); }
Graph fig3a() { return lang::compile_or_throw(kFig3a); }
Graph fig3b() { return lang::compile_or_throw(kFig3b); }
Graph fig3c() { return lang::compile_or_throw(kFig3c); }
Graph fig3d() { return lang::compile_or_throw(kFig3d); }
Graph fig4() { return lang::compile_or_throw(kFig4); }
Graph fig4b() { return lang::compile_or_throw(kFig4b); }
Graph fig4c() { return lang::compile_or_throw(kFig4c); }
Graph fig4d() { return lang::compile_or_throw(kFig4d); }
Graph fig5() { return lang::compile_or_throw(kFig5); }
Graph fig6() { return lang::compile_or_throw(kFig6); }
Graph fig7() { return fig6(); }
Graph fig8() { return lang::compile_or_throw(kFig8); }
Graph fig8_negative() { return lang::compile_or_throw(kFig8Negative); }
Graph fig9() { return lang::compile_or_throw(kFig9); }
Graph fig9_negative() { return lang::compile_or_throw(kFig9Negative); }
Graph fig10() { return lang::compile_or_throw(kFig10); }

std::string figure_source(const std::string& id) {
  if (id == "1") return kFig1;
  if (id == "1h") return kFig1Hoistable;
  if (id == "2") return kFig2;
  if (id == "3a") return kFig3a;
  if (id == "3b") return kFig3b;
  if (id == "3c") return kFig3c;
  if (id == "3d") return kFig3d;
  if (id == "4") return kFig4;
  if (id == "4b") return kFig4b;
  if (id == "4c") return kFig4c;
  if (id == "4d") return kFig4d;
  if (id == "5") return kFig5;
  if (id == "6" || id == "7") return kFig6;
  if (id == "8") return kFig8;
  if (id == "8n") return kFig8Negative;
  if (id == "9") return kFig9;
  if (id == "9n") return kFig9Negative;
  if (id == "10") return kFig10;
  PARCM_CHECK(false, "unknown figure id: " + id);
}

}  // namespace parcm::figures
