// Executable reconstructions of every figure of the paper.
//
// The paper's figures are drawings; the exact node sets are reconstructed
// here from the prose so that every *claim* the paper attaches to a figure
// is checkable by tests and benchmarks (see DESIGN.md's experiment index
// and EXPERIMENTS.md for the claim-by-claim record). Node labels (@nX)
// follow the paper's numbering where the prose names nodes.
#pragma once

#include <string>

#include "ir/graph.hpp"

namespace parcm::figures {

// Fig. 1 — sequential code motion. A computation in one branch and a
// partially redundant one behind a second branch: BCM may not move anything
// across the unsafe joins, and the partially redundant occurrence at "node
// 8" remains (it cannot be eliminated without impairing some executions).
Graph fig1();

// Companion to Fig. 1: the classic profitable case — a+b computed in both
// branches is hoisted above the branch by BCM, halving the per-path count.
Graph fig1_hoistable();

// Fig. 2 — computational vs. executional optimality. c+b is computed in a
// cheap parallel component and again after the join; the bottleneck sibling
// is an unhoistable chain of recursive u := u + 1 steps. The naive
// as-early-as-possible placement (= Fig. 2b) hoists c+b into sequential
// code: computationally optimal, executionally no better than the original.
// PCM (= Fig. 2c) keeps it in the component where it is free.
Graph fig2();

// Fig. 3 — loss of sequential consistency I. fig3a: one recursive
// assignment (program A); the hoist shown in the paper's Fig. 3(b)
// (= fig3b) is still sequentially consistent. fig3c: both occurrences
// recursive (program B); the hoist of Fig. 3(d) (= fig3d) produces final
// states impossible for ANY interleaving of the argument program,
// regardless of assignment atomicity.
Graph fig3a();
Graph fig3b();
Graph fig3c();
Graph fig3d();

// Fig. 4 — loss of sequential consistency II. Two occurrences of a + b in
// parallel components, one preceded (in its thread) by the recursive
// a := a + b: hoisting occurrences independently (fig4b, fig4c) is fine,
// hoisting both onto one temporary (fig4d) forces the stale value into x
// although x's thread already updated a.
Graph fig4();
Graph fig4b();
Graph fig4c();
Graph fig4d();

// Fig. 5 — sequential up-/down-safety facts (dominating / post-dominating
// computing sets); used by the sequential safety property tests.
Graph fig5();

// Fig. 6 — per-interleaving safety. Each component computes a+b, modifies
// an operand, and computes again: the parallel statement's entry is
// down-safe and its exit up-safe on *every* interleaving (witnessed by
// different occurrences), while no internal node is safe. Fig. 7 draws the
// transformation consequences from the same program: the naive earliest
// placement before the statement cannot be guaranteed to be used, and the
// naive suppression of the initialization after the join corrupts the
// semantics. fig7() is therefore an alias of fig6().
Graph fig6();
Graph fig7();

// Fig. 8 — up-safety refinement: one component establishes a + b and no
// sibling node destroys it, so the exit is up-safe_par and the use after
// the join needs no initialization. fig8_negative adds a destroying sibling.
Graph fig8();
Graph fig8_negative();

// Fig. 9 — down-safety refinement: entry is down-safe_par only when every
// component computes the term and none modifies an operand (M = {6,10,14}).
// fig9_negative: only one component computes, so hoisting out would move
// work from a free component into sequential code and is refused.
Graph fig9();
Graph fig9_negative();

// Fig. 10 — the power of the complete transformation: a+b moves to "node
// 1", e+f moves across the (transparent) parallel statement, g+h and j+k
// hoist in front of their loops inside their components, c+d stays inside
// the parallel statement where it is free.
Graph fig10();

// Textual source of each figure (fig numbers "1", "1h", "2", "3a", "3c",
// "4", ..., "10"); useful for examples and docs.
std::string figure_source(const std::string& id);

}  // namespace parcm::figures
