#include "analyses/upsafety.hpp"

#include "obs/metrics.hpp"
#include "obs/remarks.hpp"

namespace parcm {

PackedProblem make_upsafety_problem(const Graph& g,
                                    const LocalPredicates& preds,
                                    SafetyVariant variant) {
  PackedProblem p;
  p.dir = Direction::kForward;
  p.policy = variant == SafetyVariant::kRefined ? SyncPolicy::kUpSafePar
                                                : SyncPolicy::kStandard;
  p.num_terms = preds.num_terms();
  p.boundary = BitVector(p.num_terms);  // nothing available before s*
  p.gen.reserve(g.num_nodes());
  p.kill.reserve(g.num_nodes());
  p.destroy.reserve(g.num_nodes());
  for (NodeId n : g.all_nodes()) {
    // Local function: Const_tt if Comp && Transp, Const_ff if !Transp
    // (covers recursive assignments: they compute t but leave it
    // unavailable), Id otherwise.
    BitVector gen = preds.comp(n) & preds.transp(n);
    if (PARCM_OBS_REMARKS_ON()) {
      // A computation that assigns its own operand (recursive assignment)
      // leaves the term unavailable: it cannot seed up-safety.
      BitVector killed_gen = preds.comp(n);
      killed_gen.and_not(preds.transp(n));
      for (std::size_t t : killed_gen.set_bits()) {
        PARCM_OBS_REMARK(obs::Remark{
            obs::RemarkKind::kSkipped, "upsafety", n.value(),
            static_cast<std::int64_t>(t), "",
            "computation does not establish availability",
            {obs::RemarkReason::kComputes, obs::RemarkReason::kOperandKilled},
            ""});
      }
    }
    p.gen.push_back(std::move(gen));
    p.kill.push_back(preds.mod(n));
    // Interference destroys availability iff the interleaved statement
    // assigns an operand — identical under the atomic and the split view.
    p.destroy.push_back(preds.mod(n));
  }
  return p;
}

PackedResult compute_upsafety(const Graph& g, const LocalPredicates& preds,
                              SafetyVariant variant) {
  PARCM_OBS_TIMER("analysis.upsafety");
  PARCM_OBS_COUNT("analysis.upsafety.runs", 1);
  return solve_packed(g, make_upsafety_problem(g, preds, variant));
}

}  // namespace parcm
