// Local predicates Comp and Transp per (node, term), packed over the term
// universe, plus the interference-destruction predicate in its two flavours
// (paper Sec. 3.3.2).
#pragma once

#include <vector>

#include "ir/graph.hpp"
#include "ir/terms.hpp"
#include "support/bitvector.hpp"

namespace parcm {

class LocalPredicates {
 public:
  LocalPredicates(const Graph& g, const TermTable& terms);

  std::size_t num_terms() const { return num_terms_; }

  // Comp(n): node n's right-hand side is the term (paper: n contains a
  // computation of t).
  const BitVector& comp(NodeId n) const { return comp_[n.index()]; }
  // Transp(n): node n does not assign any operand of the term.
  const BitVector& transp(NodeId n) const { return transp_[n.index()]; }
  // ~Transp(n), precomputed.
  const BitVector& mod(NodeId n) const { return mod_[n.index()]; }

  bool comp(NodeId n, TermId t) const { return comp_[n.index()].test(t.index()); }
  bool transp(NodeId n, TermId t) const {
    return transp_[n.index()].test(t.index());
  }

  // True iff n is a recursive assignment (lhs occurs in its own rhs term).
  bool recursive(NodeId n) const { return recursive_[n.index()]; }

 private:
  std::size_t num_terms_;
  std::vector<BitVector> comp_;
  std::vector<BitVector> transp_;
  std::vector<BitVector> mod_;
  std::vector<bool> recursive_;
};

// Emits the P2 recursive-split degradation remarks for g (a recursive
// assignment inside a parallel statement behaves as an implicit split, its
// occurrence is not replaceable). Separated from LocalPredicates
// construction so cached predicates — thread- or process-wide — still
// produce remarks for every program they serve; AnalysisCache calls this
// once per (program, content).
void emit_acquisition_remarks(const Graph& g, const TermTable& terms,
                              const LocalPredicates& preds);

}  // namespace parcm
