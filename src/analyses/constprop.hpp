// Interference-aware simple constant propagation.
//
// The paper's related work singles out constant propagation as one of the
// few classical optimizations studied for explicitly parallel programs
// (Knoop, Euro-Par'98; Lee/Midkiff/Padua, LCPC'97). This module implements
// the conservative core: flow-sensitive constant propagation over the
// parallel flow graph where *contested* variables — variables written by
// one component and accessed by a potentially-parallel sibling — are pinned
// to NonConst everywhere. For uncontested variables interleavings cannot
// influence the value, so plain meet-over-graph-paths reasoning is sound.
//
// Variables start as the constant 0 (the interpreter's initial state), so
// the analysis is also a cheap initialization analysis.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/graph.hpp"

namespace parcm {

struct CpValue {
  enum class Kind : std::uint8_t { kUndef, kConst, kNonConst };
  Kind kind = Kind::kUndef;
  std::int64_t value = 0;

  static CpValue undef() { return {}; }
  static CpValue constant(std::int64_t v) {
    return CpValue{Kind::kConst, v};
  }
  static CpValue nonconst() { return CpValue{Kind::kNonConst, 0}; }

  bool is_const() const { return kind == Kind::kConst; }
  bool operator==(const CpValue&) const = default;
};

CpValue meet(const CpValue& a, const CpValue& b);

struct ConstPropAnalysis {
  // State at node entry: one CpValue per variable.
  std::vector<std::vector<CpValue>> entry;
  // Variables excluded because a sibling may interfere.
  std::vector<std::uint8_t> contested;
};

ConstPropAnalysis analyze_constants(const Graph& g);

struct ConstPropResult {
  Graph graph;
  std::size_t operands_folded = 0;  // variable operands replaced by literals
  std::size_t rhs_folded = 0;       // whole right-hand sides evaluated
};

// Replaces provably-constant variable operands by literals and folds
// constant binary right-hand sides (x := 2 + 3 becomes x := 5). Test
// conditions are folded at the operand level only; branch structure is
// never changed.
ConstPropResult propagate_constants(const Graph& g);

}  // namespace parcm
