#include "analyses/predicates.hpp"

#include "ir/printer.hpp"
#include "obs/remarks.hpp"

namespace parcm {

LocalPredicates::LocalPredicates(const Graph& g, const TermTable& terms)
    : num_terms_(terms.size()) {
  // ops_of_var[v]: terms having variable v as an operand.
  std::vector<BitVector> ops_of_var(g.num_vars(), BitVector(num_terms_));
  for (TermId t : terms.all()) {
    const Term& term = terms.term(t);
    if (term.lhs.is_var()) ops_of_var[term.lhs.var_id().index()].set(t.index());
    if (term.rhs.is_var()) ops_of_var[term.rhs.var_id().index()].set(t.index());
  }

  comp_.assign(g.num_nodes(), BitVector(num_terms_));
  transp_.assign(g.num_nodes(), BitVector(num_terms_, true));
  mod_.assign(g.num_nodes(), BitVector(num_terms_));
  recursive_.assign(g.num_nodes(), false);

  for (NodeId n : g.all_nodes()) {
    const Node& node = g.node(n);
    if (node.kind != NodeKind::kAssign) continue;
    TermId t = terms.term_of(n);
    if (t.valid()) comp_[n.index()].set(t.index());
    // Variables referenced by ops_of_var but never assigned keep full
    // transparency; assignments kill the terms using their lhs.
    if (node.lhs.valid() && node.lhs.index() < ops_of_var.size()) {
      mod_[n.index()] = ops_of_var[node.lhs.index()];
      transp_[n.index()].and_not(mod_[n.index()]);
    }
    recursive_[n.index()] = node.rhs.uses_var(node.lhs);
  }
}

void emit_acquisition_remarks(const Graph& g, const TermTable& terms,
                              const LocalPredicates& preds) {
  for (NodeId n : g.all_nodes()) {
    if (!preds.recursive(n) || !g.pfg(n).valid()) continue;
    // The paper's P2 pitfall: inside a parallel statement a recursive
    // assignment behaves as the split x_t := t; x := x_t — its occurrence
    // of t is not replaceable and the node destroys under interleaving.
    TermId t = terms.term_of(n);
    PARCM_OBS_REMARK(obs::Remark{
        obs::RemarkKind::kDegraded, "predicates", n.value(),
        t.valid() ? static_cast<std::int64_t>(t.index()) : -1,
        t.valid() ? term_to_string(g, terms.term(t)) : "",
        "recursive assignment inside a parallel statement: treated as "
        "implicitly decomposed, occurrence not replaceable",
        {obs::RemarkReason::kRecursiveSplit},
        statement_to_string(g, n)});
  }
}

}  // namespace parcm
