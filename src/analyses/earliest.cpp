#include "analyses/earliest.hpp"

#include <future>

#include "analyses/downsafety.hpp"
#include "analyses/upsafety.hpp"
#include "obs/metrics.hpp"
#include "obs/remarks.hpp"
#include "obs/trace.hpp"

namespace parcm {

namespace {

// Below this many node×term bits the thread launch costs more than the
// solve; above it the two safety solves overlap almost perfectly (they
// share no mutable state — counters are mutex-protected).
constexpr std::size_t kConcurrentSolveThreshold = 16384;

}  // namespace

SafetyInfo compute_safety(const Graph& g, const LocalPredicates& preds,
                          SafetyVariant variant) {
  PARCM_OBS_TIMER("analysis.safety");
  SafetyInfo info;
  info.variant = variant;
  info.num_terms = preds.num_terms();
  // Problem construction emits remarks, so it stays on this thread; the two
  // solves are independent and run concurrently when the problem is big
  // enough. The helper records spans onto its own "<track>/async" buffer,
  // so tracing no longer forces sequential solves.
  PackedProblem up_problem = make_upsafety_problem(g, preds, variant);
  PackedProblem down_problem = make_downsafety_problem(g, preds, variant);
  PARCM_OBS_COUNT("analysis.upsafety.runs", 1);
  PARCM_OBS_COUNT("analysis.downsafety.runs", 1);
  bool concurrent =
      g.num_nodes() * preds.num_terms() >= kConcurrentSolveThreshold;
  if (concurrent) {
    PARCM_OBS_COUNT("analysis.safety.concurrent_solves", 1);
    // The helper thread inherits this thread's effective obs destinations,
    // so a batch-driver worker keeps its solver counters attributed to its
    // own per-worker registry instead of the process-global one.
    obs::ThreadBindings bindings = obs::current_thread_bindings();
    std::future<PackedResult> down =
        std::async(std::launch::async, [&g, &down_problem, bindings] {
          obs::ThreadBindingsScope scope(bindings);
          return solve_packed(g, down_problem);
        });
    info.up_result = solve_packed(g, up_problem);
    info.down_result = down.get();
  } else {
    info.up_result = solve_packed(g, up_problem);
    info.down_result = solve_packed(g, down_problem);
  }

  info.upsafe.reserve(g.num_nodes());
  info.dnsafe.reserve(g.num_nodes());
  info.safe.reserve(g.num_nodes());
  for (NodeId n : g.all_nodes()) {
    // Up-safety holds *at* n if it holds on entry; down-safety holds at n
    // if n computes t or t stays anticipated after n (the out value of the
    // backward analysis).
    info.upsafe.push_back(info.up_result.entry[n.index()]);
    info.dnsafe.push_back(info.down_result.out[n.index()]);
    info.safe.push_back(info.upsafe.back() | info.dnsafe.back());
  }
  return info;
}

MotionPredicates compute_motion_predicates(
    const Graph& g, const LocalPredicates& preds, const SafetyInfo& safety,
    const MotionPredicateOptions& options) {
  PARCM_OBS_TIMER("analysis.motion_predicates");
  MotionPredicates mp;
  mp.earliest.reserve(g.num_nodes());
  mp.replace.reserve(g.num_nodes());
  std::size_t k = safety.num_terms;
  for (NodeId n : g.all_nodes()) {
    BitVector earliest = safety.dnsafe[n.index()];
    if (n != g.start()) {
      // Some predecessor must block the motion: it is unsafe, or it
      // modifies an operand (placement there would compute a wrong value).
      BitVector blocked(k);
      for (NodeId m : g.preds(n)) {
        BitVector ok = safety.safe[m.index()] & preds.transp(m);
        ok.invert();
        blocked |= ok;
      }
      if (options.parend_export_rule && g.node(n).kind == NodeKind::kParEnd) {
        // A component exit "supports" the join only if the statement
        // exports the value (the up-safe_par synchronization, Sec. 3.3.3):
        // a component's own down-safety justifies its internal coverage but
        // interference (and temp privatization) keeps that value from
        // crossing the join. Const_ff summary => always blocked (the
        // initialization after the join must not be suppressed — the Fig. 7
        // pitfall); Const_tt => never blocked (an establishing component
        // with clean siblings delivers the value).
        const PackedFun& summary =
            safety.up_result.stmt_summary[g.node(n).par_stmt.index()];
        blocked |= summary.ff;
        blocked.and_not(summary.tt);
        if (PARCM_OBS_REMARKS_ON()) {
          // Per-term provenance of the export decision: terms forced to
          // re-initialize after the join (the P3 pitfall the refined
          // up-safe_par synchronization prevents) and terms whose value the
          // statement provably delivers across the join.
          BitVector forced = earliest & summary.ff;
          for (std::size_t t : forced.set_bits()) {
            PARCM_OBS_REMARK(obs::Remark{
                obs::RemarkKind::kBlocked, "", n.value(),
                static_cast<std::int64_t>(t), "",
                "post-join initialization must not be suppressed: every "
                "interleaving is safe, but via different occurrences",
                {obs::RemarkReason::kWitnessDiffers},
                "join exit of the parallel statement"});
          }
          BitVector exported = safety.dnsafe[n.index()] & summary.tt;
          for (std::size_t t : exported.set_bits()) {
            PARCM_OBS_REMARK(obs::Remark{
                obs::RemarkKind::kSkipped, "", n.value(),
                static_cast<std::int64_t>(t), "",
                "no initialization needed after the join: an establishing "
                "component delivers the value on every interleaving",
                {obs::RemarkReason::kExported, obs::RemarkReason::kUpSafe},
                "join exit of the parallel statement"});
          }
        }
      }
      earliest &= blocked;
    }
    mp.earliest.push_back(std::move(earliest));
    mp.replace.push_back(preds.comp(n) & safety.safe[n.index()]);
  }
  return mp;
}

}  // namespace parcm
