// Two-tier cross-pass analysis cache.
//
// TermTable, LocalPredicates and InterleavingInfo depend only on a graph's
// content, yet every motion pass (and every benchmark iteration) used to
// rebuild them from scratch. The cache keys a bundle of all three on the
// graph's *content*:
//
//   fast path   Graph::version() — versions are drawn from a process-wide
//               counter on every mutation, so equal versions imply equal
//               content (copies inherit the version of their source).
//   slow path   a structural hash over nodes, edges, regions and parallel
//               statements — so a rebuilt-but-identical graph (e.g. the
//               next benchmark iteration, or the same source compiled
//               twice) still hits.
//   shared tier a process-wide lock-striped cache keyed on the full
//               structural key, so a corpus full of similar shapes computes
//               each analysis once per shape instead of once per
//               (program, worker). Opt-in per thread; collisions on the
//               64-bit hash are rejected by a full key compare, never
//               served.
//
// acquire() returns a shared_ptr, so a pass keeps its analyses alive for
// its whole duration even if it mutates the graph (invalidating the cache
// slot) or another thread acquires a different graph meanwhile.
//
// Remark emission: the P2 recursive-split degradation remarks derived from
// LocalPredicates are emitted by acquire(), once per distinct content per
// sink epoch (RemarkSink::epoch() — a fresh sink, or clearing the current
// one, starts a new epoch). Tying emission to acquisition instead of
// construction keeps the remark stream identical whether an analysis was
// rebuilt, thread-cached or shared-cache hit — a requirement of the batch
// driver's byte-identity guarantee, whose workers clear their sink at every
// job boundary.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analyses/predicates.hpp"
#include "ir/graph.hpp"
#include "ir/regions.hpp"
#include "ir/terms.hpp"

namespace parcm {

// Content hash over everything the cached analyses read: node kinds,
// regions, assignments (lhs + rhs), conditions, edges, and the
// region/statement nesting structure. Variable names are irrelevant to the
// analyses and excluded.
std::uint64_t structural_hash(const Graph& g);

// The hash plus the exact word stream it was computed from, so shared-cache
// lookups can reject 64-bit collisions with a full compare.
struct StructuralKey {
  std::uint64_t hash = 0;
  std::vector<std::uint64_t> words;

  bool operator==(const StructuralKey&) const = default;
};
StructuralKey structural_key(const Graph& g);

struct AnalysisBundle {
  std::uint64_t version = 0;
  TermTable terms;
  LocalPredicates preds;

  AnalysisBundle(std::uint64_t v, const Graph& g)
      : version(v), terms(g), preds(g, terms) {}
};

// Process-wide shared tier: lock-striped map from structural key to the
// immutable analysis artifacts of that shape. Entries are filled lazily —
// bundle and interleaving info arrive through independent put calls. A
// shard that reaches its entry cap is flushed wholesale; since every hit
// returns content-identical artifacts, eviction policy cannot influence
// results, only rebuild counts.
class SharedAnalysisCache {
 public:
  static constexpr std::size_t kShards = 64;
  static constexpr std::size_t kMaxEntriesPerShard = 512;

  std::shared_ptr<const AnalysisBundle> find_bundle(const StructuralKey& key);
  std::shared_ptr<const InterleavingInfo> find_itlv(const StructuralKey& key);
  void put_bundle(const StructuralKey& key,
                  std::shared_ptr<const AnalysisBundle> bundle);
  void put_itlv(const StructuralKey& key,
                std::shared_ptr<const InterleavingInfo> itlv);

  void clear();
  std::size_t size() const;

 private:
  struct Entry {
    StructuralKey key;
    std::shared_ptr<const AnalysisBundle> bundle;
    std::shared_ptr<const InterleavingInfo> itlv;
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::uint64_t, Entry> entries;
  };

  // Returns the entry for key, creating it if absent; nullptr on a hash
  // collision with a different key (counted, never overwritten) or after
  // flushing a full shard. Caller must hold no shard lock.
  Entry* locate(Shard& shard, const StructuralKey& key, bool insert_missing);

  Shard shards_[kShards];
};

class AnalysisCache {
 public:
  // Returns the bundle for g's current content, rebuilding at most once per
  // distinct content (and at most once per shape process-wide when a shared
  // tier is installed). Emits the content's acquisition remarks the first
  // time it is acquired in the current sink epoch. Thread-safe.
  std::shared_ptr<const AnalysisBundle> acquire(const Graph& g);

  // Interleaving info is cached per (object identity, version) in the
  // thread tier — cheap pointer compare — and per structural key in the
  // shared tier (instances no longer reference their graph).
  std::shared_ptr<const InterleavingInfo> interleaving(const Graph& g);

  void clear();

 private:
  std::shared_ptr<const AnalysisBundle> acquire_slow(const Graph& g,
                                                     std::uint64_t* hash_out);
  void maybe_emit(const Graph& g, const AnalysisBundle& bundle,
                  std::uint64_t hash);

  std::mutex mu_;
  std::shared_ptr<const AnalysisBundle> bundle_;
  std::uint64_t bundle_version_ = 0;  // most recent version seen for bundle_
  std::uint64_t bundle_hash_ = 0;
  bool bundle_valid_ = false;
  std::shared_ptr<const InterleavingInfo> itlv_;
  const Graph* itlv_graph_ = nullptr;
  std::uint64_t itlv_version_ = 0;
  // Content hashes whose remarks were emitted in sink epoch emit_epoch_.
  std::uint64_t emit_epoch_ = 0;
  std::unordered_set<std::uint64_t> emitted_;
  // Lock-free (epoch, hash) of the most recent emission decision; a hit
  // skips the mutex on repeat acquisitions of the same content.
  std::atomic<std::uint64_t> last_emit_epoch_{0};
  std::atomic<std::uint64_t> last_emit_hash_{0};
};

// The cache the motion passes use: the calling thread's override when one
// is installed (set_thread_analysis_cache), else the process-wide instance.
AnalysisCache& analysis_cache();

// Installs `c` as this thread's cache override (nullptr removes it);
// returns the previous override. Batch-driver workers each run their own
// cache so the single-slot bundle is never invalidated by a sibling
// worker's unrelated graph and acquire() never contends across programs.
AnalysisCache* set_thread_analysis_cache(AnalysisCache* c);

// The process-wide shared tier instance (exists regardless of use).
SharedAnalysisCache& process_shared_analysis_cache();

// Installs `c` as the calling thread's shared tier (nullptr disables the
// tier, the default); returns the previous value. The batch driver points
// every worker at one instance; tests may install a private one.
SharedAnalysisCache* set_thread_shared_analysis_cache(SharedAnalysisCache* c);

}  // namespace parcm
