// Cross-pass analysis cache.
//
// TermTable, LocalPredicates and InterleavingInfo depend only on a graph's
// content, yet every motion pass (and every benchmark iteration) used to
// rebuild them from scratch. The cache keys a bundle of all three on the
// graph's *content*:
//
//   fast path   Graph::version() — versions are drawn from a process-wide
//               counter on every mutation, so equal versions imply equal
//               content (copies inherit the version of their source).
//   slow path   a structural hash over nodes, edges, regions and parallel
//               statements — so a rebuilt-but-identical graph (e.g. the
//               next benchmark iteration, or the same source compiled
//               twice) still hits.
//
// acquire() returns a shared_ptr, so a pass keeps its analyses alive for
// its whole duration even if it mutates the graph (invalidating the cache
// slot) or another thread acquires a different graph meanwhile.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>

#include "analyses/predicates.hpp"
#include "ir/graph.hpp"
#include "ir/regions.hpp"
#include "ir/terms.hpp"

namespace parcm {

// Content hash over everything the cached analyses read: node kinds,
// regions, assignments (lhs + rhs), conditions, edges, and the
// region/statement nesting structure. Variable names are irrelevant to the
// analyses and excluded.
std::uint64_t structural_hash(const Graph& g);

struct AnalysisBundle {
  std::uint64_t version = 0;
  TermTable terms;
  LocalPredicates preds;

  AnalysisBundle(std::uint64_t v, const Graph& g)
      : version(v), terms(g), preds(g, terms) {}
};

class AnalysisCache {
 public:
  // Returns the bundle for g's current content, rebuilding at most once per
  // distinct content. Thread-safe.
  std::shared_ptr<const AnalysisBundle> acquire(const Graph& g);

  // InterleavingInfo holds a pointer to its graph, so it is cached per
  // (object identity, version) rather than content.
  std::shared_ptr<const InterleavingInfo> interleaving(const Graph& g);

  void clear();

 private:
  std::mutex mu_;
  std::shared_ptr<const AnalysisBundle> bundle_;
  std::uint64_t bundle_version_ = 0;  // most recent version seen for bundle_
  std::uint64_t bundle_hash_ = 0;
  bool bundle_valid_ = false;
  std::shared_ptr<const InterleavingInfo> itlv_;
  const Graph* itlv_graph_ = nullptr;
  std::uint64_t itlv_version_ = 0;
};

// The cache the motion passes use: the calling thread's override when one
// is installed (set_thread_analysis_cache), else the process-wide instance.
AnalysisCache& analysis_cache();

// Installs `c` as this thread's cache override (nullptr removes it);
// returns the previous override. Batch-driver workers each run their own
// cache so the single-slot bundle is never invalidated by a sibling
// worker's unrelated graph and acquire() never contends across programs.
AnalysisCache* set_thread_analysis_cache(AnalysisCache* c);

}  // namespace parcm
