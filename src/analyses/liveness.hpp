// Classic backward may-liveness of a single variable, used to measure
// temporary lifetimes (the register-pressure argument behind lazy code
// motion). Interference is irrelevant for the metric, so the analysis runs
// on plain graph edges and works for parallel graphs too.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/graph.hpp"

namespace parcm {

struct LivenessResult {
  // live_in[n]: v may be read on some path from n before being overwritten.
  std::vector<std::uint8_t> live_in;
  std::vector<std::uint8_t> live_out;

  std::size_t live_node_count() const {
    std::size_t n = 0;
    for (std::uint8_t b : live_in) n += b;
    return n;
  }
};

LivenessResult compute_liveness(const Graph& g, VarId v);

// Sum of live_node_count over all temporaries introduced by a motion pass
// (variables whose names start with `prefix`, default the "h_" convention).
std::size_t total_temp_lifetime(const Graph& g,
                                const std::string& prefix = "h_");

}  // namespace parcm
