// Up-safety (availability): a point n is up-safe for t if every program
// path reaching n computes t after the last modification of t's operands
// (paper Sec. 1). Forward, must, boundary ff at s*.
//
// Variants:
//  kNaive    the straightforward transfer of [17]'s conjecture — standard
//            synchronization. PMFP = PMOP of plain availability, but the
//            property is too weak to justify suppressing initializations in
//            parallel programs (pitfall P3, Figs. 6/7).
//  kRefined  this paper's up-safe_par — the strengthened synchronization of
//            Sec. 3.3.3, usable for code motion.
#pragma once

#include "analyses/predicates.hpp"
#include "dfa/framework.hpp"
#include "dfa/packed.hpp"

namespace parcm {

enum class SafetyVariant { kNaive, kRefined };

PackedProblem make_upsafety_problem(const Graph& g,
                                    const LocalPredicates& preds,
                                    SafetyVariant variant);

// entry[n] = "n is up-safe for the term" (value at forward entry of n).
PackedResult compute_upsafety(const Graph& g, const LocalPredicates& preds,
                              SafetyVariant variant);

}  // namespace parcm
